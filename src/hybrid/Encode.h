//===- hybrid/Encode.h - Systematic Pearlite -> Gilsonite encoding (§5.4) --===//
///
/// \file
/// The keystone of the hybrid approach: the systematic elaboration of a
/// Creusot (Pearlite) contract into a Gilsonite specification that
/// Gillian-Rust can verify. Following the schema of §5.4:
///
///   { P }  fn f(x1: T1, ..., xn: Tn) -> Tret  { Q }
///
/// becomes
///
///   { [κ]_q * ⊛ own$Ti(xi, mi, κ) * <P[xi := mi]> }
///   fn f(...)
///   { [κ]_q * ∃ mret. own$Tret(ret, mret, κ) * <Q[xi := mi][result := mret]> }
///
/// where mutable-reference representations are (current, final) pairs, the
/// final component being the reference's prophecy (§5.1), so ^x elaborates
/// to the second projection.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_HYBRID_ENCODE_H
#define GILR_HYBRID_ENCODE_H

#include "creusot/StdSpecs.h"
#include "gilsonite/Ownable.h"

namespace gilr {
namespace hybrid {

/// Elaborates \p PSpec (a contract of \p F) into a Gilsonite spec.
Outcome<gilsonite::Spec> encodePearliteSpec(const creusot::PearliteSpec &PSpec,
                                            const rmir::Function &F,
                                            gilsonite::OwnableRegistry &Own);

} // namespace hybrid
} // namespace gilr

#endif // GILR_HYBRID_ENCODE_H
