//===- hybrid/Driver.cpp ----------------------------------------------------------===//

#include "hybrid/Driver.h"

#include "support/Metrics.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>

using namespace gilr;
using namespace gilr::hybrid;

namespace {

std::string fmtSeconds(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3fs", S);
  return Buf;
}

std::string fmtMs(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2fms", Ns / 1e6);
  return Buf;
}

const char *sampleVerdictName(uint8_t V) {
  return V == 0 ? "sat" : V == 1 ? "unsat" : "unknown";
}

/// How many slowest queries summaryText() prints (the full capped list is
/// in the telemetry JSON's solver_queries section).
constexpr std::size_t SummarySlowestN = 5;

std::string solverStatsJson(const SolverStats &S) {
  return "{\"sat_queries\": " + std::to_string(S.SatQueries) +
         ", \"entail_queries\": " + std::to_string(S.EntailQueries) +
         ", \"branches\": " + std::to_string(S.Branches) +
         ", \"theory_checks\": " + std::to_string(S.TheoryChecks) +
         ", \"unknown_results\": " + std::to_string(S.UnknownResults) +
         ", \"entail_repeats\": " + std::to_string(S.EntailRepeats) + "}";
}

std::string errorsJson(const std::vector<std::string> &Errors) {
  std::string Out = "[";
  for (std::size_t I = 0; I != Errors.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "\"" + jsonEscape(Errors[I]) + "\"";
  }
  return Out + "]";
}

} // namespace

Outcome<Unit> HybridDriver::encodeAndRegister(const std::string &Func) {
  const creusot::PearliteSpec *PSpec = Contracts.lookup(Func);
  if (!PSpec)
    return Outcome<Unit>::failure("no Pearlite contract for " + Func);
  const rmir::Function *F = Env.Prog.lookup(Func);
  if (!F)
    return Outcome<Unit>::failure("no RMIR definition of " + Func);
  Outcome<gilsonite::Spec> S = encodePearliteSpec(*PSpec, *F, Env.Ownables);
  if (!S.ok())
    return S.forward<Unit>();
  // Replace any previous registration (e.g. a show_safety spec).
  if (Env.Specs.lookup(Func)) {
    gilsonite::SpecTable Fresh;
    for (const auto &[Name, Spec] : Env.Specs.all())
      if (Name != Func)
        Fresh.add(Spec);
    Env.Specs = std::move(Fresh);
  }
  Env.Specs.add(std::move(S.value()));
  return Outcome<Unit>::success(Unit());
}

HybridReport HybridDriver::run(const std::vector<std::string> &UnsafeFuncs,
                               const std::vector<creusot::SafeFn> &Clients) {
  HybridReport Report;

  {
    GILR_TRACE_SCOPE("hybrid", "unsafe-side");
    engine::Verifier V(Env);
    Report.UnsafeSide = V.verifyAll(UnsafeFuncs);
    Report.Analysis = V.lastAnalysis();
  }

  {
    GILR_TRACE_SCOPE("hybrid", "safe-side");
    creusot::SafeVerifier SV(Contracts, Env.Solv);
    for (const creusot::SafeFn &Client : Clients)
      Report.SafeSide.push_back(SV.verify(Client));
  }

  return Report;
}

std::string HybridReport::summaryText() const {
  std::string Out;
  Out += "hybrid verification: " + std::string(ok() ? "OK" : "FAILED") + "\n";
  if (Analysis.Enabled)
    Out += Analysis.renderText();
  for (const engine::VerifyReport &R : UnsafeSide) {
    Out += "  [gillian] " + R.Func + ": " +
           (R.Ok ? (R.Static   ? "ok (static)"
                    : R.Cached ? "ok (cached)"
                               : "ok")
                 : R.LintBlocked ? "REJECTED (pre-verification analysis)"
                 : R.TimedOut   ? "UNKNOWN (budget)"
                                : "FAIL") +
           " (" +
           fmtSeconds(R.Seconds) + ", " + std::to_string(R.PathsCompleted) +
           " paths, " + std::to_string(R.Solver.EntailQueries) +
           " entailments, " + std::to_string(R.Solver.SatQueries) +
           " sat queries)\n";
    if (!R.Phases.empty()) {
      std::string Table = trace::phaseReportText(R.Phases);
      std::size_t Pos = 0;
      while (Pos < Table.size()) {
        std::size_t Nl = Table.find('\n', Pos);
        if (Nl == std::string::npos)
          Nl = Table.size();
        Out += "    " + Table.substr(Pos, Nl - Pos) + "\n";
        Pos = Nl + 1;
      }
    }
  }
  for (const creusot::SafeReport &R : SafeSide) {
    unsigned Proved = 0;
    for (const creusot::SafeObligation &O : R.Obligations)
      Proved += O.Ok;
    Out += "  [creusot] " + R.Func + ": " +
           (R.Ok ? (R.Cached ? "ok (cached)" : "ok")
                 : R.TimedOut ? "UNKNOWN (budget)" : "FAIL") +
           " (" +
           fmtSeconds(R.Seconds) + ", " + std::to_string(Proved) + "/" +
           std::to_string(R.Obligations.size()) + " obligations, " +
           std::to_string(R.Solver.EntailQueries) + " entailments)\n";
  }

  // Proof flight recorder: per-query aggregates and the slowest queries
  // with provenance. Only present when the timing decorator ran
  // (GILR_TIMING / GILR_JOURNAL, see solver/Flight.h).
  metrics::SolverQueriesReport FQ =
      metrics::Registry::get().solverQueriesReport();
  if (FQ.Valid && FQ.Queries) {
    Out += "  [solver-queries] " + std::to_string(FQ.Queries) +
           " queries (" + std::to_string(FQ.CacheHits) + " cache hits, " +
           std::to_string(FQ.Unknowns) + " unknown), total " +
           fmtMs(FQ.TotalNs) + ", max " + fmtMs(FQ.MaxNs);
    if (FQ.JournalRecords)
      Out += ", " + std::to_string(FQ.JournalRecords) + " journaled";
    if (FQ.JournalDropped)
      Out += " (" + std::to_string(FQ.JournalDropped) + " DROPPED)";
    Out += "\n";
    std::size_t N = std::min(FQ.Slowest.size(), SummarySlowestN);
    for (std::size_t I = 0; I != N; ++I) {
      const metrics::SolverQuerySample &S = FQ.Slowest[I];
      Out += "    slowest #" + std::to_string(I + 1) + ": " +
             (S.Obligation.empty() ? "<no obligation>" : S.Obligation) +
             " [" + S.Side + std::string("] query ") +
             std::to_string(S.QueryIdx) + " -> " +
             sampleVerdictName(S.Verdict) + " in " + fmtMs(S.DurationNs) +
             " (" + std::to_string(S.PcSize) + " assertions)\n";
    }
  }

  // Scheduler entailment cache: totals plus the per-shard distribution
  // (uneven shards indicate fingerprint skew).
  metrics::QueryCacheReport QC = metrics::Registry::get().queryCacheReport();
  if (QC.Valid) {
    uint64_t Total = QC.Hits + QC.Misses;
    char Rate[16];
    std::snprintf(Rate, sizeof(Rate), "%.1f%%",
                  Total ? 100.0 * QC.Hits / Total : 0.0);
    Out += "  [query-cache] " + std::to_string(QC.Hits) + " hits / " +
           std::to_string(QC.Misses) + " misses (" + Rate + "), " +
           std::to_string(QC.Insertions) + " insertions, " +
           std::to_string(QC.Evictions) + " evictions\n";
    if (!QC.Shards.empty()) {
      Out += "    shards (hits/misses):";
      for (const metrics::QueryCacheShardStat &S : QC.Shards)
        Out += " " + std::to_string(S.Hits) + "/" + std::to_string(S.Misses);
      Out += "\n";
    }
  }

  // The repeat-entailment telemetry saturates at a fixed fingerprint-set
  // cap; when that happened, say so — the repeat rate is a lower bound.
  if (uint64_t Overflow = metrics::Registry::get().entailSeenOverflow())
    Out += "  [telemetry] entail-seen set saturated: " +
           std::to_string(Overflow) +
           " fingerprints dropped; repeat rate is a lower bound\n";
  return Out;
}

std::string HybridReport::renderJson() const {
  std::string Out = "{\n  \"ok\": " + std::string(ok() ? "true" : "false") +
                    ",\n  \"analysis\": " + Analysis.renderJson() +
                    ",\n  \"unsafe_side\": [";
  for (std::size_t I = 0; I != UnsafeSide.size(); ++I) {
    const engine::VerifyReport &R = UnsafeSide[I];
    Out += I ? "," : "";
    Out += "\n    {\"func\": \"" + jsonEscape(R.Func) + "\"";
    Out += ", \"ok\": " + std::string(R.Ok ? "true" : "false");
    if (R.TimedOut)
      Out += ", \"timed_out\": true";
    if (R.Cached)
      Out += ", \"cached\": true";
    if (R.LintBlocked)
      Out += ", \"lint_blocked\": true";
    if (R.Static)
      Out += ", \"static\": true";
    if (!R.Diags.empty())
      Out += ", \"diagnostics\": " + analysis::renderDiagnosticsJson(R.Diags);
    Out += ", \"seconds\": " + std::to_string(R.Seconds);
    Out += ", \"paths\": " + std::to_string(R.PathsCompleted);
    Out += ", \"states\": " + std::to_string(R.StatesExplored);
    Out += ", \"ghost_annotations\": " + std::to_string(R.GhostAnnotations);
    Out += ", \"solver\": " + solverStatsJson(R.Solver);
    Out += ", \"errors\": " + errorsJson(R.Errors);
    if (!R.Phases.empty()) {
      Out += ", \"phases\": {";
      for (std::size_t P = 0; P != R.Phases.size(); ++P) {
        Out += P ? ", " : "";
        Out += "\"" + jsonEscape(R.Phases[P].Key) +
               "\": {\"count\": " + std::to_string(R.Phases[P].Count) +
               ", \"nanos\": " + std::to_string(R.Phases[P].Nanos) + "}";
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += UnsafeSide.empty() ? "],\n" : "\n  ],\n";
  Out += "  \"safe_side\": [";
  for (std::size_t I = 0; I != SafeSide.size(); ++I) {
    const creusot::SafeReport &R = SafeSide[I];
    Out += I ? "," : "";
    Out += "\n    {\"func\": \"" + jsonEscape(R.Func) + "\"";
    Out += ", \"ok\": " + std::string(R.Ok ? "true" : "false");
    if (R.TimedOut)
      Out += ", \"timed_out\": true";
    if (R.Cached)
      Out += ", \"cached\": true";
    Out += ", \"seconds\": " + std::to_string(R.Seconds);
    Out += ", \"solver\": " + solverStatsJson(R.Solver);
    Out += ", \"obligations\": [";
    for (std::size_t O = 0; O != R.Obligations.size(); ++O) {
      Out += O ? ", " : "";
      Out += "{\"where\": \"" + jsonEscape(R.Obligations[O].Where) +
             "\", \"what\": \"" + jsonEscape(R.Obligations[O].What) +
             "\", \"ok\": " + (R.Obligations[O].Ok ? "true" : "false") + "}";
    }
    Out += "]";
    Out += ", \"errors\": " + errorsJson(R.Errors);
    Out += "}";
  }
  Out += SafeSide.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}
