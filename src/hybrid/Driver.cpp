//===- hybrid/Driver.cpp ----------------------------------------------------------===//

#include "hybrid/Driver.h"

using namespace gilr;
using namespace gilr::hybrid;

Outcome<Unit> HybridDriver::encodeAndRegister(const std::string &Func) {
  const creusot::PearliteSpec *PSpec = Contracts.lookup(Func);
  if (!PSpec)
    return Outcome<Unit>::failure("no Pearlite contract for " + Func);
  const rmir::Function *F = Env.Prog.lookup(Func);
  if (!F)
    return Outcome<Unit>::failure("no RMIR definition of " + Func);
  Outcome<gilsonite::Spec> S = encodePearliteSpec(*PSpec, *F, Env.Ownables);
  if (!S.ok())
    return S.forward<Unit>();
  // Replace any previous registration (e.g. a show_safety spec).
  if (Env.Specs.lookup(Func)) {
    gilsonite::SpecTable Fresh;
    for (const auto &[Name, Spec] : Env.Specs.all())
      if (Name != Func)
        Fresh.add(Spec);
    Env.Specs = std::move(Fresh);
  }
  Env.Specs.add(std::move(S.value()));
  return Outcome<Unit>::success(Unit());
}

HybridReport HybridDriver::run(const std::vector<std::string> &UnsafeFuncs,
                               const std::vector<creusot::SafeFn> &Clients) {
  HybridReport Report;

  engine::Verifier V(Env);
  for (const std::string &Func : UnsafeFuncs)
    Report.UnsafeSide.push_back(V.verifyFunction(Func));

  creusot::SafeVerifier SV(Contracts, Env.Solv);
  for (const creusot::SafeFn &Client : Clients)
    Report.SafeSide.push_back(SV.verify(Client));

  return Report;
}
