//===- hybrid/Encode.cpp ----------------------------------------------------------===//

#include "hybrid/Encode.h"

#include "sym/ExprBuilder.h"

using namespace gilr;
using namespace gilr::hybrid;
using namespace gilr::gilsonite;

Outcome<Spec> gilr::hybrid::encodePearliteSpec(
    const creusot::PearliteSpec &PSpec, const rmir::Function &F,
    OwnableRegistry &Own) {
  if (PSpec.Params.size() != F.NumParams)
    return Outcome<Spec>::failure("Pearlite/RMIR parameter count mismatch for " +
                                  F.Name);

  Expr K = mkVar(ambientLifetimeName(), Sort::Lft);
  Expr Q = mkVar(ambientFractionName(), Sort::Real);

  Spec S;
  S.Func = F.Name;
  S.Doc = "encoded from Pearlite: " + PSpec.Doc;
  S.SpecVars.push_back(Binder{ambientLifetimeName(), Sort::Lft});
  S.SpecVars.push_back(Binder{ambientFractionName(), Sort::Real});

  // Representation environment: xi := mi (mutable references' mi are
  // (current, final) pairs by construction of own$&mut).
  creusot::LowerEnv Env;
  std::vector<AssertionP> Pre = {lftAlive(K, Q)};
  for (unsigned I = 0; I != F.NumParams; ++I) {
    const rmir::Local &Param = F.Locals[1 + I];
    std::string ReprName = "m$" + Param.Name;
    S.SpecVars.push_back(Binder{ReprName, Sort::Any});
    Env.Values[PSpec.Params[I].Name] = mkVar(ReprName, Sort::Any);
    Env.IsMutRef[PSpec.Params[I].Name] =
        Param.Ty->Kind == rmir::TypeKind::Ref;
    Pre.push_back(Own.own(Param.Ty, mkVar(Param.Name, Sort::Any),
                          mkVar(ReprName, Sort::Any), K));
  }

  if (PSpec.Pre) {
    Outcome<Expr> P = creusot::lowerPearlite(PSpec.Pre, Env);
    if (!P.ok())
      return P.forward<Spec>();
    Pre.push_back(observation(P.value()));
  }
  S.Pre = star(std::move(Pre));

  // Postcondition: ownership of the result plus the observed relation.
  Env.ResultVal = mkVar("m$ret", Sort::Any);
  std::vector<AssertionP> PostOwn = {lftAlive(K, Q)};
  AssertionP RetPart = emp();
  bool HasRet = F.returnType()->Kind != rmir::TypeKind::Unit;
  std::vector<AssertionP> Inner;
  if (HasRet)
    Inner.push_back(Own.own(F.returnType(), mkVar(retVarName(), Sort::Any),
                            mkVar("m$ret", Sort::Any), K));
  if (PSpec.Post) {
    Outcome<Expr> QF = creusot::lowerPearlite(PSpec.Post, Env);
    if (!QF.ok())
      return QF.forward<Spec>();
    Inner.push_back(observation(QF.value()));
  }
  if (HasRet)
    RetPart = exists({Binder{"m$ret", Sort::Any}}, star(std::move(Inner)));
  else
    RetPart = star(std::move(Inner));
  PostOwn.push_back(RetPart);
  S.Post = star(std::move(PostOwn));
  return Outcome<Spec>::success(std::move(S));
}
