//===- hybrid/Driver.h - End-to-end hybrid verification ---------------------===//
///
/// \file
/// Drives the hybrid approach of §2.1: Creusot-side verification of safe
/// client code against the axiomatised Pearlite contracts, and
/// Gillian-Rust-side verification of the unsafe implementations against the
/// *same* contracts after the systematic encoding — the division of labour
/// of Fig. 1.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_HYBRID_DRIVER_H
#define GILR_HYBRID_DRIVER_H

#include "analysis/Analysis.h"
#include "creusot/SafeVerifier.h"
#include "engine/Verifier.h"
#include "hybrid/Encode.h"

namespace gilr {
namespace sched {
struct SchedulerConfig;
} // namespace sched
namespace incr {
struct IncrConfig;
struct IncrRunStats;
} // namespace incr

namespace hybrid {

/// Combined report of one hybrid run.
struct HybridReport {
  std::vector<engine::VerifyReport> UnsafeSide;
  std::vector<creusot::SafeReport> SafeSide;
  /// The pre-verification analysis verdict (src/analysis/): every finding
  /// of the run, deterministically ordered. Default (disabled) when
  /// Env.Lint.Enabled is off.
  analysis::AnalysisResult Analysis;
  bool ok() const {
    if (!Analysis.ok())
      return false;
    for (const engine::VerifyReport &R : UnsafeSide)
      if (!R.Ok)
        return false;
    for (const creusot::SafeReport &R : SafeSide)
      if (!R.Ok)
        return false;
    return true;
  }

  /// Human-readable summary: one line per function (side, outcome, time,
  /// paths, solver queries), followed by a per-phase wall-time breakdown
  /// for each unsafe function when tracing is enabled.
  std::string summaryText() const;

  /// Machine-readable proof report: every function of both sides with its
  /// outcome, timing, solver-work delta and errors, as a JSON document.
  std::string renderJson() const;
};

/// Orchestrates both verifiers over one program + contract table.
class HybridDriver {
public:
  HybridDriver(engine::VerifEnv &Env,
               const creusot::PearliteSpecTable &Contracts)
      : Env(Env), Contracts(Contracts) {}

  /// Encodes the contract of \p Func into Gilsonite and registers it,
  /// replacing any previously registered spec. Returns the failure if the
  /// encoding is impossible.
  Outcome<Unit> encodeAndRegister(const std::string &Func);

  /// Verifies the listed unsafe implementations (Gillian-Rust side) and
  /// safe clients (Creusot side), serially.
  HybridReport run(const std::vector<std::string> &UnsafeFuncs,
                   const std::vector<creusot::SafeFn> &Clients);

  /// Same, through the proof scheduler: every obligation of both sides is
  /// an independent job on a work-stealing pool with a shared entailment
  /// cache and per-job budgets (sched/Scheduler.h). Serial when
  /// Config.Threads == 1. Reports are emitted in input order either way.
  /// Defined in sched/Scheduler.cpp.
  HybridReport run(const std::vector<std::string> &UnsafeFuncs,
                   const std::vector<creusot::SafeFn> &Clients,
                   const sched::SchedulerConfig &Config);

  /// Same, with incremental verification (incr/Session.h): obligations
  /// whose persisted verdict is still valid are replayed from the proof
  /// store (marked \c cached in the reports), the rest are proved and the
  /// store updated. Falls through to the plain scheduled run when
  /// Inc.Enabled is false. \p StatsOut, if given, receives the run's
  /// cached/verified/invalidated counters. Defined in sched/Scheduler.cpp.
  HybridReport run(const std::vector<std::string> &UnsafeFuncs,
                   const std::vector<creusot::SafeFn> &Clients,
                   const sched::SchedulerConfig &Config,
                   const incr::IncrConfig &Inc,
                   incr::IncrRunStats *StatsOut = nullptr);

private:
  engine::VerifEnv &Env;
  const creusot::PearliteSpecTable &Contracts;
};

} // namespace hybrid
} // namespace gilr

#endif // GILR_HYBRID_DRIVER_H
