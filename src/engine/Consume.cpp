//===- engine/Consume.cpp ---------------------------------------------------------===//

#include "engine/Consume.h"

#include "engine/Heuristics.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::engine;
using gilsonite::AsrtKind;
using gilsonite::AssertionP;
using gilsonite::PredDecl;

bool MatchCtx::fullyBound(const Expr &E) const {
  if (!E)
    return true;
  std::set<std::string> Vars;
  collectVars(E, Vars);
  for (const std::string &V : Vars)
    if (isUnbound(V))
      return false;
  return true;
}

Outcome<Unit> gilr::engine::unify(const Expr &Pattern, const Expr &Value,
                                  SymState &St, VerifEnv &Env, MatchCtx &M) {
  Expr P = M.resolve(Pattern);

  // Fully bound: a residual equality check against the path condition.
  if (M.fullyBound(P)) {
    Expr EqF = mkEq(P, Value);
    if (isTrueLit(EqF))
      return Outcome<Unit>::success(Unit());
    if (St.PC.entails(Env.Solv, EqF))
      return Outcome<Unit>::success(Unit());
    trace::instant("consume", "match-fail", [&] {
      return exprToString(P) + " != " + exprToString(Value);
    });
    return Outcome<Unit>::failure("match failure: " + exprToString(P) +
                                  " != " + exprToString(Value));
  }

  switch (P->Kind) {
  case ExprKind::Var:
    M.Bindings.bind(P->Name, Value);
    return Outcome<Unit>::success(Unit());
  case ExprKind::TupleLit: {
    for (std::size_t I = 0, E = P->Kids.size(); I != E; ++I) {
      Expr Component = Value->Kind == ExprKind::TupleLit &&
                               Value->Kids.size() == P->Kids.size()
                           ? Value->Kids[I]
                           : mkTupleGet(Value, static_cast<unsigned>(I));
      Outcome<Unit> R = unify(P->Kids[I], Component, St, Env, M);
      if (!R.ok())
        return R;
    }
    return Outcome<Unit>::success(Unit());
  }
  case ExprKind::Some: {
    if (Value->Kind == ExprKind::NoneLit)
      return Outcome<Unit>::failure("match failure: Some pattern vs None");
    Expr Inner;
    if (Value->Kind == ExprKind::Some) {
      Inner = Value->Kids[0];
    } else {
      if (!St.PC.entails(Env.Solv, mkIsSome(Value)))
        return Outcome<Unit>::failure(
            "match failure: cannot prove value is Some: " +
            exprToString(Value));
      Inner = mkUnwrap(Value);
    }
    return unify(P->Kids[0], Inner, St, Env, M);
  }
  case ExprKind::SeqUnit: {
    if (!St.PC.entails(Env.Solv, mkEq(mkSeqLen(Value), mkInt(1))))
      return Outcome<Unit>::failure(
          "match failure: cannot prove singleton sequence");
    return unify(P->Kids[0], mkSeqNth(Value, mkInt(0)), St, Env, M);
  }
  case ExprKind::SeqConcat: {
    // Support the cons pattern [h] ++ rest (and its n-ary prefix variant).
    Expr Rest = Value;
    __int128 Consumed = 0;
    for (std::size_t I = 0, E = P->Kids.size(); I != E; ++I) {
      const Expr &Part = P->Kids[I];
      if (Part->Kind == ExprKind::SeqUnit) {
        if (!St.PC.entails(Env.Solv,
                           mkLe(mkInt(1), mkSeqLen(Rest))))
          return Outcome<Unit>::failure(
              "match failure: sequence too short for cons pattern");
        Outcome<Unit> R =
            unify(Part->Kids[0], mkSeqNth(Rest, mkInt(0)), St, Env, M);
        if (!R.ok())
          return R;
        Rest = mkSeqSub(Rest, mkInt(1),
                        mkSub(mkSeqLen(Rest), mkInt(1)));
        ++Consumed;
        continue;
      }
      if (I + 1 == P->Kids.size()) {
        // Trailing part absorbs the remainder.
        return unify(Part, Rest, St, Env, M);
      }
      return Outcome<Unit>::failure(
          "unsupported sequence pattern in unification");
    }
    // All parts were units; the remainder must be empty.
    (void)Consumed;
    if (!St.PC.entails(Env.Solv, mkEq(mkSeqLen(Rest), mkInt(0))))
      return Outcome<Unit>::failure(
          "match failure: sequence has trailing elements");
    return Outcome<Unit>::success(Unit());
  }
  default:
    return Outcome<Unit>::failure(
        "unlearnable pattern in unification: " + exprToString(P));
  }
}

namespace {

/// Consumes a predicate call, trying folded instances first and falling
/// back to clause-by-clause definition consumption with backtracking.
Outcome<Unit> consumePredCall(const AssertionP &A, SymState &St,
                              VerifEnv &Env, MatchCtx &M) {
  GILR_TRACE_SCOPE_D("consume", "pred", A->Name);
  const PredDecl *Decl = Env.Preds.lookup(A->Name);
  if (!Decl)
    return Outcome<Unit>::failure("consume of undeclared predicate " +
                                  A->Name);
  if (Decl->Params.size() != A->Args.size())
    return Outcome<Unit>::failure("arity mismatch consuming " + A->Name);

  // Resolve arguments and decide which positions can drive the match.
  std::vector<Expr> Args;
  std::vector<bool> MustMatch;
  Args.reserve(A->Args.size());
  for (std::size_t I = 0, E = A->Args.size(); I != E; ++I) {
    Expr R = M.resolve(A->Args[I]);
    MustMatch.push_back(Decl->Params[I].In && M.fullyBound(R));
    Args.push_back(std::move(R));
  }

  // 1. A folded instance. Guarded predicates (borrows) can *only* be
  // consumed folded — their body is not owned by the current state.
  if (A->Kind == AsrtKind::GuardedCall) {
    SymState Snapshot = St;
    MatchCtx MSnapshot = M;
    Expr Kappa = M.resolve(A->Kappa);
    Outcome<pred::GuardedPred> G = St.Guarded.consumeGuarded(
        A->Name, M.fullyBound(Kappa) ? Kappa : nullptr, Args, MustMatch,
        Env.Solv, St.PC);
    if (G.ok()) {
      bool AllOk = unify(A->Kappa, G.value().Kappa, St, Env, M).ok();
      for (std::size_t I = 0; AllOk && I != G.value().Args.size(); ++I)
        AllOk = unify(A->Args[I], G.value().Args[I], St, Env, M).ok();
      if (AllOk)
        return Outcome<Unit>::success(Unit());
    }
    St = std::move(Snapshot);
    M = std::move(MSnapshot);
    return Outcome<Unit>::failure("no matching guarded instance of " +
                                  A->Name);
  }
  {
    SymState Snapshot = St;
    MatchCtx MSnapshot = M;
    Outcome<std::vector<Expr>> Got =
        St.Folded.consume(A->Name, Args, MustMatch, Env.Solv, St.PC);
    if (Got.ok()) {
      bool AllOk = true;
      for (std::size_t I = 0; AllOk && I != Got.value().size(); ++I)
        AllOk = unify(A->Args[I], Got.value()[I], St, Env, M).ok();
      if (AllOk)
        return Outcome<Unit>::success(Unit());
      St = std::move(Snapshot);
      M = std::move(MSnapshot);
    }
  }

  // 2. Definition fallback (fold-free consumption).
  if (Decl->Abstract || Decl->Clauses.empty())
    return Outcome<Unit>::failure("no folded instance of abstract predicate " +
                                  A->Name);
  std::string Errors;
  for (std::size_t CI = 0, CE = Decl->Clauses.size(); CI != CE; ++CI) {
    SymState Snapshot = St;
    MatchCtx MSnapshot = M;
    AssertionP Clause =
        gilsonite::instantiateClause(*Decl, CI, A->Args, nullptr, St.VG);
    Outcome<Unit> R = consume(Clause, St, Env, M);
    if (R.ok()) {
      // The clause's pure facts must actually be consistent here; a clause
      // whose checks passed only because the branch is infeasible is fine
      // too (the state is then vacuous).
      return R;
    }
    Errors += " [clause " + std::to_string(CI) + ": " +
              (R.failed() ? R.error() : "vanished") + "]";
    St = std::move(Snapshot);
    M = std::move(MSnapshot);
  }
  return Outcome<Unit>::failure("cannot consume " + A->Name +
                                " (no folded instance; definition fallback "
                                "failed:" +
                                Errors + ")");
}

} // namespace

Outcome<Unit> gilr::engine::consume(const AssertionP &A, SymState &St,
                                    VerifEnv &Env, MatchCtx &M) {
  heap::HeapCtx Ctx = St.heapCtx(Env);
  switch (A->Kind) {
  case AsrtKind::Star: {
    for (const AssertionP &P : A->Parts) {
      Outcome<Unit> R = consume(P, St, Env, M);
      if (!R.ok())
        return R;
    }
    return Outcome<Unit>::success(Unit());
  }
  case AsrtKind::Exists: {
    for (const gilsonite::Binder &B : A->Binders)
      M.Pending.insert(B.Name);
    return consume(A->Body, St, Env, M);
  }
  case AsrtKind::Pure: {
    Expr F = M.resolve(A->Formula);
    // Conjunctions arise when substitution decomposes a tuple equality;
    // consume each conjunct so learning still happens component-wise.
    if (F->Kind == ExprKind::And) {
      for (const Expr &Part : F->Kids) {
        Outcome<Unit> R = consume(gilsonite::pure(Part), St, Env, M);
        if (!R.ok())
          return R;
      }
      return Outcome<Unit>::success(Unit());
    }
    if (M.fullyBound(F)) {
      if (isTrueLit(F) || St.PC.entails(Env.Solv, F))
        return Outcome<Unit>::success(Unit());
      return Outcome<Unit>::failure("pure fact not entailed: " +
                                    exprToString(F));
    }
    // Learn from an oriented equality.
    if (F->Kind == ExprKind::Eq) {
      const Expr &L = F->Kids[0];
      const Expr &R = F->Kids[1];
      if (M.fullyBound(L))
        return unify(R, L, St, Env, M);
      if (M.fullyBound(R))
        return unify(L, R, St, Env, M);
    }
    return Outcome<Unit>::failure("pure fact with unlearnable unknowns: " +
                                  exprToString(F));
  }
  case AsrtKind::PointsTo: {
    Expr Ptr = M.resolve(A->Ptr);
    if (!M.fullyBound(Ptr))
      return Outcome<Unit>::failure("points-to with unbound pointer");
    Outcome<Expr> V = St.Heap.consumePointsTo(Ptr, A->Ty, Ctx);
    if (!V.ok())
      return V.forward<Unit>();
    return unify(A->Val, V.value(), St, Env, M);
  }
  case AsrtKind::UninitPT: {
    Expr Ptr = M.resolve(A->Ptr);
    Outcome<Expr> V = St.Heap.consumeMaybeUninit(Ptr, A->Ty, Ctx);
    if (!V.ok())
      return V.forward<Unit>();
    if (V.value()->Kind != ExprKind::NoneLit)
      return Outcome<Unit>::failure(
          "uninit points-to consumed initialised memory");
    return Outcome<Unit>::success(Unit());
  }
  case AsrtKind::MaybeUninit: {
    Expr Ptr = M.resolve(A->Ptr);
    Outcome<Expr> V = St.Heap.consumeMaybeUninit(Ptr, A->Ty, Ctx);
    if (!V.ok())
      return V.forward<Unit>();
    return unify(A->Val, V.value(), St, Env, M);
  }
  case AsrtKind::ArrayPT: {
    Expr Ptr = M.resolve(A->Ptr);
    Expr Count = M.resolve(A->Count);
    if (!M.fullyBound(Ptr) || !M.fullyBound(Count))
      return Outcome<Unit>::failure("array points-to with unbound bounds");
    Outcome<Expr> V = St.Heap.consumeArray(Ptr, A->Ty, Count, Ctx);
    if (!V.ok())
      return V.forward<Unit>();
    return unify(A->Seq, V.value(), St, Env, M);
  }
  case AsrtKind::ArrayUninit: {
    Expr Ptr = M.resolve(A->Ptr);
    Expr Count = M.resolve(A->Count);
    if (!M.fullyBound(Ptr) || !M.fullyBound(Count))
      return Outcome<Unit>::failure("uninit array with unbound bounds");
    return St.Heap.consumeArrayUninit(Ptr, A->Ty, Count, Ctx);
  }
  case AsrtKind::PredCall:
  case AsrtKind::GuardedCall:
    return consumePredCall(A, St, Env, M);
  case AsrtKind::LftAlive: {
    // Call-site instantiation: an unbound lifetime matches the first alive
    // entry (the single-lifetime restriction of §7.1 makes this exact);
    // an unbound fraction takes everything owned.
    Expr K = M.resolve(A->Kappa);
    if (!M.fullyBound(K)) {
      std::optional<Expr> Any = St.Lft.someAliveLifetime();
      if (!Any)
        return Outcome<Unit>::failure(
            "no alive lifetime to instantiate the spec lifetime with");
      Outcome<Unit> R = unify(A->Kappa, *Any, St, Env, M);
      if (!R.ok())
        return R;
      K = M.resolve(A->Kappa);
    }
    Expr Q = M.resolve(A->Frac);
    if (!M.fullyBound(Q)) {
      std::optional<Expr> Owned = St.Lft.ownedFraction(K, Env.Solv, St.PC);
      if (!Owned)
        return Outcome<Unit>::failure("no alive token owned for lifetime");
      Outcome<Unit> R = unify(A->Frac, *Owned, St, Env, M);
      if (!R.ok())
        return R;
      Q = M.resolve(A->Frac);
    }
    return St.Lft.consumeAlive(K, Q, Env.Solv, St.PC);
  }
  case AsrtKind::LftDead:
    return St.Lft.consumeDead(M.resolve(A->Kappa), Env.Solv, St.PC);
  case AsrtKind::Observation: {
    Expr F = M.resolve(A->Formula);
    if (!M.fullyBound(F))
      return Outcome<Unit>::failure("observation with unbound variables: " +
                                    exprToString(F));
    return St.Obs.consume(F, Env.Solv, St.PC);
  }
  case AsrtKind::ValueObs: {
    Expr X = reduceWithPC(M.resolve(A->PcyVar), St.PC);
    if (X->Kind != ExprKind::Var)
      return Outcome<Unit>::failure("value observer of non-variable");
    Outcome<Expr> V = St.Pcy.consumeVO(X->Name);
    if (!V.ok())
      return V.forward<Unit>();
    return unify(A->Val, V.value(), St, Env, M);
  }
  case AsrtKind::ProphCtrl: {
    Expr X = reduceWithPC(M.resolve(A->PcyVar), St.PC);
    if (X->Kind != ExprKind::Var)
      return Outcome<Unit>::failure("prophecy controller of non-variable");
    Expr Pattern = M.resolve(A->Val);
    if (M.fullyBound(Pattern)) {
      std::optional<Expr> Cur = St.Pcy.currentValue(X->Name);
      if (Cur && !St.PC.entails(Env.Solv, mkEq(*Cur, Pattern))) {
        // Mut-Auto-Update (§5.3): when enabled, the prophecy's value is
        // updated to whatever lets the borrow close again.
        if (St.AutoProphecyUpdate && St.Pcy.hasVO(X->Name) &&
            St.Pcy.hasPC(X->Name)) {
          Outcome<Unit> U = St.Pcy.update(X->Name, Pattern);
          if (!U.ok())
            return U;
        } else {
          return Outcome<Unit>::failure(
              "prophecy controller value mismatch for " + X->Name);
        }
      }
    }
    Outcome<Expr> V = St.Pcy.consumePC(X->Name);
    if (!V.ok())
      return V.forward<Unit>();
    return unify(A->Val, V.value(), St, Env, M);
  }
  }
  return Outcome<Unit>::failure("unknown assertion kind in consume");
}

Outcome<Unit> gilr::engine::consumeAll(const AssertionP &A, SymState &St,
                                       VerifEnv &Env, MatchCtx &M) {
  GILR_TRACE_SCOPE("consume", "all");
  Outcome<Unit> R = consume(A, St, Env, M);
  if (!R.ok())
    return R;
  for (const std::string &P : M.Pending)
    if (!M.Bindings.contains(P))
      return Outcome<Unit>::failure("existential '" + P +
                                    "' was never learned during consumption");
  return Outcome<Unit>::success(Unit());
}
