//===- engine/Produce.h - Assertion production ------------------------------===//
///
/// \file
/// Producing an assertion adds the corresponding resource to the symbolic
/// state (the prod_ρ actions of §2.3, extended to whole assertions by
/// Gillian). Existentials are instantiated with fresh symbolic variables;
/// predicate calls are produced in folded form; each core predicate
/// dispatches to its state component's producer. A production that
/// contradicts the state (duplicate exclusive resource, alive token of a
/// dead lifetime, inconsistent observation) *vanishes* — the branch is
/// assumed away.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ENGINE_PRODUCE_H
#define GILR_ENGINE_PRODUCE_H

#include "engine/SymState.h"

namespace gilr {
namespace engine {

/// Produces \p A (whose free variables must be meaningful in the current
/// state) into \p St.
Outcome<Unit> produce(const gilsonite::AssertionP &A, SymState &St,
                      VerifEnv &Env);

/// Produces one successor state per clause of \p Decl instantiated at
/// \p Args (with \p Kappa substituted for 'kappa in guarded bodies),
/// pruning vanished and inconsistent branches. Used by unfold, gunfold and
/// the automation heuristics.
std::vector<SymState> produceClauses(const SymState &Base, VerifEnv &Env,
                                     const gilsonite::PredDecl &Decl,
                                     const std::vector<Expr> &Args,
                                     const Expr &Kappa);

} // namespace engine
} // namespace gilr

#endif // GILR_ENGINE_PRODUCE_H
