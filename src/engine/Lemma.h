//===- engine/Lemma.h - Borrow extraction and freezing lemmas (§4.3) -------===//
///
/// \file
/// The lemma machinery of §4.3. Users *declare* lemmas; the engine verifies
/// their hypotheses automatically at registration time and then allows
/// their conclusions to be applied as ghost commands:
///
/// * \c FreezeLemma — existential freezing: converts an *open* borrow of
///   predicate From into a closed borrow of predicate To, whose extra
///   out-parameters pin the values of From's existentials. Verified by
///   checking To's body entails From's body (so closing with To is sound).
///
/// * \c ExtractLemma — the Borrow-Extract rule: under a persistent fact F,
///   converts a closed borrow &κ P into a smaller closed borrow &κ Q
///   (keeping the lifetime token). Verified by proving
///   F * P ==> Q * (Q -* P): produce P, consume Q, then re-produce Q and
///   consume P in the remainder (wand packaging in the style of the sound
///   magic-wand automation the paper references). The extraction also
///   allocates the fresh prophecy of the extracted mutable reference — the
///   prophecy-aware enhancement §7.1 describes as designed.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ENGINE_LEMMA_H
#define GILR_ENGINE_LEMMA_H

#include "engine/Consume.h"
#include "engine/Heuristics.h"
#include "engine/SymState.h"

#include <map>
#include <variant>

namespace gilr {
namespace engine {

/// Existential freezing lemma declaration.
struct FreezeLemma {
  std::string Name;
  std::string FromPred; ///< The open borrow's predicate (closing token).
  std::string ToPred;   ///< The frozen predicate (extra Out params).
};

/// Borrow extraction lemma declaration (Fig. 8).
struct ExtractLemma {
  std::string Name;
  /// Named holes bound when the lemma is applied; the first \c GivenParams
  /// are bound from ghost arguments, the rest learned from the matched
  /// borrow instance.
  std::vector<std::string> Params;
  std::size_t GivenParams = 0;
  /// Params that denote mutable-reference *values* (pointer, prophecy)
  /// pairs; at registration time they are materialised as such so the
  /// prophecy component is a proper prophecy variable.
  std::set<std::string> MutRefParams;
  std::string FromPred;
  std::vector<Expr> FromArgs; ///< Patterns over Params.
  Expr Persistent;            ///< The persistent fact F (over Params).
  /// Pure glue linking given params to learned ones (e.g. the new
  /// reference's pointer equals a field of the borrow's content). Assumed
  /// during the hypothesis proof, checked at every application.
  Expr Requires;
  std::string ToPred;
  std::vector<Expr> ToArgs; ///< Over Params plus the fresh prophecy hole.
  /// The prophecy of the extracted reference: either the name of a Param
  /// (whose resolved value must reduce to a prophecy variable — typically
  /// the second component of a mutref param) or a hole allocated fresh.
  std::string NewProphecyHole = "x_new";
};

/// Registered lemmas; registration verifies the hypothesis obligation.
class LemmaTable {
public:
  /// Verifies and registers; returns the failure if the hypothesis proof
  /// fails.
  Outcome<Unit> registerFreeze(FreezeLemma L, VerifEnv &Env);
  Outcome<Unit> registerExtract(ExtractLemma L, VerifEnv &Env);

  /// Applies lemma \p Name with the given ghost argument values.
  Outcome<Unit> apply(const std::string &Name, const std::vector<Expr> &Args,
                      SymState &St, VerifEnv &Env);

  bool contains(const std::string &Name) const { return Map.count(Name); }
  std::size_t size() const { return Map.size(); }

  /// The registered lemma names, sorted. Passed down to the pre-verification
  /// analysis (src/analysis/), which cannot see this table (layering), for
  /// the unused-lemma cross-reference.
  std::vector<std::string> names() const {
    std::vector<std::string> Out;
    Out.reserve(Map.size());
    for (const auto &[Name, L] : Map) {
      (void)L;
      Out.push_back(Name);
    }
    return Out;
  }

  /// The registered lemma named \p Name, or nullptr. Used by the
  /// incremental layer to fingerprint lemma statements.
  const std::variant<FreezeLemma, ExtractLemma> *
  lookup(const std::string &Name) const;

  /// Mutable access for *tests* that simulate editing a lemma between
  /// incremental runs. Production code registers lemmas once; mutating a
  /// lemma does not re-run its hypothesis proof.
  std::variant<FreezeLemma, ExtractLemma> *
  lookupMutable(const std::string &Name);

private:
  Outcome<Unit> applyFreeze(const FreezeLemma &L,
                            const std::vector<Expr> &Args, SymState &St,
                            VerifEnv &Env);
  Outcome<Unit> applyExtract(const ExtractLemma &L,
                             const std::vector<Expr> &Args, SymState &St,
                             VerifEnv &Env);

  std::map<std::string, std::variant<FreezeLemma, ExtractLemma>> Map;
};

} // namespace engine
} // namespace gilr

#endif // GILR_ENGINE_LEMMA_H
