//===- engine/Consume.h - Assertion consumption and matching ---------------===//
///
/// \file
/// Consuming an assertion removes the corresponding resource from the
/// symbolic state (the cons_ρ actions of §2.3), while *learning* the values
/// of existentially bound variables and spec out-variables by unification:
/// a points-to consumption matches its value pattern against the value
/// found in the heap, a predicate consumption matches its out-parameters
/// against the folded instance found, etc. When no folded instance of a
/// predicate exists, consumption falls back to consuming the predicate's
/// definition clause-by-clause with backtracking — this is what lets a
/// postcondition mentioning own$LinkedList be consumed out of a heap in
/// which the list predicate was unfolded during execution.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ENGINE_CONSUME_H
#define GILR_ENGINE_CONSUME_H

#include "engine/SymState.h"

#include <set>

namespace gilr {
namespace engine {

/// Unification bindings threaded through a consumption.
struct MatchCtx {
  Subst Bindings;
  std::set<std::string> Pending; ///< Names awaiting a binding.

  bool isUnbound(const std::string &Name) const {
    return Pending.count(Name) && !Bindings.contains(Name);
  }
  /// Applies current bindings to \p E.
  Expr resolve(const Expr &E) const { return Bindings.apply(E); }
  /// True if no pending variable remains free in \p E.
  bool fullyBound(const Expr &E) const;
};

/// Unifies \p Pattern (a constructor tree over possibly-unbound variables)
/// against \p Value: binds unbound variables, checks bound residue against
/// the path condition.
Outcome<Unit> unify(const Expr &Pattern, const Expr &Value, SymState &St,
                    VerifEnv &Env, MatchCtx &M);

/// Consumes \p A from \p St, learning bindings into \p M.
Outcome<Unit> consume(const gilsonite::AssertionP &A, SymState &St,
                      VerifEnv &Env, MatchCtx &M);

/// Consumes \p A and then verifies that every pending variable was learned.
Outcome<Unit> consumeAll(const gilsonite::AssertionP &A, SymState &St,
                         VerifEnv &Env, MatchCtx &M);

} // namespace engine
} // namespace gilr

#endif // GILR_ENGINE_CONSUME_H
