//===- engine/SymState.cpp -------------------------------------------------------===//

#include "engine/SymState.h"

#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::engine;

std::string SymState::dump() const {
  std::string Out;
  Out += "== heap ==\n" + Heap.dump();
  Out += "== lifetimes ==\n" + Lft.dump();
  Out += "== folded ==\n" + Folded.dump();
  Out += "== guarded ==\n" + Guarded.dump();
  Out += "== observations ==\n" + Obs.dump();
  Out += "== prophecies ==\n" + Pcy.dump();
  Out += "== path condition ==\n";
  for (const Expr &F : PC.facts())
    Out += "  " + exprToString(F) + "\n";
  return Out;
}
