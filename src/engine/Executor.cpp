//===- engine/Executor.cpp --------------------------------------------------------===//

#include "engine/Executor.h"

#include "engine/Heuristics.h"
#include "engine/Produce.h"
#include "heap/Projection.h"
#include "solver/Simplify.h"
#include "support/Budget.h"
#include "support/Deps.h"
#include "support/Diagnostics.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <cassert>

using namespace gilr;
using namespace gilr::engine;
using namespace gilr::rmir;
using gilsonite::AssertionP;

Sort gilr::engine::valueSort(TypeRef Ty) {
  switch (Ty->Kind) {
  case TypeKind::Bool:
    return Sort::Bool;
  case TypeKind::Int:
    return Sort::Int;
  case TypeKind::Unit:
    return Sort::Unit;
  case TypeKind::Struct:
  case TypeKind::RawPtr: // (loc, projection) tuples.
  case TypeKind::Ref:    // (pointer, prophecy) tuples.
    return Sort::Tuple;
  case TypeKind::Enum:
    return Ty->isOption() ? Sort::Opt : Sort::Tuple;
  case TypeKind::Array:
    return Sort::Seq;
  case TypeKind::Param:
    return Sort::Any;
  }
  GILR_UNREACHABLE("unknown type kind");
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

void Executor::harvestObservations(SymState &St) {
  if (!Env.Auto.ObsExtraction)
    return;
  // Prophecy-free observations are plain facts (the RustHornBelt rule the
  // paper leaves unautomated in §7.3): move them into the path condition.
  for (const Expr &Fact : St.Obs.facts())
    if (!mentionsProphecy(Fact))
      St.PC.add(Fact);
}

void Executor::pathFail(const Frame &Fr, const std::string &Msg) {
  Result.Ok = false;
  // Name the phase that rejected the path (the open trace spans, when
  // telemetry is on) and the size of the branch's path condition — the two
  // facts a failure investigation reaches for first.
  std::string Where = "in " + F->Name + " (bb" + std::to_string(Fr.BB) +
                      ", pc " + std::to_string(Fr.St.PC.size()) + " facts";
  std::string Spans = trace::spanStack();
  if (!Spans.empty())
    Where += ", phase " + Spans;
  Where += ")";
  trace::instant("engine", "path-fail", [&] { return Where + ": " + Msg; });
  Result.Errors.push_back(Where + ": " + Msg);
  if (getenv("GILR_DUMP_ON_FAIL")) {
    std::fprintf(stderr, "=== path failure state ===\n%s\n",
                 Fr.St.dump().c_str());
    for (const auto &[Id, V] : Fr.Locals)
      std::fprintf(stderr, "local %s = %s\n", F->Locals[Id].Name.c_str(),
                   exprToString(V).c_str());
  }
}

void Executor::enqueue(Frame Fr) { Work.push_back(std::move(Fr)); }

ExecResult Executor::run(const rmir::Function &Fn,
                         const gilsonite::Spec &S) {
  GILR_TRACE_SCOPE_D("engine", "run", Fn.Name);
  // Counted so the telemetry can assert "the pre-pass rejected this entity
  // before any symbolic execution" (zero executor runs for blocked entities).
  if (trace::enabled())
    metrics::Registry::get().add("engine.executor_runs");
  F = &Fn;
  Spec = &S;
  Result = ExecResult();
  Work.clear();

  Frame Init;
  for (unsigned I = 0; I != Fn.NumParams; ++I) {
    const Local &P = Fn.Locals[1 + I];
    Expr V = mkVar(P.Name, valueSort(P.Ty));
    Init.Locals[1 + I] = V;
    // Parameters arrive as valid representations of their type (§3.2
    // validity invariants): a u32 argument is in range by construction.
    Init.St.PC.add(heap::validityInvariant(P.Ty, V));
  }

  Outcome<Unit> Pre = [&] {
    GILR_TRACE_SCOPE("engine", "produce-pre");
    return produce(S.Pre, Init.St, Env);
  }();
  if (Pre.failed()) {
    Result.Ok = false;
    Result.Errors.push_back("producing precondition of " + Fn.Name + ": " +
                            Pre.error());
    return Result;
  }
  if (Pre.vanished() || !Init.St.viable(Env.Solv))
    return Result; // Vacuous: the precondition is unsatisfiable.
  harvestObservations(Init.St);

  enqueue(std::move(Init));

  unsigned Steps = 0;
  while (!Work.empty()) {
    if (++Steps > StepLimit) {
      Result.Ok = false;
      Result.Errors.push_back("step limit exceeded in " + Fn.Name);
      break;
    }
    // The per-job budget armed by the scheduler: abandon the remaining
    // paths instead of stalling the worker (the solver polls it too, so
    // long queries also unwind promptly).
    if (budget::exceeded()) {
      Result.Ok = false;
      Result.BudgetExhausted = true;
      break;
    }
    Frame Fr = std::move(Work.back());
    Work.pop_back();
    ++Result.StatesExplored;

    const BasicBlock &Block = Fn.Blocks.at(Fr.BB);
    if (Fr.StmtIdx < Block.Stmts.size()) {
      const Statement &St = Block.Stmts[Fr.StmtIdx];
      execStatement(std::move(Fr), St, [this](Frame Next) {
        ++Next.StmtIdx;
        enqueue(std::move(Next));
      });
      continue;
    }
    execTerminator(std::move(Fr), Block.Term);
  }
  if (trace::enabled()) {
    metrics::Registry::get().add("engine.steps", Steps);
    metrics::Registry::get().add("engine.states", Result.StatesExplored);
    metrics::Registry::get().add("engine.paths", Result.PathsCompleted);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Heap actions with automation retries
//===----------------------------------------------------------------------===//

void Executor::withLoad(Frame Fr, const Expr &Ptr, TypeRef Ty, bool Move,
                        unsigned Fuel, const ExprCont &K) {
  Frame Attempt = Fr;
  heap::HeapCtx Ctx = Attempt.St.heapCtx(Env);
  Outcome<Expr> R = Attempt.St.Heap.load(Ptr, Ty, Move, Ctx);
  if (R.ok()) {
    K(std::move(Attempt), R.value());
    return;
  }
  if (Fuel != 0) {
    std::vector<SymState> Succs = unfoldForPointer(Fr.St, Env, Ptr);
    if (!Succs.empty()) {
      if (trace::enabled()) {
        trace::instant("engine", "retry-load",
                       [&] { return exprToString(Ptr); });
        metrics::Registry::get().add("engine.heap_retries", 1);
      }
      for (SymState &SS : Succs) {
        Frame Next = Fr;
        Next.St = std::move(SS);
        withLoad(std::move(Next), Ptr, Ty, Move, Fuel - 1, K);
      }
      return;
    }
  }
  pathFail(Fr, "load at type " + Ty->str() + " from " + exprToString(Ptr) +
                   ": " + (R.failed() ? R.error() : "vanished"));
}

void Executor::withStore(Frame Fr, const Expr &Ptr, TypeRef Ty,
                         const Expr &Val, unsigned Fuel, const Cont &K) {
  Frame Attempt = Fr;
  heap::HeapCtx Ctx = Attempt.St.heapCtx(Env);
  Outcome<Unit> R = Attempt.St.Heap.store(Ptr, Ty, Val, Ctx);
  if (R.ok()) {
    K(std::move(Attempt));
    return;
  }
  if (Fuel != 0) {
    std::vector<SymState> Succs = unfoldForPointer(Fr.St, Env, Ptr);
    if (!Succs.empty()) {
      if (trace::enabled()) {
        trace::instant("engine", "retry-store",
                       [&] { return exprToString(Ptr); });
        metrics::Registry::get().add("engine.heap_retries", 1);
      }
      for (SymState &SS : Succs) {
        Frame Next = Fr;
        Next.St = std::move(SS);
        withStore(std::move(Next), Ptr, Ty, Val, Fuel - 1, K);
      }
      return;
    }
  }
  pathFail(Fr, "store at type " + Ty->str() + " to " + exprToString(Ptr) +
                   ": " + (R.failed() ? R.error() : "vanished"));
}

void Executor::withFree(Frame Fr, const Expr &Ptr, TypeRef Ty, unsigned Fuel,
                        const Cont &K) {
  Frame Attempt = Fr;
  heap::HeapCtx Ctx = Attempt.St.heapCtx(Env);
  Outcome<Unit> R = Attempt.St.Heap.freeTyped(Ptr, Ty, Ctx);
  if (R.ok()) {
    K(std::move(Attempt));
    return;
  }
  if (Fuel != 0) {
    std::vector<SymState> Succs = unfoldForPointer(Fr.St, Env, Ptr);
    if (!Succs.empty()) {
      if (trace::enabled()) {
        trace::instant("engine", "retry-free",
                       [&] { return exprToString(Ptr); });
        metrics::Registry::get().add("engine.heap_retries", 1);
      }
      for (SymState &SS : Succs) {
        Frame Next = Fr;
        Next.St = std::move(SS);
        withFree(std::move(Next), Ptr, Ty, Fuel - 1, K);
      }
      return;
    }
  }
  pathFail(Fr, "free at type " + Ty->str() + " of " + exprToString(Ptr) +
                   ": " + (R.failed() ? R.error() : "vanished"));
}

//===----------------------------------------------------------------------===//
// Places and operands
//===----------------------------------------------------------------------===//

namespace {

/// Index of the first Deref element, or npos.
std::size_t firstDeref(const std::vector<PlaceElem> &Elems) {
  for (std::size_t I = 0; I != Elems.size(); ++I)
    if (Elems[I].Kind == PlaceElem::Deref)
      return I;
  return std::string::npos;
}

} // namespace

/// Projects a local's pure value through non-deref place elements
/// [0, End), tracking the type. Returns failure for unsupported shapes.
static Outcome<std::pair<Expr, TypeRef>>
projectPure(const rmir::Function &F, Expr V, TypeRef Ty,
            const std::vector<PlaceElem> &Elems, std::size_t End) {
  unsigned Variant = 0;
  bool Down = false;
  for (std::size_t I = 0; I != End; ++I) {
    const PlaceElem &E = Elems[I];
    switch (E.Kind) {
    case PlaceElem::Deref:
      GILR_UNREACHABLE("deref in pure projection");
    case PlaceElem::Downcast:
      Variant = E.Index;
      Down = true;
      break;
    case PlaceElem::Field:
      if (Ty->Kind == TypeKind::Struct) {
        V = mkTupleGet(V, E.Index);
        Ty = Ty->Fields.at(E.Index).Ty;
      } else if (Ty->Kind == TypeKind::Enum && Down) {
        if (Ty->isOption()) {
          assert(Variant == 1 && E.Index == 0 && "bad option downcast");
          V = mkUnwrap(V);
          Ty = Ty->optionPayload();
        } else {
          V = mkTupleGet(mkTupleGet(V, 1), E.Index);
          Ty = Ty->Variants.at(Variant).Fields.at(E.Index).Ty;
        }
        Down = false;
      } else {
        return Outcome<std::pair<Expr, TypeRef>>::failure(
            "unsupported pure projection");
      }
      break;
    }
  }
  return Outcome<std::pair<Expr, TypeRef>>::success({V, Ty});
}

/// Rebuilds a local's pure value with the sub-place [I, End) replaced by
/// NewV.
static Outcome<Expr> updatePure(Expr Old, TypeRef Ty,
                                const std::vector<PlaceElem> &Elems,
                                std::size_t I, std::size_t End, Expr NewV) {
  if (I == End)
    return Outcome<Expr>::success(NewV);
  const PlaceElem &E = Elems[I];
  if (E.Kind == PlaceElem::Field && Ty->Kind == TypeKind::Struct) {
    std::vector<Expr> Parts;
    for (std::size_t J = 0; J != Ty->Fields.size(); ++J) {
      if (J == E.Index) {
        Outcome<Expr> Sub =
            updatePure(mkTupleGet(Old, E.Index), Ty->Fields[J].Ty, Elems,
                       I + 1, End, NewV);
        if (!Sub.ok())
          return Sub;
        Parts.push_back(Sub.value());
      } else {
        Parts.push_back(mkTupleGet(Old, static_cast<unsigned>(J)));
      }
    }
    return Outcome<Expr>::success(mkTuple(std::move(Parts)));
  }
  if (E.Kind == PlaceElem::Downcast && Ty->isOption() && I + 1 < End &&
      Elems[I + 1].Kind == PlaceElem::Field) {
    Outcome<Expr> Sub = updatePure(mkUnwrap(Old), Ty->optionPayload(), Elems,
                                   I + 2, End, NewV);
    if (!Sub.ok())
      return Sub;
    return Outcome<Expr>::success(mkSome(Sub.value()));
  }
  return Outcome<Expr>::failure("unsupported pure place update");
}

void Executor::placeAddress(
    Frame Fr, const Place &P,
    const std::function<void(Frame, Expr, TypeRef)> &K) {
  std::size_t D = firstDeref(P.Elems);
  if (D == std::string::npos) {
    pathFail(Fr, "address of a non-deref place is not supported");
    return;
  }
  auto It = Fr.Locals.find(P.Local);
  if (It == Fr.Locals.end()) {
    pathFail(Fr, "use of uninitialised local " + F->Locals[P.Local].Name);
    return;
  }
  Outcome<std::pair<Expr, TypeRef>> Base =
      projectPure(*F, It->second, F->Locals[P.Local].Ty, P.Elems, D);
  if (!Base.ok()) {
    pathFail(Fr, Base.error());
    return;
  }
  auto [V, Ty] = Base.value();
  if (!Ty->isPointerLike()) {
    pathFail(Fr, "deref of non-pointer place");
    return;
  }
  Expr Ptr = Ty->Kind == TypeKind::Ref ? mkTupleGet(V, 0) : V;

  // Walk the post-deref elements, loading through further derefs.
  std::function<void(Frame, Expr, TypeRef, std::size_t)> Walk =
      [this, &P, K, &Walk](Frame Fr2, Expr Cur, TypeRef CurTy,
                           std::size_t I) {
        TypeRef Ty2 = CurTy;
        Expr Addr = Cur;
        unsigned Variant = 0;
        bool Down = false;
        for (; I < P.Elems.size(); ++I) {
          const PlaceElem &E = P.Elems[I];
          switch (E.Kind) {
          case PlaceElem::Field:
            if (Ty2->Kind == TypeKind::Struct) {
              Addr = heap::appendProjElem(
                  Addr, heap::ProjElem::field(Ty2, E.Index));
              Ty2 = Ty2->Fields.at(E.Index).Ty;
            } else if (Ty2->Kind == TypeKind::Enum && Down) {
              Addr = heap::appendProjElem(
                  Addr,
                  heap::ProjElem::variantField(Ty2, Variant, E.Index));
              Ty2 = Ty2->Variants.at(Variant).Fields.at(E.Index).Ty;
              Down = false;
            } else {
              pathFail(Fr2, "unsupported field projection in address");
              return;
            }
            break;
          case PlaceElem::Downcast:
            Variant = E.Index;
            Down = true;
            break;
          case PlaceElem::Deref: {
            // Load the pointer stored at the current address and continue.
            std::size_t Next = I + 1;
            TypeRef PtrTy = Ty2;
            withLoad(std::move(Fr2), Addr, PtrTy, /*Move=*/false,
                     Env.Auto.HeuristicFuel,
                     [&Walk, PtrTy, Next](Frame Fr3, Expr PV) {
                       Expr NB = PtrTy->Kind == TypeKind::Ref
                                     ? mkTupleGet(PV, 0)
                                     : PV;
                       Walk(std::move(Fr3), NB, PtrTy->Pointee, Next);
                     });
            return;
          }
          }
        }
        K(std::move(Fr2), Addr, Ty2);
      };
  Walk(std::move(Fr), Ptr, Ty->Pointee, D + 1);
}

void Executor::readPlace(Frame Fr, const Place &P, bool Move,
                         const ExprCont &K) {
  std::size_t D = firstDeref(P.Elems);
  if (D == std::string::npos) {
    auto It = Fr.Locals.find(P.Local);
    if (It == Fr.Locals.end()) {
      pathFail(Fr, "use of uninitialised local " + F->Locals[P.Local].Name);
      return;
    }
    Outcome<std::pair<Expr, TypeRef>> R =
        projectPure(*F, It->second, F->Locals[P.Local].Ty, P.Elems,
                    P.Elems.size());
    if (!R.ok()) {
      pathFail(Fr, R.error());
      return;
    }
    if (Move && P.Elems.empty())
      Fr.Locals.erase(P.Local);
    K(std::move(Fr), R.value().first);
    return;
  }
  placeAddress(std::move(Fr), P,
               [this, Move, K](Frame Fr2, Expr Addr, TypeRef SlotTy) {
                 withLoad(std::move(Fr2), Addr, SlotTy, Move,
                          Env.Auto.HeuristicFuel, K);
               });
}

void Executor::writePlace(Frame Fr, const Place &P, const Expr &Val,
                          const Cont &K) {
  std::size_t D = firstDeref(P.Elems);
  if (D == std::string::npos) {
    if (P.Elems.empty()) {
      Fr.Locals[P.Local] = Val;
      K(std::move(Fr));
      return;
    }
    auto It = Fr.Locals.find(P.Local);
    if (It == Fr.Locals.end()) {
      pathFail(Fr, "partial write into uninitialised local " +
                       F->Locals[P.Local].Name);
      return;
    }
    Outcome<Expr> Updated =
        updatePure(It->second, F->Locals[P.Local].Ty, P.Elems, 0,
                   P.Elems.size(), Val);
    if (!Updated.ok()) {
      pathFail(Fr, Updated.error());
      return;
    }
    Fr.Locals[P.Local] = Updated.value();
    K(std::move(Fr));
    return;
  }
  placeAddress(std::move(Fr), P,
               [this, Val, K](Frame Fr2, Expr Addr, TypeRef SlotTy) {
                 withStore(std::move(Fr2), Addr, SlotTy, Val,
                           Env.Auto.HeuristicFuel, K);
               });
}

void Executor::evalOperand(Frame Fr, const Operand &Op, const ExprCont &K) {
  switch (Op.Kind) {
  case Operand::Const:
    K(std::move(Fr), Op.ConstVal);
    return;
  case Operand::Copy:
    readPlace(std::move(Fr), Op.P, /*Move=*/false, K);
    return;
  case Operand::Move:
    readPlace(std::move(Fr), Op.P, /*Move=*/true, K);
    return;
  }
}

void Executor::evalOperands(
    Frame Fr, const std::vector<Operand> &Ops, std::vector<Expr> Acc,
    const std::function<void(Frame, std::vector<Expr>)> &K) {
  if (Acc.size() == Ops.size()) {
    K(std::move(Fr), std::move(Acc));
    return;
  }
  const Operand &Next = Ops[Acc.size()];
  evalOperand(std::move(Fr), Next,
              [this, &Ops, Acc = std::move(Acc), K](Frame Fr2,
                                                    Expr V) mutable {
                Acc.push_back(std::move(V));
                evalOperands(std::move(Fr2), Ops, std::move(Acc), K);
              });
}

//===----------------------------------------------------------------------===//
// Rvalues
//===----------------------------------------------------------------------===//

void Executor::evalRvalue(Frame Fr, const Rvalue &RV, const ExprCont &K) {
  switch (RV.Kind) {
  case Rvalue::Use:
    evalOperand(std::move(Fr), RV.Ops[0], K);
    return;
  case Rvalue::BinaryOp: {
    TypeRef Ty = operandType(*F, RV.Ops[0]);
    BinOp Op = RV.BOp;
    evalOperands(std::move(Fr), RV.Ops, {},
                 [this, Ty, Op, K](Frame Fr2, std::vector<Expr> Vs) {
                   const Expr &A = Vs[0];
                   const Expr &B = Vs[1];
                   switch (Op) {
                   case BinOp::Eq:
                     K(std::move(Fr2), mkEq(A, B));
                     return;
                   case BinOp::Ne:
                     K(std::move(Fr2), mkNe(A, B));
                     return;
                   case BinOp::Lt:
                     K(std::move(Fr2), mkLt(A, B));
                     return;
                   case BinOp::Le:
                     K(std::move(Fr2), mkLe(A, B));
                     return;
                   case BinOp::Gt:
                     K(std::move(Fr2), mkGt(A, B));
                     return;
                   case BinOp::Ge:
                     K(std::move(Fr2), mkGe(A, B));
                     return;
                   case BinOp::Add:
                   case BinOp::Sub:
                   case BinOp::Mul: {
                     if (!Ty->isInt()) {
                       pathFail(Fr2, "checked arithmetic on non-integer");
                       return;
                     }
                     Expr Raw = Op == BinOp::Add   ? mkAdd(A, B)
                                : Op == BinOp::Sub ? mkSub(A, B)
                                                   : mkMul(A, B);
                     // Rust semantics: overflow panics. A panic is safe
                     // (type-safety proofs tolerate the aborting branch);
                     // functional proofs must rule it out. A failed bound
                     // may be provable once folded invariants (e.g. the
                     // list's len = |repr| equation) are unfolded.
                     Expr InRange = heap::validityInvariant(Ty, Raw);
                     if (!Fr2.St.PC.entails(Env.Solv, InRange))
                       Fr2.St = saturateUnfolds(std::move(Fr2.St), Env);
                     if (!Fr2.St.PC.entails(Env.Solv, InRange)) {
                       if (!Env.Auto.PanicsAllowed) {
                         pathFail(Fr2,
                                  "possible arithmetic overflow at type " +
                                      Ty->str() + ": " + exprToString(Raw));
                         return;
                       }
                       // The overflowing branch aborts (nothing to prove);
                       // continue on the in-range branch.
                       Frame PanicFr = Fr2;
                       if (PanicFr.St.PC.add(negate(InRange)) &&
                           PanicFr.St.viable(Env.Solv))
                         ++Result.PathsCompleted; // Safe abort.
                       if (!Fr2.St.PC.add(InRange) ||
                           !Fr2.St.viable(Env.Solv))
                         return; // Always panics: no normal continuation.
                     }
                     K(std::move(Fr2), Raw);
                     return;
                   }
                   }
                 });
    return;
  }
  case Rvalue::UnaryOp: {
    UnOp Op = RV.UOp;
    TypeRef Ty = operandType(*F, RV.Ops[0]);
    evalOperand(std::move(Fr), RV.Ops[0],
                [this, Op, Ty, K](Frame Fr2, Expr V) {
                  if (Op == UnOp::Not) {
                    K(std::move(Fr2), mkNot(V));
                    return;
                  }
                  Expr Raw = mkNeg(V);
                  Expr InRange = heap::validityInvariant(Ty, Raw);
                  if (!Fr2.St.PC.entails(Env.Solv, InRange)) {
                    pathFail(Fr2, "possible negation overflow");
                    return;
                  }
                  K(std::move(Fr2), Raw);
                });
    return;
  }
  case Rvalue::Aggregate: {
    TypeRef Ty = RV.AggTy;
    unsigned Variant = RV.Variant;
    evalOperands(std::move(Fr), RV.Ops, {},
                 [Ty, Variant, K](Frame Fr2, std::vector<Expr> Vs) {
                   if (Ty->Kind == TypeKind::Struct) {
                     K(std::move(Fr2), mkTuple(std::move(Vs)));
                     return;
                   }
                   if (Ty->isOption()) {
                     K(std::move(Fr2),
                       Variant == 0 ? mkNone() : mkSome(Vs.at(0)));
                     return;
                   }
                   K(std::move(Fr2),
                     mkTuple({mkInt(Variant), mkTuple(std::move(Vs))}));
                 });
    return;
  }
  case Rvalue::Discriminant: {
    TypeRef Ty = placeType(*F, RV.P);
    readPlace(std::move(Fr), RV.P, /*Move=*/false,
              [Ty, K](Frame Fr2, Expr V) {
                if (Ty->isOption()) {
                  K(std::move(Fr2),
                    mkIte(mkIsSome(V), mkInt(1), mkInt(0)));
                  return;
                }
                K(std::move(Fr2), mkTupleGet(V, 0));
              });
    return;
  }
  case Rvalue::RefOf: {
    placeAddress(std::move(Fr), RV.P,
                 [K](Frame Fr2, Expr Addr, TypeRef) {
                   Expr Pcy = Fr2.St.VG.freshProphecy("ref");
                   K(std::move(Fr2), mkTuple({Addr, Pcy}));
                 });
    return;
  }
  case Rvalue::AddrOf: {
    placeAddress(std::move(Fr), RV.P,
                 [K](Frame Fr2, Expr Addr, TypeRef) {
                   K(std::move(Fr2), Addr);
                 });
    return;
  }
  case Rvalue::PtrOffset: {
    TypeRef PtrTy = operandType(*F, RV.Ops[0]);
    assert(PtrTy->Kind == TypeKind::RawPtr && "offset of non-raw pointer");
    TypeRef Pointee = PtrTy->Pointee;
    evalOperands(std::move(Fr), RV.Ops, {},
                 [Pointee, K](Frame Fr2, std::vector<Expr> Vs) {
                   K(std::move(Fr2),
                     heap::appendProjElem(
                         Vs[0], heap::ProjElem::offset(Pointee, Vs[1])));
                 });
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Executor::execStatement(Frame Fr, const Statement &S, const Cont &K) {
  switch (S.Kind) {
  case Statement::Assign:
    evalRvalue(std::move(Fr), S.RV, [this, &S, K](Frame Fr2, Expr V) {
      writePlace(std::move(Fr2), S.Dest, V, K);
    });
    return;
  case Statement::Alloc: {
    heap::HeapCtx Ctx = Fr.St.heapCtx(Env);
    Expr Ptr = Fr.St.Heap.alloc(S.AllocTy, Ctx);
    writePlace(std::move(Fr), S.Dest, Ptr, K);
    return;
  }
  case Statement::Free: {
    TypeRef Ty = S.AllocTy;
    evalOperand(std::move(Fr), S.FreeArg,
                [this, Ty, K](Frame Fr2, Expr Ptr) {
                  withFree(std::move(Fr2), Ptr, Ty,
                           Env.Auto.HeuristicFuel, K);
                });
    return;
  }
  case Statement::GhostStmt:
    execGhost(std::move(Fr), S.G, K);
    return;
  case Statement::Nop:
    K(std::move(Fr));
    return;
  }
}

void Executor::execGhost(Frame Fr, const Ghost &G, const Cont &K) {
  switch (G.Kind) {
  case GhostKind::Unfold:
  case GhostKind::GUnfold: {
    bool IsGuarded = G.Kind == GhostKind::GUnfold;
    std::string Name = G.Name;
    evalOperands(
        std::move(Fr), G.Args, {},
        [this, Name, IsGuarded, K](Frame Fr2, std::vector<Expr> Ins) {
          // Locate the instance whose leading arguments match.
          auto matches = [&](const std::vector<Expr> &Args) {
            if (Args.size() < Ins.size())
              return false;
            for (std::size_t I = 0; I != Ins.size(); ++I)
              if (!exprEquals(Args[I], Ins[I]) &&
                  !Fr2.St.PC.entails(Env.Solv, mkEq(Args[I], Ins[I])))
                return false;
            return true;
          };
          std::vector<SymState> Succs;
          if (IsGuarded) {
            for (const pred::GuardedPred &GP : Fr2.St.Guarded.guarded())
              if (GP.Name == Name && matches(GP.Args)) {
                Succs = gunfoldGuarded(Fr2.St, Env, GP);
                break;
              }
          } else {
            for (const pred::FoldedPred &FP : Fr2.St.Folded.entries())
              if (FP.Name == Name && matches(FP.Args)) {
                Succs = unfoldFolded(Fr2.St, Env, FP.Name, FP.Args);
                break;
              }
          }
          if (Succs.empty()) {
            pathFail(Fr2, "ghost unfold: no matching instance of " + Name);
            return;
          }
          for (SymState &SS : Succs) {
            Frame Next = Fr2;
            Next.St = std::move(SS);
            K(std::move(Next));
          }
        });
    return;
  }
  case GhostKind::Fold: {
    std::string Name = G.Name;
    evalOperands(std::move(Fr), G.Args, {},
                 [this, Name, K](Frame Fr2, std::vector<Expr> Ins) {
                   Outcome<Unit> R = foldPred(Fr2.St, Env, Name, Ins);
                   if (!R.ok()) {
                     pathFail(Fr2, R.failed() ? R.error()
                                              : "fold vanished");
                     return;
                   }
                   K(std::move(Fr2));
                 });
    return;
  }
  case GhostKind::GFold: {
    std::string Name = G.Name;
    evalOperands(
        std::move(Fr), G.Args, {},
        [this, Name, K](Frame Fr2, std::vector<Expr> Ins) {
          for (const pred::ClosingToken &Tok : Fr2.St.Guarded.closing()) {
            if (Tok.Name != Name)
              continue;
            if (!Ins.empty() &&
                !pred::argsMatch(Tok.Args, Ins, {}, Env.Solv, Fr2.St.PC))
              continue;
            pred::ClosingToken Copy = Tok;
            Outcome<Unit> R =
                gfoldBorrow(Fr2.St, Env, Copy, Copy.Name, Copy.Args);
            if (!R.ok()) {
              pathFail(Fr2, R.failed() ? R.error() : "gfold vanished");
              return;
            }
            K(std::move(Fr2));
            return;
          }
          pathFail(Fr2, "ghost gfold: no open borrow of " + Name);
        });
    return;
  }
  case GhostKind::ApplyLemma: {
    std::string Name = G.Name;
    evalOperands(std::move(Fr), G.Args, {},
                 [this, Name, K](Frame Fr2, std::vector<Expr> Args) {
                   // Materialise deterministic invariant knowledge first:
                   // freezing/extraction often needs facts (lengths, node
                   // shapes) hidden in folded ownership predicates.
                   Fr2.St = saturateUnfolds(std::move(Fr2.St), Env);
                   Outcome<Unit> R =
                       Env.Lemmas.apply(Name, Args, Fr2.St, Env);
                   if (!R.ok()) {
                     pathFail(Fr2, R.failed() ? R.error()
                                              : "lemma vanished");
                     return;
                   }
                   K(std::move(Fr2));
                 });
    return;
  }
  case GhostKind::MutRefAutoResolve: {
    TypeRef Ty = operandType(*F, G.Args.at(0));
    evalOperand(std::move(Fr), G.Args.at(0),
                [Ty, K](Frame Fr2, Expr V) {
                  Fr2.St.AutoResolve.push_back({V, Ty});
                  Fr2.St.AutoProphecyUpdate = true;
                  K(std::move(Fr2));
                });
    return;
  }
  case GhostKind::ProphecyAutoUpdate: {
    Fr.St.AutoProphecyUpdate = true;
    K(std::move(Fr));
    return;
  }
  case GhostKind::AssertPure: {
    // Ghost assertions are written over local names.
    Subst S;
    for (const auto &[Id, V] : Fr.Locals)
      S.bind(F->Locals[Id].Name, V);
    Expr Fact = S.apply(G.PureArg);
    if (!Fr.St.PC.entails(Env.Solv, Fact)) {
      pathFail(Fr, "ghost assertion not entailed: " + exprToString(Fact));
      return;
    }
    K(std::move(Fr));
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Terminators
//===----------------------------------------------------------------------===//

void Executor::execTerminator(Frame Fr, const Terminator &T) {
  switch (T.Kind) {
  case Terminator::Goto: {
    Fr.BB = T.Target;
    Fr.StmtIdx = 0;
    enqueue(std::move(Fr));
    return;
  }
  case Terminator::SwitchInt: {
    bool IsBool =
        operandType(*F, T.Discr)->Kind == TypeKind::Bool;
    evalOperand(std::move(Fr), T.Discr, [this, &T, IsBool](Frame Fr2,
                                                           Expr D) {
      unsigned Taken = 0;
      std::vector<Expr> NotArms;
      for (const auto &[Val, BB] : T.Arms) {
        Frame Branch = Fr2;
        // MIR switches on bools with integer arms: 0 is false.
        Expr Cond = IsBool ? (Val == 0 ? negate(D) : D)
                           : mkEq(D, mkInt(Val));
        NotArms.push_back(mkNot(Cond));
        if (!Branch.St.PC.add(Cond))
          continue;
        if (!Branch.St.viable(Env.Solv))
          continue;
        Branch.BB = BB;
        Branch.StmtIdx = 0;
        ++Taken;
        enqueue(std::move(Branch));
      }
      Frame Other = std::move(Fr2);
      bool OtherTaken = Other.St.PC.add(mkAnd(std::move(NotArms))) &&
                        Other.St.viable(Env.Solv);
      if (OtherTaken) {
        Other.BB = T.Otherwise;
        Other.StmtIdx = 0;
        ++Taken;
        enqueue(std::move(Other));
      }
      if (Taken > 1 && trace::enabled()) {
        trace::instant("engine", "fork", [&] {
          return std::to_string(Taken) + " branches";
        });
        metrics::Registry::get().add("engine.forks", Taken - 1);
      }
    });
    return;
  }
  case Terminator::Call:
    execCall(std::move(Fr), T);
    return;
  case Terminator::Return:
    execReturn(std::move(Fr));
    return;
  case Terminator::Unreachable:
    if (Fr.St.viable(Env.Solv))
      pathFail(Fr, "reachable 'unreachable' terminator");
    return;
  }
}

void Executor::execCall(Frame Fr, const Terminator &T) {
  // The callee's *body* matters only through its spec, but a changed body
  // can change whether the call resolves at all — record both.
  deps::note(deps::Kind::Function, T.Callee);
  const gilsonite::Spec *CalleeSpec = Env.Specs.lookup(T.Callee);
  const rmir::Function *Callee = Env.Prog.lookup(T.Callee);
  if (!CalleeSpec || !Callee) {
    pathFail(Fr, "call to " + T.Callee + " without a spec/definition");
    return;
  }
  evalOperands(std::move(Fr), T.Args, {}, [this, &T, CalleeSpec, Callee](
                                              Frame Fr2,
                                              std::vector<Expr> Args) {
    // Rename the callee's spec variables apart and bind its parameters.
    Subst Ren;
    MatchCtx M;
    for (const gilsonite::Binder &SV : CalleeSpec->SpecVars) {
      Expr Fresh = Fr2.St.VG.fresh("cs$" + SV.Name, SV.S);
      Ren.bind(SV.Name, Fresh);
      M.Pending.insert(Fresh->Name);
    }
    for (unsigned I = 0; I != Callee->NumParams; ++I)
      Ren.bind(Callee->Locals[1 + I].Name, Args.at(I));

    AssertionP PreI = substAssertion(CalleeSpec->Pre, Ren);
    GILR_TRACE_SCOPE_D("engine", "call", T.Callee);
    Outcome<Unit> Consumed =
        consumeWithHeuristics(PreI, Fr2.St, Env, M, Env.Auto.HeuristicFuel);
    if (!Consumed.ok()) {
      pathFail(Fr2, "precondition of callee " + T.Callee + ": " +
                        (Consumed.failed() ? Consumed.error() : "vanished"));
      return;
    }

    Expr RetV = Fr2.St.VG.fresh("ret$" + T.Callee,
                                valueSort(Callee->returnType()));
    Subst PostS;
    PostS.bind(gilsonite::retVarName(), RetV);
    AssertionP PostI = substAssertion(
        substAssertion(CalleeSpec->Post, Ren), M.Bindings);
    PostI = substAssertion(PostI, PostS);
    Outcome<Unit> Produced = produce(PostI, Fr2.St, Env);
    if (Produced.failed()) {
      pathFail(Fr2, "producing postcondition of callee " + T.Callee + ": " +
                        Produced.error());
      return;
    }
    if (Produced.vanished() || !Fr2.St.viable(Env.Solv))
      return; // Infeasible call result; path pruned.
    harvestObservations(Fr2.St);

    writePlace(std::move(Fr2), T.Dest, RetV, [this, &T](Frame Fr3) {
      Fr3.BB = T.Target;
      Fr3.StmtIdx = 0;
      enqueue(std::move(Fr3));
    });
  });
}

Outcome<Unit> Executor::resolveMutRef(Frame &Fr, const Expr &RefVal,
                                      TypeRef RefTy) {
  if (RefTy->Kind != TypeKind::Ref)
    return Outcome<Unit>::failure("mutref_auto_resolve of non-reference");
  TypeRef Pointee = RefTy->Pointee;
  std::string Inner = gilsonite::OwnableRegistry::mutRefInnerName(Pointee);
  Expr P = simplify(mkTupleGet(RefVal, 0));
  Expr X = simplify(mkTupleGet(RefVal, 1));

  // Close this reference's borrow if it is open.
  bool SavedUpdate = Fr.St.AutoProphecyUpdate;
  Fr.St.AutoProphecyUpdate = true;
  for (const pred::ClosingToken &Tok : Fr.St.Guarded.closing()) {
    if (Tok.Name != Inner)
      continue;
    if (!pred::argsMatch(Tok.Args, {P, X}, {}, Env.Solv, Fr.St.PC))
      continue;
    pred::ClosingToken Copy = Tok;
    Outcome<Unit> Closed = gfoldBorrow(Fr.St, Env, Copy, Copy.Name,
                                       Copy.Args);
    Fr.St.AutoProphecyUpdate = SavedUpdate;
    if (!Closed.ok())
      return Closed;
    break;
  }
  Fr.St.AutoProphecyUpdate = SavedUpdate;

  // MutRef-Resolve: consume the reference's ownership and observe that the
  // final value of the prophecy equals the value at expiry.
  std::string OwnName = Env.Ownables.ownPred(RefTy);
  Expr ReprHole = Fr.St.VG.fresh("resolve$repr", Sort::Any);
  Expr KappaHole = Fr.St.VG.freshLifetime("resolve$k");
  MatchCtx M;
  M.Pending.insert(ReprHole->Name);
  M.Pending.insert(KappaHole->Name);
  AssertionP OwnCall =
      gilsonite::predCall(OwnName, {RefVal, ReprHole, KappaHole});
  Outcome<Unit> Consumed =
      consumeWithHeuristics(OwnCall, Fr.St, Env, M, Env.Auto.HeuristicFuel);
  if (!Consumed.ok())
    return Outcome<Unit>::failure(
        "mutref_auto_resolve: cannot consume reference ownership: " +
        (Consumed.failed() ? Consumed.error() : "vanished"));
  Expr Repr = M.resolve(ReprHole);
  Expr Obs = mkEq(mkTupleGet(Repr, 0), mkTupleGet(Repr, 1));
  Outcome<Unit> ObsOk = Fr.St.Obs.produce(simplify(Obs), Env.Solv, Fr.St.PC);
  if (ObsOk.failed())
    return ObsOk;
  return Outcome<Unit>::success(Unit());
}

void Executor::execReturn(Frame Fr) {
  // Materialise deterministic predicate knowledge (e.g. dllSeg's empty
  // case) before borrows close and seal it away.
  Fr.St = saturateUnfolds(std::move(Fr.St), Env);

  // Resolve the references registered by mutref_auto_resolve!. The list is
  // copied out: resolution rewrites the state (snapshot/rollback would
  // otherwise invalidate the iteration).
  std::vector<std::pair<Expr, TypeRef>> ToResolve = Fr.St.AutoResolve;
  Fr.St.AutoResolve.clear();
  for (const auto &[RefVal, RefTy] : ToResolve) {
    Outcome<Unit> R = resolveMutRef(Fr, RefVal, RefTy);
    if (!R.ok()) {
      pathFail(Fr, R.failed() ? R.error() : "mutref resolution vanished");
      return;
    }
  }

  // Close any remaining open borrows (Mut-Auto-Update enabled: the closing
  // value is chosen to let the borrow close, §5.3).
  if (Env.Auto.AutoCloseAtReturn) {
    bool Saved = Fr.St.AutoProphecyUpdate;
    Fr.St.AutoProphecyUpdate = true;
    closeAllBorrows(Fr.St, Env);
    Fr.St.AutoProphecyUpdate = Saved;
  }

  Expr RetVal = mkUnit();
  auto It = Fr.Locals.find(0);
  if (It != Fr.Locals.end())
    RetVal = It->second;
  else if (F->returnType()->Kind != TypeKind::Unit) {
    pathFail(Fr, "return without initialising the return place");
    return;
  }

  Subst RetS;
  RetS.bind(gilsonite::retVarName(), RetVal);
  AssertionP PostI = substAssertion(Spec->Post, RetS);
  MatchCtx M;
  GILR_TRACE_SCOPE("engine", "consume-post");
  Outcome<Unit> R =
      consumeWithHeuristics(PostI, Fr.St, Env, M, Env.Auto.HeuristicFuel);
  if (!R.ok()) {
    std::string Msg = "postcondition: " +
                      (R.failed() ? R.error() : "consumption vanished");
    // A postcondition failure is often the shadow of a borrow that could
    // not be closed (the invariant does not reform): surface that cause.
    if (!Fr.St.Guarded.closing().empty()) {
      pred::ClosingToken Tok = Fr.St.Guarded.closing().front();
      bool Saved = Fr.St.AutoProphecyUpdate;
      Fr.St.AutoProphecyUpdate = true;
      Outcome<Unit> Close = gfoldBorrow(Fr.St, Env, Tok, Tok.Name, Tok.Args);
      Fr.St.AutoProphecyUpdate = Saved;
      if (!Close.ok())
        Msg += " [root cause: the borrow &" + exprToString(Tok.Kappa) + " " +
               Tok.Name + " cannot be closed: " +
               (Close.failed() ? Close.error() : "vanished") + "]";
    }
    pathFail(Fr, Msg);
    return;
  }
  ++Result.PathsCompleted;
}
