//===- engine/Executor.h - Compositional symbolic execution of RMIR --------===//
///
/// \file
/// The symbolic executor: runs an RMIR function over symbolic states,
/// branching at switches and at predicate unfoldings, calling other
/// functions by their specs (compositional verification), and discharging
/// the function's own specification — produce the precondition, execute,
/// consume the postcondition on every return path.
///
/// Heap actions that miss (resource hidden in a folded predicate or behind
/// a closed borrow) are retried after the automation layer unfolds/opens
/// the relevant predicate (§4.2); execution continues in every viable
/// branch.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ENGINE_EXECUTOR_H
#define GILR_ENGINE_EXECUTOR_H

#include "engine/Lemma.h"
#include "engine/SymState.h"

#include <functional>

namespace gilr {
namespace engine {

/// Result of verifying one function against its spec.
struct ExecResult {
  bool Ok = true;
  /// The job budget (support/Budget.h) fired while executing: remaining
  /// paths were abandoned and the outcome is Unknown, not a refutation.
  bool BudgetExhausted = false;
  std::vector<std::string> Errors;
  unsigned PathsCompleted = 0;
  unsigned StatesExplored = 0;
};

/// Executes one function against one spec.
class Executor {
public:
  explicit Executor(VerifEnv &Env) : Env(Env) {}

  /// Verifies \p F against \p S. All return paths must establish the
  /// postcondition.
  ExecResult run(const rmir::Function &F, const gilsonite::Spec &S);

private:
  struct Frame {
    SymState St;
    std::map<rmir::LocalId, Expr> Locals;
    rmir::BlockId BB = 0;
    std::size_t StmtIdx = 0;
  };

  using Cont = std::function<void(Frame)>;
  using ExprCont = std::function<void(Frame, Expr)>;

  void pathFail(const Frame &Fr, const std::string &Msg);
  void enqueue(Frame Fr);
  /// §7.3 extension: prophecy-free observations become path facts.
  void harvestObservations(SymState &St);

  // Heap actions with automation retries (may fan out).
  void withLoad(Frame Fr, const Expr &Ptr, rmir::TypeRef Ty, bool Move,
                unsigned Fuel, const ExprCont &K);
  void withStore(Frame Fr, const Expr &Ptr, rmir::TypeRef Ty,
                 const Expr &Val, unsigned Fuel, const Cont &K);
  void withFree(Frame Fr, const Expr &Ptr, rmir::TypeRef Ty, unsigned Fuel,
                const Cont &K);

  // Operand / place evaluation.
  void evalOperand(Frame Fr, const rmir::Operand &Op, const ExprCont &K);
  void evalOperands(Frame Fr, const std::vector<rmir::Operand> &Ops,
                    std::vector<Expr> Acc, const
                    std::function<void(Frame, std::vector<Expr>)> &K);
  void readPlace(Frame Fr, const rmir::Place &P, bool Move, const ExprCont &K);
  void writePlace(Frame Fr, const rmir::Place &P, const Expr &Val,
                  const Cont &K);
  /// Resolves the address denoted by a place containing a Deref; \p K also
  /// receives the type of the addressed slot.
  void placeAddress(Frame Fr, const rmir::Place &P,
                    const std::function<void(Frame, Expr, rmir::TypeRef)> &K);

  void evalRvalue(Frame Fr, const rmir::Rvalue &RV, const ExprCont &K);

  // Statement / terminator dispatch.
  void execStatement(Frame Fr, const rmir::Statement &S, const Cont &K);
  void execGhost(Frame Fr, const rmir::Ghost &G, const Cont &K);
  void execTerminator(Frame Fr, const rmir::Terminator &T);
  void execReturn(Frame Fr);
  void execCall(Frame Fr, const rmir::Terminator &T);

  /// MutRef-Resolve at return: closes the reference's borrow (with
  /// Mut-Auto-Update), consumes its ownership and produces the resolution
  /// observation <cur = fut>.
  Outcome<Unit> resolveMutRef(Frame &Fr, const Expr &RefVal,
                              rmir::TypeRef RefTy);

  VerifEnv &Env;
  const rmir::Function *F = nullptr;
  const gilsonite::Spec *Spec = nullptr;
  ExecResult Result;
  std::vector<Frame> Work;
  unsigned StepLimit = 200000;
};

/// The symbolic value sort used for locals of an RMIR type.
Sort valueSort(rmir::TypeRef Ty);

} // namespace engine
} // namespace gilr

#endif // GILR_ENGINE_EXECUTOR_H
