//===- engine/Lemma.cpp -----------------------------------------------------------===//

#include "engine/Lemma.h"

#include "engine/Heuristics.h"
#include "engine/Produce.h"
#include "solver/Simplify.h"
#include "support/Deps.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::engine;
using gilsonite::AssertionP;
using gilsonite::AsrtKind;
using gilsonite::PredDecl;

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

/// Removes the Exists binders of an already-instantiated clause and
/// substitutes the values learned for them.
static AssertionP stripExistsAndBind(const AssertionP &A, const MatchCtx &M) {
  switch (A->Kind) {
  case AsrtKind::Star: {
    std::vector<AssertionP> Parts;
    for (const AssertionP &P : A->Parts)
      Parts.push_back(stripExistsAndBind(P, M));
    return star(std::move(Parts));
  }
  case AsrtKind::Exists:
    return stripExistsAndBind(A->Body, M);
  default:
    return substAssertion(A, M.Bindings);
  }
}

//===----------------------------------------------------------------------===//
// Freeze lemmas
//===----------------------------------------------------------------------===//

Outcome<Unit> LemmaTable::registerFreeze(FreezeLemma L, VerifEnv &Env) {
  const PredDecl *From = Env.Preds.lookup(L.FromPred);
  const PredDecl *To = Env.Preds.lookup(L.ToPred);
  if (!From || !To)
    return Outcome<Unit>::failure("freeze lemma over undeclared predicates");
  if (To->Params.size() < From->Params.size())
    return Outcome<Unit>::failure(
        "freeze target must extend the source's parameters");

  // Hypothesis: the frozen body entails the original body, so a borrow
  // closed at the frozen predicate is a valid closing of the original.
  SymState St;
  Expr Kappa = St.VG.freshLifetime("'kfr");
  std::vector<Expr> ToArgs;
  for (const gilsonite::PredParam &P : To->Params)
    ToArgs.push_back(St.VG.fresh("fr$" + P.Name, P.S));

  Outcome<Unit> Produced = Outcome<Unit>::failure("no clause produced");
  for (std::size_t CI = 0; CI != To->Clauses.size(); ++CI) {
    AssertionP Clause =
        gilsonite::instantiateClause(*To, CI, ToArgs, Kappa, St.VG);
    Produced = produce(Clause, St, Env);
    if (Produced.ok())
      break;
  }
  if (!Produced.ok())
    return Outcome<Unit>::failure("freeze hypothesis: cannot produce " +
                                  L.ToPred);

  std::vector<Expr> FromArgs(ToArgs.begin(),
                             ToArgs.begin() +
                                 static_cast<long>(From->Params.size()));
  MatchCtx M;
  AssertionP FromBody =
      gilsonite::instantiateClause(*From, 0, FromArgs, Kappa, St.VG);
  Outcome<Unit> Consumed = consumeWithHeuristics(FromBody, St, Env, M, 8);
  if (!Consumed.ok())
    return Outcome<Unit>::failure("freeze hypothesis of '" + L.Name +
                                  "' failed: " + Consumed.error());

  Map.emplace(L.Name, std::move(L));
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> LemmaTable::applyFreeze(const FreezeLemma &L,
                                      const std::vector<Expr> &Args,
                                      SymState &St, VerifEnv &Env) {
  // The borrow must currently be open: find its closing token.
  for (const pred::ClosingToken &Tok : St.Guarded.closing()) {
    if (Tok.Name != L.FromPred)
      continue;
    if (!Args.empty() &&
        !pred::argsMatch(Tok.Args, Args, {}, Env.Solv, St.PC))
      continue;
    pred::ClosingToken Copy = Tok;
    return gfoldBorrow(St, Env, Copy, L.ToPred, Copy.Args);
  }
  return Outcome<Unit>::failure("freeze lemma '" + L.Name +
                                "': no open borrow of " + L.FromPred);
}

//===----------------------------------------------------------------------===//
// Extraction lemmas
//===----------------------------------------------------------------------===//

Outcome<Unit> LemmaTable::registerExtract(ExtractLemma L, VerifEnv &Env) {
  const PredDecl *From = Env.Preds.lookup(L.FromPred);
  const PredDecl *To = Env.Preds.lookup(L.ToPred);
  if (!From || !To)
    return Outcome<Unit>::failure(
        "extract lemma over undeclared predicates");

  // Hypothesis proof of F * P ==> Q * (Q -* P).
  SymState St;
  Subst PS;
  for (const std::string &P : L.Params) {
    if (L.MutRefParams.count(P)) {
      // Mutref values are (pointer, prophecy) pairs.
      PS.bind(P, mkTuple({St.VG.fresh("ex$" + P + "$ptr", Sort::Any),
                          St.VG.freshProphecy("ex$" + P)}));
    } else {
      PS.bind(P, St.VG.fresh("ex$" + P, Sort::Any));
    }
  }
  Expr XNew;
  if (auto Bound = PS.lookup(L.NewProphecyHole)) {
    XNew = simplify(*Bound);
    if (XNew->Kind == ExprKind::TupleLit && XNew->Kids.size() == 2)
      XNew = XNew->Kids[1];
  } else {
    XNew = St.VG.freshProphecy(L.NewProphecyHole);
    PS.bind(L.NewProphecyHole, XNew);
  }
  if (XNew->Kind != ExprKind::Var || !isProphecyVarName(XNew->Name))
    return Outcome<Unit>::failure(
        "extract lemma: prophecy hole does not denote a prophecy variable");
  Expr Kappa = St.VG.freshLifetime("'kex");

  std::vector<Expr> FromArgs, ToArgs;
  for (const Expr &A : L.FromArgs)
    FromArgs.push_back(PS.apply(A));
  for (const Expr &A : L.ToArgs)
    ToArgs.push_back(simplify(PS.apply(A)));
  Expr Persistent = L.Persistent ? PS.apply(L.Persistent) : mkTrue();
  Expr Requires = L.Requires ? PS.apply(L.Requires) : mkTrue();

  // 1. Produce P's body and assume F (and the declared pure glue).
  AssertionP PBody =
      gilsonite::instantiateClause(*From, 0, FromArgs, Kappa, St.VG);
  Outcome<Unit> PProd = produce(PBody, St, Env);
  if (!PProd.ok())
    return Outcome<Unit>::failure("extract hypothesis: cannot produce " +
                                  L.FromPred);
  if (!St.PC.add(Persistent) || !St.PC.add(Requires) ||
      !St.viable(Env.Solv))
    return Outcome<Unit>::failure(
        "extract hypothesis: persistent fact inconsistent with " +
        L.FromPred);

  // 2. Allocate the fresh prophecy of the extracted reference (the view
  // shift may allocate ghost state). The value is chosen by the allocator,
  // so Mut-Auto-Update is available during this proof.
  Expr Af = St.VG.fresh("extract$a", Sort::Any);
  St.Pcy.produceVO(XNew->Name, Af, Env.Solv, St.PC);
  St.Pcy.producePC(XNew->Name, Af, Env.Solv, St.PC);
  St.AutoProphecyUpdate = true;

  // 3. Consume Q's body (the extraction footprint).
  AssertionP QBody =
      gilsonite::instantiateClause(*To, 0, ToArgs, Kappa, St.VG);
  MatchCtx MQ;
  Outcome<Unit> QCons = consumeWithHeuristics(QBody, St, Env, MQ, 8);
  if (!QCons.ok())
    return Outcome<Unit>::failure("extract hypothesis of '" + L.Name +
                                  "' failed consuming " + L.ToPred + ": " +
                                  QCons.error());

  // 4-5. Wand packaging: put Q back and require that P reforms.
  AssertionP QAgain = stripExistsAndBind(QBody, MQ);
  Outcome<Unit> QProd = produce(QAgain, St, Env);
  if (!QProd.ok())
    return Outcome<Unit>::failure(
        "extract hypothesis: cannot restore " + L.ToPred);
  AssertionP PAgain =
      gilsonite::instantiateClause(*From, 0, FromArgs, Kappa, St.VG);
  MatchCtx MP;
  Outcome<Unit> PCons = consumeWithHeuristics(PAgain, St, Env, MP, 8);
  if (!PCons.ok())
    return Outcome<Unit>::failure("extract hypothesis of '" + L.Name +
                                  "' failed reforming " + L.FromPred + ": " +
                                  PCons.error());

  Map.emplace(L.Name, std::move(L));
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> LemmaTable::applyExtract(const ExtractLemma &L,
                                       const std::vector<Expr> &Args,
                                       SymState &St, VerifEnv &Env) {
  MatchCtx M;
  for (std::size_t I = 0; I != L.Params.size(); ++I) {
    if (I < L.GivenParams) {
      if (I >= Args.size())
        return Outcome<Unit>::failure("extract lemma '" + L.Name +
                                      "': missing ghost argument " +
                                      L.Params[I]);
      M.Bindings.bind(L.Params[I], Args[I]);
    } else {
      M.Pending.insert(L.Params[I]);
    }
  }

  // Consume the closed source borrow, learning the remaining parameters.
  std::string KappaHole = "'extract_kappa";
  M.Pending.insert(KappaHole);
  AssertionP FromCall = gilsonite::guardedCall(
      mkVar(KappaHole, Sort::Lft), L.FromPred, L.FromArgs);
  Outcome<Unit> FromOk = consume(FromCall, St, Env, M);
  if (!FromOk.ok())
    return Outcome<Unit>::failure("extract lemma '" + L.Name +
                                  "': " + FromOk.error());

  // Check the persistent fact.
  if (L.Persistent) {
    Expr F = M.resolve(L.Persistent);
    if (!St.PC.entails(Env.Solv, F))
      return Outcome<Unit>::failure("extract lemma '" + L.Name +
                                    "': persistent fact not established: " +
                                    exprToString(F));
  }

  // Check the declared pure glue (links given arguments to the borrow's
  // content).
  if (L.Requires) {
    Expr R = simplify(reduceWithPC(M.resolve(L.Requires), St.PC));
    if (!St.PC.entails(Env.Solv, R))
      return Outcome<Unit>::failure("extract lemma '" + L.Name +
                                    "': requirement not established: " +
                                    exprToString(R));
  }

  // Determine the new reference's prophecy: a bound mutref parameter's
  // second component, or a freshly allocated variable. Its observer is
  // produced here; the controller lives inside the new borrow's body.
  Expr XNew;
  if (M.Bindings.contains(L.NewProphecyHole) ||
      M.Pending.count(L.NewProphecyHole)) {
    XNew = simplify(
        reduceWithPC(M.resolve(mkVar(L.NewProphecyHole, Sort::Any)), St.PC));
    if (XNew->Kind == ExprKind::TupleLit && XNew->Kids.size() == 2)
      XNew = XNew->Kids[1];
    if (XNew->Kind != ExprKind::Var || !isProphecyVarName(XNew->Name))
      return Outcome<Unit>::failure(
          "extract lemma '" + L.Name +
          "': prophecy hole does not resolve to a prophecy variable: " +
          exprToString(XNew));
  } else {
    XNew = St.VG.freshProphecy("xex");
    M.Bindings.bind(L.NewProphecyHole, XNew);
  }
  Expr Cur = St.VG.fresh("cur", Sort::Any);
  Outcome<Unit> VOOk = St.Pcy.produceVO(XNew->Name, Cur, Env.Solv, St.PC);
  if (!VOOk.ok())
    return VOOk;

  // Produce the extracted borrow at the same lifetime.
  Expr Kappa = M.resolve(mkVar(KappaHole, Sort::Lft));
  std::vector<Expr> ToArgs;
  for (const Expr &A : L.ToArgs)
    ToArgs.push_back(M.resolve(A));
  St.Guarded.produceGuarded(L.ToPred, Kappa, std::move(ToArgs));
  return Outcome<Unit>::success(Unit());
}

const std::variant<FreezeLemma, ExtractLemma> *
LemmaTable::lookup(const std::string &Name) const {
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : &It->second;
}

std::variant<FreezeLemma, ExtractLemma> *
LemmaTable::lookupMutable(const std::string &Name) {
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : &It->second;
}

Outcome<Unit> LemmaTable::apply(const std::string &Name,
                                const std::vector<Expr> &Args, SymState &St,
                                VerifEnv &Env) {
  deps::note(deps::Kind::Lemma, Name);
  auto It = Map.find(Name);
  if (It == Map.end())
    return Outcome<Unit>::failure("application of unknown lemma " + Name);
  GILR_TRACE_SCOPE_D("lemma", "apply", Name);
  if (const FreezeLemma *F = std::get_if<FreezeLemma>(&It->second))
    return applyFreeze(*F, Args, St, Env);
  return applyExtract(std::get<ExtractLemma>(It->second), Args, St, Env);
}
