//===- engine/Heuristics.h - Fold/unfold and borrow automation (§4.2) ------===//
///
/// \file
/// The automation layer that makes Gillian-Rust "semi"-automated rather
/// than manual: when a heap access misses (the resource is hidden inside a
/// folded predicate or behind a closed borrow), the engine
///
///  1. looks for a folded predicate whose arguments are related to the
///     failing pointer and unfolds it (branching over its clauses), or
///  2. looks for a *guarded* predicate (a full borrow) related to the
///     pointer and opens it with gunfold — consuming the guard lifetime's
///     token and minting a closing token (the Unfold-Guarded rule) —
///     thereby reusing years of Gillian fold/unfold heuristics for borrows,
///     the key insight of §4.2.
///
/// The dual automation closes borrows: gfold consumes the body and the
/// closing token and restores the guarded predicate plus the lifetime
/// token. At function returns every open borrow is closed automatically.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ENGINE_HEURISTICS_H
#define GILR_ENGINE_HEURISTICS_H

#include "engine/SymState.h"

namespace gilr {
namespace engine {

/// Rewrites \p E using the equalities recorded in the path condition
/// (variable/projection chains to constructor forms), normalising pointer
/// expressions like Unwrap(TupleGet(v, 0)) into decodable encodings.
Expr reduceWithPC(const Expr &E, const PathCondition &PC);

/// Unfolds one folded or guarded predicate related to \p Ptr. Returns the
/// successor states (one per viable clause); an empty vector means no
/// applicable candidate was found.
std::vector<SymState> unfoldForPointer(const SymState &St, VerifEnv &Env,
                                       const Expr &Ptr);

/// Opens guarded predicate \p G: consumes the guard token, removes the
/// instance, produces a closing token and the body (per clause).
std::vector<SymState> gunfoldGuarded(const SymState &St, VerifEnv &Env,
                                     const pred::GuardedPred &G);

/// Unfolds folded predicate instance \p Name(\p Args): removes it and
/// produces its definition (per clause).
std::vector<SymState> unfoldFolded(const SymState &St, VerifEnv &Env,
                                   const std::string &Name,
                                   const std::vector<Expr> &Args);

/// Closes the borrow recorded by closing token \p Tok (gfold): consumes
/// the body of \p AsPred (defaults to the token's own predicate; a freeze
/// lemma may substitute a stronger predicate), restores the guarded
/// predicate and the lifetime token.
Outcome<Unit> gfoldBorrow(SymState &St, VerifEnv &Env,
                          const pred::ClosingToken &Tok,
                          const std::string &AsPred,
                          const std::vector<Expr> &AsArgs);

/// Closes every open borrow (used at function return when enabled).
Outcome<Unit> closeAllBorrows(SymState &St, VerifEnv &Env);

/// Folds predicate \p Name(\p Args) by consuming its definition from the
/// state (first clause that fits) and producing the folded instance.
Outcome<Unit> foldPred(SymState &St, VerifEnv &Env, const std::string &Name,
                       const std::vector<Expr> &Args);

/// Saturation: repeatedly unfolds folded predicates that have exactly one
/// viable clause under the current path condition, so their pure content
/// (e.g. dllSeg's empty-case equations) becomes path-condition knowledge.
/// Sound (the other clauses were infeasible) and bounded. Run before
/// borrow closing at returns.
SymState saturateUnfolds(SymState St, VerifEnv &Env, unsigned Fuel = 8);

/// Consume with unfolding support: on failure, heuristically unfolds
/// predicates related to the assertion's pointers/arguments and retries.
/// Only unambiguous unfolds (a single viable clause) are taken, since a
/// consumption check cannot branch. Used by postcondition consumption,
/// borrow closing and the lemma hypothesis proofs.
Outcome<Unit> consumeWithHeuristics(const gilsonite::AssertionP &A,
                                    SymState &St, VerifEnv &Env,
                                    struct MatchCtx &M, unsigned Fuel);

} // namespace engine
} // namespace gilr

#endif // GILR_ENGINE_HEURISTICS_H
