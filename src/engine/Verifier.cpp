//===- engine/Verifier.cpp --------------------------------------------------------===//

#include "engine/Verifier.h"

#include "analysis/Interproc.h"
#include "solver/Flight.h"
#include "support/Deps.h"

#include <chrono>

using namespace gilr;
using namespace gilr::engine;

analysis::AnalysisInput gilr::engine::lintInput(VerifEnv &Env) {
  analysis::AnalysisInput In;
  In.Prog = &Env.Prog;
  In.Preds = &Env.Preds;
  In.Specs = &Env.Specs;
  In.Solv = &Env.Solv;
  In.LemmaNames = Env.Lemmas.names();
  In.Cfg = Env.Lint;
  return In;
}

VerifyReport gilr::engine::lintBlockedReport(const std::string &Func,
                                             const analysis::EntityVerdict &V) {
  VerifyReport R;
  R.Func = Func;
  R.Ok = false;
  R.LintBlocked = true;
  R.Diags = V.Diags;
  uint64_t NErrors = 0;
  for (const analysis::Diagnostic &D : V.Diags)
    NErrors += D.Sev == analysis::Severity::Error;
  R.Errors.push_back("rejected by pre-verification analysis (" +
                     std::to_string(NErrors) +
                     " error diagnostic(s)); symbolic execution skipped");
  for (const analysis::Diagnostic &D : V.Diags)
    if (D.Sev == analysis::Severity::Error)
      R.Errors.push_back(D.str());
  return R;
}

VerifyReport gilr::engine::staticTriageReport(const std::string &Func,
                                              const rmir::Function &F) {
  VerifyReport R;
  R.Func = Func;
  R.Ok = true;
  R.Static = true;
  // The executor's failure-free path through a triage-eligible body: one
  // completed path, no state exploration, no solver work. Seconds stays 0
  // so warm and cold triaged runs render identically.
  R.PathsCompleted = 1;
  R.GhostAnnotations = countGhostAnnotations(F); // 0 by the triage predicate.
  return R;
}

unsigned gilr::engine::countGhostAnnotations(const rmir::Function &F) {
  unsigned Count = 0;
  for (const rmir::BasicBlock &B : F.Blocks)
    for (const rmir::Statement &S : B.Stmts)
      if (S.Kind == rmir::Statement::GhostStmt)
        ++Count;
  return Count;
}

VerifyReport Verifier::verifyFunction(const std::string &FuncName) {
  VerifyReport Report;
  Report.Func = FuncName;

  // Program::lookup is a header inline, so note the body dependency here:
  // the obligation depends on its own function's RMIR.
  deps::note(deps::Kind::Function, FuncName);
  const rmir::Function *F = Env.Prog.lookup(FuncName);
  if (!F) {
    Report.Errors.push_back("unknown function " + FuncName);
    return Report;
  }
  const gilsonite::Spec *S = Env.Specs.lookup(FuncName);
  if (!S) {
    Report.Errors.push_back("no spec registered for " + FuncName);
    return Report;
  }
  if (S->Trusted) {
    // Trusted specs are axioms (e.g. the conclusion lemma of a borrow
    // extraction, §4.3, or an axiomatised std contract): assumed, not
    // verified.
    Report.Ok = true;
    Report.Errors.push_back("trusted spec: assumed without verification");
    return Report;
  }
  Report.GhostAnnotations = countGhostAnnotations(*F);

  GILR_TRACE_SCOPE_D("verify", "function", FuncName);
  // Flight-recorder provenance: queries below belong to this obligation on
  // the unsafe/Gillian side.
  flight::ObligationScope FlightScope(FuncName, 'U');
  // Thread-local snapshot: attributes exactly this job's solver work, even
  // while other scheduler workers run queries concurrently.
  SolverStats Before = metrics::threadSolverStats();
  std::vector<trace::PhaseStat> PhasesBefore;
  if (trace::enabled())
    PhasesBefore = trace::phases();

  auto Start = std::chrono::steady_clock::now();
  Executor Exec(Env);
  ExecResult R = Exec.run(*F, *S);
  auto End = std::chrono::steady_clock::now();

  Report.Ok = R.Ok;
  Report.Seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count();
  Report.PathsCompleted = R.PathsCompleted;
  Report.StatesExplored = R.StatesExplored;
  Report.Errors = R.Errors;
  Report.TimedOut = R.BudgetExhausted;
  Report.Solver = metrics::threadSolverStats() - Before;
  if (trace::enabled())
    Report.Phases = trace::diffPhases(PhasesBefore, trace::phases());
  return Report;
}

std::vector<VerifyReport>
Verifier::verifyAll(const std::vector<std::string> &Names) {
  std::vector<VerifyReport> Reports;
  Reports.reserve(Names.size());
  LastAnalysis = analysis::AnalysisResult();
  if (!Env.Lint.Enabled) {
    for (const std::string &Name : Names)
      Reports.push_back(verifyFunction(Name));
    return Reports;
  }

  // Pre-verification analysis: interprocedural summaries bottom-up first,
  // then lint every entity, then prove only the ones the pre-pass did not
  // reject. Diagnostics ride along on the reports.
  analysis::AnalysisInput In = lintInput(Env);
  auto Start = std::chrono::steady_clock::now();
  analysis::SummaryTable Summaries =
      analysis::computeSummaries(Env.Prog, Env.Preds, Env.Specs);
  In.Summaries = &Summaries;
  std::vector<std::pair<std::string, analysis::EntityVerdict>> Verdicts;
  Verdicts.reserve(Names.size());
  for (const std::string &Name : Names)
    Verdicts.emplace_back(Name, analysis::lintEntity(In, Name));
  std::vector<analysis::Diagnostic> ProgDiags = analysis::lintProgramLevel(In);
  auto End = std::chrono::steady_clock::now();
  LastAnalysis = analysis::finalizeAnalysis(
      In.Cfg, Verdicts, std::move(ProgDiags),
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count());

  for (const auto &[Name, V] : Verdicts) {
    if (V.Blocked) {
      Reports.push_back(lintBlockedReport(Name, V));
      continue;
    }
    // Triage tier: an obligation whose summary proves it trivially safe
    // skips symbolic execution entirely.
    const rmir::Function *F = Env.Prog.lookup(Name);
    const gilsonite::Spec *S = Env.Specs.lookup(Name);
    if (F && S && analysis::triviallyStatic(*F, *S, Summaries)) {
      VerifyReport R = staticTriageReport(Name, *F);
      R.Diags = V.Diags;
      Reports.push_back(std::move(R));
      continue;
    }
    VerifyReport R = verifyFunction(Name);
    R.Diags = V.Diags;
    Reports.push_back(std::move(R));
  }
  return Reports;
}
