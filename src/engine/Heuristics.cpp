//===- engine/Heuristics.cpp ------------------------------------------------------===//

#include "engine/Heuristics.h"

#include "engine/Consume.h"
#include "engine/Produce.h"
#include "heap/Projection.h"
#include "solver/Simplify.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <algorithm>
#include <map>

using namespace gilr;
using namespace gilr::engine;
using gilsonite::AsrtKind;
using gilsonite::AssertionP;
using gilsonite::PredDecl;

//===----------------------------------------------------------------------===//
// Path-condition-directed reduction
//===----------------------------------------------------------------------===//

static bool containsSubexpr(const Expr &Hay, const Expr &Needle) {
  if (exprEquals(Hay, Needle))
    return true;
  for (const Expr &Kid : Hay->Kids)
    if (containsSubexpr(Kid, Needle))
      return true;
  return false;
}

Expr gilr::engine::reduceWithPC(const Expr &E, const PathCondition &PC) {
  return reduceWithFacts(E, PC.facts());
}

//===----------------------------------------------------------------------===//
// Unfold candidates
//===----------------------------------------------------------------------===//

namespace {

/// Extracts the location id of a decodable pointer, if any.
std::optional<uint64_t> ptrLocOf(const Expr &E, VerifEnv &Env) {
  auto DP = heap::decodePtr(E, Env.Prog.Types);
  if (DP && DP->Loc->Kind == ExprKind::LocLit)
    return DP->Loc->LocId;
  return std::nullopt;
}

/// Does some subexpression of \p E decode to a pointer at location \p Loc?
bool mentionsLoc(const Expr &E, uint64_t Loc, VerifEnv &Env) {
  if (auto L = ptrLocOf(E, Env))
    if (*L == Loc)
      return true;
  for (const Expr &Kid : E->Kids)
    if (mentionsLoc(Kid, Loc, Env))
      return true;
  return false;
}

bool sharesVariable(const Expr &A, const Expr &B) {
  std::set<std::string> VA, VB;
  collectVars(A, VA);
  collectVars(B, VB);
  for (const std::string &V : VA)
    if (VB.count(V))
      return true;
  return false;
}

/// Relatedness of a predicate argument to the failing pointer: 2 = same
/// location, 1 = shares structure/variables, 0 = unrelated.
int relatedness(const Expr &ArgIn, const Expr &PtrReduced,
                std::optional<uint64_t> TargetLoc, const SymState &St,
                VerifEnv &Env) {
  Expr Arg = reduceWithPC(ArgIn, St.PC);
  if (TargetLoc && mentionsLoc(Arg, *TargetLoc, Env))
    return 2;
  if (containsSubexpr(PtrReduced, Arg) || containsSubexpr(Arg, PtrReduced))
    return 1;
  if (sharesVariable(Arg, PtrReduced))
    return 1;
  return 0;
}

} // namespace

std::vector<SymState> gilr::engine::unfoldFolded(const SymState &St,
                                                 VerifEnv &Env,
                                                 const std::string &Name,
                                                 const std::vector<Expr> &Args) {
  const PredDecl *Decl = Env.Preds.lookup(Name);
  if (!Decl || Decl->Abstract)
    return {};
  GILR_TRACE_SCOPE_D("heuristics", "unfold", Name);
  SymState Base = St;
  MatchCtx M;
  Outcome<std::vector<Expr>> Removed =
      Base.Folded.consume(Name, Args, {}, Env.Solv, Base.PC);
  if (!Removed.ok())
    return {};
  return produceClauses(Base, Env, *Decl, Removed.value(), nullptr);
}

std::vector<SymState> gilr::engine::gunfoldGuarded(const SymState &St,
                                                   VerifEnv &Env,
                                                   const pred::GuardedPred &G) {
  const PredDecl *Decl = Env.Preds.lookup(G.Name);
  if (!Decl || Decl->Abstract)
    return {};
  GILR_TRACE_SCOPE_D("heuristics", "open-borrow", G.Name);
  SymState Base = St;
  std::optional<Expr> Frac =
      Base.Lft.ownedFraction(G.Kappa, Env.Solv, Base.PC);
  if (!Frac)
    return {}; // No token: the borrow cannot be opened here.
  Outcome<Unit> TokOk = Base.Lft.consumeAlive(G.Kappa, *Frac, Env.Solv,
                                              Base.PC);
  if (!TokOk.ok())
    return {};
  Outcome<pred::GuardedPred> Removed = Base.Guarded.consumeGuarded(
      G.Name, G.Kappa, G.Args, {}, Env.Solv, Base.PC);
  if (!Removed.ok())
    return {};
  // Mint the closing token C_δ(κ, q, x̄) (Unfold-Guarded).
  Base.Guarded.produceClosing(
      pred::ClosingToken{G.Name, G.Kappa, *Frac, G.Args});
  return produceClauses(Base, Env, *Decl, G.Args, G.Kappa);
}

std::vector<SymState> gilr::engine::unfoldForPointer(const SymState &St,
                                                     VerifEnv &Env,
                                                     const Expr &Ptr) {
  Expr Reduced = reduceWithPC(Ptr, St.PC);
  std::optional<uint64_t> TargetLoc = ptrLocOf(Reduced, Env);

  // Rank candidates; prefer location matches, then structural relatedness.
  struct Candidate {
    bool IsGuarded;
    std::size_t Index;
    int Score;
  };
  std::vector<Candidate> Cands;

  const auto &FoldedPreds = St.Folded.entries();
  for (std::size_t I = 0; I != FoldedPreds.size(); ++I) {
    int Best = 0;
    for (const Expr &Arg : FoldedPreds[I].Args)
      Best = std::max(Best, relatedness(Arg, Reduced, TargetLoc, St, Env));
    if (Best > 0)
      Cands.push_back({false, I, Best});
  }
  const auto &GuardedPreds = St.Guarded.guarded();
  for (std::size_t I = 0; I != GuardedPreds.size(); ++I) {
    int Best = 0;
    for (const Expr &Arg : GuardedPreds[I].Args)
      Best = std::max(Best, relatedness(Arg, Reduced, TargetLoc, St, Env));
    if (Best > 0)
      Cands.push_back({true, I, Best});
  }
  std::stable_sort(Cands.begin(), Cands.end(),
                   [](const Candidate &A, const Candidate &B) {
                     return A.Score > B.Score;
                   });

  for (const Candidate &C : Cands) {
    std::vector<SymState> Succs;
    if (C.IsGuarded) {
      if (!Env.Auto.AutoBorrow)
        continue;
      Succs = gunfoldGuarded(St, Env, GuardedPreds[C.Index]);
    } else {
      if (!Env.Auto.AutoUnfold)
        continue;
      Succs = unfoldFolded(St, Env, FoldedPreds[C.Index].Name,
                           FoldedPreds[C.Index].Args);
    }
    if (!Succs.empty())
      return Succs;
  }
  return {};
}

SymState gilr::engine::saturateUnfolds(SymState St, VerifEnv &Env,
                                       unsigned Fuel) {
  GILR_TRACE_SCOPE("heuristics", "saturate-unfolds");
  for (unsigned Round = 0; Round != Fuel; ++Round) {
    bool Changed = false;
    std::vector<pred::FoldedPred> Entries = St.Folded.entries();
    for (const pred::FoldedPred &FP : Entries) {
      const PredDecl *Decl = Env.Preds.lookup(FP.Name);
      if (!Decl || Decl->Abstract)
        continue;
      // Single-clause predicates are deterministic by definition; multi-
      // clause ones only when the path condition rules out all but one.
      std::vector<SymState> Succs = unfoldFolded(St, Env, FP.Name, FP.Args);
      if (Succs.size() != 1)
        continue; // Ambiguous (or impossible): keep folded.
      St = std::move(Succs.front());
      Changed = true;
      break;
    }
    if (!Changed)
      break;
  }
  return St;
}

//===----------------------------------------------------------------------===//
// Closing (gfold) and folding
//===----------------------------------------------------------------------===//

Outcome<Unit> gilr::engine::gfoldBorrow(SymState &St, VerifEnv &Env,
                                        const pred::ClosingToken &Tok,
                                        const std::string &AsPred,
                                        const std::vector<Expr> &AsArgs) {
  const PredDecl *Decl = Env.Preds.lookup(AsPred);
  if (!Decl)
    return Outcome<Unit>::failure("gfold of undeclared predicate " + AsPred);
  GILR_TRACE_SCOPE_D("heuristics", "close-borrow", AsPred);

  // Assemble arguments: provided ins in order, fresh pending outs.
  std::vector<Expr> Args;
  MatchCtx M;
  std::size_t NextIn = 0;
  for (const gilsonite::PredParam &P : Decl->Params) {
    if (P.In) {
      if (NextIn >= AsArgs.size())
        return Outcome<Unit>::failure("gfold of " + AsPred +
                                      ": missing in-argument " + P.Name);
      Args.push_back(AsArgs[NextIn++]);
    } else {
      Expr Hole = St.VG.fresh("gfold$" + P.Name, P.S);
      M.Pending.insert(Hole->Name);
      Args.push_back(Hole);
    }
  }

  std::string FirstError = "predicate has no clauses";
  for (std::size_t CI = 0, CE = Decl->Clauses.size(); CI != CE; ++CI) {
    SymState Snapshot = St;
    MatchCtx MC = M;
    gilsonite::AssertionP Clause =
        gilsonite::instantiateClause(*Decl, CI, Args, Tok.Kappa, St.VG);
    Outcome<Unit> R = consumeWithHeuristics(Clause, St, Env, MC, 6);
    if (R.ok()) {
      std::vector<Expr> Final;
      Final.reserve(Args.size());
      for (const Expr &A : Args)
        Final.push_back(MC.resolve(A));
      St.Guarded.produceGuarded(AsPred, Tok.Kappa, std::move(Final));
      // Remove the closing token and restore the guard token.
      Outcome<pred::ClosingToken> Gone =
          St.Guarded.consumeClosing(Tok.Name, Tok.Args, Env.Solv, St.PC);
      if (!Gone.ok())
        return Gone.forward<Unit>();
      return St.Lft.produceAlive(Tok.Kappa, Tok.Fraction, Env.Solv, St.PC);
    }
    FirstError = R.failed() ? R.error() : "clause vanished";
    St = std::move(Snapshot);
  }
  return Outcome<Unit>::failure("cannot close borrow as " + AsPred + ": " +
                                FirstError);
}

Outcome<Unit> gilr::engine::closeAllBorrows(SymState &St, VerifEnv &Env) {
  // Tokens are processed newest-first so nested opens close inside-out.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    std::vector<pred::ClosingToken> Tokens = St.Guarded.closing();
    for (auto It = Tokens.rbegin(); It != Tokens.rend(); ++It) {
      Outcome<Unit> R = gfoldBorrow(St, Env, *It, It->Name, It->Args);
      if (R.ok()) {
        Progress = true;
        break;
      }
    }
  }
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> gilr::engine::foldPred(SymState &St, VerifEnv &Env,
                                     const std::string &Name,
                                     const std::vector<Expr> &Args) {
  const PredDecl *Decl = Env.Preds.lookup(Name);
  if (!Decl)
    return Outcome<Unit>::failure("fold of undeclared predicate " + Name);
  if (Decl->Abstract)
    return Outcome<Unit>::failure("fold of abstract predicate " + Name);
  GILR_TRACE_SCOPE_D("heuristics", "fold", Name);

  std::vector<Expr> Full;
  MatchCtx M;
  std::size_t NextIn = 0;
  for (const gilsonite::PredParam &P : Decl->Params) {
    if (P.In && NextIn < Args.size()) {
      Full.push_back(Args[NextIn++]);
    } else {
      Expr Hole = St.VG.fresh("fold$" + P.Name, P.S);
      M.Pending.insert(Hole->Name);
      Full.push_back(Hole);
    }
  }

  std::string FirstError = "predicate has no clauses";
  for (std::size_t CI = 0, CE = Decl->Clauses.size(); CI != CE; ++CI) {
    SymState Snapshot = St;
    MatchCtx MC = M;
    gilsonite::AssertionP Clause =
        gilsonite::instantiateClause(*Decl, CI, Full, nullptr, St.VG);
    Outcome<Unit> R = consumeWithHeuristics(Clause, St, Env, MC, 6);
    if (R.ok()) {
      std::vector<Expr> Final;
      for (const Expr &A : Full)
        Final.push_back(MC.resolve(A));
      St.Folded.produce(Name, std::move(Final));
      return Outcome<Unit>::success(Unit());
    }
    FirstError = R.failed() ? R.error() : "clause vanished";
    St = std::move(Snapshot);
  }
  return Outcome<Unit>::failure("cannot fold " + Name + ": " + FirstError);
}

//===----------------------------------------------------------------------===//
// Heuristic consumption (postconditions, borrow closing, lemma proofs)
//===----------------------------------------------------------------------===//

/// Collects the (resolved) pointers of the points-to atoms of \p A, which
/// are the natural unfolding targets when consumption gets stuck.
static void collectAtomPtrs(const AssertionP &A, const MatchCtx &M,
                            std::vector<Expr> &Out) {
  switch (A->Kind) {
  case AsrtKind::Star:
    for (const AssertionP &P : A->Parts)
      collectAtomPtrs(P, M, Out);
    return;
  case AsrtKind::Exists:
    collectAtomPtrs(A->Body, M, Out);
    return;
  case AsrtKind::PointsTo:
  case AsrtKind::UninitPT:
  case AsrtKind::MaybeUninit:
  case AsrtKind::ArrayPT:
    Out.push_back(M.resolve(A->Ptr));
    return;
  case AsrtKind::PredCall:
  case AsrtKind::GuardedCall:
    for (const Expr &Arg : A->Args)
      Out.push_back(M.resolve(Arg));
    return;
  case AsrtKind::Pure:
  case AsrtKind::Observation:
    // A failing pure/observation check may be unblocked by unfolding a
    // predicate sharing its variables (e.g. learning dllSeg's empty case).
    Out.push_back(M.resolve(A->Formula));
    return;
  default:
    return;
  }
}

Outcome<Unit> gilr::engine::consumeWithHeuristics(const AssertionP &A,
                                                  SymState &St, VerifEnv &Env,
                                                  MatchCtx &M,
                                                  unsigned Fuel) {
  SymState StSnap = St;
  MatchCtx MSnap = M;
  Outcome<Unit> R = consume(A, St, Env, M);
  if (R.ok() || Fuel == 0)
    return R;
  St = StSnap;
  M = MSnap;

  std::vector<Expr> Ptrs;
  collectAtomPtrs(A, M, Ptrs);
  for (const Expr &Ptr : Ptrs) {
    if (!M.fullyBound(Ptr))
      continue;
    std::vector<SymState> Succs = unfoldForPointer(St, Env, Ptr);
    if (Succs.empty())
      continue;
    if (Succs.size() > 1)
      continue; // Ambiguous unfold: a consumption check cannot branch.
    SymState Next = std::move(Succs.front());
    MatchCtx MNext = M;
    Outcome<Unit> R2 = consumeWithHeuristics(A, Next, Env, MNext, Fuel - 1);
    if (R2.ok()) {
      St = std::move(Next);
      M = std::move(MNext);
      return R2;
    }
  }
  return R.failed() ? R : Outcome<Unit>::failure("consumption vanished");
}

