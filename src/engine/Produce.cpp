//===- engine/Produce.cpp ---------------------------------------------------------===//

#include "engine/Produce.h"

#include "support/Trace.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::engine;
using gilsonite::AsrtKind;
using gilsonite::AssertionP;

Outcome<Unit> gilr::engine::produce(const AssertionP &A, SymState &St,
                                    VerifEnv &Env) {
  heap::HeapCtx Ctx = St.heapCtx(Env);
  switch (A->Kind) {
  case AsrtKind::Star: {
    for (const AssertionP &P : A->Parts) {
      Outcome<Unit> R = produce(P, St, Env);
      if (!R.ok())
        return R;
    }
    return Outcome<Unit>::success(Unit());
  }
  case AsrtKind::Exists: {
    Subst Fresh;
    for (const gilsonite::Binder &B : A->Binders)
      Fresh.bind(B.Name, St.VG.fresh(B.Name, B.S));
    return produce(substAssertion(A->Body, Fresh), St, Env);
  }
  case AsrtKind::Pure:
    if (!St.PC.add(A->Formula))
      return Outcome<Unit>::vanish();
    return Outcome<Unit>::success(Unit());
  case AsrtKind::PointsTo:
    return St.Heap.producePointsTo(A->Ptr, A->Ty, A->Val, Ctx);
  case AsrtKind::UninitPT:
    return St.Heap.produceUninit(A->Ptr, A->Ty, Ctx);
  case AsrtKind::MaybeUninit: {
    if (A->Val->Kind == ExprKind::NoneLit)
      return St.Heap.produceUninit(A->Ptr, A->Ty, Ctx);
    if (A->Val->Kind == ExprKind::Some)
      return St.Heap.producePointsTo(A->Ptr, A->Ty, A->Val->Kids[0], Ctx);
    // An undetermined maybe-uninit: decide with the path condition.
    if (Ctx.entails(mkIsSome(A->Val)))
      return St.Heap.producePointsTo(A->Ptr, A->Ty, mkUnwrap(A->Val), Ctx);
    if (Ctx.entails(mkIsNone(A->Val)))
      return St.Heap.produceUninit(A->Ptr, A->Ty, Ctx);
    return Outcome<Unit>::failure(
        "cannot decide init-ness of maybe-uninit value " +
        exprToString(A->Val));
  }
  case AsrtKind::ArrayPT:
    return St.Heap.produceArray(A->Ptr, A->Ty, A->Count, A->Seq, Ctx);
  case AsrtKind::ArrayUninit:
    return St.Heap.produceArrayUninit(A->Ptr, A->Ty, A->Count, Ctx);
  case AsrtKind::PredCall: {
    GILR_TRACE_SCOPE_D("produce", "pred", A->Name);
    const gilsonite::PredDecl *Decl = Env.Preds.lookup(A->Name);
    if (!Decl)
      return Outcome<Unit>::failure("produce of undeclared predicate " +
                                    A->Name);
    St.Folded.produce(A->Name, A->Args);
    return Outcome<Unit>::success(Unit());
  }
  case AsrtKind::GuardedCall: {
    GILR_TRACE_SCOPE_D("produce", "guarded", A->Name);
    const gilsonite::PredDecl *Decl = Env.Preds.lookup(A->Name);
    if (!Decl)
      return Outcome<Unit>::failure(
          "produce of undeclared guarded predicate " + A->Name);
    St.Guarded.produceGuarded(A->Name, A->Kappa, A->Args);
    return Outcome<Unit>::success(Unit());
  }
  case AsrtKind::LftAlive:
    return St.Lft.produceAlive(A->Kappa, A->Frac, Env.Solv, St.PC);
  case AsrtKind::LftDead:
    return St.Lft.produceDead(A->Kappa, Env.Solv, St.PC);
  case AsrtKind::Observation:
    return St.Obs.produce(A->Formula, Env.Solv, St.PC);
  case AsrtKind::ValueObs: {
    if (A->PcyVar->Kind != ExprKind::Var)
      return Outcome<Unit>::failure(
          "value observer of non-variable prophecy " +
          exprToString(A->PcyVar));
    return St.Pcy.produceVO(A->PcyVar->Name, A->Val, Env.Solv, St.PC);
  }
  case AsrtKind::ProphCtrl: {
    if (A->PcyVar->Kind != ExprKind::Var)
      return Outcome<Unit>::failure(
          "prophecy controller of non-variable prophecy " +
          exprToString(A->PcyVar));
    return St.Pcy.producePC(A->PcyVar->Name, A->Val, Env.Solv, St.PC);
  }
  }
  return Outcome<Unit>::failure("unknown assertion kind in produce");
}

std::vector<SymState> gilr::engine::produceClauses(
    const SymState &Base, VerifEnv &Env, const gilsonite::PredDecl &Decl,
    const std::vector<Expr> &Args, const Expr &Kappa) {
  std::vector<SymState> Out;
  for (std::size_t CI = 0, CE = Decl.Clauses.size(); CI != CE; ++CI) {
    SymState St = Base;
    AssertionP Clause =
        gilsonite::instantiateClause(Decl, CI, Args, Kappa, St.VG);
    Outcome<Unit> R = produce(Clause, St, Env);
    if (!R.ok())
      continue; // Vanished (or failed to install) clause branch.
    if (!St.viable(Env.Solv))
      continue; // Inconsistent with the path condition.
    Out.push_back(std::move(St));
  }
  return Out;
}
