//===- engine/SymState.h - The Gillian-Rust symbolic state (§2.3) ----------===//
///
/// \file
/// A Gillian-Rust symbolic state is the quintuple σ = (h, ξ, γ, φ, χ) of
/// §2.3 — symbolic heap, lifetime context, guarded predicate context,
/// observation context, prophecy context — extended (as in Gillian itself)
/// with the plain folded-predicate store, the path condition π, and the
/// fresh-variable generator. States are value types: symbolic execution
/// branches by copying.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ENGINE_SYMSTATE_H
#define GILR_ENGINE_SYMSTATE_H

#include "analysis/Diagnostic.h"
#include "gilsonite/Ownable.h"
#include "gilsonite/PredDecl.h"
#include "gilsonite/Spec.h"
#include "heap/SymHeap.h"
#include "lifetime/LifetimeCtx.h"
#include "pred/GuardedCtx.h"
#include "proph/ObsCtx.h"
#include "proph/ProphecyCtx.h"
#include "rmir/Program.h"
#include "solver/PathCondition.h"

namespace gilr {
namespace engine {

class LemmaTable;

/// Automation switches (the ablation knobs of DESIGN.md experiment A1).
struct Automation {
  /// Unfold folded predicates automatically on heap-access misses.
  bool AutoUnfold = true;
  /// Open (gunfold) guarded predicates automatically, paying the token.
  bool AutoBorrow = true;
  /// Close open borrows automatically at function return.
  bool AutoCloseAtReturn = true;
  /// Extract prophecy-free observations into the path condition (§7.3
  /// "Extracting knowledge from observations" — unimplemented in the
  /// paper's tool; implemented here as a switchable extension so the
  /// paper's limitation is reproducible by turning it off).
  bool ObsExtraction = true;
  /// Whether panics (e.g. arithmetic overflow aborts) are acceptable. Type
  /// safety tolerates panics — they are not undefined behaviour — so E1
  /// verifies push_front without a length precondition; functional
  /// correctness (partial correctness with panic freedom, as in Creusot)
  /// must prove their absence.
  bool PanicsAllowed = false;
  /// Fuel for heuristic rounds per failing operation.
  unsigned HeuristicFuel = 8;
};

/// Shared per-verification environment: the program, tables, solver.
struct VerifEnv {
  const rmir::Program &Prog;
  gilsonite::PredTable &Preds;
  gilsonite::SpecTable &Specs;
  gilsonite::OwnableRegistry &Ownables;
  LemmaTable &Lemmas;
  Solver &Solv;
  Automation Auto;
  /// Pre-verification static analysis knobs (src/analysis/). Trailing
  /// defaulted member: existing aggregate initializations keep working and
  /// get the production default (enabled, fail-on-error).
  analysis::AnalysisConfig Lint;
};

/// The symbolic state σ plus execution bookkeeping.
struct SymState {
  heap::SymHeap Heap;          ///< h (§3).
  lifetime::LifetimeCtx Lft;   ///< ξ (§4.1).
  pred::PredCtx Folded;        ///< Plain folded predicates.
  pred::GuardedCtx Guarded;    ///< γ (§4.2).
  proph::ObsCtx Obs;           ///< φ (§5.2).
  proph::ProphecyCtx Pcy;      ///< χ (§5.3).
  PathCondition PC;            ///< π.
  VarGen VG;

  /// Mutable-reference operands registered by mutref_auto_resolve!: they are
  /// resolved automatically when the function returns (§2.2).
  std::vector<std::pair<Expr, rmir::TypeRef>> AutoResolve;
  /// prophecy_auto_update() enables Mut-Auto-Update during borrow closing.
  bool AutoProphecyUpdate = false;

  /// A heap context view over this state.
  heap::HeapCtx heapCtx(VerifEnv &Env) {
    return heap::HeapCtx{Env.Solv, PC, VG, Env.Prog.Types};
  }

  /// Whether the path condition is still satisfiable (branch viability).
  bool viable(Solver &S) { return !PC.isUnsat(S); }

  std::string dump() const;
};

} // namespace engine
} // namespace gilr

#endif // GILR_ENGINE_SYMSTATE_H
