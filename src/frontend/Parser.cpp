//===- frontend/Parser.cpp - The .gilr module parser ------------------------===//
///
/// \file
/// Recursive-descent parser for the textual RMIR format, lowering directly
/// into Module's tables (no separate AST). Items are parsed in two passes:
/// pass A splits the input into items, registering type parameters and
/// forward-declaring struct names so recursive types resolve regardless of
/// declaration order; pass B parses enums, then struct fields, then function
/// bodies (interning every local's type), then the remaining items in source
/// order. Embedded Gilsonite S-expressions and Pearlite terms are extracted
/// as raw substrings (Lexer::rawSexpr / rawUntilSemi) and handed to the
/// dedicated parsers; their position-tracked failures are re-anchored at the
/// region's offset so every diagnostic points into the .gilr file.
///
//===----------------------------------------------------------------------===//

#include "creusot/PearliteParser.h"
#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "gilsonite/Parser.h"
#include "support/SourceMgr.h"

#include <map>
#include <set>

using namespace gilr;
using namespace gilr::frontend;
using analysis::code::FrontendError;
using analysis::code::NameError;
using analysis::code::SyntaxError;

namespace {

/// One top-level item located by pass A.
struct ItemRef {
  std::string Kw;
  std::string Sub;  ///< lemma only: "freeze" / "extract".
  std::string Name; ///< Empty for automation / verify.
  std::size_t At = 0;
};

class ModuleParser {
public:
  ModuleParser(const std::string &File, const std::string &Text, Module &M,
               std::vector<analysis::Diagnostic> &Diags)
      : File(File), Text(Text), SM(File, Text), M(M), Diags(Diags) {}

  bool run();

private:
  const std::string &File;
  const std::string &Text;
  support::SourceMgr SM;
  Module &M;
  std::vector<analysis::Diagnostic> &Diags;

  std::vector<ItemRef> Items;
  std::set<std::string> StructNames;
  std::vector<std::pair<std::string, std::size_t>> VerifyPending;
  std::string Entity; ///< Current item, for diagnostics.

  /// Per-function parsing context: the function under construction plus the
  /// local-name index (.gilr refers to locals by unique name).
  struct FnCtx {
    rmir::Function &F;
    std::map<std::string, rmir::LocalId> LocalIds;
  };

  // Diagnostics ----------------------------------------------------------

  bool err(std::size_t Off, const char *Code, const std::string &Msg) {
    analysis::Diagnostic D;
    D.Code = Code;
    D.Sev = analysis::Severity::Error;
    D.Entity = Entity;
    D.Message = Msg;
    D.File = File;
    support::LineCol LC = SM.lineCol(Off);
    D.Line = LC.Line;
    D.Col = LC.Col;
    Diags.push_back(std::move(D));
    return false;
  }

  // Token helpers --------------------------------------------------------

  static bool peekPunct(Lexer &L, const char *P) {
    const Token &T = L.peek();
    return T.Kind == Tok::Punct && T.Text == P;
  }
  static bool peekKw(Lexer &L, const char *K) {
    const Token &T = L.peek();
    return T.Kind == Tok::Ident && !T.Quoted && T.Text == K;
  }

  bool expectPunct(Lexer &L, const char *P) {
    Token T = L.next();
    if (T.Kind == Tok::Punct && T.Text == P)
      return true;
    if (T.Kind == Tok::Error)
      return err(T.Begin, SyntaxError, T.Text);
    return err(T.Begin, SyntaxError, std::string("expected '") + P + "'");
  }

  bool expectKw(Lexer &L, const char *K) {
    Token T = L.next();
    if (T.Kind == Tok::Ident && !T.Quoted && T.Text == K)
      return true;
    if (T.Kind == Tok::Error)
      return err(T.Begin, SyntaxError, T.Text);
    return err(T.Begin, SyntaxError, std::string("expected '") + K + "'");
  }

  bool parseName(Lexer &L, std::string &Out) {
    Token T = L.next();
    if (T.Kind == Tok::Ident || T.Kind == Tok::Lifetime) {
      Out = T.Text;
      return true;
    }
    if (T.Kind == Tok::Error)
      return err(T.Begin, SyntaxError, T.Text);
    return err(T.Begin, SyntaxError, "expected a name");
  }

  bool parseUInt(Lexer &L, uint64_t &Out) {
    Token T = L.next();
    if (T.Kind != Tok::Int || T.IntVal < 0)
      return err(T.Begin, SyntaxError, "expected a non-negative integer");
    Out = static_cast<uint64_t>(T.IntVal);
    return true;
  }

  bool parseStr(Lexer &L, std::string &Out) {
    Token T = L.next();
    if (T.Kind != Tok::Str)
      return err(T.Begin, SyntaxError, "expected a string literal");
    Out = T.Text;
    return true;
  }

  bool parseBool(Lexer &L, bool &Out) {
    Token T = L.next();
    if (T.Kind == Tok::Ident && !T.Quoted &&
        (T.Text == "true" || T.Text == "false")) {
      Out = T.Text == "true";
      return true;
    }
    return err(T.Begin, SyntaxError, "expected 'true' or 'false'");
  }

  bool parseSort(Lexer &L, Sort &Out) {
    Token T = L.next();
    if (T.Kind == Tok::Ident && gilsonite::parseSortName(T.Text, Out))
      return true;
    return err(T.Begin, SyntaxError,
               "expected a sort (Unit/Bool/Int/Real/Loc/Lft/Seq/Opt/Tuple/"
               "Any)");
  }

  bool parseBlockRef(Lexer &L, rmir::BlockId &Out) {
    Token T = L.next();
    bool Good = T.Kind == Tok::Ident && !T.Quoted && T.Text.size() > 2 &&
                T.Text.compare(0, 2, "bb") == 0;
    uint64_t N = 0;
    if (Good)
      for (std::size_t I = 2; I < T.Text.size(); ++I) {
        if (T.Text[I] < '0' || T.Text[I] > '9') {
          Good = false;
          break;
        }
        N = N * 10 + static_cast<uint64_t>(T.Text[I] - '0');
      }
    if (!Good)
      return err(T.Begin, SyntaxError, "expected a block label 'bbN'");
    Out = static_cast<rmir::BlockId>(N);
    return true;
  }

  // Embedded-language regions -------------------------------------------

  bool parseAssertionRegion(Lexer &L, gilsonite::AssertionP &Out) {
    std::string Raw;
    std::size_t At = 0;
    if (!L.rawSexpr(Raw, At))
      return err(L.pos(), SyntaxError, "expected a Gilsonite assertion");
    gilsonite::ParseDiag PD;
    Outcome<gilsonite::AssertionP> R =
        gilsonite::parseAssertion(Raw, M.Prog.Types, &PD);
    if (!R.ok())
      return err(At + PD.Offset, SyntaxError, R.error());
    Out = R.value();
    return true;
  }

  bool parseExprRegion(Lexer &L, Expr &Out) {
    std::string Raw;
    std::size_t At = 0;
    if (!L.rawSexpr(Raw, At))
      return err(L.pos(), SyntaxError, "expected an expression");
    gilsonite::ParseDiag PD;
    Outcome<Expr> R = gilsonite::parseExpr(Raw, &PD);
    if (!R.ok())
      return err(At + PD.Offset, SyntaxError, R.error());
    Out = R.value();
    return true;
  }

  bool parsePearliteRegion(Lexer &L, creusot::PTermP &Out) {
    std::string Raw;
    std::size_t At = 0;
    if (!L.rawUntilSemi(Raw, At))
      return err(L.pos(), SyntaxError,
                 "expected a Pearlite term terminated by ';'");
    Outcome<creusot::PTermP> R = creusot::parsePearliteTerm(Raw);
    if (!R.ok())
      return err(At, SyntaxError, R.error());
    Out = R.value();
    return true;
  }

  // Types ----------------------------------------------------------------

  rmir::TypeRef typeFromString(std::string S, std::size_t Off) {
    while (!S.empty() && S.front() == ' ')
      S.erase(S.begin());
    while (!S.empty() && S.back() == ' ')
      S.pop_back();
    rmir::TyCtx &T = M.Prog.Types;
    if (S == "bool")
      return T.boolTy();
    if (S == "()")
      return T.unitTy();
    for (int K = 0; K <= static_cast<int>(rmir::IntKind::USize); ++K)
      if (S == rmir::intKindName(static_cast<rmir::IntKind>(K)))
        return T.intTy(static_cast<rmir::IntKind>(K));
    if (S.compare(0, 5, "*mut ") == 0) {
      rmir::TypeRef P = typeFromString(S.substr(5), Off);
      return P ? T.rawPtr(P) : nullptr;
    }
    if (S.compare(0, 5, "&mut ") == 0) {
      rmir::TypeRef P = typeFromString(S.substr(5), Off);
      return P ? T.mutRef(P) : nullptr;
    }
    if (!S.empty() && S.front() == '[' && S.back() == ']') {
      std::string Body = S.substr(1, S.size() - 2);
      std::size_t Semi = Body.rfind(';');
      if (Semi == std::string::npos) {
        err(Off, SyntaxError, "malformed array type '" + S + "'");
        return nullptr;
      }
      uint64_t Len = 0;
      bool AnyDigit = false;
      for (std::size_t I = Semi + 1; I < Body.size(); ++I) {
        char C = Body[I];
        if (C == ' ')
          continue;
        if (C < '0' || C > '9') {
          err(Off, SyntaxError, "malformed array length in '" + S + "'");
          return nullptr;
        }
        Len = Len * 10 + static_cast<uint64_t>(C - '0');
        AnyDigit = true;
      }
      if (!AnyDigit) {
        err(Off, SyntaxError, "malformed array length in '" + S + "'");
        return nullptr;
      }
      rmir::TypeRef E = typeFromString(Body.substr(0, Semi), Off);
      return E ? T.array(E, Len) : nullptr;
    }
    if (S.size() > 8 && S.compare(0, 7, "Option<") == 0 && S.back() == '>') {
      rmir::TypeRef P = typeFromString(S.substr(7, S.size() - 8), Off);
      return P ? T.optionOf(P) : nullptr;
    }
    if (rmir::TypeRef N = T.lookup(S))
      return N;
    if (rmir::TypeRef N = T.byName(S)) // Derived types already interned.
      return N;
    err(Off, NameError, "unknown type '" + S + "'");
    return nullptr;
  }

  rmir::TypeRef parseType(Lexer &L) {
    Token T = L.next();
    if (T.Kind == Tok::Punct && T.Text == "*") {
      if (!expectKw(L, "mut"))
        return nullptr;
      rmir::TypeRef P = parseType(L);
      return P ? M.Prog.Types.rawPtr(P) : nullptr;
    }
    if (T.Kind == Tok::Punct && T.Text == "&") {
      if (!expectKw(L, "mut"))
        return nullptr;
      rmir::TypeRef P = parseType(L);
      return P ? M.Prog.Types.mutRef(P) : nullptr;
    }
    if (T.Kind == Tok::Punct && T.Text == "(") {
      if (!expectPunct(L, ")"))
        return nullptr;
      return M.Prog.Types.unitTy();
    }
    if (T.Kind == Tok::Punct && T.Text == "[") {
      rmir::TypeRef E = parseType(L);
      if (!E || !expectPunct(L, ";"))
        return nullptr;
      uint64_t Len = 0;
      if (!parseUInt(L, Len) || !expectPunct(L, "]"))
        return nullptr;
      return M.Prog.Types.array(E, Len);
    }
    if (T.Kind == Tok::Ident)
      return typeFromString(T.Text, T.Begin);
    err(T.Begin, SyntaxError, "expected a type");
    return nullptr;
  }

  // Places, operands, rvalues -------------------------------------------

  bool parsePlace(Lexer &L, FnCtx &C, rmir::Place &Out) {
    Token T = L.next();
    if (T.Kind != Tok::Ident)
      return err(T.Begin, SyntaxError, "expected a local name");
    auto It = C.LocalIds.find(T.Text);
    if (It == C.LocalIds.end())
      return err(T.Begin, NameError, "unknown local '" + T.Text + "'");
    Out = rmir::Place(It->second);
    while (peekPunct(L, ".")) {
      L.next();
      const Token &S = L.peek();
      if (S.Kind == Tok::Int && S.IntVal >= 0) {
        Out.Elems.push_back(
            rmir::PlaceElem::field(static_cast<unsigned>(S.IntVal)));
        L.next();
      } else if (S.Kind == Tok::Punct && S.Text == "*") {
        Out.Elems.push_back(rmir::PlaceElem::deref());
        L.next();
      } else if (S.Kind == Tok::Punct && S.Text == "@") {
        L.next();
        uint64_t V = 0;
        if (!parseUInt(L, V))
          return false;
        Out.Elems.push_back(
            rmir::PlaceElem::downcast(static_cast<unsigned>(V)));
      } else {
        return err(S.Begin, SyntaxError,
                   "expected a field index, '*' or '@N' after '.'");
      }
    }
    return true;
  }

  bool parseOperand(Lexer &L, FnCtx &C, rmir::Operand &Out) {
    if (peekKw(L, "copy") || peekKw(L, "move")) {
      bool IsCopy = L.next().Text == "copy";
      rmir::Place P;
      if (!parsePlace(L, C, P))
        return false;
      Out = IsCopy ? rmir::Operand::copy(std::move(P))
                   : rmir::Operand::move(std::move(P));
      return true;
    }
    if (peekKw(L, "const")) {
      L.next();
      Expr V;
      if (!parseExprRegion(L, V))
        return false;
      if (!expectPunct(L, ":"))
        return false;
      rmir::TypeRef Ty = parseType(L);
      if (!Ty)
        return false;
      Out = rmir::Operand::constant(V, Ty);
      return true;
    }
    return err(L.pos(), SyntaxError,
               "expected an operand (copy/move/const)");
  }

  /// Parses "( op, op, ... )" (possibly empty).
  bool parseOperandList(Lexer &L, FnCtx &C, std::vector<rmir::Operand> &Out) {
    if (!expectPunct(L, "("))
      return false;
    if (peekPunct(L, ")")) {
      L.next();
      return true;
    }
    while (true) {
      rmir::Operand O;
      if (!parseOperand(L, C, O))
        return false;
      Out.push_back(std::move(O));
      if (peekPunct(L, ",")) {
        L.next();
        continue;
      }
      break;
    }
    return expectPunct(L, ")");
  }

  bool parseRvalue(Lexer &L, FnCtx &C, rmir::Rvalue &Out) {
    static const std::map<std::string, rmir::BinOp> BinOps = {
        {"add", rmir::BinOp::Add}, {"sub", rmir::BinOp::Sub},
        {"mul", rmir::BinOp::Mul}, {"eq", rmir::BinOp::Eq},
        {"ne", rmir::BinOp::Ne},   {"lt", rmir::BinOp::Lt},
        {"le", rmir::BinOp::Le},   {"gt", rmir::BinOp::Gt},
        {"ge", rmir::BinOp::Ge}};
    if (peekPunct(L, "&")) {
      L.next();
      Token K = L.next();
      bool Raw = K.Kind == Tok::Ident && K.Text == "raw";
      if (!Raw && !(K.Kind == Tok::Ident && K.Text == "mut"))
        return err(K.Begin, SyntaxError, "expected 'mut' or 'raw' after '&'");
      rmir::Place P;
      if (!parsePlace(L, C, P))
        return false;
      Out = Raw ? rmir::Rvalue::addrOf(std::move(P))
                : rmir::Rvalue::refOf(std::move(P));
      return true;
    }
    const Token &T = L.peek();
    if (T.Kind == Tok::Ident && !T.Quoted) {
      auto B = BinOps.find(T.Text);
      if (B != BinOps.end()) {
        L.next();
        std::vector<rmir::Operand> Ops;
        if (!parseOperandList(L, C, Ops))
          return false;
        if (Ops.size() != 2)
          return err(T.Begin, SyntaxError,
                     "'" + B->first + "' takes exactly two operands");
        Out = rmir::Rvalue::binary(B->second, std::move(Ops[0]),
                                   std::move(Ops[1]));
        return true;
      }
      if (T.Text == "not" || T.Text == "neg") {
        bool IsNot = T.Text == "not";
        L.next();
        std::vector<rmir::Operand> Ops;
        if (!parseOperandList(L, C, Ops))
          return false;
        if (Ops.size() != 1)
          return err(T.Begin, SyntaxError, "unary rvalue takes one operand");
        Out = rmir::Rvalue::unary(IsNot ? rmir::UnOp::Not : rmir::UnOp::Neg,
                                  std::move(Ops[0]));
        return true;
      }
      if (T.Text == "aggregate") {
        L.next();
        rmir::TypeRef Ty = parseType(L);
        if (!Ty || !expectPunct(L, "@"))
          return false;
        uint64_t V = 0;
        if (!parseUInt(L, V))
          return false;
        std::vector<rmir::Operand> Ops;
        if (!parseOperandList(L, C, Ops))
          return false;
        Out = rmir::Rvalue::aggregate(Ty, static_cast<unsigned>(V),
                                      std::move(Ops));
        return true;
      }
      if (T.Text == "discriminant") {
        L.next();
        if (!expectPunct(L, "("))
          return false;
        rmir::Place P;
        if (!parsePlace(L, C, P))
          return false;
        if (!expectPunct(L, ")"))
          return false;
        Out = rmir::Rvalue::discriminant(std::move(P));
        return true;
      }
      if (T.Text == "offset") {
        L.next();
        std::vector<rmir::Operand> Ops;
        if (!parseOperandList(L, C, Ops))
          return false;
        if (Ops.size() != 2)
          return err(T.Begin, SyntaxError, "'offset' takes two operands");
        Out = rmir::Rvalue::ptrOffset(std::move(Ops[0]), std::move(Ops[1]));
        return true;
      }
    }
    rmir::Operand O;
    if (!parseOperand(L, C, O))
      return false;
    Out = rmir::Rvalue::use(std::move(O));
    return true;
  }

  // Statements and terminators ------------------------------------------

  bool parseGhost(Lexer &L, FnCtx &C, rmir::BasicBlock &B) {
    static const std::map<std::string, rmir::GhostKind> Kinds = {
        {"unfold", rmir::GhostKind::Unfold},
        {"fold", rmir::GhostKind::Fold},
        {"gunfold", rmir::GhostKind::GUnfold},
        {"gfold", rmir::GhostKind::GFold},
        {"apply", rmir::GhostKind::ApplyLemma},
        {"resolve", rmir::GhostKind::MutRefAutoResolve},
        {"update", rmir::GhostKind::ProphecyAutoUpdate},
        {"assert_pure", rmir::GhostKind::AssertPure}};
    L.next(); // 'ghost'
    Token K = L.next();
    auto It = K.Kind == Tok::Ident ? Kinds.find(K.Text) : Kinds.end();
    if (It == Kinds.end())
      return err(K.Begin, SyntaxError,
                 "expected a ghost kind (unfold/fold/gunfold/gfold/apply/"
                 "resolve/update/assert_pure)");
    rmir::Ghost G;
    G.Kind = It->second;
    if (L.peek().Kind == Tok::Ident) {
      if (!parseName(L, G.Name))
        return false;
    }
    if (!parseOperandList(L, C, G.Args))
      return false;
    if (peekPunct(L, ":")) {
      L.next();
      if (!parseExprRegion(L, G.PureArg))
        return false;
    }
    if (!expectPunct(L, ";"))
      return false;
    B.Stmts.push_back(rmir::Statement::ghost(std::move(G)));
    return true;
  }

  /// Parses one statement or terminator; sets \p Done once the terminator
  /// has been read.
  bool parseStmtOrTerm(Lexer &L, FnCtx &C, rmir::BasicBlock &B, bool &Done) {
    if (peekKw(L, "nop")) {
      L.next();
      if (!expectPunct(L, ";"))
        return false;
      B.Stmts.push_back(rmir::Statement());
      return true;
    }
    if (peekKw(L, "ghost"))
      return parseGhost(L, C, B);
    if (peekKw(L, "free")) {
      L.next();
      rmir::Operand Ptr;
      if (!parseOperand(L, C, Ptr) || !expectPunct(L, ":"))
        return false;
      rmir::TypeRef Ty = parseType(L);
      if (!Ty || !expectPunct(L, ";"))
        return false;
      B.Stmts.push_back(rmir::Statement::free(std::move(Ptr), Ty));
      return true;
    }
    if (peekKw(L, "goto")) {
      L.next();
      rmir::BlockId Tgt = 0;
      if (!parseBlockRef(L, Tgt) || !expectPunct(L, ";"))
        return false;
      B.Term = rmir::Terminator::gotoBlock(Tgt);
      Done = true;
      return true;
    }
    if (peekKw(L, "return")) {
      L.next();
      if (!expectPunct(L, ";"))
        return false;
      B.Term = rmir::Terminator::ret();
      Done = true;
      return true;
    }
    if (peekKw(L, "unreachable")) {
      L.next();
      if (!expectPunct(L, ";"))
        return false;
      B.Term = rmir::Terminator::unreachable();
      Done = true;
      return true;
    }
    if (peekKw(L, "switch")) {
      Token SwTok = L.next();
      rmir::Operand D;
      if (!parseOperand(L, C, D) || !expectPunct(L, "{"))
        return false;
      std::vector<std::pair<__int128, rmir::BlockId>> Arms;
      rmir::BlockId Other = 0;
      bool SawOther = false;
      while (!peekPunct(L, "}")) {
        if (peekKw(L, "_")) {
          Token U = L.next();
          if (SawOther)
            return err(U.Begin, SyntaxError, "duplicate '_' switch arm");
          if (!expectPunct(L, "=>") || !parseBlockRef(L, Other))
            return false;
          SawOther = true;
        } else {
          Token V = L.next();
          if (V.Kind != Tok::Int)
            return err(V.Begin, SyntaxError,
                       "expected an integer or '_' switch arm");
          rmir::BlockId Tgt = 0;
          if (!expectPunct(L, "=>") || !parseBlockRef(L, Tgt))
            return false;
          Arms.emplace_back(V.IntVal, Tgt);
        }
        if (peekPunct(L, ","))
          L.next();
        else
          break;
      }
      if (!expectPunct(L, "}") || !expectPunct(L, ";"))
        return false;
      if (!SawOther)
        return err(SwTok.Begin, SyntaxError, "switch requires a '_' arm");
      B.Term = rmir::Terminator::switchInt(std::move(D), std::move(Arms),
                                           Other);
      Done = true;
      return true;
    }
    if (peekKw(L, "call")) {
      L.next();
      rmir::Place Dest;
      if (!parsePlace(L, C, Dest) || !expectPunct(L, "="))
        return false;
      std::string Callee;
      if (!parseName(L, Callee))
        return false;
      std::vector<rmir::TypeRef> TyArgs;
      if (peekPunct(L, "[")) {
        L.next();
        while (!peekPunct(L, "]")) {
          rmir::TypeRef Ty = parseType(L);
          if (!Ty)
            return false;
          TyArgs.push_back(Ty);
          if (peekPunct(L, ","))
            L.next();
          else
            break;
        }
        if (!expectPunct(L, "]"))
          return false;
      }
      std::vector<rmir::Operand> Args;
      if (!parseOperandList(L, C, Args))
        return false;
      rmir::BlockId Tgt = 0;
      if (!expectPunct(L, "->") || !parseBlockRef(L, Tgt) ||
          !expectPunct(L, ";"))
        return false;
      B.Term = rmir::Terminator::call(std::move(Callee), std::move(Args),
                                      std::move(Dest), Tgt, std::move(TyArgs));
      Done = true;
      return true;
    }
    // Assignment: PLACE = RVALUE ; or PLACE = alloc TYPE ;
    rmir::Place Dest;
    if (!parsePlace(L, C, Dest) || !expectPunct(L, "="))
      return false;
    if (peekKw(L, "alloc")) {
      L.next();
      rmir::TypeRef Ty = parseType(L);
      if (!Ty || !expectPunct(L, ";"))
        return false;
      B.Stmts.push_back(rmir::Statement::alloc(std::move(Dest), Ty));
      return true;
    }
    rmir::Rvalue RV;
    if (!parseRvalue(L, C, RV) || !expectPunct(L, ";"))
      return false;
    B.Stmts.push_back(rmir::Statement::assign(std::move(Dest), std::move(RV)));
    return true;
  }

  // Item parsers ---------------------------------------------------------

  bool parseEnumItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // enum
    std::string Name;
    parseName(L, Name);
    Entity = Name;
    if (M.Prog.Types.lookup(Name))
      return err(I.At, NameError, "duplicate type name '" + Name + "'");
    if (!expectPunct(L, "{"))
      return false;
    std::vector<rmir::VariantDef> Variants;
    while (!peekPunct(L, "}")) {
      rmir::VariantDef V;
      if (!parseName(L, V.Name))
        return false;
      if (peekPunct(L, "{")) {
        L.next();
        while (!peekPunct(L, "}")) {
          rmir::FieldDef F;
          if (!parseName(L, F.Name) || !expectPunct(L, ":"))
            return false;
          F.Ty = parseType(L);
          if (!F.Ty)
            return false;
          V.Fields.push_back(std::move(F));
          if (peekPunct(L, ","))
            L.next();
          else
            break;
        }
        if (!expectPunct(L, "}"))
          return false;
      }
      Variants.push_back(std::move(V));
      if (peekPunct(L, ","))
        L.next();
      else
        break;
    }
    if (!expectPunct(L, "}"))
      return false;
    M.Prog.Types.declareEnum(Name, std::move(Variants));
    return true;
  }

  bool parseStructFields(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // struct
    std::string Name;
    parseName(L, Name);
    Entity = Name;
    if (!expectPunct(L, "{"))
      return false;
    std::vector<rmir::FieldDef> Fields;
    while (!peekPunct(L, "}")) {
      rmir::FieldDef F;
      if (!parseName(L, F.Name) || !expectPunct(L, ":"))
        return false;
      F.Ty = parseType(L);
      if (!F.Ty)
        return false;
      Fields.push_back(std::move(F));
      if (peekPunct(L, ","))
        L.next();
      else
        break;
    }
    if (!expectPunct(L, "}"))
      return false;
    M.Prog.Types.defineStructFields(M.Prog.Types.lookup(Name),
                                    std::move(Fields));
    return true;
  }

  bool parseFnItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // fn
    std::string Name;
    parseName(L, Name);
    Entity = Name;
    if (M.Prog.lookup(Name))
      return err(I.At, NameError, "duplicate function '" + Name + "'");
    rmir::Function F;
    F.Name = Name;
    if (peekPunct(L, "[")) {
      L.next();
      while (!peekPunct(L, "]")) {
        const Token &T = L.peek();
        if (T.Kind == Tok::Lifetime) {
          F.Lifetimes.push_back(T.Text);
          L.next();
        } else {
          std::string P;
          if (!parseName(L, P))
            return false;
          F.TypeParams.push_back(std::move(P));
        }
        if (peekPunct(L, ","))
          L.next();
        else
          break;
      }
      if (!expectPunct(L, "]"))
        return false;
    }
    if (!expectPunct(L, "{"))
      return false;
    FnCtx C{F, {}};
    while (!peekPunct(L, "}")) {
      const Token &T = L.peek();
      if (T.Kind != Tok::Ident)
        return err(T.Begin, SyntaxError,
                   "expected 'params', 'let', 'suppress' or a block label");
      if (!T.Quoted && T.Text == "params") {
        L.next();
        uint64_t N = 0;
        if (!parseUInt(L, N) || !expectPunct(L, ";"))
          return false;
        F.NumParams = static_cast<unsigned>(N);
      } else if (!T.Quoted && T.Text == "let") {
        L.next();
        std::string LN;
        std::size_t NameAt = L.pos();
        if (!parseName(L, LN) || !expectPunct(L, ":"))
          return false;
        rmir::TypeRef Ty = parseType(L);
        if (!Ty || !expectPunct(L, ";"))
          return false;
        if (C.LocalIds.count(LN))
          return err(NameAt, NameError, "duplicate local '" + LN + "'");
        C.LocalIds.emplace(LN, static_cast<rmir::LocalId>(F.Locals.size()));
        F.Locals.push_back(rmir::Local{LN, Ty});
      } else if (!T.Quoted && T.Text == "suppress") {
        L.next();
        std::string S;
        if (!parseStr(L, S) || !expectPunct(L, ";"))
          return false;
        F.LintSuppress.push_back(std::move(S));
      } else {
        // Block: must be the next label in sequence.
        std::string Want = "bb" + std::to_string(F.Blocks.size());
        if (T.Quoted || T.Text != Want)
          return err(T.Begin, SyntaxError,
                     "expected block label '" + Want +
                         "' (blocks are declared in order)");
        L.next();
        if (!expectPunct(L, ":") || !expectPunct(L, "{"))
          return false;
        rmir::BasicBlock B;
        bool Done = false;
        while (!Done)
          if (!parseStmtOrTerm(L, C, B, Done))
            return false;
        if (!expectPunct(L, "}"))
          return false;
        F.Blocks.push_back(std::move(B));
      }
    }
    L.next(); // '}'
    if (F.Locals.empty())
      return err(I.At, FrontendError,
                 "function '" + Name + "' declares no locals (the first "
                 "local is the return slot)");
    if (F.NumParams + 1 > F.Locals.size())
      return err(I.At, FrontendError,
                 "function '" + Name + "' declares " +
                     std::to_string(F.NumParams) + " params but only " +
                     std::to_string(F.Locals.size()) + " locals");
    std::size_t NBlocks = F.Blocks.size();
    auto CheckTarget = [&](rmir::BlockId B) { return B < NBlocks; };
    for (const rmir::BasicBlock &B : F.Blocks) {
      bool Ok = true;
      switch (B.Term.Kind) {
      case rmir::Terminator::Goto:
      case rmir::Terminator::Call:
        Ok = CheckTarget(B.Term.Target);
        break;
      case rmir::Terminator::SwitchInt:
        Ok = CheckTarget(B.Term.Otherwise);
        for (const auto &[V, T] : B.Term.Arms)
          Ok = Ok && CheckTarget(T);
        break;
      default:
        break;
      }
      if (!Ok)
        return err(I.At, FrontendError,
                   "function '" + Name + "' branches to an undeclared block");
    }
    M.Prog.Funcs.emplace(Name, std::move(F));
    return true;
  }

  bool parsePredItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // pred
    gilsonite::PredDecl D;
    parseName(L, D.Name);
    Entity = "pred:" + D.Name;
    if (M.Preds.contains(D.Name))
      return err(I.At, NameError, "duplicate predicate '" + D.Name + "'");
    while (peekKw(L, "abstract") || peekKw(L, "guardable")) {
      if (L.next().Text == "abstract")
        D.Abstract = true;
      else
        D.Guardable = true;
    }
    if (!expectPunct(L, "{"))
      return false;
    while (!peekPunct(L, "}")) {
      if (peekKw(L, "param")) {
        L.next();
        gilsonite::PredParam P;
        if (!parseName(L, P.Name) || !parseSort(L, P.S))
          return false;
        Token M2 = L.next();
        if (M2.Kind != Tok::Ident || (M2.Text != "in" && M2.Text != "out"))
          return err(M2.Begin, SyntaxError, "expected 'in' or 'out'");
        P.In = M2.Text == "in";
        if (!expectPunct(L, ";"))
          return false;
        D.Params.push_back(std::move(P));
      } else if (peekKw(L, "clause")) {
        L.next();
        gilsonite::AssertionP A;
        if (!parseAssertionRegion(L, A) || !expectPunct(L, ";"))
          return false;
        D.Clauses.push_back(std::move(A));
      } else {
        return err(L.pos(), SyntaxError, "expected 'param', 'clause' or '}'");
      }
    }
    L.next(); // '}'
    M.Preds.declare(std::move(D));
    return true;
  }

  bool parseFreezeItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // lemma
    L.next(); // freeze
    engine::FreezeLemma F;
    parseName(L, F.Name);
    Entity = "lemma:" + F.Name;
    if (!parseName(L, F.FromPred) || !parseName(L, F.ToPred) ||
        !expectPunct(L, ";"))
      return false;
    M.FreezeDecls.push_back(std::move(F));
    return true;
  }

  bool parseExtractItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // lemma
    L.next(); // extract
    engine::ExtractLemma E;
    parseName(L, E.Name);
    Entity = "lemma:" + E.Name;
    if (!expectPunct(L, "{"))
      return false;
    auto ParseArgList = [&](std::vector<Expr> &Out) {
      if (!expectPunct(L, "("))
        return false;
      while (!peekPunct(L, ")")) {
        Expr X;
        if (!parseExprRegion(L, X))
          return false;
        Out.push_back(X);
      }
      return expectPunct(L, ")");
    };
    while (!peekPunct(L, "}")) {
      if (peekKw(L, "param")) {
        L.next();
        std::string P;
        if (!parseName(L, P) || !expectPunct(L, ";"))
          return false;
        E.Params.push_back(std::move(P));
      } else if (peekKw(L, "given")) {
        L.next();
        uint64_t N = 0;
        if (!parseUInt(L, N) || !expectPunct(L, ";"))
          return false;
        E.GivenParams = static_cast<std::size_t>(N);
      } else if (peekKw(L, "mutref")) {
        L.next();
        std::string P;
        if (!parseName(L, P) || !expectPunct(L, ";"))
          return false;
        E.MutRefParams.insert(std::move(P));
      } else if (peekKw(L, "from")) {
        L.next();
        if (!parseName(L, E.FromPred) || !ParseArgList(E.FromArgs) ||
            !expectPunct(L, ";"))
          return false;
      } else if (peekKw(L, "persistent")) {
        L.next();
        if (!parseExprRegion(L, E.Persistent) || !expectPunct(L, ";"))
          return false;
      } else if (peekKw(L, "requires")) {
        L.next();
        if (!parseExprRegion(L, E.Requires) || !expectPunct(L, ";"))
          return false;
      } else if (peekKw(L, "to")) {
        L.next();
        if (!parseName(L, E.ToPred) || !ParseArgList(E.ToArgs) ||
            !expectPunct(L, ";"))
          return false;
      } else if (peekKw(L, "prophecy")) {
        L.next();
        if (!parseName(L, E.NewProphecyHole) || !expectPunct(L, ";"))
          return false;
      } else {
        return err(L.pos(), SyntaxError,
                   "expected an extract-lemma clause or '}'");
      }
    }
    L.next(); // '}'
    M.ExtractDecls.push_back(std::move(E));
    return true;
  }

  bool parseSpecItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // spec
    gilsonite::Spec S;
    parseName(L, S.Func);
    Entity = S.Func;
    if (M.Specs.lookup(S.Func))
      return err(I.At, NameError, "duplicate spec for '" + S.Func + "'");
    if (!expectPunct(L, "{"))
      return false;
    while (!peekPunct(L, "}")) {
      if (peekKw(L, "var")) {
        L.next();
        gilsonite::Binder B;
        if (!parseName(L, B.Name) || !parseSort(L, B.S) ||
            !expectPunct(L, ";"))
          return false;
        S.SpecVars.push_back(std::move(B));
      } else if (peekKw(L, "pre")) {
        L.next();
        if (!parseAssertionRegion(L, S.Pre) || !expectPunct(L, ";"))
          return false;
      } else if (peekKw(L, "post")) {
        L.next();
        if (!parseAssertionRegion(L, S.Post) || !expectPunct(L, ";"))
          return false;
      } else if (peekKw(L, "trusted")) {
        L.next();
        if (!expectPunct(L, ";"))
          return false;
        S.Trusted = true;
      } else if (peekKw(L, "doc")) {
        L.next();
        if (!parseStr(L, S.Doc) || !expectPunct(L, ";"))
          return false;
      } else {
        return err(L.pos(), SyntaxError, "expected a spec clause or '}'");
      }
    }
    L.next(); // '}'
    M.Specs.add(std::move(S));
    return true;
  }

  bool parseContractItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // contract
    creusot::PearliteSpec S;
    parseName(L, S.Func);
    Entity = S.Func;
    if (M.Contracts.lookup(S.Func))
      return err(I.At, NameError, "duplicate contract for '" + S.Func + "'");
    if (!expectPunct(L, "{"))
      return false;
    while (!peekPunct(L, "}")) {
      if (peekKw(L, "param")) {
        L.next();
        creusot::PearliteParam P;
        if (!parseName(L, P.Name))
          return false;
        if (peekKw(L, "mut")) {
          L.next();
          P.IsMutRef = true;
        }
        if (!expectPunct(L, ";"))
          return false;
        S.Params.push_back(std::move(P));
      } else if (peekKw(L, "pre")) {
        L.next();
        if (!parsePearliteRegion(L, S.Pre))
          return false;
      } else if (peekKw(L, "post")) {
        L.next();
        if (!parsePearliteRegion(L, S.Post))
          return false;
      } else if (peekKw(L, "result")) {
        L.next();
        if (!expectPunct(L, ";"))
          return false;
        S.HasResult = true;
      } else if (peekKw(L, "doc")) {
        L.next();
        if (!parseStr(L, S.Doc) || !expectPunct(L, ";"))
          return false;
      } else {
        return err(L.pos(), SyntaxError, "expected a contract clause or '}'");
      }
    }
    L.next(); // '}'
    M.Contracts.add(std::move(S));
    return true;
  }

  bool parseClientItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // client
    creusot::SafeFn F;
    parseName(L, F.Name);
    Entity = F.Name;
    if (M.lookupClient(F.Name))
      return err(I.At, NameError, "duplicate client '" + F.Name + "'");
    if (!expectPunct(L, "("))
      return false;
    while (!peekPunct(L, ")")) {
      std::string P;
      if (!parseName(L, P))
        return false;
      F.Params.push_back(std::move(P));
      if (peekPunct(L, ","))
        L.next();
      else
        break;
    }
    if (!expectPunct(L, ")") || !expectPunct(L, "{"))
      return false;
    while (!peekPunct(L, "}")) {
      creusot::SafeStmt S;
      if (peekKw(L, "let")) {
        L.next();
        S.Kind = creusot::SafeStmt::Let;
        if (!parseName(L, S.Dest) || !expectPunct(L, "="))
          return false;
        if (!parsePearliteRegion(L, S.Term))
          return false;
      } else if (peekKw(L, "assert")) {
        L.next();
        S.Kind = creusot::SafeStmt::Assert;
        if (!parsePearliteRegion(L, S.Term))
          return false;
      } else if (peekKw(L, "call")) {
        L.next();
        S.Kind = creusot::SafeStmt::Call;
        std::string First;
        if (!parseName(L, First))
          return false;
        if (peekPunct(L, "=")) {
          L.next();
          S.Dest = std::move(First);
          if (!parseName(L, S.Callee))
            return false;
        } else {
          S.Callee = std::move(First);
        }
        if (!expectPunct(L, "("))
          return false;
        while (!peekPunct(L, ")")) {
          bool Mut = false;
          if (peekKw(L, "mut")) {
            L.next();
            Mut = true;
          }
          std::string A;
          if (!parseName(L, A))
            return false;
          S.Args.push_back(std::move(A));
          S.ByMutRef.push_back(Mut);
          if (peekPunct(L, ","))
            L.next();
          else
            break;
        }
        if (!expectPunct(L, ")") || !expectPunct(L, ";"))
          return false;
      } else {
        return err(L.pos(), SyntaxError,
                   "expected 'let', 'call', 'assert' or '}'");
      }
      F.Body.push_back(std::move(S));
    }
    L.next(); // '}'
    M.Clients.push_back(std::move(F));
    return true;
  }

  bool parseAutomationItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // automation
    Entity = "automation";
    if (!expectPunct(L, "{"))
      return false;
    while (!peekPunct(L, "}")) {
      Token K = L.next();
      if (K.Kind != Tok::Ident)
        return err(K.Begin, SyntaxError, "expected an automation switch");
      if (K.Text == "fuel") {
        uint64_t N = 0;
        if (!parseUInt(L, N))
          return false;
        M.Auto.HeuristicFuel = static_cast<unsigned>(N);
      } else {
        bool V = false;
        if (!parseBool(L, V))
          return false;
        if (K.Text == "auto_unfold")
          M.Auto.AutoUnfold = V;
        else if (K.Text == "auto_borrow")
          M.Auto.AutoBorrow = V;
        else if (K.Text == "auto_close")
          M.Auto.AutoCloseAtReturn = V;
        else if (K.Text == "obs_extract")
          M.Auto.ObsExtraction = V;
        else if (K.Text == "panics_allowed")
          M.Auto.PanicsAllowed = V;
        else
          return err(K.Begin, SyntaxError,
                     "unknown automation switch '" + K.Text + "'");
      }
      if (!expectPunct(L, ";"))
        return false;
    }
    L.next(); // '}'
    return true;
  }

  bool parseVerifyItem(const ItemRef &I) {
    Lexer L(Text, I.At);
    L.next(); // verify
    Entity.clear();
    while (true) {
      std::size_t At = L.pos();
      std::string N;
      if (!parseName(L, N))
        return false;
      VerifyPending.emplace_back(std::move(N), At);
      if (peekPunct(L, ","))
        L.next();
      else
        break;
    }
    return expectPunct(L, ";");
  }

  // Pass A ---------------------------------------------------------------

  /// Skips to the end of the current item: the matching '}' of its first
  /// top-level brace group, or a ';' at brace depth zero. Character-level
  /// (Lexer::rawItemTail): item bodies may embed S-expr / Pearlite text the
  /// .gilr tokenizer cannot lex.
  bool skipToEnd(Lexer &L) {
    std::size_t At = L.pos();
    if (!L.rawItemTail())
      return err(At, SyntaxError, "unterminated item");
    return true;
  }

  bool splitItems() {
    Lexer L(Text);
    while (true) {
      Token T = L.next();
      if (T.Kind == Tok::End)
        return true;
      Entity.clear();
      if (T.Kind == Tok::Error)
        return err(T.Begin, SyntaxError, T.Text);
      if (T.Kind != Tok::Ident || T.Quoted)
        return err(T.Begin, SyntaxError, "expected an item keyword");
      ItemRef I;
      I.Kw = T.Text;
      I.At = T.Begin;
      if (I.Kw == "param") {
        std::string N;
        std::size_t NameAt = L.pos();
        if (!parseName(L, N) || !expectPunct(L, ";"))
          return false;
        if (M.Prog.Types.lookup(N)) {
          err(NameAt, NameError, "duplicate type name '" + N + "'");
          continue;
        }
        M.Prog.Types.param(N);
        continue;
      }
      if (I.Kw == "automation" || I.Kw == "verify") {
        if (!skipToEnd(L))
          return false;
        Items.push_back(std::move(I));
        continue;
      }
      if (I.Kw == "lemma") {
        Token S = L.next();
        if (S.Kind != Tok::Ident ||
            (S.Text != "freeze" && S.Text != "extract"))
          return err(S.Begin, SyntaxError,
                     "expected 'freeze' or 'extract' after 'lemma'");
        I.Sub = S.Text;
        if (!parseName(L, I.Name) || !skipToEnd(L))
          return false;
        Items.push_back(std::move(I));
        continue;
      }
      if (I.Kw == "struct" || I.Kw == "enum" || I.Kw == "pred" ||
          I.Kw == "fn" || I.Kw == "spec" || I.Kw == "contract" ||
          I.Kw == "client") {
        std::size_t NameAt = L.pos();
        if (!parseName(L, I.Name))
          return false;
        Entity = I.Name;
        bool Keep = true;
        if (I.Kw == "struct") {
          if (!StructNames.insert(I.Name).second ||
              M.Prog.Types.lookup(I.Name)) {
            err(NameAt, NameError, "duplicate type name '" + I.Name + "'");
            Keep = false;
          } else {
            M.Prog.Types.declareStructForward(I.Name);
          }
        }
        if (!skipToEnd(L))
          return false;
        if (Keep)
          Items.push_back(std::move(I));
        continue;
      }
      return err(T.Begin, SyntaxError,
                 "unknown item keyword '" + I.Kw + "'");
    }
  }
};

bool ModuleParser::run() {
  if (!splitItems())
    return false;
  // Pass B: enums first (struct fields may store them), then struct fields
  // (interning every field type), then function bodies (interning every
  // local type), then the remaining items in source order. Item parsers
  // report their own diagnostics; parsing continues across failed items so
  // one run surfaces every error.
  for (const ItemRef &I : Items)
    if (I.Kw == "enum")
      parseEnumItem(I);
  for (const ItemRef &I : Items)
    if (I.Kw == "struct")
      parseStructFields(I);
  for (const ItemRef &I : Items)
    if (I.Kw == "fn")
      parseFnItem(I);
  for (const ItemRef &I : Items) {
    if (I.Kw == "pred")
      parsePredItem(I);
    else if (I.Kw == "lemma" && I.Sub == "freeze")
      parseFreezeItem(I);
    else if (I.Kw == "lemma" && I.Sub == "extract")
      parseExtractItem(I);
    else if (I.Kw == "spec")
      parseSpecItem(I);
    else if (I.Kw == "contract")
      parseContractItem(I);
    else if (I.Kw == "client")
      parseClientItem(I);
    else if (I.Kw == "automation")
      parseAutomationItem(I);
    else if (I.Kw == "verify")
      parseVerifyItem(I);
  }
  Entity.clear();
  for (const auto &[N, At] : VerifyPending) {
    if (!M.Prog.lookup(N) && !M.lookupClient(N))
      err(At, NameError,
          "verify target '" + N + "' is neither a function nor a client");
    else
      M.VerifyList.push_back(N);
  }
  return Diags.empty();
}

} // namespace

ParseResult gilr::frontend::parseString(const std::string &FileName,
                                        const std::string &Text) {
  ParseResult R;
  auto Mod = std::make_unique<Module>();
  Mod->Name = moduleNameFromPath(FileName);
  ModuleParser P(FileName, Text, *Mod, R.Diags);
  if (P.run())
    R.Mod = std::move(Mod);
  return R;
}
