//===- frontend/Module.cpp -------------------------------------------------===//

#include "frontend/Module.h"

using namespace gilr;
using namespace gilr::frontend;

Module::Module()
    : Ownables(
          std::make_unique<gilsonite::OwnableRegistry>(Prog.Types, Preds)) {}

engine::VerifEnv Module::env() {
  return engine::VerifEnv{Prog, Preds, Specs, *Ownables, Lemmas, Solv, Auto,
                          {}};
}

std::vector<std::string> Module::registerLemmas() {
  std::vector<std::string> Errors;
  engine::VerifEnv Env = env();
  for (const engine::FreezeLemma &L : FreezeDecls) {
    if (Lemmas.contains(L.Name))
      continue;
    Outcome<Unit> R = Lemmas.registerFreeze(L, Env);
    if (R.failed())
      Errors.push_back("lemma " + L.Name + ": " + R.error());
  }
  for (const engine::ExtractLemma &L : ExtractDecls) {
    if (Lemmas.contains(L.Name))
      continue;
    Outcome<Unit> R = Lemmas.registerExtract(L, Env);
    if (R.failed())
      Errors.push_back("lemma " + L.Name + ": " + R.error());
  }
  return Errors;
}

const creusot::SafeFn *Module::lookupClient(const std::string &Name) const {
  for (const creusot::SafeFn &F : Clients)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

std::vector<std::string> Module::verifyFuncs() const {
  std::vector<std::string> Out;
  for (const std::string &N : VerifyList)
    if (Prog.lookup(N))
      Out.push_back(N);
  return Out;
}

std::vector<creusot::SafeFn> Module::verifyClients() const {
  std::vector<creusot::SafeFn> Out;
  for (const std::string &N : VerifyList)
    if (const creusot::SafeFn *F = lookupClient(N))
      Out.push_back(*F);
  return Out;
}
