//===- frontend/Frontend.h - Parsing .gilr text into a Module --------------===//
///
/// \file
/// Entry points of the textual RMIR frontend. A .gilr file declares one
/// module: types, predicates, lemmas, RMIR functions, Gilsonite specs,
/// Pearlite contracts, safe clients, automation switches and the verify
/// list (grammar: docs/FRONTEND.md). Parsing lowers directly into the
/// existing in-memory representations — rmir::Program, the Gilsonite and
/// Pearlite tables — so everything downstream of the builder APIs (static
/// analysis, the hybrid driver, the scheduler, the incremental store) runs
/// on a parsed module unchanged.
///
/// Failures are analysis::Diagnostic values with real source locations
/// (GILR-E008 syntax, GILR-E009 unresolved name, GILR-E010 other lowering
/// errors), rendered by the CLI as file:line:col caret diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_FRONTEND_FRONTEND_H
#define GILR_FRONTEND_FRONTEND_H

#include "analysis/Diagnostic.h"
#include "frontend/Module.h"

#include <memory>

namespace gilr {
namespace frontend {

/// Result of parsing one module: the module on success, diagnostics on
/// failure (never both — a module with errors is not returned half-built).
struct ParseResult {
  std::unique_ptr<Module> Mod;
  std::vector<analysis::Diagnostic> Diags;

  bool ok() const { return Mod != nullptr; }
};

/// Parses .gilr \p Text. \p FileName is used for diagnostics and (stripped
/// of directory and extension) as the module name.
ParseResult parseString(const std::string &FileName, const std::string &Text);

/// Reads and parses the file at \p Path. I/O failures become a GILR-E010
/// diagnostic.
ParseResult parseFile(const std::string &Path);

/// The module name \p Path implies: basename without the .gilr extension.
std::string moduleNameFromPath(const std::string &Path);

} // namespace frontend
} // namespace gilr

#endif // GILR_FRONTEND_FRONTEND_H
