//===- frontend/Lexer.h - Tokenizer for textual RMIR (.gilr) ---------------===//
///
/// \file
/// The token stream of the .gilr surface syntax (docs/FRONTEND.md). Tokens
/// carry byte offsets so every parse diagnostic can point at real source.
///
/// Lexical notes:
///  * `//` comments run to end of line.
///  * Identifiers are [A-Za-z_][A-Za-z0-9_$]*; an identifier immediately
///    followed by `<` absorbs the balanced angle-bracket suffix (including
///    internal whitespace), so instantiated nominal names like
///    `Option<*mut Node<T>>` are single tokens — exactly the strings TyCtx
///    uses as nominal names.
///  * `|...|` quotes an identifier that the plain rules cannot spell
///    (backslash escapes `\|` and `\\`), e.g. `|own$&mut LinkedList<T>|`.
///  * `'name` is a lifetime token.
///  * `"..."` is a string literal (doc text, suppression codes).
///  * Embedded S-expressions (Gilsonite assertions/expressions, constants)
///    and Pearlite terms are NOT tokenized here: the parser asks for their
///    raw source via \c rawSexpr / \c rawUntilSemi and hands the substring
///    to the dedicated parsers.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_FRONTEND_LEXER_H
#define GILR_FRONTEND_LEXER_H

#include <cstddef>
#include <string>

namespace gilr {
namespace frontend {

/// Token kinds.
enum class Tok : uint8_t {
  End,      ///< End of input.
  Ident,    ///< Identifier (possibly |quoted| or with glued <...>).
  Int,      ///< Decimal integer literal (optional leading -).
  Lifetime, ///< 'name.
  Str,      ///< "..." literal (Text holds the decoded content).
  Punct,    ///< One punctuation mark (Text holds it, e.g. "(", "->", ".").
  Error,    ///< Lexical error (Text holds the message).
};

/// One token with its source span [Begin, End).
struct Token {
  Tok Kind = Tok::End;
  std::string Text;      ///< Decoded text / punctuation spelling / message.
  __int128 IntVal = 0;   ///< Int.
  bool Quoted = false;   ///< Ident came from |...| (exempt from keywords).
  std::size_t Begin = 0;
  std::size_t End = 0;
};

/// Streaming tokenizer with one token of lookahead.
class Lexer {
public:
  /// Tokenizes \p Text starting at byte offset \p At (token spans stay
  /// absolute offsets into the full buffer, so diagnostics are uniform).
  explicit Lexer(const std::string &Text, std::size_t At = 0);

  const Token &peek();
  Token next();

  /// Raw-scan (from the current position, before any pending lookahead is
  /// consumed) one balanced S-expression: a parenthesized form — respecting
  /// nested parens and |...| quotes — or a single atom. Returns false on
  /// unbalanced input. \p Begin receives the start offset, \p Out the
  /// substring.
  bool rawSexpr(std::string &Out, std::size_t &Begin);

  /// Raw-scan to the next `;` at bracket depth 0 (tracking (), [], {}),
  /// trimming surrounding whitespace. Used for embedded Pearlite terms.
  /// The terminating `;` is consumed. Returns false if no `;` follows.
  bool rawUntilSemi(std::string &Out, std::size_t &Begin);

  /// Raw-scan to the end of the current item: the matching `}` of the first
  /// top-level brace group, or a `;` at brace depth 0 — whichever comes
  /// first. Skips `//` comments, `"..."` strings and `|...|` quotes, but is
  /// otherwise character-level: item bodies may contain embedded S-expr /
  /// Pearlite text that is not tokenizable by this lexer (the item-splitting
  /// pass must not care). Returns false on unterminated/unbalanced input.
  bool rawItemTail();

  /// The offset lexing has reached (start of the next token).
  std::size_t pos();

private:
  Token lex();
  void skipWs();

  const std::string &Text;
  std::size_t Pos = 0;
  Token Ahead;
  bool HasAhead = false;
};

/// True if \p Name can be written as a plain .gilr identifier token
/// (i.e. without |...| quoting).
bool isPlainIdent(const std::string &Name);

/// Quotes \p Name as |...| when needed; returns it unchanged otherwise.
std::string quoteIdent(const std::string &Name);

} // namespace frontend
} // namespace gilr

#endif // GILR_FRONTEND_LEXER_H
