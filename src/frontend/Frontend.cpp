//===- frontend/Frontend.cpp -----------------------------------------------===//

#include "frontend/Frontend.h"

#include "support/Files.h"

using namespace gilr;
using namespace gilr::frontend;

std::string gilr::frontend::moduleNameFromPath(const std::string &Path) {
  std::size_t Slash = Path.find_last_of("/\\");
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  const std::string Ext = ".gilr";
  if (Base.size() > Ext.size() &&
      Base.compare(Base.size() - Ext.size(), Ext.size(), Ext) == 0)
    Base.resize(Base.size() - Ext.size());
  return Base;
}

ParseResult gilr::frontend::parseFile(const std::string &Path) {
  std::string Text;
  if (!files::readFile(Path, Text, ".gilr module")) {
    ParseResult R;
    analysis::Diagnostic D;
    D.Code = analysis::code::FrontendError;
    D.Sev = analysis::Severity::Error;
    D.Message = "cannot read '" + Path + "'";
    D.File = Path;
    R.Diags.push_back(std::move(D));
    return R;
  }
  return parseString(Path, Text);
}
