//===- frontend/Module.h - A parsed .gilr compilation unit -----------------===//
///
/// \file
/// The in-memory result of parsing one textual RMIR module: the RMIR
/// program with its type context, every Gilsonite table (predicates, specs,
/// lemma declarations), the Pearlite contract table, the safe clients, the
/// automation switches, and the verify list — i.e. everything the existing
/// builder APIs (rustlib/*.h env() aggregates) produce, assembled from text
/// instead of C++ code. Downstream consumers (analysis, hybrid driver,
/// scheduler, incremental store) run on a Module unchanged.
///
/// Lemma declarations are *parsed* into FreezeDecls/ExtractDecls but not
/// registered at parse time: registration runs the hypothesis proofs
/// (engine/Lemma.h), which `gilr check` must not pay for. Call
/// \c registerLemmas() before verifying.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_FRONTEND_MODULE_H
#define GILR_FRONTEND_MODULE_H

#include "creusot/SafeVerifier.h"
#include "engine/Lemma.h"
#include "engine/SymState.h"
#include "gilsonite/Ownable.h"

#include <memory>

namespace gilr {
namespace frontend {

/// One parsed .gilr module. Owns every table VerifEnv references.
/// Non-copyable (the type context interns by address).
struct Module {
  std::string Name; ///< Module name (the file stem).

  rmir::Program Prog;
  gilsonite::PredTable Preds;
  gilsonite::SpecTable Specs;
  engine::LemmaTable Lemmas;
  Solver Solv;
  engine::Automation Auto;
  /// Derives built-in own$ predicates on demand; references Prog.Types and
  /// Preds, hence constructed after them and held by pointer so Module
  /// needs no user-declared move constructor.
  std::unique_ptr<gilsonite::OwnableRegistry> Ownables;

  creusot::PearliteSpecTable Contracts;
  std::vector<creusot::SafeFn> Clients;

  /// Names listed by `verify a, b;` items, in declaration order. Each is
  /// either an RMIR function (unsafe side) or a client (safe side).
  std::vector<std::string> VerifyList;

  /// Parsed lemma declarations, pending registration.
  std::vector<engine::FreezeLemma> FreezeDecls;
  std::vector<engine::ExtractLemma> ExtractDecls;

  Module();
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  /// The verification environment over this module's tables.
  engine::VerifEnv env();

  /// Registers every declared lemma, running the hypothesis proofs.
  /// Idempotent per declaration order; returns one message per failed
  /// registration (empty = all proved).
  std::vector<std::string> registerLemmas();

  /// Splits \c VerifyList into the unsafe-side function names and the
  /// safe-side clients (resolving against Prog.Funcs / Clients).
  std::vector<std::string> verifyFuncs() const;
  std::vector<creusot::SafeFn> verifyClients() const;

  /// The client named \p Name, or nullptr.
  const creusot::SafeFn *lookupClient(const std::string &Name) const;
};

} // namespace frontend
} // namespace gilr

#endif // GILR_FRONTEND_MODULE_H
