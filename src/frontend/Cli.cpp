//===- frontend/Cli.cpp - The gilr command-line driver ----------------------===//

#include "frontend/Cli.h"

#include "analysis/Analysis.h"
#include "frontend/Frontend.h"
#include "frontend/Printer.h"
#include "hybrid/Driver.h"
#include "incr/Session.h"
#include "sched/Scheduler.h"
#include "server/Client.h"
#include "support/Files.h"
#include "support/SourceMgr.h"
#include "support/StringUtils.h"

#include <sstream>

using namespace gilr;
using namespace gilr::frontend;

namespace {

// Exit codes of the contract in Cli.h. Worst-wins aggregation relies on the
// numeric order 3 > 2 > 1 > 0.
constexpr int ExitOk = 0;
constexpr int ExitProofFailure = 1;
constexpr int ExitLintError = 2;
constexpr int ExitParseError = 3;

const char *Usage =
    "usage: gilr <check|lint|verify|fmt|client> [options] file.gilr...\n"
    "\n"
    "subcommands:\n"
    "  check    parse and typecheck the modules\n"
    "  lint     check + the static pre-verification analysis\n"
    "  verify   lint + the full hybrid verification run\n"
    "  fmt      pretty-print modules (stdout; -i in place; --check for CI)\n"
    "  client   submit modules to a running gilrd daemon\n"
    "\n"
    "options:\n"
    "  --json              machine-readable output (one object per file;\n"
    "                      an array when several files are given)\n"
    "  --jobs N            scheduler worker threads for verify (default 1)\n"
    "  --incr-store PATH   persistent proof store for verify\n"
    "  --shared-cache DIR  shared content-addressed proof cache for verify\n"
    "  --Werror            promote analysis warnings to errors (lint/verify)\n"
    "  --explain CODE      print the registry entry for a diagnostic code\n"
    "                      (e.g. --explain GILR-W008; no files needed)\n"
    "\n"
    "fmt options:\n"
    "  -i, --in-place      rewrite the files instead of printing\n"
    "  --check             exit 1 when any file is not already formatted\n"
    "\n"
    "client options:\n"
    "  --socket PATH       gilrd socket ($GILRD_SOCKET or /tmp/gilrd.sock)\n"
    "  --client ID         multi-tenant client identity\n"
    "  --timeout-ms N      per-job budget for submitted runs\n"
    "  --check-only        submit with method 'check' instead of 'verify'\n"
    "  --ping | --stats | --shutdown\n"
    "                      control requests (no files)\n"
    "\n"
    "exit codes: 0 verified, 1 proof failures, 2 lint errors,\n"
    "            3 parse/type errors (worst code wins across files),\n"
    "            4 daemon unavailable (client mode)\n";

struct CliOptions {
  std::string Command;
  std::vector<std::string> Files;
  bool Json = false;
  unsigned Jobs = 1;
  std::string IncrStore;
  std::string SharedCache;
  bool Werror = false;
  std::string Explain;
  // fmt
  bool InPlace = false;
  bool FmtCheck = false;
  // client
  std::string Socket;
  std::string ClientId;
  uint64_t TimeoutMs = 0;
  std::string ClientMethod = "verify";
};

/// The byte offset of (1-based) \p Line / \p Col in \p Text, for caret
/// rendering (Diagnostic stores line/col, SourceMgr wants the offset back).
std::size_t offsetOf(const std::string &Text, unsigned Line, unsigned Col) {
  std::size_t Off = 0;
  for (unsigned L = 1; L < Line && Off < Text.size();)
    if (Text[Off++] == '\n')
      ++L;
  return Off + (Col ? Col - 1 : 0);
}

/// Prints \p Diags one per line; when a diagnostic carries a source
/// location into \p SM's buffer, the two-line caret snippet follows.
void printDiagnostics(std::ostream &Err,
                      const std::vector<analysis::Diagnostic> &Diags,
                      const support::SourceMgr *SM) {
  for (const analysis::Diagnostic &D : Diags) {
    Err << D.str() << "\n";
    if (SM && !D.File.empty() && D.File == SM->name() && D.Line > 0)
      Err << SM->caretSnippet(offsetOf(SM->text(), D.Line, D.Col));
    for (const std::string &N : D.Notes)
      Err << "  note: " << N << "\n";
  }
}

/// Per-file result: the exit code and (in --json mode) the rendered object.
struct FileResult {
  int Exit = ExitOk;
  std::string Json;
};

/// The shared wrapper of every per-file JSON object.
std::string jsonHead(const CliOptions &Opt, const std::string &Path) {
  return "{\"file\": \"" + jsonEscape(Path) + "\", \"command\": \"" +
         jsonEscape(Opt.Command) + "\"";
}

/// The entities the lint pass runs over: the verify list when present,
/// otherwise every RMIR function (name order — Funcs is a std::map).
std::vector<std::string> lintEntities(const Module &M) {
  if (!M.VerifyList.empty())
    return M.verifyFuncs();
  std::vector<std::string> Names;
  for (const auto &KV : M.Prog.Funcs)
    Names.push_back(KV.first);
  return Names;
}

/// Builds the analysis input over \p M. Lemma names come from the parsed
/// declarations — lint must not pay for lemma registration (hypothesis
/// proofs), which only `verify` runs.
analysis::AnalysisInput lintInput(Module &M) {
  analysis::AnalysisInput In;
  In.Prog = &M.Prog;
  In.Preds = &M.Preds;
  In.Specs = &M.Specs;
  In.Solv = &M.Solv;
  for (const engine::FreezeLemma &L : M.FreezeDecls)
    In.LemmaNames.push_back(L.Name);
  for (const engine::ExtractLemma &L : M.ExtractDecls)
    In.LemmaNames.push_back(L.Name);
  return In;
}

FileResult runCheck(const CliOptions &Opt, const std::string &Path,
                    std::ostream &Out, std::ostream &Err) {
  FileResult R;
  ParseResult P = parseFile(Path);
  std::string Text;
  files::readFile(Path, Text, ".gilr module");
  support::SourceMgr SM(Path, Text);
  if (!P.ok()) {
    R.Exit = ExitParseError;
    if (!Opt.Json)
      printDiagnostics(Err, P.Diags, &SM);
  } else if (!Opt.Json) {
    Out << Path << ": ok (" << P.Mod->Prog.Funcs.size() << " functions, "
        << P.Mod->Clients.size() << " clients, " << P.Mod->Preds.all().size()
        << " predicates)\n";
  }
  if (Opt.Json)
    R.Json = jsonHead(Opt, Path) + ", \"exit\": " + std::to_string(R.Exit) +
             ", \"diagnostics\": " +
             analysis::renderDiagnosticsJson(P.Diags) + "}";
  return R;
}

FileResult runLint(const CliOptions &Opt, const std::string &Path,
                   std::ostream &Out, std::ostream &Err) {
  FileResult R;
  ParseResult P = parseFile(Path);
  std::string Text;
  files::readFile(Path, Text, ".gilr module");
  support::SourceMgr SM(Path, Text);
  if (!P.ok()) {
    R.Exit = ExitParseError;
    if (!Opt.Json)
      printDiagnostics(Err, P.Diags, &SM);
    else
      R.Json = jsonHead(Opt, Path) + ", \"exit\": 3, \"diagnostics\": " +
               analysis::renderDiagnosticsJson(P.Diags) + "}";
    return R;
  }
  Module &M = *P.Mod;
  analysis::AnalysisInput In = lintInput(M);
  In.Cfg.WarningsAsErrors = Opt.Werror;
  analysis::AnalysisResult A = analysis::analyzeProgram(In, lintEntities(M));
  if (!A.ok() || A.EntitiesBlocked > 0)
    R.Exit = ExitLintError;
  if (Opt.Json) {
    R.Json = jsonHead(Opt, Path) + ", \"exit\": " + std::to_string(R.Exit) +
             ", \"diagnostics\": " +
             analysis::renderDiagnosticsJson(P.Diags) +
             ", \"analysis\": " + A.renderJson() + "}";
  } else {
    printDiagnostics(Err, A.Diags, &SM);
    Out << Path << ": " << A.renderText();
  }
  return R;
}

FileResult runVerify(const CliOptions &Opt, const std::string &Path,
                     std::ostream &Out, std::ostream &Err) {
  FileResult R;
  ParseResult P = parseFile(Path);
  std::string Text;
  files::readFile(Path, Text, ".gilr module");
  support::SourceMgr SM(Path, Text);
  if (!P.ok()) {
    R.Exit = ExitParseError;
    if (!Opt.Json)
      printDiagnostics(Err, P.Diags, &SM);
    else
      R.Json = jsonHead(Opt, Path) + ", \"exit\": 3, \"diagnostics\": " +
               analysis::renderDiagnosticsJson(P.Diags) + "}";
    return R;
  }
  Module &M = *P.Mod;

  // Lemma hypothesis proofs run now; a failed registration is a proof
  // failure (the lemma's soundness obligation did not verify).
  std::vector<std::string> Errors = M.registerLemmas();

  engine::VerifEnv Env = M.env();
  Env.Lint.WarningsAsErrors = Opt.Werror;
  hybrid::HybridDriver Driver(Env, M.Contracts);
  // No `verify` item means "verify everything" (same default as lint).
  std::vector<std::string> UnsafeFuncs = M.verifyFuncs();
  std::vector<creusot::SafeFn> Clients = M.verifyClients();
  if (M.VerifyList.empty()) {
    UnsafeFuncs = lintEntities(M);
    Clients = M.Clients;
  }
  // Functions with a Pearlite contract but no hand-written Gilsonite spec
  // get the systematic encoding of the contract (the hybrid bridge).
  for (const std::string &Fn : UnsafeFuncs)
    if (!M.Specs.lookup(Fn) && M.Contracts.lookup(Fn))
      if (Outcome<Unit> E = Driver.encodeAndRegister(Fn); !E.ok())
        Errors.push_back("encode " + Fn + ": " + E.error());

  sched::SchedulerConfig SC;
  SC.Threads = Opt.Jobs;
  incr::IncrConfig IC;
  IC.Enabled = !Opt.IncrStore.empty() || !Opt.SharedCache.empty();
  IC.StorePath = Opt.IncrStore;
  IC.SharedCacheDir = Opt.SharedCache;
  incr::IncrRunStats Stats;
  hybrid::HybridReport Report =
      Driver.run(UnsafeFuncs, Clients, SC, IC, &Stats);

  if (!Report.Analysis.ok() || Report.Analysis.EntitiesBlocked > 0)
    R.Exit = ExitLintError;
  else if (!Report.ok() || !Errors.empty())
    R.Exit = ExitProofFailure;

  if (Opt.Json) {
    std::string ErrJson = "[";
    for (std::size_t I = 0; I < Errors.size(); ++I)
      ErrJson += std::string(I ? ", " : "") + "\"" + jsonEscape(Errors[I]) +
                 "\"";
    ErrJson += "]";
    std::string IncrJson;
    if (IC.Enabled)
      IncrJson = ", \"incremental\": {\"cached\": " +
                 std::to_string(Stats.cached()) +
                 ", \"verified\": " + std::to_string(Stats.verified()) +
                 ", \"invalidated\": " + std::to_string(Stats.Invalidated) +
                 ", \"salvaged\": " + std::to_string(Stats.Salvaged) +
                 ", \"implied\": " + std::to_string(Stats.Implied) +
                 ", \"salvage_queries\": " +
                 std::to_string(Stats.SalvageQueries) +
                 ", \"shared_hits\": " + std::to_string(Stats.SharedHits) +
                 ", \"shared_puts\": " + std::to_string(Stats.SharedPuts) +
                 ", \"compactions\": " + std::to_string(Stats.Compactions) +
                 "}, \"interproc\": {\"summaries_computed\": " +
                 std::to_string(Stats.SummariesComputed) +
                 ", \"summaries_reused\": " +
                 std::to_string(Stats.SummariesReused) +
                 ", \"triaged_static\": " +
                 std::to_string(Stats.TriagedStatic) + "}";
    R.Json = jsonHead(Opt, Path) + ", \"exit\": " + std::to_string(R.Exit) +
             ", \"errors\": " + ErrJson + IncrJson +
             ", \"report\": " + Report.renderJson() + "}";
  } else {
    printDiagnostics(Err, Report.Analysis.Diags, &SM);
    for (const std::string &E : Errors)
      Err << "error: " << E << "\n";
    Out << Path << ":\n" << Report.summaryText();
    if (IC.Enabled) {
      Out << "incremental: " << Stats.cached() << " cached, "
          << Stats.verified() << " verified, " << Stats.Invalidated
          << " invalidated, " << Stats.Salvaged << " salvaged, "
          << Stats.Implied << " implied, " << Stats.SharedHits
          << " shared hits, " << Stats.SharedPuts << " shared puts, "
          << Stats.Compactions << " compactions\n";
      Out << "interproc: " << Stats.SummariesComputed
          << " summaries computed, " << Stats.SummariesReused << " reused, "
          << Stats.TriagedStatic << " triaged static\n";
    }
  }
  return R;
}

/// `gilr fmt`: round-trips \p Path through the parser and printer. The
/// printed form is the canonical format; --check compares without
/// writing (CI gate), -i rewrites only when the bytes differ.
FileResult runFmt(const CliOptions &Opt, const std::string &Path,
                  std::ostream &Out, std::ostream &Err) {
  FileResult R;
  ParseResult P = parseFile(Path);
  std::string Text;
  files::readFile(Path, Text, ".gilr module");
  support::SourceMgr SM(Path, Text);
  if (!P.ok()) {
    R.Exit = ExitParseError;
    printDiagnostics(Err, P.Diags, &SM);
    return R;
  }
  std::string Pretty = printModule(*P.Mod);
  if (Opt.FmtCheck) {
    if (Pretty != Text) {
      Err << Path << ": not formatted (run `gilr fmt -i`)\n";
      R.Exit = ExitProofFailure;
    }
  } else if (Opt.InPlace) {
    if (Pretty != Text &&
        !files::writeFile(Path, Pretty, "formatted module"))
      R.Exit = ExitParseError;
  } else if (!Opt.Json) {
    Out << Pretty;
  }
  if (Opt.Json)
    R.Json = jsonHead(Opt, Path) + ", \"exit\": " + std::to_string(R.Exit) +
             ", \"formatted\": " + (Pretty == Text ? "true" : "false") + "}";
  return R;
}

/// `gilr client`: delegates to the server-protocol pump.
int runClientCommand(const CliOptions &Opt, std::ostream &Out,
                     std::ostream &Err) {
  server::ClientOptions CO;
  CO.SocketPath = Opt.Socket;
  CO.Method = Opt.ClientMethod;
  CO.Files = Opt.Files;
  CO.ClientId = Opt.ClientId;
  CO.Json = Opt.Json;
  CO.Jobs = Opt.Jobs;
  CO.TimeoutMs = Opt.TimeoutMs;
  return server::runClient(CO, Out, Err);
}

} // namespace

int gilr::frontend::runCli(const std::vector<std::string> &Args,
                           std::ostream &Out, std::ostream &Err) {
  CliOptions Opt;
  for (std::size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    if (A == "--help" || A == "-h") {
      Out << Usage;
      return ExitOk;
    }
    if (A == "--json") {
      Opt.Json = true;
    } else if (A == "--jobs") {
      if (I + 1 >= Args.size()) {
        Err << "gilr: --jobs needs a value\n" << Usage;
        return ExitParseError;
      }
      try {
        Opt.Jobs = static_cast<unsigned>(std::stoul(Args[++I]));
      } catch (...) {
        Err << "gilr: bad --jobs value '" << Args[I] << "'\n";
        return ExitParseError;
      }
      if (Opt.Jobs == 0)
        Opt.Jobs = 1;
    } else if (A == "--incr-store") {
      if (I + 1 >= Args.size()) {
        Err << "gilr: --incr-store needs a value\n" << Usage;
        return ExitParseError;
      }
      Opt.IncrStore = Args[++I];
    } else if (A == "--shared-cache") {
      if (I + 1 >= Args.size()) {
        Err << "gilr: --shared-cache needs a value\n" << Usage;
        return ExitParseError;
      }
      Opt.SharedCache = Args[++I];
    } else if (A == "--Werror") {
      Opt.Werror = true;
    } else if (A == "--explain") {
      if (I + 1 >= Args.size()) {
        Err << "gilr: --explain needs a diagnostic code\n" << Usage;
        return ExitParseError;
      }
      Opt.Explain = Args[++I];
    } else if (A == "-i" || A == "--in-place") {
      Opt.InPlace = true;
    } else if (A == "--check") {
      Opt.FmtCheck = true;
    } else if (A == "--socket") {
      if (I + 1 >= Args.size()) {
        Err << "gilr: --socket needs a value\n" << Usage;
        return ExitParseError;
      }
      Opt.Socket = Args[++I];
    } else if (A == "--client") {
      if (I + 1 >= Args.size()) {
        Err << "gilr: --client needs a value\n" << Usage;
        return ExitParseError;
      }
      Opt.ClientId = Args[++I];
    } else if (A == "--timeout-ms") {
      if (I + 1 >= Args.size()) {
        Err << "gilr: --timeout-ms needs a value\n" << Usage;
        return ExitParseError;
      }
      try {
        Opt.TimeoutMs = std::stoull(Args[++I]);
      } catch (...) {
        Err << "gilr: bad --timeout-ms value '" << Args[I] << "'\n";
        return ExitParseError;
      }
    } else if (A == "--check-only") {
      Opt.ClientMethod = "check";
    } else if (A == "--ping") {
      Opt.ClientMethod = "ping";
    } else if (A == "--stats") {
      Opt.ClientMethod = "stats";
    } else if (A == "--shutdown") {
      Opt.ClientMethod = "shutdown";
    } else if (!A.empty() && A[0] == '-') {
      Err << "gilr: unknown option '" << A << "'\n" << Usage;
      return ExitParseError;
    } else if (Opt.Command.empty()) {
      Opt.Command = A;
    } else {
      Opt.Files.push_back(A);
    }
  }
  if (Opt.Command.empty()) {
    Err << Usage;
    return ExitParseError;
  }
  if (Opt.Command != "check" && Opt.Command != "lint" &&
      Opt.Command != "verify" && Opt.Command != "fmt" &&
      Opt.Command != "client") {
    Err << "gilr: unknown subcommand '" << Opt.Command << "'\n" << Usage;
    return ExitParseError;
  }
  // `--explain CODE` answers from the diagnostic registry; it needs no
  // input files and runs no pass.
  if (!Opt.Explain.empty()) {
    const analysis::CodeDoc *Doc = analysis::lookupCodeDoc(Opt.Explain);
    if (!Doc) {
      Err << "gilr: unknown diagnostic code '" << Opt.Explain
          << "' (codes run GILR-E001..E011 and GILR-W001..W010)\n";
      return ExitParseError;
    }
    if (Opt.Json)
      Out << "{\"code\": \"" << jsonEscape(Doc->Code) << "\", \"summary\": \""
          << jsonEscape(Doc->Summary) << "\", \"detail\": \""
          << jsonEscape(Doc->Detail) << "\"}\n";
    else
      Out << Doc->Code << ": " << Doc->Summary << "\n\n"
          << Doc->Detail << "\n";
    return ExitOk;
  }
  // Control requests carry no files; everything else needs at least one.
  bool ControlRequest =
      Opt.Command == "client" && Opt.ClientMethod != "verify" &&
      Opt.ClientMethod != "check";
  if (Opt.Files.empty() && !ControlRequest) {
    Err << "gilr: no input files\n" << Usage;
    return ExitParseError;
  }
  if (Opt.Command == "client")
    return runClientCommand(Opt, Out, Err);

  int Exit = ExitOk;
  std::vector<std::string> JsonParts;
  for (const std::string &Path : Opt.Files) {
    FileResult R;
    if (Opt.Command == "check")
      R = runCheck(Opt, Path, Out, Err);
    else if (Opt.Command == "lint")
      R = runLint(Opt, Path, Out, Err);
    else if (Opt.Command == "fmt")
      R = runFmt(Opt, Path, Out, Err);
    else
      R = runVerify(Opt, Path, Out, Err);
    Exit = std::max(Exit, R.Exit);
    if (Opt.Json)
      JsonParts.push_back(R.Json);
  }
  if (Opt.Json) {
    if (JsonParts.size() == 1) {
      Out << JsonParts[0] << "\n";
    } else {
      Out << "[";
      for (std::size_t I = 0; I < JsonParts.size(); ++I)
        Out << (I ? ",\n " : "") << JsonParts[I];
      Out << "]\n";
    }
  }
  return Exit;
}
