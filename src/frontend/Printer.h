//===- frontend/Printer.h - Rendering a module back to .gilr text -----------===//
///
/// \file
/// The inverse of the parser: renders in-memory verification state as .gilr
/// text that re-parses to a fingerprint-identical module (the round-trip
/// property frontend_test checks over the whole corpus). The printer is
/// also how the corpus is produced: tools/gilr_export.cpp builds the case
/// studies through the builder APIs and prints them.
///
/// Printing rules that make the round trip exact:
///  * exists/spec-var binders always carry their sort: `(name Sort)`.
///  * Variables whose sort differs from the reader's bare-atom prediction
///    ('names are Lft, everything else Any) print as `(var name Sort)`.
///  * Names that the plain token rules cannot spell are |...|-quoted.
///  * Function locals are all printed as `let` lines (with `params N;`
///    giving the parameter count), reproducing Locals exactly.
///  * All six automation switches are always printed.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_FRONTEND_PRINTER_H
#define GILR_FRONTEND_PRINTER_H

#include "frontend/Module.h"

namespace gilr {
namespace frontend {

/// Everything the printer needs, as references: tools that build state
/// through the builder APIs (gilr_export) can print without constructing a
/// frontend Module.
struct PrintInput {
  const rmir::Program &Prog;
  const gilsonite::PredTable &Preds;
  const gilsonite::SpecTable &Specs;
  const creusot::PearliteSpecTable &Contracts;
  const std::vector<creusot::SafeFn> &Clients;
  const std::vector<engine::FreezeLemma> &Freezes;
  const std::vector<engine::ExtractLemma> &Extracts;
  const engine::Automation &Auto;
  const std::vector<std::string> &VerifyList;
};

/// Renders \p In as a complete .gilr module.
std::string printGilr(const PrintInput &In);

/// Renders a parsed module (convenience wrapper over \c printGilr).
std::string printModule(const Module &M);

/// Renders one type in .gilr surface syntax (also used by diagnostics in
/// the CLI). Nominal names are |...|-quoted when needed.
std::string printType(rmir::TypeRef T);

/// Renders one expression in the Gilsonite S-expression syntax such that
/// gilsonite::parseExpr rebuilds the identical node.
std::string printExpr(const Expr &E);

/// Renders one assertion such that gilsonite::parseAssertion rebuilds an
/// identical tree.
std::string printAssertion(const gilsonite::AssertionP &A);

/// Renders one Pearlite term such that creusot::parsePearliteTerm rebuilds
/// an identical tree.
std::string printPearlite(const creusot::PTermP &T);

} // namespace frontend
} // namespace gilr

#endif // GILR_FRONTEND_PRINTER_H
