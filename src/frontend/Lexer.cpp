//===- frontend/Lexer.cpp --------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <set>

using namespace gilr;
using namespace gilr::frontend;

namespace {

bool identStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool identChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}

/// Words with a syntactic role somewhere in the grammar. Conservative: a
/// name colliding with any of these is |...|-quoted by the printer so the
/// parser never has to disambiguate.
const std::set<std::string> &keywords() {
  static const std::set<std::string> KW = {
      // Items.
      "param", "struct", "enum", "pred", "lemma", "fn", "spec", "contract",
      "client", "automation", "verify",
      // Function bodies.
      "params", "let", "suppress", "ghost", "nop", "free", "call", "goto",
      "switch", "return", "unreachable", "alloc",
      // Operands / rvalues.
      "copy", "move", "const", "add", "sub", "mul", "eq", "ne", "lt", "le",
      "gt", "ge", "not", "neg", "aggregate", "discriminant", "offset", "mut",
      // Ghost kinds.
      "unfold", "fold", "gunfold", "gfold", "apply", "resolve", "update",
      "assert_pure",
      // Clause keywords.
      "in", "out", "pre", "post", "var", "doc", "trusted", "abstract",
      "guardable", "clause", "freeze", "extract", "from", "to", "given",
      "mutref", "persistent", "requires", "prophecy", "assert", "true",
      "false",
  };
  return KW;
}

} // namespace

Lexer::Lexer(const std::string &Text, std::size_t At) : Text(Text), Pos(At) {}

void Lexer::skipWs() {
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
    } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
    } else {
      break;
    }
  }
}

const Token &Lexer::peek() {
  if (!HasAhead) {
    Ahead = lex();
    HasAhead = true;
  }
  return Ahead;
}

Token Lexer::next() {
  if (HasAhead) {
    HasAhead = false;
    return Ahead;
  }
  return lex();
}

std::size_t Lexer::pos() {
  if (HasAhead)
    return Ahead.Begin;
  skipWs();
  return Pos;
}

Token Lexer::lex() {
  skipWs();
  Token T;
  T.Begin = Pos;
  if (Pos >= Text.size()) {
    T.Kind = Tok::End;
    T.End = Pos;
    return T;
  }
  char C = Text[Pos];

  auto error = [&](const std::string &Msg) {
    T.Kind = Tok::Error;
    T.Text = Msg;
    T.End = Pos;
    return T;
  };

  if (identStart(C)) {
    while (Pos < Text.size() && identChar(Text[Pos]))
      ++Pos;
    // Glue a balanced <...> suffix: instantiated nominal names.
    if (Pos < Text.size() && Text[Pos] == '<') {
      int Depth = 0;
      std::size_t P = Pos;
      while (P < Text.size()) {
        if (Text[P] == '<')
          ++Depth;
        else if (Text[P] == '>' && --Depth == 0) {
          ++P;
          break;
        }
        ++P;
      }
      if (Depth != 0)
        return error("unbalanced '<' in name");
      Pos = P;
    }
    T.Kind = Tok::Ident;
    T.Text = Text.substr(T.Begin, Pos - T.Begin);
    T.End = Pos;
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '-' && Pos + 1 < Text.size() &&
       std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))) {
    bool Neg = C == '-';
    if (Neg)
      ++Pos;
    __int128 V = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      V = V * 10 + (Text[Pos] - '0');
      ++Pos;
    }
    T.Kind = Tok::Int;
    T.IntVal = Neg ? -V : V;
    T.Text = Text.substr(T.Begin, Pos - T.Begin);
    T.End = Pos;
    return T;
  }

  if (C == '\'') {
    ++Pos;
    std::size_t Start = Pos;
    while (Pos < Text.size() && identChar(Text[Pos]))
      ++Pos;
    if (Pos == Start)
      return error("expected a name after '");
    T.Kind = Tok::Lifetime;
    T.Text = Text.substr(T.Begin, Pos - T.Begin); // Includes the quote.
    T.End = Pos;
    return T;
  }

  if (C == '|') {
    ++Pos;
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        return error("unterminated |...| name");
      char D = Text[Pos++];
      if (D == '|')
        break;
      if (D == '\\') {
        if (Pos >= Text.size())
          return error("unterminated |...| name");
        D = Text[Pos++];
      }
      Out += D;
    }
    T.Kind = Tok::Ident;
    T.Quoted = true;
    T.Text = std::move(Out);
    T.End = Pos;
    return T;
  }

  if (C == '"') {
    ++Pos;
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        return error("unterminated string literal");
      char D = Text[Pos++];
      if (D == '"')
        break;
      if (D == '\\') {
        if (Pos >= Text.size())
          return error("unterminated string literal");
        D = Text[Pos++];
        if (D == 'n')
          D = '\n';
        else if (D == 't')
          D = '\t';
        // \\ and \" decode to themselves.
      }
      Out += D;
    }
    T.Kind = Tok::Str;
    T.Text = std::move(Out);
    T.End = Pos;
    return T;
  }

  // Multi-character punctuation.
  if (C == '-' && Pos + 1 < Text.size() && Text[Pos + 1] == '>') {
    Pos += 2;
    T.Kind = Tok::Punct;
    T.Text = "->";
    T.End = Pos;
    return T;
  }
  if (C == '=' && Pos + 1 < Text.size() && Text[Pos + 1] == '>') {
    Pos += 2;
    T.Kind = Tok::Punct;
    T.Text = "=>";
    T.End = Pos;
    return T;
  }

  ++Pos;
  T.Kind = Tok::Punct;
  T.Text = std::string(1, C);
  T.End = Pos;
  return T;
}

bool Lexer::rawSexpr(std::string &Out, std::size_t &Begin) {
  if (HasAhead) { // Rewind the lookahead: raw scans are positional.
    Pos = Ahead.Begin;
    HasAhead = false;
  }
  skipWs();
  Begin = Pos;
  if (Pos >= Text.size())
    return false;
  if (Text[Pos] == '(') {
    int Depth = 0;
    std::size_t P = Pos;
    bool InQuote = false;
    while (P < Text.size()) {
      char C = Text[P];
      if (InQuote) {
        if (C == '\\' && P + 1 < Text.size())
          ++P;
        else if (C == '|')
          InQuote = false;
      } else if (C == '|') {
        InQuote = true;
      } else if (C == '(') {
        ++Depth;
      } else if (C == ')') {
        if (--Depth == 0) {
          ++P;
          Out = Text.substr(Begin, P - Begin);
          Pos = P;
          return true;
        }
      }
      ++P;
    }
    return false;
  }
  // Single atom (possibly |quoted|).
  std::size_t P = Pos;
  if (Text[P] == '|') {
    ++P;
    while (P < Text.size()) {
      if (Text[P] == '\\' && P + 1 < Text.size())
        P += 2;
      else if (Text[P] == '|') {
        ++P;
        break;
      } else
        ++P;
    }
  } else {
    while (P < Text.size() &&
           !std::isspace(static_cast<unsigned char>(Text[P])) &&
           std::string("();{}[],:").find(Text[P]) == std::string::npos)
      ++P;
  }
  if (P == Pos)
    return false;
  Out = Text.substr(Begin, P - Begin);
  Pos = P;
  return true;
}

bool Lexer::rawUntilSemi(std::string &Out, std::size_t &Begin) {
  if (HasAhead) {
    Pos = Ahead.Begin;
    HasAhead = false;
  }
  skipWs();
  Begin = Pos;
  int Depth = 0;
  std::size_t P = Pos;
  while (P < Text.size()) {
    char C = Text[P];
    if (C == '(' || C == '[' || C == '{')
      ++Depth;
    else if (C == ')' || C == ']' || C == '}')
      --Depth;
    else if (C == ';' && Depth == 0) {
      std::size_t E = P;
      while (E > Begin &&
             std::isspace(static_cast<unsigned char>(Text[E - 1])))
        --E;
      Out = Text.substr(Begin, E - Begin);
      Pos = P + 1;
      return true;
    }
    ++P;
  }
  return false;
}

bool Lexer::rawItemTail() {
  if (HasAhead) {
    Pos = Ahead.Begin;
    HasAhead = false;
  }
  int Depth = 0;
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '"' || C == '|') {
      ++Pos;
      while (Pos < Text.size()) {
        char D = Text[Pos++];
        if (D == '\\' && Pos < Text.size())
          ++Pos;
        else if (D == C)
          break;
      }
      continue;
    }
    ++Pos;
    if (C == '{') {
      ++Depth;
    } else if (C == '}') {
      if (--Depth <= 0)
        return Depth == 0;
    } else if (C == ';' && Depth == 0) {
      return true;
    }
  }
  return false;
}

bool gilr::frontend::isPlainIdent(const std::string &Name) {
  if (Name.empty() || !identStart(Name[0]))
    return false;
  std::size_t I = 0;
  while (I < Name.size() && identChar(Name[I]))
    ++I;
  if (I < Name.size()) {
    // The rest must be exactly one balanced <...> group.
    if (Name[I] != '<')
      return false;
    int Depth = 0;
    for (; I < Name.size(); ++I) {
      char C = Name[I];
      if (C == '|' || C == '"' || C == '\\' || C == '\n')
        return false;
      if (C == '<')
        ++Depth;
      else if (C == '>' && --Depth == 0) {
        ++I;
        break;
      }
    }
    if (Depth != 0 || I != Name.size())
      return false;
  }
  return !keywords().count(Name);
}

std::string gilr::frontend::quoteIdent(const std::string &Name) {
  if (isPlainIdent(Name))
    return Name;
  std::string Out = "|";
  for (char C : Name) {
    if (C == '|' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += "|";
  return Out;
}
