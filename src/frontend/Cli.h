//===- frontend/Cli.h - The gilr command-line driver ------------------------===//
///
/// \file
/// Implementation of the `gilr` tool (tools/gilr.cpp is a thin main). Three
/// subcommands over .gilr modules:
///
///   gilr check  file.gilr...   parse + typecheck only
///   gilr lint   file.gilr...   + the static pre-verification pass
///   gilr verify file.gilr...   + the full hybrid verification run
///
/// Flags: --json (machine-readable output), --jobs N (scheduler threads for
/// verify), --incr-store PATH (persistent proof store for verify).
///
/// Exit-code contract (asserted by tests/frontend_test.cpp):
///   0  everything verified / no findings
///   1  proof failures (hybrid run not ok, lemma hypothesis failures)
///   2  lint errors (analysis findings that block verification)
///   3  parse / type errors (or usage errors)
/// With multiple files the worst code wins (3 > 2 > 1 > 0).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_FRONTEND_CLI_H
#define GILR_FRONTEND_CLI_H

#include <ostream>
#include <string>
#include <vector>

namespace gilr {
namespace frontend {

/// Runs the gilr driver on \p Args (argv[1..]); returns the process exit
/// code. All human-readable output goes to \p Out, diagnostics and usage
/// errors to \p Err. In --json mode the JSON document goes to \p Out: a
/// single object for one input file, an array (input order) for several.
int runCli(const std::vector<std::string> &Args, std::ostream &Out,
           std::ostream &Err);

} // namespace frontend
} // namespace gilr

#endif // GILR_FRONTEND_CLI_H
