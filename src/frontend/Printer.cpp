//===- frontend/Printer.cpp ------------------------------------------------===//

#include "frontend/Printer.h"

#include "frontend/Lexer.h"
#include "gilsonite/Parser.h"

#include <sstream>

using namespace gilr;
using namespace gilr::frontend;

namespace {

/// The reader's sort prediction for a bare variable atom: 'names are
/// lifetimes, everything else Any (gilsonite/Parser.cpp predictSort).
bool sortIsPredicted(const std::string &Name, Sort S) {
  Sort P = (!Name.empty() && Name[0] == '\'') ? Sort::Lft : Sort::Any;
  return P == S;
}

/// True if \p Name lexes as a single Lifetime token ('x followed by ident
/// characters), i.e. can be printed raw in a name position.
bool isLifetimeShaped(const std::string &Name) {
  if (Name.size() < 2 || Name[0] != '\'')
    return false;
  for (std::size_t I = 1; I < Name.size(); ++I) {
    char C = Name[I];
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == '$';
    if (!Ok)
      return false;
  }
  return true;
}

/// Renders \p Name for a .gilr name position (which accepts Ident and
/// Lifetime tokens).
std::string name(const std::string &Name) {
  return isLifetimeShaped(Name) ? Name : quoteIdent(Name);
}

std::string escapeStr(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '\\' || C == '"') {
      Out += '\\';
      Out += C;
    } else if (C == '\n') {
      Out += "\\n";
    } else if (C == '\t') {
      Out += "\\t";
    } else {
      Out += C;
    }
  }
  Out += '"';
  return Out;
}

const char *ghostKindName(rmir::GhostKind K) {
  switch (K) {
  case rmir::GhostKind::Unfold:
    return "unfold";
  case rmir::GhostKind::Fold:
    return "fold";
  case rmir::GhostKind::GUnfold:
    return "gunfold";
  case rmir::GhostKind::GFold:
    return "gfold";
  case rmir::GhostKind::ApplyLemma:
    return "apply";
  case rmir::GhostKind::MutRefAutoResolve:
    return "resolve";
  case rmir::GhostKind::ProphecyAutoUpdate:
    return "update";
  case rmir::GhostKind::AssertPure:
    return "assert_pure";
  }
  return "unfold";
}

const char *binOpName(rmir::BinOp Op) {
  switch (Op) {
  case rmir::BinOp::Add:
    return "add";
  case rmir::BinOp::Sub:
    return "sub";
  case rmir::BinOp::Mul:
    return "mul";
  case rmir::BinOp::Eq:
    return "eq";
  case rmir::BinOp::Ne:
    return "ne";
  case rmir::BinOp::Lt:
    return "lt";
  case rmir::BinOp::Le:
    return "le";
  case rmir::BinOp::Gt:
    return "gt";
  case rmir::BinOp::Ge:
    return "ge";
  }
  return "add";
}

/// The .gilr type atom for an assertion position: the rendered type name,
/// quoted as a Gilsonite atom when needed.
std::string tyAtom(rmir::TypeRef T) { return gilsonite::quoteAtom(T->str()); }

class ModulePrinter {
public:
  explicit ModulePrinter(const PrintInput &In) : In(In) {}

  std::string print() {
    printTypes();
    printPreds();
    printLemmas();
    for (const auto &[Name, F] : In.Prog.Funcs)
      printFn(F);
    printSpecs();
    printContracts();
    for (const creusot::SafeFn &C : In.Clients)
      printClient(C);
    printAutomation();
    printVerify();
    return OS.str();
  }

private:
  const PrintInput &In;
  std::ostringstream OS;

  void printTypes() {
    std::vector<rmir::TypeRef> Noms = In.Prog.Types.allNominals();
    for (rmir::TypeRef T : Noms)
      if (T->Kind == rmir::TypeKind::Param)
        OS << "param " << name(T->Name) << ";\n";
    for (rmir::TypeRef T : Noms) {
      if (T->Kind != rmir::TypeKind::Struct)
        continue;
      OS << "\nstruct " << name(T->Name) << " {\n";
      for (const rmir::FieldDef &F : T->Fields)
        OS << "  " << name(F.Name) << ": " << printType(F.Ty) << ",\n";
      OS << "}\n";
    }
    for (rmir::TypeRef T : Noms) {
      if (T->Kind != rmir::TypeKind::Enum || T->IsOptionLike)
        continue;
      OS << "\nenum " << name(T->Name) << " {\n";
      for (const rmir::VariantDef &V : T->Variants) {
        OS << "  " << name(V.Name);
        if (!V.Fields.empty()) {
          OS << " {";
          for (std::size_t I = 0; I < V.Fields.size(); ++I)
            OS << (I ? ", " : " ") << name(V.Fields[I].Name) << ": "
               << printType(V.Fields[I].Ty);
          OS << " }";
        }
        OS << ",\n";
      }
      OS << "}\n";
    }
  }

  void printPreds() {
    for (const auto &[Name, D] : In.Preds.all()) {
      OS << "\npred " << name(Name);
      if (D.Abstract)
        OS << " abstract";
      if (D.Guardable)
        OS << " guardable";
      OS << " {\n";
      for (const gilsonite::PredParam &P : D.Params)
        OS << "  param " << name(P.Name) << " " << sortName(P.S) << " "
           << (P.In ? "in" : "out") << ";\n";
      for (const gilsonite::AssertionP &C : D.Clauses)
        OS << "  clause " << printAssertion(C) << ";\n";
      OS << "}\n";
    }
  }

  void printLemmas() {
    for (const engine::FreezeLemma &L : In.Freezes)
      OS << "\nlemma freeze " << name(L.Name) << " " << name(L.FromPred)
         << " " << name(L.ToPred) << ";\n";
    for (const engine::ExtractLemma &L : In.Extracts) {
      OS << "\nlemma extract " << name(L.Name) << " {\n";
      for (const std::string &P : L.Params)
        OS << "  param " << name(P) << ";\n";
      OS << "  given " << L.GivenParams << ";\n";
      for (const std::string &P : L.MutRefParams)
        OS << "  mutref " << name(P) << ";\n";
      OS << "  from " << name(L.FromPred) << " (";
      for (std::size_t I = 0; I < L.FromArgs.size(); ++I)
        OS << (I ? " " : "") << printExpr(L.FromArgs[I]);
      OS << ");\n";
      if (L.Persistent)
        OS << "  persistent " << printExpr(L.Persistent) << ";\n";
      if (L.Requires)
        OS << "  requires " << printExpr(L.Requires) << ";\n";
      OS << "  to " << name(L.ToPred) << " (";
      for (std::size_t I = 0; I < L.ToArgs.size(); ++I)
        OS << (I ? " " : "") << printExpr(L.ToArgs[I]);
      OS << ");\n";
      OS << "  prophecy " << name(L.NewProphecyHole) << ";\n";
      OS << "}\n";
    }
  }

  // Function bodies ------------------------------------------------------

  std::string place(const rmir::Function &F, const rmir::Place &P) {
    std::string Out = name(F.Locals.at(P.Local).Name);
    for (const rmir::PlaceElem &E : P.Elems) {
      switch (E.Kind) {
      case rmir::PlaceElem::Deref:
        Out += ".*";
        break;
      case rmir::PlaceElem::Field:
        Out += "." + std::to_string(E.Index);
        break;
      case rmir::PlaceElem::Downcast:
        Out += ".@" + std::to_string(E.Index);
        break;
      }
    }
    return Out;
  }

  std::string operand(const rmir::Function &F, const rmir::Operand &O) {
    switch (O.Kind) {
    case rmir::Operand::Copy:
      return "copy " + place(F, O.P);
    case rmir::Operand::Move:
      return "move " + place(F, O.P);
    case rmir::Operand::Const:
      return "const " + printExpr(O.ConstVal) + " : " + printType(O.ConstTy);
    }
    return "";
  }

  std::string operands(const rmir::Function &F,
                       const std::vector<rmir::Operand> &Ops) {
    std::string Out = "(";
    for (std::size_t I = 0; I < Ops.size(); ++I)
      Out += (I ? ", " : "") + operand(F, Ops[I]);
    return Out + ")";
  }

  std::string rvalue(const rmir::Function &F, const rmir::Rvalue &R) {
    switch (R.Kind) {
    case rmir::Rvalue::Use:
      return operand(F, R.Ops.at(0));
    case rmir::Rvalue::BinaryOp:
      return std::string(binOpName(R.BOp)) + operands(F, R.Ops);
    case rmir::Rvalue::UnaryOp:
      return std::string(R.UOp == rmir::UnOp::Not ? "not" : "neg") +
             operands(F, R.Ops);
    case rmir::Rvalue::Aggregate:
      return "aggregate " + printType(R.AggTy) + " @" +
             std::to_string(R.Variant) + " " + operands(F, R.Ops);
    case rmir::Rvalue::Discriminant:
      return "discriminant(" + place(F, R.P) + ")";
    case rmir::Rvalue::RefOf:
      return "&mut " + place(F, R.P);
    case rmir::Rvalue::AddrOf:
      return "&raw " + place(F, R.P);
    case rmir::Rvalue::PtrOffset:
      return "offset" + operands(F, R.Ops);
    }
    return "";
  }

  void printStmt(const rmir::Function &F, const rmir::Statement &S) {
    switch (S.Kind) {
    case rmir::Statement::Assign:
      OS << "    " << place(F, S.Dest) << " = " << rvalue(F, S.RV) << ";\n";
      break;
    case rmir::Statement::Alloc:
      OS << "    " << place(F, S.Dest) << " = alloc " << printType(S.AllocTy)
         << ";\n";
      break;
    case rmir::Statement::Free:
      OS << "    free " << operand(F, S.FreeArg) << " : "
         << printType(S.AllocTy) << ";\n";
      break;
    case rmir::Statement::GhostStmt:
      OS << "    ghost " << ghostKindName(S.G.Kind);
      if (!S.G.Name.empty())
        OS << " " << name(S.G.Name);
      OS << " " << operands(F, S.G.Args);
      if (S.G.PureArg)
        OS << " : " << printExpr(S.G.PureArg);
      OS << ";\n";
      break;
    case rmir::Statement::Nop:
      OS << "    nop;\n";
      break;
    }
  }

  void printTerm(const rmir::Function &F, const rmir::Terminator &T) {
    switch (T.Kind) {
    case rmir::Terminator::Goto:
      OS << "    goto bb" << T.Target << ";\n";
      break;
    case rmir::Terminator::SwitchInt:
      OS << "    switch " << operand(F, T.Discr) << " { ";
      for (const auto &[V, B] : T.Arms)
        OS << int128ToString(V) << " => bb" << B << ", ";
      OS << "_ => bb" << T.Otherwise << " };\n";
      break;
    case rmir::Terminator::Call: {
      OS << "    call " << place(F, T.Dest) << " = " << name(T.Callee);
      if (!T.TypeArgs.empty()) {
        OS << " [";
        for (std::size_t I = 0; I < T.TypeArgs.size(); ++I)
          OS << (I ? ", " : "") << printType(T.TypeArgs[I]);
        OS << "]";
      }
      OS << " " << operands(F, T.Args) << " -> bb" << T.Target << ";\n";
      break;
    }
    case rmir::Terminator::Return:
      OS << "    return;\n";
      break;
    case rmir::Terminator::Unreachable:
      OS << "    unreachable;\n";
      break;
    }
  }

  void printFn(const rmir::Function &F) {
    OS << "\nfn " << name(F.Name);
    if (!F.TypeParams.empty() || !F.Lifetimes.empty()) {
      OS << " [";
      bool First = true;
      for (const std::string &P : F.TypeParams) {
        OS << (First ? "" : ", ") << name(P);
        First = false;
      }
      for (const std::string &L : F.Lifetimes) {
        OS << (First ? "" : ", ") << name(L);
        First = false;
      }
      OS << "]";
    }
    OS << " {\n";
    OS << "  params " << F.NumParams << ";\n";
    for (const rmir::Local &L : F.Locals)
      OS << "  let " << name(L.Name) << ": " << printType(L.Ty) << ";\n";
    for (const std::string &S : F.LintSuppress)
      OS << "  suppress " << escapeStr(S) << ";\n";
    for (std::size_t B = 0; B < F.Blocks.size(); ++B) {
      OS << "  bb" << B << ": {\n";
      for (const rmir::Statement &S : F.Blocks[B].Stmts)
        printStmt(F, S);
      printTerm(F, F.Blocks[B].Term);
      OS << "  }\n";
    }
    OS << "}\n";
  }

  // Spec-side items ------------------------------------------------------

  void printSpecs() {
    for (const auto &[Name, S] : In.Specs.all()) {
      OS << "\nspec " << name(Name) << " {\n";
      for (const gilsonite::Binder &B : S.SpecVars)
        OS << "  var " << name(B.Name) << " " << sortName(B.S) << ";\n";
      if (S.Pre)
        OS << "  pre " << printAssertion(S.Pre) << ";\n";
      if (S.Post)
        OS << "  post " << printAssertion(S.Post) << ";\n";
      if (S.Trusted)
        OS << "  trusted;\n";
      if (!S.Doc.empty())
        OS << "  doc " << escapeStr(S.Doc) << ";\n";
      OS << "}\n";
    }
  }

  void printContracts() {
    for (const auto &[Name, S] : In.Contracts.all()) {
      OS << "\ncontract " << name(Name) << " {\n";
      for (const creusot::PearliteParam &P : S.Params)
        OS << "  param " << name(P.Name) << (P.IsMutRef ? " mut" : "")
           << ";\n";
      if (S.Pre)
        OS << "  pre " << printPearlite(S.Pre) << ";\n";
      if (S.Post)
        OS << "  post " << printPearlite(S.Post) << ";\n";
      if (S.HasResult)
        OS << "  result;\n";
      if (!S.Doc.empty())
        OS << "  doc " << escapeStr(S.Doc) << ";\n";
      OS << "}\n";
    }
  }

  void printClient(const creusot::SafeFn &C) {
    OS << "\nclient " << name(C.Name) << " (";
    for (std::size_t I = 0; I < C.Params.size(); ++I)
      OS << (I ? ", " : "") << name(C.Params[I]);
    OS << ") {\n";
    for (const creusot::SafeStmt &S : C.Body) {
      switch (S.Kind) {
      case creusot::SafeStmt::Let:
        OS << "  let " << name(S.Dest) << " = " << printPearlite(S.Term)
           << ";\n";
        break;
      case creusot::SafeStmt::Assert:
        OS << "  assert " << printPearlite(S.Term) << ";\n";
        break;
      case creusot::SafeStmt::Call:
        OS << "  call ";
        if (!S.Dest.empty())
          OS << name(S.Dest) << " = ";
        OS << name(S.Callee) << "(";
        for (std::size_t I = 0; I < S.Args.size(); ++I) {
          OS << (I ? ", " : "");
          if (I < S.ByMutRef.size() && S.ByMutRef[I])
            OS << "mut ";
          OS << name(S.Args[I]);
        }
        OS << ");\n";
        break;
      }
    }
    OS << "}\n";
  }

  void printAutomation() {
    const engine::Automation &A = In.Auto;
    OS << "\nautomation {\n";
    OS << "  auto_unfold " << (A.AutoUnfold ? "true" : "false") << ";\n";
    OS << "  auto_borrow " << (A.AutoBorrow ? "true" : "false") << ";\n";
    OS << "  auto_close " << (A.AutoCloseAtReturn ? "true" : "false")
       << ";\n";
    OS << "  obs_extract " << (A.ObsExtraction ? "true" : "false") << ";\n";
    OS << "  panics_allowed " << (A.PanicsAllowed ? "true" : "false")
       << ";\n";
    OS << "  fuel " << A.HeuristicFuel << ";\n";
    OS << "}\n";
  }

  void printVerify() {
    if (In.VerifyList.empty())
      return;
    OS << "\nverify ";
    for (std::size_t I = 0; I < In.VerifyList.size(); ++I)
      OS << (I ? ", " : "") << name(In.VerifyList[I]);
    OS << ";\n";
  }
};

} // namespace

std::string gilr::frontend::printType(rmir::TypeRef T) {
  switch (T->Kind) {
  case rmir::TypeKind::Bool:
    return "bool";
  case rmir::TypeKind::Int:
    return rmir::intKindName(T->IntK);
  case rmir::TypeKind::Unit:
    return "()";
  case rmir::TypeKind::RawPtr:
    return "*mut " + printType(T->Pointee);
  case rmir::TypeKind::Ref:
    return "&mut " + printType(T->Pointee);
  case rmir::TypeKind::Array:
    return "[" + printType(T->Pointee) + "; " + std::to_string(T->ArrayLen) +
           "]";
  case rmir::TypeKind::Struct:
  case rmir::TypeKind::Enum:
  case rmir::TypeKind::Param:
    return quoteIdent(T->Name);
  }
  return quoteIdent(T->Name);
}

std::string gilr::frontend::printExpr(const Expr &E) {
  using gilsonite::quoteAtom;
  auto nary = [&](const char *Op) {
    std::string Out = std::string("(") + Op;
    for (const Expr &K : E->Kids)
      Out += " " + printExpr(K);
    return Out + ")";
  };
  switch (E->Kind) {
  case ExprKind::Var:
    if (sortIsPredicted(E->Name, E->NodeSort))
      return quoteAtom(E->Name);
    return "(var " + quoteAtom(E->Name) + " " + sortName(E->NodeSort) + ")";
  case ExprKind::IntLit:
    return int128ToString(E->IntVal);
  case ExprKind::RealLit:
    return "(real " + int128ToString(E->RatVal.Num) + " " +
           int128ToString(E->RatVal.Den) + ")";
  case ExprKind::BoolLit:
    return E->BoolVal ? "true" : "false";
  case ExprKind::UnitLit:
    return "unit";
  case ExprKind::LocLit:
    return "(loc " + std::to_string(E->LocId) + ")";
  case ExprKind::NoneLit:
    return "none";
  case ExprKind::Not:
    return nary("not");
  case ExprKind::And:
    return nary("and");
  case ExprKind::Or:
    return nary("or");
  case ExprKind::Implies:
    return nary("=>");
  case ExprKind::Ite:
    return nary("ite");
  case ExprKind::Eq:
    return nary("=");
  case ExprKind::Lt:
    return nary("<");
  case ExprKind::Le:
    return nary("<=");
  case ExprKind::Add:
    return nary("+");
  case ExprKind::Sub:
    return nary("-");
  case ExprKind::Mul:
    return nary("*");
  case ExprKind::Neg:
    return nary("neg");
  case ExprKind::Some:
    return nary("some");
  case ExprKind::IsSome:
    return nary("is-some");
  case ExprKind::Unwrap:
    return nary("unwrap");
  case ExprKind::SeqNil:
    return "nil";
  case ExprKind::SeqUnit:
    return nary("seq");
  case ExprKind::SeqConcat:
    return nary("++");
  case ExprKind::SeqLen:
    return nary("len");
  case ExprKind::SeqNth:
    return nary("nth");
  case ExprKind::SeqSub:
    return nary("sub");
  case ExprKind::TupleLit:
    return nary("tuple");
  case ExprKind::TupleGet:
    return nary(("get-" + std::to_string(E->Index)).c_str());
  case ExprKind::LftIncl:
    return nary("lft-incl");
  case ExprKind::App: {
    std::string Out = "(app " + quoteAtom(E->Name);
    for (const Expr &K : E->Kids)
      Out += " " + printExpr(K);
    return Out + ")";
  }
  }
  return "unit";
}

std::string gilr::frontend::printAssertion(const gilsonite::AssertionP &A) {
  using gilsonite::AsrtKind;
  using gilsonite::quoteAtom;
  switch (A->Kind) {
  case AsrtKind::Star: {
    if (A->Parts.empty())
      return "emp";
    std::string Out = "(star";
    for (const gilsonite::AssertionP &P : A->Parts)
      Out += " " + printAssertion(P);
    return Out + ")";
  }
  case AsrtKind::Exists: {
    std::string Out = "(exists (";
    for (std::size_t I = 0; I < A->Binders.size(); ++I)
      Out += std::string(I ? " " : "") + "(" + quoteAtom(A->Binders[I].Name) +
             " " + sortName(A->Binders[I].S) + ")";
    return Out + ") " + printAssertion(A->Body) + ")";
  }
  case AsrtKind::Pure:
    return "(pure " + printExpr(A->Formula) + ")";
  case AsrtKind::PointsTo:
    return "(pt " + printExpr(A->Ptr) + " " + tyAtom(A->Ty) + " " +
           printExpr(A->Val) + ")";
  case AsrtKind::UninitPT:
    return "(uninit " + printExpr(A->Ptr) + " " + tyAtom(A->Ty) + ")";
  case AsrtKind::MaybeUninit:
    return "(maybe " + printExpr(A->Ptr) + " " + tyAtom(A->Ty) + " " +
           printExpr(A->Val) + ")";
  case AsrtKind::ArrayPT:
    return "(array " + printExpr(A->Ptr) + " " + tyAtom(A->Ty) + " " +
           printExpr(A->Count) + " " + printExpr(A->Seq) + ")";
  case AsrtKind::ArrayUninit:
    return "(uninit-array " + printExpr(A->Ptr) + " " + tyAtom(A->Ty) + " " +
           printExpr(A->Count) + ")";
  case AsrtKind::PredCall: {
    std::string Out = "(pred " + quoteAtom(A->Name);
    for (const Expr &X : A->Args)
      Out += " " + printExpr(X);
    return Out + ")";
  }
  case AsrtKind::GuardedCall: {
    std::string Out =
        "(guarded " + printExpr(A->Kappa) + " " + quoteAtom(A->Name);
    for (const Expr &X : A->Args)
      Out += " " + printExpr(X);
    return Out + ")";
  }
  case AsrtKind::LftAlive:
    return "(alive " + printExpr(A->Kappa) + " " + printExpr(A->Frac) + ")";
  case AsrtKind::LftDead:
    return "(dead " + printExpr(A->Kappa) + ")";
  case AsrtKind::Observation:
    return "(obs " + printExpr(A->Formula) + ")";
  case AsrtKind::ValueObs:
    return "(vo " + printExpr(A->PcyVar) + " " + printExpr(A->Val) + ")";
  case AsrtKind::ProphCtrl:
    return "(pc " + printExpr(A->PcyVar) + " " + printExpr(A->Val) + ")";
  }
  return "emp";
}

std::string gilr::frontend::printPearlite(const creusot::PTermP &T) {
  using creusot::PKind;
  auto p = [](const creusot::PTermP &K) { return printPearlite(K); };
  auto bin = [&](const char *Op) {
    return "(" + p(T->Kids.at(0)) + " " + Op + " " + p(T->Kids.at(1)) + ")";
  };
  switch (T->Kind) {
  case PKind::Var:
    return T->Name;
  case PKind::Result:
    return "result";
  case PKind::Final:
    return "(^" + p(T->Kids.at(0)) + ")";
  case PKind::Model:
    return "(" + p(T->Kids.at(0)) + "@)";
  case PKind::IntLit:
    return int128ToString(T->IntVal);
  case PKind::BoolLit:
    return T->BoolVal ? "true" : "false";
  case PKind::NoneLit:
    return "None";
  case PKind::SomeCtor:
    return "Some(" + p(T->Kids.at(0)) + ")";
  case PKind::SeqEmpty:
    return "Seq::EMPTY";
  case PKind::SeqCons:
    return "Seq::cons(" + p(T->Kids.at(0)) + ", " + p(T->Kids.at(1)) + ")";
  case PKind::SeqLen:
    return "(" + p(T->Kids.at(0)) + ".len())";
  case PKind::SeqNth:
    return "(" + p(T->Kids.at(0)) + "[" + p(T->Kids.at(1)) + "])";
  case PKind::Eq:
    return bin("==");
  case PKind::Ne:
    return bin("!=");
  case PKind::Lt:
    return bin("<");
  case PKind::Le:
    return bin("<=");
  case PKind::Add:
    return bin("+");
  case PKind::Sub:
    return bin("-");
  case PKind::And:
    return bin("&&");
  case PKind::Or:
    return bin("||");
  case PKind::Not:
    return "(!" + p(T->Kids.at(0)) + ")";
  case PKind::Implies:
    return bin("==>");
  case PKind::MatchOpt:
    return "(match " + p(T->Kids.at(0)) + " { None => " + p(T->Kids.at(1)) +
           ", Some(" + T->Name + ") => " + p(T->Kids.at(2)) + " })";
  }
  return "true";
}

std::string gilr::frontend::printGilr(const PrintInput &In) {
  return ModulePrinter(In).print();
}

std::string gilr::frontend::printModule(const Module &M) {
  PrintInput In{M.Prog,        M.Preds,       M.Specs,
                M.Contracts,   M.Clients,     M.FreezeDecls,
                M.ExtractDecls, M.Auto,       M.VerifyList};
  return printGilr(In);
}
