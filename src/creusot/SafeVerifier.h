//===- creusot/SafeVerifier.h - Creusot-style verification of safe code ----===//
///
/// \file
/// The safe half of the hybrid approach (§2.1): verification of safe Rust
/// client code against the axiomatised Pearlite contracts, without any
/// separation logic. Clients are straight-line programs over *pure
/// representations* — exactly the view Creusot takes of code using
/// LinkedList: the list is a sequence, calls update it, prophecies thread
/// the mutable-borrow updates (RustHorn-style: a call taking &mut x
/// instantiates the contract at (current, fresh-final) and the variable's
/// model becomes the final value afterwards).
///
/// Obligations (call preconditions and user asserts) are discharged by the
/// same SMT-lite solver the unsafe side uses, mirroring Creusot's SMT
/// backend.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_CREUSOT_SAFEVERIFIER_H
#define GILR_CREUSOT_SAFEVERIFIER_H

#include "creusot/StdSpecs.h"
#include "solver/Solver.h"
#include "sym/VarGen.h"

namespace gilr {
namespace creusot {

/// A statement of a safe client function.
struct SafeStmt {
  enum SKind : uint8_t {
    Let,    ///< let Dest = Term (pure).
    Call,   ///< Dest = Callee(Args...); mutref args are updated in place.
    Assert, ///< assert!(Term).
  } Kind = Let;

  std::string Dest;              ///< Let / Call result binding ("" if none).
  PTermP Term;                   ///< Let / Assert.
  std::string Callee;            ///< Call.
  std::vector<std::string> Args; ///< Call argument variables.
  /// Call arguments passed by mutable reference (parallel to Args).
  std::vector<bool> ByMutRef;
};

/// A safe client function.
struct SafeFn {
  std::string Name;
  std::vector<std::string> Params; ///< Plain parameters (models are havoced).
  std::vector<SafeStmt> Body;
};

/// A verification-condition record, for reporting.
struct SafeObligation {
  std::string Where;
  std::string What;
  bool Ok = false;
};

/// Result of verifying one safe function.
struct SafeReport {
  std::string Func;
  bool Ok = true;
  /// The proof job's budget ran out while verifying: the result is Unknown
  /// rather than a definite failure (set by the scheduler).
  bool TimedOut = false;
  /// The verdict was replayed from a persistent incremental proof store
  /// (incr/Session.h) instead of being re-proved.
  bool Cached = false;
  double Seconds = 0.0;
  std::vector<SafeObligation> Obligations;
  std::vector<std::string> Errors;
  /// Solver work attributable to this function (After - Before snapshot of
  /// the thread-local stats; exact under concurrent scheduler workers).
  SolverStats Solver;
};

/// The Creusot-side verifier.
class SafeVerifier {
public:
  SafeVerifier(const PearliteSpecTable &Specs, Solver &S)
      : Specs(Specs), Solv(S) {}

  SafeReport verify(const SafeFn &F);

private:
  const PearliteSpecTable &Specs;
  Solver &Solv;
};

} // namespace creusot
} // namespace gilr

#endif // GILR_CREUSOT_SAFEVERIFIER_H
