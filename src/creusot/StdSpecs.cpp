//===- creusot/StdSpecs.cpp -------------------------------------------------------===//

#include "creusot/StdSpecs.h"

#include "creusot/PearliteParser.h"

#include "rmir/Type.h"
#include "support/Deps.h"
#include "support/Diagnostics.h"

using namespace gilr;
using namespace gilr::creusot;

void PearliteSpecTable::add(PearliteSpec S) {
  auto [It, Inserted] = Map.emplace(S.Func, std::move(S));
  if (!Inserted)
    fatalError("Pearlite spec for '" + It->first + "' declared twice");
}

const PearliteSpec *PearliteSpecTable::lookup(const std::string &Func) const {
  // Incremental-verification dependency: the proof assumed this contract.
  deps::note(deps::Kind::Contract, Func);
  auto It = Map.find(Func);
  return It == Map.end() ? nullptr : &It->second;
}

PearliteSpecTable gilr::creusot::makeLinkedListSpecs() {
  PearliteSpecTable T;
  __int128 UsizeMax = rmir::intMaxValue(rmir::IntKind::USize);

  // fn new() -> LinkedList<T>;  ensures result@ == Seq::EMPTY.
  {
    PearliteSpec S;
    S.Func = "LinkedList::new";
    S.HasResult = true;
    S.Post = pEq(pModel(pResult()), pSeqEmpty());
    S.Doc = "#[ensures(result@ == Seq::EMPTY)]";
    T.add(std::move(S));
  }

  // fn push_front(&mut self, x: T);
  //   requires self@.len() < usize::MAX
  //   ensures (^self)@ == Seq::cons(x, self@).
  {
    PearliteSpec S;
    S.Func = "LinkedList::push_front";
    S.Params = {{"self", /*IsMutRef=*/true}, {"x", false}};
    S.Pre = pLt(pSeqLen(pModel(pVar("self"))), pInt(UsizeMax));
    S.Post = pEq(pModel(pFinal(pVar("self"))),
                 pSeqCons(pVar("x"), pModel(pVar("self"))));
    S.Doc = "#[requires(self@.len() < usize::MAX)] "
            "#[ensures((^self)@ == Seq::cons(x@, self@))]";
    T.add(std::move(S));
  }

  // fn pop_front(&mut self) -> Option<T>;  Fig. 3 of the paper.
  {
    PearliteSpec S;
    S.Func = "LinkedList::pop_front";
    S.Params = {{"self", true}};
    S.HasResult = true;
    // The None case additionally pins self@ == Seq::EMPTY (the strengthening
    // Creusot's real std contract carries; Fig. 3 of the paper shows only
    // the final-value half). Clients need it to conclude pop succeeds on
    // non-empty lists, and the Gillian-Rust side proves it.
    S.Post = pMatchOpt(
        pResult(),
        /*None=>*/
        pAnd(pEq(pModel(pVar("self")), pSeqEmpty()),
             pEq(pModel(pFinal(pVar("self"))), pSeqEmpty())),
        /*Some binder*/ "x",
        /*Some=>*/
        pEq(pModel(pVar("self")),
            pSeqCons(pVar("x"), pModel(pFinal(pVar("self"))))));
    S.Doc = "#[ensures(match result { None => self@ == Seq::EMPTY && "
            "(^self)@ == Seq::EMPTY, Some(x) => self@ == Seq::cons(x, "
            "(^self)@) })]";
    T.add(std::move(S));
  }

  // fn front_mut(&mut self) -> Option<&mut T>: a *partial* functional
  // contract (emptiness behaviour). The paper cannot verify any functional
  // front_mut spec (§6); our prophecy-aware extraction (§7.1 extension)
  // verifies this one. The full contract — relating *result and ^self
  // through the extracted borrow — remains future work here too.
  {
    PearliteSpec S;
    S.Func = "LinkedList::front_mut";
    S.Params = {{"self", true}};
    S.HasResult = true;
    S.Post = pMatchOpt(
        pResult(),
        pAnd(pEq(pModel(pVar("self")), pSeqEmpty()),
             pEq(pModel(pFinal(pVar("self"))), pSeqEmpty())),
        "r", pLt(pInt(0), pSeqLen(pModel(pVar("self")))));
    S.Doc = "partial: None iff empty (paper: functional front_mut "
            "unverifiable; enabled by the prophecy-aware extraction)";
    T.add(std::move(S));
  }

  // fn is_empty(&mut self) -> bool: an observationally read-only borrow —
  // the result reflects the model and the final model equals the current
  // one.
  {
    PearliteSpec S;
    S.Func = "LinkedList::is_empty";
    S.Params = {{"self", true}};
    S.HasResult = true;
    S.Post = pAnd(pEq(pResult(), pEq(pModel(pVar("self")), pSeqEmpty())),
                  pEq(pModel(pFinal(pVar("self"))), pModel(pVar("self"))));
    S.Doc = "#[ensures(result == (self@ == Seq::EMPTY) && (^self)@ == "
            "self@)]";
    T.add(std::move(S));
  }

  // The node-level variants carry the same contracts (the paper verifies
  // functional correctness of push_front_node / pop_front_node).
  {
    PearliteSpec S;
    S.Func = "LinkedList::push_front_node";
    S.Params = {{"self", true}, {"x", false}};
    S.Pre = pLt(pSeqLen(pModel(pVar("self"))), pInt(UsizeMax));
    S.Post = pEq(pModel(pFinal(pVar("self"))),
                 pSeqCons(pVar("x"), pModel(pVar("self"))));
    S.Doc = "node-level push (Fig. 3 discussion, §7.3 precondition)";
    T.add(std::move(S));
  }
  {
    PearliteSpec S;
    S.Func = "LinkedList::pop_front_node";
    S.Params = {{"self", true}};
    S.HasResult = true;
    S.Post = pMatchOpt(
        pResult(),
        pAnd(pEq(pModel(pVar("self")), pSeqEmpty()),
             pEq(pModel(pFinal(pVar("self"))), pSeqEmpty())),
        "x",
        pEq(pModel(pVar("self")),
            pSeqCons(pVar("x"), pModel(pFinal(pVar("self"))))));
    S.Doc = "node-level pop (Fig. 3)";
    T.add(std::move(S));
  }

  return T;
}

PearliteSpecTable gilr::creusot::makeLinkedListSpecsFromText() {
  // The contracts in their concrete syntax, exactly as a Creusot crate
  // would carry them in #[requires]/#[ensures] attributes (Fig. 3).
  struct TextEntry {
    const char *Func;
    std::vector<PearliteParam> Params;
    bool HasResult;
    const char *Text;
  };
  const TextEntry Entries[] = {
      {"LinkedList::new", {}, true, "#[ensures(result@ == Seq::EMPTY)]"},
      {"LinkedList::push_front",
       {{"self", true}, {"x", false}},
       false,
       "#[requires(self@.len() < usize::MAX)] "
       "#[ensures((^self)@ == Seq::cons(x, self@))]"},
      {"LinkedList::pop_front",
       {{"self", true}},
       true,
       "#[ensures(match result { "
       "None => self@ == Seq::EMPTY && (^self)@ == Seq::EMPTY, "
       "Some(x) => self@ == Seq::cons(x, (^self)@) })]"},
      {"LinkedList::front_mut",
       {{"self", true}},
       true,
       "#[ensures(match result { "
       "None => self@ == Seq::EMPTY && (^self)@ == Seq::EMPTY, "
       "Some(r) => 0 < self@.len() })]"},
      {"LinkedList::is_empty",
       {{"self", true}},
       true,
       "#[ensures(result == (self@ == Seq::EMPTY) && (^self)@ == self@)]"},
      {"LinkedList::push_front_node",
       {{"self", true}, {"x", false}},
       false,
       "#[requires(self@.len() < usize::MAX)] "
       "#[ensures((^self)@ == Seq::cons(x, self@))]"},
      {"LinkedList::pop_front_node",
       {{"self", true}},
       true,
       "#[ensures(match result { "
       "None => self@ == Seq::EMPTY && (^self)@ == Seq::EMPTY, "
       "Some(x) => self@ == Seq::cons(x, (^self)@) })]"},
  };

  PearliteSpecTable T;
  for (const TextEntry &E : Entries) {
    Outcome<ParsedContract> R = parsePearliteContract(E.Text);
    if (!R.ok())
      fatalError("parsing contract of " + std::string(E.Func) + ": " +
                 R.error());
    PearliteSpec S;
    S.Func = E.Func;
    S.Params = E.Params;
    S.HasResult = E.HasResult;
    S.Pre = R.value().Pre;
    S.Post = R.value().Post;
    S.Doc = E.Text;
    T.add(std::move(S));
  }
  return T;
}
