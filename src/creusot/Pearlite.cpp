//===- creusot/Pearlite.cpp -------------------------------------------------------===//

#include "creusot/Pearlite.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"

using namespace gilr;
using namespace gilr::creusot;

static std::shared_ptr<PTerm> make(PKind K) {
  return std::make_shared<PTerm>(K);
}

PTermP gilr::creusot::pVar(std::string Name) {
  auto T = make(PKind::Var);
  T->Name = std::move(Name);
  return T;
}

PTermP gilr::creusot::pResult() { return make(PKind::Result); }

PTermP gilr::creusot::pFinal(PTermP X) {
  auto T = make(PKind::Final);
  T->Kids = {std::move(X)};
  return T;
}

PTermP gilr::creusot::pModel(PTermP X) {
  auto T = make(PKind::Model);
  T->Kids = {std::move(X)};
  return T;
}

PTermP gilr::creusot::pInt(__int128 V) {
  auto T = make(PKind::IntLit);
  T->IntVal = V;
  return T;
}

PTermP gilr::creusot::pBool(bool B) {
  auto T = make(PKind::BoolLit);
  T->BoolVal = B;
  return T;
}

PTermP gilr::creusot::pNone() { return make(PKind::NoneLit); }

PTermP gilr::creusot::pSome(PTermP X) {
  auto T = make(PKind::SomeCtor);
  T->Kids = {std::move(X)};
  return T;
}

PTermP gilr::creusot::pSeqEmpty() { return make(PKind::SeqEmpty); }

static PTermP binary(PKind K, PTermP A, PTermP B) {
  auto T = make(K);
  T->Kids = {std::move(A), std::move(B)};
  return T;
}

PTermP gilr::creusot::pSeqCons(PTermP H, PTermP T) {
  return binary(PKind::SeqCons, std::move(H), std::move(T));
}
PTermP gilr::creusot::pSeqLen(PTermP X) {
  auto T = make(PKind::SeqLen);
  T->Kids = {std::move(X)};
  return T;
}
PTermP gilr::creusot::pSeqNth(PTermP X, PTermP I) {
  return binary(PKind::SeqNth, std::move(X), std::move(I));
}
PTermP gilr::creusot::pEq(PTermP A, PTermP B) {
  return binary(PKind::Eq, std::move(A), std::move(B));
}
PTermP gilr::creusot::pNe(PTermP A, PTermP B) {
  return binary(PKind::Ne, std::move(A), std::move(B));
}
PTermP gilr::creusot::pLt(PTermP A, PTermP B) {
  return binary(PKind::Lt, std::move(A), std::move(B));
}
PTermP gilr::creusot::pLe(PTermP A, PTermP B) {
  return binary(PKind::Le, std::move(A), std::move(B));
}
PTermP gilr::creusot::pAdd(PTermP A, PTermP B) {
  return binary(PKind::Add, std::move(A), std::move(B));
}
PTermP gilr::creusot::pSub(PTermP A, PTermP B) {
  return binary(PKind::Sub, std::move(A), std::move(B));
}
PTermP gilr::creusot::pAnd(PTermP A, PTermP B) {
  return binary(PKind::And, std::move(A), std::move(B));
}
PTermP gilr::creusot::pOr(PTermP A, PTermP B) {
  return binary(PKind::Or, std::move(A), std::move(B));
}
PTermP gilr::creusot::pNot(PTermP A) {
  auto T = make(PKind::Not);
  T->Kids = {std::move(A)};
  return T;
}
PTermP gilr::creusot::pImplies(PTermP A, PTermP B) {
  return binary(PKind::Implies, std::move(A), std::move(B));
}

PTermP gilr::creusot::pMatchOpt(PTermP Scrut, PTermP NoneBody,
                                std::string Binder, PTermP SomeBody) {
  auto T = make(PKind::MatchOpt);
  T->Name = std::move(Binder);
  T->Kids = {std::move(Scrut), std::move(NoneBody), std::move(SomeBody)};
  return T;
}

std::string PTerm::str() const {
  switch (Kind) {
  case PKind::Var:
    return Name;
  case PKind::Result:
    return "result";
  case PKind::Final:
    return "^" + Kids[0]->str();
  case PKind::Model:
    return Kids[0]->str() + "@";
  case PKind::IntLit:
    return int128ToString(IntVal);
  case PKind::BoolLit:
    return BoolVal ? "true" : "false";
  case PKind::NoneLit:
    return "None";
  case PKind::SomeCtor:
    return "Some(" + Kids[0]->str() + ")";
  case PKind::SeqEmpty:
    return "Seq::EMPTY";
  case PKind::SeqCons:
    return "Seq::cons(" + Kids[0]->str() + ", " + Kids[1]->str() + ")";
  case PKind::SeqLen:
    return Kids[0]->str() + ".len()";
  case PKind::SeqNth:
    return Kids[0]->str() + "[" + Kids[1]->str() + "]";
  case PKind::Eq:
    return "(" + Kids[0]->str() + " == " + Kids[1]->str() + ")";
  case PKind::Ne:
    return "(" + Kids[0]->str() + " != " + Kids[1]->str() + ")";
  case PKind::Lt:
    return "(" + Kids[0]->str() + " < " + Kids[1]->str() + ")";
  case PKind::Le:
    return "(" + Kids[0]->str() + " <= " + Kids[1]->str() + ")";
  case PKind::Add:
    return "(" + Kids[0]->str() + " + " + Kids[1]->str() + ")";
  case PKind::Sub:
    return "(" + Kids[0]->str() + " - " + Kids[1]->str() + ")";
  case PKind::And:
    return "(" + Kids[0]->str() + " && " + Kids[1]->str() + ")";
  case PKind::Or:
    return "(" + Kids[0]->str() + " || " + Kids[1]->str() + ")";
  case PKind::Not:
    return "!" + Kids[0]->str();
  case PKind::Implies:
    return "(" + Kids[0]->str() + " ==> " + Kids[1]->str() + ")";
  case PKind::MatchOpt:
    return "match " + Kids[0]->str() + " { None => " + Kids[1]->str() +
           ", Some(" + Name + ") => " + Kids[2]->str() + " }";
  }
  GILR_UNREACHABLE("unknown pearlite kind");
}

namespace {

/// Internal lowering with a scope for match binders.
Outcome<Expr> lower(const PTermP &T, const LowerEnv &Env,
                    std::map<std::string, Expr> &Scope) {
  auto lowerKid = [&](std::size_t I) { return lower(T->Kids[I], Env, Scope); };

  switch (T->Kind) {
  case PKind::Var: {
    auto SIt = Scope.find(T->Name);
    if (SIt != Scope.end())
      return Outcome<Expr>::success(SIt->second);
    auto It = Env.Values.find(T->Name);
    if (It == Env.Values.end())
      return Outcome<Expr>::failure("unknown Pearlite variable " + T->Name);
    auto MIt = Env.IsMutRef.find(T->Name);
    if (MIt != Env.IsMutRef.end() && MIt->second)
      return Outcome<Expr>::failure(
          "mutable reference " + T->Name +
          " used directly; apply @ (current) or ^ (final)");
    return Outcome<Expr>::success(It->second);
  }
  case PKind::Result:
    if (!Env.ResultVal)
      return Outcome<Expr>::failure("`result` used outside a postcondition");
    return Outcome<Expr>::success(Env.ResultVal);
  case PKind::Final: {
    // ^x: the second component of the reference's representation pair.
    const PTermP &Inner = T->Kids[0];
    if (Inner->Kind != PKind::Var)
      return Outcome<Expr>::failure("^ applies to a reference variable");
    auto It = Env.Values.find(Inner->Name);
    if (It == Env.Values.end())
      return Outcome<Expr>::failure("unknown variable " + Inner->Name);
    return Outcome<Expr>::success(mkTupleGet(It->second, 1));
  }
  case PKind::Model: {
    // t@: models coincide with representations; on references project the
    // current component, and (^x)@ projects the final one.
    const PTermP &Inner = T->Kids[0];
    if (Inner->Kind == PKind::Final)
      return lower(Inner, Env, Scope);
    if (Inner->Kind == PKind::Var) {
      auto MIt = Env.IsMutRef.find(Inner->Name);
      if (MIt != Env.IsMutRef.end() && MIt->second) {
        auto It = Env.Values.find(Inner->Name);
        if (It == Env.Values.end())
          return Outcome<Expr>::failure("unknown variable " + Inner->Name);
        return Outcome<Expr>::success(mkTupleGet(It->second, 0));
      }
    }
    return lower(Inner, Env, Scope);
  }
  case PKind::IntLit:
    return Outcome<Expr>::success(mkInt(T->IntVal));
  case PKind::BoolLit:
    return Outcome<Expr>::success(mkBool(T->BoolVal));
  case PKind::NoneLit:
    return Outcome<Expr>::success(mkNone());
  case PKind::SeqEmpty:
    return Outcome<Expr>::success(mkSeqNil());
  default:
    break;
  }

  // Uniform kid lowering for the remaining operators.
  std::vector<Expr> Ks;
  if (T->Kind != PKind::MatchOpt) {
    for (std::size_t I = 0; I != T->Kids.size(); ++I) {
      Outcome<Expr> K = lowerKid(I);
      if (!K.ok())
        return K;
      Ks.push_back(K.value());
    }
  }

  switch (T->Kind) {
  case PKind::SomeCtor:
    return Outcome<Expr>::success(mkSome(Ks[0]));
  case PKind::SeqCons:
    return Outcome<Expr>::success(mkSeqCons(Ks[0], Ks[1]));
  case PKind::SeqLen:
    return Outcome<Expr>::success(mkSeqLen(Ks[0]));
  case PKind::SeqNth:
    return Outcome<Expr>::success(mkSeqNth(Ks[0], Ks[1]));
  case PKind::Eq:
    return Outcome<Expr>::success(mkEq(Ks[0], Ks[1]));
  case PKind::Ne:
    return Outcome<Expr>::success(mkNe(Ks[0], Ks[1]));
  case PKind::Lt:
    return Outcome<Expr>::success(mkLt(Ks[0], Ks[1]));
  case PKind::Le:
    return Outcome<Expr>::success(mkLe(Ks[0], Ks[1]));
  case PKind::Add:
    return Outcome<Expr>::success(mkAdd(Ks[0], Ks[1]));
  case PKind::Sub:
    return Outcome<Expr>::success(mkSub(Ks[0], Ks[1]));
  case PKind::And:
    return Outcome<Expr>::success(mkAnd(Ks[0], Ks[1]));
  case PKind::Or:
    return Outcome<Expr>::success(mkOr(Ks[0], Ks[1]));
  case PKind::Not:
    return Outcome<Expr>::success(mkNot(Ks[0]));
  case PKind::Implies:
    return Outcome<Expr>::success(mkImplies(Ks[0], Ks[1]));
  case PKind::MatchOpt: {
    Outcome<Expr> Scrut = lower(T->Kids[0], Env, Scope);
    if (!Scrut.ok())
      return Scrut;
    Outcome<Expr> NoneB = lower(T->Kids[1], Env, Scope);
    if (!NoneB.ok())
      return NoneB;
    auto [It, Inserted] = Scope.emplace(T->Name, mkUnwrap(Scrut.value()));
    Expr Saved = Inserted ? nullptr : It->second;
    It->second = mkUnwrap(Scrut.value());
    Outcome<Expr> SomeB = lower(T->Kids[2], Env, Scope);
    if (Saved)
      It->second = Saved;
    else
      Scope.erase(T->Name);
    if (!SomeB.ok())
      return SomeB;
    return Outcome<Expr>::success(
        mkIte(mkIsSome(Scrut.value()), SomeB.value(), NoneB.value()));
  }
  default:
    GILR_UNREACHABLE("unhandled pearlite kind in lowering");
  }
}

} // namespace

Outcome<Expr> gilr::creusot::lowerPearlite(const PTermP &T,
                                           const LowerEnv &Env) {
  std::map<std::string, Expr> Scope;
  return lower(T, Env, Scope);
}
