//===- creusot/PearliteParser.h - Textual Pearlite front-end ---------------===//
///
/// \file
/// A recursive-descent parser for the concrete Pearlite syntax the paper
/// writes its contracts in (Fig. 3), e.g.
///
///   #[requires(self@.len() < usize::MAX)]
///   #[ensures((^self)@ == Seq::cons(x@, self@))]
///
/// Contracts can thus be authored as text — the form they take in a real
/// Creusot crate — instead of through the pVar/pEq builder API. The parser
/// produces the same PTerm trees the builders do, so everything downstream
/// (lowering, the §5.4 encoding, both verifier sides) is shared.
///
/// Grammar (precedence low→high):
///   term    := or ( '==>' term )?                         (right assoc)
///   or      := and ( '||' and )*
///   and     := cmp ( '&&' cmp )*
///   cmp     := add ( ('=='|'!='|'<'|'<='|'>'|'>=') add )?
///   add     := unary ( ('+'|'-') unary )*
///   unary   := '!' unary | '^' unary | postfix
///   postfix := primary ( '@' | '.len()' | '[' term ']' )*
///   primary := int | 'true' | 'false' | 'None' | 'Some(' term ')'
///            | 'Seq::EMPTY' | 'Seq::cons(' term ',' term ')'
///            | 'usize::MAX' | 'result' | ident | '(' term ')'
///            | 'match' term '{' 'None' '=>' term ','
///                               'Some(' ident ')' '=>' term ','? '}'
///
/// Note `^` binds looser than postfix `@`, matching the paper's spelling
/// `(^self)@` (the final value's model).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_CREUSOT_PEARLITEPARSER_H
#define GILR_CREUSOT_PEARLITEPARSER_H

#include "creusot/Pearlite.h"

namespace gilr {
namespace creusot {

/// Parses a single Pearlite term. Errors carry a position and what was
/// expected.
Outcome<PTermP> parsePearliteTerm(const std::string &Src);

/// A parsed `#[requires(..)]* #[ensures(..)]*` attribute block. Multiple
/// clauses of the same kind are conjoined; an absent kind is nullptr
/// (meaning `true`).
struct ParsedContract {
  PTermP Pre;
  PTermP Post;
};

/// Parses a full contract attribute block, e.g.
/// `#[requires(a < b)] #[ensures(result == a)]`.
Outcome<ParsedContract> parsePearliteContract(const std::string &Src);

} // namespace creusot
} // namespace gilr

#endif // GILR_CREUSOT_PEARLITEPARSER_H
