//===- creusot/Pearlite.h - The Pearlite specification language ------------===//
///
/// \file
/// Pearlite is Creusot's first-order assertion language (§5.4): the usual
/// connectives plus the prophetic *final* operator ^ (the value a mutable
/// reference will have when it expires) and the shallow-model operator @.
/// Terms here are a thin AST lowered into solver expressions over
/// *representations*: a non-reference variable denotes its model, a mutable
/// reference denotes the pair (current model, final model).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_CREUSOT_PEARLITE_H
#define GILR_CREUSOT_PEARLITE_H

#include "support/Outcome.h"
#include "sym/Expr.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gilr {
namespace creusot {

class PTerm;
using PTermP = std::shared_ptr<const PTerm>;

/// Pearlite term kinds.
enum class PKind : uint8_t {
  Var,      ///< A program variable by name.
  Result,   ///< The distinguished `result`.
  Final,    ///< ^t: the final value of a mutable reference.
  Model,    ///< t@: the shallow model of t.
  IntLit,
  BoolLit,
  NoneLit,
  SomeCtor,
  SeqEmpty, ///< Seq::EMPTY.
  SeqCons,  ///< Seq::cons(h, t).
  SeqLen,   ///< t.len().
  SeqNth,   ///< t[i].
  Eq,
  Ne,
  Lt,
  Le,
  Add,
  Sub,
  And,
  Or,
  Not,
  Implies,
  MatchOpt, ///< match t { None => a, Some(binder) => b }.
};

/// A Pearlite term.
class PTerm {
public:
  PKind Kind;
  std::string Name;          ///< Var / MatchOpt binder.
  __int128 IntVal = 0;       ///< IntLit.
  bool BoolVal = false;      ///< BoolLit.
  std::vector<PTermP> Kids;

  explicit PTerm(PKind K) : Kind(K) {}

  std::string str() const;
};

// Constructors.
PTermP pVar(std::string Name);
PTermP pResult();
PTermP pFinal(PTermP T);
PTermP pModel(PTermP T);
PTermP pInt(__int128 V);
PTermP pBool(bool B);
PTermP pNone();
PTermP pSome(PTermP T);
PTermP pSeqEmpty();
PTermP pSeqCons(PTermP H, PTermP T);
PTermP pSeqLen(PTermP T);
PTermP pSeqNth(PTermP T, PTermP I);
PTermP pEq(PTermP A, PTermP B);
PTermP pNe(PTermP A, PTermP B);
PTermP pLt(PTermP A, PTermP B);
PTermP pLe(PTermP A, PTermP B);
PTermP pAdd(PTermP A, PTermP B);
PTermP pSub(PTermP A, PTermP B);
PTermP pAnd(PTermP A, PTermP B);
PTermP pOr(PTermP A, PTermP B);
PTermP pNot(PTermP A);
PTermP pImplies(PTermP A, PTermP B);
PTermP pMatchOpt(PTermP Scrut, PTermP NoneBody, std::string Binder,
                 PTermP SomeBody);

/// The lowering environment: each program variable maps to its
/// representation value; mutable references map to (current, final) pairs
/// and are flagged so @ and ^ project correctly.
struct LowerEnv {
  std::map<std::string, Expr> Values;
  std::map<std::string, bool> IsMutRef;
  Expr ResultVal;
};

/// Lowers a Pearlite term to a solver expression over representations
/// (§5.4: "substituting occurrences of Rust variables with their
/// corresponding representation values").
Outcome<Expr> lowerPearlite(const PTermP &T, const LowerEnv &Env);

} // namespace creusot
} // namespace gilr

#endif // GILR_CREUSOT_PEARLITE_H
