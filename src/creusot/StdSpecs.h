//===- creusot/StdSpecs.h - Axiomatised standard-library specs (§5.4) ------===//
///
/// \file
/// Creusot treats unsafe types like LinkedList<T> as opaque, axiomatising
/// their APIs with Pearlite specifications (§5.4). These are the shared
/// contracts of the hybrid approach: *assumed* by the safe-code verifier
/// and *proved* by Gillian-Rust after the systematic encoding of
/// hybrid/Encode.h. This module declares the spec format and the LinkedList
/// API table matching the paper's examples.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_CREUSOT_STDSPECS_H
#define GILR_CREUSOT_STDSPECS_H

#include "creusot/Pearlite.h"

#include <map>

namespace gilr {
namespace creusot {

/// One parameter of a Pearlite-specified function.
struct PearliteParam {
  std::string Name;
  bool IsMutRef = false;
};

/// A Pearlite function contract.
struct PearliteSpec {
  std::string Func;
  std::vector<PearliteParam> Params;
  PTermP Pre;  ///< nullptr means `true`.
  PTermP Post; ///< nullptr means `true`.
  bool HasResult = false;
  std::string Doc;
};

/// Spec storage.
class PearliteSpecTable {
public:
  void add(PearliteSpec S);
  const PearliteSpec *lookup(const std::string &Func) const;
  const std::map<std::string, PearliteSpec> &all() const { return Map; }

private:
  std::map<std::string, PearliteSpec> Map;
};

/// Builds the LinkedList API contracts used throughout the evaluation:
///
///   new()                 ensures result@ == Seq::EMPTY
///   push_front(&mut self, x)
///                         requires self@.len() < usize::MAX
///                         ensures (^self)@ == Seq::cons(x, self@)
///   pop_front(&mut self) -> Option<T>
///                         ensures match result {
///                           None => self@ == Seq::EMPTY && (^self)@ == Seq::EMPTY,
///                           Some(x) => self@ == Seq::cons(x, (^self)@) }
///   push_front_node / pop_front_node: the node-level variants with the
///   same contracts (Fig. 3).
PearliteSpecTable makeLinkedListSpecs();

/// The same contract table, but built by *parsing* the concrete Pearlite
/// syntax (creusot/PearliteParser.h) — the form contracts take in a real
/// Creusot crate. Lowered term-for-term equivalent to makeLinkedListSpecs()
/// (tests/pearlite_parser_test.cpp checks this); either table can drive the
/// hybrid pipeline.
PearliteSpecTable makeLinkedListSpecsFromText();

} // namespace creusot
} // namespace gilr

#endif // GILR_CREUSOT_STDSPECS_H
