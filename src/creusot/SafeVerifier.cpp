//===- creusot/SafeVerifier.cpp ---------------------------------------------------===//

#include "creusot/SafeVerifier.h"

#include "solver/Flight.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace gilr;
using namespace gilr::creusot;

SafeReport SafeVerifier::verify(const SafeFn &F) {
  SafeReport Report;
  Report.Func = F.Name;
  GILR_TRACE_SCOPE_D("creusot", "verify", F.Name);
  // Flight-recorder provenance: queries below belong to this obligation on
  // the safe/Creusot side.
  flight::ObligationScope FlightScope(F.Name, 'S');
  // Thread-local snapshot: exact per-job attribution under the scheduler.
  SolverStats Before = metrics::threadSolverStats();
  auto Start = std::chrono::steady_clock::now();

  VarGen VG;
  std::vector<Expr> Facts; // The accumulated verification context.
  LowerEnv Env;            // Variable models (mutrefs resolved on the fly).

  auto fail = [&](const std::string &Msg) {
    Report.Ok = false;
    Report.Errors.push_back("in " + F.Name + ": " + Msg);
  };
  auto check = [&](const std::string &Where, const Expr &Goal) {
    SafeObligation O;
    O.Where = Where;
    O.What = exprToString(Goal);
    {
      GILR_TRACE_SCOPE_D("creusot", "obligation", Where);
      O.Ok = Solv.entails(Facts, Goal);
    }
    if (!O.Ok) {
      trace::instant("creusot", "obligation-fail",
                     [&] { return Where + ": " + O.What; });
      fail(Where + ": cannot prove " + O.What);
      if (getenv("GILR_DUMP_ON_FAIL")) {
        std::fprintf(stderr, "facts at failure:\n");
        for (const Expr &F : Facts)
          std::fprintf(stderr, "  %s\n", exprToString(F).c_str());
      }
    }
    Report.Obligations.push_back(std::move(O));
    return O.Ok;
  };

  for (const std::string &P : F.Params)
    Env.Values[P] = VG.fresh("model$" + P, Sort::Any);

  for (std::size_t SI = 0; SI != F.Body.size(); ++SI) {
    const SafeStmt &S = F.Body[SI];
    std::string Where = F.Name + " stmt " + std::to_string(SI);
    switch (S.Kind) {
    case SafeStmt::Let: {
      Outcome<Expr> V = lowerPearlite(S.Term, Env);
      if (!V.ok()) {
        fail(V.error());
        return Report;
      }
      Env.Values[S.Dest] = V.value();
      Env.IsMutRef[S.Dest] = false;
      break;
    }
    case SafeStmt::Assert: {
      Outcome<Expr> G = lowerPearlite(S.Term, Env);
      if (!G.ok()) {
        fail(G.error());
        return Report;
      }
      check(Where + " assert", G.value());
      break;
    }
    case SafeStmt::Call: {
      const PearliteSpec *Spec = Specs.lookup(S.Callee);
      if (!Spec) {
        fail("no contract for " + S.Callee);
        return Report;
      }
      if (Spec->Params.size() != S.Args.size()) {
        fail("arity mismatch calling " + S.Callee);
        return Report;
      }
      // Build the callee's lowering environment: mutref parameters become
      // (current, fresh final) pairs — the RustHorn prophecy threading.
      LowerEnv CalleeEnv;
      std::vector<std::pair<std::string, Expr>> MutUpdates;
      for (std::size_t I = 0; I != S.Args.size(); ++I) {
        const PearliteParam &P = Spec->Params[I];
        auto It = Env.Values.find(S.Args[I]);
        if (It == Env.Values.end()) {
          fail("unknown variable " + S.Args[I] + " passed to " + S.Callee);
          return Report;
        }
        bool ArgIsRef = I < S.ByMutRef.size() && S.ByMutRef[I];
        if (P.IsMutRef != ArgIsRef) {
          fail("mutability mismatch on argument " + S.Args[I]);
          return Report;
        }
        if (P.IsMutRef) {
          Expr Final = VG.fresh("final$" + S.Args[I], Sort::Any);
          CalleeEnv.Values[P.Name] = mkTuple({It->second, Final});
          CalleeEnv.IsMutRef[P.Name] = true;
          MutUpdates.push_back({S.Args[I], Final});
        } else {
          CalleeEnv.Values[P.Name] = It->second;
          CalleeEnv.IsMutRef[P.Name] = false;
        }
      }

      // Check the precondition in the current context.
      if (Spec->Pre) {
        Outcome<Expr> Pre = lowerPearlite(Spec->Pre, CalleeEnv);
        if (!Pre.ok()) {
          fail(Pre.error());
          return Report;
        }
        if (!check(Where + " pre of " + S.Callee, Pre.value()))
          return Report;
      }

      // Havoc the result and assume the postcondition.
      if (Spec->HasResult) {
        Expr Ret = VG.fresh("ret$" + S.Callee, Sort::Any);
        CalleeEnv.ResultVal = Ret;
        if (!S.Dest.empty()) {
          Env.Values[S.Dest] = Ret;
          Env.IsMutRef[S.Dest] = false;
        }
      }
      if (Spec->Post) {
        Outcome<Expr> Post = lowerPearlite(Spec->Post, CalleeEnv);
        if (!Post.ok()) {
          fail(Post.error());
          return Report;
        }
        Facts.push_back(Post.value());
      }
      // The borrows expire at the end of the call: models advance to the
      // prophesied final values.
      for (auto &[Var, Final] : MutUpdates)
        Env.Values[Var] = Final;
      break;
    }
    }
    if (!Report.Ok)
      break;
  }

  auto End = std::chrono::steady_clock::now();
  Report.Seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count();
  Report.Solver = metrics::threadSolverStats() - Before;
  return Report;
}
