//===- creusot/PearliteParser.cpp ------------------------------------------===//

#include "creusot/PearliteParser.h"

#include "rmir/Type.h"

#include <cctype>

using namespace gilr;
using namespace gilr::creusot;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind : uint8_t {
  End,
  Int,        // 123
  Ident,      // self, x, Seq::EMPTY, usize::MAX (:: is part of the token)
  LParen,     // (
  RParen,     // )
  LBracket,   // [
  RBracket,   // ]
  LBrace,     // {
  RBrace,     // }
  Comma,      // ,
  Dot,        // .
  At,         // @
  Caret,      // ^
  Bang,       // !
  Plus,       // +
  Minus,      // -
  EqEq,       // ==
  NotEq,      // !=
  Lt,         // <
  Le,         // <=
  Gt,         // >
  Ge,         // >=
  AndAnd,     // &&
  OrOr,       // ||
  Implies,    // ==>
  FatArrow,   // =>
  HashLBrack, // #[
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  __int128 IntVal = 0;
  std::size_t Pos = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  Outcome<std::vector<Token>> run() {
    std::vector<Token> Toks;
    while (true) {
      skipWhitespace();
      if (I == Src.size())
        break;
      Token T;
      T.Pos = I;
      char C = Src[I];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        __int128 V = 0;
        while (I != Src.size() &&
               (std::isdigit(static_cast<unsigned char>(Src[I])) ||
                Src[I] == '_')) {
          if (Src[I] != '_')
            V = V * 10 + (Src[I] - '0');
          ++I;
        }
        T.Kind = TokKind::Int;
        T.IntVal = V;
      } else if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        std::size_t Start = I;
        while (I != Src.size() && (isIdentChar(Src[I]) ||
                                   (Src[I] == ':' && I + 1 != Src.size() &&
                                    Src[I + 1] == ':'))) {
          if (Src[I] == ':')
            I += 2; // Consume `::` and keep lexing the path segment.
          else
            ++I;
        }
        T.Kind = TokKind::Ident;
        T.Text = Src.substr(Start, I - Start);
      } else if (startsWith("==>")) {
        T.Kind = TokKind::Implies;
        I += 3;
      } else if (startsWith("==")) {
        T.Kind = TokKind::EqEq;
        I += 2;
      } else if (startsWith("=>")) {
        T.Kind = TokKind::FatArrow;
        I += 2;
      } else if (startsWith("!=")) {
        T.Kind = TokKind::NotEq;
        I += 2;
      } else if (startsWith("<=")) {
        T.Kind = TokKind::Le;
        I += 2;
      } else if (startsWith(">=")) {
        T.Kind = TokKind::Ge;
        I += 2;
      } else if (startsWith("&&")) {
        T.Kind = TokKind::AndAnd;
        I += 2;
      } else if (startsWith("||")) {
        T.Kind = TokKind::OrOr;
        I += 2;
      } else if (startsWith("#[")) {
        T.Kind = TokKind::HashLBrack;
        I += 2;
      } else {
        switch (C) {
        case '(':
          T.Kind = TokKind::LParen;
          break;
        case ')':
          T.Kind = TokKind::RParen;
          break;
        case '[':
          T.Kind = TokKind::LBracket;
          break;
        case ']':
          T.Kind = TokKind::RBracket;
          break;
        case '{':
          T.Kind = TokKind::LBrace;
          break;
        case '}':
          T.Kind = TokKind::RBrace;
          break;
        case ',':
          T.Kind = TokKind::Comma;
          break;
        case '.':
          T.Kind = TokKind::Dot;
          break;
        case '@':
          T.Kind = TokKind::At;
          break;
        case '^':
          T.Kind = TokKind::Caret;
          break;
        case '!':
          T.Kind = TokKind::Bang;
          break;
        case '+':
          T.Kind = TokKind::Plus;
          break;
        case '-':
          T.Kind = TokKind::Minus;
          break;
        case '<':
          T.Kind = TokKind::Lt;
          break;
        case '>':
          T.Kind = TokKind::Gt;
          break;
        default:
          return Outcome<std::vector<Token>>::failure(
              "Pearlite: unexpected character '" + std::string(1, C) +
              "' at offset " + std::to_string(I));
        }
        ++I;
      }
      Toks.push_back(std::move(T));
    }
    Token End;
    End.Pos = I;
    Toks.push_back(End);
    return Outcome<std::vector<Token>>::success(std::move(Toks));
  }

private:
  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  }
  bool startsWith(const char *S) const {
    return Src.compare(I, std::string::traits_type::length(S), S) == 0;
  }
  void skipWhitespace() {
    while (I != Src.size() &&
           std::isspace(static_cast<unsigned char>(Src[I])))
      ++I;
  }

  const std::string &Src;
  std::size_t I = 0;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  explicit Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  Outcome<PTermP> parseWholeTerm() {
    Outcome<PTermP> T = parseTerm();
    if (!T.ok())
      return T;
    if (peek().Kind != TokKind::End)
      return err("trailing input after term");
    return T;
  }

  Outcome<ParsedContract> parseContract() {
    ParsedContract C;
    while (peek().Kind == TokKind::HashLBrack) {
      next();
      const Token &Name = peek();
      if (Name.Kind != TokKind::Ident ||
          (Name.Text != "requires" && Name.Text != "ensures"))
        return Outcome<ParsedContract>::failure(
            "Pearlite: expected 'requires' or 'ensures' after '#['");
      bool IsPre = Name.Text == "requires";
      next();
      if (!expect(TokKind::LParen))
        return Outcome<ParsedContract>::failure(
            "Pearlite: expected '(' after #[" + Name.Text);
      Outcome<PTermP> T = parseTerm();
      if (!T.ok())
        return Outcome<ParsedContract>::failure(T.error());
      if (!expect(TokKind::RParen) || !expect(TokKind::RBracket))
        return Outcome<ParsedContract>::failure(
            "Pearlite: expected ')]' closing the attribute");
      PTermP &Slot = IsPre ? C.Pre : C.Post;
      Slot = Slot ? pAnd(Slot, T.value()) : T.value();
    }
    if (peek().Kind != TokKind::End)
      return Outcome<ParsedContract>::failure(
          "Pearlite: expected '#[' attribute");
    return Outcome<ParsedContract>::success(std::move(C));
  }

private:
  const Token &peek(unsigned Ahead = 0) const {
    std::size_t J = Pos + Ahead;
    return J < Toks.size() ? Toks[J] : Toks.back();
  }
  const Token &next() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }
  bool expect(TokKind K) {
    if (peek().Kind != K)
      return false;
    next();
    return true;
  }
  Outcome<PTermP> err(const std::string &Msg) const {
    return Outcome<PTermP>::failure("Pearlite: " + Msg + " at offset " +
                                    std::to_string(peek().Pos));
  }

  // term := or ( '==>' term )?   (right associative).
  Outcome<PTermP> parseTerm() {
    Outcome<PTermP> L = parseOr();
    if (!L.ok())
      return L;
    if (peek().Kind == TokKind::Implies) {
      next();
      Outcome<PTermP> R = parseTerm();
      if (!R.ok())
        return R;
      return Outcome<PTermP>::success(pImplies(L.value(), R.value()));
    }
    return L;
  }

  Outcome<PTermP> parseOr() {
    Outcome<PTermP> L = parseAnd();
    while (L.ok() && peek().Kind == TokKind::OrOr) {
      next();
      Outcome<PTermP> R = parseAnd();
      if (!R.ok())
        return R;
      L = Outcome<PTermP>::success(pOr(L.value(), R.value()));
    }
    return L;
  }

  Outcome<PTermP> parseAnd() {
    Outcome<PTermP> L = parseCmp();
    while (L.ok() && peek().Kind == TokKind::AndAnd) {
      next();
      Outcome<PTermP> R = parseCmp();
      if (!R.ok())
        return R;
      L = Outcome<PTermP>::success(pAnd(L.value(), R.value()));
    }
    return L;
  }

  Outcome<PTermP> parseCmp() {
    Outcome<PTermP> L = parseAdd();
    if (!L.ok())
      return L;
    TokKind K = peek().Kind;
    if (K != TokKind::EqEq && K != TokKind::NotEq && K != TokKind::Lt &&
        K != TokKind::Le && K != TokKind::Gt && K != TokKind::Ge)
      return L;
    next();
    Outcome<PTermP> R = parseAdd();
    if (!R.ok())
      return R;
    PTermP A = L.value(), B = R.value();
    switch (K) {
    case TokKind::EqEq:
      return Outcome<PTermP>::success(pEq(A, B));
    case TokKind::NotEq:
      return Outcome<PTermP>::success(pNe(A, B));
    case TokKind::Lt:
      return Outcome<PTermP>::success(pLt(A, B));
    case TokKind::Le:
      return Outcome<PTermP>::success(pLe(A, B));
    case TokKind::Gt:
      return Outcome<PTermP>::success(pLt(B, A));
    default:
      return Outcome<PTermP>::success(pLe(B, A));
    }
  }

  Outcome<PTermP> parseAdd() {
    Outcome<PTermP> L = parseUnary();
    while (L.ok() &&
           (peek().Kind == TokKind::Plus || peek().Kind == TokKind::Minus)) {
      bool IsAdd = next().Kind == TokKind::Plus;
      Outcome<PTermP> R = parseUnary();
      if (!R.ok())
        return R;
      L = Outcome<PTermP>::success(IsAdd ? pAdd(L.value(), R.value())
                                         : pSub(L.value(), R.value()));
    }
    return L;
  }

  Outcome<PTermP> parseUnary() {
    if (peek().Kind == TokKind::Bang) {
      next();
      Outcome<PTermP> T = parseUnary();
      if (!T.ok())
        return T;
      return Outcome<PTermP>::success(pNot(T.value()));
    }
    if (peek().Kind == TokKind::Caret) {
      next();
      Outcome<PTermP> T = parseUnary();
      if (!T.ok())
        return T;
      return Outcome<PTermP>::success(pFinal(T.value()));
    }
    return parsePostfix();
  }

  Outcome<PTermP> parsePostfix() {
    Outcome<PTermP> T = parsePrimary();
    while (T.ok()) {
      if (peek().Kind == TokKind::At) {
        next();
        T = Outcome<PTermP>::success(pModel(T.value()));
        continue;
      }
      if (peek().Kind == TokKind::Dot) {
        if (peek(1).Kind != TokKind::Ident || peek(1).Text != "len")
          return err("only '.len()' is supported after '.'");
        next();
        next();
        if (!expect(TokKind::LParen) || !expect(TokKind::RParen))
          return err("expected '()' after '.len'");
        T = Outcome<PTermP>::success(pSeqLen(T.value()));
        continue;
      }
      if (peek().Kind == TokKind::LBracket) {
        next();
        Outcome<PTermP> Idx = parseTerm();
        if (!Idx.ok())
          return Idx;
        if (!expect(TokKind::RBracket))
          return err("expected ']'");
        T = Outcome<PTermP>::success(pSeqNth(T.value(), Idx.value()));
        continue;
      }
      break;
    }
    return T;
  }

  Outcome<PTermP> parsePrimary() {
    const Token &T = peek();
    switch (T.Kind) {
    case TokKind::Int: {
      __int128 V = T.IntVal;
      next();
      return Outcome<PTermP>::success(pInt(V));
    }
    case TokKind::LParen: {
      next();
      Outcome<PTermP> Inner = parseTerm();
      if (!Inner.ok())
        return Inner;
      if (!expect(TokKind::RParen))
        return err("expected ')'");
      return Inner;
    }
    case TokKind::Ident:
      return parseIdentish();
    default:
      return err("expected a term");
    }
  }

  Outcome<PTermP> parseIdentish() {
    std::string Name = next().Text;
    if (Name == "true")
      return Outcome<PTermP>::success(pBool(true));
    if (Name == "false")
      return Outcome<PTermP>::success(pBool(false));
    if (Name == "None")
      return Outcome<PTermP>::success(pNone());
    if (Name == "result")
      return Outcome<PTermP>::success(pResult());
    if (Name == "Seq::EMPTY")
      return Outcome<PTermP>::success(pSeqEmpty());
    if (Name == "usize::MAX")
      return Outcome<PTermP>::success(
          pInt(rmir::intMaxValue(rmir::IntKind::USize)));
    if (Name == "Some") {
      if (!expect(TokKind::LParen))
        return err("expected '(' after Some");
      Outcome<PTermP> Inner = parseTerm();
      if (!Inner.ok())
        return Inner;
      if (!expect(TokKind::RParen))
        return err("expected ')' closing Some");
      return Outcome<PTermP>::success(pSome(Inner.value()));
    }
    if (Name == "Seq::cons") {
      if (!expect(TokKind::LParen))
        return err("expected '(' after Seq::cons");
      Outcome<PTermP> H = parseTerm();
      if (!H.ok())
        return H;
      if (!expect(TokKind::Comma))
        return err("expected ',' in Seq::cons");
      Outcome<PTermP> Tl = parseTerm();
      if (!Tl.ok())
        return Tl;
      if (!expect(TokKind::RParen))
        return err("expected ')' closing Seq::cons");
      return Outcome<PTermP>::success(pSeqCons(H.value(), Tl.value()));
    }
    if (Name == "match")
      return parseMatch();
    // A plain program variable.
    return Outcome<PTermP>::success(pVar(std::move(Name)));
  }

  // match t { None => a, Some(x) => b ,? }   (either arm order).
  Outcome<PTermP> parseMatch() {
    Outcome<PTermP> Scrut = parseTerm();
    if (!Scrut.ok())
      return Scrut;
    if (!expect(TokKind::LBrace))
      return err("expected '{' after match scrutinee");
    PTermP NoneBody, SomeBody;
    std::string Binder;
    for (unsigned Arm = 0; Arm != 2; ++Arm) {
      const Token &Hd = peek();
      if (Hd.Kind != TokKind::Ident)
        return err("expected 'None' or 'Some' arm");
      if (Hd.Text == "None") {
        if (NoneBody)
          return err("duplicate None arm");
        next();
        if (!expect(TokKind::FatArrow))
          return err("expected '=>' after None");
        Outcome<PTermP> B = parseTerm();
        if (!B.ok())
          return B;
        NoneBody = B.value();
      } else if (Hd.Text == "Some") {
        if (SomeBody)
          return err("duplicate Some arm");
        next();
        if (!expect(TokKind::LParen) || peek().Kind != TokKind::Ident)
          return err("expected 'Some(binder)'");
        Binder = next().Text;
        if (!expect(TokKind::RParen) || !expect(TokKind::FatArrow))
          return err("expected ') =>' after Some binder");
        Outcome<PTermP> B = parseTerm();
        if (!B.ok())
          return B;
        SomeBody = B.value();
      } else {
        return err("expected 'None' or 'Some' arm");
      }
      if (Arm == 0 && !expect(TokKind::Comma))
        return err("expected ',' between match arms");
    }
    expect(TokKind::Comma); // Optional trailing comma.
    if (!expect(TokKind::RBrace))
      return err("expected '}' closing match");
    return Outcome<PTermP>::success(
        pMatchOpt(Scrut.value(), NoneBody, Binder, SomeBody));
  }

  std::vector<Token> Toks;
  std::size_t Pos = 0;
};

} // namespace

Outcome<PTermP> gilr::creusot::parsePearliteTerm(const std::string &Src) {
  Lexer L(Src);
  Outcome<std::vector<Token>> Toks = L.run();
  if (!Toks.ok())
    return Outcome<PTermP>::failure(Toks.error());
  Parser P(std::move(Toks.value()));
  return P.parseWholeTerm();
}

Outcome<ParsedContract>
gilr::creusot::parsePearliteContract(const std::string &Src) {
  Lexer L(Src);
  Outcome<std::vector<Token>> Toks = L.run();
  if (!Toks.ok())
    return Outcome<ParsedContract>::failure(Toks.error());
  Parser P(std::move(Toks.value()));
  return P.parseContract();
}
