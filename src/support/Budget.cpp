//===- support/Budget.cpp ---------------------------------------------------------===//

#include "support/Budget.h"

#include "support/Metrics.h"

#include <chrono>

using namespace gilr;

namespace {

struct BudgetState {
  bool Armed = false;
  bool Tripped = false;       ///< Sticky within the armed job.
  bool TrippedEver = false;   ///< Survives clear(), until the next begin().
  bool WallTripped = false;
  uint64_t DeadlineNs = 0;    ///< Absolute steady-clock ns; 0 = none.
  uint64_t BranchCap = 0;     ///< 0 = none.
  uint64_t BranchBase = 0;    ///< threadSolverStats().Branches at begin().
  uint32_t Poll = 0;          ///< Clock sampling decimator.
};

BudgetState &state() {
  thread_local BudgetState S;
  return S;
}

uint64_t steadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

void gilr::budget::begin(uint64_t WallNs, uint64_t BranchCap) {
  BudgetState &S = state();
  S.Armed = WallNs != 0 || BranchCap != 0;
  S.Tripped = false;
  S.TrippedEver = false;
  S.WallTripped = false;
  S.DeadlineNs = WallNs ? steadyNs() + WallNs : 0;
  S.BranchCap = BranchCap;
  S.BranchBase = metrics::threadSolverStats().Branches;
  S.Poll = 0;
}

void gilr::budget::clear() {
  BudgetState &S = state();
  S.Armed = false;
  S.Tripped = false;
  S.WallTripped = false;
  S.DeadlineNs = 0;
  S.BranchCap = 0;
}

bool gilr::budget::active() { return state().Armed; }

bool gilr::budget::exceeded() {
  BudgetState &S = state();
  if (!S.Armed)
    return false;
  if (S.Tripped)
    return true;
  if (S.BranchCap &&
      metrics::threadSolverStats().Branches - S.BranchBase > S.BranchCap) {
    S.Tripped = S.TrippedEver = true;
    return true;
  }
  // Sample the clock only every 64th poll: exceeded() sits on the solver's
  // branch loop.
  if (S.DeadlineNs && ++S.Poll % 64 == 0 && steadyNs() > S.DeadlineNs) {
    S.Tripped = S.TrippedEver = true;
    S.WallTripped = true;
    return true;
  }
  return false;
}

bool gilr::budget::wasExceeded() { return state().TrippedEver; }

std::string gilr::budget::describe() {
  BudgetState &S = state();
  if (!S.TrippedEver)
    return "";
  return S.WallTripped ? "wall-clock budget" : "branch budget";
}
