//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

void gilr::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "gilr fatal error: %s\n", Msg.c_str());
  std::abort();
}

void gilr::unreachableImpl(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "gilr unreachable at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}
