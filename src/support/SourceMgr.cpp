//===- support/SourceMgr.cpp ----------------------------------------------===//

#include "support/SourceMgr.h"

#include <algorithm>

using namespace gilr;
using namespace gilr::support;

SourceMgr::SourceMgr(std::string NameIn, std::string TextIn)
    : Name(std::move(NameIn)), Text(std::move(TextIn)) {
  LineStarts.push_back(0);
  for (std::size_t I = 0; I < Text.size(); ++I)
    if (Text[I] == '\n')
      LineStarts.push_back(I + 1);
}

LineCol SourceMgr::lineCol(std::size_t Offset) const {
  if (Offset > Text.size())
    Offset = Text.size();
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Offset);
  std::size_t LineIdx = static_cast<std::size_t>(It - LineStarts.begin()) - 1;
  LineCol LC;
  LC.Line = static_cast<unsigned>(LineIdx + 1);
  LC.Col = static_cast<unsigned>(Offset - LineStarts[LineIdx] + 1);
  return LC;
}

std::string SourceMgr::lineText(unsigned Line) const {
  if (Line == 0 || Line > LineStarts.size())
    return "";
  std::size_t Begin = LineStarts[Line - 1];
  std::size_t End = Line < LineStarts.size() ? LineStarts[Line] : Text.size();
  while (End > Begin && (Text[End - 1] == '\n' || Text[End - 1] == '\r'))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string SourceMgr::caretSnippet(std::size_t Offset) const {
  LineCol LC = lineCol(Offset);
  std::string Line = lineText(LC.Line);
  std::string Caret;
  for (unsigned I = 1; I < LC.Col && I <= Line.size(); ++I)
    Caret += Line[I - 1] == '\t' ? '\t' : ' ';
  Caret += '^';
  return Line + "\n" + Caret;
}

std::string SourceMgr::locString(std::size_t Offset) const {
  LineCol LC = lineCol(Offset);
  return Name + ":" + std::to_string(LC.Line) + ":" + std::to_string(LC.Col);
}
