//===- support/StringUtils.h - Small string helpers ----------------------===//
///
/// \file
/// Join/format helpers used by the printers throughout the project.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_STRINGUTILS_H
#define GILR_SUPPORT_STRINGUTILS_H

#include <functional>
#include <string>
#include <vector>

namespace gilr {

/// Joins the elements of \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Maps \p Items through \p Fn and joins the results with \p Sep.
template <typename T>
std::string joinMapped(const std::vector<T> &Items, const std::string &Sep,
                       const std::function<std::string(const T &)> &Fn) {
  std::vector<std::string> Parts;
  Parts.reserve(Items.size());
  for (const T &Item : Items)
    Parts.push_back(Fn(Item));
  return join(Parts, Sep);
}

/// Returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Escapes \p S for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(const std::string &S);

/// Combines a hash value into a running seed (boost-style mixing).
inline void hashCombine(std::size_t &Seed, std::size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2);
}

} // namespace gilr

#endif // GILR_SUPPORT_STRINGUTILS_H
