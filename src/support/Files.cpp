//===- support/Files.cpp ----------------------------------------------------------===//

#include "support/Files.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace gilr;

namespace {

void diagnose(const std::string &Verb, const std::string &What,
              const std::string &Path, const std::string &Reason) {
  std::fprintf(stderr, "gilr: cannot %s %s %s %s: %s\n", Verb.c_str(),
               What.c_str(), Verb == "write" ? "to" : "from", Path.c_str(),
               Reason.c_str());
}

} // namespace

bool gilr::files::writeFile(const std::string &Path, const std::string &Data,
                            const std::string &What) {
  std::filesystem::path P(Path);
  std::filesystem::path Dir = P.parent_path();
  if (!Dir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Dir, EC);
    if (EC) {
      diagnose("write", What, Path,
               "creating directory " + Dir.string() + ": " + EC.message());
      return false;
    }
  }
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    diagnose("write", What, Path, std::strerror(errno));
    return false;
  }
  std::size_t Written = std::fwrite(Data.data(), 1, Data.size(), F);
  bool Closed = std::fclose(F) == 0;
  if (Written != Data.size() || !Closed) {
    diagnose("write", What, Path, "short write");
    return false;
  }
  return true;
}

bool gilr::files::readFile(const std::string &Path, std::string &Out,
                           const std::string &What) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    diagnose("read", What, Path, std::strerror(errno));
    return false;
  }
  Out.clear();
  char Buf[1 << 16];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok) {
    diagnose("read", What, Path, "read error");
    return false;
  }
  return true;
}

std::string gilr::files::expandPidPlaceholder(const std::string &Path) {
  std::size_t Pos = Path.find("%p");
  if (Pos == std::string::npos)
    return Path;
#ifdef _WIN32
  long Pid = _getpid();
#else
  long Pid = static_cast<long>(getpid());
#endif
  return Path.substr(0, Pos) + std::to_string(Pid) + Path.substr(Pos + 2);
}
