//===- support/Trace.h - Verification telemetry: spans and events ----------===//
///
/// \file
/// A process-wide, zero-cost-when-disabled tracing sink for the verification
/// pipeline. Every layer (engine, solver, creusot, hybrid) opens scoped RAII
/// spans around its phases; the sink aggregates per-phase wall time and, in
/// `json` mode, buffers Chrome trace-event records that can be opened in
/// chrome://tracing or Perfetto.
///
/// Cost model: when tracing is off (the default), a span is a single relaxed
/// atomic load and a branch — no clock reads, no allocation, no locking.
/// Call sites with dynamic span details pass a callable so the detail string
/// is only materialised when tracing is on.
///
/// Configuration: programmatic via \c configure(), or from the environment
/// via \c configureFromEnv() (honoured by the examples and bench binaries):
///
///   GILR_TRACE=off|text|json   off (default): disabled.
///                              text: aggregate per-phase stats only.
///                              json: also buffer Chrome trace events and
///                                    write trace + stats files at exit.
///   GILR_TRACE_FILE=<path>     Chrome trace-event output (default
///                              gilr_trace.json).
///   GILR_STATS_FILE=<path>     Stats JSON output (default gilr_stats.json).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_TRACE_H
#define GILR_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gilr {
namespace trace {

enum class Mode : uint8_t {
  Off,  ///< Disabled: spans are a flag check.
  Text, ///< Aggregate per-phase counters/timers only.
  Json, ///< Aggregates plus a Chrome trace-event buffer.
};

struct Options {
  Mode M = Mode::Off;
  std::string TraceFile = "gilr_trace.json";
  std::string StatsFile = "gilr_stats.json";
};

namespace detail {
extern std::atomic<bool> EnabledFlag;
} // namespace detail

/// The single hot-path check: true iff tracing is on in any mode.
inline bool enabled() {
  return detail::EnabledFlag.load(std::memory_order_relaxed);
}

/// Current mode.
Mode mode();

/// (Re)configures the sink. Does not clear already-recorded data; call
/// \c reset() for that.
void configure(const Options &O);

/// Reads GILR_TRACE / GILR_TRACE_FILE / GILR_STATS_FILE and configures the
/// sink accordingly. When tracing is enabled this registers an atexit hook
/// that flushes the configured output files, so binaries only need to call
/// this once at startup.
void configureFromEnv();

/// Clears all recorded events and aggregates (mode is kept).
void reset();

/// Writes the configured outputs: in Json mode the Chrome trace file and
/// the stats JSON; in Text mode a per-phase breakdown to stderr. Missing
/// parent directories are created; returns false (after printing a
/// diagnostic) if any output could not be written.
bool flush();

/// Monotonic nanoseconds since an arbitrary process-local origin.
uint64_t nowNs();

namespace detail {
/// Out-of-line slow path of span begin/end; only called when enabled.
uint32_t beginSpan(const char *Cat, const char *Name);
void endSpan(uint32_t Token, const char *Cat, const char *Name,
             uint64_t StartNs, std::string Detail);
void instantImpl(const char *Cat, const char *Name, std::string Detail);
} // namespace detail

/// A scoped span. Opens on construction, closes (and records) on
/// destruction. Nesting is tracked per thread; \c spanStack() renders the
/// currently open spans.
class Scope {
public:
  Scope(const char *Cat, const char *Name) : Cat(Cat), Name(Name) {
    if (enabled())
      open(std::string());
  }

  /// \p DetailFn is only invoked when tracing is enabled, so building an
  /// expensive detail string costs nothing when tracing is off.
  template <typename DetailFn>
  Scope(const char *Cat, const char *Name, DetailFn &&F)
      : Cat(Cat), Name(Name) {
    if (enabled())
      open(std::forward<DetailFn>(F)());
  }

  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;

  ~Scope() {
    if (Active)
      detail::endSpan(Token, Cat, Name, StartNs, std::move(Detail));
  }

private:
  void open(std::string D) {
    Detail = std::move(D);
    StartNs = nowNs();
    Token = detail::beginSpan(Cat, Name);
    Active = true;
  }

  const char *Cat;
  const char *Name;
  std::string Detail;
  uint64_t StartNs = 0;
  uint32_t Token = 0;
  bool Active = false;
};

/// Records a point event (Chrome "instant").
inline void instant(const char *Cat, const char *Name) {
  if (enabled())
    detail::instantImpl(Cat, Name, std::string());
}

template <typename DetailFn>
inline void instant(const char *Cat, const char *Name, DetailFn &&F) {
  if (enabled())
    detail::instantImpl(Cat, Name, std::forward<DetailFn>(F)());
}

/// Renders the currently open spans of this thread, outermost first, e.g.
/// "verify:push_front > engine:consume-post > solver:entails". Empty when
/// tracing is off or no span is open.
std::string spanStack();

/// Aggregated wall time of one (category, name) phase. Recursive re-entries
/// of the same phase are not double-counted: only the outermost span of a
/// given key accumulates time.
struct PhaseStat {
  std::string Key; ///< "category/name".
  uint64_t Count = 0;
  uint64_t Nanos = 0;
};

/// Snapshot of all phase aggregates, sorted by descending total time.
std::vector<PhaseStat> phases();

/// Phase-wise difference After - Before (by key); entries with zero count
/// are dropped. Used for per-function breakdowns.
std::vector<PhaseStat> diffPhases(const std::vector<PhaseStat> &Before,
                                  const std::vector<PhaseStat> &After);

/// Renders \p Stats as an aligned human-readable table.
std::string phaseReportText(const std::vector<PhaseStat> &Stats);

/// Number of buffered Chrome trace events (Json mode only; for tests).
std::size_t eventCount();

/// Renders the buffered events as a Chrome trace-event JSON document.
std::string renderTraceJson();

/// Renders the stats JSON: named counters, solver statistics (including the
/// repeat-entailment rate), the solver latency histogram, and the phase
/// aggregates. \p CaseStudies is optional extra per-case JSON (already
/// rendered objects) spliced into a "cases" array.
std::string renderStatsJson(const std::vector<std::string> &CaseStudies = {});

} // namespace trace
} // namespace gilr

/// Opens a scope with static category/name strings.
#define GILR_TRACE_CONCAT_IMPL(A, B) A##B
#define GILR_TRACE_CONCAT(A, B) GILR_TRACE_CONCAT_IMPL(A, B)
#define GILR_TRACE_SCOPE(CAT, NAME)                                          \
  ::gilr::trace::Scope GILR_TRACE_CONCAT(GilrTraceScope_, __LINE__)(CAT, NAME)
/// Opens a scope whose detail expression is evaluated lazily (only when
/// tracing is enabled).
#define GILR_TRACE_SCOPE_D(CAT, NAME, DETAIL)                                \
  ::gilr::trace::Scope GILR_TRACE_CONCAT(GilrTraceScope_, __LINE__)(         \
      CAT, NAME, [&]() -> std::string { return (DETAIL); })

#endif // GILR_SUPPORT_TRACE_H
