//===- support/Metrics.h - Process-wide verification metrics ---------------===//
///
/// \file
/// The metrics registry backing the telemetry layer: named monotonic
/// counters, the process-wide solver statistics (shared by every \c Solver
/// instance, so counts survive the multiple instantiations in engine/,
/// creusot/ and the test/bench harnesses), a log2 latency histogram for
/// solver queries, and the repeat-entailment fingerprint set that
/// quantifies the headroom of a future query cache.
///
/// Cost model: the \c SolverStats fields are plain increments and are always
/// live. Everything that allocates (named counters, fingerprints, latency
/// samples) is only fed by call sites when tracing is enabled, so the
/// default GILR_TRACE=off configuration adds no allocation to any hot path.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_METRICS_H
#define GILR_SUPPORT_METRICS_H

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace gilr {

/// Counters of the SMT-lite solver. One process-wide instance lives in the
/// metrics registry and is shared by every \c Solver (the per-instance
/// stats of earlier revisions silently reset whenever a component built a
/// fresh solver); reporting code takes before/after snapshots to attribute
/// deltas to a phase.
struct SolverStats {
  uint64_t SatQueries = 0;
  uint64_t EntailQueries = 0;
  uint64_t Branches = 0;
  uint64_t TheoryChecks = 0;
  /// Queries the DPLL search gave up on (budget/depth exhaustion).
  uint64_t UnknownResults = 0;
  /// Entailment calls whose (context, goal) fingerprint was already seen —
  /// the hit rate a syntactic query memo would achieve. Only counted while
  /// tracing is enabled (the fingerprint set allocates).
  uint64_t EntailRepeats = 0;

  SolverStats operator-(const SolverStats &O) const {
    SolverStats D;
    D.SatQueries = SatQueries - O.SatQueries;
    D.EntailQueries = EntailQueries - O.EntailQueries;
    D.Branches = Branches - O.Branches;
    D.TheoryChecks = TheoryChecks - O.TheoryChecks;
    D.UnknownResults = UnknownResults - O.UnknownResults;
    D.EntailRepeats = EntailRepeats - O.EntailRepeats;
    return D;
  }
};

namespace metrics {

/// Number of log2 buckets in the solver latency histogram. Bucket i counts
/// queries with latency in [2^i, 2^{i+1}) nanoseconds (bucket 0 also takes
/// sub-nanosecond readings, the last bucket everything slower).
constexpr std::size_t LatencyBuckets = 32;

class Registry {
public:
  /// The process-wide registry.
  static Registry &get();

  /// The shared solver statistics (always live; plain increments).
  SolverStats Solver;

  /// Adds \p Delta to the named counter. Callers gate on trace::enabled().
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Records one solver query latency into the log2 histogram.
  void recordSolverLatencyNs(uint64_t Ns);

  /// Notes an entails-call fingerprint; returns true iff it was already
  /// seen (a would-be memo hit). Bumps \c Solver.EntailRepeats itself.
  bool noteEntailFingerprint(uint64_t Fp);

  /// Snapshot of the named counters.
  std::map<std::string, uint64_t> counters() const;

  /// Snapshot of the latency histogram (bucket counts).
  std::array<uint64_t, LatencyBuckets> latencyHistogram() const;

  /// Clears everything, including the shared solver stats.
  void reset();

private:
  Registry() = default;

  mutable std::mutex Mu;
  std::map<std::string, uint64_t> Counters;
  std::unordered_set<uint64_t> EntailSeen;
  std::array<uint64_t, LatencyBuckets> Latency = {};
};

/// Shorthand for Registry::get().Solver — the live process-wide stats.
inline SolverStats &solverStats() { return Registry::get().Solver; }

} // namespace metrics
} // namespace gilr

#endif // GILR_SUPPORT_METRICS_H
