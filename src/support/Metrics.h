//===- support/Metrics.h - Process-wide verification metrics ---------------===//
///
/// \file
/// The metrics registry backing the telemetry layer: named monotonic
/// counters, the process-wide solver statistics (shared by every \c Solver
/// instance, so counts survive the multiple instantiations in engine/,
/// creusot/ and the test/bench harnesses), a log2 latency histogram for
/// solver queries, and the repeat-entailment fingerprint set that
/// quantifies the headroom of the scheduler's query cache.
///
/// Concurrency: the proof scheduler (src/sched/) runs solver queries from
/// many worker threads against the single shared \c SolverStats instance,
/// so its fields are relaxed atomics wrapped in \c RelaxedCounter — plain
/// reads/writes in the API (snapshots and \c operator- keep their value
/// semantics), atomic increments underneath. Everything behind the
/// registry's named-counter/histogram/fingerprint API is mutex-protected.
///
/// Cost model: the \c SolverStats fields are single relaxed atomic adds and
/// are always live. Everything that allocates (named counters,
/// fingerprints, latency samples) is only fed by call sites when tracing is
/// enabled, so the default GILR_TRACE=off configuration adds no allocation
/// to any hot path.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_METRICS_H
#define GILR_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace gilr {

/// A monotonic counter that is safe to bump from concurrent proof workers:
/// a relaxed atomic with value semantics (copy/assign snapshot the value),
/// so structs of counters keep behaving like plain structs of integers.
class RelaxedCounter {
public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t X) : V(X) {}
  RelaxedCounter(const RelaxedCounter &O) : V(O.get()) {}
  RelaxedCounter &operator=(const RelaxedCounter &O) {
    V.store(O.get(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter &operator=(uint64_t X) {
    V.store(X, std::memory_order_relaxed);
    return *this;
  }

  uint64_t get() const { return V.load(std::memory_order_relaxed); }
  operator uint64_t() const { return get(); }

  RelaxedCounter &operator++() {
    V.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter &operator+=(uint64_t D) {
    V.fetch_add(D, std::memory_order_relaxed);
    return *this;
  }

private:
  std::atomic<uint64_t> V{0};
};

/// Counters of the SMT-lite solver. One process-wide instance lives in the
/// metrics registry and is shared by every \c Solver (the per-instance
/// stats of earlier revisions silently reset whenever a component built a
/// fresh solver); reporting code takes before/after snapshots to attribute
/// deltas to a phase. A second, thread-local instance
/// (metrics::threadSolverStats) attributes work to the proof job running on
/// the current worker thread — the per-function deltas in VerifyReport /
/// SafeReport come from there, so they stay exact when the scheduler runs
/// jobs concurrently.
struct SolverStats {
  RelaxedCounter SatQueries;
  RelaxedCounter EntailQueries;
  RelaxedCounter Branches;
  RelaxedCounter TheoryChecks;
  /// Queries the DPLL search gave up on (budget/depth exhaustion).
  RelaxedCounter UnknownResults;
  /// Entailment calls whose (context, goal) fingerprint was already seen —
  /// the hit rate a syntactic query memo would achieve. Only counted while
  /// tracing is enabled (the fingerprint set allocates).
  RelaxedCounter EntailRepeats;

  SolverStats operator-(const SolverStats &O) const {
    SolverStats D;
    D.SatQueries = SatQueries - O.SatQueries;
    D.EntailQueries = EntailQueries - O.EntailQueries;
    D.Branches = Branches - O.Branches;
    D.TheoryChecks = TheoryChecks - O.TheoryChecks;
    D.UnknownResults = UnknownResults - O.UnknownResults;
    D.EntailRepeats = EntailRepeats - O.EntailRepeats;
    return D;
  }
};

namespace metrics {

/// Number of log2 buckets in the solver latency histogram. Bucket i counts
/// queries with latency in [2^i, 2^{i+1}) nanoseconds (bucket 0 also takes
/// sub-nanosecond readings, the last bucket everything slower).
constexpr std::size_t LatencyBuckets = 32;

/// Cap on the repeat-entailment fingerprint set: long traced runs would
/// otherwise grow it without bound. Once saturated, new fingerprints are no
/// longer recorded (the reported repeat rate becomes approximate) and the
/// overflow counter counts the drops.
constexpr std::size_t EntailSeenCap = 1u << 20; // ~1M entries.

/// Hit/miss counts of one query-cache shard, as recorded into the registry.
struct QueryCacheShardStat {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Snapshot of the scheduler's entailment cache at the end of the most
/// recent scheduled run. The scheduler (src/sched/) records it here so the
/// telemetry JSON (support/Trace.cpp) can report totals and per-shard hit
/// rates without the support layer depending on sched.
struct QueryCacheReport {
  /// False until a scheduled run with caching enabled has completed.
  bool Valid = false;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
  std::vector<QueryCacheShardStat> Shards;
};

/// One solver query as observed by the flight recorder's TimingSolver
/// decorator (solver/Flight.h): where it came from, what it cost, and what
/// it answered. \c Side is 'U' (unsafe/Gillian side), 'S' (safe/Creusot
/// side), 'L' (pre-verification lint) or '?' (no obligation scope open).
/// \c Verdict encodes SatResult: 0 Sat, 1 Unsat, 2 Unknown.
struct SolverQuerySample {
  std::string Obligation;
  char Side = '?';
  uint32_t QueryIdx = 0; ///< Per-obligation query sequence number.
  uint32_t PcSize = 0;   ///< Assertion count of the query.
  uint64_t Fp = 0;       ///< Process-stable query fingerprint.
  uint8_t Verdict = 2;
  bool CacheHit = false;
  uint64_t DurationNs = 0;
};

/// Aggregate view of all flight-recorded solver queries of the process,
/// surfaced as the \c solver_queries section of the telemetry JSON and the
/// "slowest queries" block of HybridReport::summaryText(). Populated only
/// while the flight recorder's timing decorator is enabled
/// (solver/Flight.h); Valid stays false otherwise.
struct SolverQueriesReport {
  bool Valid = false;
  uint64_t Queries = 0;
  uint64_t CacheHits = 0;
  uint64_t Unknowns = 0;
  uint64_t TotalNs = 0;
  uint64_t MaxNs = 0;
  /// Log2 latency buckets over *all* queries (cache hits included — unlike
  /// the trace-gated solver_latency_log2_ns histogram, which only times
  /// full searches).
  std::array<uint64_t, 32> Histogram = {};
  /// The slowest queries seen, sorted by descending duration.
  std::vector<SolverQuerySample> Slowest;
  /// Journal activity (recorded by the QueryJournalSolver decorator).
  uint64_t JournalRecords = 0;
  uint64_t JournalDropped = 0;
};

/// How many slowest-query samples the registry retains (and the JSON /
/// summary report at most shows).
constexpr std::size_t SlowestQueryCap = 16;

/// Summary of the pre-verification static analysis pass of the most recent
/// run. The analysis layer (src/analysis/) records it here so the telemetry
/// JSON (support/Trace.cpp) can emit an \c analysis section without the
/// support layer depending on analysis — the same inversion as
/// \c QueryCacheReport.
struct AnalysisReport {
  /// False until an analysis pass has completed.
  bool Valid = false;
  bool Enabled = false;
  uint64_t Entities = 0; ///< Entities linted (analyzed + cache replays).
  uint64_t Cached = 0;   ///< Verdicts replayed from the proof store.
  uint64_t Blocked = 0;  ///< Entities rejected before symbolic execution.
  uint64_t Errors = 0;
  uint64_t Warnings = 0;
  uint64_t Suppressed = 0;
  double Seconds = 0.0;
};

/// Summary of the incremental-verification session of the most recent run.
/// The incremental layer (src/incr/ via the scheduler entry points) records
/// it here so the telemetry JSON (support/Trace.cpp) can emit an
/// \c incremental section without the support layer depending on incr —
/// the same inversion as \c QueryCacheReport and \c AnalysisReport.
struct IncrReport {
  /// False until an incremental run has completed.
  bool Valid = false;
  uint64_t Cached = 0;      ///< Proof verdicts replayed from the store.
  uint64_t Verified = 0;    ///< Proof obligations re-verified.
  uint64_t Invalidated = 0; ///< Store records rejected (fingerprint moved).
  /// Verdicts replayed although a dependency fingerprint moved: the edit
  /// touched no relied-on clause (Salvaged, zero solver work) / the salvage
  /// implications held (Implied). Both also count in Cached.
  uint64_t Salvaged = 0;
  uint64_t Implied = 0;
  /// Solver queries spent discharging salvage implications.
  uint64_t SalvageQueries = 0;
  /// Load-time store compaction rewrites.
  uint64_t Compactions = 0;
  uint64_t CachedLint = 0;
  uint64_t AnalyzedLint = 0;
  bool StoreLoaded = false;
};

/// Summary of the interprocedural summary phase and triage tier of the most
/// recent scheduled run (analysis/Summary.h, sched/Scheduler.cpp). Recorded
/// by the scheduler so the telemetry JSON can emit an \c interproc section
/// without the support layer depending on sched — the same inversion as
/// \c IncrReport.
struct InterprocReport {
  /// False until a run with the summary phase enabled has completed.
  bool Valid = false;
  /// Function/predicate summaries in the table this run ended with.
  uint64_t FnSummaries = 0;
  uint64_t PredSummaries = 0;
  /// Summaries computed fresh vs. replayed from the incremental store
  /// (non-incremental runs compute everything fresh).
  uint64_t SummariesComputed = 0;
  uint64_t SummariesReused = 0;
  /// Obligations the triage tier discharged statically (the executor never
  /// ran; see engine::staticTriageReport).
  uint64_t TriagedStatic = 0;
  /// Wall time of the (serial) summary phase.
  double Seconds = 0.0;
};

class Registry {
public:
  /// The process-wide registry.
  static Registry &get();

  /// The shared solver statistics (always live; relaxed atomic increments).
  SolverStats Solver;

  /// Adds \p Delta to the named counter. Callers gate on trace::enabled().
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Records one solver query latency into the log2 histogram.
  void recordSolverLatencyNs(uint64_t Ns);

  /// Notes an entails-call fingerprint; returns true iff it was already
  /// seen (a would-be memo hit). Bumps \c Solver.EntailRepeats (process and
  /// thread-local) itself. The set is capped at \c EntailSeenCap entries;
  /// fingerprints arriving after saturation are dropped and counted in
  /// \c entailSeenOverflow(), making the repeat rate approximate.
  bool noteEntailFingerprint(uint64_t Fp);

  /// Number of fingerprints dropped because the seen-set was full. Nonzero
  /// means the reported entail_repeat_rate is a lower bound.
  uint64_t entailSeenOverflow() const;

  /// Records the final cache snapshot of a scheduled run (overwrites the
  /// previous run's; cleared by reset()).
  void setQueryCacheReport(QueryCacheReport R);

  /// The last recorded cache snapshot (Valid == false if none).
  QueryCacheReport queryCacheReport() const;

  /// Records one flight-recorded solver query into the solver_queries
  /// aggregates (totals, latency histogram, slowest-N). Called by the
  /// TimingSolver decorator only while the flight recorder is enabled, so
  /// the per-query lock is never taken in the default configuration.
  void recordSolverQuery(const SolverQuerySample &Q);

  /// Adds to the journal activity counters of the solver_queries report.
  void noteJournalActivity(uint64_t Records, uint64_t Dropped);

  /// Snapshot of the flight-recorded query aggregates (Valid == false until
  /// the first recorded query).
  SolverQueriesReport solverQueriesReport() const;

  /// Records the summary of a pre-verification analysis pass (overwrites
  /// the previous run's; cleared by reset()).
  void setAnalysisReport(AnalysisReport R);

  /// The last recorded analysis summary (Valid == false if none).
  AnalysisReport analysisReport() const;

  /// Records the summary of an incremental session (overwrites the previous
  /// run's; cleared by reset()).
  void setIncrReport(IncrReport R);

  /// The last recorded incremental summary (Valid == false if none).
  IncrReport incrReport() const;

  /// Records the summary of the interprocedural phase of a scheduled run
  /// (overwrites the previous run's; cleared by reset()).
  void setInterprocReport(InterprocReport R);

  /// The last recorded interprocedural summary (Valid == false if none).
  InterprocReport interprocReport() const;

  /// Snapshot of the named counters.
  std::map<std::string, uint64_t> counters() const;

  /// Snapshot of the latency histogram (bucket counts).
  std::array<uint64_t, LatencyBuckets> latencyHistogram() const;

  /// Clears everything, including the shared solver stats.
  void reset();

private:
  Registry() = default;

  mutable std::mutex Mu;
  std::map<std::string, uint64_t> Counters;
  std::unordered_set<uint64_t> EntailSeen;
  uint64_t EntailSeenDropped = 0;
  std::array<uint64_t, LatencyBuckets> Latency = {};
  QueryCacheReport CacheReport;
  AnalysisReport AnalysisRep;
  IncrReport IncrRep;
  InterprocReport InterprocRep;
  /// Flight-recorder aggregates; Slowest kept sorted descending, capped at
  /// SlowestQueryCap.
  SolverQueriesReport FlightRep;
};

/// Shorthand for Registry::get().Solver — the live process-wide stats.
inline SolverStats &solverStats() { return Registry::get().Solver; }

/// The calling thread's solver statistics. The solver bumps both this and
/// the process-wide instance, so a proof job's before/after snapshot on its
/// own worker thread attributes exactly its own work, even while other
/// workers are running queries concurrently. On a cache hit the memoised
/// work delta is replayed into this instance (and only this one), keeping
/// per-job reports byte-identical whether the query was computed or served
/// from the cache.
SolverStats &threadSolverStats();

/// RAII for tests that assert on solver work within a scope (e.g. "a warm
/// incremental run performs zero solver queries"): zeroes the process-wide
/// and calling-thread solver stats on construction; on destruction, restores
/// the saved counts *plus* whatever accrued inside the scope, so the
/// surrounding run's totals are not lost. Only the constructing thread's
/// thread-local stats are touched — use from serial code.
class ScopedSolverStatsReset {
public:
  ScopedSolverStatsReset();
  ~ScopedSolverStatsReset();
  ScopedSolverStatsReset(const ScopedSolverStatsReset &) = delete;
  ScopedSolverStatsReset &operator=(const ScopedSolverStatsReset &) = delete;

  /// Solver work accrued since construction (process-wide view).
  SolverStats accrued() const;

private:
  SolverStats SavedProcess;
  SolverStats SavedThread;
};

} // namespace metrics
} // namespace gilr

#endif // GILR_SUPPORT_METRICS_H
