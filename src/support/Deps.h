//===- support/Deps.h - Proof dependency recording hook --------------------===//
///
/// \file
/// The thread-local dependency hook the incremental-verification layer
/// (src/incr/) uses to learn what a proof *actually consulted*. The lookup
/// paths of the verification tables (specs, predicates, lemmas, Pearlite
/// contracts) and the verifiers' function-body accesses call \c note; when
/// an \c incr::DepRecorder is installed on the current thread, the named
/// entity joins the running obligation's dependency set. With no sink
/// installed (the default, and always the case outside an incremental run)
/// a note is a single thread-local load and branch, so the hook costs
/// nothing on the normal path.
///
/// This lives in support/ — below every layer that needs to emit notes — so
/// that engine/, creusot/ and gilsonite/ do not depend on the incremental
/// subsystem that consumes them.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_DEPS_H
#define GILR_SUPPORT_DEPS_H

#include <cstdint>
#include <string>

namespace gilr {
namespace deps {

/// The namespaces of dependable entities. Values are part of the on-disk
/// proof-store format (incr/ProofStore.h): append only, never renumber.
enum class Kind : uint8_t {
  Function = 0, ///< An RMIR function body.
  Spec = 1,     ///< A Gilsonite spec (gilsonite::SpecTable).
  Pred = 2,     ///< A predicate declaration (gilsonite::PredTable).
  Lemma = 3,    ///< A registered lemma (engine::LemmaTable).
  Contract = 4, ///< A Pearlite contract (creusot::PearliteSpecTable).
};

/// Returns a printable name for \p K.
const char *kindName(Kind K);

/// Receiver of dependency notes. Implementations are installed per thread
/// (a proof job runs on exactly one worker), so they need no locking of
/// their own for notes.
class Sink {
public:
  virtual ~Sink() = default;
  virtual void note(Kind K, const std::string &Name) = 0;
};

/// Installs \p S as the calling thread's dependency sink (nullptr
/// uninstalls) and returns the previously installed one.
Sink *setSink(Sink *S);

/// The calling thread's installed sink (may be nullptr).
Sink *sink();

/// Notes that the running proof consulted entity (\p K, \p Name). No-op
/// when no sink is installed on this thread.
inline void note(Kind K, const std::string &Name) {
  if (Sink *S = sink())
    S->note(K, Name);
}

} // namespace deps
} // namespace gilr

#endif // GILR_SUPPORT_DEPS_H
