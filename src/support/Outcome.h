//===- support/Outcome.h - Lightweight expected/error result type ---------===//
///
/// \file
/// A minimal Expected-style result used by fallible verifier operations
/// (heap actions, consumers, the executor). The library does not use
/// exceptions (LLVM rules); errors are verification-failure messages
/// propagated to the caller.
///
/// A third state, \c vanished, models symbolic-execution branches that are
/// *assumed away* (e.g. producing a resource that contradicts the state
/// assumes False, §4.1 Lft-Produce-Own-End): not an error, simply a branch
/// that cannot occur.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_OUTCOME_H
#define GILR_SUPPORT_OUTCOME_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gilr {

/// Result of a fallible verifier operation.
template <typename T> class Outcome {
public:
  static Outcome success(T Value) {
    Outcome O;
    O.Value = std::move(Value);
    return O;
  }
  static Outcome failure(std::string Msg) {
    Outcome O;
    O.Err = std::move(Msg);
    return O;
  }
  static Outcome vanish() {
    Outcome O;
    O.Vanished = true;
    return O;
  }

  bool ok() const { return Value.has_value(); }
  bool failed() const { return Err.has_value(); }
  bool vanished() const { return Vanished; }

  T &value() {
    assert(ok() && "value() on non-success outcome");
    return *Value;
  }
  const T &value() const {
    assert(ok() && "value() on non-success outcome");
    return *Value;
  }
  const std::string &error() const {
    assert(failed() && "error() on non-failure outcome");
    return *Err;
  }

  /// Propagates a failure/vanish into another Outcome type.
  template <typename U> Outcome<U> forward() const {
    assert(!ok() && "forward() on success outcome");
    if (Vanished)
      return Outcome<U>::vanish();
    return Outcome<U>::failure(*Err);
  }

private:
  std::optional<T> Value;
  std::optional<std::string> Err;
  bool Vanished = false;
};

/// Unit payload for outcomes with no interesting value.
struct Unit {};

} // namespace gilr

#endif // GILR_SUPPORT_OUTCOME_H
