//===- support/Json.cpp -----------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdlib>

using namespace gilr;
using namespace gilr::json;

namespace {

struct Parser {
  const std::string &Text;
  std::size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &T) : Text(T) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool literal(const char *Lit) {
    std::size_t N = std::string(Lit).size();
    if (Text.compare(Pos, N, Lit) == 0) {
      Pos += N;
      return true;
    }
    return fail(std::string("expected '") + Lit + "'");
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = static_cast<unsigned>(
            std::strtoul(Text.substr(Pos, 4).c_str(), nullptr, 16));
        Pos += 4;
        // Raw UTF-8 of the BMP code point (no surrogate pairing; our own
        // emitters only escape control characters).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  ValuePtr parseValue() {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    char C = Text[Pos];
    auto V = std::make_shared<Value>();
    if (C == '{') {
      ++Pos;
      V->K = Value::Kind::Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return V;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return nullptr;
        if (!consume(':'))
          return nullptr;
        ValuePtr Member = parseValue();
        if (!Member)
          return nullptr;
        V->Obj[Key] = std::move(Member);
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (!consume('}'))
          return nullptr;
        return V;
      }
    }
    if (C == '[') {
      ++Pos;
      V->K = Value::Kind::Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return V;
      }
      while (true) {
        ValuePtr Elem = parseValue();
        if (!Elem)
          return nullptr;
        V->Arr.push_back(std::move(Elem));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (!consume(']'))
          return nullptr;
        return V;
      }
    }
    if (C == '"') {
      V->K = Value::Kind::String;
      if (!parseString(V->Str))
        return nullptr;
      return V;
    }
    if (C == 't') {
      if (!literal("true"))
        return nullptr;
      V->K = Value::Kind::Bool;
      V->B = true;
      return V;
    }
    if (C == 'f') {
      if (!literal("false"))
        return nullptr;
      V->K = Value::Kind::Bool;
      V->B = false;
      return V;
    }
    if (C == 'n') {
      if (!literal("null"))
        return nullptr;
      return V;
    }
    // Number.
    char *End = nullptr;
    double Num = std::strtod(Text.c_str() + Pos, &End);
    if (End == Text.c_str() + Pos) {
      fail("expected value");
      return nullptr;
    }
    V->K = Value::Kind::Number;
    V->Num = Num;
    Pos = static_cast<std::size_t>(End - Text.c_str());
    return V;
  }
};

} // namespace

ValuePtr Value::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Obj.find(Key);
  return It == Obj.end() ? nullptr : It->second;
}

ValuePtr Value::at(const std::string &DottedPath) const {
  // The root is not a ValuePtr, so resolve the first step directly.
  const Value *Cur = this;
  ValuePtr Hold;
  std::size_t Pos = 0;
  while (Pos <= DottedPath.size()) {
    std::size_t Dot = DottedPath.find('.', Pos);
    if (Dot == std::string::npos)
      Dot = DottedPath.size();
    std::string Step = DottedPath.substr(Pos, Dot - Pos);
    ValuePtr Next;
    if (Cur->K == Kind::Object) {
      Next = Cur->get(Step);
    } else if (Cur->K == Kind::Array) {
      char *End = nullptr;
      unsigned long Idx = std::strtoul(Step.c_str(), &End, 10);
      if (End && *End == '\0' && Idx < Cur->Arr.size())
        Next = Cur->Arr[Idx];
    }
    if (!Next)
      return nullptr;
    Hold = Next;
    Cur = Hold.get();
    if (Dot == DottedPath.size())
      return Hold;
    Pos = Dot + 1;
  }
  return nullptr;
}

std::vector<std::string> Value::keys() const {
  std::vector<std::string> Out;
  Out.reserve(Obj.size());
  for (const auto &[Key, V] : Obj)
    Out.push_back(Key);
  return Out;
}

ValuePtr gilr::json::parse(const std::string &Text, std::string *ErrorOut) {
  Parser P(Text);
  ValuePtr V = P.parseValue();
  if (V) {
    P.skipWs();
    if (P.Pos != Text.size()) {
      P.fail("trailing garbage");
      V = nullptr;
    }
  }
  if (!V && ErrorOut)
    *ErrorOut = P.Error;
  return V;
}
