//===- support/Deps.cpp -----------------------------------------------------------===//

#include "support/Deps.h"

using namespace gilr;
using namespace gilr::deps;

namespace {
thread_local Sink *ActiveSink = nullptr;
} // namespace

const char *gilr::deps::kindName(Kind K) {
  switch (K) {
  case Kind::Function:
    return "function";
  case Kind::Spec:
    return "spec";
  case Kind::Pred:
    return "pred";
  case Kind::Lemma:
    return "lemma";
  case Kind::Contract:
    return "contract";
  }
  return "?";
}

Sink *gilr::deps::setSink(Sink *S) {
  Sink *Prev = ActiveSink;
  ActiveSink = S;
  return Prev;
}

Sink *gilr::deps::sink() { return ActiveSink; }
