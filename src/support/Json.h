//===- support/Json.h - Minimal JSON reader --------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser for the verifier's own machine
/// artifacts (the telemetry stats JSON, the BENCH_*.json reports). It
/// exists so the bench-trend aggregator and the schema golden tests can
/// consume those files without an external dependency; it is not a
/// general-purpose JSON library (no streaming, whole documents only,
/// numbers are doubles).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_JSON_H
#define GILR_SUPPORT_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gilr {
namespace json {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

/// One parsed JSON value. Objects keep their members in a sorted map —
/// member order is not part of the data model anywhere we produce JSON.
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<ValuePtr> Arr;
  std::map<std::string, ValuePtr> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  ValuePtr get(const std::string &Key) const;

  /// Path lookup through nested objects/arrays: "suites.0.seconds".
  /// Array steps are decimal indices. nullptr when any step is missing.
  ValuePtr at(const std::string &DottedPath) const;

  /// The member names of an object, sorted.
  std::vector<std::string> keys() const;

  /// Numeric value with a default for absent/mistyped members.
  double numberOr(double Default) const {
    return K == Kind::Number ? Num : Default;
  }
};

/// Parses \p Text as one JSON document. Returns nullptr on malformed input
/// and, if \p ErrorOut is given, stores a one-line description with the
/// failing offset.
ValuePtr parse(const std::string &Text, std::string *ErrorOut = nullptr);

} // namespace json
} // namespace gilr

#endif // GILR_SUPPORT_JSON_H
