//===- support/SourceMgr.h - Source text positions and snippets -----------===//
///
/// \file
/// Byte-offset to line/column translation and caret-snippet rendering for
/// diagnostics that point into source text: the textual RMIR frontend
/// (src/frontend/) and the Gilsonite assertion parser's position-tracked
/// errors (gilsonite/Parser.h) both report offsets; this utility turns them
/// into the "file:line:col" + underlined-line form the CLI prints.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_SOURCEMGR_H
#define GILR_SUPPORT_SOURCEMGR_H

#include <cstddef>
#include <string>
#include <vector>

namespace gilr {
namespace support {

/// A resolved source position (1-based line and column).
struct LineCol {
  unsigned Line = 1;
  unsigned Col = 1;
};

/// Wraps one source buffer and answers offset -> line/col queries in
/// O(log #lines) via a precomputed line-start index.
class SourceMgr {
public:
  SourceMgr(std::string Name, std::string Text);

  const std::string &name() const { return Name; }
  const std::string &text() const { return Text; }

  /// The line/column of byte \p Offset (clamped to the buffer).
  LineCol lineCol(std::size_t Offset) const;

  /// The full text of the (1-based) \p Line, without the newline.
  std::string lineText(unsigned Line) const;

  /// Renders the classic two-line caret snippet for \p Offset:
  ///
  ///   let x: i33;
  ///          ^
  ///
  /// Tabs in the prefix are preserved so the caret stays aligned.
  std::string caretSnippet(std::size_t Offset) const;

  /// "name:line:col" for \p Offset.
  std::string locString(std::size_t Offset) const;

private:
  std::string Name;
  std::string Text;
  std::vector<std::size_t> LineStarts; ///< Byte offset of each line start.
};

} // namespace support
} // namespace gilr

#endif // GILR_SUPPORT_SOURCEMGR_H
