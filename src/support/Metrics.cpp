//===- support/Metrics.cpp --------------------------------------------------------===//

#include "support/Metrics.h"

using namespace gilr;
using namespace gilr::metrics;

Registry &Registry::get() {
  // Deliberately leaked: trace::flush() may run from an atexit handler that
  // was registered before the first metrics call, and a plain static would
  // then be destroyed before that handler reads it.
  static Registry *R = new Registry;
  return *R;
}

SolverStats &gilr::metrics::threadSolverStats() {
  thread_local SolverStats S;
  return S;
}

void Registry::add(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

void Registry::recordSolverLatencyNs(uint64_t Ns) {
  std::size_t Bucket = 0;
  while (Bucket + 1 < LatencyBuckets && (Ns >> (Bucket + 1)) != 0)
    ++Bucket;
  std::lock_guard<std::mutex> Lock(Mu);
  ++Latency[Bucket];
}

bool Registry::noteEntailFingerprint(uint64_t Fp) {
  bool Repeat = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = EntailSeen.find(Fp);
    if (It != EntailSeen.end()) {
      Repeat = true;
    } else if (EntailSeen.size() >= EntailSeenCap) {
      // Saturated: stop recording new fingerprints so a long traced run
      // cannot grow the set without bound. The repeat rate becomes a lower
      // bound from here on; the drop count marks it approximate.
      ++EntailSeenDropped;
    } else {
      EntailSeen.insert(Fp);
    }
  }
  if (Repeat) {
    ++Solver.EntailRepeats;
    ++threadSolverStats().EntailRepeats;
  }
  return Repeat;
}

uint64_t Registry::entailSeenOverflow() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return EntailSeenDropped;
}

void Registry::setQueryCacheReport(QueryCacheReport R) {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheReport = std::move(R);
}

QueryCacheReport Registry::queryCacheReport() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return CacheReport;
}

void Registry::recordSolverQuery(const SolverQuerySample &Q) {
  std::size_t Bucket = 0;
  while (Bucket + 1 < FlightRep.Histogram.size() &&
         (Q.DurationNs >> (Bucket + 1)) != 0)
    ++Bucket;
  std::lock_guard<std::mutex> Lock(Mu);
  FlightRep.Valid = true;
  ++FlightRep.Queries;
  FlightRep.CacheHits += Q.CacheHit;
  FlightRep.Unknowns += Q.Verdict == 2;
  FlightRep.TotalNs += Q.DurationNs;
  if (Q.DurationNs > FlightRep.MaxNs)
    FlightRep.MaxNs = Q.DurationNs;
  ++FlightRep.Histogram[Bucket];
  // Slowest-N, kept sorted by descending duration. Cache hits are counted
  // above but never compete for a slowest slot — a hit's duration is the
  // memo lookup, not the query's real cost.
  std::vector<SolverQuerySample> &Slow = FlightRep.Slowest;
  if (!Q.CacheHit &&
      (Slow.size() < SlowestQueryCap || Q.DurationNs > Slow.back().DurationNs)) {
    auto It = Slow.begin();
    while (It != Slow.end() && It->DurationNs >= Q.DurationNs)
      ++It;
    Slow.insert(It, Q);
    if (Slow.size() > SlowestQueryCap)
      Slow.pop_back();
  }
}

void Registry::noteJournalActivity(uint64_t Records, uint64_t Dropped) {
  std::lock_guard<std::mutex> Lock(Mu);
  FlightRep.Valid = true;
  FlightRep.JournalRecords += Records;
  FlightRep.JournalDropped += Dropped;
}

SolverQueriesReport Registry::solverQueriesReport() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return FlightRep;
}

void Registry::setAnalysisReport(AnalysisReport R) {
  std::lock_guard<std::mutex> Lock(Mu);
  AnalysisRep = std::move(R);
}

AnalysisReport Registry::analysisReport() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return AnalysisRep;
}

void Registry::setIncrReport(IncrReport R) {
  std::lock_guard<std::mutex> Lock(Mu);
  IncrRep = std::move(R);
}

IncrReport Registry::incrReport() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return IncrRep;
}

void Registry::setInterprocReport(InterprocReport R) {
  std::lock_guard<std::mutex> Lock(Mu);
  InterprocRep = std::move(R);
}

InterprocReport Registry::interprocReport() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return InterprocRep;
}

std::map<std::string, uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

std::array<uint64_t, LatencyBuckets> Registry::latencyHistogram() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Latency;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.clear();
  EntailSeen.clear();
  EntailSeenDropped = 0;
  Latency.fill(0);
  Solver = SolverStats();
  CacheReport = QueryCacheReport();
  AnalysisRep = AnalysisReport();
  IncrRep = IncrReport();
  InterprocRep = InterprocReport();
  FlightRep = SolverQueriesReport();
}

namespace {

void addInto(SolverStats &Dst, const SolverStats &Src) {
  Dst.SatQueries += Src.SatQueries;
  Dst.EntailQueries += Src.EntailQueries;
  Dst.Branches += Src.Branches;
  Dst.TheoryChecks += Src.TheoryChecks;
  Dst.UnknownResults += Src.UnknownResults;
  Dst.EntailRepeats += Src.EntailRepeats;
}

} // namespace

ScopedSolverStatsReset::ScopedSolverStatsReset()
    : SavedProcess(Registry::get().Solver), SavedThread(threadSolverStats()) {
  Registry::get().Solver = SolverStats();
  threadSolverStats() = SolverStats();
}

SolverStats ScopedSolverStatsReset::accrued() const {
  return Registry::get().Solver;
}

ScopedSolverStatsReset::~ScopedSolverStatsReset() {
  addInto(Registry::get().Solver, SavedProcess);
  addInto(threadSolverStats(), SavedThread);
}
