//===- support/Files.h - Output-file helpers -------------------------------===//
///
/// \file
/// Shared file-output plumbing for every artifact the verifier writes from
/// environment-derived paths (GILR_TRACE_FILE, GILR_STATS_FILE,
/// GILR_JOURNAL, the bench reports): parent directories are created on
/// demand and failures produce a diagnostic naming the artifact, the path
/// and the OS error instead of silently dropping the output.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_FILES_H
#define GILR_SUPPORT_FILES_H

#include <string>

namespace gilr {
namespace files {

/// Writes \p Data to \p Path, creating missing parent directories first.
/// On any failure a one-line diagnostic ("gilr: cannot write <what> to
/// <path>: <reason>") is printed to stderr and false is returned; the
/// caller decides whether that is fatal. \p What names the artifact in the
/// diagnostic ("query journal", "stats JSON", ...).
bool writeFile(const std::string &Path, const std::string &Data,
               const std::string &What);

/// Reads the entire file at \p Path into \p Out. Returns false (with a
/// diagnostic naming \p What) when the file cannot be opened or read.
bool readFile(const std::string &Path, std::string &Out,
              const std::string &What);

/// Expands the process-id placeholder "%p" in \p Path (used by
/// GILR_JOURNAL so concurrently running test binaries do not clobber one
/// journal file). Paths without the placeholder are returned unchanged.
std::string expandPidPlaceholder(const std::string &Path);

} // namespace files
} // namespace gilr

#endif // GILR_SUPPORT_FILES_H
