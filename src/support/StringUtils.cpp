//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdio>

using namespace gilr;

std::string gilr::join(const std::vector<std::string> &Parts,
                       const std::string &Sep) {
  std::string Result;
  for (std::size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool gilr::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::string gilr::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}
