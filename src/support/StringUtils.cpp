//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

using namespace gilr;

std::string gilr::join(const std::vector<std::string> &Parts,
                       const std::string &Sep) {
  std::string Result;
  for (std::size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool gilr::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}
