//===- support/Trace.cpp ----------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Files.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

using namespace gilr;
using namespace gilr::trace;

std::atomic<bool> gilr::trace::detail::EnabledFlag{false};

namespace {

/// One buffered Chrome trace event. Categories and names are string
/// literals at every call site, so only the detail needs owned storage.
struct Event {
  const char *Cat;
  const char *Name;
  std::string Detail;
  uint64_t TsNs;
  uint64_t DurNs; ///< 0 for instants.
  uint32_t Tid;
  char Ph; ///< 'X' complete, 'i' instant.
};

struct Aggregate {
  uint64_t Count = 0;
  uint64_t Nanos = 0;
};

/// Events are capped so a runaway run cannot exhaust memory; the drop count
/// is reported at flush time rather than truncating silently.
constexpr std::size_t MaxEvents = 1u << 20;

struct SinkState {
  std::mutex Mu;
  Options Opts;
  std::vector<Event> Events;
  uint64_t DroppedEvents = 0;
  std::map<std::string, Aggregate> Phases;
  uint32_t NextTid = 1;
};

SinkState &sink() {
  // Deliberately leaked (like the metrics registry): the atexit flush must
  // be able to read the sink after static destruction has begun.
  static SinkState *S = new SinkState;
  return *S;
}

uint64_t originNs() {
  static const uint64_t Origin = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return Origin;
}

uint32_t threadId() {
  thread_local uint32_t Tid = 0;
  if (Tid == 0) {
    std::lock_guard<std::mutex> Lock(sink().Mu);
    Tid = sink().NextTid++;
  }
  return Tid;
}

/// The per-thread stack of open spans (static strings only; maintained only
/// while tracing is enabled).
struct SpanFrame {
  const char *Cat;
  const char *Name;
};
constexpr uint32_t MaxSpanDepth = 256;
constexpr uint32_t OverflowToken = UINT32_MAX;
thread_local SpanFrame SpanStack[MaxSpanDepth];
thread_local uint32_t SpanDepth = 0;

bool sameKey(const SpanFrame &F, const char *Cat, const char *Name) {
  return std::strcmp(F.Cat, Cat) == 0 && std::strcmp(F.Name, Name) == 0;
}

void recordEvent(Event E) {
  SinkState &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Opts.M != Mode::Json)
    return;
  if (S.Events.size() >= MaxEvents) {
    ++S.DroppedEvents;
    return;
  }
  S.Events.push_back(std::move(E));
}

std::string nsToUs(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned long long>(Ns % 1000));
  return Buf;
}

std::string eventJson(const Event &E) {
  std::string J = "{\"name\":\"" + jsonEscape(E.Name) + "\",\"cat\":\"" +
                  jsonEscape(E.Cat) + "\",\"ph\":\"" + E.Ph +
                  "\",\"ts\":" + nsToUs(E.TsNs) + ",\"pid\":1,\"tid\":" +
                  std::to_string(E.Tid);
  if (E.Ph == 'X')
    J += ",\"dur\":" + nsToUs(E.DurNs);
  if (E.Ph == 'i')
    J += ",\"s\":\"t\"";
  if (!E.Detail.empty())
    J += ",\"args\":{\"detail\":\"" + jsonEscape(E.Detail) + "\"}";
  J += "}";
  return J;
}

void flushAtExit() { flush(); }

} // namespace

uint64_t gilr::trace::nowNs() {
  return static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) -
         originNs();
}

Mode gilr::trace::mode() {
  SinkState &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Opts.M;
}

void gilr::trace::configure(const Options &O) {
  SinkState &S = sink();
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Opts = O;
  }
  (void)originNs(); // Pin the time origin before the first span.
  detail::EnabledFlag.store(O.M != Mode::Off, std::memory_order_relaxed);
}

void gilr::trace::configureFromEnv() {
  const char *Env = std::getenv("GILR_TRACE");
  Options O;
  if (Env) {
    std::string V = Env;
    if (V == "text" || V == "on" || V == "1")
      O.M = Mode::Text;
    else if (V == "json" || V == "chrome")
      O.M = Mode::Json;
  }
  if (const char *F = std::getenv("GILR_TRACE_FILE"))
    O.TraceFile = F;
  if (const char *F = std::getenv("GILR_STATS_FILE"))
    O.StatsFile = F;
  configure(O);
  if (O.M != Mode::Off) {
    static bool Registered = false;
    if (!Registered) {
      Registered = true;
      std::atexit(flushAtExit);
    }
  }
}

void gilr::trace::reset() {
  SinkState &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Events.clear();
  S.DroppedEvents = 0;
  S.Phases.clear();
}

uint32_t gilr::trace::detail::beginSpan(const char *Cat, const char *Name) {
  if (SpanDepth < MaxSpanDepth) {
    SpanStack[SpanDepth] = SpanFrame{Cat, Name};
    return SpanDepth++;
  }
  return OverflowToken;
}

void gilr::trace::detail::endSpan(uint32_t Token, const char *Cat,
                                  const char *Name, uint64_t StartNs,
                                  std::string Detail) {
  uint64_t End = nowNs();
  uint64_t Dur = End > StartNs ? End - StartNs : 0;

  bool NestedSameKey = false;
  if (Token != OverflowToken) {
    for (uint32_t I = 0; I < Token && I < SpanDepth; ++I)
      if (sameKey(SpanStack[I], Cat, Name)) {
        NestedSameKey = true;
        break;
      }
    if (SpanDepth > Token)
      SpanDepth = Token; // Pop this frame (and any leaked deeper frames).
  }

  SinkState &S = sink();
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (!NestedSameKey) {
      Aggregate &A = S.Phases[std::string(Cat) + "/" + Name];
      ++A.Count;
      A.Nanos += Dur;
    }
  }
  recordEvent(
      Event{Cat, Name, std::move(Detail), StartNs, Dur, threadId(), 'X'});
}

void gilr::trace::detail::instantImpl(const char *Cat, const char *Name,
                                      std::string Detail) {
  SinkState &S = sink();
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    ++S.Phases[std::string(Cat) + "/" + Name].Count;
  }
  recordEvent(
      Event{Cat, Name, std::move(Detail), nowNs(), 0, threadId(), 'i'});
}

std::string gilr::trace::spanStack() {
  std::string Out;
  for (uint32_t I = 0; I < SpanDepth; ++I) {
    if (!Out.empty())
      Out += " > ";
    Out += SpanStack[I].Cat;
    Out += ":";
    Out += SpanStack[I].Name;
  }
  return Out;
}

std::vector<PhaseStat> gilr::trace::phases() {
  SinkState &S = sink();
  std::vector<PhaseStat> Out;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Out.reserve(S.Phases.size());
    for (const auto &[Key, A] : S.Phases)
      Out.push_back(PhaseStat{Key, A.Count, A.Nanos});
  }
  std::sort(Out.begin(), Out.end(),
            [](const PhaseStat &A, const PhaseStat &B) {
              return A.Nanos > B.Nanos;
            });
  return Out;
}

std::vector<PhaseStat>
gilr::trace::diffPhases(const std::vector<PhaseStat> &Before,
                        const std::vector<PhaseStat> &After) {
  std::map<std::string, PhaseStat> Base;
  for (const PhaseStat &P : Before)
    Base[P.Key] = P;
  std::vector<PhaseStat> Out;
  for (const PhaseStat &P : After) {
    PhaseStat D = P;
    auto It = Base.find(P.Key);
    if (It != Base.end()) {
      D.Count -= It->second.Count;
      D.Nanos -= It->second.Nanos;
    }
    if (D.Count != 0 || D.Nanos != 0)
      Out.push_back(std::move(D));
  }
  std::sort(Out.begin(), Out.end(),
            [](const PhaseStat &A, const PhaseStat &B) {
              return A.Nanos > B.Nanos;
            });
  return Out;
}

std::string gilr::trace::phaseReportText(const std::vector<PhaseStat> &Stats) {
  std::size_t Width = 8;
  for (const PhaseStat &P : Stats)
    Width = std::max(Width, P.Key.size());
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "  %-*s %10s %12s\n",
                static_cast<int>(Width), "phase", "count", "seconds");
  Out += Line;
  for (const PhaseStat &P : Stats) {
    std::snprintf(Line, sizeof(Line), "  %-*s %10llu %12.6f\n",
                  static_cast<int>(Width), P.Key.c_str(),
                  static_cast<unsigned long long>(P.Count),
                  static_cast<double>(P.Nanos) / 1e9);
    Out += Line;
  }
  return Out;
}

std::size_t gilr::trace::eventCount() {
  SinkState &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Events.size();
}

std::string gilr::trace::renderTraceJson() {
  SinkState &S = sink();
  std::vector<Event> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Snapshot = S.Events;
  }
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t I = 0; I != Snapshot.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\n" + eventJson(Snapshot[I]);
  }
  Out += "\n]}\n";
  return Out;
}

std::string
gilr::trace::renderStatsJson(const std::vector<std::string> &CaseStudies) {
  metrics::Registry &R = metrics::Registry::get();
  const SolverStats &SS = R.Solver;

  std::string Out = "{\n  \"schema\": \"gilr-telemetry-v1\",\n";

  Out += "  \"solver\": {";
  Out += "\"sat_queries\": " + std::to_string(SS.SatQueries);
  Out += ", \"entail_queries\": " + std::to_string(SS.EntailQueries);
  Out += ", \"branches\": " + std::to_string(SS.Branches);
  Out += ", \"theory_checks\": " + std::to_string(SS.TheoryChecks);
  Out += ", \"unknown_results\": " + std::to_string(SS.UnknownResults);
  Out += ", \"entail_repeats\": " + std::to_string(SS.EntailRepeats);
  char Rate[32];
  std::snprintf(Rate, sizeof(Rate), "%.4f",
                SS.EntailQueries
                    ? static_cast<double>(SS.EntailRepeats) /
                          static_cast<double>(SS.EntailQueries)
                    : 0.0);
  Out += std::string(", \"entail_repeat_rate\": ") + Rate;
  // The fingerprint set is capped (metrics::EntailSeenCap): once it
  // overflows, the repeat rate is only a lower bound.
  uint64_t Overflow = R.entailSeenOverflow();
  Out += ", \"entail_seen_overflow\": " + std::to_string(Overflow);
  Out += std::string(", \"entail_repeat_rate_approx\": ") +
         (Overflow ? "true" : "false");
  Out += "},\n";

  // The scheduler's entailment-cache snapshot (recorded at the end of the
  // most recent scheduled run); omitted until one has completed.
  metrics::QueryCacheReport QC = R.queryCacheReport();
  if (QC.Valid) {
    auto FmtRate = [](uint64_t Hits, uint64_t Misses) {
      char Buf[32];
      uint64_t Total = Hits + Misses;
      std::snprintf(Buf, sizeof(Buf), "%.4f",
                    Total ? static_cast<double>(Hits) /
                                static_cast<double>(Total)
                          : 0.0);
      return std::string(Buf);
    };
    Out += "  \"query_cache\": {";
    Out += "\"hits\": " + std::to_string(QC.Hits);
    Out += ", \"misses\": " + std::to_string(QC.Misses);
    Out += ", \"insertions\": " + std::to_string(QC.Insertions);
    Out += ", \"evictions\": " + std::to_string(QC.Evictions);
    Out += ", \"hit_rate\": " + FmtRate(QC.Hits, QC.Misses);
    Out += ", \"shards\": [";
    for (std::size_t I = 0; I != QC.Shards.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "{\"hits\": " + std::to_string(QC.Shards[I].Hits) +
             ", \"misses\": " + std::to_string(QC.Shards[I].Misses) +
             ", \"hit_rate\": " +
             FmtRate(QC.Shards[I].Hits, QC.Shards[I].Misses) + "}";
    }
    Out += "]},\n";
  }

  // Summary of the pre-verification static analysis pass (recorded by
  // src/analysis/ at the end of the most recent run); omitted until one has
  // completed. Full diagnostics live in the driver reports, not here.
  metrics::AnalysisReport AR = R.analysisReport();
  if (AR.Valid) {
    char Secs[32];
    std::snprintf(Secs, sizeof(Secs), "%.6f", AR.Seconds);
    Out += "  \"analysis\": {";
    Out += std::string("\"enabled\": ") + (AR.Enabled ? "true" : "false");
    Out += ", \"entities\": " + std::to_string(AR.Entities);
    Out += ", \"cached\": " + std::to_string(AR.Cached);
    Out += ", \"blocked\": " + std::to_string(AR.Blocked);
    Out += ", \"errors\": " + std::to_string(AR.Errors);
    Out += ", \"warnings\": " + std::to_string(AR.Warnings);
    Out += ", \"suppressed\": " + std::to_string(AR.Suppressed);
    Out += std::string(", \"seconds\": ") + Secs;
    Out += "},\n";
  }

  // Summary of the incremental session (recorded by the scheduler's incr
  // entry points at the end of the most recent run); omitted until one has
  // completed. salvaged/implied count verdicts replayed across a dependency
  // edit (also included in cached).
  metrics::IncrReport IR = R.incrReport();
  if (IR.Valid) {
    Out += "  \"incremental\": {";
    Out += "\"cached\": " + std::to_string(IR.Cached);
    Out += ", \"verified\": " + std::to_string(IR.Verified);
    Out += ", \"invalidated\": " + std::to_string(IR.Invalidated);
    Out += ", \"salvaged\": " + std::to_string(IR.Salvaged);
    Out += ", \"implied\": " + std::to_string(IR.Implied);
    Out += ", \"salvage_queries\": " + std::to_string(IR.SalvageQueries);
    Out += ", \"compactions\": " + std::to_string(IR.Compactions);
    Out += ", \"cached_lint\": " + std::to_string(IR.CachedLint);
    Out += ", \"analyzed_lint\": " + std::to_string(IR.AnalyzedLint);
    Out += std::string(", \"store_loaded\": ") +
           (IR.StoreLoaded ? "true" : "false");
    Out += "},\n";
  }

  // Summary of the interprocedural summary phase and triage tier (recorded
  // by the scheduler at the end of the most recent run); omitted until a
  // run with the phase enabled has completed.
  metrics::InterprocReport IP = R.interprocReport();
  if (IP.Valid) {
    char IpSecs[32];
    std::snprintf(IpSecs, sizeof(IpSecs), "%.6f", IP.Seconds);
    Out += "  \"interproc\": {";
    Out += "\"fn_summaries\": " + std::to_string(IP.FnSummaries);
    Out += ", \"pred_summaries\": " + std::to_string(IP.PredSummaries);
    Out += ", \"summaries_computed\": " + std::to_string(IP.SummariesComputed);
    Out += ", \"summaries_reused\": " + std::to_string(IP.SummariesReused);
    Out += ", \"triaged_static\": " + std::to_string(IP.TriagedStatic);
    Out += std::string(", \"seconds\": ") + IpSecs;
    Out += "},\n";
  }

  // Flight-recorded per-query aggregates (solver/Flight.h); omitted unless
  // the timing decorator ran (GILR_TIMING / GILR_JOURNAL).
  metrics::SolverQueriesReport FQ = R.solverQueriesReport();
  if (FQ.Valid) {
    Out += "  \"solver_queries\": {";
    Out += "\"queries\": " + std::to_string(FQ.Queries);
    Out += ", \"cache_hits\": " + std::to_string(FQ.CacheHits);
    Out += ", \"unknowns\": " + std::to_string(FQ.Unknowns);
    Out += ", \"total_ns\": " + std::to_string(FQ.TotalNs);
    Out += ", \"max_ns\": " + std::to_string(FQ.MaxNs);
    Out += ", \"journal_records\": " + std::to_string(FQ.JournalRecords);
    Out += ", \"journal_dropped\": " + std::to_string(FQ.JournalDropped);
    Out += ",\n    \"latency_log2_ns\": [";
    for (std::size_t I = 0; I != FQ.Histogram.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(FQ.Histogram[I]);
    }
    Out += "],\n    \"slowest\": [";
    for (std::size_t I = 0; I != FQ.Slowest.size(); ++I) {
      const metrics::SolverQuerySample &Q = FQ.Slowest[I];
      if (I)
        Out += ",";
      char Fp[32];
      std::snprintf(Fp, sizeof(Fp), "%016llx",
                    static_cast<unsigned long long>(Q.Fp));
      Out += "\n      {\"obligation\": \"" + jsonEscape(Q.Obligation) +
             "\", \"side\": \"" + Q.Side +
             std::string("\", \"query_idx\": ") + std::to_string(Q.QueryIdx) +
             ", \"pc_size\": " + std::to_string(Q.PcSize) +
             ", \"verdict\": \"" +
             (Q.Verdict == 0 ? "sat" : Q.Verdict == 1 ? "unsat" : "unknown") +
             "\", \"cache_hit\": " + (Q.CacheHit ? "true" : "false") +
             ", \"duration_ns\": " + std::to_string(Q.DurationNs) +
             ", \"fp\": \"" + Fp + "\"}";
    }
    Out += FQ.Slowest.empty() ? "]},\n" : "\n    ]},\n";
  }

  Out += "  \"solver_latency_log2_ns\": [";
  auto Histo = R.latencyHistogram();
  for (std::size_t I = 0; I != Histo.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Histo[I]);
  }
  Out += "],\n";

  Out += "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : R.counters()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\": " + std::to_string(Value);
  }
  Out += "},\n";

  Out += "  \"phases\": [";
  First = true;
  for (const PhaseStat &P : phases()) {
    if (!First)
      Out += ",";
    First = false;
    char Sec[32];
    std::snprintf(Sec, sizeof(Sec), "%.6f",
                  static_cast<double>(P.Nanos) / 1e9);
    Out += "\n    {\"phase\": \"" + jsonEscape(P.Key) +
           "\", \"count\": " + std::to_string(P.Count) +
           ", \"seconds\": " + Sec + "}";
  }
  Out += "\n  ],\n";

  Out += "  \"cases\": [";
  First = true;
  for (const std::string &Case : CaseStudies) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n    " + Case;
  }
  Out += "\n  ]\n}\n";
  return Out;
}

bool gilr::trace::flush() {
  SinkState &S = sink();
  Options O;
  uint64_t Dropped;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    O = S.Opts;
    Dropped = S.DroppedEvents;
  }
  if (O.M == Mode::Off)
    return true;
  if (O.M == Mode::Text) {
    std::string Report = phaseReportText(phases());
    std::fprintf(stderr, "=== gilr trace: per-phase breakdown ===\n%s",
                 Report.c_str());
    return true;
  }
  if (Dropped)
    std::fprintf(stderr,
                 "gilr trace: event buffer full, %llu event(s) dropped\n",
                 static_cast<unsigned long long>(Dropped));
  // files::writeFile creates missing parent directories and diagnoses
  // failures (env-configured paths must never drop output silently).
  bool Ok = true;
  if (!O.TraceFile.empty())
    Ok = files::writeFile(O.TraceFile, renderTraceJson(), "trace JSON") && Ok;
  if (!O.StatsFile.empty())
    Ok = files::writeFile(O.StatsFile, renderStatsJson(), "stats JSON") && Ok;
  return Ok;
}
