//===- support/Budget.h - Cooperative per-job proof budgets ----------------===//
///
/// \file
/// Thread-local budget for one proof job: a wall-clock deadline and a cap
/// on DPLL branches. The scheduler (src/sched/) arms the budget before
/// running a job on a worker thread; the solver and the symbolic executor
/// poll \c exceeded() at their natural re-entry points and degrade to an
/// Unknown/aborted result instead of stalling the worker pool on a
/// pathological obligation.
///
/// Cost model: \c exceeded() is a thread-local flag check plus a branch
/// count comparison; the clock is only sampled every 64th call, so polling
/// from the solver's branch loop is safe.
///
/// Soundness: an exhausted budget only ever turns an answer into "don't
/// know" — the solver reports \c Unknown (which fails entailments, the safe
/// direction) and such results are never memoised by the query cache.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_BUDGET_H
#define GILR_SUPPORT_BUDGET_H

#include <cstdint>
#include <string>

namespace gilr {
namespace budget {

/// Arms the calling thread's job budget. \p WallNs is the allowed
/// wall-clock time from now (0 = unlimited); \p BranchCap caps the DPLL
/// branches the job may explore from this point (0 = unlimited). Clears any
/// sticky exhaustion from a previous job.
void begin(uint64_t WallNs, uint64_t BranchCap);

/// Disarms the budget (the thread returns to unlimited).
void clear();

/// True iff a budget is armed on this thread.
bool active();

/// True iff the armed budget is exhausted. Sticky: once it fires it keeps
/// returning true until \c begin or \c clear.
bool exceeded();

/// True iff the budget fired at any point since the last \c begin. Survives
/// \c clear so the scheduler can classify the finished job as Unknown.
bool wasExceeded();

/// Human-readable description of what fired ("wall-clock", "branch cap"),
/// empty if nothing did.
std::string describe();

/// RAII guard: arms on construction, disarms on destruction.
class JobScope {
public:
  JobScope(uint64_t WallNs, uint64_t BranchCap) { begin(WallNs, BranchCap); }
  ~JobScope() { clear(); }
  JobScope(const JobScope &) = delete;
  JobScope &operator=(const JobScope &) = delete;
};

} // namespace budget
} // namespace gilr

#endif // GILR_SUPPORT_BUDGET_H
