//===- support/Diagnostics.h - Fatal errors and unreachable markers ------===//
//
// Part of the Gillian-Rust C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers in the spirit of LLVM's ErrorHandling.h: the
/// library never throws; invariant violations abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SUPPORT_DIAGNOSTICS_H
#define GILR_SUPPORT_DIAGNOSTICS_H

#include <string>

namespace gilr {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// cannot be expressed as an assert condition.
[[noreturn]] void fatalError(const std::string &Msg);

/// Marks a point in code that must never be reached if invariants hold.
[[noreturn]] void unreachableImpl(const char *Msg, const char *File, int Line);

} // namespace gilr

#define GILR_UNREACHABLE(MSG) ::gilr::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // GILR_SUPPORT_DIAGNOSTICS_H
