//===- solver/SeqTheory.cpp --------------------------------------------------===//

#include "solver/SeqTheory.h"

#include "sym/ExprBuilder.h"

#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace gilr;

__int128 gilr::minStaticSeqLen(const Expr &E) {
  switch (E->Kind) {
  case ExprKind::SeqNil:
    return 0;
  case ExprKind::SeqUnit:
    return 1;
  case ExprKind::SeqConcat: {
    __int128 Total = 0;
    for (const Expr &Kid : E->Kids)
      Total += minStaticSeqLen(Kid);
    return Total;
  }
  default:
    return 0;
  }
}

static bool isSeqSorted(const Expr &E) {
  return E->NodeSort == Sort::Seq || E->Kind == ExprKind::SeqNil ||
         E->Kind == ExprKind::SeqUnit || E->Kind == ExprKind::SeqConcat ||
         E->Kind == ExprKind::SeqSub;
}

/// Collects all SeqLen / SeqSub / SeqConcat subterms of \p E.
static void collectSeqTerms(const Expr &E, std::vector<Expr> &Lens,
                            std::vector<Expr> &Subs,
                            std::vector<Expr> &Concats,
                            std::set<const ExprNode *> &Seen) {
  if (!E || !Seen.insert(E.get()).second)
    return;
  if (E->Kind == ExprKind::SeqLen)
    Lens.push_back(E);
  if (E->Kind == ExprKind::SeqSub)
    Subs.push_back(E);
  if (E->Kind == ExprKind::SeqConcat)
    Concats.push_back(E);
  for (const Expr &Kid : E->Kids)
    collectSeqTerms(Kid, Lens, Subs, Concats, Seen);
}

/// Merges adjacent subsequences of the same base inside a concatenation:
/// sub(s, f, l) ++ sub(s, f + l, l') = sub(s, f, l + l'). Returns the
/// merged expression, or nullptr if nothing merged.
static Expr mergeAdjacentSubs(const Expr &Concat) {
  std::vector<Expr> Parts(Concat->Kids.begin(), Concat->Kids.end());
  bool Changed = false;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (std::size_t I = 0; I + 1 < Parts.size(); ++I) {
      const Expr &A = Parts[I];
      const Expr &B = Parts[I + 1];
      if (A->Kind != ExprKind::SeqSub || B->Kind != ExprKind::SeqSub)
        continue;
      if (!exprEquals(A->Kids[0], B->Kids[0]))
        continue;
      if (!exprEquals(mkAdd(A->Kids[1], A->Kids[2]), B->Kids[1]))
        continue;
      Parts[I] = mkSeqSub(A->Kids[0], A->Kids[1],
                          mkAdd(A->Kids[2], B->Kids[2]));
      Parts.erase(Parts.begin() + static_cast<long>(I) + 1);
      Changed = true;
      Progress = true;
      break;
    }
  }
  if (!Changed)
    return nullptr;
  return mkSeqConcat(std::move(Parts));
}

/// Flattens a sequence expression into concatenation parts.
static void flattenParts(const Expr &E, std::vector<Expr> &Out) {
  if (E->Kind == ExprKind::SeqNil)
    return;
  if (E->Kind == ExprKind::SeqConcat) {
    for (const Expr &Kid : E->Kids)
      flattenParts(Kid, Out);
    return;
  }
  Out.push_back(E);
}

/// Decomposes an equality between two sequence expressions, appending derived
/// literals. Returns false on definite conflict.
static bool decomposeSeqEq(const Expr &A, const Expr &B,
                           std::vector<Literal> &Out) {
  std::vector<Expr> PA, PB;
  flattenParts(A, PA);
  flattenParts(B, PB);

  std::size_t FrontA = 0, FrontB = 0;
  std::size_t EndA = PA.size(), EndB = PB.size();

  // Strip unit prefixes.
  while (FrontA < EndA && FrontB < EndB &&
         PA[FrontA]->Kind == ExprKind::SeqUnit &&
         PB[FrontB]->Kind == ExprKind::SeqUnit) {
    Out.push_back({mkEq(PA[FrontA]->Kids[0], PB[FrontB]->Kids[0]), true});
    ++FrontA;
    ++FrontB;
  }
  // Strip unit suffixes.
  while (FrontA < EndA && FrontB < EndB &&
         PA[EndA - 1]->Kind == ExprKind::SeqUnit &&
         PB[EndB - 1]->Kind == ExprKind::SeqUnit) {
    Out.push_back({mkEq(PA[EndA - 1]->Kids[0], PB[EndB - 1]->Kids[0]), true});
    --EndA;
    --EndB;
  }

  std::vector<Expr> RestA(PA.begin() + FrontA, PA.begin() + EndA);
  std::vector<Expr> RestB(PB.begin() + FrontB, PB.begin() + EndB);

  Expr RemA = mkSeqConcat(RestA);
  Expr RemB = mkSeqConcat(RestB);

  // Clash detection: one side is empty while the other has static minimum
  // length > 0.
  if (RemA->Kind == ExprKind::SeqNil && minStaticSeqLen(RemB) > 0)
    return false;
  if (RemB->Kind == ExprKind::SeqNil && minStaticSeqLen(RemA) > 0)
    return false;

  // Emit remainder equality if we made progress; emit length equality always
  // (it feeds the arithmetic backend).
  if (FrontA != 0 || FrontB != 0 || EndA != PA.size() || EndB != PB.size())
    Out.push_back({mkEq(RemA, RemB), true});
  Expr LenEq = mkEq(mkSeqLen(A), mkSeqLen(B));
  if (!isTrueLit(LenEq))
    Out.push_back({LenEq, true});
  return true;
}

/// One derivation pass over \p Atoms; new literals are appended to Result.
static void deriveSeqFactsPass(const std::vector<Literal> &Atoms,
                               SeqFacts &Result) {
  std::vector<Expr> Lens, Subs, Concats;
  std::set<const ExprNode *> Seen;
  for (const Literal &Lit : Atoms)
    collectSeqTerms(Lit.first, Lens, Subs, Concats, Seen);

  for (const Expr &Len : Lens)
    Result.Derived.push_back({mkLe(mkInt(0), Len), true});

  // Syntactic equality-fact index, used to instantiate conditional axioms.
  auto hasEqFact = [&Atoms](const Expr &A, const Expr &B) {
    Expr Want = mkEq(A, B);
    if (isTrueLit(Want))
      return true;
    for (const Literal &L : Atoms)
      if (L.second && exprEquals(L.first, Want))
        return true;
    return false;
  };

  for (const Expr &Sub : Subs) {
    const Expr &S = Sub->Kids[0];
    const Expr &From = Sub->Kids[1];
    const Expr &Count = Sub->Kids[2];
    Result.Derived.push_back({mkLe(mkInt(0), From), true});
    Result.Derived.push_back({mkLe(mkInt(0), Count), true});
    Result.Derived.push_back({mkLe(mkAdd(From, Count), mkSeqLen(S)), true});
    // sub(s, 0, |s|) = s, instantiated when the branch knows |s| = Count.
    __int128 F;
    if (getIntLit(From, F) && F == 0 &&
        (exprEquals(Count, mkSeqLen(S)) || hasEqFact(mkSeqLen(S), Count)))
      Result.Derived.push_back({mkEq(Sub, S), true});
  }

  // Reassembly: adjacent subsequences of the same base merge.
  for (const Expr &C : Concats)
    if (Expr Merged = mergeAdjacentSubs(C))
      Result.Derived.push_back({mkEq(C, Merged), true});

  // Syntactic transitivity: close the positive equalities (over *all*
  // sorts) into classes and derive equalities between the sequence-shaped
  // members of each class, so the decomposition below sees constructor
  // shapes that were only ever equated through shared variables.
  {
    struct ExprKeyHash {
      std::size_t operator()(const Expr &E) const { return E->hash(); }
    };
    struct ExprKeyEq {
      bool operator()(const Expr &A, const Expr &B) const {
        return exprEquals(A, B);
      }
    };
    std::unordered_map<Expr, std::size_t, ExprKeyHash, ExprKeyEq> Ids;
    std::vector<std::size_t> Parent;
    std::vector<Expr> Terms;
    std::function<std::size_t(std::size_t)> Find =
        [&](std::size_t I) -> std::size_t {
      while (Parent[I] != I) {
        Parent[I] = Parent[Parent[I]];
        I = Parent[I];
      }
      return I;
    };
    auto idOf = [&](const Expr &E) {
      auto [It, Inserted] = Ids.emplace(E, Terms.size());
      if (Inserted) {
        Terms.push_back(E);
        Parent.push_back(Parent.size());
      }
      return It->second;
    };
    for (const Literal &L : Atoms) {
      if (!L.second || L.first->Kind != ExprKind::Eq)
        continue;
      std::size_t A = idOf(L.first->Kids[0]);
      std::size_t B = idOf(L.first->Kids[1]);
      Parent[Find(A)] = Find(B);
    }
    auto seqShaped = [](const Expr &E) {
      return E->Kind == ExprKind::SeqConcat || E->Kind == ExprKind::SeqUnit ||
             E->Kind == ExprKind::SeqNil || E->Kind == ExprKind::SeqSub;
    };
    std::map<std::size_t, std::vector<const Expr *>> Shaped;
    for (std::size_t I = 0; I != Terms.size(); ++I)
      if (seqShaped(Terms[I]))
        Shaped[Find(I)].push_back(&Terms[I]);
    int Budget = 256;
    for (auto &[Rep, Members] : Shaped)
      for (std::size_t I = 0; I + 1 < Members.size() && Budget > 0; ++I)
        for (std::size_t J = I + 1; J < Members.size() && Budget > 0; ++J) {
          Expr EqF = mkEq(*Members[I], *Members[J]);
          if (isTrueLit(EqF))
            continue;
          --Budget;
          Result.Derived.push_back({EqF, true});
        }
  }

  // Decompose positive sequence equalities, iterating on newly derived
  // equalities to a small fixpoint.
  std::vector<Literal> Queue = Atoms;
  std::set<const ExprNode *> Processed;
  int Fuel = 256;
  for (std::size_t I = 0; I < Queue.size() && Fuel > 0; ++I) {
    auto [Atom, Positive] = Queue[I];
    if (!Positive || Atom->Kind != ExprKind::Eq)
      continue;
    if (!isSeqSorted(Atom->Kids[0]) && !isSeqSorted(Atom->Kids[1]))
      continue;
    if (!Processed.insert(Atom.get()).second)
      continue;
    --Fuel;
    std::vector<Literal> Derived;
    if (!decomposeSeqEq(Atom->Kids[0], Atom->Kids[1], Derived)) {
      Result.Conflict = true;
      return;
    }
    for (Literal &D : Derived) {
      if (isFalseLit(D.first) && D.second) {
        Result.Conflict = true;
        return;
      }
      if (isTrueLit(D.first))
        continue;
      Result.Derived.push_back(D);
      Queue.push_back(D);
    }
  }
}

SeqFacts gilr::deriveSeqFacts(const std::vector<Literal> &Atoms) {
  // Iterate the pass: derived facts (e.g. merged subsequences) can enable
  // further axiom instantiations (e.g. sub(s, 0, |s|) = s).
  SeqFacts Result;
  // Fact identity: intern CanonId when available (exact), structural hash
  // with the top bit set for foreign nodes; lowest bit carries polarity.
  auto factKey = [](const Literal &L) {
    uint64_t Id = L.first->CanonId != 0
                      ? L.first->CanonId
                      : (static_cast<uint64_t>(L.first->hash()) |
                         (uint64_t(1) << 62));
    return (Id << 1) | (L.second ? 1 : 0);
  };
  std::unordered_set<uint64_t> SeenFacts;
  std::vector<Literal> All = Atoms;
    // Enough rounds for deep cons-chains (each pop/push layer may need one
  // union-find + decomposition alternation).
  int MaxRounds = 8 + static_cast<int>(Atoms.size());
  for (int Round = 0; Round != MaxRounds; ++Round) {
    SeqFacts Pass;
    deriveSeqFactsPass(All, Pass);
    if (Pass.Conflict) {
      Result.Conflict = true;
      return Result;
    }
    bool New = false;
    for (Literal &D : Pass.Derived) {
      if (!SeenFacts.insert(factKey(D)).second)
        continue;
      Result.Derived.push_back(D);
      All.push_back(D);
      New = true;
    }
    if (!New)
      break;
  }
  return Result;
}
