//===- solver/Flight.h - Proof flight recorder ------------------------------===//
///
/// \file
/// The proof flight recorder: per-query timing and a replayable query
/// journal, implemented as decorator layers of the solver chain
/// (SolverChain.h). Both are off by default and cost one relaxed atomic
/// load per query when disabled.
///
/// \b TimingSolver wraps the memo layer, clocks every query (cache-served
/// or searched), and feeds the process-wide \c SolverQueriesReport in the
/// metrics registry: totals, a log2 latency histogram and the slowest-N
/// queries with provenance.
///
/// \b QueryJournalSolver additionally serialises every query — assertion
/// set, provenance, verdict, work counters, duration, cache marker — into
/// an in-memory buffer rendered as a \c GILRJRN1 journal (solver/Journal.h)
/// and written at exit. Obligations whose verdicts the incremental proof
/// store replays without solving are marked with \c cached records via
/// \c noteCachedObligation, so the journal accounts for every obligation of
/// a warm run. The rendered journal is deterministically ordered by
/// (obligation, side, query index) — a 4-worker run and a serial run of the
/// same input produce the same record sequence (only timings differ).
///
/// Provenance comes from \c ObligationScope, an RAII marker the verifiers
/// (engine/, creusot/, analysis/) open around each obligation; queries
/// outside any scope journal with an empty obligation name.
///
/// Configuration: programmatic via \c configure(), or from the environment
/// on the first enabled-check (any binary, including the test runners,
/// honours these without code changes):
///
///   GILR_TIMING=1         enable the timing layer only.
///   GILR_JOURNAL=<path>   enable timing + journal; the journal is written
///                         to <path> at exit ("%p" expands to the pid).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_FLIGHT_H
#define GILR_SOLVER_FLIGHT_H

#include "solver/SolverChain.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace gilr {
namespace flight {

struct Options {
  bool Timing = false;
  bool Journal = false; ///< Implies Timing (the journal needs durations).
  std::string JournalFile; ///< "" keeps the journal in memory only.
};

namespace detail {
/// Bit 0: timing, bit 1: journal; 0xFF: not yet configured (first
/// enabled-check initialises from the environment).
extern std::atomic<uint8_t> Flags;
uint8_t initFromEnvSlow();
/// Depth of Pause scopes on this thread.
extern thread_local unsigned PauseDepth;

inline uint8_t flags() {
  uint8_t F = Flags.load(std::memory_order_relaxed);
  if (F == 0xFF)
    F = initFromEnvSlow();
  return PauseDepth ? 0 : F;
}
} // namespace detail

/// True iff the timing layer is active (and this thread is not paused).
inline bool timingEnabled() { return detail::flags() & 1; }

/// True iff the journal layer is active (and this thread is not paused).
inline bool journalEnabled() { return detail::flags() & 2; }

/// True iff any recorder layer is active.
inline bool enabled() { return detail::flags() != 0; }

/// (Re)configures the recorder explicitly, overriding the environment, and
/// clears the journal buffer (a fresh recording session).
void configure(const Options &O);

/// Reads GILR_TIMING / GILR_JOURNAL and configures accordingly. Called
/// implicitly on the first enabled-check; explicit calls re-read the
/// environment.
void configureFromEnv();

/// Disables both layers and clears the journal buffer (for tests).
void reset();

/// RAII provenance marker: queries issued on this thread while the scope is
/// open are attributed to obligation \p Name on side \p Side ('U' Gillian/
/// unsafe, 'S' Creusot/safe, 'L' analysis lint). Scopes nest; the inner
/// scope wins and the outer numbering resumes on restore.
class ObligationScope {
public:
  ObligationScope(std::string Name, char Side);
  ~ObligationScope();

  ObligationScope(const ObligationScope &) = delete;
  ObligationScope &operator=(const ObligationScope &) = delete;

private:
  std::string PrevName;
  char PrevSide;
  uint32_t PrevNextIdx;
};

/// RAII recorder suppression for the current thread. The replay tool runs
/// logged queries under a Pause so the replay itself is neither timed nor
/// re-journaled.
class Pause {
public:
  Pause() { ++detail::PauseDepth; }
  ~Pause() { --detail::PauseDepth; }
  Pause(const Pause &) = delete;
  Pause &operator=(const Pause &) = delete;
};

/// Journals a \c cached record: obligation \p Name on side \p Side was
/// short-circuited by the incremental proof store with verdict \p Ok — no
/// solver queries ran. No-op when journaling is off.
void noteCachedObligation(const std::string &Name, char Side, bool Ok);

/// The timing decorator. Records duration, provenance and outcome of every
/// query into the metrics registry's SolverQueriesReport.
class TimingSolver final : public SolverLayer {
public:
  explicit TimingSolver(SolverLayer &Next) : Next(Next) {}
  ChainOutcome solve(const ChainQuery &Q) override;

private:
  SolverLayer &Next;
};

/// The journal decorator. Must sit directly above a TimingSolver (it reads
/// the provenance and duration that layer recorded for the same query).
class QueryJournalSolver final : public SolverLayer {
public:
  explicit QueryJournalSolver(SolverLayer &Next) : Next(Next) {}
  ChainOutcome solve(const ChainQuery &Q) override;

private:
  SolverLayer &Next;
};

/// Renders the buffered journal (header + deterministically ordered
/// records).
std::string journalText();

/// Number of buffered journal records / records dropped at the buffer cap.
uint64_t journalRecordCount();
uint64_t journalDroppedCount();

/// Writes the journal to the configured file (no-op returning true when no
/// file is configured). Registered atexit when GILR_JOURNAL is set.
bool flushJournal();

} // namespace flight
} // namespace gilr

#endif // GILR_SOLVER_FLIGHT_H
