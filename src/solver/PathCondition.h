//===- solver/PathCondition.h - Symbolic path conditions -------------------===//
///
/// \file
/// The path condition pi of a symbolic execution configuration (sigma, pi):
/// a conjunction of first-order facts constraining the symbolic variables
/// (§2.3). Observations (§5.2) reuse this representation as a second layer
/// of truth over prophecy variables.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_PATHCONDITION_H
#define GILR_SOLVER_PATHCONDITION_H

#include "solver/Solver.h"
#include "sym/Expr.h"

#include <map>
#include <string>
#include <vector>

namespace gilr {

/// An append-only conjunction of boolean facts.
class PathCondition {
public:
  PathCondition() = default;

  /// Conjoins \p Fact (simplified; conjunctions are flattened). Returns
  /// false if the path condition became syntactically false.
  bool add(const Expr &Fact);

  /// True if the literal false has been recorded.
  bool isTriviallyFalse() const { return TriviallyFalse; }

  const std::vector<Expr> &facts() const { return Facts; }

  /// Whether \p S proves this path condition inconsistent.
  bool isUnsat(Solver &S) const;

  /// Whether the facts entail \p Goal under \p S.
  bool entails(Solver &S, const Expr &Goal) const;

  std::size_t size() const { return Facts.size(); }

private:
  std::vector<Expr> Facts;
  bool TriviallyFalse = false;
  /// Positive-entailment cache: facts are append-only, so a goal proven
  /// from a prefix of the facts stays proven (monotonicity). Negative
  /// results are cached per fact count. Mutable: caching is semantically
  /// transparent.
  mutable std::map<std::string, std::size_t> ProvenAt;
  mutable std::map<std::string, std::size_t> RefutedAt;
};

} // namespace gilr

#endif // GILR_SOLVER_PATHCONDITION_H
