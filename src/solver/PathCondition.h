//===- solver/PathCondition.h - Symbolic path conditions -------------------===//
///
/// \file
/// The path condition pi of a symbolic execution configuration (sigma, pi):
/// a conjunction of first-order facts constraining the symbolic variables
/// (§2.3). Observations (§5.2) reuse this representation as a second layer
/// of truth over prophecy variables.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_PATHCONDITION_H
#define GILR_SOLVER_PATHCONDITION_H

#include "solver/Solver.h"
#include "sym/Expr.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gilr {

/// An append-only conjunction of boolean facts.
class PathCondition {
public:
  PathCondition() = default;

  /// Conjoins \p Fact (simplified; conjunctions are flattened). Returns
  /// false if the path condition became syntactically false.
  bool add(const Expr &Fact);

  /// True if the literal false has been recorded.
  bool isTriviallyFalse() const { return TriviallyFalse; }

  const std::vector<Expr> &facts() const { return Facts; }

  /// Whether \p S proves this path condition inconsistent.
  bool isUnsat(Solver &S) const;

  /// Whether the facts entail \p Goal under \p S.
  bool entails(Solver &S, const Expr &Goal) const;

  std::size_t size() const { return Facts.size(); }

private:
  std::vector<Expr> Facts;
  /// Intern CanonIds of the recorded facts, for O(1) duplicate detection in
  /// \c add. Foreign (un-interned) facts are absent and fall back to the
  /// linear scan.
  std::unordered_set<uint64_t> FactIds;
  bool TriviallyFalse = false;
  /// Positive-entailment cache keyed by the goal's intern CanonId (foreign
  /// goals are never cached): facts are append-only, so a goal proven from
  /// a prefix of the facts stays proven (monotonicity). Negative results
  /// are cached per fact count. Mutable: caching is semantically
  /// transparent.
  mutable std::unordered_map<uint64_t, std::size_t> ProvenAt;
  mutable std::unordered_map<uint64_t, std::size_t> RefutedAt;
};

} // namespace gilr

#endif // GILR_SOLVER_PATHCONDITION_H
