//===- solver/LinArith.h - Linear arithmetic via Fourier–Motzkin ----------===//
///
/// \file
/// The arithmetic backend of the SMT-lite solver: linearises integer/rational
/// atoms (treating non-linear subterms as opaque variables identified up to
/// congruence) and decides conjunctions of linear constraints by
/// Fourier–Motzkin elimination. Integer-typed strict inequalities are
/// tightened (a < b becomes a <= b - 1) so that the common overflow-bound
/// obligations of the case studies are decided exactly.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_LINARITH_H
#define GILR_SOLVER_LINARITH_H

#include "solver/Congruence.h"
#include "sym/Expr.h"

#include <map>
#include <vector>

namespace gilr {

/// A linear constraint: sum(Coeffs[v] * v) + Const >= 0 (or > 0 if Strict).
/// Variables are congruence-class ids (Congruence::canonClass), so terms
/// equal up to congruence share a variable; ids are dense per-query ints,
/// deterministic in registration order.
struct LinConstraint {
  std::map<int, Rational> Coeffs;
  Rational Const = Rational::fromInt(0);
  bool Strict = false;
  bool AllInt = true; ///< All atoms are integer-sorted (enables tightening).
};

/// A linear combination of opaque variables, the result of linearisation.
struct LinTerm {
  std::map<int, Rational> Coeffs;
  Rational Const = Rational::fromInt(0);
  bool AllInt = true;
};

/// Accumulates linear constraints and decides feasibility.
class LinArith {
public:
  /// \p Cong provides canonical class ids for opaque subterms, so terms
  /// equal up to congruence share a variable.
  explicit LinArith(Congruence &Cong) : Cong(Cong) {}

  /// Linearises \p E into a LinTerm (over Int or Real).
  LinTerm linearize(const Expr &E);

  /// Adds the arithmetic content of atom \p A (with polarity \p Positive).
  /// Non-arithmetic atoms are ignored. Equalities add two inequalities;
  /// negated equalities are NOT handled here (the solver splits on them).
  void addAtom(const Expr &A, bool Positive);

  /// Adds the constraint lhs >= 0 (or > 0).
  void addConstraint(LinTerm T, bool Strict);

  /// Runs Fourier–Motzkin elimination. Returns false if the constraint set
  /// is definitely infeasible; true otherwise. \p Definite is set to false
  /// if the engine gave up (size blow-up), in which case "true" means
  /// "unknown".
  bool feasible(bool &Definite);

  std::size_t numConstraints() const { return Constraints.size(); }

private:
  Congruence &Cong;
  std::vector<LinConstraint> Constraints;
};

} // namespace gilr

#endif // GILR_SOLVER_LINARITH_H
