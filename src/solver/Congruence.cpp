//===- solver/Congruence.cpp ------------------------------------------------===//

#include "solver/Congruence.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"
#include "solver/SeqTheory.h"

#include <cassert>
#include <map>
#include <vector>

using namespace gilr;

int Congruence::registerTerm(const Expr &E) {
  assert(E && "registering null term");
  auto It = TermIds.find(E);
  if (It != TermIds.end())
    return It->second;
  // Register children first so that ids exist for the signature pass.
  for (const Expr &Kid : E->Kids)
    registerTerm(Kid);
  int Id = static_cast<int>(Nodes.size());
  Nodes.push_back({E, Id, 1});
  TermIds.emplace(E, Id);
  if (isConstructorLike(E))
    Witness[Id] = Id;
  return Id;
}

bool Congruence::isConstructorLike(const Expr &E) const {
  switch (E->Kind) {
  case ExprKind::IntLit:
  case ExprKind::RealLit:
  case ExprKind::BoolLit:
  case ExprKind::LocLit:
  case ExprKind::UnitLit:
  case ExprKind::NoneLit:
  case ExprKind::Some:
  case ExprKind::SeqNil:
  case ExprKind::SeqUnit:
  case ExprKind::TupleLit:
    return true;
  case ExprKind::SeqConcat: {
    __int128 Len;
    return getStaticSeqLen(E, Len);
  }
  default:
    return false;
  }
}

int Congruence::constructorCompat(const Expr &A, const Expr &B) const {
  if (A->Kind == B->Kind) {
    switch (A->Kind) {
    case ExprKind::IntLit:
      return A->IntVal == B->IntVal ? 1 : -1;
    case ExprKind::RealLit:
      return A->RatVal == B->RatVal ? 1 : -1;
    case ExprKind::BoolLit:
      return A->BoolVal == B->BoolVal ? 1 : -1;
    case ExprKind::LocLit:
      return A->LocId == B->LocId ? 1 : -1;
    case ExprKind::UnitLit:
    case ExprKind::NoneLit:
    case ExprKind::SeqNil:
      return 1;
    case ExprKind::Some:
    case ExprKind::SeqUnit:
      return 0; // Decompose kids.
    case ExprKind::TupleLit:
      return A->Kids.size() == B->Kids.size() ? 0 : -1;
    case ExprKind::SeqConcat:
      return 2; // Unknown relationship beyond lengths.
    default:
      return 2;
    }
  }
  // Different kinds. Option constructors clash; sequence constructors clash
  // when static lengths differ.
  auto isOpt = [](ExprKind K) {
    return K == ExprKind::NoneLit || K == ExprKind::Some;
  };
  if (isOpt(A->Kind) && isOpt(B->Kind))
    return -1;
  auto isSeq = [](ExprKind K) {
    return K == ExprKind::SeqNil || K == ExprKind::SeqUnit ||
           K == ExprKind::SeqConcat;
  };
  if (isSeq(A->Kind) && isSeq(B->Kind)) {
    __int128 LA, LB;
    if (getStaticSeqLen(A, LA) && getStaticSeqLen(B, LB) && LA != LB)
      return -1;
    return 2;
  }
  // Literals of incomparable kinds: sorts would have to differ; treat as
  // unknown rather than claiming a clash.
  return 2;
}

uint64_t Congruence::nameSymbol(const ExprNode &N) {
  if (N.Name.empty())
    return 0;
  if (N.NameSym != 0)
    return N.NameSym;
  auto [It, Inserted] =
      LocalNameIds.emplace(N.Name, 0);
  if (Inserted)
    It->second = (uint64_t(1) << 63) | LocalNameIds.size();
  return It->second;
}

int Congruence::find(int I) {
  while (Nodes[I].Parent != I) {
    Nodes[I].Parent = Nodes[Nodes[I].Parent].Parent;
    I = Nodes[I].Parent;
  }
  return I;
}

bool Congruence::merge(int A, int B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return true;
  auto WA = Witness.find(A);
  auto WB = Witness.find(B);
  if (WA != Witness.end() && WB != Witness.end()) {
    const Expr &TA = Nodes[WA->second].Term;
    const Expr &TB = Nodes[WB->second].Term;
    int Compat = constructorCompat(TA, TB);
    if (Compat == -1) {
      Conflict = true;
      return false;
    }
    if (Compat == 0) {
      assert(TA->Kids.size() == TB->Kids.size() && "decomposition arity");
      for (std::size_t I = 0, E = TA->Kids.size(); I != E; ++I)
        Pending.push_back(
            {registerTerm(TA->Kids[I]), registerTerm(TB->Kids[I])});
    }
  }
  if (Nodes[A].Size < Nodes[B].Size)
    std::swap(A, B);
  Nodes[B].Parent = A;
  Nodes[A].Size += Nodes[B].Size;
  // Prefer a literal witness; otherwise keep whichever exists.
  if (WB != Witness.end()) {
    auto preferable = [this](int WId, int Against) {
      const Expr &T = Nodes[WId].Term;
      if (Against == -1)
        return true;
      const Expr &O = Nodes[Against].Term;
      bool TLit = T->Kids.empty();
      bool OLit = O->Kids.empty();
      return TLit && !OLit;
    };
    int Existing = Witness.count(A) ? Witness[A] : -1;
    if (preferable(WB->second, Existing))
      Witness[A] = WB->second;
  }
  return true;
}

bool Congruence::addEquality(const Expr &A, const Expr &B) {
  queueEquality(A, B);
  return saturate();
}

void Congruence::queueEquality(const Expr &A, const Expr &B) {
  int IA = registerTerm(A);
  int IB = registerTerm(B);
  Pending.push_back({IA, IB});
}

void Congruence::addDisequality(const Expr &A, const Expr &B) {
  Disequalities.push_back({registerTerm(A), registerTerm(B)});
}

bool Congruence::saturate() {
  if (Conflict)
    return false;
  const int MaxRounds = 200;
  for (int Round = 0; Round != MaxRounds; ++Round) {
    // 1. Drain pending merges.
    bool Merged = false;
    while (!Pending.empty()) {
      auto [A, B] = Pending.back();
      Pending.pop_back();
      if (find(A) != find(B)) {
        Merged = true;
        if (!merge(A, B))
          return false;
      }
    }

    // 2. Congruence pass: identical signatures over representatives merge.
    // Signatures are integer vectors (kind, payload, name symbol, kid
    // representatives) — exact keys, no hashing shortcuts (a collision
    // would merge unequal terms and be unsound). Names use the global
    // interned symbol id (sym/Intern.h); symbol *values* are racy across
    // runs but only ever compared for equality here, so the merge outcome
    // stays deterministic.
    std::map<std::vector<uint64_t>, int> Signatures;
    std::size_t NumNodes = Nodes.size();
    for (std::size_t I = 0; I != NumNodes; ++I) {
      const Expr &T = Nodes[I].Term;
      if (T->Kids.empty())
        continue;
      std::vector<uint64_t> Sig;
      Sig.reserve(T->Kids.size() + 3);
      Sig.push_back(static_cast<uint64_t>(T->Kind));
      Sig.push_back(static_cast<uint64_t>(T->Index));
      Sig.push_back(nameSymbol(*T));
      for (const Expr &Kid : T->Kids)
        Sig.push_back(static_cast<uint64_t>(find(TermIds.at(Kid))));
      auto [It, Inserted] =
          Signatures.emplace(std::move(Sig), static_cast<int>(I));
      if (!Inserted && find(It->second) != find(static_cast<int>(I)))
        Pending.push_back({It->second, static_cast<int>(I)});
    }

    // 3. Projection pass: evaluate selectors against class witnesses.
    std::vector<std::pair<Expr, Expr>> NewEqs;
    for (std::size_t I = 0; I != NumNodes; ++I) {
      const Expr &T = Nodes[I].Term;
      switch (T->Kind) {
      case ExprKind::Unwrap: {
        Expr W = witness(T->Kids[0]);
        if (W && W->Kind == ExprKind::Some)
          NewEqs.push_back({T, W->Kids[0]});
        break;
      }
      case ExprKind::IsSome: {
        Expr W = witness(T->Kids[0]);
        if (W && W->Kind == ExprKind::Some)
          NewEqs.push_back({T, mkTrue()});
        else if (W && W->Kind == ExprKind::NoneLit)
          NewEqs.push_back({T, mkFalse()});
        break;
      }
      case ExprKind::TupleGet: {
        Expr W = witness(T->Kids[0]);
        if (W && W->Kind == ExprKind::TupleLit && T->Index < W->Kids.size())
          NewEqs.push_back({T, W->Kids[T->Index]});
        break;
      }
      case ExprKind::SeqLen: {
        Expr W = witness(T->Kids[0]);
        __int128 Len;
        if (W && getStaticSeqLen(W, Len))
          NewEqs.push_back({T, mkInt(Len)});
        break;
      }
      case ExprKind::SeqConcat: {
        // Associativity up to congruence: replace kids by sequence-shaped
        // class members and let the builder re-flatten; merging the term
        // with the flattened form lets concat(a, b) meet concat(a, c, d)
        // when b ~ concat(c, d).
        bool Changed = false;
        std::vector<Expr> NewKids;
        NewKids.reserve(T->Kids.size());
        for (const Expr &Kid : T->Kids) {
          Expr W = seqShapeWitness(Kid);
          if (W && !exprEquals(W, Kid)) {
            NewKids.push_back(W);
            Changed = true;
          } else {
            NewKids.push_back(Kid);
          }
        }
        if (Changed)
          NewEqs.push_back({T, mkSeqConcat(std::move(NewKids))});
        break;
      }
      case ExprKind::SeqNth: {
        Expr W = witness(T->Kids[0]);
        __int128 Idx;
        if (W && getIntLit(T->Kids[1], Idx)) {
          Expr Folded = mkSeqNth(W, T->Kids[1]);
          if (Folded->Kind != ExprKind::SeqNth)
            NewEqs.push_back({T, Folded});
        }
        break;
      }
      default:
        break;
      }
    }
    for (auto &[A, B] : NewEqs)
      Pending.push_back({registerTerm(A), registerTerm(B)});

    if (Pending.empty() && !Merged)
      break;
  }
  return !Conflict;
}

bool Congruence::hasSeqLengthConflict() {
  // A class with a statically-sized sequence witness cannot contain a
  // member whose static minimum length exceeds it (e.g. [] vs x :: s).
  std::map<int, __int128> StaticLen;
  for (std::size_t I = 0, N = Nodes.size(); I != N; ++I) {
    const Expr &T = Nodes[I].Term;
    __int128 Len;
    if ((T->Kind == ExprKind::SeqNil || T->Kind == ExprKind::SeqUnit ||
         T->Kind == ExprKind::SeqConcat) &&
        getStaticSeqLen(T, Len)) {
      int Rep = find(static_cast<int>(I));
      auto [It, Inserted] = StaticLen.emplace(Rep, Len);
      if (!Inserted && It->second != Len)
        return true; // Two different static lengths in one class.
    }
  }
  for (std::size_t I = 0, N = Nodes.size(); I != N; ++I) {
    const Expr &T = Nodes[I].Term;
    if (T->Kind != ExprKind::SeqConcat && T->Kind != ExprKind::SeqUnit)
      continue;
    auto It = StaticLen.find(find(static_cast<int>(I)));
    if (It != StaticLen.end() && minStaticSeqLen(T) > It->second)
      return true;
  }
  return false;
}

bool Congruence::hasDisequalityConflict() {
  for (auto &[A, B] : Disequalities)
    if (find(A) == find(B))
      return true;
  // A disequality between two classes with clashing constructor witnesses is
  // fine; what we must also catch is a disequality whose two sides have the
  // *same* literal witness value even if classes were not merged: covered by
  // the congruence/witness merge above, since equal literals share a node.
  return false;
}

bool Congruence::provedEqual(const Expr &A, const Expr &B) {
  int IA = registerTerm(A);
  int IB = registerTerm(B);
  saturate();
  return find(IA) == find(IB);
}

Expr Congruence::seqShapeWitness(const Expr &E) {
  auto It = TermIds.find(E);
  if (It == TermIds.end())
    return nullptr;
  int Rep = find(It->second);
  for (std::size_t I = 0, N = Nodes.size(); I != N; ++I) {
    ExprKind K = Nodes[I].Term->Kind;
    if ((K == ExprKind::SeqConcat || K == ExprKind::SeqUnit ||
         K == ExprKind::SeqNil) &&
        find(static_cast<int>(I)) == Rep)
      return Nodes[I].Term;
  }
  return nullptr;
}

Expr Congruence::witness(const Expr &E) {
  auto It = TermIds.find(E);
  if (It == TermIds.end())
    return nullptr;
  int Rep = find(It->second);
  auto WIt = Witness.find(Rep);
  // Witness entries may be keyed by stale representatives after merges;
  // search members lazily if missing.
  if (WIt != Witness.end())
    return Nodes[WIt->second].Term;
  for (std::size_t I = 0, N = Nodes.size(); I != N; ++I) {
    if (find(static_cast<int>(I)) == Rep &&
        isConstructorLike(Nodes[I].Term)) {
      Witness[Rep] = static_cast<int>(I);
      return Nodes[I].Term;
    }
  }
  return nullptr;
}

int Congruence::canonClass(const Expr &E) {
  int Id = registerTerm(E);
  if (!Pending.empty())
    saturate();
  // No separate key space for literal witnesses: an interned literal is a
  // single registered term, so the class holding it is already unique.
  return find(Id);
}

std::vector<Expr> Congruence::classReps() {
  std::vector<Expr> Reps;
  for (std::size_t I = 0, N = Nodes.size(); I != N; ++I)
    if (find(static_cast<int>(I)) == static_cast<int>(I))
      Reps.push_back(Nodes[I].Term);
  return Reps;
}
