//===- solver/Journal.h - Solver query journal format ----------------------===//
///
/// \file
/// The on-disk format of the proof flight recorder's query journal and its
/// parser. A journal is a line-oriented append log:
///
///   GILRJRN1
///   (query :ob |list::push| :side U :idx 0 :pc 12 :cached f :verdict unsat
///          :ns 183204 :branches 14 :theory 9 :budget 50000
///          :fp a3f... :fp2 90c... (assert (= (v |x| Int) 1)) ...)
///   (cached :ob |list::pop| :side S :verdict ok)
///
/// One s-expression record per line. \c query records carry the full
/// simplified assertion set in a stable SMT-LIB-flavoured text grammar
/// (exprToJournal) so an offline tool can reconstruct the exact query and
/// re-run it (solver/Replay.h). \c cached records mark obligations whose
/// verdicts the incremental proof store replayed without issuing any solver
/// queries — they are part of the proof's history even though no query ran.
///
/// The grammar is bijective on simplified expressions: parse(render(E)) is
/// exprEquals-equal to E. Symbol names are |…|-quoted, with backslash
/// escapes for '|' and the backslash itself, so arbitrary names round-trip.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_JOURNAL_H
#define GILR_SOLVER_JOURNAL_H

#include "sym/Expr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gilr {
namespace journal {

/// Magic first line of every journal file; bump on format change.
inline const char *journalMagic() { return "GILRJRN1"; }

/// One journal record. \c Kind selects which fields are meaningful.
struct Record {
  enum class Kind : uint8_t {
    Query,  ///< A checkSat query that travelled the solver chain.
    Cached, ///< An obligation replayed wholesale by the incremental store.
  };

  Kind RecKind = Kind::Query;

  // Provenance (both kinds).
  std::string Obligation; ///< Enclosing obligation name ("" if none).
  char Side = '?';        ///< 'U' unsafe/Gillian, 'S' safe/Creusot, 'L' lint.

  // Query records.
  uint32_t QueryIdx = 0;  ///< Ordinal of the query within its obligation.
  uint32_t PcSize = 0;    ///< Assertion count (path-condition size).
  bool CacheHit = false;  ///< Served by the query memo, not searched.
  uint8_t Verdict = 2;    ///< 0 Sat, 1 Unsat, 2 Unknown.
  uint64_t DurationNs = 0;
  uint64_t Branches = 0;
  uint64_t TheoryChecks = 0;
  uint32_t MaxBranches = 0; ///< DPLL budget the query ran under.
  uint64_t Fp = 0;  ///< Process-stable query fingerprint.
  uint64_t Fp2 = 0; ///< Independent check hash of the same query.
  std::vector<Expr> Assertions;

  // Cached records.
  bool CachedOk = false; ///< The replayed verdict (proof held / failed).
};

/// Renders \p E in the journal expression grammar.
std::string exprToJournal(const Expr &E);

/// Parses one expression in the journal grammar. Returns nullptr and sets
/// \p Err on malformed input.
Expr exprFromJournal(const std::string &Text, std::string *Err = nullptr);

/// Renders \p R as a single journal line (no trailing newline).
std::string renderRecord(const Record &R);

/// A parsed journal: records in file order plus any per-line errors.
/// Malformed lines are skipped, not fatal — a journal from a crashed run
/// may end mid-line.
struct ParsedJournal {
  bool HeaderOk = false;
  std::string HeaderError;
  std::vector<Record> Records;
  std::vector<std::string> Errors; ///< "line N: why" diagnostics.
};

/// Parses a full journal file's text.
ParsedJournal parseJournal(const std::string &Text);

/// Parses a (possibly negative) decimal literal into a 128-bit integer.
bool parseInt128(const std::string &S, __int128 &Out);

} // namespace journal
} // namespace gilr

#endif // GILR_SOLVER_JOURNAL_H
