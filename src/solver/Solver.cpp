//===- solver/Solver.cpp -----------------------------------------------------===//

#include "solver/Solver.h"

#include "solver/Congruence.h"
#include "solver/Flight.h"
#include "solver/LinArith.h"
#include "solver/Simplify.h"
#include "support/Budget.h"
#include "support/StringUtils.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>

using namespace gilr;

namespace {

/// The process-wide counters (shared by every Solver instance).
SolverStats &gstats() { return metrics::solverStats(); }

/// Bumps a counter in both the process-wide and the thread-local stats; the
/// latter attributes the work to the proof job on this worker thread.
void bump(RelaxedCounter SolverStats::*F) {
  ++(gstats().*F);
  ++(metrics::threadSolverStats().*F);
}

/// The process-wide query memo (installed by the scheduler; see
/// sched/QueryCache.h). Relaxed is fine: installation happens-before the
/// worker threads start via the pool's synchronisation.
std::atomic<QueryMemo *> ActiveMemo{nullptr};

/// splitmix64 finaliser: decorrelates the check hash from the primary one.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// The memo identity of one assertion: its intern CanonId (equal formulas
/// share one per run), or its structural hash with the top bit set when the
/// node is foreign (interning disabled for benchmarking).
uint64_t assertionFpId(const Expr &E) {
  if (E->CanonId != 0)
    return E->CanonId;
  return static_cast<uint64_t>(E->hash()) | (uint64_t(1) << 63);
}

/// Order-insensitive structural fingerprint of an entails query. Used to
/// count syntactically-identical repeat queries — the hit rate a syntactic
/// memo would achieve.
uint64_t entailFingerprint(const std::vector<Expr> &Ctx, const Expr &Goal) {
  std::vector<uint64_t> Ids;
  Ids.reserve(Ctx.size());
  for (const Expr &A : Ctx)
    Ids.push_back(assertionFpId(A));
  std::sort(Ids.begin(), Ids.end()); // Context order is irrelevant.
  std::size_t Seed = 0x5eed;
  for (uint64_t Id : Ids)
    hashCombine(Seed, static_cast<std::size_t>(Id));
  hashCombine(Seed, Ctx.size());
  hashCombine(Seed, static_cast<std::size_t>(assertionFpId(Goal)));
  return static_cast<uint64_t>(Seed);
}

} // namespace

void gilr::satFingerprintFromIds(const std::vector<uint64_t> &SortedIds,
                                 unsigned MaxBranches, uint64_t &Fp,
                                 uint64_t &Fp2) {
  std::size_t Seed = 0x5a7f;
  uint64_t Seed2 = 0xa5f0'0d5eull;
  for (uint64_t Id : SortedIds) {
    hashCombine(Seed, static_cast<std::size_t>(Id));
    Seed2 = mix64(Seed2 ^ Id);
  }
  hashCombine(Seed, SortedIds.size());
  hashCombine(Seed, MaxBranches);
  Fp = static_cast<uint64_t>(Seed);
  Fp2 = mix64(Seed2 ^ (static_cast<uint64_t>(SortedIds.size()) << 32) ^
              MaxBranches);
}

void gilr::satQueryFingerprint(const std::vector<Expr> &Work,
                               unsigned MaxBranches, uint64_t &Fp,
                               uint64_t &Fp2) {
  std::vector<uint64_t> Ids;
  Ids.reserve(Work.size());
  for (const Expr &A : Work)
    Ids.push_back(assertionFpId(A));
  std::sort(Ids.begin(), Ids.end()); // Assertion order is irrelevant.
  satFingerprintFromIds(Ids, MaxBranches, Fp, Fp2);
}

void gilr::stableQueryFingerprint(const std::vector<Expr> &Work,
                                  unsigned MaxBranches, uint64_t &Fp,
                                  uint64_t &Fp2) {
  std::vector<uint64_t> Ids;
  Ids.reserve(Work.size());
  for (const Expr &A : Work)
    Ids.push_back(exprStableHash(A));
  std::sort(Ids.begin(), Ids.end()); // Assertion order is irrelevant.
  satFingerprintFromIds(Ids, MaxBranches, Fp, Fp2);
}

QueryMemo *gilr::setQueryMemo(QueryMemo *M) {
  return ActiveMemo.exchange(M);
}

QueryMemo *gilr::queryMemo() {
  return ActiveMemo.load(std::memory_order_relaxed);
}

void ChainQuery::stableFingerprint(uint64_t &Fp, uint64_t &Fp2) const {
  if (!StableFpReady) {
    stableQueryFingerprint(Work, MaxBranches, StableFp, StableFp2);
    StableFpReady = true;
  }
  Fp = StableFp;
  Fp2 = StableFp2;
}

namespace gilr {

/// The innermost chain layer: the DPLL(T) search itself, with the latency
/// histogram sample the pre-chain code recorded (full searches only, while
/// tracing is on).
class CoreSolverLayer final : public SolverLayer {
public:
  explicit CoreSolverLayer(Solver &S) : S(S) {}

  ChainOutcome solve(const ChainQuery &Q) override {
    uint64_t T0 = trace::enabled() ? trace::nowNs() : 0;
    SolverStats TBefore = metrics::threadSolverStats();
    unsigned Budget = Q.MaxBranches;
    std::vector<Expr> Work = Q.Work;
    ChainOutcome O;
    O.R = S.solveRec(std::move(Work), {}, 0, Budget);
    if (O.R == SatResult::Unknown) {
      bump(&SolverStats::UnknownResults);
      trace::instant("solver", "unknown");
    }
    SolverStats Delta = metrics::threadSolverStats() - TBefore;
    O.Branches = Delta.Branches;
    O.TheoryChecks = Delta.TheoryChecks;
    if (T0)
      metrics::Registry::get().recordSolverLatencyNs(trace::nowNs() - T0);
    return O;
  }

private:
  Solver &S;
};

} // namespace gilr

namespace {

/// The memo layer: consults the process-wide QueryMemo (the scheduler's
/// QueryCache) before delegating to the core search. Only Sat/Unsat are
/// ever stored, so a hit returns exactly what the search would compute; the
/// memoised work delta is replayed into the thread-local job stats to keep
/// per-job reports independent of cache state.
class MemoSolverLayer final : public SolverLayer {
public:
  MemoSolverLayer(QueryMemo *Memo, SolverLayer &Next)
      : Memo(Memo), Next(Next) {}

  ChainOutcome solve(const ChainQuery &Q) override {
    if (!Memo)
      return Next.solve(Q);
    uint64_t Fp = 0, Fp2 = 0;
    if (Memo->wantsStableKeys())
      Q.stableFingerprint(Fp, Fp2);
    else
      satQueryFingerprint(Q.Work, Q.MaxBranches, Fp, Fp2);
    QueryVerdict V;
    if (Memo->lookup(Fp, Fp2, V)) {
      SolverStats &TS = metrics::threadSolverStats();
      TS.Branches += V.Branches;
      TS.TheoryChecks += V.TheoryChecks;
      trace::instant("solver", "cache-hit");
      ChainOutcome O;
      O.R = V.R;
      O.CacheHit = true;
      O.Branches = V.Branches;
      O.TheoryChecks = V.TheoryChecks;
      return O;
    }
    ChainOutcome O = Next.solve(Q);
    if (O.R != SatResult::Unknown)
      Memo->insert(Fp, Fp2, QueryVerdict{O.R, O.Branches, O.TheoryChecks});
    return O;
  }

private:
  QueryMemo *Memo;
  SolverLayer &Next;
};

} // namespace

//===----------------------------------------------------------------------===//
// Query entry points
//===----------------------------------------------------------------------===//

SatResult Solver::checkSat(const std::vector<Expr> &Assertions) {
  bump(&SolverStats::SatQueries);
  GILR_TRACE_SCOPE("solver", "checkSat");
  std::vector<Expr> Work;
  Work.reserve(Assertions.size());
  for (const Expr &A : Assertions)
    Work.push_back(simplify(A));

  ChainQuery Q{Work, MaxBranches};
  CoreSolverLayer Core(*this);
  MemoSolverLayer Memo(queryMemo(), Core);
  // The flight recorder stacks its timing/journal decorators above the memo
  // when enabled; otherwise Top is the memo layer and the only extra cost
  // of the chain is one virtual dispatch.
  flight::TimingSolver Timing(Memo);
  flight::QueryJournalSolver Journal(Timing);
  SolverLayer *Top = &Memo;
  if (flight::timingEnabled())
    Top = flight::journalEnabled() ? static_cast<SolverLayer *>(&Journal)
                                   : &Timing;
  return Top->solve(Q).R;
}

bool Solver::entails(const std::vector<Expr> &Ctx, const Expr &Goal) {
  bump(&SolverStats::EntailQueries);
  // Count would-be memo hits (the fingerprint set allocates, so only while
  // telemetry is collecting).
  if (trace::enabled() &&
      metrics::Registry::get().noteEntailFingerprint(
          entailFingerprint(Ctx, Goal)))
    trace::instant("solver", "entails-repeat");
  GILR_TRACE_SCOPE("solver", "entails");
  Expr G = simplify(Goal);
  if (isTrueLit(G))
    return true;
  std::vector<Expr> Assertions = Ctx;
  Assertions.push_back(negate(G));
  return checkSat(Assertions) == SatResult::Unsat;
}

bool Solver::entailsAll(const std::vector<Expr> &Ctx,
                        const std::vector<Expr> &Goals) {
  for (const Expr &G : Goals)
    if (!entails(Ctx, G))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// DPLL-style boolean search
//===----------------------------------------------------------------------===//

static bool isBoolStructural(const Expr &E) {
  switch (E->Kind) {
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Implies:
  case ExprKind::Not:
  case ExprKind::BoolLit:
  case ExprKind::Lt:
  case ExprKind::Le:
    return true;
  case ExprKind::Ite:
    // An Ite is a formula only when its branches are formulas; integer
    // Ites (e.g. discriminant reads) are terms.
    return E->NodeSort == Sort::Bool;
  default:
    return false;
  }
}

static bool isBoolSorted(const Expr &E) {
  return E->NodeSort == Sort::Bool || isBoolStructural(E) ||
         E->Kind == ExprKind::IsSome || E->Kind == ExprKind::LftIncl;
}

SatResult Solver::solveRec(std::vector<Expr> Work, std::vector<Literal> Lits,
                           unsigned Depth, unsigned &Budget) {
  if (Budget == 0 || Depth > 256)
    return SatResult::Unknown;
  // The job budget (armed by the scheduler) degrades to Unknown — which
  // fails entailments, the sound direction — instead of stalling a worker.
  if (budget::exceeded())
    return SatResult::Unknown;

  while (!Work.empty()) {
    Expr F = Work.back();
    Work.pop_back();
    switch (F->Kind) {
    case ExprKind::BoolLit:
      if (!F->BoolVal)
        return SatResult::Unsat;
      continue;
    case ExprKind::And:
      for (const Expr &Kid : F->Kids)
        Work.push_back(Kid);
      continue;
    case ExprKind::Or: {
      bool AnyUnknown = false;
      for (const Expr &Kid : F->Kids) {
        if (Budget == 0)
          return SatResult::Unknown;
        --Budget;
        bump(&SolverStats::Branches);
        std::vector<Expr> BranchWork = Work;
        BranchWork.push_back(Kid);
        SatResult R = solveRec(std::move(BranchWork), Lits, Depth + 1, Budget);
        if (R == SatResult::Sat)
          return SatResult::Sat;
        if (R == SatResult::Unknown)
          AnyUnknown = true;
      }
      return AnyUnknown ? SatResult::Unknown : SatResult::Unsat;
    }
    case ExprKind::Not: {
      const Expr &Inner = F->Kids[0];
      if (isBoolStructural(Inner)) {
        Work.push_back(negate(Inner));
        continue;
      }
      // A negated iff splits: not (a <-> b) = (a /\ not b) \/ (not a /\ b).
      if (Inner->Kind == ExprKind::Eq &&
          (isBoolSorted(Inner->Kids[0]) || isBoolSorted(Inner->Kids[1]))) {
        Work.push_back(
            mkOr(mkAnd(Inner->Kids[0], negate(Inner->Kids[1])),
                 mkAnd(negate(Inner->Kids[0]), Inner->Kids[1])));
        continue;
      }
      Lits.push_back({Inner, false});
      continue;
    }
    case ExprKind::Implies:
      Work.push_back(mkOr(negate(F->Kids[0]), F->Kids[1]));
      continue;
    case ExprKind::Ite:
      Work.push_back(mkOr(mkAnd(F->Kids[0], F->Kids[1]),
                          mkAnd(negate(F->Kids[0]), F->Kids[2])));
      continue;
    case ExprKind::Eq: {
      // Iff over boolean operands: split.
      if (isBoolSorted(F->Kids[0]) || isBoolSorted(F->Kids[1])) {
        Work.push_back(mkOr(mkAnd(F->Kids[0], F->Kids[1]),
                            mkAnd(negate(F->Kids[0]), negate(F->Kids[1]))));
        continue;
      }
      Lits.push_back({F, true});
      continue;
    }
    default:
      Lits.push_back({F, true});
      continue;
    }
  }

  // Ite remaining in term positions: split on its condition.
  for (const Literal &Lit : Lits) {
    Expr Cond = findIteCondition(Lit.first);
    if (!Cond)
      continue;
    for (bool Positive : {true, false}) {
      if (Budget == 0)
        return SatResult::Unknown;
      --Budget;
      bump(&SolverStats::Branches);
      std::vector<Expr> BranchWork;
      BranchWork.push_back(Positive ? Cond : negate(Cond));
      std::vector<Literal> BranchLits;
      BranchLits.reserve(Lits.size());
      for (const Literal &L : Lits)
        BranchLits.push_back({resolveIte(L.first, Cond, Positive), L.second});
      SatResult R =
          solveRec(std::move(BranchWork), std::move(BranchLits), Depth + 1,
                   Budget);
      if (R == SatResult::Sat)
        return SatResult::Sat;
      if (R == SatResult::Unknown)
        return SatResult::Unknown;
    }
    return SatResult::Unsat;
  }

  return theoryCheck(Lits, Budget);
}

//===----------------------------------------------------------------------===//
// Theory layer
//===----------------------------------------------------------------------===//

static bool looksArith(const Expr &E) {
  switch (E->Kind) {
  case ExprKind::IntLit:
  case ExprKind::RealLit:
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
  case ExprKind::Neg:
  case ExprKind::SeqLen:
    return true;
  default:
    return E->NodeSort == Sort::Int || E->NodeSort == Sort::Real;
  }
}

SatResult Solver::theoryCheck(const std::vector<Literal> &Lits,
                              unsigned &Budget) {
  // Split arithmetic disequalities into strict inequalities so that the
  // linear backend can refute them.
  for (std::size_t I = 0, E = Lits.size(); I != E; ++I) {
    const auto &[Atom, Positive] = Lits[I];
    if (Positive || Atom->Kind != ExprKind::Eq)
      continue;
    if (!looksArith(Atom->Kids[0]) || !looksArith(Atom->Kids[1]))
      continue;
    bool AnyUnknown = false;
    for (bool Less : {true, false}) {
      if (Budget == 0)
        return SatResult::Unknown;
      --Budget;
      bump(&SolverStats::Branches);
      std::vector<Literal> BranchLits = Lits;
      BranchLits[I] = {Less ? mkLt(Atom->Kids[0], Atom->Kids[1])
                            : mkLt(Atom->Kids[1], Atom->Kids[0]),
                       true};
      SatResult R = theoryCheck(BranchLits, Budget);
      if (R == SatResult::Sat)
        return SatResult::Sat;
      if (R == SatResult::Unknown)
        AnyUnknown = true;
    }
    return AnyUnknown ? SatResult::Unknown : SatResult::Unsat;
  }
  return baseTheoryCheck(Lits);
}

SatResult Solver::baseTheoryCheck(const std::vector<Literal> &LitsIn) {
  bump(&SolverStats::TheoryChecks);

  // 1. Instantiate the option axioms for IsSome literals.
  std::vector<Literal> Lits;
  Lits.reserve(LitsIn.size());
  for (const auto &[Atom, Positive] : LitsIn) {
    if (Atom->Kind == ExprKind::IsSome) {
      Expr EqF = Positive
                     ? mkEq(Atom->Kids[0], mkSome(mkUnwrap(Atom->Kids[0])))
                     : mkEq(Atom->Kids[0], mkNone());
      if (isFalseLit(EqF))
        return SatResult::Unsat;
      if (!isTrueLit(EqF))
        Lits.push_back({EqF, true});
      continue;
    }
    Lits.push_back({Atom, Positive});
  }

  // 2. Sequence theory.
  SeqFacts Seq = deriveSeqFacts(Lits);
  if (Seq.Conflict)
    return SatResult::Unsat;
  for (const Literal &D : Seq.Derived)
    Lits.push_back(D);

  // 3. Congruence closure (batched: one saturation for all equalities).
  Congruence Cong;
  for (const auto &[Atom, Positive] : Lits) {
    if (Atom->Kind == ExprKind::Eq) {
      if (Positive)
        Cong.queueEquality(Atom->Kids[0], Atom->Kids[1]);
      else
        Cong.addDisequality(Atom->Kids[0], Atom->Kids[1]);
      continue;
    }
    Cong.registerTerm(Atom);
  }
  if (!Cong.saturate())
    return SatResult::Unsat;
  if (Cong.hasDisequalityConflict())
    return SatResult::Unsat;
  if (Cong.hasSeqLengthConflict())
    return SatResult::Unsat;

  // 4. Propositional atoms up to congruence, plus lifetime inclusion.
  std::map<int, bool> PropPolarity;
  std::set<std::pair<int, int>> LftEdges;
  std::vector<std::pair<int, int>> LftNegated;
  for (const auto &[Atom, Positive] : Lits) {
    if (Atom->Kind == ExprKind::Eq)
      continue;
    if (Atom->Kind == ExprKind::LftIncl) {
      int A = Cong.canonClass(Atom->Kids[0]);
      int B = Cong.canonClass(Atom->Kids[1]);
      if (Positive)
        LftEdges.insert({A, B});
      else
        LftNegated.push_back({A, B});
      continue;
    }
    // A boolean witness derived by the closure decides the literal.
    if (Expr W = Cong.witness(Atom))
      if (W->Kind == ExprKind::BoolLit && W->BoolVal != Positive)
        return SatResult::Unsat;
    int Key = Cong.canonClass(Atom);
    auto [It, Inserted] = PropPolarity.emplace(Key, Positive);
    if (!Inserted && It->second != Positive)
      return SatResult::Unsat;
  }
  if (!LftNegated.empty()) {
    // Reflexive-transitive closure of inclusion edges.
    std::set<std::pair<int, int>> Closure = LftEdges;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &[A, B] : Closure)
        for (const auto &[C, D] : Closure)
          if (B == C && !Closure.count({A, D})) {
            Closure.insert({A, D});
            Changed = true;
            break;
          }
    }
    for (const auto &[A, B] : LftNegated) {
      if (A == B)
        return SatResult::Unsat; // not (k <= k) is false.
      if (Closure.count({A, B}))
        return SatResult::Unsat;
    }
  }

  // 5. Linear arithmetic.
  LinArith Arith(Cong);
  for (const auto &[Atom, Positive] : Lits)
    Arith.addAtom(Atom, Positive);
  bool Definite = true;
  if (!Arith.feasible(Definite))
    return SatResult::Unsat;
  return Definite ? SatResult::Sat : SatResult::Unknown;
}
