//===- solver/Flight.cpp ---------------------------------------------------===//

#include "solver/Flight.h"

#include "solver/Journal.h"
#include "support/Files.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <tuple>
#include <vector>

using namespace gilr;
using namespace gilr::flight;

std::atomic<uint8_t> flight::detail::Flags{0xFF};
thread_local unsigned flight::detail::PauseDepth = 0;

namespace {

/// One buffered journal record: the rendered line plus its deterministic
/// sort key. \c Seq (global append order) only breaks ties between records
/// with identical keys, which a deterministic run never produces.
struct Buffered {
  std::string Obligation;
  char Side = '?';
  uint32_t QueryIdx = 0;
  uint8_t Kind = 0; ///< 0 cached, 1 query — cached records sort first.
  uint64_t Seq = 0;
  std::string Line;
};

/// Process-wide recorder state. The mutex guards everything below it; the
/// hot path (recorder disabled) never touches it.
struct RecorderState {
  std::mutex Mu;
  std::string JournalFile;
  std::vector<Buffered> Buf;
  uint64_t Seq = 0;
  uint64_t Dropped = 0;
  bool AtExitRegistered = false;
};

RecorderState &state() {
  // Leaked for the same reason as the metrics registry: the atexit flush
  // must be able to run after static destruction has begun.
  static RecorderState *S = new RecorderState;
  return *S;
}

/// Journal buffer cap: a runaway run stops buffering (and counts drops)
/// rather than exhausting memory. 2^20 records is far beyond any test or
/// bench workload.
constexpr std::size_t JournalBufCap = 1u << 20;

/// Per-thread obligation provenance installed by ObligationScope.
struct ThreadScope {
  std::string Name;
  char Side = '?';
  uint32_t NextIdx = 0;
};

ThreadScope &threadScope() {
  thread_local ThreadScope S;
  return S;
}

/// The provenance TimingSolver stamped on the query it just timed, read by
/// the QueryJournalSolver directly above it on the same thread.
struct LastProvenance {
  std::string Obligation;
  char Side = '?';
  uint32_t QueryIdx = 0;
};

LastProvenance &lastProv() {
  thread_local LastProvenance P;
  return P;
}

void appendRecord(Buffered B) {
  RecorderState &S = state();
  uint64_t Records = 0, Dropped = 0;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.Buf.size() >= JournalBufCap) {
      ++S.Dropped;
      Dropped = 1;
    } else {
      B.Seq = S.Seq++;
      S.Buf.push_back(std::move(B));
      Records = 1;
    }
  }
  metrics::Registry::get().noteJournalActivity(Records, Dropped);
}

void applyOptions(const Options &O) {
  RecorderState &S = state();
  uint8_t F = (O.Timing ? 1 : 0) | (O.Journal ? 3 : 0);
  bool WantAtExit = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.JournalFile =
        O.JournalFile.empty() ? std::string()
                              : files::expandPidPlaceholder(O.JournalFile);
    S.Buf.clear();
    S.Seq = 0;
    S.Dropped = 0;
    if (!S.JournalFile.empty() && !S.AtExitRegistered) {
      S.AtExitRegistered = true;
      WantAtExit = true;
    }
  }
  detail::Flags.store(F, std::memory_order_relaxed);
  if (WantAtExit)
    std::atexit([] { flight::flushJournal(); });
}

Options optionsFromEnv() {
  Options O;
  const char *Journal = std::getenv("GILR_JOURNAL");
  if (Journal && *Journal) {
    O.Journal = O.Timing = true;
    O.JournalFile = Journal;
  }
  const char *Timing = std::getenv("GILR_TIMING");
  if (Timing && *Timing && std::string(Timing) != "0")
    O.Timing = true;
  return O;
}

} // namespace

uint8_t flight::detail::initFromEnvSlow() {
  static std::once_flag Once;
  std::call_once(Once, [] { applyOptions(optionsFromEnv()); });
  return Flags.load(std::memory_order_relaxed);
}

void flight::configure(const Options &O) { applyOptions(O); }

void flight::configureFromEnv() { applyOptions(optionsFromEnv()); }

void flight::reset() { applyOptions(Options()); }

//===----------------------------------------------------------------------===//
// Provenance
//===----------------------------------------------------------------------===//

ObligationScope::ObligationScope(std::string Name, char Side) {
  ThreadScope &S = threadScope();
  PrevName = std::move(S.Name);
  PrevSide = S.Side;
  PrevNextIdx = S.NextIdx;
  S.Name = std::move(Name);
  S.Side = Side;
  S.NextIdx = 0;
}

ObligationScope::~ObligationScope() {
  ThreadScope &S = threadScope();
  S.Name = std::move(PrevName);
  S.Side = PrevSide;
  S.NextIdx = PrevNextIdx;
}

//===----------------------------------------------------------------------===//
// Decorator layers
//===----------------------------------------------------------------------===//

ChainOutcome TimingSolver::solve(const ChainQuery &Q) {
  ThreadScope &S = threadScope();
  LastProvenance &P = lastProv();
  P.Obligation = S.Name;
  P.Side = S.Side;
  P.QueryIdx = S.NextIdx++;

  uint64_t T0 = trace::nowNs();
  ChainOutcome O = Next.solve(Q);
  O.DurationNs = trace::nowNs() - T0;

  metrics::SolverQuerySample Sample;
  Sample.Obligation = P.Obligation;
  Sample.Side = P.Side;
  Sample.QueryIdx = P.QueryIdx;
  Sample.PcSize = (uint32_t)Q.Work.size();
  uint64_t Fp2Unused;
  Q.stableFingerprint(Sample.Fp, Fp2Unused);
  Sample.Verdict = (uint8_t)O.R;
  Sample.CacheHit = O.CacheHit;
  Sample.DurationNs = O.DurationNs;
  metrics::Registry::get().recordSolverQuery(Sample);
  return O;
}

ChainOutcome QueryJournalSolver::solve(const ChainQuery &Q) {
  ChainOutcome O = Next.solve(Q);
  const LastProvenance &P = lastProv();

  journal::Record R;
  R.RecKind = journal::Record::Kind::Query;
  R.Obligation = P.Obligation;
  R.Side = P.Side;
  R.QueryIdx = P.QueryIdx;
  R.PcSize = (uint32_t)Q.Work.size();
  R.CacheHit = O.CacheHit;
  R.Verdict = (uint8_t)O.R;
  R.DurationNs = O.DurationNs;
  R.Branches = O.Branches;
  R.TheoryChecks = O.TheoryChecks;
  R.MaxBranches = Q.MaxBranches;
  Q.stableFingerprint(R.Fp, R.Fp2);
  R.Assertions = Q.Work;

  Buffered B;
  B.Obligation = P.Obligation;
  B.Side = P.Side;
  B.QueryIdx = P.QueryIdx;
  B.Kind = 1;
  B.Line = journal::renderRecord(R);
  appendRecord(std::move(B));
  return O;
}

void flight::noteCachedObligation(const std::string &Name, char Side,
                                  bool Ok) {
  if (!journalEnabled())
    return;
  journal::Record R;
  R.RecKind = journal::Record::Kind::Cached;
  R.Obligation = Name;
  R.Side = Side;
  R.CachedOk = Ok;

  Buffered B;
  B.Obligation = Name;
  B.Side = Side;
  B.Kind = 0;
  B.Line = journal::renderRecord(R);
  appendRecord(std::move(B));
}

//===----------------------------------------------------------------------===//
// Journal rendering / flushing
//===----------------------------------------------------------------------===//

std::string flight::journalText() {
  RecorderState &S = state();
  std::vector<Buffered> Sorted;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Sorted = S.Buf;
  }
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Buffered &A, const Buffered &B) {
              return std::tie(A.Obligation, A.Side, A.Kind, A.QueryIdx,
                              A.Seq) < std::tie(B.Obligation, B.Side, B.Kind,
                                                B.QueryIdx, B.Seq);
            });
  std::size_t Bytes = 16;
  for (const Buffered &B : Sorted)
    Bytes += B.Line.size() + 1;
  std::string Out;
  Out.reserve(Bytes);
  Out += journal::journalMagic();
  Out += '\n';
  for (const Buffered &B : Sorted) {
    Out += B.Line;
    Out += '\n';
  }
  return Out;
}

uint64_t flight::journalRecordCount() {
  RecorderState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Buf.size();
}

uint64_t flight::journalDroppedCount() {
  RecorderState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Dropped;
}

bool flight::flushJournal() {
  std::string Path;
  {
    RecorderState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mu);
    Path = S.JournalFile;
  }
  if (Path.empty())
    return true;
  return files::writeFile(Path, journalText(), "solver query journal");
}
