//===- solver/Journal.cpp --------------------------------------------------===//

#include "solver/Journal.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"

#include <cstdio>
#include <sstream>

using namespace gilr;
using namespace gilr::journal;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

void quoteName(const std::string &Name, std::string &Out) {
  Out += '|';
  for (char C : Name) {
    if (C == '|' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '|';
}

void renderExpr(const Expr &E, std::string &Out) {
  auto Nary = [&](const char *Head) {
    Out += '(';
    Out += Head;
    for (const Expr &K : E->Kids) {
      Out += ' ';
      renderExpr(K, Out);
    }
    Out += ')';
  };
  switch (E->Kind) {
  case ExprKind::Var:
    Out += "(v ";
    quoteName(E->Name, Out);
    Out += ' ';
    Out += sortName(E->NodeSort);
    Out += ')';
    return;
  case ExprKind::IntLit:
    Out += int128ToString(E->IntVal);
    return;
  case ExprKind::RealLit:
    Out += "(real ";
    Out += int128ToString(E->RatVal.Num);
    Out += ' ';
    Out += int128ToString(E->RatVal.Den);
    Out += ')';
    return;
  case ExprKind::BoolLit:
    Out += E->BoolVal ? "true" : "false";
    return;
  case ExprKind::UnitLit:
    Out += "unit";
    return;
  case ExprKind::LocLit:
    Out += "(loc ";
    Out += std::to_string(E->LocId);
    Out += ')';
    return;
  case ExprKind::NoneLit:
    Out += "none";
    return;
  case ExprKind::Not:
    return Nary("not");
  case ExprKind::And:
    return Nary("and");
  case ExprKind::Or:
    return Nary("or");
  case ExprKind::Implies:
    return Nary("=>");
  case ExprKind::Ite:
    return Nary("ite");
  case ExprKind::Eq:
    return Nary("=");
  case ExprKind::Lt:
    return Nary("<");
  case ExprKind::Le:
    return Nary("<=");
  case ExprKind::Add:
    return Nary("+");
  case ExprKind::Sub:
    return Nary("-");
  case ExprKind::Mul:
    return Nary("*");
  case ExprKind::Neg:
    return Nary("neg");
  case ExprKind::Some:
    return Nary("some");
  case ExprKind::IsSome:
    return Nary("is-some");
  case ExprKind::Unwrap:
    return Nary("unwrap");
  case ExprKind::SeqNil:
    Out += "seqnil";
    return;
  case ExprKind::SeqUnit:
    return Nary("seq.unit");
  case ExprKind::SeqConcat:
    return Nary("seq.++");
  case ExprKind::SeqLen:
    return Nary("seq.len");
  case ExprKind::SeqNth:
    return Nary("seq.nth");
  case ExprKind::SeqSub:
    return Nary("seq.extract");
  case ExprKind::TupleLit:
    return Nary("tuple");
  case ExprKind::TupleGet:
    Out += "(tuple.get ";
    Out += std::to_string(E->Index);
    Out += ' ';
    renderExpr(E->Kids[0], Out);
    Out += ')';
    return;
  case ExprKind::LftIncl:
    return Nary("lft<=");
  case ExprKind::App:
    Out += "(app ";
    quoteName(E->Name, Out);
    Out += ' ';
    Out += sortName(E->NodeSort);
    for (const Expr &K : E->Kids) {
      Out += ' ';
      renderExpr(K, Out);
    }
    Out += ')';
    return;
  }
  GILR_UNREACHABLE("unknown expr kind");
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

const char *verdictName(uint8_t V) {
  switch (V) {
  case 0:
    return "sat";
  case 1:
    return "unsat";
  default:
    return "unknown";
  }
}

} // namespace

std::string journal::exprToJournal(const Expr &E) {
  std::string Out;
  renderExpr(E, Out);
  return Out;
}

std::string journal::renderRecord(const Record &R) {
  std::string Out;
  if (R.RecKind == Record::Kind::Cached) {
    Out += "(cached :ob ";
    quoteName(R.Obligation, Out);
    Out += " :side ";
    Out += R.Side;
    Out += " :verdict ";
    Out += R.CachedOk ? "ok" : "fail";
    Out += ')';
    return Out;
  }
  Out += "(query :ob ";
  quoteName(R.Obligation, Out);
  Out += " :side ";
  Out += R.Side;
  Out += " :idx " + std::to_string(R.QueryIdx);
  Out += " :pc " + std::to_string(R.PcSize);
  Out += " :cached ";
  Out += R.CacheHit ? 't' : 'f';
  Out += " :verdict ";
  Out += verdictName(R.Verdict);
  Out += " :ns " + std::to_string(R.DurationNs);
  Out += " :branches " + std::to_string(R.Branches);
  Out += " :theory " + std::to_string(R.TheoryChecks);
  Out += " :budget " + std::to_string(R.MaxBranches);
  Out += " :fp " + hex16(R.Fp);
  Out += " :fp2 " + hex16(R.Fp2);
  for (const Expr &A : R.Assertions) {
    Out += " (assert ";
    renderExpr(A, Out);
    Out += ')';
  }
  Out += ')';
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

bool journal::parseInt128(const std::string &S, __int128 &Out) {
  if (S.empty())
    return false;
  std::size_t I = 0;
  bool Neg = false;
  if (S[0] == '-') {
    Neg = true;
    I = 1;
    if (S.size() == 1)
      return false;
  }
  unsigned __int128 Acc = 0;
  const unsigned __int128 Limit =
      Neg ? (unsigned __int128)1 << 127
          : ((unsigned __int128)1 << 127) - 1;
  for (; I < S.size(); ++I) {
    if (S[I] < '0' || S[I] > '9')
      return false;
    unsigned Digit = S[I] - '0';
    if (Acc > (Limit - Digit) / 10)
      return false;
    Acc = Acc * 10 + Digit;
  }
  Out = Neg ? -(__int128)Acc : (__int128)Acc;
  return true;
}

namespace {

/// A parsed s-expression node: an atom (with a quoted flag so |true| the
/// name and true the literal stay distinct) or a list.
struct SNode {
  bool IsAtom = true;
  bool Quoted = false;
  std::string Atom;
  std::vector<SNode> Kids;
};

class SParser {
public:
  SParser(const std::string &S) : S(S) {}

  /// Parses one s-expression; sets Err and returns false on failure.
  bool parse(SNode &Out) {
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    if (S[Pos] == '(') {
      ++Pos;
      Out.IsAtom = false;
      Out.Kids.clear();
      while (true) {
        skipWs();
        if (Pos >= S.size())
          return fail("unterminated list");
        if (S[Pos] == ')') {
          ++Pos;
          return true;
        }
        Out.Kids.emplace_back();
        if (!parse(Out.Kids.back()))
          return false;
      }
    }
    if (S[Pos] == ')')
      return fail("unexpected ')'");
    Out.IsAtom = true;
    if (S[Pos] == '|') {
      ++Pos;
      Out.Quoted = true;
      Out.Atom.clear();
      while (Pos < S.size() && S[Pos] != '|') {
        if (S[Pos] == '\\') {
          ++Pos;
          if (Pos >= S.size())
            return fail("unterminated escape in quoted symbol");
        }
        Out.Atom += S[Pos++];
      }
      if (Pos >= S.size())
        return fail("unterminated quoted symbol");
      ++Pos; // closing '|'
      return true;
    }
    Out.Quoted = false;
    std::size_t Start = Pos;
    while (Pos < S.size() && !isDelim(S[Pos]))
      ++Pos;
    Out.Atom = S.substr(Start, Pos - Start);
    return true;
  }

  bool atEnd() {
    skipWs();
    return Pos >= S.size();
  }

  std::string Err;

private:
  static bool isDelim(char C) {
    return C == '(' || C == ')' || C == '|' || C == ' ' || C == '\t' ||
           C == '\n' || C == '\r';
  }
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }
  bool fail(const char *Why) {
    if (Err.empty())
      Err = Why;
    return false;
  }

  const std::string &S;
  std::size_t Pos = 0;
};

bool parseSort(const std::string &Name, Sort &Out) {
  for (uint8_t I = 0; I <= (uint8_t)Sort::Any; ++I)
    if (Name == sortName((Sort)I)) {
      Out = (Sort)I;
      return true;
    }
  return false;
}

Expr exprFromSNode(const SNode &N, std::string &Err);

bool kidsFrom(const SNode &N, std::size_t From, std::vector<Expr> &Out,
              std::string &Err) {
  for (std::size_t I = From; I < N.Kids.size(); ++I) {
    Expr E = exprFromSNode(N.Kids[I], Err);
    if (!E)
      return false;
    Out.push_back(std::move(E));
  }
  return true;
}

Expr failExpr(std::string &Err, const std::string &Why) {
  if (Err.empty())
    Err = Why;
  return nullptr;
}

Expr exprFromSNode(const SNode &N, std::string &Err) {
  if (N.IsAtom) {
    if (!N.Quoted) {
      if (N.Atom == "true")
        return mkTrue();
      if (N.Atom == "false")
        return mkFalse();
      if (N.Atom == "unit")
        return mkUnit();
      if (N.Atom == "none")
        return mkNone();
      if (N.Atom == "seqnil")
        return mkSeqNil();
      __int128 V;
      if (parseInt128(N.Atom, V))
        return mkInt(V);
    }
    return failExpr(Err, "unknown atom '" + N.Atom + "'");
  }
  if (N.Kids.empty() || !N.Kids[0].IsAtom || N.Kids[0].Quoted)
    return failExpr(Err, "list without head symbol");
  const std::string &Head = N.Kids[0].Atom;
  std::size_t Arity = N.Kids.size() - 1;
  auto Need = [&](std::size_t Min, std::size_t Max) {
    if (Arity < Min || Arity > Max) {
      failExpr(Err, "bad arity for '" + Head + "'");
      return false;
    }
    return true;
  };

  if (Head == "v") {
    if (!Need(2, 2) || !N.Kids[1].IsAtom || !N.Kids[2].IsAtom)
      return failExpr(Err, "malformed (v name Sort)");
    Sort S;
    if (!parseSort(N.Kids[2].Atom, S))
      return failExpr(Err, "unknown sort '" + N.Kids[2].Atom + "'");
    return mkVar(N.Kids[1].Atom, S);
  }
  if (Head == "real") {
    if (!Need(2, 2) || !N.Kids[1].IsAtom || !N.Kids[2].IsAtom)
      return failExpr(Err, "malformed (real num den)");
    __int128 Num, Den;
    if (!parseInt128(N.Kids[1].Atom, Num) ||
        !parseInt128(N.Kids[2].Atom, Den) || Den == 0)
      return failExpr(Err, "malformed rational literal");
    return mkReal(Rational(Num, Den));
  }
  if (Head == "loc") {
    if (!Need(1, 1) || !N.Kids[1].IsAtom)
      return failExpr(Err, "malformed (loc id)");
    __int128 Id;
    if (!parseInt128(N.Kids[1].Atom, Id) || Id < 0)
      return failExpr(Err, "malformed location id");
    return mkLoc((uint64_t)Id);
  }
  if (Head == "tuple.get") {
    if (!Need(2, 2) || !N.Kids[1].IsAtom)
      return failExpr(Err, "malformed (tuple.get idx t)");
    __int128 Idx;
    if (!parseInt128(N.Kids[1].Atom, Idx) || Idx < 0)
      return failExpr(Err, "malformed tuple index");
    Expr T = exprFromSNode(N.Kids[2], Err);
    if (!T)
      return nullptr;
    return mkTupleGet(T, (unsigned)Idx);
  }
  if (Head == "app") {
    if (Arity < 2 || !N.Kids[1].IsAtom || !N.Kids[2].IsAtom)
      return failExpr(Err, "malformed (app name Sort args...)");
    Sort S;
    if (!parseSort(N.Kids[2].Atom, S))
      return failExpr(Err, "unknown sort '" + N.Kids[2].Atom + "'");
    std::vector<Expr> Args;
    if (!kidsFrom(N, 3, Args, Err))
      return nullptr;
    return mkApp(N.Kids[1].Atom, std::move(Args), S);
  }

  // Everything else: parse the kids, then dispatch to a builder.
  std::vector<Expr> K;
  if (!kidsFrom(N, 1, K, Err))
    return nullptr;
  auto Fixed = [&](std::size_t Want) {
    if (Arity != Want) {
      failExpr(Err, "bad arity for '" + Head + "'");
      return false;
    }
    return true;
  };
  if (Head == "not")
    return Fixed(1) ? mkNot(K[0]) : nullptr;
  if (Head == "and")
    return Arity >= 1 ? mkAnd(std::move(K))
                      : failExpr(Err, "empty (and)");
  if (Head == "or")
    return Arity >= 1 ? mkOr(std::move(K)) : failExpr(Err, "empty (or)");
  if (Head == "=>")
    return Fixed(2) ? mkImplies(K[0], K[1]) : nullptr;
  if (Head == "ite")
    return Fixed(3) ? mkIte(K[0], K[1], K[2]) : nullptr;
  if (Head == "=")
    return Fixed(2) ? mkEq(K[0], K[1]) : nullptr;
  if (Head == "<")
    return Fixed(2) ? mkLt(K[0], K[1]) : nullptr;
  if (Head == "<=")
    return Fixed(2) ? mkLe(K[0], K[1]) : nullptr;
  if (Head == "+")
    return Arity >= 1 ? mkAdd(std::move(K)) : failExpr(Err, "empty (+)");
  if (Head == "-")
    return Fixed(2) ? mkSub(K[0], K[1]) : nullptr;
  if (Head == "*")
    return Fixed(2) ? mkMul(K[0], K[1]) : nullptr;
  if (Head == "neg")
    return Fixed(1) ? mkNeg(K[0]) : nullptr;
  if (Head == "some")
    return Fixed(1) ? mkSome(K[0]) : nullptr;
  if (Head == "is-some")
    return Fixed(1) ? mkIsSome(K[0]) : nullptr;
  if (Head == "unwrap")
    return Fixed(1) ? mkUnwrap(K[0]) : nullptr;
  if (Head == "seq.unit")
    return Fixed(1) ? mkSeqUnit(K[0]) : nullptr;
  if (Head == "seq.++")
    return Arity >= 1 ? mkSeqConcat(std::move(K))
                      : failExpr(Err, "empty (seq.++)");
  if (Head == "seq.len")
    return Fixed(1) ? mkSeqLen(K[0]) : nullptr;
  if (Head == "seq.nth")
    return Fixed(2) ? mkSeqNth(K[0], K[1]) : nullptr;
  if (Head == "seq.extract")
    return Fixed(3) ? mkSeqSub(K[0], K[1], K[2]) : nullptr;
  if (Head == "tuple")
    return mkTuple(std::move(K));
  if (Head == "lft<=")
    return Fixed(2) ? mkLftIncl(K[0], K[1]) : nullptr;
  return failExpr(Err, "unknown operator '" + Head + "'");
}

/// Reads the atom following keyword \p Key in record node \p N, advancing
/// \p I past the pair. Field order is fixed by renderRecord, but the parser
/// accepts any order for forward compatibility.
bool keyAtom(const SNode &N, std::size_t &I, std::string &Key,
             const SNode *&Val) {
  if (I + 1 >= N.Kids.size() || !N.Kids[I].IsAtom || N.Kids[I].Quoted ||
      N.Kids[I].Atom.empty() || N.Kids[I].Atom[0] != ':')
    return false;
  Key = N.Kids[I].Atom;
  Val = &N.Kids[I + 1];
  I += 2;
  return true;
}

bool parseU64Atom(const SNode &V, uint64_t &Out) {
  __int128 X;
  if (!V.IsAtom || V.Quoted || !journal::parseInt128(V.Atom, X) || X < 0)
    return false;
  Out = (uint64_t)X;
  return true;
}

bool parseHexAtom(const SNode &V, uint64_t &Out) {
  if (!V.IsAtom || V.Quoted || V.Atom.empty() || V.Atom.size() > 16)
    return false;
  uint64_t Acc = 0;
  for (char C : V.Atom) {
    unsigned D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    Acc = (Acc << 4) | D;
  }
  Out = Acc;
  return true;
}

bool parseRecordNode(const SNode &N, Record &R, std::string &Err) {
  if (N.IsAtom || N.Kids.empty() || !N.Kids[0].IsAtom) {
    Err = "record is not a list";
    return false;
  }
  const std::string &Head = N.Kids[0].Atom;
  if (Head == "cached")
    R.RecKind = Record::Kind::Cached;
  else if (Head == "query")
    R.RecKind = Record::Kind::Query;
  else {
    Err = "unknown record head '" + Head + "'";
    return false;
  }

  std::size_t I = 1;
  std::string Key;
  const SNode *Val;
  while (I < N.Kids.size() && keyAtom(N, I, Key, Val)) {
    uint64_t U;
    if (Key == ":ob" && Val->IsAtom) {
      R.Obligation = Val->Atom;
    } else if (Key == ":side" && Val->IsAtom && Val->Atom.size() == 1) {
      R.Side = Val->Atom[0];
    } else if (Key == ":idx" && parseU64Atom(*Val, U)) {
      R.QueryIdx = (uint32_t)U;
    } else if (Key == ":pc" && parseU64Atom(*Val, U)) {
      R.PcSize = (uint32_t)U;
    } else if (Key == ":cached" && Val->IsAtom) {
      R.CacheHit = Val->Atom == "t";
    } else if (Key == ":verdict" && Val->IsAtom) {
      if (R.RecKind == Record::Kind::Cached) {
        R.CachedOk = Val->Atom == "ok";
      } else if (Val->Atom == "sat") {
        R.Verdict = 0;
      } else if (Val->Atom == "unsat") {
        R.Verdict = 1;
      } else {
        R.Verdict = 2;
      }
    } else if (Key == ":ns" && parseU64Atom(*Val, U)) {
      R.DurationNs = U;
    } else if (Key == ":branches" && parseU64Atom(*Val, U)) {
      R.Branches = U;
    } else if (Key == ":theory" && parseU64Atom(*Val, U)) {
      R.TheoryChecks = U;
    } else if (Key == ":budget" && parseU64Atom(*Val, U)) {
      R.MaxBranches = (uint32_t)U;
    } else if (Key == ":fp" && parseHexAtom(*Val, U)) {
      R.Fp = U;
    } else if (Key == ":fp2" && parseHexAtom(*Val, U)) {
      R.Fp2 = U;
    } else {
      Err = "malformed field '" + Key + "'";
      return false;
    }
  }
  // Remaining kids must be (assert E) clauses.
  for (; I < N.Kids.size(); ++I) {
    const SNode &A = N.Kids[I];
    if (A.IsAtom || A.Kids.size() != 2 || !A.Kids[0].IsAtom ||
        A.Kids[0].Atom != "assert") {
      Err = "expected (assert ...) clause";
      return false;
    }
    Expr E = exprFromSNode(A.Kids[1], Err);
    if (!E)
      return false;
    R.Assertions.push_back(std::move(E));
  }
  return true;
}

} // namespace

Expr journal::exprFromJournal(const std::string &Text, std::string *Err) {
  SParser P(Text);
  SNode N;
  std::string Local;
  if (!P.parse(N)) {
    if (Err)
      *Err = P.Err;
    return nullptr;
  }
  if (!P.atEnd()) {
    if (Err)
      *Err = "trailing input after expression";
    return nullptr;
  }
  Expr E = exprFromSNode(N, Local);
  if (!E && Err)
    *Err = Local;
  return E;
}

ParsedJournal journal::parseJournal(const std::string &Text) {
  ParsedJournal Out;
  std::istringstream In(Text);
  std::string Line;
  std::size_t LineNo = 0;
  bool SawHeader = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    if (!SawHeader) {
      SawHeader = true;
      if (Line != journalMagic()) {
        Out.HeaderError = "line 1: expected journal magic '" +
                          std::string(journalMagic()) + "', got '" + Line +
                          "'";
        Out.Errors.push_back(Out.HeaderError);
        return Out;
      }
      Out.HeaderOk = true;
      continue;
    }
    SParser P(Line);
    SNode N;
    if (!P.parse(N) || !P.atEnd()) {
      Out.Errors.push_back("line " + std::to_string(LineNo) + ": " +
                           (P.Err.empty() ? "trailing garbage" : P.Err));
      continue;
    }
    Record R;
    std::string Err;
    if (!parseRecordNode(N, R, Err)) {
      Out.Errors.push_back("line " + std::to_string(LineNo) + ": " + Err);
      continue;
    }
    Out.Records.push_back(std::move(R));
  }
  if (!SawHeader) {
    Out.HeaderError = "empty journal (missing magic line)";
    Out.Errors.push_back(Out.HeaderError);
  }
  return Out;
}
