//===- solver/PathCondition.cpp ----------------------------------------------===//

#include "solver/PathCondition.h"

#include "solver/Simplify.h"
#include "sym/ExprBuilder.h"

using namespace gilr;

bool PathCondition::add(const Expr &Fact) {
  Expr F = simplify(Fact);
  if (isTrueLit(F))
    return !TriviallyFalse;
  if (isFalseLit(F)) {
    TriviallyFalse = true;
    Facts.push_back(F);
    return false;
  }
  if (F->Kind == ExprKind::And) {
    for (const Expr &Kid : F->Kids)
      add(Kid);
    return !TriviallyFalse;
  }
  // Drop exact duplicates: O(1) via the CanonId set for interned facts; the
  // linear scan only runs for foreign nodes (interning disabled).
  if (F->CanonId != 0) {
    if (!FactIds.insert(F->CanonId).second)
      return !TriviallyFalse;
  } else {
    for (const Expr &Existing : Facts)
      if (exprEquals(Existing, F))
        return !TriviallyFalse;
  }
  Facts.push_back(F);
  return true;
}

bool PathCondition::isUnsat(Solver &S) const {
  if (TriviallyFalse)
    return true;
  return S.checkSat(Facts) == SatResult::Unsat;
}

bool PathCondition::entails(Solver &S, const Expr &Goal) const {
  if (TriviallyFalse)
    return true;
  Expr G = simplify(Goal);
  if (isTrueLit(G))
    return true;
  // Foreign goals (interning disabled) have no stable identity; skip the
  // memo — re-querying is sound, just slower.
  uint64_t Key = G->CanonId;
  if (Key != 0) {
    auto Hit = ProvenAt.find(Key);
    if (Hit != ProvenAt.end() && Hit->second <= Facts.size())
      return true; // Monotone: more facts cannot unprove it.
    auto Miss = RefutedAt.find(Key);
    if (Miss != RefutedAt.end() && Miss->second == Facts.size())
      return false; // Same context: same answer.
  }
  bool R = S.entails(Facts, G);
  if (Key != 0) {
    if (R)
      ProvenAt[Key] = Facts.size();
    else
      RefutedAt[Key] = Facts.size();
  }
  return R;
}
