//===- solver/Replay.cpp ---------------------------------------------------===//

#include "solver/Replay.h"

#include "solver/Flight.h"
#include "solver/Journal.h"
#include "solver/Solver.h"
#include "support/Trace.h"

#include <algorithm>
#include <sstream>

using namespace gilr;
using namespace gilr::replay;

namespace {

const char *verdictName(uint8_t V) {
  switch (V) {
  case 0:
    return "sat";
  case 1:
    return "unsat";
  default:
    return "unknown";
  }
}

/// Uninstalls the process-wide query memo for the duration of the replay so
/// re-solved verdicts cannot be served from (or pollute) a live cache.
class ScopedNoMemo {
public:
  ScopedNoMemo() : Prev(setQueryMemo(nullptr)) {}
  ~ScopedNoMemo() { setQueryMemo(Prev); }

private:
  QueryMemo *Prev;
};

} // namespace

ReplayResult replay::replayJournalText(const std::string &Text,
                                       const ReplayOptions &O) {
  ReplayResult Res;
  journal::ParsedJournal J = journal::parseJournal(Text);
  Res.HeaderOk = J.HeaderOk;
  Res.ParseErrors = J.Errors;

  std::vector<const journal::Record *> Queries;
  for (const journal::Record &R : J.Records) {
    if (R.RecKind == journal::Record::Kind::Cached) {
      ++Res.CachedRecords;
      continue;
    }
    ++Res.TotalQueries;
    if (!O.ObligationFilter.empty() && R.Obligation != O.ObligationFilter)
      continue;
    Queries.push_back(&R);
  }

  if (O.SlowestN > 0 && Queries.size() > O.SlowestN) {
    std::stable_sort(Queries.begin(), Queries.end(),
                     [](const journal::Record *A, const journal::Record *B) {
                       return A->DurationNs > B->DurationNs;
                     });
    Queries.resize(O.SlowestN);
  }
  if (O.Limit > 0 && Queries.size() > O.Limit)
    Queries.resize(O.Limit);

  flight::Pause Paused;
  ScopedNoMemo NoMemo;
  for (const journal::Record *R : Queries) {
    Solver S;
    if (R->MaxBranches > 0)
      S.MaxBranches = R->MaxBranches;
    uint64_t T0 = trace::nowNs();
    SatResult Got = S.checkSat(R->Assertions);
    Res.ReplayNs += trace::nowNs() - T0;
    Res.RecordedNs += R->DurationNs;
    ++Res.Replayed;

    uint64_t Fp = 0, Fp2 = 0;
    stableQueryFingerprint(R->Assertions, S.MaxBranches, Fp, Fp2);
    if (Fp != R->Fp || Fp2 != R->Fp2)
      ++Res.FpMismatches;

    uint8_t GotV = (uint8_t)Got;
    if (GotV == R->Verdict) {
      ++Res.Matches;
    } else if (R->Verdict == 2) {
      // The original run gave up (budget / scheduler job deadline); a
      // definite answer on replay is progress, not drift.
      ++Res.Improved;
    } else {
      Divergence D;
      D.Obligation = R->Obligation;
      D.Side = R->Side;
      D.QueryIdx = R->QueryIdx;
      D.Recorded = R->Verdict;
      D.Replayed = GotV;
      Res.Divergences.push_back(std::move(D));
    }
  }
  return Res;
}

std::string replay::summaryText(const ReplayResult &R) {
  std::ostringstream Out;
  Out << "journal: " << R.TotalQueries << " queries, " << R.CachedRecords
      << " cached obligations";
  if (!R.HeaderOk)
    Out << " [BAD HEADER]";
  Out << "\n";
  for (const std::string &E : R.ParseErrors)
    Out << "  parse error: " << E << "\n";
  Out << "replayed: " << R.Replayed << "  matches: " << R.Matches
      << "  improved: " << R.Improved
      << "  divergences: " << R.Divergences.size() << "\n";
  if (R.FpMismatches)
    Out << "  note: " << R.FpMismatches
        << " fingerprint mismatches (simplifier drift; not gating)\n";
  if (R.Replayed) {
    Out << "recorded time: " << (R.RecordedNs / 1000000.0) << " ms"
        << "  replay time: " << (R.ReplayNs / 1000000.0) << " ms\n";
  }
  for (const Divergence &D : R.Divergences)
    Out << "  DIVERGENCE " << D.Obligation << " side=" << D.Side
        << " idx=" << D.QueryIdx << ": recorded "
        << verdictName(D.Recorded) << ", replayed "
        << verdictName(D.Replayed) << "\n";
  return Out.str();
}
