//===- solver/Simplify.cpp --------------------------------------------------===//

#include "solver/Simplify.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"

#include <unordered_map>

using namespace gilr;

Expr gilr::simplify(const Expr &E) {
  if (!E || E->Kids.empty())
    return E;
  std::vector<Expr> Kids;
  Kids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids)
    Kids.push_back(simplify(Kid));
  switch (E->Kind) {
  case ExprKind::Not:
    return mkNot(Kids[0]);
  case ExprKind::And:
    return mkAnd(std::move(Kids));
  case ExprKind::Or:
    return mkOr(std::move(Kids));
  case ExprKind::Implies:
    return mkImplies(Kids[0], Kids[1]);
  case ExprKind::Ite:
    return mkIte(Kids[0], Kids[1], Kids[2]);
  case ExprKind::Eq:
    return mkEq(Kids[0], Kids[1]);
  case ExprKind::Lt:
    return mkLt(Kids[0], Kids[1]);
  case ExprKind::Le:
    return mkLe(Kids[0], Kids[1]);
  case ExprKind::Add:
    return mkAdd(std::move(Kids));
  case ExprKind::Sub:
    return mkSub(Kids[0], Kids[1]);
  case ExprKind::Mul:
    return mkMul(Kids[0], Kids[1]);
  case ExprKind::Neg:
    return mkNeg(Kids[0]);
  case ExprKind::Some:
    return mkSome(Kids[0]);
  case ExprKind::IsSome:
    return mkIsSome(Kids[0]);
  case ExprKind::Unwrap:
    return mkUnwrap(Kids[0]);
  case ExprKind::SeqUnit:
    return mkSeqUnit(Kids[0]);
  case ExprKind::SeqConcat:
    return mkSeqConcat(std::move(Kids));
  case ExprKind::SeqLen:
    return mkSeqLen(Kids[0]);
  case ExprKind::SeqNth:
    return mkSeqNth(Kids[0], Kids[1]);
  case ExprKind::SeqSub:
    return mkSeqSub(Kids[0], Kids[1], Kids[2]);
  case ExprKind::TupleLit:
    return mkTuple(std::move(Kids));
  case ExprKind::TupleGet:
    return mkTupleGet(Kids[0], E->Index);
  case ExprKind::LftIncl:
    return mkLftIncl(Kids[0], Kids[1]);
  case ExprKind::App:
    return mkApp(E->Name, std::move(Kids), E->NodeSort);
  default:
    GILR_UNREACHABLE("leaf with kids in simplify");
  }
}

Expr gilr::negate(const Expr &E) {
  switch (E->Kind) {
  case ExprKind::BoolLit:
    return mkBool(!E->BoolVal);
  case ExprKind::Not:
    return E->Kids[0];
  case ExprKind::And: {
    std::vector<Expr> Parts;
    for (const Expr &Kid : E->Kids)
      Parts.push_back(negate(Kid));
    return mkOr(std::move(Parts));
  }
  case ExprKind::Or: {
    std::vector<Expr> Parts;
    for (const Expr &Kid : E->Kids)
      Parts.push_back(negate(Kid));
    return mkAnd(std::move(Parts));
  }
  case ExprKind::Implies:
    return mkAnd(E->Kids[0], negate(E->Kids[1]));
  case ExprKind::Lt:
    return mkLe(E->Kids[1], E->Kids[0]);
  case ExprKind::Le:
    return mkLt(E->Kids[1], E->Kids[0]);
  case ExprKind::Ite:
    return mkIte(E->Kids[0], negate(E->Kids[1]), negate(E->Kids[2]));
  default:
    return mkNot(E);
  }
}

Expr gilr::resolveIte(const Expr &E, const Expr &Cond, bool Positive) {
  if (!E)
    return E;
  if (E->Kind == ExprKind::Ite && exprEquals(E->Kids[0], Cond))
    return resolveIte(Positive ? E->Kids[1] : E->Kids[2], Cond, Positive);
  if (E->Kids.empty())
    return E;
  bool Changed = false;
  std::vector<Expr> Kids;
  Kids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids) {
    Expr NewKid = resolveIte(Kid, Cond, Positive);
    Changed |= NewKid.get() != Kid.get();
    Kids.push_back(std::move(NewKid));
  }
  if (!Changed)
    return E;
  auto Node = std::make_shared<ExprNode>(E->Kind, E->NodeSort, std::move(Kids));
  Node->Name = E->Name;
  Node->IntVal = E->IntVal;
  Node->RatVal = E->RatVal;
  Node->BoolVal = E->BoolVal;
  Node->LocId = E->LocId;
  Node->Index = E->Index;
  Node->finalizeHash();
  return simplify(Node);
}

static Expr findIteConditionImpl(const Expr &E, bool InTermPosition) {
  if (!E)
    return nullptr;
  if (E->Kind == ExprKind::Ite && InTermPosition)
    return E->Kids[0];
  bool KidsAreTerms =
      InTermPosition || E->Kind == ExprKind::Eq || E->Kind == ExprKind::Lt ||
      E->Kind == ExprKind::Le || E->Kind == ExprKind::IsSome ||
      E->Kind == ExprKind::App || E->Kind == ExprKind::LftIncl;
  for (const Expr &Kid : E->Kids)
    if (Expr Found = findIteConditionImpl(Kid, KidsAreTerms))
      return Found;
  return nullptr;
}

Expr gilr::findIteCondition(const Expr &E) {
  return findIteConditionImpl(E, false);
}

//===----------------------------------------------------------------------===//
// Fact-directed reduction
//===----------------------------------------------------------------------===//

/// "Constructor-ish" terms are useful rewrite targets: they expose structure
/// (tuples, options, locations) that unblocks pointer decoding.
static bool isConstructorish(const Expr &E) {
  switch (E->Kind) {
  case ExprKind::TupleLit:
  case ExprKind::Some:
  case ExprKind::NoneLit:
  case ExprKind::LocLit:
  case ExprKind::IntLit:
  case ExprKind::SeqUnit:
  case ExprKind::SeqNil:
  case ExprKind::SeqConcat:
    return true;
  default:
    return false;
  }
}

static bool containsSubexprRW(const Expr &Hay, const Expr &Needle) {
  if (exprEquals(Hay, Needle))
    return true;
  for (const Expr &Kid : Hay->Kids)
    if (containsSubexprRW(Kid, Needle))
      return true;
  return false;
}

namespace {
struct ExprKeyHash {
  std::size_t operator()(const Expr &E) const { return E->hash(); }
};
struct ExprKeyEq {
  bool operator()(const Expr &A, const Expr &B) const {
    return exprEquals(A, B);
  }
};
} // namespace

using RewriteMap = std::unordered_map<Expr, Expr, ExprKeyHash, ExprKeyEq>;

static Expr rewriteOnce(const Expr &E, const RewriteMap &RW) {
  auto It = RW.find(E);
  if (It != RW.end())
    return It->second;
  if (E->Kids.empty())
    return E;
  bool Changed = false;
  std::vector<Expr> Kids;
  Kids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids) {
    Expr NK = rewriteOnce(Kid, RW);
    Changed |= NK.get() != Kid.get();
    Kids.push_back(std::move(NK));
  }
  if (!Changed)
    return E;
  auto Node = std::make_shared<ExprNode>(E->Kind, E->NodeSort, std::move(Kids));
  Node->Name = E->Name;
  Node->IntVal = E->IntVal;
  Node->RatVal = E->RatVal;
  Node->BoolVal = E->BoolVal;
  Node->LocId = E->LocId;
  Node->Index = E->Index;
  Node->finalizeHash();
  return simplify(Node);
}

Expr gilr::reduceWithFacts(const Expr &E, const std::vector<Expr> &Facts) {
  RewriteMap RW;
  for (const Expr &Fact : Facts) {
    if (!Fact || Fact->Kind != ExprKind::Eq)
      continue;
    for (int Side = 0; Side != 2; ++Side) {
      const Expr &From = Fact->Kids[Side];
      const Expr &To = Fact->Kids[1 - Side];
      if (isConstructorish(From) || !isConstructorish(To))
        continue;
      if (containsSubexprRW(To, From))
        continue; // Avoid trivial rewrite loops.
      RW.emplace(From, To);
    }
  }
  if (RW.empty())
    return E;
  Expr Cur = E;
  for (int I = 0; I != 8; ++I) {
    Expr Next = rewriteOnce(Cur, RW);
    if (exprEquals(Next, Cur))
      break;
    Cur = Next;
  }
  return Cur;
}
