//===- solver/Simplify.cpp --------------------------------------------------===//

#include "solver/Simplify.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

using namespace gilr;

//===----------------------------------------------------------------------===//
// Identity-keyed simplify memo
//===----------------------------------------------------------------------===//

namespace {

constexpr std::size_t NumMemoShards = 64; // Power of two.

struct MemoShard {
  std::mutex Mu;
  /// Intern id of the input node -> simplified result. Entries never become
  /// stale: simplify is pure and interned nodes are immortal.
  std::unordered_map<uint64_t, Expr> Map;
};

/// Leaked for the same reason as the intern tables (see sym/Intern.cpp):
/// memo entries pin interned nodes and must not be torn down at exit.
MemoShard *memoShards() {
  static MemoShard *S = new MemoShard[NumMemoShards];
  return S;
}

std::size_t memoShardOf(uint64_t Id) { return (Id >> 2) & (NumMemoShards - 1); }

std::atomic<uint64_t> MemoHits{0};
std::atomic<uint64_t> MemoMisses{0};
std::atomic<bool> MemoEnabled{true};

void memoStore(uint64_t Id, const Expr &R) {
  MemoShard &Sh = memoShards()[memoShardOf(Id)];
  std::lock_guard<std::mutex> Lock(Sh.Mu);
  Sh.Map.emplace(Id, R);
}

} // namespace

SimplifyStats gilr::simplifyMemoStats() {
  SimplifyStats S;
  S.Hits = MemoHits.load(std::memory_order_relaxed);
  S.Misses = MemoMisses.load(std::memory_order_relaxed);
  return S;
}

bool gilr::setSimplifyMemoEnabled(bool Enabled) {
  return MemoEnabled.exchange(Enabled, std::memory_order_acq_rel);
}

Expr gilr::simplify(const Expr &E) {
  if (!E || E->Kids.empty())
    return E;
  // Foreign (un-interned) nodes have no stable identity to key on; they only
  // appear when interning is disabled for benchmarking.
  const bool UseMemo =
      E->Id != 0 && MemoEnabled.load(std::memory_order_acquire);
  if (UseMemo) {
    MemoShard &Sh = memoShards()[memoShardOf(E->Id)];
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    auto It = Sh.Map.find(E->Id);
    if (It != Sh.Map.end()) {
      MemoHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  std::vector<Expr> Kids;
  Kids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids)
    Kids.push_back(simplify(Kid));
  Expr R = rebuildWithKids(E, std::move(Kids));
  if (UseMemo) {
    MemoMisses.fetch_add(1, std::memory_order_relaxed);
    memoStore(E->Id, R);
    // Seed the fixpoint too: simplify(simplify(e)) is e's result by
    // construction, so record R -> R and save the re-walk.
    if (R && R->Id != 0 && R->Id != E->Id && !R->Kids.empty())
      memoStore(R->Id, R);
  }
  return R;
}

Expr gilr::negate(const Expr &E) {
  switch (E->Kind) {
  case ExprKind::BoolLit:
    return mkBool(!E->BoolVal);
  case ExprKind::Not:
    return E->Kids[0];
  case ExprKind::And: {
    std::vector<Expr> Parts;
    for (const Expr &Kid : E->Kids)
      Parts.push_back(negate(Kid));
    return mkOr(std::move(Parts));
  }
  case ExprKind::Or: {
    std::vector<Expr> Parts;
    for (const Expr &Kid : E->Kids)
      Parts.push_back(negate(Kid));
    return mkAnd(std::move(Parts));
  }
  case ExprKind::Implies:
    return mkAnd(E->Kids[0], negate(E->Kids[1]));
  case ExprKind::Lt:
    return mkLe(E->Kids[1], E->Kids[0]);
  case ExprKind::Le:
    return mkLt(E->Kids[1], E->Kids[0]);
  case ExprKind::Ite:
    return mkIte(E->Kids[0], negate(E->Kids[1]), negate(E->Kids[2]));
  default:
    return mkNot(E);
  }
}

Expr gilr::resolveIte(const Expr &E, const Expr &Cond, bool Positive) {
  if (!E)
    return E;
  if (E->Kind == ExprKind::Ite && exprEquals(E->Kids[0], Cond))
    return resolveIte(Positive ? E->Kids[1] : E->Kids[2], Cond, Positive);
  if (E->Kids.empty())
    return E;
  bool Changed = false;
  std::vector<Expr> Kids;
  Kids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids) {
    Expr NewKid = resolveIte(Kid, Cond, Positive);
    Changed |= NewKid.get() != Kid.get();
    Kids.push_back(std::move(NewKid));
  }
  if (!Changed)
    return E;
  return simplify(rebuildWithKids(E, std::move(Kids)));
}

static Expr findIteConditionImpl(const Expr &E, bool InTermPosition) {
  if (!E)
    return nullptr;
  if (E->Kind == ExprKind::Ite && InTermPosition)
    return E->Kids[0];
  bool KidsAreTerms =
      InTermPosition || E->Kind == ExprKind::Eq || E->Kind == ExprKind::Lt ||
      E->Kind == ExprKind::Le || E->Kind == ExprKind::IsSome ||
      E->Kind == ExprKind::App || E->Kind == ExprKind::LftIncl;
  for (const Expr &Kid : E->Kids)
    if (Expr Found = findIteConditionImpl(Kid, KidsAreTerms))
      return Found;
  return nullptr;
}

Expr gilr::findIteCondition(const Expr &E) {
  return findIteConditionImpl(E, false);
}

//===----------------------------------------------------------------------===//
// Fact-directed reduction
//===----------------------------------------------------------------------===//

/// "Constructor-ish" terms are useful rewrite targets: they expose structure
/// (tuples, options, locations) that unblocks pointer decoding.
static bool isConstructorish(const Expr &E) {
  switch (E->Kind) {
  case ExprKind::TupleLit:
  case ExprKind::Some:
  case ExprKind::NoneLit:
  case ExprKind::LocLit:
  case ExprKind::IntLit:
  case ExprKind::SeqUnit:
  case ExprKind::SeqNil:
  case ExprKind::SeqConcat:
    return true;
  default:
    return false;
  }
}

static bool containsSubexprRW(const Expr &Hay, const Expr &Needle) {
  if (exprEquals(Hay, Needle))
    return true;
  for (const Expr &Kid : Hay->Kids)
    if (containsSubexprRW(Kid, Needle))
      return true;
  return false;
}

namespace {
struct ExprKeyHash {
  std::size_t operator()(const Expr &E) const { return E->hash(); }
};
struct ExprKeyEq {
  bool operator()(const Expr &A, const Expr &B) const {
    return exprEquals(A, B);
  }
};
} // namespace

using RewriteMap = std::unordered_map<Expr, Expr, ExprKeyHash, ExprKeyEq>;

static Expr rewriteOnce(const Expr &E, const RewriteMap &RW) {
  auto It = RW.find(E);
  if (It != RW.end())
    return It->second;
  if (E->Kids.empty())
    return E;
  bool Changed = false;
  std::vector<Expr> Kids;
  Kids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids) {
    Expr NK = rewriteOnce(Kid, RW);
    Changed |= NK.get() != Kid.get();
    Kids.push_back(std::move(NK));
  }
  if (!Changed)
    return E;
  return simplify(rebuildWithKids(E, std::move(Kids)));
}

Expr gilr::reduceWithFacts(const Expr &E, const std::vector<Expr> &Facts) {
  RewriteMap RW;
  for (const Expr &Fact : Facts) {
    if (!Fact || Fact->Kind != ExprKind::Eq)
      continue;
    for (int Side = 0; Side != 2; ++Side) {
      const Expr &From = Fact->Kids[Side];
      const Expr &To = Fact->Kids[1 - Side];
      if (isConstructorish(From) || !isConstructorish(To))
        continue;
      if (containsSubexprRW(To, From))
        continue; // Avoid trivial rewrite loops.
      RW.emplace(From, To);
    }
  }
  if (RW.empty())
    return E;
  Expr Cur = E;
  for (int I = 0; I != 8; ++I) {
    Expr Next = rewriteOnce(Cur, RW);
    if (exprEquals(Next, Cur))
      break;
    Cur = Next;
  }
  return Cur;
}
