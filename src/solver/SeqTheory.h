//===- solver/SeqTheory.h - Sequence reasoning -----------------------------===//
///
/// \file
/// Axiom instantiation and equality decomposition for the sequence sort:
/// non-negativity of lengths, range facts for subsequences, unit-prefix/
/// suffix stripping of concatenation equalities (needed to discharge
/// postconditions like repr = cons(x, repr')), and static-length clash
/// detection.
///
/// Note on SeqSub: subsequence terms are only ever constructed by the heap
/// within solver-checked ranges, so their range side-conditions
/// (0 <= from, 0 <= len, from + len <= |s|) are asserted as facts here.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_SEQTHEORY_H
#define GILR_SOLVER_SEQTHEORY_H

#include "sym/Expr.h"

#include <utility>
#include <vector>

namespace gilr {

/// A literal: an atom with a polarity.
using Literal = std::pair<Expr, bool>;

/// Result of sequence-fact derivation.
struct SeqFacts {
  std::vector<Literal> Derived; ///< Extra literals to assert.
  bool Conflict = false;        ///< A definite clash was found.
};

/// Derives sequence facts from the atoms of one solver branch.
SeqFacts deriveSeqFacts(const std::vector<Literal> &Atoms);

/// Minimum length of \p E provable from its constructors alone.
__int128 minStaticSeqLen(const Expr &E);

} // namespace gilr

#endif // GILR_SOLVER_SEQTHEORY_H
