//===- solver/LinArith.cpp ---------------------------------------------------===//

#include "solver/LinArith.h"

#include "sym/ExprBuilder.h"

#include <algorithm>
#include <cassert>

using namespace gilr;

static void addScaled(LinTerm &Dst, const LinTerm &Src, Rational Factor) {
  for (const auto &[Key, Coef] : Src.Coeffs) {
    Rational &Slot = Dst.Coeffs[Key];
    Slot = Slot + Coef * Factor;
    if (Slot.isZero())
      Dst.Coeffs.erase(Key);
  }
  Dst.Const = Dst.Const + Src.Const * Factor;
  Dst.AllInt = Dst.AllInt && Src.AllInt;
}

/// Conservative integer-sortedness check used for strict tightening.
static bool looksInteger(const Expr &E) {
  switch (E->Kind) {
  case ExprKind::IntLit:
  case ExprKind::SeqLen:
    return true;
  case ExprKind::RealLit:
    return false;
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
  case ExprKind::Neg: {
    for (const Expr &Kid : E->Kids)
      if (!looksInteger(Kid))
        return false;
    return true;
  }
  default:
    return E->NodeSort == Sort::Int;
  }
}

LinTerm LinArith::linearize(const Expr &E) {
  LinTerm Out;
  switch (E->Kind) {
  case ExprKind::IntLit:
    Out.Const = Rational(E->IntVal, 1);
    return Out;
  case ExprKind::RealLit:
    Out.Const = E->RatVal;
    Out.AllInt = false;
    return Out;
  case ExprKind::Add:
    for (const Expr &Kid : E->Kids)
      addScaled(Out, linearize(Kid), Rational::fromInt(1));
    return Out;
  case ExprKind::Sub: {
    addScaled(Out, linearize(E->Kids[0]), Rational::fromInt(1));
    addScaled(Out, linearize(E->Kids[1]), Rational::fromInt(-1));
    return Out;
  }
  case ExprKind::Neg:
    addScaled(Out, linearize(E->Kids[0]), Rational::fromInt(-1));
    return Out;
  case ExprKind::Mul: {
    // Builders canonicalise the constant to the left.
    __int128 C;
    if (getIntLit(E->Kids[0], C)) {
      addScaled(Out, linearize(E->Kids[1]), Rational(C, 1));
      return Out;
    }
    if (E->Kids[0]->Kind == ExprKind::RealLit) {
      addScaled(Out, linearize(E->Kids[1]), E->Kids[0]->RatVal);
      Out.AllInt = false;
      return Out;
    }
    break; // Fall through to the opaque case.
  }
  default:
    break;
  }
  // Opaque term: identify it up to congruence. If its class carries an
  // integer-literal witness, substitute the value directly.
  Expr W = Cong.witness(E);
  if (W && W->Kind == ExprKind::IntLit) {
    Out.Const = Rational(W->IntVal, 1);
    return Out;
  }
  if (W && W->Kind == ExprKind::RealLit) {
    Out.Const = W->RatVal;
    Out.AllInt = false;
    return Out;
  }
  int Key = Cong.canonClass(E);
  Out.Coeffs[Key] = Rational::fromInt(1);
  Out.AllInt = looksInteger(E);
  return Out;
}

void LinArith::addConstraint(LinTerm T, bool Strict) {
  LinConstraint C;
  C.Coeffs = std::move(T.Coeffs);
  C.Const = T.Const;
  C.Strict = Strict;
  C.AllInt = T.AllInt;
  // Integer tightening: t > 0 with all-int t becomes t - 1 >= 0.
  if (C.Strict && C.AllInt && C.Const.Den == 1) {
    C.Const = C.Const - Rational::fromInt(1);
    C.Strict = false;
  }
  Constraints.push_back(std::move(C));
}

/// True if the atom's operands are arithmetic (Int/Real) as opposed to
/// options, sequences, locations etc.
static bool isArithComparable(const Expr &A, const Expr &B) {
  auto arith = [](const Expr &E) {
    switch (E->NodeSort) {
    case Sort::Int:
    case Sort::Real:
      return true;
    case Sort::Any:
      // Unwraps/tuple-gets of unknown sort: allow if the *other* side is
      // known arithmetic; handled by the caller taking the disjunction.
      return false;
    default:
      return false;
    }
  };
  return arith(A) || arith(B);
}

void LinArith::addAtom(const Expr &A, bool Positive) {
  switch (A->Kind) {
  case ExprKind::Lt: {
    LinTerm L = linearize(A->Kids[0]);
    LinTerm R = linearize(A->Kids[1]);
    if (Positive) {
      // R - L > 0.
      LinTerm T;
      addScaled(T, R, Rational::fromInt(1));
      addScaled(T, L, Rational::fromInt(-1));
      addConstraint(std::move(T), /*Strict=*/true);
    } else {
      // L - R >= 0.
      LinTerm T;
      addScaled(T, L, Rational::fromInt(1));
      addScaled(T, R, Rational::fromInt(-1));
      addConstraint(std::move(T), /*Strict=*/false);
    }
    return;
  }
  case ExprKind::Le: {
    LinTerm L = linearize(A->Kids[0]);
    LinTerm R = linearize(A->Kids[1]);
    if (Positive) {
      LinTerm T;
      addScaled(T, R, Rational::fromInt(1));
      addScaled(T, L, Rational::fromInt(-1));
      addConstraint(std::move(T), /*Strict=*/false);
    } else {
      LinTerm T;
      addScaled(T, L, Rational::fromInt(1));
      addScaled(T, R, Rational::fromInt(-1));
      addConstraint(std::move(T), /*Strict=*/true);
    }
    return;
  }
  case ExprKind::Eq: {
    if (!Positive)
      return; // Disequalities are split by the solver.
    if (!isArithComparable(A->Kids[0], A->Kids[1]))
      return;
    LinTerm L = linearize(A->Kids[0]);
    LinTerm R = linearize(A->Kids[1]);
    LinTerm T1, T2;
    addScaled(T1, R, Rational::fromInt(1));
    addScaled(T1, L, Rational::fromInt(-1));
    addScaled(T2, L, Rational::fromInt(1));
    addScaled(T2, R, Rational::fromInt(-1));
    addConstraint(std::move(T1), false);
    addConstraint(std::move(T2), false);
    return;
  }
  default:
    return;
  }
}

bool LinArith::feasible(bool &Definite) {
  Definite = true;
  const std::size_t MaxConstraints = 4000;
  std::vector<LinConstraint> Work = Constraints;

  auto constCheck = [&](std::vector<LinConstraint> &Cs) -> bool {
    std::size_t Keep = 0;
    for (std::size_t I = 0; I != Cs.size(); ++I) {
      if (!Cs[I].Coeffs.empty()) {
        if (Keep != I)
          Cs[Keep] = std::move(Cs[I]);
        ++Keep;
        continue;
      }
      const Rational &C = Cs[I].Const;
      bool Holds = Cs[I].Strict ? (Rational::fromInt(0) < C)
                                : (Rational::fromInt(0) <= C);
      if (!Holds)
        return false;
    }
    Cs.resize(Keep);
    return true;
  };

  if (!constCheck(Work))
    return false;

  while (!Work.empty()) {
    // Collect variables and pick the cheapest to eliminate.
    std::map<int, std::pair<int, int>> VarUse; // pos, neg counts.
    for (const LinConstraint &C : Work)
      for (const auto &[Key, Coef] : C.Coeffs) {
        if (Coef.isNegative())
          ++VarUse[Key].second;
        else
          ++VarUse[Key].first;
      }
    if (VarUse.empty())
      break;
    int BestVar = -1;
    long BestCost = -1;
    for (const auto &[Key, Use] : VarUse) {
      long Cost = static_cast<long>(Use.first) * Use.second;
      if (BestCost == -1 || Cost < BestCost) {
        BestCost = Cost;
        BestVar = Key;
      }
    }

    std::vector<LinConstraint> Pos, Neg, Rest;
    for (LinConstraint &C : Work) {
      auto It = C.Coeffs.find(BestVar);
      if (It == C.Coeffs.end())
        Rest.push_back(std::move(C));
      else if (It->second.isNegative())
        Neg.push_back(std::move(C));
      else
        Pos.push_back(std::move(C));
    }

    for (const LinConstraint &P : Pos) {
      Rational A = P.Coeffs.at(BestVar); // > 0.
      for (const LinConstraint &N : Neg) {
        Rational B = -N.Coeffs.at(BestVar); // > 0.
        // Combine B*P + A*N, eliminating BestVar.
        LinConstraint C;
        C.Strict = P.Strict || N.Strict;
        C.AllInt = P.AllInt && N.AllInt;
        C.Const = P.Const * B + N.Const * A;
        for (const auto &[Key, Coef] : P.Coeffs) {
          if (Key == BestVar)
            continue;
          C.Coeffs[Key] = Coef * B;
        }
        for (const auto &[Key, Coef] : N.Coeffs) {
          if (Key == BestVar)
            continue;
          Rational &Slot = C.Coeffs[Key];
          Slot = Slot + Coef * A;
          if (Slot.isZero())
            C.Coeffs.erase(Key);
        }
        Rest.push_back(std::move(C));
        if (Rest.size() > MaxConstraints) {
          Definite = false;
          return true; // Gave up: unknown, treated as feasible.
        }
      }
    }
    Work = std::move(Rest);
    if (!constCheck(Work))
      return false;
  }
  return true;
}
