//===- solver/Replay.h - Offline journal replay ----------------------------===//
///
/// \file
/// Re-runs a recorded query journal (solver/Journal.h) against the in-tree
/// solver and diffs the verdicts — the offline half of the proof flight
/// recorder, driven by the \c gilr-replay tool.
///
/// Replay semantics: each \c query record's assertion set is re-solved from
/// scratch under the recorded DPLL budget, with the flight recorder paused
/// and no query memo installed, so the replay is a pure function of the
/// journal. Verdict comparison is asymmetric by design:
///
///  - a recorded \b definite verdict (sat/unsat) that replays differently
///    is a \b divergence — the solver or the journal codec changed meaning;
///  - a recorded \b unknown that replays definite counts as \b improved,
///    not divergent: Unknown records budget/scheduler exhaustion, which a
///    quieter replay machine may legitimately get past.
///
/// \c cached records carry no query to re-run; they are counted so the
/// replay summary accounts for every obligation of the original run.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_REPLAY_H
#define GILR_SOLVER_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

namespace gilr {
namespace replay {

struct ReplayOptions {
  /// Replay only records of this obligation ("" = all).
  std::string ObligationFilter;
  /// Replay only the N slowest recorded queries (0 = all).
  std::size_t SlowestN = 0;
  /// Hard cap on replayed queries after filtering (0 = no cap).
  std::size_t Limit = 0;
};

/// One verdict mismatch between the journal and the replay.
struct Divergence {
  std::string Obligation;
  char Side = '?';
  uint32_t QueryIdx = 0;
  uint8_t Recorded = 2; ///< 0 Sat, 1 Unsat, 2 Unknown.
  uint8_t Replayed = 2;
};

struct ReplayResult {
  bool HeaderOk = false;
  std::vector<std::string> ParseErrors;

  std::size_t TotalQueries = 0;  ///< Query records in the journal.
  std::size_t CachedRecords = 0; ///< Incremental-store cached records.
  std::size_t Replayed = 0;      ///< Queries actually re-solved.
  std::size_t Matches = 0;
  std::size_t Improved = 0; ///< Recorded unknown, replayed definite.
  /// Re-simplified assertion sets whose stable fingerprint no longer equals
  /// the recorded one. Informational (simplifier drift), never gating.
  std::size_t FpMismatches = 0;

  uint64_t RecordedNs = 0; ///< Summed recorded durations of replayed set.
  uint64_t ReplayNs = 0;   ///< Summed replay durations.

  std::vector<Divergence> Divergences;

  /// True iff the journal parsed cleanly and no definite verdict diverged.
  bool ok() const {
    return HeaderOk && ParseErrors.empty() && Divergences.empty();
  }
};

/// Replays the journal in \p Text. Pure: installs no memo, pauses the
/// flight recorder, leaves no state behind.
ReplayResult replayJournalText(const std::string &Text,
                               const ReplayOptions &O = {});

/// Renders a human-readable replay summary (the gilr-replay output).
std::string summaryText(const ReplayResult &R);

} // namespace replay
} // namespace gilr

#endif // GILR_SOLVER_REPLAY_H
