//===- solver/Congruence.h - Congruence closure with constructors ---------===//
///
/// \file
/// A congruence-closure engine over the expression DAG with built-in
/// constructor reasoning: merging Some(a) with Some(b) merges a with b,
/// merging None with Some(_) (or two distinct literals) is a conflict, and
/// projection terms (Unwrap, TupleGet, SeqLen over static sequences) are
/// evaluated against constructor witnesses discovered in their argument's
/// class. This is the equality core of the SMT-lite solver standing in for
/// Z3 (see DESIGN.md, Substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_CONGRUENCE_H
#define GILR_SOLVER_CONGRUENCE_H

#include "sym/Expr.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace gilr {

/// Congruence closure over registered terms.
class Congruence {
public:
  Congruence() = default;

  /// Registers \p E and all its subterms; returns its node id.
  int registerTerm(const Expr &E);

  /// Asserts a = b. Returns false on conflict.
  bool addEquality(const Expr &A, const Expr &B);

  /// Queues a = b without saturating; call saturate() once after a batch.
  void queueEquality(const Expr &A, const Expr &B);

  /// Records a disequality to be checked by \c hasDisequalityConflict.
  void addDisequality(const Expr &A, const Expr &B);

  /// Runs closure to fixpoint. Returns false on conflict.
  bool saturate();

  /// True if some asserted disequality collapsed into an equality.
  bool hasDisequalityConflict();

  /// True if a class contains sequences of incompatible static lengths.
  bool hasSeqLengthConflict();

  bool inConflict() const { return Conflict; }

  /// True if the closure proves a = b (both terms are registered on demand).
  bool provedEqual(const Expr &A, const Expr &B);

  /// Returns the canonical class id of \p E (its union-find representative
  /// after saturation): a dense per-instance int, deterministic in
  /// registration order. Terms equal up to congruence share an id. Used by
  /// the linear-arithmetic backend and the solver's propositional/lifetime
  /// maps to identify opaque terms up to equality. (Interning already
  /// dedupes equal literals to one term id, so a literal witness needs no
  /// separate key space.)
  int canonClass(const Expr &E);

  /// Returns the constructor/literal witness of the class of \p E if one is
  /// known (IntLit, BoolLit, RealLit, LocLit, NoneLit, Some, TupleLit,
  /// SeqNil/SeqUnit/static SeqConcat), else nullptr.
  Expr witness(const Expr &E);

  /// Enumerates one representative term per class (for theory export).
  std::vector<Expr> classReps();

  /// A sequence-constructor member (concat/unit/nil) of E's class, if any;
  /// used for associativity reasoning over concatenations.
  Expr seqShapeWitness(const Expr &E);

private:
  struct Node {
    Expr Term;
    int Parent;
    int Size;
  };

  int find(int I);
  bool merge(int A, int B);
  /// Symbol id of \p N's Name for the signature pass: 0 for unnamed nodes,
  /// the global interned NameSym when present, else a high-bit-tagged local
  /// id (foreign nodes only) so foreign names can never collide with
  /// interned ones.
  uint64_t nameSymbol(const ExprNode &N);
  bool isConstructorLike(const Expr &E) const;
  /// Returns 0 if two constructor-like terms are compatible roots (same
  /// shape), 1 if identical-by-payload, -1 if definitely clashing.
  int constructorCompat(const Expr &A, const Expr &B) const;

  struct ExprPtrHash {
    std::size_t operator()(const Expr &E) const { return E->hash(); }
  };
  struct ExprPtrEq {
    bool operator()(const Expr &A, const Expr &B) const {
      return exprEquals(A, B);
    }
  };

  std::vector<Node> Nodes;
  std::unordered_map<Expr, int, ExprPtrHash, ExprPtrEq> TermIds;
  /// Fallback symbol ids for foreign (un-interned) names in the signature
  /// pass; global NameSym ids are used when available.
  std::unordered_map<std::string, uint64_t> LocalNameIds;
  std::vector<std::pair<int, int>> Pending;
  std::vector<std::pair<int, int>> Disequalities;
  /// Class id -> witness node id (constructor or literal member).
  std::unordered_map<int, int> Witness;
  bool Conflict = false;
};

} // namespace gilr

#endif // GILR_SOLVER_CONGRUENCE_H
