//===- solver/Congruence.h - Congruence closure with constructors ---------===//
///
/// \file
/// A congruence-closure engine over the expression DAG with built-in
/// constructor reasoning: merging Some(a) with Some(b) merges a with b,
/// merging None with Some(_) (or two distinct literals) is a conflict, and
/// projection terms (Unwrap, TupleGet, SeqLen over static sequences) are
/// evaluated against constructor witnesses discovered in their argument's
/// class. This is the equality core of the SMT-lite solver standing in for
/// Z3 (see DESIGN.md, Substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_CONGRUENCE_H
#define GILR_SOLVER_CONGRUENCE_H

#include "sym/Expr.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace gilr {

/// Congruence closure over registered terms.
class Congruence {
public:
  Congruence() = default;

  /// Registers \p E and all its subterms; returns its node id.
  int registerTerm(const Expr &E);

  /// Asserts a = b. Returns false on conflict.
  bool addEquality(const Expr &A, const Expr &B);

  /// Queues a = b without saturating; call saturate() once after a batch.
  void queueEquality(const Expr &A, const Expr &B);

  /// Records a disequality to be checked by \c hasDisequalityConflict.
  void addDisequality(const Expr &A, const Expr &B);

  /// Runs closure to fixpoint. Returns false on conflict.
  bool saturate();

  /// True if some asserted disequality collapsed into an equality.
  bool hasDisequalityConflict();

  /// True if a class contains sequences of incompatible static lengths.
  bool hasSeqLengthConflict();

  bool inConflict() const { return Conflict; }

  /// True if the closure proves a = b (both terms are registered on demand).
  bool provedEqual(const Expr &A, const Expr &B);

  /// Returns a canonical string key for the class of \p E: the payload of a
  /// literal witness when one exists, otherwise a class-unique name. Used by
  /// the linear-arithmetic backend to identify opaque terms up to equality.
  std::string canonKey(const Expr &E);

  /// Returns the constructor/literal witness of the class of \p E if one is
  /// known (IntLit, BoolLit, RealLit, LocLit, NoneLit, Some, TupleLit,
  /// SeqNil/SeqUnit/static SeqConcat), else nullptr.
  Expr witness(const Expr &E);

  /// Enumerates one representative term per class (for theory export).
  std::vector<Expr> classReps();

  /// A sequence-constructor member (concat/unit/nil) of E's class, if any;
  /// used for associativity reasoning over concatenations.
  Expr seqShapeWitness(const Expr &E);

private:
  struct Node {
    Expr Term;
    int Parent;
    int Size;
  };

  int find(int I);
  bool merge(int A, int B);
  bool isConstructorLike(const Expr &E) const;
  /// Returns 0 if two constructor-like terms are compatible roots (same
  /// shape), 1 if identical-by-payload, -1 if definitely clashing.
  int constructorCompat(const Expr &A, const Expr &B) const;

  struct ExprPtrHash {
    std::size_t operator()(const Expr &E) const { return E->hash(); }
  };
  struct ExprPtrEq {
    bool operator()(const Expr &A, const Expr &B) const {
      return exprEquals(A, B);
    }
  };

  std::vector<Node> Nodes;
  std::unordered_map<Expr, int, ExprPtrHash, ExprPtrEq> TermIds;
  std::vector<std::pair<int, int>> Pending;
  std::vector<std::pair<int, int>> Disequalities;
  /// Class id -> witness node id (constructor or literal member).
  std::unordered_map<int, int> Witness;
  bool Conflict = false;
};

} // namespace gilr

#endif // GILR_SOLVER_CONGRUENCE_H
