//===- solver/SolverChain.h - Layered checkSat decorator chain -------------===//
///
/// \file
/// The decorator interface \c Solver::checkSat routes every query through,
/// in the style of KLEE's solver chain (TimingSolver / QueryLoggingSolver /
/// CachingSolver stacked over the core). Layers are small stack objects
/// assembled per query; the stateful parts (the memo table, the flight
/// recorder's aggregates and journal buffer) are process-wide.
///
/// The chain, outermost first:
///
///   QueryJournalSolver   (solver/Flight.h, only when journaling is on)
///     TimingSolver       (solver/Flight.h, only when the recorder is on)
///       memo layer       (the scheduler's QueryCache via QueryMemo)
///         core solver    (the DPLL(T) search, Solver.cpp)
///
/// The journal and timing layers sit *above* the memo so cache-served and
/// searched queries are both observed — journal records carry a cache
/// marker, and the timing layer attributes a hit's (tiny) lookup cost
/// rather than losing the query entirely.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_SOLVERCHAIN_H
#define GILR_SOLVER_SOLVERCHAIN_H

#include "sym/Expr.h"

#include <cstdint>
#include <vector>

namespace gilr {

enum class SatResult { Sat, Unsat, Unknown };

/// One checkSat query as it travels down the chain. \c Work is the
/// simplified assertion set; the stable fingerprint pair is computed on
/// first use and shared by the observing layers (the memo computes its own
/// key, which may differ — see QueryMemo::wantsStableKeys).
struct ChainQuery {
  const std::vector<Expr> &Work;
  unsigned MaxBranches;

  /// Lazily computed process-stable fingerprint (stableQueryFingerprint);
  /// valid once StableFpReady.
  mutable uint64_t StableFp = 0;
  mutable uint64_t StableFp2 = 0;
  mutable bool StableFpReady = false;

  /// The stable fingerprint pair, computing it on first call.
  void stableFingerprint(uint64_t &Fp, uint64_t &Fp2) const;
};

/// What a layer returns: the verdict, whether it was served by the memo,
/// and the DPLL work the (original) search performed. \c DurationNs is
/// filled in by the TimingSolver layer on the way out (0 when timing is
/// off).
struct ChainOutcome {
  SatResult R = SatResult::Unknown;
  bool CacheHit = false;
  uint64_t Branches = 0;
  uint64_t TheoryChecks = 0;
  uint64_t DurationNs = 0;
};

/// One link of the chain. Decorators hold a reference to the next layer
/// and forward, observing the query and/or the outcome.
class SolverLayer {
public:
  virtual ~SolverLayer() = default;
  virtual ChainOutcome solve(const ChainQuery &Q) = 0;
};

} // namespace gilr

#endif // GILR_SOLVER_SOLVERCHAIN_H
