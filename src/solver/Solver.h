//===- solver/Solver.h - SMT-lite solver facade ----------------------------===//
///
/// \file
/// The entailment/satisfiability oracle used by every component of the
/// verifier, standing in for Z3 (see DESIGN.md). The architecture is a small
/// DPLL(T): boolean structure is explored by case-splitting; each branch's
/// literal set is checked by the theory stack (sequence facts, congruence
/// closure with constructor reasoning, Fourier–Motzkin linear arithmetic,
/// lifetime-inclusion closure).
///
/// Soundness contract: \c Unsat answers are proofs; \c Sat answers may be
/// approximate ("no conflict found"), which is the safe direction for
/// verification — an entailment that cannot be proved fails the proof rather
/// than admitting it.
///
/// Memoisation: before the DPLL search, \c checkSat (and therefore
/// \c entails, which delegates to it) consults the process-wide \c QueryMemo
/// if one is installed (the scheduler's sharded QueryCache, src/sched/).
/// Only definite \c Sat / \c Unsat verdicts are ever memoised — \c Unknown
/// results (budget or depth exhaustion) are recomputed every time — so a
/// cached answer is always the answer the full search would produce.
///
/// Observability: every query runs through the decorator chain of
/// SolverChain.h — when the proof flight recorder (solver/Flight.h) is
/// enabled, a TimingSolver and a QueryJournalSolver layer stack above the
/// memo, so per-query wall time, provenance and a replayable journal record
/// are captured for cache-served and searched queries alike. Both layers
/// are absent (a relaxed flag load) in the default configuration.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_SOLVER_H
#define GILR_SOLVER_SOLVER_H

#include "solver/SeqTheory.h"
#include "solver/SolverChain.h"
#include "support/Metrics.h"
#include "sym/Expr.h"

#include <cstdint>
#include <vector>

namespace gilr {

/// A memoised query verdict plus the DPLL work the original computation
/// performed. On a hit the work counts are replayed into the thread-local
/// job statistics so a job's report is identical whether its queries were
/// computed or served from the cache (identical queries do identical work).
struct QueryVerdict {
  SatResult R = SatResult::Unknown;
  uint64_t Branches = 0;
  uint64_t TheoryChecks = 0;
};

/// One memo entry as an exchangeable value: the (stable) fingerprint pair
/// plus the verdict. The incremental proof store persists vectors of these
/// and the scheduler's QueryCache exports/preloads them to round-trip the
/// cache across processes.
struct SavedQueryVerdict {
  uint64_t Fp = 0;
  uint64_t Fp2 = 0;
  QueryVerdict V;
};

/// Abstract memo consulted by \c Solver::checkSat before the DPLL search.
/// Implementations must be thread-safe; the scheduler's sharded LRU cache
/// (sched/QueryCache.h) is the production one. \p Fp is the normalized
/// (order-insensitive) structural fingerprint of the query; \p Fp2 an
/// independent check hash guarding against fingerprint collisions.
class QueryMemo {
public:
  virtual ~QueryMemo() = default;
  virtual bool lookup(uint64_t Fp, uint64_t Fp2, QueryVerdict &Out) = 0;
  virtual void insert(uint64_t Fp, uint64_t Fp2, const QueryVerdict &V) = 0;

  /// When true, \c Solver::checkSat keys this memo with
  /// \c stableQueryFingerprint instead of \c satQueryFingerprint. Stable
  /// keys are required whenever entries outlive the process (the
  /// incremental proof store persists them): CanonIds are assigned in
  /// interning order, which is racy under the parallel scheduler, so a
  /// CanonId-based key pair from one process could systematically collide
  /// with a *different* query's pair in the next — not a random collision
  /// but a reproducible unsound hit. The stable fingerprint depends only on
  /// expression structure (sym::exprStableHash).
  virtual bool wantsStableKeys() const { return false; }
};

/// Computes the memo fingerprint of a checkSat query over the simplified
/// assertion set \p Work: assertions are mapped to their intern CanonIds
/// (structural hash with the top bit set for foreign nodes), sorted for
/// order-insensitivity, and hashed *positionally* — unlike a commutative
/// sum, two different multisets of ids cannot cancel into the same value.
/// \p Fp2 receives an independently mixed hash of the same sequence.
void satQueryFingerprint(const std::vector<Expr> &Work, unsigned MaxBranches,
                         uint64_t &Fp, uint64_t &Fp2);

/// The pure core of \c satQueryFingerprint over an already-sorted id
/// sequence; exposed separately so tests can exercise collision behaviour
/// on crafted id multisets.
void satFingerprintFromIds(const std::vector<uint64_t> &SortedIds,
                           unsigned MaxBranches, uint64_t &Fp, uint64_t &Fp2);

/// Process-stable variant of \c satQueryFingerprint: identical sort-and-
/// hash-positionally construction, but assertions are identified by
/// \c exprStableHash rather than by their process-local intern CanonIds, so
/// the resulting key pair is reproducible across processes and safe to
/// persist (see \c QueryMemo::wantsStableKeys).
void stableQueryFingerprint(const std::vector<Expr> &Work,
                            unsigned MaxBranches, uint64_t &Fp,
                            uint64_t &Fp2);

/// Installs \p M as the process-wide query memo (nullptr uninstalls).
/// Returns the previously installed memo. The memo must outlive all solver
/// queries issued while it is installed.
QueryMemo *setQueryMemo(QueryMemo *M);

/// The currently installed process-wide query memo (may be nullptr).
QueryMemo *queryMemo();

/// The SMT-lite decision engine. Stateless between queries; statistics live
/// in the process-wide metrics registry (see support/Metrics.h) and are
/// mirrored into a thread-local instance for per-job attribution, so they
/// survive across the many Solver instantiations in engine/, creusot/ and
/// the harnesses. Callers wanting a per-phase delta snapshot the
/// thread-local stats before and after (SolverStats::operator-).
class Solver {
public:
  /// Checks the conjunction of \p Assertions for satisfiability.
  SatResult checkSat(const std::vector<Expr> &Assertions);

  /// True iff Ctx /\ not Goal is unsatisfiable (a proof of entailment).
  bool entails(const std::vector<Expr> &Ctx, const Expr &Goal);

  /// Entailment of a conjunction of goals.
  bool entailsAll(const std::vector<Expr> &Ctx,
                  const std::vector<Expr> &Goals);

  /// True iff Ctx is *not* proven unsatisfiable (the branch is viable).
  bool consistent(const std::vector<Expr> &Ctx) {
    return checkSat(Ctx) != SatResult::Unsat;
  }

  /// The process-wide solver statistics.
  SolverStats &stats() { return metrics::solverStats(); }
  const SolverStats &stats() const { return metrics::solverStats(); }

  /// Maximum number of DPLL branches explored per query before giving up.
  /// Part of the memo fingerprint: queries under different budgets never
  /// share cache entries.
  unsigned MaxBranches = 50000;

private:
  /// The innermost chain layer (Solver.cpp) runs the private DPLL search.
  friend class CoreSolverLayer;

  SatResult solveRec(std::vector<Expr> Work, std::vector<Literal> Lits,
                     unsigned Depth, unsigned &Budget);
  SatResult theoryCheck(const std::vector<Literal> &Lits, unsigned &Budget);
  SatResult baseTheoryCheck(const std::vector<Literal> &Lits);
};

} // namespace gilr

#endif // GILR_SOLVER_SOLVER_H
