//===- solver/Solver.h - SMT-lite solver facade ----------------------------===//
///
/// \file
/// The entailment/satisfiability oracle used by every component of the
/// verifier, standing in for Z3 (see DESIGN.md). The architecture is a small
/// DPLL(T): boolean structure is explored by case-splitting; each branch's
/// literal set is checked by the theory stack (sequence facts, congruence
/// closure with constructor reasoning, Fourier–Motzkin linear arithmetic,
/// lifetime-inclusion closure).
///
/// Soundness contract: \c Unsat answers are proofs; \c Sat answers may be
/// approximate ("no conflict found"), which is the safe direction for
/// verification — an entailment that cannot be proved fails the proof rather
/// than admitting it.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_SOLVER_H
#define GILR_SOLVER_SOLVER_H

#include "solver/SeqTheory.h"
#include "support/Metrics.h"
#include "sym/Expr.h"

#include <cstdint>
#include <vector>

namespace gilr {

enum class SatResult { Sat, Unsat, Unknown };

/// The SMT-lite decision engine. Stateless between queries; statistics live
/// in the process-wide metrics registry (see support/Metrics.h), so they
/// survive across the many Solver instantiations in engine/, creusot/ and
/// the harnesses. Callers wanting a per-phase delta snapshot the stats
/// before and after (SolverStats::operator-).
class Solver {
public:
  /// Checks the conjunction of \p Assertions for satisfiability.
  SatResult checkSat(const std::vector<Expr> &Assertions);

  /// True iff Ctx /\ not Goal is unsatisfiable (a proof of entailment).
  bool entails(const std::vector<Expr> &Ctx, const Expr &Goal);

  /// Entailment of a conjunction of goals.
  bool entailsAll(const std::vector<Expr> &Ctx,
                  const std::vector<Expr> &Goals);

  /// True iff Ctx is *not* proven unsatisfiable (the branch is viable).
  bool consistent(const std::vector<Expr> &Ctx) {
    return checkSat(Ctx) != SatResult::Unsat;
  }

  /// The process-wide solver statistics.
  SolverStats &stats() { return metrics::solverStats(); }
  const SolverStats &stats() const { return metrics::solverStats(); }

  /// Maximum number of DPLL branches explored per query before giving up.
  unsigned MaxBranches = 50000;

private:
  SatResult solveRec(std::vector<Expr> Work, std::vector<Literal> Lits,
                     unsigned Depth, unsigned &Budget);
  SatResult theoryCheck(const std::vector<Literal> &Lits, unsigned &Budget);
  SatResult baseTheoryCheck(const std::vector<Literal> &Lits);
};

} // namespace gilr

#endif // GILR_SOLVER_SOLVER_H
