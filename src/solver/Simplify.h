//===- solver/Simplify.h - Formula normalisation ---------------------------===//
///
/// \file
/// Bottom-up re-simplification and negation normal form helpers used by the
/// solver front-end before case-splitting.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SOLVER_SIMPLIFY_H
#define GILR_SOLVER_SIMPLIFY_H

#include "sym/Expr.h"

#include <cstdint>

namespace gilr {

/// Recursively rebuilds \p E through the smart constructors, re-triggering
/// all local simplifications (useful after substitution or as a cheap
/// pre-pass before solving). Results for interned nodes are memoized in a
/// process-wide identity-keyed (node id) table: simplify is pure and
/// deterministic, and hash-consing makes the result node identical no matter
/// which thread computed it first, so a shared memo is sound.
Expr simplify(const Expr &E);

/// Hit/miss counters for the identity-keyed simplify memo.
struct SimplifyStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

SimplifyStats simplifyMemoStats();

/// Enables/disables the simplify memo and returns the previous setting. On
/// by default; disabling exists for before/after benchmarking and for tests
/// that must observe un-memoized behaviour. Toggle only while no other
/// thread is simplifying.
bool setSimplifyMemoEnabled(bool Enabled);

/// Returns the negation of \p E with the negation pushed into comparisons:
/// not (a < b) becomes b <= a, not (a <= b) becomes b < a, De Morgan over
/// and/or, etc. Equalities stay as negated equalities.
Expr negate(const Expr &E);

/// Rewrites every Ite subterm of \p E whose condition is structurally equal
/// to \p Cond into its then- (if \p Positive) or else-branch. Used by the
/// solver when splitting on Ite conditions in term positions.
Expr resolveIte(const Expr &E, const Expr &Cond, bool Positive);

/// Finds some Ite subterm occurring in a *term* position inside \p E and
/// returns its condition, or nullptr if none exists.
Expr findIteCondition(const Expr &E);

/// Rewrites \p E using the equality \p Facts: subterms equated to
/// constructor forms (tuples, options, locations, literals, sequences) are
/// replaced by them and the result re-simplified, normalising projection
/// chains like Unwrap(TupleGet(v, 0)) into decodable structures. Bounded
/// iteration; never loops.
Expr reduceWithFacts(const Expr &E, const std::vector<Expr> &Facts);

} // namespace gilr

#endif // GILR_SOLVER_SIMPLIFY_H
