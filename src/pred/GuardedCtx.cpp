//===- pred/GuardedCtx.cpp ------------------------------------------------------===//

#include "pred/GuardedCtx.h"

#include "support/StringUtils.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::pred;

bool gilr::pred::argsMatch(const std::vector<Expr> &EntryArgs,
                           const std::vector<Expr> &QueryArgs,
                           const std::vector<bool> &InParam, Solver &S,
                           PathCondition &PC) {
  if (EntryArgs.size() != QueryArgs.size())
    return false;
  for (std::size_t I = 0, E = EntryArgs.size(); I != E; ++I) {
    bool IsIn = InParam.empty() || (I < InParam.size() && InParam[I]);
    if (!IsIn)
      continue;
    if (exprEquals(EntryArgs[I], QueryArgs[I]))
      continue;
    if (!PC.entails(S, mkEq(EntryArgs[I], QueryArgs[I])))
      return false;
  }
  return true;
}

void PredCtx::produce(const std::string &Name, std::vector<Expr> Args) {
  Preds.push_back(FoldedPred{Name, std::move(Args)});
}

Outcome<std::vector<Expr>> PredCtx::consume(const std::string &Name,
                                            const std::vector<Expr> &Args,
                                            const std::vector<bool> &InParam,
                                            Solver &S, PathCondition &PC) {
  for (std::size_t I = 0, E = Preds.size(); I != E; ++I) {
    if (Preds[I].Name != Name)
      continue;
    if (!argsMatch(Preds[I].Args, Args, InParam, S, PC))
      continue;
    std::vector<Expr> Out = Preds[I].Args;
    Preds.erase(Preds.begin() + static_cast<long>(I));
    return Outcome<std::vector<Expr>>::success(std::move(Out));
  }
  return Outcome<std::vector<Expr>>::failure("no folded instance of " + Name +
                                             " matches the in-parameters");
}

std::string PredCtx::dump() const {
  std::string Out;
  for (const FoldedPred &P : Preds) {
    std::vector<std::string> Parts;
    for (const Expr &A : P.Args)
      Parts.push_back(exprToString(A));
    Out += P.Name + "(" + join(Parts, ", ") + ")\n";
  }
  return Out;
}

void GuardedCtx::produceGuarded(const std::string &Name, Expr Kappa,
                                std::vector<Expr> Args) {
  Guarded.push_back(GuardedPred{Name, std::move(Kappa), std::move(Args)});
}

Outcome<GuardedPred> GuardedCtx::consumeGuarded(
    const std::string &Name, const Expr &Kappa, const std::vector<Expr> &Args,
    const std::vector<bool> &InParam, Solver &S, PathCondition &PC) {
  for (std::size_t I = 0, E = Guarded.size(); I != E; ++I) {
    GuardedPred &G = Guarded[I];
    if (G.Name != Name)
      continue;
    if (Kappa && !exprEquals(G.Kappa, Kappa) &&
        !PC.entails(S, mkEq(G.Kappa, Kappa)))
      continue;
    if (!argsMatch(G.Args, Args, InParam, S, PC))
      continue;
    GuardedPred Out = G;
    Guarded.erase(Guarded.begin() + static_cast<long>(I));
    return Outcome<GuardedPred>::success(std::move(Out));
  }
  return Outcome<GuardedPred>::failure("no guarded instance of " + Name +
                                       " matches");
}

void GuardedCtx::produceClosing(ClosingToken Token) {
  Closing.push_back(std::move(Token));
}

Outcome<ClosingToken> GuardedCtx::consumeClosing(
    const std::string &Name, const std::vector<Expr> &Args, Solver &S,
    PathCondition &PC) {
  for (std::size_t I = 0, E = Closing.size(); I != E; ++I) {
    ClosingToken &C = Closing[I];
    if (C.Name != Name)
      continue;
    if (!argsMatch(C.Args, Args, {}, S, PC))
      continue;
    ClosingToken Out = C;
    Closing.erase(Closing.begin() + static_cast<long>(I));
    return Outcome<ClosingToken>::success(std::move(Out));
  }
  return Outcome<ClosingToken>::failure("no closing token for " + Name);
}

std::string GuardedCtx::dump() const {
  std::string Out;
  for (const GuardedPred &G : Guarded) {
    std::vector<std::string> Parts;
    for (const Expr &A : G.Args)
      Parts.push_back(exprToString(A));
    Out += "&" + exprToString(G.Kappa) + " " + G.Name + "(" +
           join(Parts, ", ") + ")\n";
  }
  for (const ClosingToken &C : Closing) {
    std::vector<std::string> Parts;
    for (const Expr &A : C.Args)
      Parts.push_back(exprToString(A));
    Out += "C_" + C.Name + "(" + exprToString(C.Kappa) + ", " +
           exprToString(C.Fraction) + ", " + join(Parts, ", ") + ")\n";
  }
  return Out;
}
