//===- pred/GuardedCtx.h - Folded and guarded predicates (§4.2) -----------===//
///
/// \file
/// The predicate stores of a Gillian-Rust state:
///
/// * \c PredCtx — ordinary folded predicates (name, args), as in VeriFast /
///   Viper / Gillian. Consuming matches on the predicate's in-parameters up
///   to the path condition and returns the full argument list.
///
/// * \c GuardedCtx — the guarded predicate context γ of §4.2: folded
///   predicates annotated with the lifetime whose token is the cost of
///   opening them. This is the encoding of RustBelt full borrows &κ P that
///   lets the engine reuse its fold/unfold automation for borrows. Opening
///   (gunfold) and closing (gfold) themselves live in engine/Lemma.cpp —
///   they need to produce/consume the predicate *body*; this module stores
///   the folded forms and the opaque closing tokens C_δ(κ, q, x̄).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_PRED_GUARDEDCTX_H
#define GILR_PRED_GUARDEDCTX_H

#include "solver/PathCondition.h"
#include "support/Outcome.h"
#include "sym/Expr.h"

#include <string>
#include <vector>

namespace gilr {
namespace pred {

/// A folded predicate instance.
struct FoldedPred {
  std::string Name;
  std::vector<Expr> Args;
};

/// Matches \p Args against \p Entry arguments: the positions flagged in
/// \p InParam must be provably equal; the rest are returned to the caller.
/// An empty \p InParam treats *all* positions as in-parameters.
bool argsMatch(const std::vector<Expr> &EntryArgs,
               const std::vector<Expr> &QueryArgs,
               const std::vector<bool> &InParam, Solver &S,
               PathCondition &PC);

/// Plain folded predicates.
class PredCtx {
public:
  void produce(const std::string &Name, std::vector<Expr> Args);

  /// Consumes a folded predicate matching the in-parameters; returns the
  /// full argument list of the matched instance.
  Outcome<std::vector<Expr>> consume(const std::string &Name,
                                     const std::vector<Expr> &Args,
                                     const std::vector<bool> &InParam,
                                     Solver &S, PathCondition &PC);

  const std::vector<FoldedPred> &entries() const { return Preds; }
  std::string dump() const;

private:
  std::vector<FoldedPred> Preds;
};

/// A guarded (borrowed) predicate instance: &κ δ(x̄).
struct GuardedPred {
  std::string Name;
  Expr Kappa;
  std::vector<Expr> Args;
};

/// The closing token C_δ(κ, q, x̄) produced by gunfold, embodying the
/// update P => &κ P * [κ]_q.
struct ClosingToken {
  std::string Name;
  Expr Kappa;
  Expr Fraction;
  std::vector<Expr> Args;
};

/// The guarded predicate context γ.
class GuardedCtx {
public:
  void produceGuarded(const std::string &Name, Expr Kappa,
                      std::vector<Expr> Args);
  Outcome<GuardedPred> consumeGuarded(const std::string &Name,
                                      const Expr &Kappa,
                                      const std::vector<Expr> &Args,
                                      const std::vector<bool> &InParam,
                                      Solver &S, PathCondition &PC);

  void produceClosing(ClosingToken Token);
  Outcome<ClosingToken> consumeClosing(const std::string &Name,
                                       const std::vector<Expr> &Args,
                                       Solver &S, PathCondition &PC);

  const std::vector<GuardedPred> &guarded() const { return Guarded; }
  const std::vector<ClosingToken> &closing() const { return Closing; }
  std::string dump() const;

private:
  std::vector<GuardedPred> Guarded;
  std::vector<ClosingToken> Closing;
};

} // namespace pred
} // namespace gilr

#endif // GILR_PRED_GUARDEDCTX_H
