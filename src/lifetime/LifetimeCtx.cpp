//===- lifetime/LifetimeCtx.cpp ------------------------------------------------===//

#include "lifetime/LifetimeCtx.h"

#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::lifetime;

LifetimeCtx::Entry *LifetimeCtx::find(const Expr &Kappa, Solver &S,
                                      PathCondition &PC) {
  for (Entry &E : Entries)
    if (exprEquals(E.Kappa, Kappa))
      return &E;
  for (Entry &E : Entries)
    if (PC.entails(S, mkEq(E.Kappa, Kappa)))
      return &E;
  return nullptr;
}

Outcome<Unit> LifetimeCtx::produceAlive(const Expr &Kappa, const Expr &Q,
                                        Solver &S, PathCondition &PC) {
  // The produced token is a well-formed fraction.
  PC.add(mkLt(mkReal(Rational::fromInt(0)), Q));
  PC.add(mkLe(Q, mkReal(Rational::fromInt(1))));
  Entry *E = find(Kappa, S, PC);
  if (!E) {
    Entries.push_back(Entry{Kappa, false, Q});
    return Outcome<Unit>::success(Unit());
  }
  if (E->Dead)
    return Outcome<Unit>::vanish(); // Lftl-not-own-end.
  // Lft-Produce-Alive-Add: fractions accumulate; the sum stays a token.
  E->Fraction = mkAdd(E->Fraction, Q);
  PC.add(mkLe(E->Fraction, mkReal(Rational::fromInt(1))));
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> LifetimeCtx::consumeAlive(const Expr &Kappa, const Expr &Q,
                                        Solver &S, PathCondition &PC) {
  Entry *E = find(Kappa, S, PC);
  if (!E || E->Dead)
    return Outcome<Unit>::failure("no alive token owned for lifetime " +
                                  exprToString(Kappa));
  if (exprEquals(E->Fraction, Q) ||
      PC.entails(S, mkEq(E->Fraction, Q))) {
    // Consuming exactly what is owned.
    Entries.erase(Entries.begin() + (E - Entries.data()));
    return Outcome<Unit>::success(Unit());
  }
  if (!PC.entails(S, mkLe(Q, E->Fraction)))
    return Outcome<Unit>::failure(
        "owned fraction of lifetime " + exprToString(Kappa) +
        " is not provably at least " + exprToString(Q));
  E->Fraction = mkSub(E->Fraction, Q);
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> LifetimeCtx::produceDead(const Expr &Kappa, Solver &S,
                                       PathCondition &PC) {
  Entry *E = find(Kappa, S, PC);
  if (!E) {
    Entries.push_back(Entry{Kappa, true, nullptr});
    return Outcome<Unit>::success(Unit());
  }
  if (E->Dead)
    return Outcome<Unit>::success(Unit()); // Persistent: idempotent.
  // An alive fraction is owned here: [κ]_q * [†κ] => False.
  return Outcome<Unit>::vanish();
}

Outcome<Unit> LifetimeCtx::consumeDead(const Expr &Kappa, Solver &S,
                                       PathCondition &PC) {
  Entry *E = find(Kappa, S, PC);
  if (E && E->Dead)
    return Outcome<Unit>::success(Unit()); // Persistent: not removed.
  return Outcome<Unit>::failure("lifetime " + exprToString(Kappa) +
                                " is not known to be dead");
}

Outcome<Unit> LifetimeCtx::endLifetime(const Expr &Kappa, Solver &S,
                                       PathCondition &PC) {
  Outcome<Unit> Consumed =
      consumeAlive(Kappa, mkReal(Rational::fromInt(1)), S, PC);
  if (!Consumed.ok())
    return Consumed;
  Entries.push_back(Entry{Kappa, true, nullptr});
  return Outcome<Unit>::success(Unit());
}

std::optional<Expr> LifetimeCtx::someAliveLifetime() const {
  for (const Entry &E : Entries)
    if (!E.Dead)
      return E.Kappa;
  return std::nullopt;
}

std::optional<Expr> LifetimeCtx::ownedFraction(const Expr &Kappa, Solver &S,
                                               PathCondition &PC) {
  Entry *E = find(Kappa, S, PC);
  if (!E || E->Dead)
    return std::nullopt;
  return E->Fraction;
}

bool LifetimeCtx::isDead(const Expr &Kappa, Solver &S, PathCondition &PC) {
  Entry *E = find(Kappa, S, PC);
  return E && E->Dead;
}

std::string LifetimeCtx::dump() const {
  std::string Out;
  for (const Entry &E : Entries) {
    Out += exprToString(E.Kappa);
    Out += E.Dead ? " -> dead" : (" -> " + exprToString(E.Fraction));
    Out += "\n";
  }
  return Out;
}
