//===- lifetime/LifetimeCtx.h - The lifetime context ξ (§4.1) -------------===//
///
/// \file
/// RustBelt's lifetime tokens as a custom Gillian state component: the
/// context maps lifetimes to either the currently-owned fraction q in (0,1]
/// of the alive token [κ]_q, or to the (persistent) death token [†κ]. The
/// consumer/producer rules of Fig. 6 are implemented here:
///
///  * producing an alive token adds fractions (Lftl-tok-fract, right-to-left)
///  * producing an alive token for a dead lifetime vanishes
///    (Lftl-not-own-end);
///  * the death token is persistent: its producer is idempotent and its
///    consumer does not modify the context (Lftl-end-persist).
///
/// Lifetimes are opaque values compared up to the path condition, mirroring
/// the paper's encoding of lifetimes as opaque sets with SMT-level
/// reasoning.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_LIFETIME_LIFETIMECTX_H
#define GILR_LIFETIME_LIFETIMECTX_H

#include "solver/PathCondition.h"
#include "support/Outcome.h"
#include "sym/Expr.h"
#include "sym/VarGen.h"

#include <string>
#include <vector>

namespace gilr {
namespace lifetime {

/// The lifetime context ξ.
class LifetimeCtx {
public:
  /// Produces [κ]_q. Adds to an existing alive entry, creates a new one, or
  /// vanishes if κ is dead. Assumes 0 < q and that the total stays <= 1.
  Outcome<Unit> produceAlive(const Expr &Kappa, const Expr &Q, Solver &S,
                             PathCondition &PC);

  /// Consumes [κ]_q: requires an alive entry with fraction provably >= q;
  /// the remainder stays. Consuming the exact owned fraction removes the
  /// entry.
  Outcome<Unit> consumeAlive(const Expr &Kappa, const Expr &Q, Solver &S,
                             PathCondition &PC);

  /// Produces [†κ]: idempotent if already dead; vanishes if an alive
  /// fraction of κ is owned here (Lftl-not-own-end).
  Outcome<Unit> produceDead(const Expr &Kappa, Solver &S, PathCondition &PC);

  /// Consumes [†κ]: succeeds without modification when κ is known dead
  /// (persistence).
  Outcome<Unit> consumeDead(const Expr &Kappa, Solver &S, PathCondition &PC);

  /// Ends lifetime κ: consumes the *full* token [κ]_1 and installs [†κ].
  /// Used when a caller's borrow expires (prophecy resolution, §5).
  Outcome<Unit> endLifetime(const Expr &Kappa, Solver &S, PathCondition &PC);

  /// Some lifetime with an alive entry, if any (used to instantiate a
  /// callee's lifetime parameter at call sites).
  std::optional<Expr> someAliveLifetime() const;

  /// The fraction currently owned for κ, if an alive entry exists.
  std::optional<Expr> ownedFraction(const Expr &Kappa, Solver &S,
                                    PathCondition &PC);

  /// Whether κ is recorded dead.
  bool isDead(const Expr &Kappa, Solver &S, PathCondition &PC);

  std::size_t numEntries() const { return Entries.size(); }
  std::string dump() const;

private:
  struct Entry {
    Expr Kappa;
    bool Dead = false;
    Expr Fraction; ///< Owned alive fraction; null when Dead.
  };

  /// Finds the entry for κ (structural match, then solver equality).
  Entry *find(const Expr &Kappa, Solver &S, PathCondition &PC);

  std::vector<Entry> Entries;
};

} // namespace lifetime
} // namespace gilr

#endif // GILR_LIFETIME_LIFETIMECTX_H
