//===- sym/Expr.h - Symbolic expression DAG ------------------------------===//
//
// Part of the Gillian-Rust C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic value and formula language shared by every state component of
/// the verifier (heap, path condition, observations, prophecies). Expressions
/// form an immutable DAG of reference-counted nodes; smart constructors in
/// ExprBuilder.h perform local simplification so that downstream code mostly
/// sees normal forms.
///
/// The sorts mirror the value universe used by Gillian-Rust: mathematical
/// integers (machine-width constraints are path-condition facts, as in §3.2 of
/// the paper), booleans, rationals (lifetime-token fractions q in (0,1]),
/// locations, lifetimes, options, finite sequences and tuples. Rust pointer
/// values are encoded as tuples (location, projection sequence), see
/// heap/Projection.h.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SYM_EXPR_H
#define GILR_SYM_EXPR_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace gilr {

/// Renders a 128-bit integer in decimal.
std::string int128ToString(__int128 V);

/// The sort (logical type) of a symbolic expression.
enum class Sort : uint8_t {
  Unit,  ///< The single-value unit sort.
  Bool,  ///< Booleans / formulas.
  Int,   ///< Unbounded mathematical integers.
  Real,  ///< Rationals; used for lifetime token fractions.
  Loc,   ///< Abstract heap locations (allocation identities).
  Lft,   ///< Lifetimes (opaque, §4.1).
  Seq,   ///< Finite sequences of values.
  Opt,   ///< Option values (None / Some v).
  Tuple, ///< Fixed-arity tuples.
  Any,   ///< Unknown sort (untyped variables, uninterpreted apps).
};

/// Returns a printable name for \p S.
const char *sortName(Sort S);

/// Node kinds of the expression DAG.
enum class ExprKind : uint8_t {
  // Leaves.
  Var,     ///< Symbolic variable (payload: name + sort).
  IntLit,  ///< Integer literal (payload: 128-bit signed value).
  RealLit, ///< Rational literal (payload: num/den).
  BoolLit, ///< true / false.
  UnitLit, ///< The unit value.
  LocLit,  ///< Concrete location id; distinct LocLits are distinct locations.
  NoneLit, ///< Option None.

  // Boolean connectives.
  Not,
  And,
  Or,
  Implies,
  Ite, ///< Ite(cond, thenV, elseV); sort of the branches.

  // Comparisons (Bool-sorted). Gt/Ge/Ne are normalised away by builders.
  Eq,
  Lt,
  Le,

  // Integer/rational arithmetic.
  Add,
  Sub,
  Mul,
  Neg,

  // Option values.
  Some,   ///< Some(v).
  IsSome, ///< IsSome(o) : Bool.
  Unwrap, ///< Unwrap(o); unconstrained if o is None.

  // Sequences.
  SeqNil,    ///< Empty sequence.
  SeqUnit,   ///< Singleton [v].
  SeqConcat, ///< Concatenation of >= 2 sequences.
  SeqLen,    ///< Length : Int.
  SeqNth,    ///< SeqNth(s, i); unconstrained out of range.
  SeqSub,    ///< SeqSub(s, from, len): subsequence.

  // Tuples.
  TupleLit,
  TupleGet, ///< TupleGet(t); payload: constant index.

  // Lifetimes.
  LftIncl, ///< LftIncl(k, k'): k is included in (outlived by) k'.

  // Escape hatch: uninterpreted function application (payload: name).
  App,
};

/// Returns a printable name for \p K.
const char *kindName(ExprKind K);

/// Exact rational number with 128-bit numerator/denominator, always stored in
/// lowest terms with a positive denominator. 128 bits comfortably cover the
/// machine-integer bounds (u128::MAX appears in validity invariants).
struct Rational {
  __int128 Num = 0;
  __int128 Den = 1;

  Rational() = default;
  Rational(__int128 N, __int128 D);

  static Rational fromInt(__int128 N) { return Rational(N, 1); }

  Rational operator+(const Rational &O) const;
  Rational operator-(const Rational &O) const;
  Rational operator*(const Rational &O) const;
  Rational operator-() const { return Rational(-Num, Den); }
  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator<(const Rational &O) const;
  bool operator<=(const Rational &O) const { return *this < O || *this == O; }
  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  std::string str() const;
};

class ExprNode;

/// Shared immutable handle to an expression node. Copying is cheap; nodes are
/// never mutated after construction.
using Expr = std::shared_ptr<const ExprNode>;

/// A single node in the expression DAG. Construct through the factory
/// functions in ExprBuilder.h, which enforce sort invariants, simplify, and
/// hash-cons the result (see sym/Intern.h): structurally identical
/// constructions return the *same* node, so equality on interned nodes is a
/// pointer/id comparison.
class ExprNode {
public:
  ExprKind Kind;
  Sort NodeSort;
  std::vector<Expr> Kids;

  // Payloads (only the field relevant to Kind is meaningful).
  std::string Name;       ///< Var / App.
  __int128 IntVal = 0;    ///< IntLit.
  Rational RatVal;        ///< RealLit.
  bool BoolVal = false;   ///< BoolLit.
  uint64_t LocId = 0;     ///< LocLit.
  unsigned Index = 0;     ///< TupleGet.

  /// Unique dense id assigned at interning time; 0 for nodes that were never
  /// interned ("foreign" nodes, e.g. built with interning disabled).
  /// Identical ids imply pointer identity.
  uint64_t Id = 0;

  /// Id of the node's *structural equivalence class* under \c exprEquals
  /// semantics: variables are identified by name alone (sort annotations do
  /// not split identity), everything else by kind, sort, payload and kid
  /// classes. Two interned nodes are exprEquals-equal iff their CanonIds
  /// match. 0 for foreign nodes.
  uint64_t CanonId = 0;

  /// Dense global symbol id of \c Name (0 when Name is empty or the node is
  /// foreign). Lets the congruence signature pass key App/Var names without
  /// hashing strings.
  uint64_t NameSym = 0;

  /// True if the subtree mentions a prophecy variable; computed bottom-up at
  /// construction (kids are always built first).
  bool HasProph = false;

  ExprNode(ExprKind K, Sort S, std::vector<Expr> Kids);
  ~ExprNode();

  ExprNode(const ExprNode &) = delete;
  ExprNode &operator=(const ExprNode &) = delete;

  /// Structural hash, computed once at construction.
  std::size_t hash() const { return Hash; }

  /// Recomputes the hash (and the derived HasProph flag) after payload
  /// fields have been set; called by the builder helpers in ExprBuilder.cpp.
  void finalizeHash();

  /// Lazily computed sorted vector of free-variable names, shared by every
  /// holder of the node. Thread-safe: first caller installs via CAS.
  mutable std::atomic<const std::vector<std::string> *> VarsCache{nullptr};

  /// Memo for \c exprStableHash (0 = not yet computed; the hash itself is
  /// never 0). Thread-safe: the hash is a pure function of the structure,
  /// so racing writers store the same value.
  mutable std::atomic<uint64_t> StableHashCache{0};

private:
  std::size_t Hash = 0;
};

/// Structural equality. For interned nodes this is an O(1) CanonId compare;
/// the structural walk only runs for foreign nodes.
bool exprEquals(const Expr &A, const Expr &B);

/// Deterministic structural ordering, used for canonicalising commutative
/// operands and for ordered containers. Ids are used only as equality fast
/// paths, never for ordering: the order must not depend on interning order,
/// which is racy under the parallel scheduler (the determinism suite
/// requires byte-identical reports at any worker count).
bool exprLess(const Expr &A, const Expr &B);

/// A *process-stable* structural hash of \p E: a pure function of kind,
/// sort, payload and kid hashes, never of the interning-order-dependent
/// Id / CanonId / NameSym fields — so the value is reproducible across
/// processes and may be persisted (the incremental proof store keys solver
/// verdicts by it). Operands of the commutative kinds (And, Or, Add, Mul,
/// Eq) are combined order-insensitively, matching the canonical operand
/// ordering the builders apply, so builder-normalised and hand-permuted
/// forms agree. Memoised per node; never returns 0.
uint64_t exprStableHash(const Expr &E);

/// The sorted, deduplicated free-variable names of \p E. Memoised per node
/// (computed once per process for shared subterms); the reference stays
/// valid for the node's lifetime.
const std::vector<std::string> &exprFreeVars(const Expr &E);

/// Collects the names of all free variables of \p E into \p Out.
void collectVars(const Expr &E, std::set<std::string> &Out);

/// Returns true if variable \p Name occurs in \p E.
bool containsVar(const Expr &E, const std::string &Name);

/// Prophecy variables are ordinary symbolic variables with a reserved name
/// prefix; observations (§5.2) distinguish them from plain symbolic
/// variables.
inline const char *prophecyVarPrefix() { return "pcy$"; }
bool isProphecyVarName(const std::string &Name);

/// Returns true if \p E mentions at least one prophecy variable.
bool mentionsProphecy(const Expr &E);

/// Comparator object for ordered containers keyed by Expr.
struct ExprOrder {
  bool operator()(const Expr &A, const Expr &B) const {
    return exprLess(A, B);
  }
};

} // namespace gilr

#endif // GILR_SYM_EXPR_H
