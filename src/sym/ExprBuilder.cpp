//===- sym/ExprBuilder.cpp ------------------------------------------------===//

#include "sym/ExprBuilder.h"

#include "support/Diagnostics.h"
#include "sym/Intern.h"

#include <algorithm>
#include <cassert>

using namespace gilr;

static Expr makeNode(ExprKind K, Sort S, std::vector<Expr> Kids) {
  return detail::internNewNode(
      std::make_shared<ExprNode>(K, S, std::move(Kids)));
}

//===----------------------------------------------------------------------===//
// Leaves
//===----------------------------------------------------------------------===//

Expr gilr::mkVar(const std::string &Name, Sort S) {
  auto Node = std::make_shared<ExprNode>(ExprKind::Var, S, std::vector<Expr>());
  Node->Name = Name;
  Node->finalizeHash();
  return detail::internNewNode(std::move(Node));
}

Expr gilr::mkInt(__int128 V) {
  auto Node =
      std::make_shared<ExprNode>(ExprKind::IntLit, Sort::Int, std::vector<Expr>());
  Node->IntVal = V;
  Node->finalizeHash();
  return detail::internNewNode(std::move(Node));
}

Expr gilr::mkIntU64(uint64_t V) { return mkInt(static_cast<__int128>(V)); }

Expr gilr::mkReal(Rational R) {
  auto Node = std::make_shared<ExprNode>(ExprKind::RealLit, Sort::Real,
                                         std::vector<Expr>());
  Node->RatVal = R;
  Node->finalizeHash();
  return detail::internNewNode(std::move(Node));
}

Expr gilr::mkBool(bool B) {
  auto Node = std::make_shared<ExprNode>(ExprKind::BoolLit, Sort::Bool,
                                         std::vector<Expr>());
  Node->BoolVal = B;
  Node->finalizeHash();
  return detail::internNewNode(std::move(Node));
}

Expr gilr::mkTrue() { return mkBool(true); }
Expr gilr::mkFalse() { return mkBool(false); }

Expr gilr::mkUnit() {
  return makeNode(ExprKind::UnitLit, Sort::Unit, {});
}

Expr gilr::mkLoc(uint64_t Id) {
  auto Node = std::make_shared<ExprNode>(ExprKind::LocLit, Sort::Loc,
                                         std::vector<Expr>());
  Node->LocId = Id;
  Node->finalizeHash();
  return detail::internNewNode(std::move(Node));
}

Expr gilr::mkNone() { return makeNode(ExprKind::NoneLit, Sort::Opt, {}); }

bool gilr::isTrueLit(const Expr &E) {
  return E && E->Kind == ExprKind::BoolLit && E->BoolVal;
}

bool gilr::isFalseLit(const Expr &E) {
  return E && E->Kind == ExprKind::BoolLit && !E->BoolVal;
}

bool gilr::getIntLit(const Expr &E, __int128 &Out) {
  if (!E || E->Kind != ExprKind::IntLit)
    return false;
  Out = E->IntVal;
  return true;
}

//===----------------------------------------------------------------------===//
// Boolean structure
//===----------------------------------------------------------------------===//

Expr gilr::mkNot(const Expr &A) {
  assert(A && "null operand");
  if (A->Kind == ExprKind::BoolLit)
    return mkBool(!A->BoolVal);
  if (A->Kind == ExprKind::Not)
    return A->Kids[0];
  return makeNode(ExprKind::Not, Sort::Bool, {A});
}

Expr gilr::mkAnd(const Expr &A, const Expr &B) {
  return mkAnd(std::vector<Expr>{A, B});
}

Expr gilr::mkAnd(std::vector<Expr> Conjuncts) {
  std::vector<Expr> Flat;
  for (const Expr &C : Conjuncts) {
    assert(C && "null conjunct");
    if (isTrueLit(C))
      continue;
    if (isFalseLit(C))
      return mkFalse();
    if (C->Kind == ExprKind::And) {
      for (const Expr &Kid : C->Kids)
        Flat.push_back(Kid);
      continue;
    }
    Flat.push_back(C);
  }
  // Drop duplicates (quadratic; conjunct lists stay small).
  std::vector<Expr> Uniq;
  for (const Expr &C : Flat) {
    bool Seen = false;
    for (const Expr &U : Uniq)
      if (exprEquals(C, U)) {
        Seen = true;
        break;
      }
    if (!Seen)
      Uniq.push_back(C);
  }
  if (Uniq.empty())
    return mkTrue();
  if (Uniq.size() == 1)
    return Uniq[0];
  return makeNode(ExprKind::And, Sort::Bool, std::move(Uniq));
}

Expr gilr::mkOr(const Expr &A, const Expr &B) {
  return mkOr(std::vector<Expr>{A, B});
}

Expr gilr::mkOr(std::vector<Expr> Disjuncts) {
  std::vector<Expr> Flat;
  for (const Expr &D : Disjuncts) {
    assert(D && "null disjunct");
    if (isFalseLit(D))
      continue;
    if (isTrueLit(D))
      return mkTrue();
    if (D->Kind == ExprKind::Or) {
      for (const Expr &Kid : D->Kids)
        Flat.push_back(Kid);
      continue;
    }
    Flat.push_back(D);
  }
  if (Flat.empty())
    return mkFalse();
  if (Flat.size() == 1)
    return Flat[0];
  return makeNode(ExprKind::Or, Sort::Bool, std::move(Flat));
}

Expr gilr::mkImplies(const Expr &A, const Expr &B) {
  if (isTrueLit(A))
    return B;
  if (isFalseLit(A) || isTrueLit(B))
    return mkTrue();
  if (isFalseLit(B))
    return mkNot(A);
  return makeNode(ExprKind::Implies, Sort::Bool, {A, B});
}

Expr gilr::mkIte(const Expr &C, const Expr &T, const Expr &E) {
  if (isTrueLit(C))
    return T;
  if (isFalseLit(C))
    return E;
  if (exprEquals(T, E))
    return T;
  Sort S = T->NodeSort == Sort::Any ? E->NodeSort : T->NodeSort;
  return makeNode(ExprKind::Ite, S, {C, T, E});
}

//===----------------------------------------------------------------------===//
// Equality and comparisons
//===----------------------------------------------------------------------===//

/// Returns 1 (definitely equal), 0 (definitely different) or -1 (unknown)
/// for two expressions, by constructor reasoning only.
static int staticEqVerdict(const Expr &A, const Expr &B) {
  if (exprEquals(A, B))
    return 1;
  ExprKind KA = A->Kind, KB = B->Kind;
  auto bothAre = [&](ExprKind K1, ExprKind K2) {
    return (KA == K1 && KB == K2) || (KA == K2 && KB == K1);
  };
  if (KA == ExprKind::IntLit && KB == ExprKind::IntLit)
    return A->IntVal == B->IntVal ? 1 : 0;
  if (KA == ExprKind::RealLit && KB == ExprKind::RealLit)
    return A->RatVal == B->RatVal ? 1 : 0;
  if (KA == ExprKind::BoolLit && KB == ExprKind::BoolLit)
    return A->BoolVal == B->BoolVal ? 1 : 0;
  if (KA == ExprKind::LocLit && KB == ExprKind::LocLit)
    return A->LocId == B->LocId ? 1 : 0;
  if (bothAre(ExprKind::NoneLit, ExprKind::Some))
    return 0;
  if (bothAre(ExprKind::SeqNil, ExprKind::SeqUnit))
    return 0;
  if (KA == ExprKind::UnitLit && KB == ExprKind::UnitLit)
    return 1;
  if (KA == ExprKind::TupleLit && KB == ExprKind::TupleLit &&
      A->Kids.size() != B->Kids.size())
    return 0;
  return -1;
}

Expr gilr::mkEq(const Expr &A, const Expr &B) {
  assert(A && B && "null operand");
  int Verdict = staticEqVerdict(A, B);
  if (Verdict == 1)
    return mkTrue();
  if (Verdict == 0)
    return mkFalse();
  // Constructor decomposition.
  if (A->Kind == ExprKind::Some && B->Kind == ExprKind::Some)
    return mkEq(A->Kids[0], B->Kids[0]);
  if (A->Kind == ExprKind::SeqUnit && B->Kind == ExprKind::SeqUnit)
    return mkEq(A->Kids[0], B->Kids[0]);
  if (A->Kind == ExprKind::TupleLit && B->Kind == ExprKind::TupleLit) {
    std::vector<Expr> Eqs;
    for (std::size_t I = 0, E = A->Kids.size(); I != E; ++I)
      Eqs.push_back(mkEq(A->Kids[I], B->Kids[I]));
    return mkAnd(std::move(Eqs));
  }
  // Canonical operand order for commutative equality.
  if (exprLess(B, A))
    return makeNode(ExprKind::Eq, Sort::Bool, {B, A});
  return makeNode(ExprKind::Eq, Sort::Bool, {A, B});
}

Expr gilr::mkNe(const Expr &A, const Expr &B) { return mkNot(mkEq(A, B)); }

Expr gilr::mkLt(const Expr &A, const Expr &B) {
  __int128 VA, VB;
  if (getIntLit(A, VA) && getIntLit(B, VB))
    return mkBool(VA < VB);
  if (A->Kind == ExprKind::RealLit && B->Kind == ExprKind::RealLit)
    return mkBool(A->RatVal < B->RatVal);
  if (exprEquals(A, B))
    return mkFalse();
  return makeNode(ExprKind::Lt, Sort::Bool, {A, B});
}

Expr gilr::mkLe(const Expr &A, const Expr &B) {
  __int128 VA, VB;
  if (getIntLit(A, VA) && getIntLit(B, VB))
    return mkBool(VA <= VB);
  if (A->Kind == ExprKind::RealLit && B->Kind == ExprKind::RealLit)
    return mkBool(A->RatVal <= B->RatVal);
  if (exprEquals(A, B))
    return mkTrue();
  return makeNode(ExprKind::Le, Sort::Bool, {A, B});
}

Expr gilr::mkGt(const Expr &A, const Expr &B) { return mkLt(B, A); }
Expr gilr::mkGe(const Expr &A, const Expr &B) { return mkLe(B, A); }

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

static Sort arithSort(const Expr &A, const Expr &B) {
  if (A->NodeSort == Sort::Real || B->NodeSort == Sort::Real)
    return Sort::Real;
  return Sort::Int;
}

Expr gilr::mkAdd(const Expr &A, const Expr &B) {
  return mkAdd(std::vector<Expr>{A, B});
}

Expr gilr::mkAdd(std::vector<Expr> Terms) {
  std::vector<Expr> Flat;
  __int128 IntAcc = 0;
  Rational RatAcc;
  bool IsReal = false;
  for (const Expr &T : Terms) {
    assert(T && "null term");
    if (T->NodeSort == Sort::Real)
      IsReal = true;
    if (T->Kind == ExprKind::IntLit) {
      IntAcc += T->IntVal;
      continue;
    }
    if (T->Kind == ExprKind::RealLit) {
      RatAcc = RatAcc + T->RatVal;
      continue;
    }
    if (T->Kind == ExprKind::Add) {
      for (const Expr &Kid : T->Kids) {
        if (Kid->Kind == ExprKind::IntLit)
          IntAcc += Kid->IntVal;
        else if (Kid->Kind == ExprKind::RealLit)
          RatAcc = RatAcc + Kid->RatVal;
        else
          Flat.push_back(Kid);
      }
      continue;
    }
    Flat.push_back(T);
  }
  // Cancel syntactically matching t / -t pairs (x + 1 - (x + 1) folds to 0
  // without solver help; laid-out range reassembly relies on this).
  for (std::size_t I = 0; I < Flat.size(); ++I) {
    if (!Flat[I])
      continue;
    Expr Negated = Flat[I]->Kind == ExprKind::Neg ? Flat[I]->Kids[0]
                                                  : nullptr;
    for (std::size_t J = 0; J < Flat.size(); ++J) {
      if (I == J || !Flat[J])
        continue;
      bool Cancels = Negated ? exprEquals(Flat[J], Negated)
                             : (Flat[J]->Kind == ExprKind::Neg &&
                                exprEquals(Flat[J]->Kids[0], Flat[I]));
      if (Cancels) {
        Flat[I] = nullptr;
        Flat[J] = nullptr;
        break;
      }
    }
  }
  std::vector<Expr> Kept;
  for (Expr &E : Flat)
    if (E)
      Kept.push_back(std::move(E));
  Flat = std::move(Kept);

  if (IsReal) {
    RatAcc = RatAcc + Rational(IntAcc, 1);
    if (!RatAcc.isZero() || Flat.empty())
      Flat.push_back(mkReal(RatAcc));
    if (Flat.size() == 1)
      return Flat[0];
    return makeNode(ExprKind::Add, Sort::Real, std::move(Flat));
  }
  if (IntAcc != 0 || Flat.empty())
    Flat.push_back(mkInt(IntAcc));
  if (Flat.size() == 1)
    return Flat[0];
  return makeNode(ExprKind::Add, Sort::Int, std::move(Flat));
}

Expr gilr::mkSub(const Expr &A, const Expr &B) {
  __int128 VA, VB;
  if (getIntLit(A, VA) && getIntLit(B, VB))
    return mkInt(VA - VB);
  if (getIntLit(B, VB) && VB == 0)
    return A;
  if (exprEquals(A, B) && A->NodeSort == Sort::Int)
    return mkInt(0);
  return mkAdd(A, mkNeg(B));
}

Expr gilr::mkMul(const Expr &A, const Expr &B) {
  __int128 VA, VB;
  bool LA = getIntLit(A, VA), LB = getIntLit(B, VB);
  if (LA && LB)
    return mkInt(VA * VB);
  if (LA && VA == 0)
    return mkInt(0);
  if (LB && VB == 0)
    return mkInt(0);
  if (LA && VA == 1)
    return B;
  if (LB && VB == 1)
    return A;
  if (A->Kind == ExprKind::RealLit && B->Kind == ExprKind::RealLit)
    return mkReal(A->RatVal * B->RatVal);
  // Canonicalise constant to the left for the linear-arithmetic extractor.
  if (LB)
    return makeNode(ExprKind::Mul, arithSort(A, B), {B, A});
  return makeNode(ExprKind::Mul, arithSort(A, B), {A, B});
}

Expr gilr::mkNeg(const Expr &A) {
  __int128 VA;
  if (getIntLit(A, VA))
    return mkInt(-VA);
  if (A->Kind == ExprKind::RealLit)
    return mkReal(-A->RatVal);
  if (A->Kind == ExprKind::Neg)
    return A->Kids[0];
  if (A->Kind == ExprKind::Add) {
    // Distribute so that sums stay flat and cancellation applies.
    std::vector<Expr> Parts;
    Parts.reserve(A->Kids.size());
    for (const Expr &Kid : A->Kids)
      Parts.push_back(mkNeg(Kid));
    return mkAdd(std::move(Parts));
  }
  return makeNode(ExprKind::Neg, A->NodeSort, {A});
}

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

Expr gilr::mkSome(const Expr &V) {
  return makeNode(ExprKind::Some, Sort::Opt, {V});
}

Expr gilr::mkIsSome(const Expr &O) {
  if (O->Kind == ExprKind::Some)
    return mkTrue();
  if (O->Kind == ExprKind::NoneLit)
    return mkFalse();
  return makeNode(ExprKind::IsSome, Sort::Bool, {O});
}

Expr gilr::mkIsNone(const Expr &O) { return mkNot(mkIsSome(O)); }

Expr gilr::mkUnwrap(const Expr &O) {
  if (O->Kind == ExprKind::Some)
    return O->Kids[0];
  return makeNode(ExprKind::Unwrap, Sort::Any, {O});
}

//===----------------------------------------------------------------------===//
// Sequences
//===----------------------------------------------------------------------===//

Expr gilr::mkSeqNil() { return makeNode(ExprKind::SeqNil, Sort::Seq, {}); }

Expr gilr::mkSeqUnit(const Expr &V) {
  return makeNode(ExprKind::SeqUnit, Sort::Seq, {V});
}

Expr gilr::mkSeqLit(const std::vector<Expr> &Vals) {
  std::vector<Expr> Parts;
  Parts.reserve(Vals.size());
  for (const Expr &V : Vals)
    Parts.push_back(mkSeqUnit(V));
  return mkSeqConcat(std::move(Parts));
}

Expr gilr::mkSeqConcat(const Expr &A, const Expr &B) {
  return mkSeqConcat(std::vector<Expr>{A, B});
}

Expr gilr::mkSeqConcat(std::vector<Expr> Parts) {
  std::vector<Expr> Flat;
  for (const Expr &P : Parts) {
    assert(P && "null sequence part");
    if (P->Kind == ExprKind::SeqNil)
      continue;
    if (P->Kind == ExprKind::SeqConcat) {
      for (const Expr &Kid : P->Kids)
        Flat.push_back(Kid);
      continue;
    }
    Flat.push_back(P);
  }
  if (Flat.empty())
    return mkSeqNil();
  if (Flat.size() == 1)
    return Flat[0];
  return makeNode(ExprKind::SeqConcat, Sort::Seq, std::move(Flat));
}

Expr gilr::mkSeqCons(const Expr &Head, const Expr &Tail) {
  return mkSeqConcat(mkSeqUnit(Head), Tail);
}

bool gilr::getStaticSeqLen(const Expr &E, __int128 &Out) {
  switch (E->Kind) {
  case ExprKind::SeqNil:
    Out = 0;
    return true;
  case ExprKind::SeqUnit:
    Out = 1;
    return true;
  case ExprKind::SeqConcat: {
    __int128 Total = 0;
    for (const Expr &Kid : E->Kids) {
      __int128 KidLen;
      if (!getStaticSeqLen(Kid, KidLen))
        return false;
      Total += KidLen;
    }
    Out = Total;
    return true;
  }
  default:
    return false;
  }
}

Expr gilr::mkSeqLen(const Expr &S) {
  switch (S->Kind) {
  case ExprKind::SeqNil:
    return mkInt(0);
  case ExprKind::SeqUnit:
    return mkInt(1);
  case ExprKind::SeqConcat: {
    std::vector<Expr> Lens;
    for (const Expr &Kid : S->Kids)
      Lens.push_back(mkSeqLen(Kid));
    return mkAdd(std::move(Lens));
  }
  case ExprKind::SeqSub:
    // len(sub(s, from, len)) = len; the producer of SeqSub is responsible
    // for the range side conditions (the heap emits them into the path
    // condition, and SeqTheory re-asserts them).
    return S->Kids[2];
  default:
    return makeNode(ExprKind::SeqLen, Sort::Int, {S});
  }
}

Expr gilr::mkSeqNth(const Expr &S, const Expr &I) {
  __int128 Idx;
  bool HasIdx = getIntLit(I, Idx);
  if (HasIdx && S->Kind == ExprKind::SeqUnit && Idx == 0)
    return S->Kids[0];
  if (HasIdx && S->Kind == ExprKind::SeqConcat) {
    // Walk statically-sized prefixes.
    __int128 Offset = 0;
    for (const Expr &Part : S->Kids) {
      __int128 PartLen;
      if (!getStaticSeqLen(Part, PartLen))
        break;
      if (Idx < Offset + PartLen)
        return mkSeqNth(Part, mkInt(Idx - Offset));
      Offset += PartLen;
    }
  }
  if (S->Kind == ExprKind::SeqSub)
    return mkSeqNth(S->Kids[0], mkAdd(S->Kids[1], I));
  return makeNode(ExprKind::SeqNth, Sort::Any, {S, I});
}

Expr gilr::mkSeqSub(const Expr &S, const Expr &From, const Expr &Len) {
  __int128 F, L;
  bool HasF = getIntLit(From, F), HasL = getIntLit(Len, L);
  if (HasL && L == 0)
    return mkSeqNil();
  if (HasF && F == 0) {
    __int128 SLen;
    if (getStaticSeqLen(S, SLen) && HasL && SLen == L)
      return S;
  }
  if (HasF && HasL && S->Kind == ExprKind::SeqConcat) {
    // Slice across statically-sized parts if fully resolvable.
    std::vector<Expr> Out;
    __int128 Pos = 0, Want = F, Remaining = L;
    bool OK = true;
    for (const Expr &Part : S->Kids) {
      if (Remaining == 0)
        break;
      __int128 PartLen;
      if (!getStaticSeqLen(Part, PartLen)) {
        OK = false;
        break;
      }
      __int128 Lo = std::max(Want, Pos);
      __int128 Hi = std::min(Want + L, Pos + PartLen);
      if (Lo < Hi) {
        Out.push_back(mkSeqSub(Part, mkInt(Lo - Pos), mkInt(Hi - Lo)));
        Remaining -= (Hi - Lo);
      }
      Pos += PartLen;
    }
    if (OK && Remaining == 0)
      return mkSeqConcat(std::move(Out));
  }
  if (S->Kind == ExprKind::SeqUnit && HasF && HasL && F == 0 && L == 1)
    return S;
  if (S->Kind == ExprKind::SeqSub) {
    // sub(sub(s, f1, l1), f2, l2) = sub(s, f1+f2, l2).
    return mkSeqSub(S->Kids[0], mkAdd(S->Kids[1], From), Len);
  }
  return makeNode(ExprKind::SeqSub, Sort::Seq, {S, From, Len});
}

//===----------------------------------------------------------------------===//
// Tuples
//===----------------------------------------------------------------------===//

Expr gilr::mkTuple(std::vector<Expr> Elems) {
  return makeNode(ExprKind::TupleLit, Sort::Tuple, std::move(Elems));
}

Expr gilr::mkTupleGet(const Expr &T, unsigned Index) {
  if (T->Kind == ExprKind::TupleLit) {
    assert(Index < T->Kids.size() && "tuple index out of range");
    return T->Kids[Index];
  }
  auto Node =
      std::make_shared<ExprNode>(ExprKind::TupleGet, Sort::Any,
                                 std::vector<Expr>{T});
  Node->Index = Index;
  Node->finalizeHash();
  return detail::internNewNode(std::move(Node));
}

//===----------------------------------------------------------------------===//
// Lifetimes and applications
//===----------------------------------------------------------------------===//

Expr gilr::mkLftVar(const std::string &Name) { return mkVar(Name, Sort::Lft); }

Expr gilr::mkLftIncl(const Expr &K1, const Expr &K2) {
  if (exprEquals(K1, K2))
    return mkTrue();
  return makeNode(ExprKind::LftIncl, Sort::Bool, {K1, K2});
}

Expr gilr::mkApp(const std::string &Name, std::vector<Expr> Args,
                 Sort ResultSort) {
  auto Node = std::make_shared<ExprNode>(ExprKind::App, ResultSort,
                                         std::move(Args));
  Node->Name = Name;
  Node->finalizeHash();
  return detail::internNewNode(std::move(Node));
}

Expr gilr::rebuildWithKids(const Expr &E, std::vector<Expr> Kids) {
  assert(E && E->Kids.size() == Kids.size() && "arity mismatch in rebuild");
  switch (E->Kind) {
  case ExprKind::Not:
    return mkNot(Kids[0]);
  case ExprKind::And:
    return mkAnd(std::move(Kids));
  case ExprKind::Or:
    return mkOr(std::move(Kids));
  case ExprKind::Implies:
    return mkImplies(Kids[0], Kids[1]);
  case ExprKind::Ite:
    return mkIte(Kids[0], Kids[1], Kids[2]);
  case ExprKind::Eq:
    return mkEq(Kids[0], Kids[1]);
  case ExprKind::Lt:
    return mkLt(Kids[0], Kids[1]);
  case ExprKind::Le:
    return mkLe(Kids[0], Kids[1]);
  case ExprKind::Add:
    return mkAdd(std::move(Kids));
  case ExprKind::Sub:
    return mkSub(Kids[0], Kids[1]);
  case ExprKind::Mul:
    return mkMul(Kids[0], Kids[1]);
  case ExprKind::Neg:
    return mkNeg(Kids[0]);
  case ExprKind::Some:
    return mkSome(Kids[0]);
  case ExprKind::IsSome:
    return mkIsSome(Kids[0]);
  case ExprKind::Unwrap:
    return mkUnwrap(Kids[0]);
  case ExprKind::SeqUnit:
    return mkSeqUnit(Kids[0]);
  case ExprKind::SeqConcat:
    return mkSeqConcat(std::move(Kids));
  case ExprKind::SeqLen:
    return mkSeqLen(Kids[0]);
  case ExprKind::SeqNth:
    return mkSeqNth(Kids[0], Kids[1]);
  case ExprKind::SeqSub:
    return mkSeqSub(Kids[0], Kids[1], Kids[2]);
  case ExprKind::TupleLit:
    return mkTuple(std::move(Kids));
  case ExprKind::TupleGet:
    return mkTupleGet(Kids[0], E->Index);
  case ExprKind::LftIncl:
    return mkLftIncl(Kids[0], Kids[1]);
  case ExprKind::App:
    return mkApp(E->Name, std::move(Kids), E->NodeSort);
  default:
    GILR_UNREACHABLE("rebuildWithKids on a leaf");
  }
}
