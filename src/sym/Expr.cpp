//===- sym/Expr.cpp -------------------------------------------------------===//

#include "sym/Expr.h"

#include "support/Diagnostics.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace gilr;

const char *gilr::sortName(Sort S) {
  switch (S) {
  case Sort::Unit:
    return "Unit";
  case Sort::Bool:
    return "Bool";
  case Sort::Int:
    return "Int";
  case Sort::Real:
    return "Real";
  case Sort::Loc:
    return "Loc";
  case Sort::Lft:
    return "Lft";
  case Sort::Seq:
    return "Seq";
  case Sort::Opt:
    return "Opt";
  case Sort::Tuple:
    return "Tuple";
  case Sort::Any:
    return "Any";
  }
  GILR_UNREACHABLE("unknown sort");
}

const char *gilr::kindName(ExprKind K) {
  switch (K) {
  case ExprKind::Var:
    return "Var";
  case ExprKind::IntLit:
    return "IntLit";
  case ExprKind::RealLit:
    return "RealLit";
  case ExprKind::BoolLit:
    return "BoolLit";
  case ExprKind::UnitLit:
    return "UnitLit";
  case ExprKind::LocLit:
    return "LocLit";
  case ExprKind::NoneLit:
    return "NoneLit";
  case ExprKind::Not:
    return "Not";
  case ExprKind::And:
    return "And";
  case ExprKind::Or:
    return "Or";
  case ExprKind::Implies:
    return "Implies";
  case ExprKind::Ite:
    return "Ite";
  case ExprKind::Eq:
    return "Eq";
  case ExprKind::Lt:
    return "Lt";
  case ExprKind::Le:
    return "Le";
  case ExprKind::Add:
    return "Add";
  case ExprKind::Sub:
    return "Sub";
  case ExprKind::Mul:
    return "Mul";
  case ExprKind::Neg:
    return "Neg";
  case ExprKind::Some:
    return "Some";
  case ExprKind::IsSome:
    return "IsSome";
  case ExprKind::Unwrap:
    return "Unwrap";
  case ExprKind::SeqNil:
    return "SeqNil";
  case ExprKind::SeqUnit:
    return "SeqUnit";
  case ExprKind::SeqConcat:
    return "SeqConcat";
  case ExprKind::SeqLen:
    return "SeqLen";
  case ExprKind::SeqNth:
    return "SeqNth";
  case ExprKind::SeqSub:
    return "SeqSub";
  case ExprKind::TupleLit:
    return "TupleLit";
  case ExprKind::TupleGet:
    return "TupleGet";
  case ExprKind::LftIncl:
    return "LftIncl";
  case ExprKind::App:
    return "App";
  }
  GILR_UNREACHABLE("unknown expr kind");
}

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

std::string gilr::int128ToString(__int128 V) {
  if (V == 0)
    return "0";
  bool Negative = V < 0;
  unsigned __int128 U = Negative ? -static_cast<unsigned __int128>(V)
                                 : static_cast<unsigned __int128>(V);
  std::string Digits;
  while (U != 0) {
    Digits.push_back(static_cast<char>('0' + static_cast<int>(U % 10)));
    U /= 10;
  }
  if (Negative)
    Digits.push_back('-');
  return std::string(Digits.rbegin(), Digits.rend());
}

static __int128 gcd128(__int128 A, __int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

Rational::Rational(__int128 N, __int128 D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  __int128 G = gcd128(N, D);
  if (G == 0)
    G = 1;
  Num = N / G;
  Den = D / G;
}

Rational Rational::operator+(const Rational &O) const {
  return Rational(Num * O.Den + O.Num * Den, Den * O.Den);
}

Rational Rational::operator-(const Rational &O) const {
  return Rational(Num * O.Den - O.Num * Den, Den * O.Den);
}

Rational Rational::operator*(const Rational &O) const {
  return Rational(Num * O.Num, Den * O.Den);
}

bool Rational::operator<(const Rational &O) const {
  return Num * O.Den < O.Num * Den;
}

std::string Rational::str() const {
  if (Den == 1)
    return int128ToString(Num);
  return int128ToString(Num) + "/" + int128ToString(Den);
}

//===----------------------------------------------------------------------===//
// ExprNode
//===----------------------------------------------------------------------===//

ExprNode::ExprNode(ExprKind K, Sort S, std::vector<Expr> KidsIn)
    : Kind(K), NodeSort(S), Kids(std::move(KidsIn)) {
  finalizeHash();
}

ExprNode::~ExprNode() {
  delete VarsCache.load(std::memory_order_relaxed);
}

void ExprNode::finalizeHash() {
  HasProph = Kind == ExprKind::Var ? isProphecyVarName(Name) : false;
  for (const Expr &Kid : Kids)
    HasProph = HasProph || Kid->HasProph;
  // Variables are identified by name alone: the sort is an annotation and
  // the same name may be written with different sort knowledge (specs use
  // Any, the executor knows the precise sort).
  std::size_t H = static_cast<std::size_t>(Kind) * 131;
  if (Kind != ExprKind::Var)
    H += static_cast<std::size_t>(NodeSort);
  for (const Expr &Kid : Kids)
    hashCombine(H, Kid->hash());
  hashCombine(H, std::hash<std::string>()(Name));
  hashCombine(H, static_cast<std::size_t>(static_cast<uint64_t>(IntVal)));
  hashCombine(H, static_cast<std::size_t>(
                     static_cast<uint64_t>(IntVal >> 64)));
  hashCombine(H, static_cast<std::size_t>(static_cast<uint64_t>(RatVal.Num)));
  hashCombine(H, static_cast<std::size_t>(static_cast<uint64_t>(RatVal.Den)));
  hashCombine(H, BoolVal ? 0x5u : 0x9u);
  hashCombine(H, std::hash<uint64_t>()(LocId));
  hashCombine(H, Index);
  Hash = H;
}

bool gilr::exprEquals(const Expr &A, const Expr &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B)
    return false;
  // Interned nodes: equality is exactly CanonId equality (hash-consing
  // guarantees one CanonId per exprEquals class). The structural walk below
  // only runs when a foreign (un-interned) node is involved.
  if (A->CanonId != 0 && B->CanonId != 0)
    return A->CanonId == B->CanonId;
  if (A->hash() != B->hash())
    return false;
  if (A->Kind != B->Kind)
    return false;
  if (A->Kind == ExprKind::Var)
    return A->Name == B->Name; // Sort annotations do not split identity.
  if (A->NodeSort != B->NodeSort || A->Kids.size() != B->Kids.size())
    return false;
  if (A->Name != B->Name || A->IntVal != B->IntVal ||
      !(A->RatVal == B->RatVal) || A->BoolVal != B->BoolVal ||
      A->LocId != B->LocId || A->Index != B->Index)
    return false;
  for (std::size_t I = 0, E = A->Kids.size(); I != E; ++I)
    if (!exprEquals(A->Kids[I], B->Kids[I]))
      return false;
  return true;
}

bool gilr::exprLess(const Expr &A, const Expr &B) {
  if (A.get() == B.get())
    return false;
  if (!A)
    return static_cast<bool>(B);
  if (!B)
    return false;
  // Equal classes are never less-than; this is the only use of ids here —
  // *ordering* stays structural so it cannot depend on the (racy) interning
  // order under the parallel scheduler.
  if (A->CanonId != 0 && A->CanonId == B->CanonId)
    return false;
  if (A->Kind != B->Kind)
    return A->Kind < B->Kind;
  if (A->Name != B->Name)
    return A->Name < B->Name;
  if (A->IntVal != B->IntVal)
    return A->IntVal < B->IntVal;
  if (!(A->RatVal == B->RatVal))
    return A->RatVal < B->RatVal;
  if (A->BoolVal != B->BoolVal)
    return B->BoolVal;
  if (A->LocId != B->LocId)
    return A->LocId < B->LocId;
  if (A->Index != B->Index)
    return A->Index < B->Index;
  if (A->Kids.size() != B->Kids.size())
    return A->Kids.size() < B->Kids.size();
  for (std::size_t I = 0, E = A->Kids.size(); I != E; ++I) {
    if (exprLess(A->Kids[I], B->Kids[I]))
      return true;
    if (exprLess(B->Kids[I], A->Kids[I]))
      return false;
  }
  return false;
}

const std::vector<std::string> &gilr::exprFreeVars(const Expr &E) {
  static const std::vector<std::string> Empty;
  if (!E)
    return Empty;
  if (const auto *Cached = E->VarsCache.load(std::memory_order_acquire))
    return *Cached;
  auto *Computed = new std::vector<std::string>();
  if (E->Kind == ExprKind::Var) {
    Computed->push_back(E->Name);
  } else {
    for (const Expr &Kid : E->Kids) {
      const std::vector<std::string> &KidVars = exprFreeVars(Kid);
      Computed->insert(Computed->end(), KidVars.begin(), KidVars.end());
    }
    std::sort(Computed->begin(), Computed->end());
    Computed->erase(std::unique(Computed->begin(), Computed->end()),
                    Computed->end());
  }
  const std::vector<std::string> *Expected = nullptr;
  if (E->VarsCache.compare_exchange_strong(Expected, Computed,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
    return *Computed;
  // Another thread installed its (identical) summary first.
  delete Computed;
  return *Expected;
}

void gilr::collectVars(const Expr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  const std::vector<std::string> &Vars = exprFreeVars(E);
  Out.insert(Vars.begin(), Vars.end());
}

bool gilr::containsVar(const Expr &E, const std::string &Name) {
  if (!E)
    return false;
  const std::vector<std::string> &Vars = exprFreeVars(E);
  return std::binary_search(Vars.begin(), Vars.end(), Name);
}

bool gilr::isProphecyVarName(const std::string &Name) {
  return startsWith(Name, prophecyVarPrefix());
}

bool gilr::mentionsProphecy(const Expr &E) {
  return E && E->HasProph;
}

//===----------------------------------------------------------------------===//
// Process-stable structural hashing
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64 finaliser; fixed constants, so the value stream is identical
/// in every process.
uint64_t stableMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// FNV-1a over a byte string (names).
uint64_t stableHashString(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Whether operands of \p K are canonicalised order-insensitively by the
/// builders (mkAnd/mkOr/mkAdd/mkMul/mkEq sort or orient their operands with
/// exprLess); the stable hash combines their kid hashes as a multiset so
/// that any operand permutation of the same node agrees.
bool isCommutativeKind(ExprKind K) {
  switch (K) {
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Add:
  case ExprKind::Mul:
  case ExprKind::Eq:
    return true;
  default:
    return false;
  }
}

} // namespace

uint64_t gilr::exprStableHash(const Expr &E) {
  if (!E)
    return 0x9e3779b97f4a7c15ull; // Distinct marker for "no expression".
  uint64_t Cached = E->StableHashCache.load(std::memory_order_relaxed);
  if (Cached)
    return Cached;

  uint64_t H = 0xcbf29ce484222325ull;
  auto feed = [&H](uint64_t V) { H = stableMix(H ^ V); };

  feed(static_cast<uint64_t>(E->Kind));
  feed(static_cast<uint64_t>(E->NodeSort));
  switch (E->Kind) {
  case ExprKind::Var:
  case ExprKind::App:
    feed(stableHashString(E->Name));
    break;
  case ExprKind::IntLit:
    feed(static_cast<uint64_t>(E->IntVal));
    feed(static_cast<uint64_t>(E->IntVal >> 64));
    break;
  case ExprKind::RealLit:
    feed(static_cast<uint64_t>(E->RatVal.Num));
    feed(static_cast<uint64_t>(E->RatVal.Num >> 64));
    feed(static_cast<uint64_t>(E->RatVal.Den));
    feed(static_cast<uint64_t>(E->RatVal.Den >> 64));
    break;
  case ExprKind::BoolLit:
    feed(E->BoolVal ? 1 : 2);
    break;
  case ExprKind::LocLit:
    feed(E->LocId);
    break;
  case ExprKind::TupleGet:
    feed(E->Index);
    break;
  default:
    break;
  }

  feed(E->Kids.size());
  if (isCommutativeKind(E->Kind) && E->Kids.size() > 1) {
    std::vector<uint64_t> KidHs;
    KidHs.reserve(E->Kids.size());
    for (const Expr &K : E->Kids)
      KidHs.push_back(exprStableHash(K));
    std::sort(KidHs.begin(), KidHs.end());
    for (uint64_t KH : KidHs)
      feed(KH);
  } else {
    for (const Expr &K : E->Kids)
      feed(exprStableHash(K));
  }

  if (H == 0)
    H = 1; // 0 is reserved for "not yet computed".
  E->StableHashCache.store(H, std::memory_order_relaxed);
  return H;
}
