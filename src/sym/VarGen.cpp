//===- sym/VarGen.cpp ------------------------------------------------------===//

#include "sym/VarGen.h"

#include "sym/ExprBuilder.h"

using namespace gilr;

Expr VarGen::fresh(const std::string &Base, Sort S) {
  return mkVar(Base + "%" + std::to_string(Counter++), S);
}

Expr VarGen::freshProphecy(const std::string &Base, Sort S) {
  return mkVar(std::string(prophecyVarPrefix()) + Base + "%" +
                   std::to_string(Counter++),
               S);
}

Expr VarGen::freshLoc() { return mkLoc(LocCounter++); }

Expr VarGen::freshLifetime(const std::string &Base) {
  return mkVar(Base + "%" + std::to_string(Counter++), Sort::Lft);
}
