//===- sym/Printer.cpp -----------------------------------------------------===//

#include "sym/Printer.h"

#include "support/Diagnostics.h"
#include "support/StringUtils.h"

using namespace gilr;

static std::string printOp(const char *Op, const Expr &E) {
  std::vector<std::string> Parts;
  Parts.reserve(E->Kids.size() + 1);
  Parts.push_back(Op);
  for (const Expr &Kid : E->Kids)
    Parts.push_back(exprToString(Kid));
  return "(" + join(Parts, " ") + ")";
}

std::string gilr::exprToString(const Expr &E) {
  if (!E)
    return "<null>";
  switch (E->Kind) {
  case ExprKind::Var:
    return E->Name;
  case ExprKind::IntLit:
    return int128ToString(E->IntVal);
  case ExprKind::RealLit:
    return E->RatVal.str();
  case ExprKind::BoolLit:
    return E->BoolVal ? "true" : "false";
  case ExprKind::UnitLit:
    return "()";
  case ExprKind::LocLit:
    return "$l" + std::to_string(E->LocId);
  case ExprKind::NoneLit:
    return "None";
  case ExprKind::Not:
    return printOp("not", E);
  case ExprKind::And:
    return printOp("and", E);
  case ExprKind::Or:
    return printOp("or", E);
  case ExprKind::Implies:
    return printOp("=>", E);
  case ExprKind::Ite:
    return printOp("ite", E);
  case ExprKind::Eq:
    return printOp("=", E);
  case ExprKind::Lt:
    return printOp("<", E);
  case ExprKind::Le:
    return printOp("<=", E);
  case ExprKind::Add:
    return printOp("+", E);
  case ExprKind::Sub:
    return printOp("-", E);
  case ExprKind::Mul:
    return printOp("*", E);
  case ExprKind::Neg:
    return printOp("neg", E);
  case ExprKind::Some:
    return "Some(" + exprToString(E->Kids[0]) + ")";
  case ExprKind::IsSome:
    return printOp("is-some", E);
  case ExprKind::Unwrap:
    return printOp("unwrap", E);
  case ExprKind::SeqNil:
    return "[]";
  case ExprKind::SeqUnit:
    return "[" + exprToString(E->Kids[0]) + "]";
  case ExprKind::SeqConcat:
    return printOp("++", E);
  case ExprKind::SeqLen:
    return printOp("len", E);
  case ExprKind::SeqNth:
    return printOp("nth", E);
  case ExprKind::SeqSub:
    return printOp("sub", E);
  case ExprKind::TupleLit: {
    std::vector<std::string> Parts;
    for (const Expr &Kid : E->Kids)
      Parts.push_back(exprToString(Kid));
    return "(" + join(Parts, ", ") + ")";
  }
  case ExprKind::TupleGet:
    return exprToString(E->Kids[0]) + "." + std::to_string(E->Index);
  case ExprKind::LftIncl:
    return printOp("lft<=", E);
  case ExprKind::App:
    return printOp(E->Name.c_str(), E);
  }
  GILR_UNREACHABLE("unknown expr kind in printer");
}
