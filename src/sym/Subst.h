//===- sym/Subst.h - Variable substitution --------------------------------===//
///
/// \file
/// Capture-free substitution of symbolic variables, the workhorse of
/// assertion production/consumption (specs are instantiated by substituting
/// formal spec variables with matched state values).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SYM_SUBST_H
#define GILR_SYM_SUBST_H

#include "sym/Expr.h"

#include <map>
#include <optional>

namespace gilr {

/// A partial map from variable names to replacement expressions.
class Subst {
public:
  Subst() = default;

  /// Binds \p Name to \p Value. Re-binding to a structurally equal value is a
  /// no-op; re-binding to a different value is an error caught by assert.
  void bind(const std::string &Name, const Expr &Value);

  /// Binds or overwrites \p Name unconditionally.
  void rebind(const std::string &Name, const Expr &Value);

  bool contains(const std::string &Name) const;
  std::optional<Expr> lookup(const std::string &Name) const;

  /// Applies the substitution to \p E, leaving unbound variables in place.
  Expr apply(const Expr &E) const;

  std::size_t size() const { return Map.size(); }
  const std::map<std::string, Expr> &entries() const { return Map; }

private:
  std::map<std::string, Expr> Map;
};

} // namespace gilr

#endif // GILR_SYM_SUBST_H
