//===- sym/Printer.h - Expression pretty-printing -------------------------===//
///
/// \file
/// Human-readable rendering of expressions, used by diagnostics and tests.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SYM_PRINTER_H
#define GILR_SYM_PRINTER_H

#include "sym/Expr.h"

namespace gilr {

/// Renders \p E as a compact string, e.g. "(+ x 1)" style prefix notation for
/// operators and Rust-like notation for values.
std::string exprToString(const Expr &E);

} // namespace gilr

#endif // GILR_SYM_PRINTER_H
