//===- sym/VarGen.h - Fresh symbolic variable generation ------------------===//
///
/// \file
/// A counter-based generator for fresh symbolic variables, locations, and
/// prophecy variables. One generator is owned by each verification run so
/// that proofs are deterministic and replayable.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SYM_VARGEN_H
#define GILR_SYM_VARGEN_H

#include "sym/Expr.h"

#include <cstdint>

namespace gilr {

/// Generates fresh variables with unique names.
class VarGen {
public:
  /// Returns a fresh variable of sort \p S; names look like "base%7".
  Expr fresh(const std::string &Base, Sort S);

  /// Returns a fresh prophecy variable (reserved "pcy$" prefix, see §5.2).
  Expr freshProphecy(const std::string &Base, Sort S = Sort::Any);

  /// Returns a fresh concrete location literal (a new allocation identity).
  Expr freshLoc();

  /// Returns a fresh lifetime variable.
  Expr freshLifetime(const std::string &Base = "lft");

  uint64_t counter() const { return Counter; }

private:
  uint64_t Counter = 0;
  uint64_t LocCounter = 0;
};

} // namespace gilr

#endif // GILR_SYM_VARGEN_H
