//===- sym/Intern.h - Hash-consed expression interning --------------------===//
///
/// \file
/// The intern layer beneath the ExprBuilder factories: every node built
/// through the smart constructors is deduplicated against a process-wide,
/// sharded intern table so that structurally identical constructions return
/// the *same* reference-counted node. On top of that identity the layer
/// assigns two dense ids per node (see sym/Expr.h):
///
///  - \c Id: unique per interned node (pointer identity).
///  - \c CanonId: unique per \c exprEquals equivalence class — variables are
///    identified by name alone, so the same variable written with different
///    sort annotations (specs use Any, the executor knows the precise sort)
///    shares a CanonId while keeping distinct, deterministic nodes.
///
/// Thread safety: the tables are sharded with a mutex per shard, so workers
/// of the proof scheduler (sched/) interning in parallel rarely contend and
/// never race. Id *values* depend on interning order and are therefore racy
/// across runs; they are only ever used for equality and hashing, never for
/// ordering (see exprLess), which keeps parallel runs report-deterministic.
///
/// Lifetime: the intern tables hold strong references, so interned nodes
/// live for the whole process (a deliberate arena trade-off, as in Z3's
/// hash-consed ASTs). See docs/INTERNING.md.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SYM_INTERN_H
#define GILR_SYM_INTERN_H

#include "sym/Expr.h"

namespace gilr {

/// Snapshot of intern-table activity.
struct InternStats {
  uint64_t Nodes = 0;  ///< Unique interned nodes resident.
  uint64_t Hits = 0;   ///< Factory calls answered by an existing node.
  uint64_t Misses = 0; ///< Factory calls that interned a new node.

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

InternStats internStats();

/// Returns the canonical interned node structurally identical to \p E
/// (including variable sorts). Returns \p E itself when it is already
/// interned; clones foreign nodes (and their foreign subterms) otherwise.
Expr internExpr(const Expr &E);

/// Dense (>= 1) global symbol id for \p Name; equal strings map to equal
/// ids. Used for the NameSym field and the congruence signature pass.
uint64_t internName(const std::string &Name);

/// Enables/disables hash-consing for subsequently built nodes and returns
/// the previous setting. Interning is on by default; disabling exists solely
/// for before/after benchmarking (bench/bench_intern.cpp) and must only be
/// toggled while no other thread is building expressions.
bool setInterningEnabled(bool Enabled);
bool interningEnabled();

namespace detail {
/// Interns a freshly built node whose payload fields are final and whose
/// hash has been finalized. Returns the canonical node (which is \p N itself
/// if no structurally identical node existed). Called by the ExprBuilder
/// factories; not for general use.
Expr internNewNode(std::shared_ptr<ExprNode> N);
} // namespace detail

} // namespace gilr

#endif // GILR_SYM_INTERN_H
