//===- sym/ExprBuilder.h - Smart constructors for expressions ------------===//
///
/// \file
/// Factory functions for the expression DAG. Every constructor performs
/// sort checking (asserted) and local simplification: constant folding,
/// flattening of associative connectives, constructor-clash detection for
/// equalities and Ite folding. Downstream code (solver, heap, engine) relies
/// on these normal forms.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SYM_EXPRBUILDER_H
#define GILR_SYM_EXPRBUILDER_H

#include "sym/Expr.h"

namespace gilr {

// Leaves.
Expr mkVar(const std::string &Name, Sort S);
Expr mkInt(__int128 V);
Expr mkIntU64(uint64_t V);
Expr mkReal(Rational R);
Expr mkBool(bool B);
Expr mkTrue();
Expr mkFalse();
Expr mkUnit();
Expr mkLoc(uint64_t Id);
Expr mkNone();

// Boolean structure.
Expr mkNot(const Expr &A);
Expr mkAnd(const Expr &A, const Expr &B);
Expr mkAnd(std::vector<Expr> Conjuncts);
Expr mkOr(const Expr &A, const Expr &B);
Expr mkOr(std::vector<Expr> Disjuncts);
Expr mkImplies(const Expr &A, const Expr &B);
Expr mkIte(const Expr &C, const Expr &T, const Expr &E);

// Comparisons.
Expr mkEq(const Expr &A, const Expr &B);
Expr mkNe(const Expr &A, const Expr &B);
Expr mkLt(const Expr &A, const Expr &B);
Expr mkLe(const Expr &A, const Expr &B);
Expr mkGt(const Expr &A, const Expr &B);
Expr mkGe(const Expr &A, const Expr &B);

// Arithmetic (Int or Real, homogeneous).
Expr mkAdd(const Expr &A, const Expr &B);
Expr mkAdd(std::vector<Expr> Terms);
Expr mkSub(const Expr &A, const Expr &B);
Expr mkMul(const Expr &A, const Expr &B);
Expr mkNeg(const Expr &A);

// Options.
Expr mkSome(const Expr &V);
Expr mkIsSome(const Expr &O);
Expr mkIsNone(const Expr &O);
Expr mkUnwrap(const Expr &O);

// Sequences.
Expr mkSeqNil();
Expr mkSeqUnit(const Expr &V);
Expr mkSeqLit(const std::vector<Expr> &Vals);
Expr mkSeqConcat(const Expr &A, const Expr &B);
Expr mkSeqConcat(std::vector<Expr> Parts);
Expr mkSeqCons(const Expr &Head, const Expr &Tail);
Expr mkSeqLen(const Expr &S);
Expr mkSeqNth(const Expr &S, const Expr &I);
Expr mkSeqSub(const Expr &S, const Expr &From, const Expr &Len);

// Tuples.
Expr mkTuple(std::vector<Expr> Elems);
Expr mkTupleGet(const Expr &T, unsigned Index);

// Lifetimes.
Expr mkLftVar(const std::string &Name);
Expr mkLftIncl(const Expr &K1, const Expr &K2);

// Uninterpreted application.
Expr mkApp(const std::string &Name, std::vector<Expr> Args,
           Sort ResultSort = Sort::Any);

/// Rebuilds a non-leaf node with replacement \p Kids through the matching
/// smart constructor (so local simplification and interning re-apply).
/// Shared by simplify, substitution and the rewrite engines.
Expr rebuildWithKids(const Expr &E, std::vector<Expr> Kids);

/// True if \p E is the literal true / false respectively.
bool isTrueLit(const Expr &E);
bool isFalseLit(const Expr &E);
/// True if \p E is an integer literal; \p Out receives the value.
bool getIntLit(const Expr &E, __int128 &Out);
/// True if \p E is a sequence with statically-known length.
bool getStaticSeqLen(const Expr &E, __int128 &Out);

} // namespace gilr

#endif // GILR_SYM_EXPRBUILDER_H
