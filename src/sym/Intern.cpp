//===- sym/Intern.cpp ------------------------------------------------------===//

#include "sym/Intern.h"

#include "support/StringUtils.h"

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

using namespace gilr;

namespace {

constexpr std::size_t NumShards = 64; // Power of two.

std::size_t shardOf(std::size_t H) { return (H >> 4) & (NumShards - 1); }

/// Exact structural identity, *including* variable sorts (unlike
/// exprEquals): interning must not collapse sort-annotated variants of a
/// variable, because NodeSort feeds solver decisions and first-wins
/// canonicalisation would be racy under the worker pool. Kids are compared
/// by pointer: candidates always carry canonical (interned) kids.
bool exprIdentical(const ExprNode &A, const ExprNode &B) {
  if (A.Kind != B.Kind || A.NodeSort != B.NodeSort ||
      A.Kids.size() != B.Kids.size())
    return false;
  if (A.Name != B.Name || A.IntVal != B.IntVal || !(A.RatVal == B.RatVal) ||
      A.BoolVal != B.BoolVal || A.LocId != B.LocId || A.Index != B.Index)
    return false;
  for (std::size_t I = 0, E = A.Kids.size(); I != E; ++I)
    if (A.Kids[I].get() != B.Kids[I].get())
      return false;
  return true;
}

struct TableShard {
  std::mutex Mu;
  /// Structural hash -> nodes with that hash (collisions are rare).
  std::unordered_map<std::size_t, std::vector<Expr>> Buckets;
};

struct VecHash {
  std::size_t operator()(const std::vector<uint64_t> &V) const {
    std::size_t Seed = 0x1e7e;
    for (uint64_t X : V)
      hashCombine(Seed, static_cast<std::size_t>(X));
    return Seed;
  }
};

struct CanonShard {
  std::mutex Mu;
  std::unordered_map<std::vector<uint64_t>, uint64_t, VecHash> Map;
};

struct NameShard {
  std::mutex Mu;
  std::unordered_map<std::string, uint64_t> Map;
};

/// All tables are intentionally leaked: interned nodes live for the whole
/// process, and skipping static destruction avoids both destruction-order
/// hazards and deep shared_ptr chain unwinding at exit.
TableShard *tableShards() {
  static TableShard *S = new TableShard[NumShards];
  return S;
}
CanonShard *canonShards() {
  static CanonShard *S = new CanonShard[NumShards];
  return S;
}
NameShard *nameShards() {
  static NameShard *S = new NameShard[NumShards];
  return S;
}

std::atomic<uint64_t> NextId{1};
std::atomic<uint64_t> NextCanonId{1};
std::atomic<uint64_t> NextNameId{1};
std::atomic<uint64_t> StatNodes{0};
std::atomic<uint64_t> StatHits{0};
std::atomic<uint64_t> StatMisses{0};
std::atomic<bool> Enabled{true};

/// The exprEquals-equivalence key of an interned-node candidate: variables
/// by name alone; everything else by kind, sort, payload and kid CanonIds.
std::vector<uint64_t> canonKeyOf(const ExprNode &N) {
  std::vector<uint64_t> Key;
  if (N.Kind == ExprKind::Var) {
    Key = {static_cast<uint64_t>(N.Kind), N.NameSym};
    return Key;
  }
  Key.reserve(10 + N.Kids.size());
  Key.push_back(static_cast<uint64_t>(N.Kind));
  Key.push_back(static_cast<uint64_t>(N.NodeSort));
  Key.push_back(N.NameSym);
  Key.push_back(static_cast<uint64_t>(N.IntVal));
  Key.push_back(static_cast<uint64_t>(N.IntVal >> 64));
  Key.push_back(static_cast<uint64_t>(N.RatVal.Num));
  Key.push_back(static_cast<uint64_t>(N.RatVal.Den));
  Key.push_back(N.BoolVal ? 1 : 0);
  Key.push_back(N.LocId);
  Key.push_back(N.Index);
  for (const Expr &Kid : N.Kids)
    Key.push_back(Kid->CanonId);
  return Key;
}

uint64_t canonIdFor(const ExprNode &N) {
  std::vector<uint64_t> Key = canonKeyOf(N);
  std::size_t H = VecHash()(Key);
  CanonShard &Sh = canonShards()[shardOf(H)];
  std::lock_guard<std::mutex> Lock(Sh.Mu);
  auto [It, Inserted] = Sh.Map.emplace(std::move(Key), 0);
  if (Inserted)
    It->second = NextCanonId.fetch_add(1, std::memory_order_relaxed);
  return It->second;
}

} // namespace

uint64_t gilr::internName(const std::string &Name) {
  std::size_t H = std::hash<std::string>()(Name);
  NameShard &Sh = nameShards()[shardOf(H)];
  std::lock_guard<std::mutex> Lock(Sh.Mu);
  auto [It, Inserted] = Sh.Map.emplace(Name, 0);
  if (Inserted)
    It->second = NextNameId.fetch_add(1, std::memory_order_relaxed);
  return It->second;
}

bool gilr::setInterningEnabled(bool E) {
  return Enabled.exchange(E, std::memory_order_acq_rel);
}

bool gilr::interningEnabled() {
  return Enabled.load(std::memory_order_acquire);
}

InternStats gilr::internStats() {
  InternStats S;
  S.Nodes = StatNodes.load(std::memory_order_relaxed);
  S.Hits = StatHits.load(std::memory_order_relaxed);
  S.Misses = StatMisses.load(std::memory_order_relaxed);
  return S;
}

Expr gilr::detail::internNewNode(std::shared_ptr<ExprNode> N) {
  if (!Enabled.load(std::memory_order_acquire))
    return N;
  // Canonicalise foreign kids first (usual case: all kids already interned,
  // since they came out of the same factories). Replacing a kid with a
  // structurally identical node does not change the structural hash.
  for (Expr &Kid : N->Kids)
    if (Kid->Id == 0)
      Kid = internExpr(Kid);
  if (!N->Name.empty())
    N->NameSym = internName(N->Name);

  std::size_t H = N->hash();
  TableShard &Sh = tableShards()[shardOf(H)];
  std::lock_guard<std::mutex> Lock(Sh.Mu);
  std::vector<Expr> &Bucket = Sh.Buckets[H];
  for (const Expr &Existing : Bucket)
    if (exprIdentical(*Existing, *N)) {
      StatHits.fetch_add(1, std::memory_order_relaxed);
      return Existing;
    }
  N->Id = NextId.fetch_add(1, std::memory_order_relaxed);
  N->CanonId = canonIdFor(*N);
  Bucket.push_back(N);
  StatMisses.fetch_add(1, std::memory_order_relaxed);
  StatNodes.fetch_add(1, std::memory_order_relaxed);
  return Bucket.back();
}

Expr gilr::internExpr(const Expr &E) {
  if (!E || E->Id != 0 || !Enabled.load(std::memory_order_acquire))
    return E;
  std::vector<Expr> Kids;
  Kids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids)
    Kids.push_back(internExpr(Kid));
  auto N = std::make_shared<ExprNode>(E->Kind, E->NodeSort, std::move(Kids));
  N->Name = E->Name;
  N->IntVal = E->IntVal;
  N->RatVal = E->RatVal;
  N->BoolVal = E->BoolVal;
  N->LocId = E->LocId;
  N->Index = E->Index;
  N->finalizeHash();
  return detail::internNewNode(std::move(N));
}
