//===- sym/Subst.cpp -------------------------------------------------------===//

#include "sym/Subst.h"

#include "sym/ExprBuilder.h"

#include <cassert>

using namespace gilr;

void Subst::bind(const std::string &Name, const Expr &Value) {
  auto It = Map.find(Name);
  if (It != Map.end()) {
    assert(exprEquals(It->second, Value) &&
           "conflicting rebinding in substitution");
    return;
  }
  Map.emplace(Name, Value);
}

void Subst::rebind(const std::string &Name, const Expr &Value) {
  Map[Name] = Value;
}

bool Subst::contains(const std::string &Name) const {
  return Map.count(Name) != 0;
}

std::optional<Expr> Subst::lookup(const std::string &Name) const {
  auto It = Map.find(Name);
  if (It == Map.end())
    return std::nullopt;
  return It->second;
}

Expr Subst::apply(const Expr &E) const {
  if (!E)
    return E;
  if (E->Kind == ExprKind::Var) {
    auto It = Map.find(E->Name);
    if (It != Map.end())
      return It->second;
    return E;
  }
  if (E->Kids.empty())
    return E;

  bool Changed = false;
  std::vector<Expr> NewKids;
  NewKids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids) {
    Expr NewKid = apply(Kid);
    Changed |= (NewKid.get() != Kid.get());
    NewKids.push_back(std::move(NewKid));
  }
  if (!Changed)
    return E;

  // Rebuild through the smart constructors so substitution re-triggers
  // simplification (e.g. an equality whose operands became literals).
  return rebuildWithKids(E, std::move(NewKids));
}
