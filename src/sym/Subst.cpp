//===- sym/Subst.cpp -------------------------------------------------------===//

#include "sym/Subst.h"

#include "sym/ExprBuilder.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace gilr;

void Subst::bind(const std::string &Name, const Expr &Value) {
  auto It = Map.find(Name);
  if (It != Map.end()) {
    assert(exprEquals(It->second, Value) &&
           "conflicting rebinding in substitution");
    return;
  }
  Map.emplace(Name, Value);
}

void Subst::rebind(const std::string &Name, const Expr &Value) {
  Map[Name] = Value;
}

bool Subst::contains(const std::string &Name) const {
  return Map.count(Name) != 0;
}

std::optional<Expr> Subst::lookup(const std::string &Name) const {
  auto It = Map.find(Name);
  if (It == Map.end())
    return std::nullopt;
  return It->second;
}

Expr Subst::apply(const Expr &E) const {
  if (!E)
    return E;
  if (E->Kind == ExprKind::Var) {
    auto It = Map.find(E->Name);
    if (It != Map.end())
      return It->second;
    return E;
  }
  if (E->Kids.empty())
    return E;

  bool Changed = false;
  std::vector<Expr> NewKids;
  NewKids.reserve(E->Kids.size());
  for (const Expr &Kid : E->Kids) {
    Expr NewKid = apply(Kid);
    Changed |= (NewKid.get() != Kid.get());
    NewKids.push_back(std::move(NewKid));
  }
  if (!Changed)
    return E;

  // Rebuild through the smart constructors so substitution re-triggers
  // simplification (e.g. an equality whose operands became literals).
  switch (E->Kind) {
  case ExprKind::Not:
    return mkNot(NewKids[0]);
  case ExprKind::And:
    return mkAnd(std::move(NewKids));
  case ExprKind::Or:
    return mkOr(std::move(NewKids));
  case ExprKind::Implies:
    return mkImplies(NewKids[0], NewKids[1]);
  case ExprKind::Ite:
    return mkIte(NewKids[0], NewKids[1], NewKids[2]);
  case ExprKind::Eq:
    return mkEq(NewKids[0], NewKids[1]);
  case ExprKind::Lt:
    return mkLt(NewKids[0], NewKids[1]);
  case ExprKind::Le:
    return mkLe(NewKids[0], NewKids[1]);
  case ExprKind::Add:
    return mkAdd(std::move(NewKids));
  case ExprKind::Sub:
    return mkSub(NewKids[0], NewKids[1]);
  case ExprKind::Mul:
    return mkMul(NewKids[0], NewKids[1]);
  case ExprKind::Neg:
    return mkNeg(NewKids[0]);
  case ExprKind::Some:
    return mkSome(NewKids[0]);
  case ExprKind::IsSome:
    return mkIsSome(NewKids[0]);
  case ExprKind::Unwrap:
    return mkUnwrap(NewKids[0]);
  case ExprKind::SeqUnit:
    return mkSeqUnit(NewKids[0]);
  case ExprKind::SeqConcat:
    return mkSeqConcat(std::move(NewKids));
  case ExprKind::SeqLen:
    return mkSeqLen(NewKids[0]);
  case ExprKind::SeqNth:
    return mkSeqNth(NewKids[0], NewKids[1]);
  case ExprKind::SeqSub:
    return mkSeqSub(NewKids[0], NewKids[1], NewKids[2]);
  case ExprKind::TupleLit:
    return mkTuple(std::move(NewKids));
  case ExprKind::TupleGet:
    return mkTupleGet(NewKids[0], E->Index);
  case ExprKind::LftIncl:
    return mkLftIncl(NewKids[0], NewKids[1]);
  case ExprKind::App:
    return mkApp(E->Name, std::move(NewKids), E->NodeSort);
  default:
    GILR_UNREACHABLE("substitution into a leaf with kids");
  }
}
