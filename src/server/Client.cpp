//===- server/Client.cpp - gilr client mode ---------------------------------===//

#include "server/Client.h"

#include "server/Protocol.h"
#include "support/Files.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gilr;
using namespace gilr::server;

namespace {

constexpr int ExitTransport = 4;

int connectTo(const std::string &Path, std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return -1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0) {
    Err = "connect " + Path + ": " + std::strerror(errno) +
          " (is gilrd running?)";
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool sendAll(int Fd, const std::string &Data) {
  std::size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<std::size_t>(N);
  }
  return true;
}

/// Reads lines from \p Fd through \p Buf; false on EOF/error with no
/// complete line buffered.
bool readLine(int Fd, std::string &Buf, std::string &Line) {
  for (;;) {
    std::size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      return true;
    }
    char Tmp[4096];
    ssize_t N = ::read(Fd, Tmp, sizeof Tmp);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Buf.append(Tmp, static_cast<std::size_t>(N));
  }
}

/// The request line for \p Opt / \p Method with an inline module.
std::string requestLine(const ClientOptions &Opt, const std::string &Id,
                        const std::string &Method, const std::string &Name,
                        const std::string &Module) {
  std::string S = std::string("{\"gilr\": \"") + protocolVersion() +
                  "\", \"id\": \"" + jsonEscape(Id) + "\", \"method\": \"" +
                  jsonEscape(Method) + "\"";
  if (!Name.empty())
    S += ", \"name\": \"" + jsonEscape(Name) + "\"";
  if (!Module.empty())
    S += ", \"module\": \"" + jsonEscape(Module) + "\"";
  if (!Opt.ClientId.empty())
    S += ", \"client\": \"" + jsonEscape(Opt.ClientId) + "\"";
  if (Opt.Jobs)
    S += ", \"jobs\": " + std::to_string(Opt.Jobs);
  if (Opt.TimeoutMs)
    S += ", \"timeout_ms\": " + std::to_string(Opt.TimeoutMs);
  return S + "}\n";
}

/// Pumps events for request \p Id until its result/error event; returns
/// the exit code. Non-JSON mode renders diagnostics to \p Err and a
/// per-file summary line to \p Out.
int pumpEvents(int Fd, std::string &Buf, const std::string &Id,
               const std::string &Label, bool Json, std::ostream &Out,
               std::ostream &Err) {
  std::string Line;
  while (readLine(Fd, Buf, Line)) {
    if (Line.empty())
      continue;
    json::ValuePtr V = json::parse(Line);
    if (!V || !V->isObject())
      continue; // Foreign line; skip.
    json::ValuePtr Ev = V->get("event");
    json::ValuePtr EvId = V->get("id");
    if (!Ev || !Ev->isString() || !EvId || !EvId->isString() ||
        EvId->Str != Id)
      continue;
    if (Ev->Str == "accepted")
      continue;
    if (Ev->Str == "diagnostic") {
      if (json::ValuePtr T = V->get("text"); T && T->isString() && !Json)
        Err << T->Str << "\n";
      continue;
    }
    if (Ev->Str == "error") {
      std::string Msg = "server error";
      if (json::ValuePtr E = V->get("error"); E && E->isString())
        Msg = E->Str;
      Err << "gilr client: " << Label << ": " << Msg << "\n";
      if (json::ValuePtr X = V->get("exit"); X && X->isNumber())
        return static_cast<int>(X->Num);
      return ExitTransport;
    }
    if (Ev->Str == "result") {
      int Exit = 0;
      if (json::ValuePtr X = V->get("exit"); X && X->isNumber())
        Exit = static_cast<int>(X->Num);
      if (Json) {
        Out << Line << "\n";
      } else {
        Out << Label << ": exit " << Exit;
        if (json::ValuePtr Inc = V->get("incremental");
            Inc && Inc->isObject()) {
          auto Field = [&](const char *K) -> uint64_t {
            json::ValuePtr F = Inc->get(K);
            return F ? static_cast<uint64_t>(F->numberOr(0)) : 0;
          };
          Out << " (" << Field("cached") << " cached, " << Field("verified")
              << " verified, " << Field("shared_hits") << " shared hits)";
        }
        Out << "\n";
      }
      return Exit;
    }
  }
  Err << "gilr client: " << Label << ": connection closed before result\n";
  return ExitTransport;
}

} // namespace

std::string gilr::server::defaultSocketPath() {
  if (const char *Env = std::getenv("GILRD_SOCKET"); Env && *Env)
    return Env;
  return "/tmp/gilrd.sock";
}

int gilr::server::runClient(const ClientOptions &Opt, std::ostream &Out,
                            std::ostream &Err) {
  const std::string Socket =
      Opt.SocketPath.empty() ? defaultSocketPath() : Opt.SocketPath;
  std::string ConnErr;
  int Fd = connectTo(Socket, ConnErr);
  if (Fd < 0) {
    Err << "gilr client: " << ConnErr << "\n";
    return ExitTransport;
  }

  int Exit = 0;
  std::string Buf;
  if (Opt.Method == "verify" || Opt.Method == "check") {
    unsigned Seq = 0;
    for (const std::string &Path : Opt.Files) {
      std::string Text;
      if (!files::readFile(Path, Text, ".gilr module")) {
        Exit = std::max(Exit, ExitTransport);
        continue;
      }
      // Module name from the file stem, mirroring `gilr verify` naming.
      std::string Name = Path;
      if (std::size_t Slash = Name.find_last_of('/');
          Slash != std::string::npos)
        Name = Name.substr(Slash + 1);
      if (Name.size() > 5 && Name.substr(Name.size() - 5) == ".gilr")
        Name = Name.substr(0, Name.size() - 5);
      std::string Id = Name + "-" + std::to_string(++Seq);
      if (!sendAll(Fd, requestLine(Opt, Id, Opt.Method, Name, Text))) {
        Err << "gilr client: send failed for " << Path << "\n";
        Exit = std::max(Exit, ExitTransport);
        break;
      }
      Exit = std::max(Exit, pumpEvents(Fd, Buf, Id, Path, Opt.Json, Out, Err));
    }
  } else {
    // Control request: ping / stats / shutdown.
    std::string Id = Opt.Method + "-1";
    if (!sendAll(Fd, requestLine(Opt, Id, Opt.Method, "", ""))) {
      Err << "gilr client: send failed\n";
      ::close(Fd);
      return ExitTransport;
    }
    Exit = pumpEvents(Fd, Buf, Id, Opt.Method, Opt.Json, Out, Err);
    // Control results carry no verification exit semantics; any well-formed
    // result is success.
    if (Exit >= 0 && Exit != ExitTransport)
      Exit = 0;
  }
  ::close(Fd);
  return Exit;
}
