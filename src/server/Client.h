//===- server/Client.h - gilr client mode -----------------------------------===//
///
/// \file
/// The client side of the gilr-server-v1 protocol: `gilr client` connects
/// to a running gilrd daemon over its Unix-domain socket, submits `.gilr`
/// modules (or control requests), streams the daemon's events back to the
/// terminal, and exits with the CLI's exit-code contract — so a warm
/// daemon behind `gilr client verify` is a drop-in for `gilr verify`.
///
/// The client owns no verification state; it is a thin line-oriented
/// socket pump, deliberately independent of the frontend and engine
/// libraries so tools can link it without pulling in the world.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SERVER_CLIENT_H
#define GILR_SERVER_CLIENT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gilr {
namespace server {

/// Options of one `gilr client` invocation.
struct ClientOptions {
  /// Socket to connect to. Empty = \c defaultSocketPath().
  std::string SocketPath;
  /// verify | check | ping | stats | shutdown.
  std::string Method = "verify";
  /// Module files to submit (verify/check).
  std::vector<std::string> Files;
  /// Multi-tenant identity sent with each request ("" = anonymous).
  std::string ClientId;
  bool Json = false;
  unsigned Jobs = 0;      ///< 0 = server default.
  uint64_t TimeoutMs = 0; ///< 0 = server default.
};

/// $GILRD_SOCKET when set, else /tmp/gilrd.sock.
std::string defaultSocketPath();

/// Runs the client: submits one request per file (or a single control
/// request), streaming events to \p Out / \p Err. Returns the worst exit
/// code across requests (0/1/2/3 per the CLI contract) or 4 on transport
/// failure / server rejection.
int runClient(const ClientOptions &Opt, std::ostream &Out, std::ostream &Err);

} // namespace server
} // namespace gilr

#endif // GILR_SERVER_CLIENT_H
