//===- server/Admission.h - Multi-tenant batch admission --------------------===//
///
/// \file
/// The daemon's admission queue: verification runs share one engine (the
/// interned expression tables and the scheduler's query cache are process
/// state), so at most one run executes at a time; everything else waits
/// here. The queue is multi-tenant fair:
///
///  * each client identity has a job budget — more than
///    \c PerClientMaxQueued outstanding requests from one client are
///    rejected up front (a busy tenant cannot starve the socket), as is
///    anything beyond the global \c MaxQueued cap;
///  * dispatch is round-robin across clients with waiting work, FIFO
///    within a client — a tenant submitting a large batch interleaves
///    with, rather than blocks, everyone else's single requests.
///
/// Handlers call \c enqueue (admission decision), \c waitTurn (blocks
/// until scheduled or shutdown), run their request, then \c done.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SERVER_ADMISSION_H
#define GILR_SERVER_ADMISSION_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gilr {
namespace server {

/// Knobs of the admission queue.
struct AdmissionConfig {
  /// Global cap on queued-or-running requests.
  std::size_t MaxQueued = 64;
  /// Per-client budget of queued-or-running requests.
  std::size_t PerClientMaxQueued = 8;
};

/// Counters of one queue instance (monotonic, plus the live depth).
struct AdmissionStats {
  uint64_t Admitted = 0;
  uint64_t Rejected = 0;
  uint64_t Completed = 0;
  std::size_t Queued = 0;  ///< Currently waiting or running.
  std::size_t Clients = 0; ///< Client identities ever seen.
};

class AdmissionQueue {
public:
  explicit AdmissionQueue(AdmissionConfig Cfg) : Cfg(Cfg) {}

  /// Admission decision for one request from \p Client. Returns a non-zero
  /// ticket and sets \p QueuePos (requests ahead of it) when admitted;
  /// returns 0 when the client's budget or the global cap is exhausted, or
  /// the queue has shut down.
  uint64_t enqueue(const std::string &Client, std::size_t &QueuePos);

  /// Blocks until \p Ticket holds the engine slot (true) or the queue shuts
  /// down first (false; the caller must not run).
  bool waitTurn(uint64_t Ticket);

  /// Releases the engine slot held by \p Ticket.
  void done(uint64_t Ticket);

  /// Wakes every waiter with "do not run". Idempotent.
  void shutdown();

  AdmissionStats stats() const;

private:
  /// Picks the next ticket to run when the slot is free. Caller holds Mu.
  void scheduleLocked();

  AdmissionConfig Cfg;
  mutable std::mutex Mu;
  std::condition_variable Cv;
  /// FIFO of waiting tickets per client identity.
  std::map<std::string, std::deque<uint64_t>> Waiting;
  /// Round-robin order over client identities (insertion order; entries
  /// stay once seen so the rotation is stable).
  std::vector<std::string> Rotation;
  /// The client last granted the slot; the next scan starts just past it.
  /// Tracked by name, not index — the rotation grows as clients appear.
  std::string LastClient;
  uint64_t NextTicket = 1;
  uint64_t Active = 0; ///< Ticket holding the engine slot; 0 = free.
  std::string ActiveClient; ///< Identity the active ticket belongs to.
  std::size_t Depth = 0;
  bool Stopped = false;
  AdmissionStats St;
};

} // namespace server
} // namespace gilr

#endif // GILR_SERVER_ADMISSION_H
