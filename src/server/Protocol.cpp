//===- server/Protocol.cpp - gilr-server-v1 parsing and rendering ----------===//

#include "server/Protocol.h"

#include "support/Json.h"
#include "support/StringUtils.h"

using namespace gilr;
using namespace gilr::server;

bool gilr::server::parseRequest(const std::string &Line, Request &Out,
                                std::string &Err) {
  Out = Request{}; // Reused Request objects must not leak prior fields.
  std::string JErr;
  json::ValuePtr V = json::parse(Line, &JErr);
  if (!V || !V->isObject()) {
    Err = "malformed request JSON" + (JErr.empty() ? "" : ": " + JErr);
    return false;
  }
  json::ValuePtr Tag = V->get("gilr");
  if (!Tag || !Tag->isString() || Tag->Str != protocolVersion()) {
    Err = std::string("missing or unsupported protocol tag (expected \"") +
          protocolVersion() + "\")";
    return false;
  }
  if (json::ValuePtr Id = V->get("id"); Id && Id->isString())
    Out.Id = Id->Str;
  json::ValuePtr M = V->get("method");
  if (!M || !M->isString()) {
    Err = "missing method";
    return false;
  }
  Out.Method = M->Str;
  if (Out.Method != "verify" && Out.Method != "check" &&
      Out.Method != "ping" && Out.Method != "stats" &&
      Out.Method != "shutdown") {
    Err = "unknown method '" + Out.Method + "'";
    return false;
  }
  if (json::ValuePtr N = V->get("name"); N && N->isString())
    Out.Name = N->Str;
  if (json::ValuePtr Mod = V->get("module"); Mod && Mod->isString())
    Out.Module = Mod->Str;
  if (json::ValuePtr C = V->get("client"); C && C->isString())
    Out.Client = C->Str;
  if (json::ValuePtr J = V->get("jobs"); J && J->isNumber())
    Out.Jobs = static_cast<unsigned>(J->Num);
  if (json::ValuePtr T = V->get("timeout_ms"); T && T->isNumber())
    Out.TimeoutMs = static_cast<uint64_t>(T->Num);
  if ((Out.Method == "verify" || Out.Method == "check") &&
      Out.Module.empty()) {
    Err = "method '" + Out.Method + "' needs a non-empty \"module\"";
    return false;
  }
  return true;
}

std::string gilr::server::renderVerdicts(const std::vector<Verdict> &Vs) {
  std::string S = "[";
  for (std::size_t I = 0; I < Vs.size(); ++I) {
    S += std::string(I ? ", " : "") + "{\"name\": \"" + jsonEscape(Vs[I].Name) +
         "\", \"side\": \"" + (Vs[I].Safe ? "safe" : "unsafe") +
         "\", \"ok\": " + (Vs[I].Ok ? "true" : "false") + "}";
  }
  return S + "]";
}

std::string gilr::server::eventHead(const char *Event, const std::string &Id) {
  return std::string("{\"gilr\": \"") + protocolVersion() +
         "\", \"event\": \"" + Event + "\", \"id\": \"" + jsonEscape(Id) +
         "\"";
}

std::string gilr::server::renderAccepted(const std::string &Id,
                                         std::size_t Queue) {
  return eventHead("accepted", Id) +
         ", \"queue\": " + std::to_string(Queue) + "}";
}

std::string gilr::server::renderDiagnostic(const std::string &Id,
                                           const std::string &Text) {
  return eventHead("diagnostic", Id) + ", \"text\": \"" + jsonEscape(Text) +
         "\"}";
}

std::string gilr::server::renderError(const std::string &Id,
                                      const std::string &Msg, int Exit) {
  return eventHead("error", Id) + ", \"error\": \"" + jsonEscape(Msg) +
         "\", \"exit\": " + std::to_string(Exit) + "}";
}
