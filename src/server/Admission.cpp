//===- server/Admission.cpp - Multi-tenant batch admission ------------------===//

#include "server/Admission.h"

#include <algorithm>

using namespace gilr;
using namespace gilr::server;

uint64_t AdmissionQueue::enqueue(const std::string &Client,
                                 std::size_t &QueuePos) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Stopped) {
    ++St.Rejected;
    return 0;
  }
  const std::string Key = Client.empty() ? "anonymous" : Client;
  std::deque<uint64_t> &Q = Waiting[Key];
  // Budget accounting counts the client's running request too: Active
  // belongs to some client's popped ticket, tracked via ActiveClientOf.
  std::size_t ClientOutstanding = Q.size() + (ActiveClient == Key ? 1 : 0);
  if (ClientOutstanding >= Cfg.PerClientMaxQueued ||
      Depth >= Cfg.MaxQueued) {
    ++St.Rejected;
    return 0;
  }
  if (std::find(Rotation.begin(), Rotation.end(), Key) == Rotation.end()) {
    Rotation.push_back(Key);
    ++St.Clients;
  }
  uint64_t Ticket = NextTicket++;
  QueuePos = Depth;
  Q.push_back(Ticket);
  ++Depth;
  ++St.Admitted;
  scheduleLocked();
  Cv.notify_all();
  return Ticket;
}

void AdmissionQueue::scheduleLocked() {
  if (Active != 0 || Rotation.empty())
    return;
  // Start scanning just past the client that last held the slot, resolved
  // by name at schedule time — the rotation may have grown since.
  std::size_t Start = 0;
  if (!LastClient.empty()) {
    auto It = std::find(Rotation.begin(), Rotation.end(), LastClient);
    if (It != Rotation.end())
      Start = static_cast<std::size_t>(It - Rotation.begin()) + 1;
  }
  for (std::size_t I = 0; I < Rotation.size(); ++I) {
    const std::size_t Slot = (Start + I) % Rotation.size();
    std::deque<uint64_t> &Q = Waiting[Rotation[Slot]];
    if (Q.empty())
      continue;
    Active = Q.front();
    ActiveClient = Rotation[Slot];
    LastClient = ActiveClient;
    Q.pop_front();
    return;
  }
}

bool AdmissionQueue::waitTurn(uint64_t Ticket) {
  std::unique_lock<std::mutex> Lock(Mu);
  Cv.wait(Lock, [&] { return Stopped || Active == Ticket; });
  return !Stopped && Active == Ticket;
}

void AdmissionQueue::done(uint64_t Ticket) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Active != Ticket)
    return;
  Active = 0;
  ActiveClient.clear();
  if (Depth)
    --Depth;
  ++St.Completed;
  scheduleLocked();
  Cv.notify_all();
}

void AdmissionQueue::shutdown() {
  std::lock_guard<std::mutex> Lock(Mu);
  Stopped = true;
  Cv.notify_all();
}

AdmissionStats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  AdmissionStats S = St;
  S.Queued = Depth;
  return S;
}
