//===- server/Server.cpp - The gilrd verification daemon -------------------===//

#include "server/Server.h"

#include "frontend/Frontend.h"
#include "frontend/Module.h"
#include "hybrid/Driver.h"
#include "incr/Session.h"
#include "sched/Scheduler.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gilr;
using namespace gilr::server;

namespace {

/// Writes all of \p Line plus a newline. MSG_NOSIGNAL: a client that hung
/// up must not SIGPIPE the daemon — the failed send just ends the
/// connection.
bool sendLine(int Fd, const std::string &Line) {
  std::string Out = Line;
  // NDJSON framing: the payload must be exactly one line. Raw newlines in
  // the rendered JSON are inter-token whitespace (strings are escaped), so
  // collapsing them preserves the value.
  for (char &C : Out)
    if (C == '\n')
      C = ' ';
  Out += "\n";
  std::size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<std::size_t>(N);
  }
  return true;
}

std::string jsonStringArray(const std::vector<std::string> &Xs) {
  std::string S = "[";
  for (std::size_t I = 0; I < Xs.size(); ++I)
    S += std::string(I ? ", " : "") + "\"" + jsonEscape(Xs[I]) + "\"";
  return S + "]";
}

} // namespace

Server::Server(ServerConfig C) : Cfg(std::move(C)), Admission(Cfg.Admission) {
  if (!Cfg.CacheDir.empty()) {
    incr::SharedDirConfig SC;
    SC.Dir = Cfg.CacheDir;
    SC.SizeBudgetBytes = Cfg.CacheBudgetBytes;
    Backend = std::make_unique<incr::SharedDirBackend>(std::move(SC));
  }
}

Server::~Server() {
  Stop.store(true, std::memory_order_relaxed);
  Admission.shutdown();
  {
    std::lock_guard<std::mutex> Lock(HandlersMu);
    for (std::thread &T : Handlers)
      if (T.joinable())
        T.join();
    Handlers.clear();
  }
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Cfg.SocketPath.c_str());
  }
}

bool Server::start(std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Cfg.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Cfg.SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, Cfg.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a crashed daemon would make bind fail;
  // replacing it is the conventional fix (a *live* daemon still holds the
  // listening socket, so its clients are unaffected — but they can no
  // longer reach it by this path).
  ::unlink(Cfg.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) <
      0) {
    Err = "bind " + Cfg.SocketPath + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 16) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Cfg.SocketPath.c_str());
    return false;
  }
  return true;
}

void Server::serve() {
  while (!Stop.load(std::memory_order_relaxed)) {
    pollfd P{};
    P.fd = ListenFd;
    P.events = POLLIN;
    int R = ::poll(&P, 1, /*ms=*/200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0 || !(P.revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> Lock(HandlersMu);
    Handlers.emplace_back([this, Fd] { handleConnection(Fd); });
  }

  // Graceful shutdown: no new connections, wake queued requests (they
  // report "shutting down"), drain in-flight handlers, then persist.
  Admission.shutdown();
  ::close(ListenFd);
  ListenFd = -1;
  {
    std::lock_guard<std::mutex> Lock(HandlersMu);
    for (std::thread &T : Handlers)
      if (T.joinable())
        T.join();
    Handlers.clear();
  }
  if (Backend)
    Backend->flush();
  ::unlink(Cfg.SocketPath.c_str());
}

void Server::stop() {
  Stop.store(true, std::memory_order_relaxed);
  Admission.shutdown();
}

void Server::handleConnection(int Fd) {
  auto Send = [Fd](const std::string &Line) { (void)sendLine(Fd, Line); };
  std::string Buf;
  char Tmp[4096];
  bool KeepOpen = true;
  while (KeepOpen && !Stop.load(std::memory_order_relaxed)) {
    pollfd P{};
    P.fd = Fd;
    P.events = POLLIN;
    int R = ::poll(&P, 1, /*ms=*/200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0)
      continue;
    if (P.revents & (POLLERR | POLLNVAL))
      break;
    ssize_t N = ::read(Fd, Tmp, sizeof Tmp);
    if (N <= 0)
      break;
    Buf.append(Tmp, static_cast<std::size_t>(N));
    std::size_t Nl;
    while (KeepOpen && (Nl = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      if (Line.empty())
        continue;
      Request Req;
      std::string Err;
      if (!parseRequest(Line, Req, Err)) {
        Send(renderError(Req.Id, Err, ServerExitParseError));
        continue;
      }
      Requests.fetch_add(1, std::memory_order_relaxed);
      KeepOpen = dispatch(Req, Send);
    }
  }
  ::close(Fd);
}

bool Server::dispatch(const Request &R,
                      const std::function<void(const std::string &)> &Send) {
  if (R.Method == "ping") {
    Send(eventHead("result", R.Id) +
         ", \"method\": \"ping\", \"ok\": true, \"pid\": " +
         std::to_string(::getpid()) + "}");
    return true;
  }
  if (R.Method == "stats") {
    Send(renderStats(R));
    return true;
  }
  if (R.Method == "shutdown") {
    Send(eventHead("result", R.Id) + ", \"method\": \"shutdown\", \"ok\": true}");
    stop();
    return false;
  }

  // verify / check: through admission.
  std::size_t Pos = 0;
  uint64_t Ticket = Admission.enqueue(R.Client, Pos);
  if (!Ticket) {
    Send(renderError(R.Id, "admission rejected: job budget exhausted",
                     ServerExitUnavailable));
    return true;
  }
  Send(renderAccepted(R.Id, Pos));
  if (!Admission.waitTurn(Ticket)) {
    Send(renderError(R.Id, "server shutting down", ServerExitUnavailable));
    return true;
  }
  runModule(R, R.Method == "check", Send);
  Admission.done(Ticket);
  return true;
}

void Server::runModule(
    const Request &R, bool CheckOnly,
    const std::function<void(const std::string &)> &Send) {
  std::lock_guard<std::mutex> Lock(EngineMu);
  const auto T0 = std::chrono::steady_clock::now();
  const SolverStats Before = metrics::solverStats();

  const std::string FileName =
      (R.Name.empty() ? std::string("module") : R.Name) + ".gilr";
  frontend::ParseResult P = frontend::parseString(FileName, R.Module);
  if (!P.ok()) {
    for (const analysis::Diagnostic &D : P.Diags)
      Send(renderDiagnostic(R.Id, D.str()));
    Send(eventHead("result", R.Id) + ", \"method\": \"" +
         jsonEscape(R.Method) +
         "\", \"exit\": " + std::to_string(ServerExitParseError) +
         ", \"diagnostics\": " + analysis::renderDiagnosticsJson(P.Diags) +
         "}");
    return;
  }
  frontend::Module &M = *P.Mod;

  if (CheckOnly) {
    Send(eventHead("result", R.Id) + ", \"method\": \"check\", \"exit\": 0" +
         ", \"functions\": " + std::to_string(M.Prog.Funcs.size()) +
         ", \"clients\": " + std::to_string(M.Clients.size()) +
         ", \"predicates\": " + std::to_string(M.Preds.all().size()) + "}");
    return;
  }

  // Mirrors the CLI verify path (frontend/Cli.cpp), with the run wired
  // directly through the scheduler so the daemon's resident state — the
  // shared cache backend and the accumulated solver entries — plugs in.
  sched::SchedulerConfig SC;
  SC.Threads = R.Jobs ? R.Jobs : Cfg.Jobs;
  SC.JobTimeoutMs = R.TimeoutMs ? R.TimeoutMs : Cfg.RequestTimeoutMs;
  SC.StableCacheKeys = true;

  sched::Scheduler S(SC);
  S.preloadCache(ResidentSolver);

  engine::VerifEnv Env = M.env();
  hybrid::HybridDriver Driver(Env, M.Contracts);
  std::vector<std::string> UnsafeFuncs = M.verifyFuncs();
  std::vector<creusot::SafeFn> Clients = M.verifyClients();
  if (M.VerifyList.empty()) {
    UnsafeFuncs.clear();
    for (const auto &KV : M.Prog.Funcs)
      UnsafeFuncs.push_back(KV.first);
    Clients = M.Clients;
  }
  std::vector<std::string> Errors;
  {
    // Lemma qualification and contract encoding run solver queries before
    // runHybrid installs the scheduler's memo; install it here too so a
    // warm request replays them from the resident entries.
    sched::ScopedQueryCache Warm(S.cache());
    Errors = M.registerLemmas();
    for (const std::string &Fn : UnsafeFuncs)
      if (!M.Specs.lookup(Fn) && M.Contracts.lookup(Fn))
        if (Outcome<Unit> E = Driver.encodeAndRegister(Fn); !E.ok())
          Errors.push_back("encode " + Fn + ": " + E.error());
  }

  incr::IncrConfig IC;
  IC.Enabled = true;
  IC.Backend = Backend.get();
  // The daemon manages solver-entry residency itself (below); there is no
  // local store file to load them from or save them to.
  IC.LoadSolverCache = false;
  IC.SaveSolverCache = false;
  incr::Session Sess(IC, Env, &M.Contracts);
  hybrid::HybridReport Report =
      S.runHybrid(Env, M.Contracts, UnsafeFuncs, Clients, &Sess);
  ResidentSolver = S.exportCacheEntries();
  ResidentSolverEntries.store(ResidentSolver.size(),
                              std::memory_order_relaxed);
  Sess.flush();

  int Exit = ServerExitOk;
  if (!Report.Analysis.ok() || Report.Analysis.EntitiesBlocked > 0)
    Exit = ServerExitLintError;
  else if (!Report.ok() || !Errors.empty())
    Exit = ServerExitProofFailure;

  for (const analysis::Diagnostic &D : Report.Analysis.Diags)
    Send(renderDiagnostic(R.Id, D.str()));

  std::vector<Verdict> Vs;
  for (const engine::VerifyReport &VR : Report.UnsafeSide)
    Vs.push_back({VR.Func, /*Safe=*/false, VR.Ok});
  for (const creusot::SafeReport &SR : Report.SafeSide)
    Vs.push_back({SR.Func, /*Safe=*/true, SR.Ok});

  const incr::IncrRunStats &St = Sess.stats();
  const SolverStats Delta = metrics::solverStats() - Before;
  const double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  std::ostringstream OS;
  OS << eventHead("result", R.Id) << ", \"method\": \"verify\", \"exit\": "
     << Exit << ", \"verdicts\": " << renderVerdicts(Vs)
     << ", \"errors\": " << jsonStringArray(Errors)
     << ", \"incremental\": {\"cached\": " << St.cached()
     << ", \"verified\": " << St.verified()
     << ", \"invalidated\": " << St.Invalidated
     << ", \"salvaged\": " << St.Salvaged << ", \"implied\": " << St.Implied
     << ", \"salvage_queries\": " << St.SalvageQueries
     << ", \"shared_hits\": " << St.SharedHits
     << ", \"shared_puts\": " << St.SharedPuts << "}"
     << ", \"interproc\": {\"summaries_computed\": " << St.SummariesComputed
     << ", \"summaries_reused\": " << St.SummariesReused
     << ", \"triaged_static\": " << St.TriagedStatic << "}"
     << ", \"solver\": {\"sat_queries\": " << Delta.SatQueries.get()
     << ", \"entail_queries\": " << Delta.EntailQueries.get()
     << ", \"branches\": " << Delta.Branches.get()
     << ", \"theory_checks\": " << Delta.TheoryChecks.get() << "}"
     << ", \"seconds\": " << Seconds
     << ", \"report\": " << Report.renderJson() << "}";
  Send(OS.str());
}

std::string Server::renderStats(const Request &R) const {
  std::ostringstream OS;
  OS << eventHead("result", R.Id) << ", \"method\": \"stats\""
     << ", \"requests\": " << Requests.load(std::memory_order_relaxed)
     << ", \"resident_solver_entries\": "
     << ResidentSolverEntries.load(std::memory_order_relaxed);
  if (Backend) {
    incr::CacheBackendStats B = Backend->stats();
    OS << ", \"cache\": {\"kind\": \"" << Backend->kind()
       << "\", \"gets\": " << B.Gets << ", \"hits\": " << B.Hits
       << ", \"puts\": " << B.Puts << ", \"puts_skipped\": " << B.PutsSkipped
       << ", \"evictions\": " << B.Evictions << ", \"gc_runs\": " << B.GcRuns
       << ", \"bytes\": " << B.Bytes << ", \"entries\": " << B.Entries
       << "}";
  }
  AdmissionStats A = Admission.stats();
  OS << ", \"admission\": {\"admitted\": " << A.Admitted
     << ", \"rejected\": " << A.Rejected << ", \"completed\": " << A.Completed
     << ", \"queued\": " << A.Queued << ", \"clients\": " << A.Clients
     << "}}";
  return OS.str();
}
