//===- server/Server.h - The gilrd verification daemon ---------------------===//
///
/// \file
/// A long-lived verification server: accepts gilr-server-v1 requests
/// (server/Protocol.h) over a Unix-domain socket and runs them against
/// state that stays resident across requests —
///
///  * the process-global interned expression tables (warm by construction),
///  * the solver query-cache entries of every previous run, preloaded into
///    each new run's scheduler cache and re-exported after it,
///  * a shared content-addressed proof-cache backend
///    (incr::SharedDirBackend) handed to every run's incr::Session, so an
///    unchanged module replays its verdicts without any solver work — and
///    so a *different* daemon (or CI job) pointed at the same directory
///    starts warm too.
///
/// Concurrency model: connections are handled on one thread each, but
/// verification runs are serialized through the admission queue
/// (server/Admission.h) — the intern tables and the run-scoped query-cache
/// installation are process state, so only one run may be active; requests
/// admitted behind it queue fairly per client. Parallelism *within* a run
/// is the scheduler's (the request's `jobs` field).
///
/// Shutdown is graceful: a `shutdown` request (or \c stop()) stops the
/// accept loop, wakes queued requests with an error, drains the in-flight
/// run, flushes the cache backend (running its size-budget GC) and removes
/// the socket file.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SERVER_SERVER_H
#define GILR_SERVER_SERVER_H

#include "incr/CacheBackend.h"
#include "server/Admission.h"
#include "server/Protocol.h"
#include "solver/Solver.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gilr {
namespace server {

/// Knobs of one daemon instance.
struct ServerConfig {
  /// The Unix-domain socket path to listen on.
  std::string SocketPath = "/tmp/gilrd.sock";
  /// Shared content-addressed proof-cache directory
  /// (incr::SharedDirConfig::Dir). Empty = no proof cache; only the
  /// resident solver entries carry warmth between requests.
  std::string CacheDir;
  /// Size budget of the cache directory, enforced by LRU GC after each
  /// run and at shutdown (0 = unlimited).
  uint64_t CacheBudgetBytes = 0;
  /// Default scheduler threads per request (a request's `jobs` overrides).
  unsigned Jobs = 1;
  /// Default per-job budget in ms (a request's `timeout_ms` overrides;
  /// 0 = unlimited).
  uint64_t RequestTimeoutMs = 0;
  AdmissionConfig Admission;
};

/// Exit codes mirrored from the CLI contract (frontend/Cli.h), plus the
/// server-specific ones.
inline constexpr int ServerExitOk = 0;
inline constexpr int ServerExitProofFailure = 1;
inline constexpr int ServerExitLintError = 2;
inline constexpr int ServerExitParseError = 3;
inline constexpr int ServerExitUnavailable = 4; ///< Busy / rejected / transport.

class Server {
public:
  explicit Server(ServerConfig Cfg);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on the configured socket (replacing a stale socket
  /// file). False + \p Err on failure.
  bool start(std::string &Err);

  /// Accepts and serves connections until \c stop() (or a shutdown
  /// request). Runs the graceful-shutdown epilogue before returning:
  /// drains handlers, flushes the cache backend, unlinks the socket.
  void serve();

  /// Requests shutdown; safe from any thread and from signal context is
  /// NOT guaranteed (it locks) — signal handlers should use
  /// \c requestStopAsync.
  void stop();

  /// Async-signal-safe stop request (sets a flag the accept loop polls).
  void requestStopAsync() { Stop.store(true, std::memory_order_relaxed); }

  const ServerConfig &config() const { return Cfg; }
  /// The resident cache backend (nullptr when CacheDir is empty).
  incr::SharedDirBackend *backend() { return Backend.get(); }
  uint64_t requestsServed() const {
    return Requests.load(std::memory_order_relaxed);
  }

private:
  void handleConnection(int Fd);
  /// Dispatches one parsed request, writing events through \p Send.
  /// Returns false when the connection should close (shutdown).
  bool dispatch(const Request &R,
                const std::function<void(const std::string &)> &Send);
  void runModule(const Request &R, bool CheckOnly,
                 const std::function<void(const std::string &)> &Send);
  std::string renderStats(const Request &R) const;

  ServerConfig Cfg;
  std::unique_ptr<incr::SharedDirBackend> Backend;
  AdmissionQueue Admission;
  /// Serializes verification runs (belt to the admission queue's braces:
  /// the intern tables and run-scoped caches are process state).
  std::mutex EngineMu;
  /// Query-cache entries accumulated across runs, preloaded into each new
  /// run's scheduler cache. Guarded by EngineMu.
  std::vector<SavedQueryVerdict> ResidentSolver;
  /// EngineMu-free mirror of ResidentSolver.size() for the stats endpoint.
  std::atomic<std::size_t> ResidentSolverEntries{0};
  int ListenFd = -1;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Requests{0};
  std::vector<std::thread> Handlers;
  std::mutex HandlersMu;
};

} // namespace server
} // namespace gilr

#endif // GILR_SERVER_SERVER_H
