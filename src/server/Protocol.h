//===- server/Protocol.h - The gilr-server-v1 wire protocol ----------------===//
///
/// \file
/// The newline-delimited JSON protocol between the gilrd daemon and its
/// clients (docs/SERVER.md). Every line in both directions is one JSON
/// object tagged `"gilr": "gilr-server-v1"`; unversioned or
/// foreign-versioned lines are rejected, so the protocol can evolve by
/// bumping the tag.
///
/// Requests carry a client-chosen `id` echoed on every event about them,
/// so one connection can (in principle) interleave several requests.
/// Methods: `verify` and `check` submit a `.gilr` module inline; `ping`,
/// `stats` and `shutdown` are control messages.
///
/// Events streamed back per request:
///   * `accepted`   — the request passed admission (queue depth attached),
///   * `diagnostic` — one rendered finding, streamed as produced,
///   * `result`     — the terminal event: exit code, per-obligation
///     verdicts, incremental + solver-delta telemetry, the full report,
///   * `error`      — terminal protocol/admission failure.
///
/// The `verdicts` array of a result is deliberately timing- and
/// cache-marker-free: a warm replay of an unchanged module renders the
/// byte-identical array the cold run produced (the determinism contract
/// the server tests and the CI smoke job gate on). Timing and cache
/// provenance live in the `seconds`, `incremental` and `report` fields.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SERVER_PROTOCOL_H
#define GILR_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace gilr {
namespace server {

inline const char *protocolVersion() { return "gilr-server-v1"; }

/// One parsed request line.
struct Request {
  std::string Id;       ///< Client-chosen correlation id (echoed back).
  std::string Method;   ///< verify | check | ping | stats | shutdown.
  std::string Name;     ///< Module name (diagnostics, verdict naming).
  std::string Module;   ///< Inline .gilr text (verify/check).
  std::string Client;   ///< Multi-tenant identity; "" = "anonymous".
  unsigned Jobs = 0;    ///< Scheduler threads; 0 = server default.
  uint64_t TimeoutMs = 0; ///< Per-job budget; 0 = server default.
};

/// Parses one request line. False + \p Err on malformed JSON, a missing or
/// foreign protocol tag, or an unknown method.
bool parseRequest(const std::string &Line, Request &Out, std::string &Err);

/// One per-obligation verdict of a result event (replay-stable: no timing,
/// no cache marker).
struct Verdict {
  std::string Name;
  bool Safe = false; ///< Safe-side (Creusot) obligation.
  bool Ok = false;
};

/// Renders \p Vs as the stable `verdicts` JSON array.
std::string renderVerdicts(const std::vector<Verdict> &Vs);

/// The common prefix of every event line: version tag, event kind, id.
/// Returns an unterminated object ("{...,"): the caller appends fields and
/// the closing brace.
std::string eventHead(const char *Event, const std::string &Id);

/// Complete single-purpose event lines (no trailing newline).
std::string renderAccepted(const std::string &Id, std::size_t Queue);
std::string renderDiagnostic(const std::string &Id, const std::string &Text);
std::string renderError(const std::string &Id, const std::string &Msg,
                        int Exit);

} // namespace server
} // namespace gilr

#endif // GILR_SERVER_PROTOCOL_H
