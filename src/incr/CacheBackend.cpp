//===- incr/CacheBackend.cpp ------------------------------------------------------===//

#include "incr/CacheBackend.h"

#include "support/Files.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace gilr;
using namespace gilr::incr;

namespace fs = std::filesystem;

namespace {

constexpr char RecMagic[8] = {'G', 'I', 'L', 'R', 'C', 'A', 'S', '1'};
constexpr uint32_t RecVersion = 1;

uint64_t fnv1a(const void *Data, std::size_t N, uint64_t H) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Quiet whole-file read: a missing or unreadable record is a cache miss,
/// not a diagnostic (unlike files::readFile).
bool readFileQuiet(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  char Buf[1 << 16];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  return Ok;
}

int processId() {
#ifdef _WIN32
  return 0;
#else
  return static_cast<int>(::getpid());
#endif
}

} // namespace

std::string CacheKey::hex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

CacheKey gilr::incr::obligationCacheKey(Side S, const std::string &Name,
                                        uint64_t SelfFp, uint64_t ConfigFp) {
  // Two FNV-1a passes with distinct seeds over (side ++ name ++ selffp ++
  // configfp). 128 bits so directory-scale collisions are out of reach;
  // the full key is also echoed inside every record file, so even a
  // collision reads as a miss rather than a wrong verdict.
  unsigned char Tag = static_cast<unsigned char>(S);
  auto Pass = [&](uint64_t Seed) {
    uint64_t H = fnv1a(&Tag, 1, Seed);
    H = fnv1a(Name.data(), Name.size(), H);
    H = fnv1a(&SelfFp, sizeof SelfFp, H);
    H = fnv1a(&ConfigFp, sizeof ConfigFp, H);
    return H;
  };
  CacheKey K;
  K.Hi = Pass(0xcbf29ce484222325ull);
  K.Lo = Pass(0x9e3779b97f4a7c15ull);
  return K;
}

//===----------------------------------------------------------------------===//
// LocalStoreBackend
//===----------------------------------------------------------------------===//

LocalStoreBackend::LocalStoreBackend(std::string Path)
    : Store(std::move(Path)) {
  Store.load(/*AllowCompaction=*/false);
  for (const StoredObligation *Ob : Store.records())
    KeyIndex.emplace(
        obligationCacheKey(Ob->S, Ob->Name, Ob->SelfFp, Ob->ConfigFp),
        std::make_pair(Ob->S, Ob->Name));
}

bool LocalStoreBackend::get(const CacheKey &K, std::string &Blob) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++St.Gets;
  auto It = KeyIndex.find(K);
  if (It == KeyIndex.end())
    return false;
  const StoredObligation *Ob = Store.lookup(It->second.first, It->second.second);
  if (!Ob ||
      !(obligationCacheKey(Ob->S, Ob->Name, Ob->SelfFp, Ob->ConfigFp) == K))
    return false; // Superseded by a put under a newer fingerprint.
  Blob = encodeObligationRecord(*Ob);
  ++St.Hits;
  return true;
}

bool LocalStoreBackend::put(const CacheKey &K, const std::string &Blob) {
  StoredObligation Ob;
  if (!decodeObligationRecord(Blob, Ob) ||
      !(obligationCacheKey(Ob.S, Ob.Name, Ob.SelfFp, Ob.ConfigFp) == K)) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++St.PutsSkipped; // Malformed or mislabeled blob: never store it.
    return true;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  KeyIndex.emplace(K, std::make_pair(Ob.S, Ob.Name));
  Store.put(std::move(Ob));
  ++St.Puts;
  return true;
}

bool LocalStoreBackend::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  return Store.flush();
}

CacheBackendStats LocalStoreBackend::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheBackendStats S = St;
  S.Entries = Store.size();
  return S;
}

//===----------------------------------------------------------------------===//
// SharedDirBackend
//===----------------------------------------------------------------------===//

SharedDirBackend::SharedDirBackend(SharedDirConfig Cfg_)
    : Cfg(std::move(Cfg_)) {
  std::error_code EC;
  fs::create_directories(fs::path(Cfg.Dir) / "objects", EC);
  // A failure here degrades every get to a miss and every put to a no-op;
  // the session still works off its local store.
}

std::string SharedDirBackend::recordPath(const CacheKey &K) const {
  std::string H = K.hex();
  return (fs::path(Cfg.Dir) / "objects" / H.substr(0, 2) / (H.substr(2) + ".rec"))
      .string();
}

bool SharedDirBackend::readRecordFile(const std::string &Path,
                                      const CacheKey &K,
                                      std::string &Blob) const {
  std::string Raw;
  if (!readFileQuiet(Path, Raw))
    return false;
  // magic[8] version[4] hi[8] lo[8] len[4] payload checksum[8]
  constexpr std::size_t Head = 8 + 4 + 8 + 8 + 4;
  if (Raw.size() < Head + 8 || std::memcmp(Raw.data(), RecMagic, 8) != 0)
    return false;
  uint32_t Version, Len;
  uint64_t Hi, Lo, Sum;
  std::memcpy(&Version, Raw.data() + 8, 4);
  std::memcpy(&Hi, Raw.data() + 12, 8);
  std::memcpy(&Lo, Raw.data() + 20, 8);
  std::memcpy(&Len, Raw.data() + 28, 4);
  if (Version != RecVersion || Hi != K.Hi || Lo != K.Lo ||
      Raw.size() != Head + Len + 8)
    return false;
  std::memcpy(&Sum, Raw.data() + Head + Len, 8);
  if (Sum != fnv1a(Raw.data() + Head, Len, 0xcbf29ce484222325ull))
    return false;
  Blob.assign(Raw.data() + Head, Len);
  return true;
}

bool SharedDirBackend::get(const CacheKey &K, std::string &Blob) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++St.Gets;
    auto It = Mem.find(K);
    if (It != Mem.end()) {
      Blob = It->second;
      ++St.Hits;
      return true;
    }
  }
  std::string Path = recordPath(K);
  if (!readRecordFile(Path, K, Blob))
    return false;
  // Refresh the read mtime so the size-budget GC evicts in LRU order.
  // Failures (e.g. a read-only share) just age the record faster.
  std::error_code EC;
  fs::last_write_time(Path, fs::file_time_type::clock::now(), EC);
  std::lock_guard<std::mutex> Lock(Mu);
  ++St.Hits;
  if (Cfg.MemCacheEntries && Mem.size() < Cfg.MemCacheEntries)
    Mem.emplace(K, Blob);
  return true;
}

bool SharedDirBackend::put(const CacheKey &K, const std::string &Blob) {
  if (Cfg.ReadOnly) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++St.PutsSkipped;
    return true;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Cfg.MemCacheEntries && Mem.size() < Cfg.MemCacheEntries)
      Mem.emplace(K, Blob);
  }
  std::string Path = recordPath(K);
  std::error_code EC;
  if (fs::exists(Path, EC)) {
    // Content-addressed: an existing record for this key holds a verdict
    // for identical inputs. First writer wins, later puts are free.
    std::lock_guard<std::mutex> Lock(Mu);
    ++St.PutsSkipped;
    return true;
  }
  std::string Out;
  Out.reserve(8 + 4 + 8 + 8 + 4 + Blob.size() + 8);
  Out.append(RecMagic, 8);
  uint32_t Version = RecVersion;
  uint32_t Len = static_cast<uint32_t>(Blob.size());
  uint64_t Sum = fnv1a(Blob.data(), Blob.size(), 0xcbf29ce484222325ull);
  Out.append(reinterpret_cast<const char *>(&Version), 4);
  Out.append(reinterpret_cast<const char *>(&K.Hi), 8);
  Out.append(reinterpret_cast<const char *>(&K.Lo), 8);
  Out.append(reinterpret_cast<const char *>(&Len), 4);
  Out.append(Blob);
  Out.append(reinterpret_cast<const char *>(&Sum), 8);

  static std::atomic<unsigned> TmpCounter{0};
  std::string Tmp = Path + ".tmp." + std::to_string(processId()) + "." +
                    std::to_string(TmpCounter.fetch_add(1));
  if (!files::writeFile(Tmp, Out, "shared proof-cache record"))
    return false;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return false;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  ++St.Puts;
  return true;
}

void SharedDirBackend::pin(const CacheKey &K) {
  std::lock_guard<std::mutex> Lock(Mu);
  Pinned.insert(K);
}

bool SharedDirBackend::gc() {
  if (Cfg.ReadOnly)
    return true;
  struct Rec {
    std::string Path;
    CacheKey K;
    uint64_t Size = 0;
    fs::file_time_type MTime;
  };
  std::vector<Rec> Recs;
  uint64_t Total = 0;
  std::error_code EC;
  fs::path Objects = fs::path(Cfg.Dir) / "objects";
  const auto StaleTmpAge = std::chrono::hours(1);
  const auto Now = fs::file_time_type::clock::now();
  for (fs::recursive_directory_iterator It(Objects, EC), End; !EC && It != End;
       It.increment(EC)) {
    std::error_code E2;
    if (!It->is_regular_file(E2) || E2)
      continue;
    fs::path P = It->path();
    std::string Name = P.filename().string();
    fs::file_time_type MTime = fs::last_write_time(P, E2);
    if (E2)
      continue;
    if (Name.find(".tmp.") != std::string::npos) {
      // A crashed writer's leftover; reclaim it once it is clearly stale.
      if (Now - MTime > StaleTmpAge)
        fs::remove(P, E2);
      continue;
    }
    // objects/<hh>/<30 hex>.rec — anything else is foreign, leave it alone.
    std::string Dir = P.parent_path().filename().string();
    if (Dir.size() != 2 || Name.size() != 30 + 4 ||
        Name.compare(30, 4, ".rec") != 0)
      continue;
    std::string Hex = Dir + Name.substr(0, 30);
    CacheKey K;
    if (std::sscanf(Hex.c_str(), "%16llx%16llx",
                    reinterpret_cast<unsigned long long *>(&K.Hi),
                    reinterpret_cast<unsigned long long *>(&K.Lo)) != 2)
      continue;
    uint64_t Size = It->file_size(E2);
    if (E2)
      continue;
    Recs.push_back(Rec{P.string(), K, Size, MTime});
    Total += Size;
  }

  std::lock_guard<std::mutex> Lock(Mu);
  ++St.GcRuns;
  uint64_t Evicted = 0;
  if (Cfg.SizeBudgetBytes && Total > Cfg.SizeBudgetBytes) {
    std::sort(Recs.begin(), Recs.end(), [](const Rec &A, const Rec &B) {
      return A.MTime != B.MTime ? A.MTime < B.MTime : A.Path < B.Path;
    });
    for (const Rec &R : Recs) {
      if (Total <= Cfg.SizeBudgetBytes)
        break;
      if (Pinned.count(R.K))
        continue; // Referenced by the current run: never evicted.
      std::error_code RmEC;
      fs::remove(R.Path, RmEC);
      if (RmEC)
        continue;
      Total -= R.Size;
      Mem.erase(R.K);
      ++Evicted;
      ++St.Evictions;
    }
  }
  St.Bytes = Total;
  St.Entries = Recs.size() - Evicted;
  return true;
}

bool SharedDirBackend::flush() { return gc(); }

CacheBackendStats SharedDirBackend::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}
