//===- incr/Fingerprint.h - Stable structural fingerprints -----------------===//
///
/// \file
/// Merkle-style structural fingerprints over the entities a proof can
/// depend on: RMIR function bodies, Gilsonite specs and predicate
/// declarations, registered lemmas, Pearlite contracts and safe client
/// functions. The incremental proof store (incr/ProofStore.h) keys cached
/// verdicts by these, so they must be *process-stable*: a fingerprint is a
/// pure function of the entity's structure, never of process-local intern
/// ids (sym's dense Id / CanonId / NameSym are assigned in interning order,
/// which is racy under the parallel scheduler — see docs/INCREMENTAL.md for
/// the stability argument). Expressions are hashed with sym's
/// \c exprStableHash, which is canonical under the same commutative-operand
/// ordering the builders (and therefore \c satQueryFingerprint) use.
///
/// Fingerprints are deliberately *conservative*: they cover every field of
/// an entity, including documentation strings — an edit that could not
/// change a verdict may still invalidate. That is always sound; only a
/// changed entity mapping to its old fingerprint would be unsound.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_INCR_FINGERPRINT_H
#define GILR_INCR_FINGERPRINT_H

#include "analysis/Diagnostic.h"
#include "creusot/SafeVerifier.h"
#include "creusot/StdSpecs.h"
#include "engine/Lemma.h"
#include "engine/SymState.h"
#include "gilsonite/PredDecl.h"
#include "gilsonite/Spec.h"
#include "rmir/Program.h"

#include <cstdint>
#include <variant>

namespace gilr {
namespace incr {

/// Incrementally absorbs typed values into a 64-bit stable hash. The value
/// stream is fixed-width and length-prefixed where needed, so distinct
/// structures cannot collide by concatenation.
class Hasher {
public:
  void u8(uint8_t V) { word(V); }
  void u32(uint32_t V) { word(V); }
  void u64(uint64_t V) { word(V); }
  void boolean(bool B) { word(B ? 1 : 2); }
  void i128(__int128 V) {
    word(static_cast<uint64_t>(V));
    word(static_cast<uint64_t>(V >> 64));
  }
  void str(const std::string &S);
  void expr(const Expr &E);
  void size(std::size_t N) { word(static_cast<uint64_t>(N)); }

  /// The accumulated fingerprint; never 0.
  uint64_t result() const { return H ? H : 1; }

private:
  void word(uint64_t V);
  uint64_t H = 0xcbf29ce484222325ull;
};

// Entity fingerprints. Each covers every structural field of its entity.
uint64_t fpType(rmir::TypeRef Ty);
uint64_t fpFunction(const rmir::Function &F);
uint64_t fpAssertion(const gilsonite::AssertionP &A);
uint64_t fpSpec(const gilsonite::Spec &S);
uint64_t fpPred(const gilsonite::PredDecl &P);
uint64_t fpLemma(const engine::FreezeLemma &L);
uint64_t fpLemma(const engine::ExtractLemma &L);
uint64_t
fpLemma(const std::variant<engine::FreezeLemma, engine::ExtractLemma> &L);
uint64_t fpPTerm(const creusot::PTermP &T);
uint64_t fpContract(const creusot::PearliteSpec &S);
uint64_t fpSafeFn(const creusot::SafeFn &F);

/// Fingerprint of the verification configuration an obligation ran under:
/// the automation knobs and the solver branch budget. Scheduling knobs
/// (thread count, cache capacity, job budgets) are deliberately excluded —
/// they cannot change a definite verdict (the determinism contract of
/// docs/SCHEDULER.md), so serial and parallel runs share cache entries.
uint64_t fpAutomation(const engine::Automation &A, unsigned MaxBranches);

/// Fingerprint of the pre-verification analysis configuration: the lint
/// knobs plus the solver branch budget (spec-vacuity verdicts depend on
/// it). Cached lint verdicts are keyed by this the way proof verdicts are
/// keyed by \c fpAutomation.
uint64_t fpAnalysisConfig(const analysis::AnalysisConfig &C,
                          unsigned MaxBranches);

/// Fingerprint ("config") of the interprocedural summary algorithm itself.
/// Summaries are a pure function of the program tables — no knob can change
/// one — so this is a version salt: bump the constant inside whenever the
/// summary computation changes meaning, and every cached Side::Summary
/// record invalidates at once.
uint64_t fpSummaryConfig();

} // namespace incr
} // namespace gilr

#endif // GILR_INCR_FINGERPRINT_H
