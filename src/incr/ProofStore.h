//===- incr/ProofStore.h - Persistent proof-result store -------------------===//
///
/// \file
/// The on-disk cache of the incremental verification subsystem: obligation
/// verdicts (full serialized reports, so a cached run reproduces the cold
/// run's report byte-for-byte) keyed by stable fingerprints, plus the
/// solver QueryCache entries of the producing run (keyed by the stable
/// query fingerprint) to pre-warm the sched shards.
///
/// Format (little-endian host widths, versioned):
///
///   magic "GILRPRF1" | u32 version | u32 reserved
///   record*          where record = u8 type | u32 len | payload[len]
///                                 | u64 fnv1a(type ++ payload)
///
/// Record types: 1 = obligation (append-log semantics: on load, the *last*
/// record for an (side, name) pair wins), 2 = solver-entry block. Crash
/// safety: \c load verifies the header and every record checksum, stopping
/// at the first malformed/truncated record while keeping everything before
/// it — a torn write degrades to a partially warm run, never to an error or
/// a wrong verdict. \c flush appends only the records that changed since
/// load when the on-disk log is intact (cheap warm-loop writes; superseded
/// records accumulate and are dropped by a load-time compaction rewrite),
/// and otherwise writes a full snapshot to "<path>.tmp" and renames it over
/// the store atomically.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_INCR_PROOFSTORE_H
#define GILR_INCR_PROOFSTORE_H

#include "analysis/Analysis.h"
#include "analysis/Summary.h"
#include "creusot/SafeVerifier.h"
#include "engine/Verifier.h"
#include "incr/DepGraph.h"
#include "incr/SpecDiff.h"
#include "solver/Solver.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gilr {
namespace incr {

/// One recorded dependency: the entity and the fingerprint it had when the
/// proof ran, plus (format v4) its clause-level signature so a later
/// session can diff the edit and attempt salvage (incr/SpecDiff.h).
struct StoredDep {
  deps::Kind K = deps::Kind::Function;
  std::string Name;
  uint64_t Fp = 0;
  /// Whether \c Sig below was recorded. False for entity kinds without
  /// clause structure (RMIR functions) and for deps loaded from a v3
  /// store, which then fall back to plain fingerprint equality.
  bool HasSig = false;
  EntitySig Sig;
};

/// One cached obligation verdict.
struct StoredObligation {
  Side S = Side::Unsafe;
  std::string Name;
  /// Fingerprint of the obligation's own entity (the RMIR function for the
  /// unsafe side, the SafeFn body for the safe side).
  uint64_t SelfFp = 0;
  /// Fingerprint of the verification configuration (automation knobs +
  /// solver budget) the verdict was produced under.
  uint64_t ConfigFp = 0;
  /// Everything the proof consulted, with its then-current fingerprint.
  std::vector<StoredDep> Deps;
  /// The serialized report (encode/decode helpers below).
  std::string Blob;
};

/// The store: an in-memory index over the on-disk append log.
class ProofStore {
public:
  explicit ProofStore(std::string Path) : Path(std::move(Path)) {}

  /// Reads the store file. Returns false when there is no usable store
  /// (missing file, foreign magic, unsupported version) — the caller runs
  /// cold. A valid header followed by a torn tail loads the valid prefix
  /// and reports \c truncated(). With \p AllowCompaction (writable
  /// sessions), a log containing superseded records, a previous-version
  /// header, or a torn tail is rewritten in place as a compacted snapshot —
  /// the GILRPRF1 append-log would otherwise grow without bound across
  /// sessions; \c compactions() counts the rewrites.
  bool load(bool AllowCompaction = false);

  /// Whether the last \c load stopped early at a malformed record.
  bool truncated() const { return Truncated; }

  /// Number of load-time compaction rewrites performed (0 or 1 per load).
  uint64_t compactions() const { return Compactions; }

  const StoredObligation *lookup(Side S, const std::string &Name) const;

  /// Every record, in (side, name) order — for backends that index the
  /// store by content address (incr/CacheBackend.h). Pointers are
  /// invalidated by put().
  std::vector<const StoredObligation *> records() const;

  /// Inserts or replaces the verdict for (Ob.S, Ob.Name).
  void put(StoredObligation Ob);

  void setSolverEntries(std::vector<SavedQueryVerdict> Entries);
  const std::vector<SavedQueryVerdict> &solverEntries() const {
    return Solver;
  }

  /// Persists the store. When the on-disk log is intact this appends only
  /// the records changed since \c load (append-log semantics make the new
  /// records win on the next load); otherwise it writes a full snapshot to
  /// "<path>.tmp" and renames it over the store atomically. Returns false
  /// on I/O failure; the previous store file is left intact.
  bool flush();

  std::size_t size() const { return Index.size(); }
  const std::string &path() const { return Path; }

private:
  bool writeSnapshot();

  std::string Path;
  std::map<std::pair<uint8_t, std::string>, StoredObligation> Index;
  std::vector<SavedQueryVerdict> Solver;
  bool Truncated = false;
  /// Keys put() since the last load/flush (the append set), and whether the
  /// solver block changed. DiskValid means the on-disk file is a current-
  /// version log whose replayed state equals Index minus the dirty set, so
  /// appending is safe.
  std::set<std::pair<uint8_t, std::string>> Dirty;
  bool SolverDirty = false;
  bool DiskValid = false;
  uint64_t Compactions = 0;
};

/// Report serialization. Every field round-trips (timing included, stored
/// as raw IEEE-754 bits), so a warm run's report is byte-identical to the
/// cold run that produced it, modulo the \c Cached marker the session sets
/// on hits. Decoders are bounds-checked and return false on malformed
/// blobs, which the session treats as a miss.
std::string encodeVerifyReport(const engine::VerifyReport &R);
bool decodeVerifyReport(const std::string &Blob, engine::VerifyReport &Out);
std::string encodeSafeReport(const creusot::SafeReport &R);
bool decodeSafeReport(const std::string &Blob, creusot::SafeReport &Out);

/// Lint-verdict blobs (Side::Lint records): the per-entity diagnostics of
/// the pre-verification analysis, cached the way proof verdicts are.
std::string encodeLintVerdict(const analysis::EntityVerdict &V);
bool decodeLintVerdict(const std::string &Blob, analysis::EntityVerdict &Out);

/// Summary blobs (Side::Summary records, format v5): one interprocedural
/// function or predicate summary (analysis/Summary.h). Function summaries
/// are keyed by the function name, predicate summaries by "pred:<name>".
std::string encodeFnSummary(const analysis::FnSummary &S);
bool decodeFnSummary(const std::string &Blob, analysis::FnSummary &Out);
std::string encodePredSummary(const analysis::PredSummary &S);
bool decodePredSummary(const std::string &Blob, analysis::PredSummary &Out);

/// Whole-record codec at the current format version, shared with the
/// content-addressed cache backends (incr/CacheBackend.h): a backend blob
/// is exactly a GILRPRF1 obligation record payload. The decoder is
/// bounds-checked and returns false on malformed input.
std::string encodeObligationRecord(const StoredObligation &Ob);
bool decodeObligationRecord(const std::string &Payload, StoredObligation &Out);

} // namespace incr
} // namespace gilr

#endif // GILR_INCR_PROOFSTORE_H
