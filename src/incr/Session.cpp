//===- incr/Session.cpp -----------------------------------------------------------===//

#include "incr/Session.h"

#include "solver/Flight.h"
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::incr;

namespace {

/// Fingerprint of an entity that does not (currently) exist. A fixed
/// sentinel, so an obligation recorded while an entity was missing stays
/// valid as long as it remains missing and invalidates when it appears.
constexpr uint64_t MissingEntityFp = 0x6d69'7373'696e'67ull; // "missing".

} // namespace

Session::Session(const IncrConfig &Cfg, engine::VerifEnv &Env,
                 const creusot::PearliteSpecTable *Contracts)
    : Cfg(Cfg), Env(Env), Contracts(Contracts), Store(Cfg.StorePath) {
  ConfigFp = fpAutomation(Env.Auto, Env.Solv.MaxBranches);
  LintConfigFp = fpAnalysisConfig(Env.Lint, Env.Solv.MaxBranches);
  SummaryConfigFp = fpSummaryConfig();
  if (!Cfg.StorePath.empty()) {
    // Writable sessions compact the append-log on load (superseded records
    // dropped, previous-version stores upgraded); read-only ones must not
    // touch the file.
    Stats.StoreLoaded = Store.load(/*AllowCompaction=*/!Cfg.ReadOnly);
    Stats.StoreTruncated = Store.truncated();
    Stats.Compactions = Store.compactions();
    if (trace::enabled() && Stats.Compactions)
      metrics::Registry::get().add("incr.compactions", Stats.Compactions);
  }
  if (Cfg.Backend) {
    Remote = Cfg.Backend;
  } else if (!Cfg.SharedCacheDir.empty()) {
    SharedDirConfig SC;
    SC.Dir = Cfg.SharedCacheDir;
    SC.SizeBudgetBytes = Cfg.SharedCacheBudgetBytes;
    SC.ReadOnly = Cfg.ReadOnly;
    OwnedRemote = std::make_unique<SharedDirBackend>(std::move(SC));
    Remote = OwnedRemote.get();
  }
}

bool Session::fetchShared(Side S, const std::string &Name, uint64_t SelfFp,
                          uint64_t CfgFp, StoredObligation &Out) {
  if (!Remote)
    return false;
  CacheKey K = obligationCacheKey(S, Name, SelfFp, CfgFp);
  // Pin regardless of the outcome: a concurrent GC must not evict the
  // record between this get and the run's own put of the same key.
  Remote->pin(K);
  std::string Blob;
  if (!Remote->get(K, Blob))
    return false;
  if (!decodeObligationRecord(Blob, Out))
    return false;
  // The key is derived from the record's identity; a blob whose decoded
  // identity disagrees (corrupt share) must not masquerade as a hit.
  return Out.S == S && Out.Name == Name && Out.SelfFp == SelfFp &&
         Out.ConfigFp == CfgFp;
}

void Session::publishShared(const StoredObligation &Ob) {
  if (!Remote || Cfg.ReadOnly)
    return;
  CacheKey K = obligationCacheKey(Ob.S, Ob.Name, Ob.SelfFp, Ob.ConfigFp);
  Remote->pin(K);
  Remote->put(K, encodeObligationRecord(Ob));
  ++Stats.SharedPuts;
  if (trace::enabled())
    metrics::Registry::get().add("incr.shared_puts");
}

uint64_t Session::currentFp(const DepKey &Key) {
  // Callers hold Mu (public callers go through lookup*/record*); the
  // test-facing direct call is single-threaded by contract.
  auto It = FpMemo.find(Key);
  if (It != FpMemo.end())
    return It->second;

  uint64_t Fp = MissingEntityFp;
  switch (Key.K) {
  case deps::Kind::Function:
    if (const rmir::Function *F = Env.Prog.lookup(Key.Name))
      Fp = fpFunction(*F);
    break;
  case deps::Kind::Spec:
    if (const gilsonite::Spec *S = Env.Specs.lookup(Key.Name))
      Fp = fpSpec(*S);
    break;
  case deps::Kind::Pred:
    if (const gilsonite::PredDecl *P = Env.Preds.lookup(Key.Name))
      Fp = fpPred(*P);
    break;
  case deps::Kind::Lemma:
    if (const std::variant<engine::FreezeLemma, engine::ExtractLemma> *L =
            Env.Lemmas.lookup(Key.Name))
      Fp = fpLemma(*L);
    break;
  case deps::Kind::Contract:
    if (Contracts)
      if (const creusot::PearliteSpec *C = Contracts->lookup(Key.Name))
        Fp = fpContract(*C);
    break;
  }
  FpMemo.emplace(Key, Fp);
  return Fp;
}

const EntitySig &Session::currentSig(const DepKey &Key) {
  // Callers hold Mu, like currentFp.
  auto It = SigMemo.find(Key);
  if (It != SigMemo.end())
    return It->second;

  EntitySig Sig;
  switch (Key.K) {
  case deps::Kind::Function:
    break; // RMIR bodies have no clause structure: whole-fp only.
  case deps::Kind::Spec:
    if (const gilsonite::Spec *S = Env.Specs.lookup(Key.Name))
      Sig = sigSpec(*S);
    break;
  case deps::Kind::Pred:
    if (const gilsonite::PredDecl *P = Env.Preds.lookup(Key.Name))
      Sig = sigPred(*P);
    break;
  case deps::Kind::Lemma:
    if (const std::variant<engine::FreezeLemma, engine::ExtractLemma> *L =
            Env.Lemmas.lookup(Key.Name))
      Sig = sigLemma(*L);
    break;
  case deps::Kind::Contract:
    if (Contracts)
      if (const creusot::PearliteSpec *C = Contracts->lookup(Key.Name))
        Sig = sigContract(*C);
    break;
  }
  return SigMemo.emplace(Key, std::move(Sig)).first->second;
}

Session::DepsVerdict Session::checkDeps(const StoredObligation &Ob,
                                        char FlightSide) {
  bool AnySalvage = false;
  std::vector<SalvageObligation> Queries;
  for (const StoredDep &D : Ob.Deps) {
    if (currentFp(DepKey{D.K, D.Name}) == D.Fp)
      continue;
    // Lint verdicts never salvage: their diagnostics quote spec text, so a
    // semantically neutral rewrite would still change the rendered output.
    // Summaries never salvage either: they are cheap to recompute and their
    // facts depend on exact body/clause structure, not on implications.
    if (!Cfg.SemanticSalvage || Ob.S == Side::Lint || Ob.S == Side::Summary ||
        !D.HasSig)
      return DepsVerdict::Invalid;
    const EntitySig &Cur = currentSig(DepKey{D.K, D.Name});
    // A proof is verified *against* its own spec and may also consume it at
    // recursive call sites; diffForSalvage then requires both directions.
    bool SelfDep = D.K == deps::Kind::Spec && D.Name == Ob.Name;
    SalvageVerdict V = diffForSalvage(D.Sig, Cur, SelfDep, Queries);
    if (V == SalvageVerdict::Invalid)
      return DepsVerdict::Invalid;
    AnySalvage = true;
  }
  if (!AnySalvage)
    return DepsVerdict::Clean;
  if (Queries.empty())
    return DepsVerdict::Salvaged;
  // Discharge the implications through the solver chain, attributed to
  // this obligation in the flight journal. Queries go through the memo
  // layer like any other, so a repeated edit re-salvages from cache.
  flight::ObligationScope Scope(Ob.Name, FlightSide);
  for (const SalvageObligation &Q : Queries) {
    ++Stats.SalvageQueries;
    if (trace::enabled())
      metrics::Registry::get().add("incr.salvage_queries");
    if (!Env.Solv.entails(Q.Ctx, Q.Goal))
      return DepsVerdict::Invalid;
  }
  return DepsVerdict::Implied;
}

std::vector<StoredDep> Session::snapshotDeps(const std::set<DepKey> &Deps) {
  std::vector<StoredDep> Out;
  Out.reserve(Deps.size());
  for (const DepKey &K : Deps) {
    StoredDep D;
    D.K = K.K;
    D.Name = K.Name;
    D.Fp = currentFp(K);
    const EntitySig &Sig = currentSig(K);
    if (Sig.valid()) {
      D.HasSig = true;
      D.Sig = Sig;
    }
    Out.push_back(std::move(D));
  }
  return Out;
}

void Session::refreshRecord(const StoredObligation &Ob, uint64_t SelfFp,
                            const std::set<DepKey> &DepKeys) {
  if (Cfg.ReadOnly)
    return;
  StoredObligation Fresh;
  Fresh.S = Ob.S;
  Fresh.Name = Ob.Name;
  Fresh.SelfFp = SelfFp;
  Fresh.ConfigFp = Ob.ConfigFp;
  Fresh.Deps = snapshotDeps(DepKeys);
  Fresh.Blob = Ob.Blob;
  Store.put(std::move(Fresh)); // Replaces Ob: the caller's pointer dies.
}

namespace {

/// Bumps the salvage counters for a non-Clean replay and reports to the
/// metrics registry.
void noteSalvage(IncrRunStats &Stats, bool ViaImplication) {
  if (ViaImplication) {
    ++Stats.Implied;
    if (trace::enabled())
      metrics::Registry::get().add("incr.implied");
  } else {
    ++Stats.Salvaged;
    if (trace::enabled())
      metrics::Registry::get().add("incr.salvaged");
  }
}

} // namespace

bool Session::lookupUnsafe(const std::string &Func,
                           engine::VerifyReport &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t SelfFp = currentFp(DepKey{deps::Kind::Function, Func});
  const StoredObligation *Ob = Store.lookup(Side::Unsafe, Func);
  bool LocalInvalid = false;
  if (Ob && (Ob->ConfigFp != ConfigFp || Ob->SelfFp != SelfFp)) {
    LocalInvalid = true;
    Ob = nullptr;
  }
  // Local miss: consult the shared backend under the *current*
  // fingerprints. Its record, if any, was produced for byte-identical
  // inputs; the dependency validation below still applies.
  StoredObligation Shared;
  bool FromShared = false;
  if (!Ob && fetchShared(Side::Unsafe, Func, SelfFp, ConfigFp, Shared)) {
    Ob = &Shared;
    FromShared = true;
  }
  if (!Ob) {
    if (LocalInvalid)
      ++Stats.Invalidated;
    return false;
  }
  DepsVerdict DV = checkDeps(*Ob, 'U');
  if (DV == DepsVerdict::Invalid) {
    ++Stats.Invalidated;
    return false;
  }
  if (!decodeVerifyReport(Ob->Blob, Out))
    return false; // Malformed blob: treat as a miss, re-verify.
  Out.Cached = true;
  ++Stats.CachedUnsafe;
  if (trace::enabled())
    metrics::Registry::get().add("incr.cached");
  if (FromShared) {
    ++Stats.SharedHits;
    if (trace::enabled())
      metrics::Registry::get().add("incr.shared_hits");
  }
  // The stored deps stay current (nothing changed), so the graph keeps
  // answering dependentsOf precisely on warm runs too.
  std::set<DepKey> Deps;
  for (const StoredDep &D : Ob->Deps)
    Deps.insert(DepKey{D.K, D.Name});
  if (DV != DepsVerdict::Clean) {
    noteSalvage(Stats, DV == DepsVerdict::Implied);
    refreshRecord(*Ob, SelfFp, Deps); // Ob dangles from here on.
  } else if (FromShared && !Cfg.ReadOnly) {
    Store.put(StoredObligation(Shared)); // Warm the local store too.
  }
  Graph.record(ObligationId{Side::Unsafe, Func}, std::move(Deps));
  return true;
}

void Session::recordUnsafe(const std::string &Func,
                           const std::set<DepKey> &Deps,
                           const engine::VerifyReport &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.VerifiedUnsafe;
  if (trace::enabled())
    metrics::Registry::get().add("incr.verified");
  Graph.record(ObligationId{Side::Unsafe, Func}, std::set<DepKey>(Deps));
  if (R.TimedOut)
    return; // Budget-degraded results are transient; never cache them.
  StoredObligation Ob;
  Ob.S = Side::Unsafe;
  Ob.Name = Func;
  Ob.SelfFp = currentFp(DepKey{deps::Kind::Function, Func});
  Ob.ConfigFp = ConfigFp;
  Ob.Deps = snapshotDeps(Deps);
  Ob.Blob = encodeVerifyReport(R);
  publishShared(Ob);
  Store.put(std::move(Ob));
}

bool Session::lookupSafe(const creusot::SafeFn &F, creusot::SafeReport &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t SelfFp = fpSafeFn(F);
  const StoredObligation *Ob = Store.lookup(Side::Safe, F.Name);
  bool LocalInvalid = false;
  if (Ob && (Ob->ConfigFp != ConfigFp || Ob->SelfFp != SelfFp)) {
    LocalInvalid = true;
    Ob = nullptr;
  }
  StoredObligation Shared;
  bool FromShared = false;
  if (!Ob && fetchShared(Side::Safe, F.Name, SelfFp, ConfigFp, Shared)) {
    Ob = &Shared;
    FromShared = true;
  }
  if (!Ob) {
    if (LocalInvalid)
      ++Stats.Invalidated;
    return false;
  }
  DepsVerdict DV = checkDeps(*Ob, 'S');
  if (DV == DepsVerdict::Invalid) {
    ++Stats.Invalidated;
    return false;
  }
  if (!decodeSafeReport(Ob->Blob, Out))
    return false;
  Out.Cached = true;
  ++Stats.CachedSafe;
  if (trace::enabled())
    metrics::Registry::get().add("incr.cached");
  if (FromShared) {
    ++Stats.SharedHits;
    if (trace::enabled())
      metrics::Registry::get().add("incr.shared_hits");
  }
  std::set<DepKey> Deps;
  for (const StoredDep &D : Ob->Deps)
    Deps.insert(DepKey{D.K, D.Name});
  if (DV != DepsVerdict::Clean) {
    noteSalvage(Stats, DV == DepsVerdict::Implied);
    refreshRecord(*Ob, SelfFp, Deps); // Ob dangles from here on.
  } else if (FromShared && !Cfg.ReadOnly) {
    Store.put(StoredObligation(Shared));
  }
  Graph.record(ObligationId{Side::Safe, F.Name}, std::move(Deps));
  return true;
}

void Session::recordSafe(const creusot::SafeFn &F,
                         const std::set<DepKey> &Deps,
                         const creusot::SafeReport &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.VerifiedSafe;
  if (trace::enabled())
    metrics::Registry::get().add("incr.verified");
  Graph.record(ObligationId{Side::Safe, F.Name}, std::set<DepKey>(Deps));
  if (R.TimedOut)
    return;
  StoredObligation Ob;
  Ob.S = Side::Safe;
  Ob.Name = F.Name;
  Ob.SelfFp = fpSafeFn(F);
  Ob.ConfigFp = ConfigFp;
  Ob.Deps = snapshotDeps(Deps);
  Ob.Blob = encodeSafeReport(R);
  publishShared(Ob);
  Store.put(std::move(Ob));
}

bool Session::lookupLint(const std::string &Func,
                         analysis::EntityVerdict &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t SelfFp = currentFp(DepKey{deps::Kind::Function, Func});
  const StoredObligation *Ob = Store.lookup(Side::Lint, Func);
  bool LocalInvalid = false;
  if (Ob && (Ob->ConfigFp != LintConfigFp || Ob->SelfFp != SelfFp)) {
    LocalInvalid = true;
    Ob = nullptr;
  }
  StoredObligation Shared;
  bool FromShared = false;
  if (!Ob && fetchShared(Side::Lint, Func, SelfFp, LintConfigFp, Shared)) {
    Ob = &Shared;
    FromShared = true;
  }
  if (!Ob) {
    if (LocalInvalid)
      ++Stats.Invalidated;
    return false;
  }
  // Lint verdicts never salvage (diagnostics quote spec text), so only a
  // Clean dependency set replays.
  if (checkDeps(*Ob, 'L') != DepsVerdict::Clean) {
    ++Stats.Invalidated;
    return false;
  }
  if (!decodeLintVerdict(Ob->Blob, Out))
    return false; // Malformed blob: treat as a miss, re-lint.
  Out.Cached = true;
  ++Stats.CachedLint;
  if (trace::enabled())
    metrics::Registry::get().add("incr.lint_cached");
  if (FromShared) {
    ++Stats.SharedHits;
    if (trace::enabled())
      metrics::Registry::get().add("incr.shared_hits");
    if (!Cfg.ReadOnly)
      Store.put(StoredObligation(Shared));
  }
  std::set<DepKey> Deps;
  for (const StoredDep &D : Ob->Deps)
    Deps.insert(DepKey{D.K, D.Name});
  Graph.record(ObligationId{Side::Lint, Func}, std::move(Deps));
  return true;
}

void Session::recordLint(const std::string &Func,
                         const std::set<DepKey> &Deps,
                         const analysis::EntityVerdict &V) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.AnalyzedLint;
  if (trace::enabled())
    metrics::Registry::get().add("incr.lint_analyzed");
  Graph.record(ObligationId{Side::Lint, Func}, std::set<DepKey>(Deps));
  StoredObligation Ob;
  Ob.S = Side::Lint;
  Ob.Name = Func;
  Ob.SelfFp = currentFp(DepKey{deps::Kind::Function, Func});
  Ob.ConfigFp = LintConfigFp;
  Ob.Deps = snapshotDeps(Deps);
  Ob.Blob = encodeLintVerdict(V);
  publishShared(Ob);
  Store.put(std::move(Ob));
}

namespace {
/// Side::Summary store key for a predicate summary (function summaries use
/// the bare name; the prefix keeps the two namespaces disjoint).
std::string predSummaryKey(const std::string &Pred) { return "pred:" + Pred; }
} // namespace

bool Session::lookupSummaryFn(const std::string &Func,
                              analysis::FnSummary &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t SelfFp = currentFp(DepKey{deps::Kind::Function, Func});
  const StoredObligation *Ob = Store.lookup(Side::Summary, Func);
  if (Ob && (Ob->ConfigFp != SummaryConfigFp || Ob->SelfFp != SelfFp))
    Ob = nullptr;
  StoredObligation Shared;
  bool FromShared = false;
  if (!Ob && fetchShared(Side::Summary, Func, SelfFp, SummaryConfigFp,
                         Shared)) {
    Ob = &Shared;
    FromShared = true;
  }
  if (!Ob)
    return false;
  // Summaries never salvage: only a Clean dependency set replays.
  if (checkDeps(*Ob, 'M') != DepsVerdict::Clean)
    return false;
  if (!decodeFnSummary(Ob->Blob, Out))
    return false; // Malformed blob: treat as a miss, recompute.
  ++Stats.SummariesReused;
  if (trace::enabled())
    metrics::Registry::get().add("incr.summaries_reused");
  if (FromShared) {
    ++Stats.SharedHits;
    if (trace::enabled())
      metrics::Registry::get().add("incr.shared_hits");
    if (!Cfg.ReadOnly)
      Store.put(StoredObligation(Shared));
  }
  std::set<DepKey> Deps;
  for (const StoredDep &D : Ob->Deps)
    Deps.insert(DepKey{D.K, D.Name});
  Graph.record(ObligationId{Side::Summary, Func}, std::move(Deps));
  return true;
}

void Session::recordSummaryFn(const std::string &Func,
                              const std::set<DepKey> &Deps,
                              const analysis::FnSummary &S) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.SummariesComputed;
  if (trace::enabled())
    metrics::Registry::get().add("incr.summaries_computed");
  Graph.record(ObligationId{Side::Summary, Func}, std::set<DepKey>(Deps));
  StoredObligation Ob;
  Ob.S = Side::Summary;
  Ob.Name = Func;
  Ob.SelfFp = currentFp(DepKey{deps::Kind::Function, Func});
  Ob.ConfigFp = SummaryConfigFp;
  Ob.Deps = snapshotDeps(Deps);
  Ob.Blob = encodeFnSummary(S);
  publishShared(Ob);
  Store.put(std::move(Ob));
}

bool Session::lookupSummaryPred(const std::string &Pred,
                                analysis::PredSummary &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Key = predSummaryKey(Pred);
  uint64_t SelfFp = currentFp(DepKey{deps::Kind::Pred, Pred});
  const StoredObligation *Ob = Store.lookup(Side::Summary, Key);
  if (Ob && (Ob->ConfigFp != SummaryConfigFp || Ob->SelfFp != SelfFp))
    Ob = nullptr;
  StoredObligation Shared;
  bool FromShared = false;
  if (!Ob &&
      fetchShared(Side::Summary, Key, SelfFp, SummaryConfigFp, Shared)) {
    Ob = &Shared;
    FromShared = true;
  }
  if (!Ob)
    return false;
  if (checkDeps(*Ob, 'M') != DepsVerdict::Clean)
    return false;
  if (!decodePredSummary(Ob->Blob, Out))
    return false;
  ++Stats.SummariesReused;
  if (trace::enabled())
    metrics::Registry::get().add("incr.summaries_reused");
  if (FromShared) {
    ++Stats.SharedHits;
    if (trace::enabled())
      metrics::Registry::get().add("incr.shared_hits");
    if (!Cfg.ReadOnly)
      Store.put(StoredObligation(Shared));
  }
  std::set<DepKey> Deps;
  for (const StoredDep &D : Ob->Deps)
    Deps.insert(DepKey{D.K, D.Name});
  Graph.record(ObligationId{Side::Summary, Key}, std::move(Deps));
  return true;
}

void Session::recordSummaryPred(const std::string &Pred,
                                const std::set<DepKey> &Deps,
                                const analysis::PredSummary &S) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.SummariesComputed;
  if (trace::enabled())
    metrics::Registry::get().add("incr.summaries_computed");
  std::string Key = predSummaryKey(Pred);
  Graph.record(ObligationId{Side::Summary, Key}, std::set<DepKey>(Deps));
  StoredObligation Ob;
  Ob.S = Side::Summary;
  Ob.Name = std::move(Key);
  Ob.SelfFp = currentFp(DepKey{deps::Kind::Pred, Pred});
  Ob.ConfigFp = SummaryConfigFp;
  Ob.Deps = snapshotDeps(Deps);
  Ob.Blob = encodePredSummary(S);
  publishShared(Ob);
  Store.put(std::move(Ob));
}

void Session::noteTriagedStatic() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.TriagedStatic;
  if (trace::enabled())
    metrics::Registry::get().add("incr.triaged_static");
}

std::vector<SavedQueryVerdict> Session::solverEntriesToLoad() const {
  if (!Cfg.LoadSolverCache)
    return {};
  return Store.solverEntries();
}

void Session::saveSolverEntries(std::vector<SavedQueryVerdict> Entries) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Cfg.SaveSolverCache)
    return;
  Store.setSolverEntries(std::move(Entries));
}

bool Session::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  bool Ok = true;
  // Only the session-owned backend is flushed (running its size-budget
  // GC); an externally owned Cfg.Backend is the host's to maintain.
  if (OwnedRemote && !Cfg.ReadOnly)
    Ok = OwnedRemote->flush();
  if (Cfg.ReadOnly || Cfg.StorePath.empty())
    return Ok;
  return Store.flush() && Ok;
}
