//===- incr/DepGraph.cpp ----------------------------------------------------------===//

#include "incr/DepGraph.h"

using namespace gilr;
using namespace gilr::incr;

void DepGraph::record(const ObligationId &Ob, std::set<DepKey> Deps) {
  auto It = Fwd.find(Ob);
  if (It != Fwd.end()) {
    // Re-recording (a re-verified obligation): drop the stale reverse
    // edges first.
    for (const DepKey &Old : It->second) {
      auto RevIt = Rev.find(Old);
      if (RevIt != Rev.end()) {
        RevIt->second.erase(Ob);
        if (RevIt->second.empty())
          Rev.erase(RevIt);
      }
    }
    It->second = std::move(Deps);
  } else {
    It = Fwd.emplace(Ob, std::move(Deps)).first;
  }
  for (const DepKey &K : It->second)
    Rev[K].insert(Ob);
}

const std::set<DepKey> *DepGraph::depsOf(const ObligationId &Ob) const {
  auto It = Fwd.find(Ob);
  return It == Fwd.end() ? nullptr : &It->second;
}

std::vector<ObligationId> DepGraph::dependentsOf(const DepKey &Key) const {
  auto It = Rev.find(Key);
  if (It == Rev.end())
    return {};
  return std::vector<ObligationId>(It->second.begin(), It->second.end());
}
