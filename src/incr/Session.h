//===- incr/Session.h - One incremental verification session ---------------===//
///
/// \file
/// The orchestration point of incremental verification: owns the proof
/// store and the dependency graph for one run, answers the scheduler's
/// "is this obligation's cached verdict still valid?" question, and records
/// fresh results. An obligation's cached verdict is reused iff
///
///   * the store holds a record for it,
///   * the configuration fingerprint (automation knobs + solver budget)
///     matches,
///   * its own entity's fingerprint matches, and
///   * *every* recorded dependency's current fingerprint matches the one it
///     had when the proof ran.
///
/// Fingerprint comparisons are against the *current* tables, so editing one
/// lemma invalidates exactly the obligations whose proofs consulted it —
/// the dependency sets are closures (a proof consults everything it
/// transitively uses), so checking the directly recorded deps covers the
/// transitive case.
///
/// When a dependency's whole-entity fingerprint *has* moved, the session
/// does not give up immediately: it diffs the stored clause-level signature
/// against the current entity (incr/SpecDiff.h). An edit confined to
/// clauses the proof could not have relied on (reorders, doc strings)
/// revalidates with zero solver work ("salvaged"); an edit to pure clauses
/// is justified by implication queries through the solver chain — prove
/// new-spec => old-spec in the direction the use site requires — and keeps
/// the cached verdict when they hold ("implied"). Anything else falls back
/// to full re-verification. Lint verdicts never salvage: their rendered
/// diagnostics quote spec text, so they require strict equality.
///
/// Thread-safe: the scheduler's workers call lookup*/record* concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_INCR_SESSION_H
#define GILR_INCR_SESSION_H

#include "incr/CacheBackend.h"
#include "incr/DepGraph.h"
#include "incr/Fingerprint.h"
#include "incr/ProofStore.h"
#include "incr/SpecDiff.h"

#include <memory>
#include <mutex>

namespace gilr {
namespace incr {

/// Knobs of incremental verification. Off by default: a default-constructed
/// config makes the drivers behave exactly as before.
struct IncrConfig {
  /// Master switch; when false the overloads fall through to the plain
  /// scheduler path and never touch the disk.
  bool Enabled = false;
  /// The proof-store file. Created on first flush; a missing or corrupt
  /// file means a cold run, never an error.
  std::string StorePath;
  /// Pre-warm the scheduler's QueryCache shards with the persisted solver
  /// entries.
  bool LoadSolverCache = true;
  /// Persist the QueryCache contents at the end of the run.
  bool SaveSolverCache = true;
  /// Use the store without writing it back (e.g. CI replay).
  bool ReadOnly = false;
  /// Clause-level semantic salvage across spec edits (incr/SpecDiff.h).
  /// Off = blanket invalidation: any dependency fingerprint change
  /// re-verifies the dependent, the pre-salvage behaviour (the baseline
  /// bench_incr measures the edit-to-verdict speedup against).
  bool SemanticSalvage = true;
  /// Shared content-addressed cache directory (incr/CacheBackend.h), the
  /// second cache level behind the local store: local misses consult it,
  /// fresh verdicts are published to it. Empty = no shared cache. The
  /// session owns the backend; ReadOnly above also makes it read-only.
  std::string SharedCacheDir;
  /// Size budget of the shared directory in bytes, enforced by its LRU GC
  /// at flush time (0 = unlimited).
  uint64_t SharedCacheBudgetBytes = 0;
  /// Externally owned backend, overriding SharedCacheDir — the gilrd
  /// daemon shares one resident backend across requests. Non-owning: the
  /// session never flushes it (the owner runs GC on its own schedule), but
  /// pins every key the run touches so a host-driven GC cannot evict them
  /// mid-run.
  CacheBackend *Backend = nullptr;
};

/// Counters of one incremental run.
struct IncrRunStats {
  uint64_t CachedUnsafe = 0;
  uint64_t CachedSafe = 0;
  uint64_t VerifiedUnsafe = 0;
  uint64_t VerifiedSafe = 0;
  /// Pre-verification lint verdicts replayed from the store / computed
  /// fresh. Kept out of cached()/verified(), which count proof obligations.
  uint64_t CachedLint = 0;
  uint64_t AnalyzedLint = 0;
  /// Interprocedural summaries (Side::Summary) computed this run vs.
  /// replayed from the store. Like lint verdicts, kept out of
  /// cached()/verified().
  uint64_t SummariesComputed = 0;
  uint64_t SummariesReused = 0;
  /// Obligations the triage tier discharged statically (summary proves them
  /// trivially safe; the executor never ran). Bumped by the scheduler, not
  /// the session.
  uint64_t TriagedStatic = 0;
  /// Store records found but rejected because a fingerprint changed.
  uint64_t Invalidated = 0;
  /// Obligations replayed although a dependency fingerprint moved, because
  /// the edit touched no clause the proof relied on (zero solver work) /
  /// because the salvage implications held. Both also count in cached().
  uint64_t Salvaged = 0;
  uint64_t Implied = 0;
  /// Solver queries spent discharging salvage implications.
  uint64_t SalvageQueries = 0;
  /// Load-time store compaction rewrites (superseded append-log records
  /// dropped, previous-version stores upgraded).
  uint64_t Compactions = 0;
  /// Verdicts replayed from the shared content-addressed backend after a
  /// local-store miss (also counted in cached()/CachedLint), and fresh
  /// verdicts published to it.
  uint64_t SharedHits = 0;
  uint64_t SharedPuts = 0;
  bool StoreLoaded = false;
  bool StoreTruncated = false;

  uint64_t cached() const { return CachedUnsafe + CachedSafe; }
  uint64_t verified() const { return VerifiedUnsafe + VerifiedSafe; }
  uint64_t salvaged() const { return Salvaged + Implied; }
};

class Session {
public:
  /// Loads the store (if any). \p Contracts may be null for unsafe-only
  /// runs (engine::Verifier::verifyAll); Contract deps then never validate
  /// unless absent from the record.
  Session(const IncrConfig &Cfg, engine::VerifEnv &Env,
          const creusot::PearliteSpecTable *Contracts);

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Returns true and fills \p Out (with \c Cached set) when the store
  /// holds a still-valid verdict for unsafe obligation \p Func.
  bool lookupUnsafe(const std::string &Func, engine::VerifyReport &Out);

  /// Records a freshly computed unsafe verdict with the dependencies its
  /// proof consulted. Budget-degraded (TimedOut) results are never cached.
  void recordUnsafe(const std::string &Func, const std::set<DepKey> &Deps,
                    const engine::VerifyReport &R);

  /// Safe-side counterparts (the obligation's own fingerprint is the
  /// client body's, which lives in no table).
  bool lookupSafe(const creusot::SafeFn &F, creusot::SafeReport &Out);
  void recordSafe(const creusot::SafeFn &F, const std::set<DepKey> &Deps,
                  const creusot::SafeReport &R);

  /// Pre-verification lint verdicts, cached like proofs but keyed by the
  /// analysis configuration fingerprint (incr::fpAnalysisConfig) instead of
  /// the automation one — toggling a lint knob re-lints without
  /// invalidating proofs, and vice versa.
  bool lookupLint(const std::string &Func, analysis::EntityVerdict &Out);
  void recordLint(const std::string &Func, const std::set<DepKey> &Deps,
                  const analysis::EntityVerdict &V);

  /// Interprocedural summaries (Side::Summary), cached like lint verdicts
  /// but keyed by the summary version salt (incr::fpSummaryConfig) — they
  /// are a pure function of the program tables, so no knob invalidates
  /// them. Function summaries are keyed by the function name; predicate
  /// summaries by "pred:<name>". The dependency sets are the summaries' own
  /// reachable closures (FnSummary::DepFns/DepPreds), so an edit
  /// invalidates exactly the reverse-reachable summaries.
  bool lookupSummaryFn(const std::string &Func, analysis::FnSummary &Out);
  void recordSummaryFn(const std::string &Func, const std::set<DepKey> &Deps,
                       const analysis::FnSummary &S);
  bool lookupSummaryPred(const std::string &Pred, analysis::PredSummary &Out);
  void recordSummaryPred(const std::string &Pred,
                         const std::set<DepKey> &Deps,
                         const analysis::PredSummary &S);

  /// Bumps the static-triage counter (the scheduler's triage tier reports
  /// through the session so the counters travel with the run stats).
  void noteTriagedStatic();

  /// The persisted solver-cache entries to pre-warm the QueryCache with
  /// (empty when LoadSolverCache is off or the store had none).
  std::vector<SavedQueryVerdict> solverEntriesToLoad() const;

  /// Hands the run's QueryCache contents to the store (no-op when
  /// SaveSolverCache is off).
  void saveSolverEntries(std::vector<SavedQueryVerdict> Entries);

  /// Writes the store back (atomic rename). No-op (success) when ReadOnly.
  bool flush();

  const IncrRunStats &stats() const { return Stats; }
  const DepGraph &graph() const { return Graph; }
  const IncrConfig &config() const { return Cfg; }
  const ProofStore &store() const { return Store; }
  /// The shared cache backend in use (configured or owned), or nullptr.
  CacheBackend *backend() const { return Remote; }

  /// The current fingerprint of \p Key against the session's tables
  /// (memoised; a missing entity maps to a fixed sentinel, so "was missing
  /// then, still missing now" validates). Exposed for tests.
  uint64_t currentFp(const DepKey &Key);

  /// The current clause-level signature of \p Key (memoised; invalid for
  /// missing entities and for kinds without clause structure). Exposed for
  /// tests.
  const EntitySig &currentSig(const DepKey &Key);

private:
  /// Outcome of validating a stored obligation's dependency set.
  enum class DepsVerdict {
    Clean,    ///< Every fingerprint matches: plain warm hit.
    Salvaged, ///< Some moved, but no relied-on clause changed (zero work).
    Implied,  ///< Some moved; the salvage implications all held.
    Invalid,  ///< Re-verify.
  };
  DepsVerdict checkDeps(const StoredObligation &Ob, char FlightSide);
  std::vector<StoredDep> snapshotDeps(const std::set<DepKey> &Deps);
  /// Consults the shared backend for (S, Name) under the *current*
  /// fingerprints and pins the key for the run. False on miss or when no
  /// backend is configured; a hit still goes through checkDeps.
  bool fetchShared(Side S, const std::string &Name, uint64_t SelfFp,
                   uint64_t CfgFp, StoredObligation &Out);
  /// Publishes \p Ob to the shared backend (no-op without one).
  void publishShared(const StoredObligation &Ob);
  /// Re-records a salvaged obligation under the current fingerprints (same
  /// blob), so the next run takes the plain warm path. Invalidates \p Ob.
  void refreshRecord(const StoredObligation &Ob, uint64_t SelfFp,
                     const std::set<DepKey> &DepKeys);

  IncrConfig Cfg;
  engine::VerifEnv &Env;
  const creusot::PearliteSpecTable *Contracts;
  ProofStore Store;
  /// SharedCacheDir-owned backend (flushed by this session) — Remote
  /// points at it, or at the externally owned Cfg.Backend.
  std::unique_ptr<CacheBackend> OwnedRemote;
  CacheBackend *Remote = nullptr;
  DepGraph Graph;
  IncrRunStats Stats;
  uint64_t ConfigFp = 0;
  uint64_t LintConfigFp = 0;
  uint64_t SummaryConfigFp = 0;
  std::mutex Mu;
  std::map<DepKey, uint64_t> FpMemo;
  std::map<DepKey, EntitySig> SigMemo;
};

} // namespace incr
} // namespace gilr

#endif // GILR_INCR_SESSION_H
