//===- incr/SpecDiff.cpp ----------------------------------------------------------===//

#include "incr/SpecDiff.h"

#include "incr/Fingerprint.h"
#include "solver/Journal.h"

#include <map>

using namespace gilr;
using namespace gilr::incr;

//===----------------------------------------------------------------------===//
// Clause splitting
//===----------------------------------------------------------------------===//

namespace {

uint64_t fpExprClause(const Expr &E) {
  Hasher HS;
  HS.expr(E);
  return HS.result();
}

/// Splits \p A into its top-level `*`-conjuncts. Every non-Star node is one
/// clause; an Exists stays opaque (any edit inside it is a clause change).
void splitAssertion(const gilsonite::AssertionP &A, ClauseRole Role,
                    std::vector<ClauseSig> &Out) {
  if (!A)
    return;
  if (A->Kind == gilsonite::AsrtKind::Star) {
    for (const gilsonite::AssertionP &P : A->Parts)
      splitAssertion(P, Role, Out);
    return;
  }
  ClauseSig C;
  C.Role = Role;
  C.Fp = fpAssertion(A);
  if (A->Kind == gilsonite::AsrtKind::Pure && A->Formula) {
    C.Pure = true;
    C.Formula = A->Formula;
    C.Text = journal::exprToJournal(A->Formula);
  }
  Out.push_back(std::move(C));
}

/// Splits a pure formula into its top-level `&&`-conjuncts.
void splitExpr(const Expr &E, ClauseRole Role, std::vector<ClauseSig> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::And) {
    for (const Expr &K : E->Kids)
      splitExpr(K, Role, Out);
    return;
  }
  ClauseSig C;
  C.Role = Role;
  C.Fp = fpExprClause(E);
  C.Pure = true;
  C.Formula = E;
  C.Text = journal::exprToJournal(E);
  Out.push_back(std::move(C));
}

/// Splits a Pearlite term into its top-level `&&`-conjuncts. Contract
/// clauses carry no journal text (PTerms have no journal grammar), so they
/// only support the zero-solver-work salvage case.
void splitPTerm(const creusot::PTermP &T, ClauseRole Role,
                std::vector<ClauseSig> &Out) {
  if (!T)
    return;
  if (T->Kind == creusot::PKind::And) {
    for (const creusot::PTermP &K : T->Kids)
      splitPTerm(K, Role, Out);
    return;
  }
  ClauseSig C;
  C.Role = Role;
  C.Fp = fpPTerm(T);
  Out.push_back(std::move(C));
}

} // namespace

//===----------------------------------------------------------------------===//
// Entity signatures
//===----------------------------------------------------------------------===//

EntitySig gilr::incr::sigSpec(const gilsonite::Spec &S) {
  EntitySig Sig;
  Hasher HS;
  HS.u8(1); // Entity tag, so skeletons of different kinds never alias.
  HS.str(S.Func);
  HS.size(S.SpecVars.size());
  for (const gilsonite::Binder &B : S.SpecVars) {
    HS.str(B.Name);
    HS.u8(static_cast<uint8_t>(B.S));
  }
  HS.boolean(S.Trusted);
  // Doc and the Pre/Post clause lists are deliberately excluded: doc edits
  // and clause reorders must leave the skeleton unchanged.
  Sig.SkeletonFp = HS.result();
  splitAssertion(S.Pre, ClauseRole::Pre, Sig.Clauses);
  splitAssertion(S.Post, ClauseRole::Post, Sig.Clauses);
  return Sig;
}

EntitySig gilr::incr::sigPred(const gilsonite::PredDecl &P) {
  EntitySig Sig;
  Hasher HS;
  HS.u8(2);
  HS.str(P.Name);
  HS.size(P.Params.size());
  for (const gilsonite::PredParam &PP : P.Params) {
    HS.str(PP.Name);
    HS.u8(static_cast<uint8_t>(PP.S));
    HS.boolean(PP.In);
  }
  HS.boolean(P.Abstract);
  HS.boolean(P.Guardable);
  Sig.SkeletonFp = HS.result();
  // Predicate clauses are *disjuncts*: adding or removing one changes the
  // predicate's extension in both directions (folds and unfolds), so they
  // never get implication salvage — only the unchanged-multiset case.
  for (const gilsonite::AssertionP &C : P.Clauses) {
    ClauseSig CS;
    CS.Role = ClauseRole::PredClause;
    CS.Fp = fpAssertion(C);
    Sig.Clauses.push_back(std::move(CS));
  }
  return Sig;
}

EntitySig gilr::incr::sigLemma(
    const std::variant<engine::FreezeLemma, engine::ExtractLemma> &L) {
  EntitySig Sig;
  if (const engine::FreezeLemma *F = std::get_if<engine::FreezeLemma>(&L)) {
    Hasher HS;
    HS.u8(3);
    HS.u64(fpLemma(*F)); // No clause structure: the whole lemma is skeleton.
    Sig.SkeletonFp = HS.result();
    return Sig;
  }
  const engine::ExtractLemma &E = std::get<engine::ExtractLemma>(L);
  Hasher HS;
  HS.u8(4);
  HS.str(E.Name);
  HS.size(E.Params.size());
  for (const std::string &P : E.Params)
    HS.str(P);
  HS.size(E.GivenParams);
  HS.size(E.MutRefParams.size());
  for (const std::string &P : E.MutRefParams)
    HS.str(P);
  HS.str(E.FromPred);
  HS.size(E.FromArgs.size());
  for (const Expr &A : E.FromArgs)
    HS.expr(A);
  HS.expr(E.Persistent);
  HS.str(E.ToPred);
  HS.size(E.ToArgs.size());
  for (const Expr &A : E.ToArgs)
    HS.expr(A);
  HS.str(E.NewProphecyHole);
  Sig.SkeletonFp = HS.result();
  // Requires is the lemma's "statement" clause list: checked where the
  // lemma is applied, so its conjuncts behave like precondition conjuncts.
  splitExpr(E.Requires, ClauseRole::LemmaReq, Sig.Clauses);
  return Sig;
}

EntitySig gilr::incr::sigContract(const creusot::PearliteSpec &S) {
  EntitySig Sig;
  Hasher HS;
  HS.u8(5);
  HS.str(S.Func);
  HS.size(S.Params.size());
  for (const creusot::PearliteParam &P : S.Params) {
    HS.str(P.Name);
    HS.boolean(P.IsMutRef);
  }
  HS.boolean(S.HasResult);
  Sig.SkeletonFp = HS.result();
  splitPTerm(S.Pre, ClauseRole::ContractPre, Sig.Clauses);
  splitPTerm(S.Post, ClauseRole::ContractPost, Sig.Clauses);
  return Sig;
}

//===----------------------------------------------------------------------===//
// Diff
//===----------------------------------------------------------------------===//

namespace {

/// The formula of a clause: the live Expr when present, otherwise parsed
/// back from the persisted journal text. Null on parse failure.
Expr clauseFormula(const ClauseSig &C) {
  if (C.Formula)
    return C.Formula;
  if (C.Text.empty())
    return nullptr;
  return journal::exprFromJournal(C.Text);
}

/// All pure formulas of \p Sig under \p Role that can be reconstructed.
/// Dropping an unparseable clause only *weakens* the implication premise,
/// which is sound (the implication gets harder to prove, never easier).
std::vector<Expr> pureContext(const EntitySig &Sig, ClauseRole Role) {
  std::vector<Expr> Out;
  for (const ClauseSig &C : Sig.Clauses)
    if (C.Role == Role && C.Pure)
      if (Expr E = clauseFormula(C))
        Out.push_back(std::move(E));
  return Out;
}

bool implicationRole(ClauseRole R) {
  return R == ClauseRole::Pre || R == ClauseRole::Post ||
         R == ClauseRole::LemmaReq;
}

} // namespace

SalvageVerdict gilr::incr::diffForSalvage(const EntitySig &Old,
                                          const EntitySig &New, bool SelfDep,
                                          std::vector<SalvageObligation> &Out) {
  if (!Old.valid() || !New.valid() || Old.SkeletonFp != New.SkeletonFp)
    return SalvageVerdict::Invalid;

  // Multiset diff per (role, clause fingerprint).
  std::map<std::pair<uint8_t, uint64_t>, int> Counts;
  for (const ClauseSig &C : New.Clauses)
    ++Counts[{static_cast<uint8_t>(C.Role), C.Fp}];
  for (const ClauseSig &C : Old.Clauses)
    --Counts[{static_cast<uint8_t>(C.Role), C.Fp}];

  std::vector<const ClauseSig *> Added, Removed;
  {
    std::map<std::pair<uint8_t, uint64_t>, int> Need = Counts;
    for (const ClauseSig &C : New.Clauses) {
      int &N = Need[{static_cast<uint8_t>(C.Role), C.Fp}];
      if (N > 0) {
        Added.push_back(&C);
        --N;
      }
    }
    for (const ClauseSig &C : Old.Clauses) {
      int &N = Need[{static_cast<uint8_t>(C.Role), C.Fp}];
      if (N < 0) {
        Removed.push_back(&C);
        ++N;
      }
    }
  }

  if (Added.empty() && Removed.empty())
    return SalvageVerdict::Identical; // Reorder / excluded-field edit.

  // Every changed clause must be a pure boolean conjunct in a role that
  // supports implications; spatial resources, predicate disjuncts and
  // contract clauses cannot be added *or* dropped soundly.
  for (const ClauseSig *C : Added)
    if (!C->Pure || !implicationRole(C->Role))
      return SalvageVerdict::Invalid;
  for (const ClauseSig *C : Removed)
    if (!C->Pure || !implicationRole(C->Role))
      return SalvageVerdict::Invalid;

  // Direction table (see the header comment). Use site: an added pre
  // conjunct must follow from the old pre (the caller proved the stronger
  // obligation) and a removed post conjunct must follow from the new post
  // (the caller's assumption is still provided); removals from pre and
  // additions to post are free. Verified-against-self flips both; a self
  // dep takes the union, which covers recursive consumers.
  auto require = [&](const EntitySig &CtxSide, ClauseRole Role,
                     const ClauseSig &Goal) -> bool {
    Expr G = clauseFormula(Goal);
    if (!G)
      return false; // Unparseable goal: cannot justify the edit.
    Out.push_back(SalvageObligation{pureContext(CtxSide, Role), std::move(G)});
    return true;
  };
  for (const ClauseSig *C : Added) {
    bool PreLike = C->Role != ClauseRole::Post;
    if (PreLike) {
      if (!require(Old, C->Role, *C)) // old-pre => added.
        return SalvageVerdict::Invalid;
    } else if (SelfDep) {
      if (!require(Old, C->Role, *C)) // old-post => added.
        return SalvageVerdict::Invalid;
    }
  }
  for (const ClauseSig *C : Removed) {
    bool PreLike = C->Role != ClauseRole::Post;
    if (PreLike) {
      if (SelfDep && !require(New, C->Role, *C)) // new-pre => removed.
        return SalvageVerdict::Invalid;
    } else {
      if (!require(New, C->Role, *C)) // new-post => removed.
        return SalvageVerdict::Invalid;
    }
  }
  return SalvageVerdict::NeedsProof;
}
