//===- incr/DepGraph.h - Per-obligation proof dependencies -----------------===//
///
/// \file
/// Records, per proof obligation, the set of entities the proof *actually
/// consulted* (via the support/Deps.h hook instrumented in the tables and
/// verifiers), and maintains the reverse index so an edit to one entity
/// invalidates exactly its transitive dependents. Gillian's compositional,
/// per-procedure design makes each obligation's proof self-contained: the
/// dependencies recorded while verifying it are the *only* inputs that can
/// change its verdict (plus its own body/statement and the automation
/// configuration, tracked separately by incr::Session).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_INCR_DEPGRAPH_H
#define GILR_INCR_DEPGRAPH_H

#include "support/Deps.h"

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace gilr {
namespace incr {

/// Which side of the hybrid pipeline an obligation belongs to. Values are
/// part of the on-disk proof-store format: append only, never renumber.
enum class Side : uint8_t {
  Unsafe = 0,  ///< Gillian-Rust side (engine::Verifier).
  Safe = 1,    ///< Creusot side (creusot::SafeVerifier).
  Lint = 2,    ///< Pre-verification analysis verdict (analysis::lintEntity).
  Summary = 3, ///< Interprocedural summary (analysis::Summary.h). Function
               ///< summaries are keyed by the function name, predicate
               ///< summaries by "pred:<name>".
};

/// One dependable entity, identified by namespace + name.
struct DepKey {
  deps::Kind K = deps::Kind::Function;
  std::string Name;

  bool operator<(const DepKey &O) const {
    return std::tie(K, Name) < std::tie(O.K, O.Name);
  }
  bool operator==(const DepKey &O) const {
    return K == O.K && Name == O.Name;
  }
};

/// One proof obligation: a function on one side of the pipeline.
struct ObligationId {
  Side S = Side::Unsafe;
  std::string Name;

  bool operator<(const ObligationId &O) const {
    return std::tie(S, Name) < std::tie(O.S, O.Name);
  }
  bool operator==(const ObligationId &O) const {
    return S == O.S && Name == O.Name;
  }
};

/// RAII dependency collector: installs itself as the calling thread's
/// deps::Sink for its lifetime and gathers every noted entity. One per
/// obligation, created by the scheduler's job lambda on the worker thread
/// that runs the proof.
class DepRecorder final : public deps::Sink {
public:
  DepRecorder() : Prev(deps::setSink(this)) {}
  ~DepRecorder() override { deps::setSink(Prev); }

  DepRecorder(const DepRecorder &) = delete;
  DepRecorder &operator=(const DepRecorder &) = delete;

  void note(deps::Kind K, const std::string &Name) override {
    Taken.insert(DepKey{K, Name});
  }

  const std::set<DepKey> &taken() const { return Taken; }

private:
  deps::Sink *Prev;
  std::set<DepKey> Taken;
};

/// The forward and reverse dependency index of one verification session.
/// Not thread-safe: incr::Session serialises access under its own lock.
class DepGraph {
public:
  /// Records (replacing) the dependency set of \p Ob.
  void record(const ObligationId &Ob, std::set<DepKey> Deps);

  /// The recorded dependencies of \p Ob, or nullptr.
  const std::set<DepKey> *depsOf(const ObligationId &Ob) const;

  /// Every obligation whose recorded proof consulted \p Key.
  std::vector<ObligationId> dependentsOf(const DepKey &Key) const;

  std::size_t size() const { return Fwd.size(); }

private:
  std::map<ObligationId, std::set<DepKey>> Fwd;
  std::map<DepKey, std::set<ObligationId>> Rev;
};

} // namespace incr
} // namespace gilr

#endif // GILR_INCR_DEPGRAPH_H
