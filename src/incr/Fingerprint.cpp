//===- incr/Fingerprint.cpp -------------------------------------------------------===//

#include "incr/Fingerprint.h"

#include <set>

using namespace gilr;
using namespace gilr::incr;

//===----------------------------------------------------------------------===//
// Hasher
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64 finaliser — fixed constants, identical across processes.
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

void Hasher::word(uint64_t V) { H = mix(H ^ V); }

void Hasher::str(const std::string &S) {
  word(S.size());
  word(fnv1a(S));
}

void Hasher::expr(const Expr &E) { word(exprStableHash(E)); }

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

namespace {

/// Recursive type hash with a visited set: recursive nominal types (e.g.
/// Node<T> holding *mut Node<T>) are cut at the back-edge by hashing kind
/// and name only. Sound because a nominal type's identity in TyCtx *is* its
/// name — redefinition under the same name is rejected — so the name pins
/// the cycle's content, which the first (non-back-edge) visit hashes fully.
void hashType(Hasher &HS, rmir::TypeRef Ty, std::set<rmir::TypeRef> &Open) {
  if (!Ty) {
    HS.u8(0xff); // "no type" marker, distinct from every TypeKind.
    return;
  }
  HS.u8(static_cast<uint8_t>(Ty->Kind));
  if (Open.count(Ty)) {
    HS.u8(1); // Back-edge marker.
    HS.str(Ty->Name);
    return;
  }
  Open.insert(Ty);
  HS.u8(2); // Expanded marker.
  HS.u8(static_cast<uint8_t>(Ty->IntK));
  HS.str(Ty->Name);
  HS.boolean(Ty->IsOptionLike);
  HS.u64(Ty->ArrayLen);
  HS.size(Ty->Fields.size());
  for (const rmir::FieldDef &F : Ty->Fields) {
    HS.str(F.Name);
    hashType(HS, F.Ty, Open);
  }
  HS.size(Ty->Variants.size());
  for (const rmir::VariantDef &V : Ty->Variants) {
    HS.str(V.Name);
    HS.size(V.Fields.size());
    for (const rmir::FieldDef &F : V.Fields) {
      HS.str(F.Name);
      hashType(HS, F.Ty, Open);
    }
  }
  hashType(HS, Ty->Pointee, Open);
  Open.erase(Ty);
}

void hashTypeTop(Hasher &HS, rmir::TypeRef Ty) {
  std::set<rmir::TypeRef> Open;
  hashType(HS, Ty, Open);
}

} // namespace

uint64_t gilr::incr::fpType(rmir::TypeRef Ty) {
  Hasher HS;
  hashTypeTop(HS, Ty);
  return HS.result();
}

//===----------------------------------------------------------------------===//
// RMIR bodies
//===----------------------------------------------------------------------===//

namespace {

void hashPlace(Hasher &HS, const rmir::Place &P) {
  HS.u32(P.Local);
  HS.size(P.Elems.size());
  for (const rmir::PlaceElem &E : P.Elems) {
    HS.u8(static_cast<uint8_t>(E.Kind));
    HS.u32(E.Index);
  }
}

void hashOperand(Hasher &HS, const rmir::Operand &O) {
  HS.u8(static_cast<uint8_t>(O.Kind));
  hashPlace(HS, O.P);
  HS.expr(O.ConstVal);
  hashTypeTop(HS, O.ConstTy);
}

void hashRvalue(Hasher &HS, const rmir::Rvalue &R) {
  HS.u8(static_cast<uint8_t>(R.Kind));
  HS.u8(static_cast<uint8_t>(R.BOp));
  HS.u8(static_cast<uint8_t>(R.UOp));
  HS.size(R.Ops.size());
  for (const rmir::Operand &O : R.Ops)
    hashOperand(HS, O);
  hashPlace(HS, R.P);
  hashTypeTop(HS, R.AggTy);
  HS.u32(R.Variant);
}

void hashGhost(Hasher &HS, const rmir::Ghost &G) {
  HS.u8(static_cast<uint8_t>(G.Kind));
  HS.str(G.Name);
  HS.size(G.Args.size());
  for (const rmir::Operand &O : G.Args)
    hashOperand(HS, O);
  HS.expr(G.PureArg);
}

void hashStatement(Hasher &HS, const rmir::Statement &S) {
  HS.u8(static_cast<uint8_t>(S.Kind));
  hashPlace(HS, S.Dest);
  hashRvalue(HS, S.RV);
  hashTypeTop(HS, S.AllocTy);
  hashOperand(HS, S.FreeArg);
  hashGhost(HS, S.G);
}

void hashTerminator(Hasher &HS, const rmir::Terminator &T) {
  HS.u8(static_cast<uint8_t>(T.Kind));
  HS.u32(T.Target);
  hashOperand(HS, T.Discr);
  HS.size(T.Arms.size());
  for (const auto &[Val, Block] : T.Arms) {
    HS.i128(Val);
    HS.u32(Block);
  }
  HS.u32(T.Otherwise);
  HS.str(T.Callee);
  HS.size(T.Args.size());
  for (const rmir::Operand &O : T.Args)
    hashOperand(HS, O);
  hashPlace(HS, T.Dest);
  HS.size(T.TypeArgs.size());
  for (rmir::TypeRef Ty : T.TypeArgs)
    hashTypeTop(HS, Ty);
}

} // namespace

uint64_t gilr::incr::fpFunction(const rmir::Function &F) {
  Hasher HS;
  HS.str(F.Name);
  HS.u32(F.NumParams);
  HS.size(F.TypeParams.size());
  for (const std::string &P : F.TypeParams)
    HS.str(P);
  HS.size(F.Lifetimes.size());
  for (const std::string &L : F.Lifetimes)
    HS.str(L);
  HS.size(F.Locals.size());
  for (const rmir::Local &L : F.Locals) {
    HS.str(L.Name);
    hashTypeTop(HS, L.Ty);
  }
  HS.size(F.Blocks.size());
  for (const rmir::BasicBlock &B : F.Blocks) {
    HS.size(B.Stmts.size());
    for (const rmir::Statement &S : B.Stmts)
      hashStatement(HS, S);
    hashTerminator(HS, B.Term);
  }
  // Lint suppressions are part of the body identity: toggling one must
  // invalidate the cached lint verdict (it changes which diagnostics the
  // pre-verification pass reports).
  HS.size(F.LintSuppress.size());
  for (const std::string &Code : F.LintSuppress)
    HS.str(Code);
  return HS.result();
}

//===----------------------------------------------------------------------===//
// Gilsonite assertions, specs, predicates
//===----------------------------------------------------------------------===//

namespace {

void hashAssertion(Hasher &HS, const gilsonite::AssertionP &A) {
  if (!A) {
    HS.u8(0xff);
    return;
  }
  HS.u8(static_cast<uint8_t>(A->Kind));
  HS.size(A->Parts.size());
  for (const gilsonite::AssertionP &P : A->Parts)
    hashAssertion(HS, P);
  HS.size(A->Binders.size());
  for (const gilsonite::Binder &B : A->Binders) {
    HS.str(B.Name);
    HS.u8(static_cast<uint8_t>(B.S));
  }
  hashAssertion(HS, A->Body);
  HS.expr(A->Formula);
  HS.expr(A->Ptr);
  hashTypeTop(HS, A->Ty);
  HS.expr(A->Val);
  HS.expr(A->Count);
  HS.expr(A->Seq);
  HS.str(A->Name);
  HS.size(A->Args.size());
  for (const Expr &E : A->Args)
    HS.expr(E);
  HS.expr(A->Kappa);
  HS.expr(A->Frac);
  HS.expr(A->PcyVar);
}

} // namespace

uint64_t gilr::incr::fpAssertion(const gilsonite::AssertionP &A) {
  Hasher HS;
  hashAssertion(HS, A);
  return HS.result();
}

uint64_t gilr::incr::fpSpec(const gilsonite::Spec &S) {
  Hasher HS;
  HS.str(S.Func);
  HS.size(S.SpecVars.size());
  for (const gilsonite::Binder &B : S.SpecVars) {
    HS.str(B.Name);
    HS.u8(static_cast<uint8_t>(B.S));
  }
  hashAssertion(HS, S.Pre);
  hashAssertion(HS, S.Post);
  HS.boolean(S.Trusted);
  HS.str(S.Doc);
  return HS.result();
}

uint64_t gilr::incr::fpPred(const gilsonite::PredDecl &P) {
  Hasher HS;
  HS.str(P.Name);
  HS.size(P.Params.size());
  for (const gilsonite::PredParam &PP : P.Params) {
    HS.str(PP.Name);
    HS.u8(static_cast<uint8_t>(PP.S));
    HS.boolean(PP.In);
  }
  HS.size(P.Clauses.size());
  for (const gilsonite::AssertionP &C : P.Clauses)
    hashAssertion(HS, C);
  HS.boolean(P.Abstract);
  HS.boolean(P.Guardable);
  return HS.result();
}

//===----------------------------------------------------------------------===//
// Lemmas
//===----------------------------------------------------------------------===//

uint64_t gilr::incr::fpLemma(const engine::FreezeLemma &L) {
  Hasher HS;
  HS.u8(1); // Discriminates the lemma kinds.
  HS.str(L.Name);
  HS.str(L.FromPred);
  HS.str(L.ToPred);
  return HS.result();
}

uint64_t gilr::incr::fpLemma(const engine::ExtractLemma &L) {
  Hasher HS;
  HS.u8(2);
  HS.str(L.Name);
  HS.size(L.Params.size());
  for (const std::string &P : L.Params)
    HS.str(P);
  HS.size(L.GivenParams);
  HS.size(L.MutRefParams.size());
  for (const std::string &P : L.MutRefParams) // std::set: sorted order.
    HS.str(P);
  HS.str(L.FromPred);
  HS.size(L.FromArgs.size());
  for (const Expr &E : L.FromArgs)
    HS.expr(E);
  HS.expr(L.Persistent);
  HS.expr(L.Requires);
  HS.str(L.ToPred);
  HS.size(L.ToArgs.size());
  for (const Expr &E : L.ToArgs)
    HS.expr(E);
  HS.str(L.NewProphecyHole);
  return HS.result();
}

uint64_t gilr::incr::fpLemma(
    const std::variant<engine::FreezeLemma, engine::ExtractLemma> &L) {
  if (const engine::FreezeLemma *F = std::get_if<engine::FreezeLemma>(&L))
    return fpLemma(*F);
  return fpLemma(std::get<engine::ExtractLemma>(L));
}

//===----------------------------------------------------------------------===//
// Pearlite contracts and safe clients
//===----------------------------------------------------------------------===//

namespace {

void hashPTerm(Hasher &HS, const creusot::PTermP &T) {
  if (!T) {
    HS.u8(0xff);
    return;
  }
  HS.u8(static_cast<uint8_t>(T->Kind));
  HS.str(T->Name);
  HS.i128(T->IntVal);
  HS.boolean(T->BoolVal);
  HS.size(T->Kids.size());
  for (const creusot::PTermP &K : T->Kids)
    hashPTerm(HS, K);
}

} // namespace

uint64_t gilr::incr::fpPTerm(const creusot::PTermP &T) {
  Hasher HS;
  hashPTerm(HS, T);
  return HS.result();
}

uint64_t gilr::incr::fpContract(const creusot::PearliteSpec &S) {
  Hasher HS;
  HS.str(S.Func);
  HS.size(S.Params.size());
  for (const creusot::PearliteParam &P : S.Params) {
    HS.str(P.Name);
    HS.boolean(P.IsMutRef);
  }
  hashPTerm(HS, S.Pre);
  hashPTerm(HS, S.Post);
  HS.boolean(S.HasResult);
  HS.str(S.Doc);
  return HS.result();
}

uint64_t gilr::incr::fpSafeFn(const creusot::SafeFn &F) {
  Hasher HS;
  HS.str(F.Name);
  HS.size(F.Params.size());
  for (const std::string &P : F.Params)
    HS.str(P);
  HS.size(F.Body.size());
  for (const creusot::SafeStmt &S : F.Body) {
    HS.u8(static_cast<uint8_t>(S.Kind));
    HS.str(S.Dest);
    hashPTerm(HS, S.Term);
    HS.str(S.Callee);
    HS.size(S.Args.size());
    for (const std::string &A : S.Args)
      HS.str(A);
    HS.size(S.ByMutRef.size());
    for (bool B : S.ByMutRef)
      HS.boolean(B);
  }
  return HS.result();
}

//===----------------------------------------------------------------------===//
// Configuration
//===----------------------------------------------------------------------===//

uint64_t gilr::incr::fpAutomation(const engine::Automation &A,
                                  unsigned MaxBranches) {
  Hasher HS;
  HS.boolean(A.AutoUnfold);
  HS.boolean(A.AutoBorrow);
  HS.boolean(A.AutoCloseAtReturn);
  HS.boolean(A.ObsExtraction);
  HS.boolean(A.PanicsAllowed);
  HS.u32(A.HeuristicFuel);
  HS.u32(MaxBranches);
  return HS.result();
}

uint64_t gilr::incr::fpAnalysisConfig(const analysis::AnalysisConfig &C,
                                      unsigned MaxBranches) {
  Hasher HS;
  HS.boolean(C.Enabled);
  HS.boolean(C.FailOnError);
  HS.boolean(C.WarningsAsErrors);
  HS.boolean(C.FunctionLints);
  HS.boolean(C.SpecLints);
  HS.size(C.DisabledCodes.size());
  for (const std::string &Code : C.DisabledCodes)
    HS.str(Code);
  HS.u32(MaxBranches);
  return HS.result();
}

uint64_t gilr::incr::fpSummaryConfig() {
  Hasher HS;
  // Version salt of the summary computation (analysis/Summary.cpp). Bump
  // when the algorithm's meaning changes so every cached Side::Summary
  // record invalidates at once.
  HS.str("gilr-interproc-summary");
  HS.u32(1);
  return HS.result();
}
