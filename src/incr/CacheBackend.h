//===- incr/CacheBackend.h - Content-addressed proof-cache backends --------===//
///
/// \file
/// The storage abstraction behind incr::Session: a content-addressed cache
/// of obligation verdicts keyed by the obligation's identity *and* the
/// fingerprints the verdict was produced under — (side, name, self
/// fingerprint, configuration fingerprint) hashed into a 128-bit CacheKey.
/// Because the current fingerprints are part of the key, a get against the
/// current tables can only return a record produced for byte-identical
/// inputs; dependency validation (Session::checkDeps) still runs on top, so
/// a hit is never trusted blindly.
///
/// Two implementations:
///
///  * LocalStoreBackend — adapts the per-checkout GILRPRF1 append log
///    (incr/ProofStore.h) to the backend interface, for tools that want the
///    backend API over the classic single-file store.
///  * SharedDirBackend — a filesystem directory shared by several daemons
///    or CI jobs: one file per record under objects/<hh>/<hex>.rec, written
///    atomically (tmp + rename, safe against concurrent writers), read
///    mtimes refreshed on hits so the size-budgeted GC evicts in LRU order.
///    Keys pinned during a run are never evicted by that run's GC.
///
/// Blobs are ProofStore obligation records
/// (encodeObligationRecord/decodeObligationRecord), so the two levels of
/// the cache hierarchy share one codec and one format version.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_INCR_CACHEBACKEND_H
#define GILR_INCR_CACHEBACKEND_H

#include "incr/ProofStore.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

namespace gilr {
namespace incr {

/// 128-bit content-address of one cached obligation verdict.
struct CacheKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator<(const CacheKey &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }
  bool operator==(const CacheKey &O) const { return Hi == O.Hi && Lo == O.Lo; }

  /// 32 lowercase hex digits (Hi then Lo); the SharedDirBackend file name.
  std::string hex() const;
};

/// The cache key of an obligation verdict: side + name + the obligation's
/// own fingerprint + the configuration fingerprint it was produced under
/// (fpAutomation for proofs, fpAnalysisConfig for lint verdicts).
CacheKey obligationCacheKey(Side S, const std::string &Name, uint64_t SelfFp,
                            uint64_t ConfigFp);

/// Counters of one backend instance (monotonic over its lifetime).
struct CacheBackendStats {
  uint64_t Gets = 0;
  uint64_t Hits = 0;
  uint64_t Puts = 0;
  /// Puts skipped because the record already existed (first-writer-wins)
  /// or the backend is read-only.
  uint64_t PutsSkipped = 0;
  uint64_t Evictions = 0;
  uint64_t GcRuns = 0;
  /// Directory payload bytes after the last GC (SharedDirBackend only).
  uint64_t Bytes = 0;
  /// Records after the last GC (SharedDirBackend only).
  uint64_t Entries = 0;
};

/// Abstract content-addressed get/put store. Implementations are
/// thread-safe: scheduler workers and daemon request handlers call
/// get/put/pin concurrently.
class CacheBackend {
public:
  virtual ~CacheBackend() = default;

  /// A short stable name for telemetry ("local-store", "shared-dir").
  virtual const char *kind() const = 0;

  /// Fills \p Blob with the record stored under \p K. A miss (false) is
  /// never an error: corrupt, torn or concurrently evicted records read as
  /// misses.
  virtual bool get(const CacheKey &K, std::string &Blob) = 0;

  /// Stores \p Blob under \p K. Returns false only on I/O failure; a
  /// skipped write (record already present, read-only backend) succeeds.
  virtual bool put(const CacheKey &K, const std::string &Blob) = 0;

  /// Marks \p K as referenced by the current run: the backend's GC must
  /// not evict it while this instance lives.
  virtual void pin(const CacheKey &K) { (void)K; }

  /// Persists pending state and runs maintenance (the SharedDirBackend's
  /// size-budget GC). Returns false on I/O failure.
  virtual bool flush() { return true; }

  virtual CacheBackendStats stats() const = 0;
};

/// The classic single-file GILRPRF1 append log behind the backend API. The
/// store keeps one record per (side, name); a put whose key does not match
/// the stored fingerprints replaces that record, exactly like
/// ProofStore::put. Gets only hit when the requested key matches the
/// record's recomputed key — i.e. the store's verdict is for the same
/// fingerprints the caller is asking about.
class LocalStoreBackend final : public CacheBackend {
public:
  /// Loads the store at \p Path (missing file = empty cache).
  explicit LocalStoreBackend(std::string Path);

  const char *kind() const override { return "local-store"; }
  bool get(const CacheKey &K, std::string &Blob) override;
  bool put(const CacheKey &K, const std::string &Blob) override;
  bool flush() override;
  CacheBackendStats stats() const override;

private:
  mutable std::mutex Mu;
  ProofStore Store;
  /// key -> (side, name) so gets can find the store record for a key.
  std::map<CacheKey, std::pair<Side, std::string>> KeyIndex;
  CacheBackendStats St;
};

/// Configuration of a SharedDirBackend.
struct SharedDirConfig {
  /// Root directory (created on demand). Records live under objects/.
  std::string Dir;
  /// Payload size budget in bytes enforced by the GC at flush time
  /// (0 = unlimited, GC only drops stale temp files).
  uint64_t SizeBudgetBytes = 0;
  /// Serve gets but skip puts and GC (CI replay against a shared cache).
  bool ReadOnly = false;
  /// In-memory write-through cache of record blobs, so a resident daemon
  /// serves repeat gets without file I/O. 0 disables it.
  std::size_t MemCacheEntries = 4096;
};

/// A filesystem directory shared by several processes. Layout:
///
///   <dir>/objects/<hh>/<30 hex>.rec
///
/// where <hh> is the first two hex digits of the key (256-way fan-out) and
/// the file name the remaining 30. Each record file carries the magic
/// "GILRCAS1", a format version, the full key (guarding against renamed or
/// misplaced files) and an FNV-1a checksum over the payload; any mismatch
/// reads as a miss. Writes go to a unique temp file in the same directory
/// and rename into place, so concurrent writers and readers never observe
/// torn records. GC walks objects/, and while the payload total exceeds
/// the budget evicts unpinned records oldest-mtime-first (gets refresh the
/// mtime, making this LRU); it also removes temp files older than an hour
/// (crashed writers). GC is idempotent: a second run with no intervening
/// traffic evicts nothing.
class SharedDirBackend final : public CacheBackend {
public:
  explicit SharedDirBackend(SharedDirConfig Cfg);

  const char *kind() const override { return "shared-dir"; }
  bool get(const CacheKey &K, std::string &Blob) override;
  bool put(const CacheKey &K, const std::string &Blob) override;
  void pin(const CacheKey &K) override;
  bool flush() override;
  CacheBackendStats stats() const override;

  /// Runs the size-budget GC immediately (flush calls this). Exposed for
  /// tests and the daemon's stats endpoint.
  bool gc();

  const SharedDirConfig &config() const { return Cfg; }

  /// The record file path for \p K (under objects/). Exposed for tests.
  std::string recordPath(const CacheKey &K) const;

private:
  bool readRecordFile(const std::string &Path, const CacheKey &K,
                      std::string &Blob) const;

  SharedDirConfig Cfg;
  mutable std::mutex Mu;
  std::set<CacheKey> Pinned;
  std::map<CacheKey, std::string> Mem;
  CacheBackendStats St;
};

} // namespace incr
} // namespace gilr

#endif // GILR_INCR_CACHEBACKEND_H
