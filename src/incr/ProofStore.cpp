//===- incr/ProofStore.cpp --------------------------------------------------------===//

#include "incr/ProofStore.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <tuple>

using namespace gilr;
using namespace gilr::incr;

namespace {

constexpr char Magic[8] = {'G', 'I', 'L', 'R', 'P', 'R', 'F', '1'};
// Version 2 added Side::Lint obligation records (pre-verification analysis
// verdicts). Version 3 added source locations (File/Line/Col) to persisted
// diagnostics. Version 4 added clause-level dependency signatures (skeleton
// fingerprint + per-clause fingerprints, pure clauses persisted as journal
// text) for semantic salvage. Version 5 added Side::Summary obligation
// records (interprocedural summaries, analysis/Summary.h) and a trailing
// Static byte on VerifyReport blobs (decoded tolerantly, so v4/v3 blobs
// still replay). v3/v4 stores still load — their deps simply carry no
// signature (v3) and they contain no summary records — and are upgraded by
// the load-time compaction rewrite. Older stores are rejected by load(),
// i.e. a cold run.
constexpr uint32_t FormatVersion = 5;
constexpr uint32_t MinFormatVersion = 3;
constexpr uint8_t RecObligation = 1;
constexpr uint8_t RecSolverBlock = 2;

uint64_t fnv1a(const char *Data, std::size_t N, uint64_t H) {
  for (std::size_t I = 0; I != N; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t recordChecksum(uint8_t Type, const std::string &Payload) {
  char T = static_cast<char>(Type);
  uint64_t H = fnv1a(&T, 1, 0xcbf29ce484222325ull);
  return fnv1a(Payload.data(), Payload.size(), H);
}

/// Appends fixed-width values to a byte string.
class Writer {
public:
  std::string Out;

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) { raw(&V, sizeof V); }
  void u64(uint64_t V) { raw(&V, sizeof V); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }

private:
  void raw(const void *P, std::size_t N) {
    Out.append(static_cast<const char *>(P), N);
  }
};

/// Bounds-checked reader over a byte string; every getter returns false
/// once the input is exhausted or malformed.
class Reader {
public:
  Reader(const char *Data, std::size_t N) : Data(Data), End(Data + N) {}
  explicit Reader(const std::string &S) : Reader(S.data(), S.size()) {}

  bool u8(uint8_t &V) {
    if (End - Data < 1)
      return false;
    V = static_cast<uint8_t>(*Data++);
    return true;
  }
  bool u32(uint32_t &V) { return raw(&V, sizeof V); }
  bool u64(uint64_t &V) { return raw(&V, sizeof V); }
  bool f64(double &V) {
    uint64_t Bits;
    if (!u64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof V);
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || static_cast<std::size_t>(End - Data) < N)
      return false;
    S.assign(Data, N);
    Data += N;
    return true;
  }
  bool done() const { return Data == End; }

private:
  bool raw(void *P, std::size_t N) {
    if (static_cast<std::size_t>(End - Data) < N)
      return false;
    std::memcpy(P, Data, N);
    Data += N;
    return true;
  }

  const char *Data;
  const char *End;
};

std::string encodeObligation(const StoredObligation &Ob) {
  Writer W;
  W.u8(static_cast<uint8_t>(Ob.S));
  W.str(Ob.Name);
  W.u64(Ob.SelfFp);
  W.u64(Ob.ConfigFp);
  W.u32(static_cast<uint32_t>(Ob.Deps.size()));
  for (const StoredDep &D : Ob.Deps) {
    W.u8(static_cast<uint8_t>(D.K));
    W.str(D.Name);
    W.u64(D.Fp);
    // v4: the clause-level signature (incr/SpecDiff.h). Live formulas are
    // not persisted — pure clauses round-trip through their journal text.
    W.u8(D.HasSig ? 1 : 0);
    if (D.HasSig) {
      W.u64(D.Sig.SkeletonFp);
      W.u32(static_cast<uint32_t>(D.Sig.Clauses.size()));
      for (const ClauseSig &C : D.Sig.Clauses) {
        W.u8(static_cast<uint8_t>(C.Role));
        W.u8(C.Pure ? 1 : 0);
        W.u64(C.Fp);
        W.str(C.Text);
      }
    }
  }
  W.str(Ob.Blob);
  return std::move(W.Out);
}

bool decodeObligation(const std::string &Payload, StoredObligation &Ob,
                      uint32_t Version) {
  Reader R(Payload);
  uint8_t S;
  uint32_t NDeps;
  if (!R.u8(S) || S > static_cast<uint8_t>(Side::Summary) || !R.str(Ob.Name) ||
      !R.u64(Ob.SelfFp) || !R.u64(Ob.ConfigFp) || !R.u32(NDeps))
    return false;
  Ob.S = static_cast<Side>(S);
  Ob.Deps.clear();
  Ob.Deps.reserve(NDeps);
  for (uint32_t I = 0; I != NDeps; ++I) {
    StoredDep D;
    uint8_t K;
    if (!R.u8(K) || K > static_cast<uint8_t>(deps::Kind::Contract) ||
        !R.str(D.Name) || !R.u64(D.Fp))
      return false;
    D.K = static_cast<deps::Kind>(K);
    if (Version >= 4) {
      uint8_t HasSig;
      if (!R.u8(HasSig) || HasSig > 1)
        return false;
      D.HasSig = HasSig != 0;
      if (D.HasSig) {
        uint32_t NClauses;
        if (!R.u64(D.Sig.SkeletonFp) || !R.u32(NClauses))
          return false;
        D.Sig.Clauses.reserve(NClauses);
        for (uint32_t J = 0; J != NClauses; ++J) {
          ClauseSig C;
          uint8_t Role, Pure;
          if (!R.u8(Role) ||
              Role > static_cast<uint8_t>(ClauseRole::ContractPost) ||
              !R.u8(Pure) || Pure > 1 || !R.u64(C.Fp) || !R.str(C.Text))
            return false;
          C.Role = static_cast<ClauseRole>(Role);
          C.Pure = Pure != 0;
          D.Sig.Clauses.push_back(std::move(C));
        }
      }
    }
    Ob.Deps.push_back(std::move(D));
  }
  return R.str(Ob.Blob) && R.done();
}

std::string encodeSolverBlock(const std::vector<SavedQueryVerdict> &Es) {
  Writer W;
  W.u32(static_cast<uint32_t>(Es.size()));
  for (const SavedQueryVerdict &E : Es) {
    W.u64(E.Fp);
    W.u64(E.Fp2);
    W.u8(static_cast<uint8_t>(E.V.R));
    W.u64(E.V.Branches);
    W.u64(E.V.TheoryChecks);
  }
  return std::move(W.Out);
}

bool decodeSolverBlock(const std::string &Payload,
                       std::vector<SavedQueryVerdict> &Out) {
  Reader R(Payload);
  uint32_t N;
  if (!R.u32(N))
    return false;
  Out.clear();
  Out.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    SavedQueryVerdict E;
    uint8_t V;
    if (!R.u64(E.Fp) || !R.u64(E.Fp2) || !R.u8(V) ||
        V > static_cast<uint8_t>(SatResult::Unknown) || !R.u64(E.V.Branches) ||
        !R.u64(E.V.TheoryChecks))
      return false;
    E.V.R = static_cast<SatResult>(V);
    Out.push_back(E);
  }
  return R.done();
}

void writeSolverStats(Writer &W, const SolverStats &S) {
  W.u64(S.SatQueries);
  W.u64(S.EntailQueries);
  W.u64(S.Branches);
  W.u64(S.TheoryChecks);
  W.u64(S.UnknownResults);
  W.u64(S.EntailRepeats);
}

bool readSolverStats(Reader &R, SolverStats &S) {
  uint64_t V[6];
  for (uint64_t &X : V)
    if (!R.u64(X))
      return false;
  S.SatQueries = V[0];
  S.EntailQueries = V[1];
  S.Branches = V[2];
  S.TheoryChecks = V[3];
  S.UnknownResults = V[4];
  S.EntailRepeats = V[5];
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Load / flush
//===----------------------------------------------------------------------===//

bool ProofStore::load(bool AllowCompaction) {
  Index.clear();
  Solver.clear();
  Truncated = false;
  Dirty.clear();
  SolverDirty = false;
  DiskValid = false;

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;

  char Head[8];
  uint32_t Version = 0, Reserved = 0;
  if (std::fread(Head, 1, sizeof Head, F) != sizeof Head ||
      std::memcmp(Head, Magic, sizeof Magic) != 0 ||
      std::fread(&Version, sizeof Version, 1, F) != 1 ||
      Version < MinFormatVersion || Version > FormatVersion ||
      std::fread(&Reserved, sizeof Reserved, 1, F) != 1) {
    std::fclose(F);
    return false;
  }

  // Superseded records: obligation records replaced by a later one for the
  // same key, and solver blocks replaced by a later block. They are the
  // growth of the append-log that load-time compaction reclaims.
  uint64_t Superseded = 0;
  for (;;) {
    uint8_t Type;
    uint32_t Len;
    if (std::fread(&Type, 1, 1, F) != 1)
      break; // Clean EOF.
    if (std::fread(&Len, sizeof Len, 1, F) != 1) {
      Truncated = true;
      break;
    }
    std::string Payload(Len, '\0');
    uint64_t Checksum;
    if ((Len && std::fread(&Payload[0], 1, Len, F) != Len) ||
        std::fread(&Checksum, sizeof Checksum, 1, F) != 1 ||
        Checksum != recordChecksum(Type, Payload)) {
      Truncated = true;
      break;
    }
    if (Type == RecObligation) {
      StoredObligation Ob;
      if (!decodeObligation(Payload, Ob, Version)) {
        Truncated = true;
        break;
      }
      // Append-log semantics: the last record for a key wins.
      std::pair<uint8_t, std::string> Key{static_cast<uint8_t>(Ob.S),
                                          Ob.Name};
      if (!Index.emplace(Key, Ob).second) {
        ++Superseded;
        Index[Key] = std::move(Ob);
      }
    } else if (Type == RecSolverBlock) {
      std::vector<SavedQueryVerdict> Es;
      if (!decodeSolverBlock(Payload, Es)) {
        Truncated = true;
        break;
      }
      if (!Solver.empty())
        ++Superseded;
      Solver = std::move(Es);
    }
    // Unknown record types are skipped: forward-compatible within a
    // version, since the checksum already validated the payload length.
  }
  std::fclose(F);

  DiskValid = !Truncated && Version == FormatVersion;
  if (AllowCompaction &&
      (Superseded > 0 || Version != FormatVersion || Truncated)) {
    // Rewrite the log as a compacted current-version snapshot: supersede
    // chains collapse, torn tails are dropped, v3 stores are upgraded.
    if (writeSnapshot()) {
      ++Compactions;
      DiskValid = true;
    }
  }
  return true;
}

const StoredObligation *ProofStore::lookup(Side S,
                                           const std::string &Name) const {
  auto It = Index.find({static_cast<uint8_t>(S), Name});
  return It == Index.end() ? nullptr : &It->second;
}

void ProofStore::put(StoredObligation Ob) {
  std::pair<uint8_t, std::string> Key{static_cast<uint8_t>(Ob.S), Ob.Name};
  Dirty.insert(Key);
  Index[std::move(Key)] = std::move(Ob);
}

void ProofStore::setSolverEntries(std::vector<SavedQueryVerdict> Entries) {
  // A fully warm run exports the same entries it loaded (possibly in a
  // different shard order); comparing as sorted multisets keeps the flush a
  // no-op then, so an unchanged store file stays byte-identical on disk.
  auto Less = [](const SavedQueryVerdict &A, const SavedQueryVerdict &B) {
    return std::tie(A.Fp, A.Fp2) < std::tie(B.Fp, B.Fp2);
  };
  auto Same = [](const SavedQueryVerdict &A, const SavedQueryVerdict &B) {
    return A.Fp == B.Fp && A.Fp2 == B.Fp2 && A.V.R == B.V.R &&
           A.V.Branches == B.V.Branches && A.V.TheoryChecks == B.V.TheoryChecks;
  };
  if (Entries.size() == Solver.size()) {
    std::vector<SavedQueryVerdict> A = Entries, B = Solver;
    std::sort(A.begin(), A.end(), Less);
    std::sort(B.begin(), B.end(), Less);
    bool Equal = true;
    for (std::size_t I = 0; I != A.size() && Equal; ++I)
      Equal = Same(A[I], B[I]);
    if (Equal)
      return;
  }
  Solver = std::move(Entries);
  SolverDirty = true;
}

namespace {

bool writeStoreRecord(std::FILE *F, uint8_t Type, const std::string &Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  uint64_t Checksum = recordChecksum(Type, Payload);
  return std::fwrite(&Type, 1, 1, F) == 1 &&
         std::fwrite(&Len, sizeof Len, 1, F) == 1 &&
         (!Len || std::fwrite(Payload.data(), 1, Len, F) == Len) &&
         std::fwrite(&Checksum, sizeof Checksum, 1, F) == 1;
}

} // namespace

bool ProofStore::writeSnapshot() {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;

  uint32_t Version = FormatVersion, Reserved = 0;
  bool Ok = std::fwrite(Magic, 1, sizeof Magic, F) == sizeof Magic &&
            std::fwrite(&Version, sizeof Version, 1, F) == 1 &&
            std::fwrite(&Reserved, sizeof Reserved, 1, F) == 1;
  for (const auto &[Key, Ob] : Index)
    Ok = Ok && writeStoreRecord(F, RecObligation, encodeObligation(Ob));
  if (!Solver.empty())
    Ok = Ok && writeStoreRecord(F, RecSolverBlock, encodeSolverBlock(Solver));
  Ok = std::fflush(F) == 0 && Ok;
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  Dirty.clear();
  SolverDirty = false;
  return true;
}

bool ProofStore::flush() {
  if (DiskValid && Dirty.empty() && !SolverDirty)
    return true; // Nothing changed since load: leave the file untouched.

  if (DiskValid) {
    // Cheap warm-loop write: append only the changed records. The log's
    // last-record-wins semantics make them supersede the on-disk ones, and
    // the next writable load compacts the chain away.
    std::FILE *F = std::fopen(Path.c_str(), "ab");
    if (!F)
      return false;
    bool Ok = true;
    for (const auto &Key : Dirty) {
      auto It = Index.find(Key);
      if (It != Index.end())
        Ok = Ok && writeStoreRecord(F, RecObligation,
                                    encodeObligation(It->second));
    }
    if (SolverDirty && !Solver.empty())
      Ok = Ok &&
           writeStoreRecord(F, RecSolverBlock, encodeSolverBlock(Solver));
    Ok = std::fflush(F) == 0 && Ok;
    Ok = std::fclose(F) == 0 && Ok;
    if (Ok) {
      Dirty.clear();
      SolverDirty = false;
      return true;
    }
    // A torn append degrades the next load to the valid prefix; fall back
    // to the atomic snapshot path to leave a consistent file behind.
  }

  if (!writeSnapshot())
    return false;
  DiskValid = true;
  return true;
}

//===----------------------------------------------------------------------===//
// Report blobs
//===----------------------------------------------------------------------===//

std::string gilr::incr::encodeVerifyReport(const engine::VerifyReport &R) {
  Writer W;
  W.str(R.Func);
  W.u8(R.Ok ? 1 : 0);
  W.u8(R.TimedOut ? 1 : 0);
  W.f64(R.Seconds);
  W.u32(R.PathsCompleted);
  W.u32(R.StatesExplored);
  W.u32(R.GhostAnnotations);
  W.u32(static_cast<uint32_t>(R.Errors.size()));
  for (const std::string &E : R.Errors)
    W.str(E);
  writeSolverStats(W, R.Solver);
  W.u32(static_cast<uint32_t>(R.Phases.size()));
  for (const trace::PhaseStat &P : R.Phases) {
    W.str(P.Key);
    W.u64(P.Count);
    W.u64(P.Nanos);
  }
  // v5 tail: the static-triage marker. Decoded tolerantly so v4 blobs
  // (which end at the phase list) still replay as Static=false.
  W.u8(R.Static ? 1 : 0);
  return std::move(W.Out);
}

bool gilr::incr::decodeVerifyReport(const std::string &Blob,
                                    engine::VerifyReport &Out) {
  Reader R(Blob);
  uint8_t Ok, TimedOut;
  uint32_t NErrors, NPhases;
  if (!R.str(Out.Func) || !R.u8(Ok) || !R.u8(TimedOut) || !R.f64(Out.Seconds))
    return false;
  uint32_t Paths, States, Ghosts;
  if (!R.u32(Paths) || !R.u32(States) || !R.u32(Ghosts) || !R.u32(NErrors))
    return false;
  Out.Ok = Ok != 0;
  Out.TimedOut = TimedOut != 0;
  Out.PathsCompleted = Paths;
  Out.StatesExplored = States;
  Out.GhostAnnotations = Ghosts;
  Out.Errors.clear();
  Out.Errors.resize(NErrors);
  for (std::string &E : Out.Errors)
    if (!R.str(E))
      return false;
  if (!readSolverStats(R, Out.Solver) || !R.u32(NPhases))
    return false;
  Out.Phases.clear();
  Out.Phases.resize(NPhases);
  for (trace::PhaseStat &P : Out.Phases)
    if (!R.str(P.Key) || !R.u64(P.Count) || !R.u64(P.Nanos))
      return false;
  Out.Static = false;
  if (R.done())
    return true; // v4 blob: no Static tail byte.
  uint8_t Static;
  if (!R.u8(Static) || Static > 1)
    return false;
  Out.Static = Static != 0;
  return R.done();
}

std::string gilr::incr::encodeLintVerdict(const analysis::EntityVerdict &V) {
  Writer W;
  W.u8(V.Blocked ? 1 : 0);
  W.u64(V.Suppressed);
  W.u32(static_cast<uint32_t>(V.Diags.size()));
  for (const analysis::Diagnostic &D : V.Diags) {
    W.str(D.Code);
    W.u8(static_cast<uint8_t>(D.Sev));
    W.str(D.Entity);
    W.u64(static_cast<uint64_t>(static_cast<int64_t>(D.Block)));
    W.u64(static_cast<uint64_t>(static_cast<int64_t>(D.Stmt)));
    W.str(D.Message);
    W.u32(static_cast<uint32_t>(D.Notes.size()));
    for (const std::string &N : D.Notes)
      W.str(N);
    W.str(D.File);
    W.u32(D.Line);
    W.u32(D.Col);
  }
  return std::move(W.Out);
}

bool gilr::incr::decodeLintVerdict(const std::string &Blob,
                                   analysis::EntityVerdict &Out) {
  Reader R(Blob);
  uint8_t Blocked;
  uint32_t NDiags;
  if (!R.u8(Blocked) || !R.u64(Out.Suppressed) || !R.u32(NDiags))
    return false;
  Out.Blocked = Blocked != 0;
  Out.Diags.clear();
  Out.Diags.resize(NDiags);
  for (analysis::Diagnostic &D : Out.Diags) {
    uint8_t Sev;
    uint64_t Block, Stmt;
    uint32_t NNotes;
    if (!R.str(D.Code) || !R.u8(Sev) ||
        Sev > static_cast<uint8_t>(analysis::Severity::Warning) ||
        !R.str(D.Entity) || !R.u64(Block) || !R.u64(Stmt) ||
        !R.str(D.Message) || !R.u32(NNotes))
      return false;
    D.Sev = static_cast<analysis::Severity>(Sev);
    D.Block = static_cast<int>(static_cast<int64_t>(Block));
    D.Stmt = static_cast<int>(static_cast<int64_t>(Stmt));
    D.Notes.clear();
    D.Notes.resize(NNotes);
    for (std::string &N : D.Notes)
      if (!R.str(N))
        return false;
    if (!R.str(D.File) || !R.u32(D.Line) || !R.u32(D.Col))
      return false;
  }
  return R.done();
}

std::string gilr::incr::encodeSafeReport(const creusot::SafeReport &R) {
  Writer W;
  W.str(R.Func);
  W.u8(R.Ok ? 1 : 0);
  W.u8(R.TimedOut ? 1 : 0);
  W.f64(R.Seconds);
  W.u32(static_cast<uint32_t>(R.Obligations.size()));
  for (const creusot::SafeObligation &O : R.Obligations) {
    W.str(O.Where);
    W.str(O.What);
    W.u8(O.Ok ? 1 : 0);
  }
  W.u32(static_cast<uint32_t>(R.Errors.size()));
  for (const std::string &E : R.Errors)
    W.str(E);
  writeSolverStats(W, R.Solver);
  return std::move(W.Out);
}

bool gilr::incr::decodeSafeReport(const std::string &Blob,
                                  creusot::SafeReport &Out) {
  Reader R(Blob);
  uint8_t Ok, TimedOut;
  uint32_t NObl, NErrors;
  if (!R.str(Out.Func) || !R.u8(Ok) || !R.u8(TimedOut) ||
      !R.f64(Out.Seconds) || !R.u32(NObl))
    return false;
  Out.Ok = Ok != 0;
  Out.TimedOut = TimedOut != 0;
  Out.Obligations.clear();
  Out.Obligations.resize(NObl);
  for (creusot::SafeObligation &O : Out.Obligations) {
    uint8_t OOk;
    if (!R.str(O.Where) || !R.str(O.What) || !R.u8(OOk))
      return false;
    O.Ok = OOk != 0;
  }
  if (!R.u32(NErrors))
    return false;
  Out.Errors.clear();
  Out.Errors.resize(NErrors);
  for (std::string &E : Out.Errors)
    if (!R.str(E))
      return false;
  return readSolverStats(R, Out.Solver) && R.done();
}

std::string gilr::incr::encodeFnSummary(const analysis::FnSummary &S) {
  Writer W;
  const bool Bools[] = {S.Known,          S.Recursive,     S.Leaf,
                        S.Pure,           S.HeapReads,     S.HeapWrites,
                        S.UnsafeOps,      S.UnsafeEscapes, S.HasGhost,
                        S.HasCheckedArith, S.HasUnreachable, S.HasLemmaApply,
                        S.WritesReturn};
  for (bool B : Bools)
    W.u8(B ? 1 : 0);
  W.u32(static_cast<uint32_t>(S.Params.size()));
  for (const analysis::ParamEffect &E : S.Params) {
    W.u8(E.Read ? 1 : 0);
    W.u8(E.Written ? 1 : 0);
    W.u8(E.Escaped ? 1 : 0);
  }
  W.u32(static_cast<uint32_t>(S.MayAliasParams.size()));
  for (const auto &[A, B] : S.MayAliasParams) {
    W.u32(A);
    W.u32(B);
  }
  W.u32(static_cast<uint32_t>(S.DepFns.size()));
  for (const std::string &N : S.DepFns)
    W.str(N);
  W.u32(static_cast<uint32_t>(S.DepPreds.size()));
  for (const std::string &N : S.DepPreds)
    W.str(N);
  return std::move(W.Out);
}

bool gilr::incr::decodeFnSummary(const std::string &Blob,
                                 analysis::FnSummary &Out) {
  Reader R(Blob);
  bool *const Bools[] = {&Out.Known,          &Out.Recursive,
                         &Out.Leaf,           &Out.Pure,
                         &Out.HeapReads,      &Out.HeapWrites,
                         &Out.UnsafeOps,      &Out.UnsafeEscapes,
                         &Out.HasGhost,       &Out.HasCheckedArith,
                         &Out.HasUnreachable, &Out.HasLemmaApply,
                         &Out.WritesReturn};
  for (bool *B : Bools) {
    uint8_t V;
    if (!R.u8(V) || V > 1)
      return false;
    *B = V != 0;
  }
  uint32_t N;
  if (!R.u32(N))
    return false;
  Out.Params.clear();
  Out.Params.resize(N);
  for (analysis::ParamEffect &E : Out.Params) {
    uint8_t Rd, Wr, Esc;
    if (!R.u8(Rd) || Rd > 1 || !R.u8(Wr) || Wr > 1 || !R.u8(Esc) || Esc > 1)
      return false;
    E.Read = Rd != 0;
    E.Written = Wr != 0;
    E.Escaped = Esc != 0;
  }
  if (!R.u32(N))
    return false;
  Out.MayAliasParams.clear();
  Out.MayAliasParams.resize(N);
  for (auto &[A, B] : Out.MayAliasParams)
    if (!R.u32(A) || !R.u32(B))
      return false;
  if (!R.u32(N))
    return false;
  Out.DepFns.clear();
  for (uint32_t I = 0; I != N; ++I) {
    std::string S;
    if (!R.str(S))
      return false;
    Out.DepFns.insert(std::move(S));
  }
  if (!R.u32(N))
    return false;
  Out.DepPreds.clear();
  for (uint32_t I = 0; I != N; ++I) {
    std::string S;
    if (!R.str(S))
      return false;
    Out.DepPreds.insert(std::move(S));
  }
  return R.done();
}

std::string gilr::incr::encodePredSummary(const analysis::PredSummary &S) {
  Writer W;
  W.u8(S.Known ? 1 : 0);
  W.u8(S.OwnsUnknown ? 1 : 0);
  W.u32(static_cast<uint32_t>(S.MayOwnParam.size()));
  for (bool B : S.MayOwnParam)
    W.u8(B ? 1 : 0);
  W.u32(static_cast<uint32_t>(S.DepPreds.size()));
  for (const std::string &N : S.DepPreds)
    W.str(N);
  return std::move(W.Out);
}

bool gilr::incr::decodePredSummary(const std::string &Blob,
                                   analysis::PredSummary &Out) {
  Reader R(Blob);
  uint8_t Known, Owns;
  uint32_t N;
  if (!R.u8(Known) || Known > 1 || !R.u8(Owns) || Owns > 1 || !R.u32(N))
    return false;
  Out.Known = Known != 0;
  Out.OwnsUnknown = Owns != 0;
  Out.MayOwnParam.clear();
  Out.MayOwnParam.resize(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint8_t B;
    if (!R.u8(B) || B > 1)
      return false;
    Out.MayOwnParam[I] = B != 0;
  }
  if (!R.u32(N))
    return false;
  Out.DepPreds.clear();
  for (uint32_t I = 0; I != N; ++I) {
    std::string S;
    if (!R.str(S))
      return false;
    Out.DepPreds.insert(std::move(S));
  }
  return R.done();
}

std::vector<const StoredObligation *> ProofStore::records() const {
  std::vector<const StoredObligation *> Out;
  Out.reserve(Index.size());
  for (const auto &[Key, Ob] : Index) {
    (void)Key;
    Out.push_back(&Ob);
  }
  return Out;
}

std::string gilr::incr::encodeObligationRecord(const StoredObligation &Ob) {
  return encodeObligation(Ob);
}

bool gilr::incr::decodeObligationRecord(const std::string &Payload,
                                        StoredObligation &Out) {
  return decodeObligation(Payload, Out, FormatVersion);
}
