//===- incr/SpecDiff.h - Sub-entity clause signatures and semantic diff ----===//
///
/// \file
/// Clause-level change analysis for the incremental layer. The whole-entity
/// Merkle fingerprints of incr/Fingerprint.h answer "did anything change?";
/// this module answers the finer question "did anything that the cached
/// proof *relied on* change?" by splitting each dependable entity into a
/// skeleton plus a multiset of top-level clauses:
///
///   * Gilsonite specs: the `*`-conjuncts of Pre and Post;
///   * Pearlite contracts: the `&&`-conjuncts of requires/ensures;
///   * extract lemmas: the `&&`-conjuncts of the Requires statement;
///   * predicate declarations: the clause list (disjuncts).
///
/// Each clause carries a stable fingerprint; pure boolean clauses
/// additionally persist their formula as journal text (solver/Journal.h), so
/// a later session can reconstruct the *old* clause and ask the solver for
/// an implication between old and new spec — the salvage query of
/// docs/INCREMENTAL.md ("Semantic invalidation").
///
/// \c diffForSalvage encodes the soundness direction per use site. A cached
/// proof that consumed a callee spec at a call site stays valid when the old
/// pre implies every added pre conjunct (the caller proved the old, stronger
/// obligation) and the new post implies every removed post conjunct (the
/// caller assumed nothing the new spec fails to provide). A proof verified
/// *against* its own spec flips both directions; since a recursive function
/// consumes its own spec too, self deps conservatively require the union of
/// both directions. Lemma Requires clauses behave like preconditions at the
/// application site. Spatial clauses, predicate disjuncts and contract
/// clauses never get implication salvage — only the zero-solver-work case
/// where the clause multiset is unchanged (reorders, doc edits).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_INCR_SPECDIFF_H
#define GILR_INCR_SPECDIFF_H

#include "creusot/StdSpecs.h"
#include "engine/Lemma.h"
#include "gilsonite/PredDecl.h"
#include "gilsonite/Spec.h"

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace gilr {
namespace incr {

/// Which slot of its entity a clause lives in. Clause multisets are diffed
/// per role. On-disk in StoredDep records: append only, never renumber.
enum class ClauseRole : uint8_t {
  Pre = 0,          ///< Gilsonite spec precondition conjunct.
  Post = 1,         ///< Gilsonite spec postcondition conjunct.
  PredClause = 2,   ///< Predicate declaration clause (a disjunct).
  LemmaReq = 3,     ///< Extract-lemma Requires conjunct.
  ContractPre = 4,  ///< Pearlite requires conjunct.
  ContractPost = 5, ///< Pearlite ensures conjunct.
};

/// One top-level clause of an entity.
struct ClauseSig {
  ClauseRole Role = ClauseRole::Pre;
  /// Stable structural fingerprint of the clause (role-independent).
  uint64_t Fp = 0;
  /// True for a pure boolean conjunct whose formula is persisted below.
  bool Pure = false;
  /// Journal rendering of the formula (solver/Journal.h); empty when not
  /// pure. This is what lets a later session rebuild the *old* clause.
  std::string Text;
  /// The live formula when the signature was built from the current tables
  /// (never persisted; parsed back from \c Text for stored signatures).
  Expr Formula;
};

/// An entity split into skeleton + clauses. The skeleton fingerprint covers
/// every field *except* the clause lists and documentation strings, so a
/// doc edit or clause reorder leaves it unchanged while any structural edit
/// (params, spec vars, trusted flag, ...) moves it.
struct EntitySig {
  uint64_t SkeletonFp = 0; ///< 0 = "entity has no clause signature".
  std::vector<ClauseSig> Clauses;

  bool valid() const { return SkeletonFp != 0; }
};

EntitySig sigSpec(const gilsonite::Spec &S);
EntitySig sigPred(const gilsonite::PredDecl &P);
EntitySig sigLemma(
    const std::variant<engine::FreezeLemma, engine::ExtractLemma> &L);
EntitySig sigContract(const creusot::PearliteSpec &S);

/// Outcome of diffing a stored dependency signature against the current
/// entity.
enum class SalvageVerdict : uint8_t {
  /// Clause multisets identical per role: the edit touched nothing the
  /// proof could have relied on (reorder, doc string). Zero solver work.
  Identical,
  /// Only pure clauses changed, in roles that support implication salvage;
  /// the verdict survives iff every implication in \c Out holds.
  NeedsProof,
  /// Skeleton, spatial clause, predicate disjunct or contract clause
  /// changed — the cached verdict must be re-proved.
  Invalid,
};

/// One implication the salvage pass must discharge: conj(Ctx) => Goal.
struct SalvageObligation {
  std::vector<Expr> Ctx;
  Expr Goal;
};

/// Diffs \p Old (from the proof store) against \p New (from the current
/// tables) and, when the change is confined to pure clauses, appends the
/// implication obligations that justify keeping the cached verdict to
/// \p Out. \p SelfDep selects the direction: false = the proof consumed the
/// entity at a use site (strengthen-pre / weaken-post must be re-proved),
/// true = the proof was verified against the entity itself (union of both
/// directions — sound for recursive consumers).
SalvageVerdict diffForSalvage(const EntitySig &Old, const EntitySig &New,
                              bool SelfDep,
                              std::vector<SalvageObligation> &Out);

} // namespace incr
} // namespace gilr

#endif // GILR_INCR_SPECDIFF_H
