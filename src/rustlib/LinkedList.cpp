//===- rustlib/LinkedList.cpp -----------------------------------------------------===//

#include "rustlib/LinkedList.h"

#include "gilsonite/ModeCheck.h"
#include "heap/Projection.h"
#include "rmir/Builder.h"
#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "sym/ExprBuilder.h"

using namespace gilr;
using namespace gilr::rustlib;
using namespace gilr::rmir;
using namespace gilr::gilsonite;

//===----------------------------------------------------------------------===//
// Types and predicates
//===----------------------------------------------------------------------===//

static void declareTypes(LinkedListLib &L) {
  TyCtx &Ty = L.Prog.Types;
  L.T = Ty.param("T");
  L.Usize = Ty.usize();
  // Node<T> is recursive through Option<*mut Node<T>>.
  TypeRef NodeFwd = Ty.declareStructForward("Node<T>");
  L.NodePtr = Ty.rawPtr(NodeFwd);
  L.OptNodePtr = Ty.optionOf(L.NodePtr);
  Ty.defineStructFields(NodeFwd, {FieldDef{"elem", L.T},
                                  FieldDef{"next", L.OptNodePtr},
                                  FieldDef{"prev", L.OptNodePtr}});
  L.NodeTy = NodeFwd;
  L.LLTy = Ty.declareStruct("LinkedList<T>",
                            {FieldDef{"head", L.OptNodePtr},
                             FieldDef{"tail", L.OptNodePtr},
                             FieldDef{"len", L.Usize}});
  L.RefLL = Ty.mutRef(L.LLTy);
  L.RefT = Ty.mutRef(L.T);
  L.OptT = Ty.optionOf(L.T);
  L.OptRefT = Ty.optionOf(L.RefT);
}

static void declarePredicates(LinkedListLib &L) {
  OwnableRegistry &Own = *L.Ownables;
  std::string OwnT = Own.ownPred(L.T); // own$T: abstract (§4.2).

  // The doubly-linked-list-segment predicate of §3.3:
  //   dllSeg<T>(h, n, t, p, r, 'k) :=
  //        (h = n * t = p * r = [])
  //     \/ (exists h' v z rv r'.
  //           h = Some(h') * h' |->_Node<T> (v, z, p)
  //           * own$T(v, rv, 'k) * dllSeg(z, n, t, h, r', 'k)
  //           * r = rv :: r').
  {
    PredDecl D;
    D.Name = "dllSeg";
    D.Params = {PredParam{"h", Sort::Opt, true},
                PredParam{"n", Sort::Opt, true},
                PredParam{"t", Sort::Opt, true},
                PredParam{"p", Sort::Opt, true},
                PredParam{"r", Sort::Seq, false},
                PredParam{"'k", Sort::Lft, true}};
    Expr H = mkVar("h", Sort::Opt);
    Expr N = mkVar("n", Sort::Opt);
    Expr Tl = mkVar("t", Sort::Opt);
    Expr P = mkVar("p", Sort::Opt);
    Expr R = mkVar("r", Sort::Seq);
    Expr K = mkVar("'k", Sort::Lft);

    AssertionP Empty = star({pure(mkEq(H, N)), pure(mkEq(Tl, P)),
                             pure(mkEq(R, mkSeqNil()))});

    Expr HP = mkVar("h'?", Sort::Any);
    Expr V = mkVar("v?", Sort::Any);
    Expr Z = mkVar("z?", Sort::Opt);
    Expr RV = mkVar("rv?", Sort::Any);
    Expr RT = mkVar("r'?", Sort::Seq);
    AssertionP Cons = exists(
        {Binder{"h'?", Sort::Any}, Binder{"v?", Sort::Any},
         Binder{"z?", Sort::Opt}, Binder{"rv?", Sort::Any},
         Binder{"r'?", Sort::Seq}},
        star({pure(mkEq(H, mkSome(HP))),
              pointsTo(HP, L.NodeTy, mkTuple({V, Z, P})),
              predCall(OwnT, {V, RV, K}),
              predCall("dllSeg", {Z, N, Tl, H, RT, K}),
              pure(mkEq(R, mkSeqCons(RV, RT)))}));

    D.Clauses = {Empty, Cons};
    L.Preds.declare(std::move(D));
  }

  // impl Ownable for LinkedList<T> (Fig. 2):
  //   own(self, repr, 'k) := dllSeg(self.head, None, self.tail, None,
  //                                 repr, 'k) * self.len = |repr|.
  {
    Expr Self = mkVar("self", Sort::Tuple);
    Expr Repr = mkVar("repr", Sort::Seq);
    Expr K = mkVar("'k", Sort::Lft);
    AssertionP Clause =
        star({predCall("dllSeg",
                       {mkTupleGet(Self, 0), mkNone(), mkTupleGet(Self, 1),
                        mkNone(), Repr, K}),
              pure(mkEq(mkTupleGet(Self, 2), mkSeqLen(Repr)))});
    Own.registerUserImpl(L.LLTy, {Clause});
  }

  // Derive the remaining built-in ownables eagerly so their predicates and
  // the mutref inner predicates exist before lemma registration.
  Own.ownPred(L.RefLL);
  Own.ownPred(L.RefT);
  Own.ownPred(L.OptT);
  Own.ownPred(L.OptRefT);
  Own.ownPred(L.Usize);
  Own.ownPred(L.Prog.Types.boolTy());

  // The frozen variant of the LinkedList borrow content (§4.3 footnote:
  // existential freezing): the struct value v is lifted to a parameter.
  //   frozen$LL(p, x; v) @'kappa := exists a. p |->_LL v
  //                                 * own$LL(v, a, 'kappa) * PC_x(a).
  {
    PredDecl D;
    D.Name = "frozen$LL";
    D.Params = {PredParam{"p", Sort::Any, true},
                PredParam{"x", Sort::Any, true},
                PredParam{"v", Sort::Tuple, false}};
    D.Guardable = true;
    Expr P = mkVar("p", Sort::Any);
    Expr X = mkVar("x", Sort::Any);
    Expr V = mkVar("v", Sort::Tuple);
    Expr A = mkVar("a?", Sort::Any);
    D.Clauses = {exists(
        {Binder{"a?", Sort::Any}},
        star({pointsTo(P, L.LLTy, V),
              predCall(OwnableRegistry::ownPredName(L.LLTy),
                       {V, A, mkVar(kappaBinderName(), Sort::Lft)}),
              prophCtrl(X, A)}))};
    L.Preds.declare(std::move(D));
  }

  // Predicate modes must satisfy the §7.2 discipline.
  std::vector<std::string> ModeErrors = checkAllModes(L.Preds);
  if (!ModeErrors.empty())
    fatalError("LinkedList predicate mode errors:\n" +
               join(ModeErrors, "\n"));
}

static void registerLemmas(LinkedListLib &L) {
  engine::VerifEnv Env = L.env();

  // Existential freezing (§6: "an existential freezing lemma ... proofs are
  // entirely automatic").
  engine::FreezeLemma Freeze;
  Freeze.Name = "ll_freeze_list";
  Freeze.FromPred = OwnableRegistry::mutRefInnerName(L.LLTy);
  Freeze.ToPred = "frozen$LL";
  Outcome<Unit> FR = L.Lemmas.registerFreeze(Freeze, Env);
  if (!FR.ok())
    fatalError("freeze lemma proof failed: " +
               (FR.failed() ? FR.error() : "vanished"));

  // Borrow extraction (Fig. 8): from the frozen LinkedList borrow, extract
  // a borrow of the first element. The persistent fact is head != None.
  engine::ExtractLemma Extract;
  Extract.Name = "ll_extract_head";
  Extract.Params = {"r", "p", "x", "v"};
  Extract.GivenParams = 1;
  Extract.MutRefParams = {"r"};
  Extract.FromPred = "frozen$LL";
  Extract.FromArgs = {mkVar("p", Sort::Any), mkVar("x", Sort::Any),
                      mkVar("v", Sort::Tuple)};
  Expr V = mkVar("v", Sort::Tuple);
  Expr ElemPtr = heap::appendProjElem(mkUnwrap(mkTupleGet(V, 0)),
                                      heap::ProjElem::field(L.NodeTy, 0));
  Extract.Persistent = mkIsSome(mkTupleGet(V, 0));
  Extract.Requires =
      mkEq(mkTupleGet(mkVar("r", Sort::Tuple), 0), ElemPtr);
  Extract.ToPred = OwnableRegistry::mutRefInnerName(L.T);
  Extract.ToArgs = {ElemPtr, mkTupleGet(mkVar("r", Sort::Tuple), 1)};
  Extract.NewProphecyHole = "r";
  Outcome<Unit> ER = L.Lemmas.registerExtract(Extract, Env);
  if (!ER.ok())
    fatalError("extraction lemma proof failed: " +
               (ER.failed() ? ER.error() : "vanished"));
}

//===----------------------------------------------------------------------===//
// RMIR function bodies
//===----------------------------------------------------------------------===//

namespace {

Operand cNone(TypeRef OptTy) { return Operand::constant(mkNone(), OptTy); }
Operand cUsize(uint64_t V, TypeRef Usize) {
  return Operand::constant(mkIntU64(V), Usize);
}

} // namespace

/// fn new() -> LinkedList<T> { LinkedList { head: None, tail: None, len: 0 } }
static Function buildNew(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::new", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  B.setReturnType(L.LLTy);
  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(0),
           Rvalue::aggregate(L.LLTy, 0,
                             {cNone(L.OptNodePtr), cNone(L.OptNodePtr),
                              cUsize(0, L.Usize)}));
  B.ret();
  return B.finish();
}

/// fn push_front_node(&mut self, x: T) — the std implementation: allocate a
/// node, link it at the front, fix up head/tail/prev, bump len.
static Function buildPushFrontNode(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::push_front_node", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  LocalId X = B.addParam("x", L.T);
  B.setReturnType(L.Prog.Types.unitTy());
  LocalId Node = B.addLocal("node", L.NodePtr);
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId Old = B.addLocal("old", L.NodePtr);
  LocalId D0 = B.addLocal("d0", L.Usize);
  LocalId Len0 = B.addLocal("len0", L.Usize);
  LocalId Len1 = B.addLocal("len1", L.Usize);

  BlockId Entry = B.newBlock();
  BlockId SomeOld = B.newBlock();
  BlockId NoneOld = B.newBlock();
  BlockId Join = B.newBlock();

  Place SelfHead = Place(Self).deref().field(0);
  Place SelfTail = Place(Self).deref().field(1);
  Place SelfLen = Place(Self).deref().field(2);

  B.atBlock(Entry);
  B.mutrefAutoResolve(Operand::copy(Place(Self)));
  B.assign(Place(Head0), Rvalue::use(Operand::copy(SelfHead)));
  B.alloc(Place(Node), L.NodeTy);
  // *node = Node { elem: x, next: head0, prev: None }.
  B.assign(Place(Node).deref(),
           Rvalue::aggregate(L.NodeTy, 0,
                             {Operand::move(Place(X)),
                              Operand::copy(Place(Head0)),
                              cNone(L.OptNodePtr)}));
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, NoneOld}}, SomeOld);

  B.atBlock(SomeOld); // (*old).prev = Some(node).
  B.assign(Place(Old),
           Rvalue::use(Operand::copy(Place(Head0).downcast(1).field(0))));
  B.assign(Place(Old).deref().field(2),
           Rvalue::aggregate(L.OptNodePtr, 1, {Operand::copy(Place(Node))}));
  B.gotoBlock(Join);

  B.atBlock(NoneOld); // Empty list: tail also points at the new node.
  B.assign(SelfTail,
           Rvalue::aggregate(L.OptNodePtr, 1, {Operand::copy(Place(Node))}));
  B.gotoBlock(Join);

  B.atBlock(Join);
  B.assign(SelfHead,
           Rvalue::aggregate(L.OptNodePtr, 1, {Operand::copy(Place(Node))}));
  B.assign(Place(Len0), Rvalue::use(Operand::copy(SelfLen)));
  B.assign(Place(Len1),
           Rvalue::binary(BinOp::Add, Operand::copy(Place(Len0)),
                          cUsize(1, L.Usize)));
  B.assign(SelfLen, Rvalue::use(Operand::copy(Place(Len1))));
  B.ret();
  return B.finish();
}

/// fn pop_front_node(&mut self) -> Option<T> — unlink the first node, move
/// its element out, free the node. (Box is elided: our Box is
/// alloc/dealloc plus a raw pointer, see DESIGN.md.)
static Function buildPopFrontNode(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::pop_front_node", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  B.setReturnType(L.OptT);
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId Node = B.addLocal("node", L.NodePtr);
  LocalId Elem = B.addLocal("elem", L.T);
  LocalId Next = B.addLocal("next", L.OptNodePtr);
  LocalId Next2 = B.addLocal("next2", L.NodePtr);
  LocalId D0 = B.addLocal("d0", L.Usize);
  LocalId D1 = B.addLocal("d1", L.Usize);
  LocalId Len0 = B.addLocal("len0", L.Usize);
  LocalId Len1 = B.addLocal("len1", L.Usize);

  BlockId Entry = B.newBlock();
  BlockId IsNone = B.newBlock();
  BlockId IsSome = B.newBlock();
  BlockId NowEmpty = B.newBlock();
  BlockId StillSome = B.newBlock();
  BlockId Done = B.newBlock();

  Place SelfHead = Place(Self).deref().field(0);
  Place SelfTail = Place(Self).deref().field(1);
  Place SelfLen = Place(Self).deref().field(2);

  B.atBlock(Entry);
  B.mutrefAutoResolve(Operand::copy(Place(Self)));
  B.assign(Place(Head0), Rvalue::use(Operand::copy(SelfHead)));
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, IsNone}}, IsSome);

  B.atBlock(IsNone);
  B.assign(Place(0), Rvalue::aggregate(L.OptT, 0, {}));
  B.ret();

  B.atBlock(IsSome);
  B.assign(Place(Node),
           Rvalue::use(Operand::copy(Place(Head0).downcast(1).field(0))));
  B.assign(Place(Elem),
           Rvalue::use(Operand::move(Place(Node).deref().field(0))));
  B.assign(Place(Next),
           Rvalue::use(Operand::copy(Place(Node).deref().field(1))));
  B.assign(SelfHead, Rvalue::use(Operand::copy(Place(Next))));
  B.assign(Place(D1), Rvalue::discriminant(Place(Next)));
  B.switchInt(Operand::copy(Place(D1)), {{0, NowEmpty}}, StillSome);

  B.atBlock(NowEmpty);
  B.assign(SelfTail, Rvalue::use(cNone(L.OptNodePtr)));
  B.gotoBlock(Done);

  B.atBlock(StillSome); // (*next).prev = None.
  B.assign(Place(Next2),
           Rvalue::use(Operand::copy(Place(Next).downcast(1).field(0))));
  B.assign(Place(Next2).deref().field(2), Rvalue::use(cNone(L.OptNodePtr)));
  B.gotoBlock(Done);

  B.atBlock(Done);
  B.free(Operand::copy(Place(Node)), L.NodeTy);
  B.assign(Place(Len0), Rvalue::use(Operand::copy(SelfLen)));
  B.assign(Place(Len1),
           Rvalue::binary(BinOp::Sub, Operand::copy(Place(Len0)),
                          cUsize(1, L.Usize)));
  B.assign(SelfLen, Rvalue::use(Operand::copy(Place(Len1))));
  B.assign(Place(0),
           Rvalue::aggregate(L.OptT, 1, {Operand::move(Place(Elem))}));
  B.ret();
  return B.finish();
}

/// fn push_front(&mut self, x: T) { self.push_front_node(x) } — the
/// Option::map-free wrapper (closures are inlined as in §6).
static Function buildPushFront(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::push_front", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  LocalId X = B.addParam("x", L.T);
  B.setReturnType(L.Prog.Types.unitTy());
  LocalId Tmp = B.addLocal("tmp", L.Prog.Types.unitTy());

  BlockId Entry = B.newBlock();
  BlockId Cont = B.newBlock();
  B.atBlock(Entry);
  B.call("LinkedList::push_front_node",
         {Operand::copy(Place(Self)), Operand::move(Place(X))}, Place(Tmp),
         Cont);
  B.atBlock(Cont);
  B.ret();
  return B.finish();
}

/// fn pop_front(&mut self) -> Option<T> { self.pop_front_node() }.
static Function buildPopFront(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::pop_front", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  B.setReturnType(L.OptT);

  BlockId Entry = B.newBlock();
  BlockId Cont = B.newBlock();
  B.atBlock(Entry);
  B.call("LinkedList::pop_front_node", {Operand::copy(Place(Self))},
         Place(0), Cont);
  B.atBlock(Cont);
  B.ret();
  return B.finish();
}

/// fn front_mut(&mut self) -> Option<&mut T> — the borrow-extraction case
/// (§4.3, §6): needs the two declared lemmas, whose proofs are automatic.
static Function buildFrontMut(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::front_mut", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  B.setReturnType(L.OptRefT);
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId Node = B.addLocal("node", L.NodePtr);
  LocalId R = B.addLocal("r", L.RefT);
  LocalId D0 = B.addLocal("d0", L.Usize);

  BlockId Entry = B.newBlock();
  BlockId IsNone = B.newBlock();
  BlockId IsSome = B.newBlock();

  B.atBlock(Entry);
  B.assign(Place(Head0),
           Rvalue::use(Operand::copy(Place(Self).deref().field(0))));
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, IsNone}}, IsSome);

  B.atBlock(IsNone);
  // Only the empty path resolves the self reference: on the Some path its
  // borrow is consumed by the extraction (branch-local tactic).
  B.mutrefAutoResolve(Operand::copy(Place(Self)));
  B.assign(Place(0), Rvalue::aggregate(L.OptRefT, 0, {}));
  B.ret();

  B.atBlock(IsSome);
  B.assign(Place(Node),
           Rvalue::use(Operand::copy(Place(Head0).downcast(1).field(0))));
  // r = &mut (*node).elem.
  B.assign(Place(R), Rvalue::refOf(Place(Node).deref().field(0)));
  B.applyLemma("ll_freeze_list", {});
  B.applyLemma("ll_extract_head", {Operand::copy(Place(R))});
  B.assign(Place(0),
           Rvalue::aggregate(L.OptRefT, 1, {Operand::copy(Place(R))}));
  B.ret();
  return B.finish();
}

/// fn replace_front(&mut self, x: T) -> bool — overwrite the first element
/// in place (additional coverage: writes through the borrow into the node).
static Function buildReplaceFront(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::replace_front", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  LocalId X = B.addParam("x", L.T);
  B.setReturnType(L.Prog.Types.boolTy());
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId Node = B.addLocal("node", L.NodePtr);
  LocalId D0 = B.addLocal("d0", L.Usize);

  BlockId Entry = B.newBlock();
  BlockId IsNone = B.newBlock();
  BlockId IsSome = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(Head0),
           Rvalue::use(Operand::copy(Place(Self).deref().field(0))));
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, IsNone}}, IsSome);
  B.atBlock(IsNone);
  B.assign(Place(0),
           Rvalue::use(Operand::constant(mkFalse(), L.Prog.Types.boolTy())));
  B.ret();
  B.atBlock(IsSome);
  B.assign(Place(Node),
           Rvalue::use(Operand::copy(Place(Head0).downcast(1).field(0))));
  B.assign(Place(Node).deref().field(0),
           Rvalue::use(Operand::move(Place(X))));
  B.assign(Place(0),
           Rvalue::use(Operand::constant(mkTrue(), L.Prog.Types.boolTy())));
  B.ret();
  return B.finish();
}

/// fn is_empty(&mut self) -> bool.
static Function buildIsEmpty(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::is_empty", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  B.setReturnType(L.Prog.Types.boolTy());
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId D0 = B.addLocal("d0", L.Usize);

  BlockId Entry = B.newBlock();
  BlockId IsNone = B.newBlock();
  BlockId IsSome = B.newBlock();
  B.atBlock(Entry);
  B.mutrefAutoResolve(Operand::copy(Place(Self)));
  B.assign(Place(Head0),
           Rvalue::use(Operand::copy(Place(Self).deref().field(0))));
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, IsNone}}, IsSome);
  B.atBlock(IsNone);
  B.assign(Place(0),
           Rvalue::use(Operand::constant(mkTrue(), L.Prog.Types.boolTy())));
  B.ret();
  B.atBlock(IsSome);
  B.assign(Place(0),
           Rvalue::use(Operand::constant(mkFalse(), L.Prog.Types.boolTy())));
  B.ret();
  return B.finish();
}

/// fn len_mut(&mut self) -> usize.
static Function buildLenMut(LinkedListLib &L) {
  FunctionBuilder B("LinkedList::len_mut", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  B.setReturnType(L.Usize);
  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(0),
           Rvalue::use(Operand::copy(Place(Self).deref().field(2))));
  B.ret();
  return B.finish();
}

/// A push_front_node skeleton with injectable defects (negative tests).
enum class PushDefect { NoPrevFix, SelfCycle, NoLenUpdate };

static Function buildBuggyPushFrontNode(LinkedListLib &L,
                                        const std::string &Name,
                                        PushDefect Defect) {
  FunctionBuilder B(Name, L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefLL);
  LocalId X = B.addParam("x", L.T);
  B.setReturnType(L.Prog.Types.unitTy());
  LocalId Node = B.addLocal("node", L.NodePtr);
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId Old = B.addLocal("old", L.NodePtr);
  LocalId D0 = B.addLocal("d0", L.Usize);
  LocalId Len0 = B.addLocal("len0", L.Usize);
  LocalId Len1 = B.addLocal("len1", L.Usize);

  BlockId Entry = B.newBlock();
  BlockId SomeOld = B.newBlock();
  BlockId NoneOld = B.newBlock();
  BlockId Join = B.newBlock();

  Place SelfHead = Place(Self).deref().field(0);
  Place SelfTail = Place(Self).deref().field(1);
  Place SelfLen = Place(Self).deref().field(2);

  B.atBlock(Entry);
  B.assign(Place(Head0), Rvalue::use(Operand::copy(SelfHead)));
  B.alloc(Place(Node), L.NodeTy);
  B.assign(Place(Node).deref(),
           Rvalue::aggregate(L.NodeTy, 0,
                             {Operand::move(Place(X)),
                              Operand::copy(Place(Head0)),
                              cNone(L.OptNodePtr)}));
  if (Defect == PushDefect::SelfCycle) {
    // The Fig. 7 bug: the new node's next points at the node itself,
    // creating a cycle no dllSeg can describe.
    B.assign(Place(Node).deref().field(1),
             Rvalue::aggregate(L.OptNodePtr, 1,
                               {Operand::copy(Place(Node))}));
  }
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, NoneOld}}, SomeOld);

  B.atBlock(SomeOld);
  B.assign(Place(Old),
           Rvalue::use(Operand::copy(Place(Head0).downcast(1).field(0))));
  if (Defect != PushDefect::NoPrevFix) {
    B.assign(Place(Old).deref().field(2),
             Rvalue::aggregate(L.OptNodePtr, 1,
                               {Operand::copy(Place(Node))}));
  }
  B.gotoBlock(Join);

  B.atBlock(NoneOld);
  B.assign(SelfTail,
           Rvalue::aggregate(L.OptNodePtr, 1, {Operand::copy(Place(Node))}));
  B.gotoBlock(Join);

  B.atBlock(Join);
  B.assign(SelfHead,
           Rvalue::aggregate(L.OptNodePtr, 1, {Operand::copy(Place(Node))}));
  if (Defect != PushDefect::NoLenUpdate) {
    B.assign(Place(Len0), Rvalue::use(Operand::copy(SelfLen)));
    B.assign(Place(Len1),
             Rvalue::binary(BinOp::Add, Operand::copy(Place(Len0)),
                            cUsize(1, L.Usize)));
    B.assign(SelfLen, Rvalue::use(Operand::copy(Place(Len1))));
  }
  B.ret();
  return B.finish();
}

std::vector<std::string>
gilr::rustlib::registerBuggyVariants(LinkedListLib &L) {
  struct Variant {
    const char *Name;
    PushDefect Defect;
  };
  const Variant Variants[] = {
      {"LinkedList::push_front_node_noprev", PushDefect::NoPrevFix},
      {"LinkedList::push_front_node_cycle", PushDefect::SelfCycle},
      {"LinkedList::push_front_node_nolen", PushDefect::NoLenUpdate},
  };
  std::vector<std::string> Names;
  for (const Variant &V : Variants) {
    Function F = buildBuggyPushFrontNode(L, V.Name, V.Defect);
    if (!L.Specs.lookup(V.Name))
      L.Specs.add(L.Ownables->makeShowSafetySpec(F));
    L.Prog.Funcs.emplace(V.Name, std::move(F));
    Names.push_back(V.Name);
  }
  return Names;
}

//===----------------------------------------------------------------------===//
// Assembly
//===----------------------------------------------------------------------===//

std::vector<std::string> gilr::rustlib::typeSafetyFunctions() {
  return {"LinkedList::new", "LinkedList::push_front",
          "LinkedList::pop_front", "LinkedList::front_mut"};
}

std::vector<std::string> gilr::rustlib::functionalFunctions() {
  return {"LinkedList::new", "LinkedList::push_front_node",
          "LinkedList::pop_front_node"};
}

std::vector<std::string> gilr::rustlib::allFunctions() {
  return {"LinkedList::new",          "LinkedList::push_front_node",
          "LinkedList::pop_front_node", "LinkedList::push_front",
          "LinkedList::pop_front",    "LinkedList::front_mut",
          "LinkedList::replace_front", "LinkedList::is_empty",
          "LinkedList::len_mut"};
}

std::unique_ptr<LinkedListLib>
gilr::rustlib::buildLinkedListLib(SpecMode Mode) {
  auto L = std::make_unique<LinkedListLib>();
  L->Ownables =
      std::make_unique<OwnableRegistry>(L->Prog.Types, L->Preds);

  declareTypes(*L);
  declarePredicates(*L);

  auto addFn = [&](Function F) {
    std::string Name = F.Name;
    L->Prog.Funcs.emplace(std::move(Name), std::move(F));
  };
  addFn(buildNew(*L));
  addFn(buildPushFrontNode(*L));
  addFn(buildPopFrontNode(*L));
  addFn(buildPushFront(*L));
  addFn(buildPopFront(*L));
  addFn(buildFrontMut(*L));
  addFn(buildReplaceFront(*L));
  addFn(buildIsEmpty(*L));
  addFn(buildLenMut(*L));

  L->Contracts = creusot::makeLinkedListSpecs();

  // Register specs.
  if (Mode == SpecMode::TypeSafety) {
    L->Auto.ObsExtraction = true;
    for (const std::string &Name : allFunctions())
      L->Specs.add(L->Ownables->makeShowSafetySpec(*L->Prog.lookup(Name)));
    // Type safety permits panics (overflow aborts are safe; §6 verifies
    // push_front without a length precondition).
    L->Auto.PanicsAllowed = true;
  } else {
    // Functional: encoded Pearlite contracts where available, show_safety
    // for the rest (front_mut's functional spec needs the enhanced
    // extraction of §7.1, exercised separately).
    engine::VerifEnv Env = L->env();
    hybrid::HybridDriver Driver(Env, L->Contracts);
    for (const std::string &Name :
         {std::string("LinkedList::new"),
          std::string("LinkedList::push_front_node"),
          std::string("LinkedList::pop_front_node"),
          std::string("LinkedList::push_front"),
          std::string("LinkedList::pop_front")}) {
      Outcome<Unit> R = Driver.encodeAndRegister(Name);
      if (!R.ok())
        fatalError("encoding Pearlite spec of " + Name + ": " + R.error());
    }
    for (const std::string &Name :
         {std::string("LinkedList::front_mut"),
          std::string("LinkedList::is_empty")}) {
      Outcome<Unit> R = Driver.encodeAndRegister(Name);
      if (!R.ok())
        fatalError("encoding Pearlite spec of " + Name + ": " + R.error());
    }
    for (const std::string &Name :
         {std::string("LinkedList::len_mut"),
          std::string("LinkedList::replace_front")})
      L->Specs.add(L->Ownables->makeShowSafetySpec(*L->Prog.lookup(Name)));
    L->Auto.PanicsAllowed = false;
  }

  registerLemmas(*L);
  return L;
}
