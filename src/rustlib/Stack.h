//===- rustlib/Stack.h - A second case study: a singly-linked stack --------===//
///
/// \file
/// Beyond the paper's LinkedList: a singly-linked stack implemented with
/// raw pointers, demonstrating that the verification pipeline (ownership
/// predicates, borrow automation, Pearlite contracts via the §5.4
/// encoding, freezing/extraction lemmas) is not specific to one data
/// structure. The sllSeg predicate is the singly-linked cousin of dllSeg;
/// peek_mut mirrors front_mut's borrow extraction.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RUSTLIB_STACK_H
#define GILR_RUSTLIB_STACK_H

#include "engine/Verifier.h"
#include "hybrid/Driver.h"

#include <memory>

namespace gilr {
namespace rustlib {

/// Spec family selection, as for the LinkedList library.
enum class StackSpecMode { TypeSafety, Functional };

/// The assembled Stack verification universe.
struct StackLib {
  rmir::Program Prog;
  gilsonite::PredTable Preds;
  gilsonite::SpecTable Specs;
  engine::LemmaTable Lemmas;
  Solver Solv;
  engine::Automation Auto;
  std::unique_ptr<gilsonite::OwnableRegistry> Ownables;
  creusot::PearliteSpecTable Contracts;

  rmir::TypeRef T = nullptr;
  rmir::TypeRef NodeTy = nullptr;     ///< StackNode<T>.
  rmir::TypeRef NodePtr = nullptr;    ///< *mut StackNode<T>.
  rmir::TypeRef OptNodePtr = nullptr;
  rmir::TypeRef StackTy = nullptr;    ///< Stack<T>.
  rmir::TypeRef RefStack = nullptr;   ///< &mut Stack<T>.
  rmir::TypeRef RefT = nullptr;
  rmir::TypeRef OptT = nullptr;
  rmir::TypeRef OptRefT = nullptr;
  rmir::TypeRef Usize = nullptr;

  engine::VerifEnv env() {
    return engine::VerifEnv{Prog, Preds, Specs, *Ownables, Lemmas, Solv,
                            Auto, analysis::AnalysisConfig{}};
  }
};

/// Builds the library (predicates mode-checked, lemmas proven at build).
std::unique_ptr<StackLib> buildStackLib(StackSpecMode Mode);

/// The verified functions: new, push, pop, peek_mut, is_empty.
std::vector<std::string> stackFunctions();

} // namespace rustlib
} // namespace gilr

#endif // GILR_RUSTLIB_STACK_H
