//===- rustlib/Clients.cpp --------------------------------------------------------===//

#include "rustlib/Clients.h"

using namespace gilr;
using namespace gilr::rustlib;
using namespace gilr::creusot;

namespace {

SafeStmt letStmt(std::string Dest, PTermP T) {
  SafeStmt S;
  S.Kind = SafeStmt::Let;
  S.Dest = std::move(Dest);
  S.Term = std::move(T);
  return S;
}

SafeStmt callStmt(std::string Callee, std::vector<std::string> Args,
                  std::vector<bool> ByMutRef, std::string Dest = "") {
  SafeStmt S;
  S.Kind = SafeStmt::Call;
  S.Callee = std::move(Callee);
  S.Args = std::move(Args);
  S.ByMutRef = std::move(ByMutRef);
  S.Dest = std::move(Dest);
  return S;
}

SafeStmt assertStmt(PTermP T) {
  SafeStmt S;
  S.Kind = SafeStmt::Assert;
  S.Term = std::move(T);
  return S;
}

} // namespace

std::vector<SafeFn> gilr::rustlib::makeClients() {
  std::vector<SafeFn> Clients;

  // fn client_push_pop() { let mut l = LinkedList::new();
  //   l.push_front(1); l.push_front(2);
  //   assert_eq!(l.pop_front(), Some(2)); assert!(l@ == seq![1]); }
  {
    SafeFn F;
    F.Name = "client_push_pop";
    F.Body = {
        callStmt("LinkedList::new", {}, {}, "l"),
        letStmt("one", pInt(1)),
        letStmt("two", pInt(2)),
        callStmt("LinkedList::push_front", {"l", "one"}, {true, false}),
        callStmt("LinkedList::push_front", {"l", "two"}, {true, false}),
        callStmt("LinkedList::pop_front", {"l"}, {true}, "r"),
        assertStmt(pEq(pVar("r"), pSome(pInt(2)))),
        assertStmt(pEq(pVar("l"), pSeqCons(pInt(1), pSeqEmpty()))),
    };
    Clients.push_back(std::move(F));
  }

  // fn client_fifo_order(): three pushes pop in LIFO order.
  {
    SafeFn F;
    F.Name = "client_lifo_order";
    F.Body = {
        callStmt("LinkedList::new", {}, {}, "l"),
        letStmt("a", pInt(10)),
        letStmt("b", pInt(20)),
        letStmt("c", pInt(30)),
        callStmt("LinkedList::push_front", {"l", "a"}, {true, false}),
        callStmt("LinkedList::push_front", {"l", "b"}, {true, false}),
        callStmt("LinkedList::push_front", {"l", "c"}, {true, false}),
        callStmt("LinkedList::pop_front", {"l"}, {true}, "r1"),
        assertStmt(pEq(pVar("r1"), pSome(pInt(30)))),
        callStmt("LinkedList::pop_front", {"l"}, {true}, "r2"),
        assertStmt(pEq(pVar("r2"), pSome(pInt(20)))),
        callStmt("LinkedList::pop_front", {"l"}, {true}, "r3"),
        assertStmt(pEq(pVar("r3"), pSome(pInt(10)))),
    };
    Clients.push_back(std::move(F));
  }

  // fn client_drain(): popping an emptied list yields None.
  {
    SafeFn F;
    F.Name = "client_drain";
    F.Body = {
        callStmt("LinkedList::new", {}, {}, "l"),
        letStmt("v", pInt(7)),
        callStmt("LinkedList::push_front", {"l", "v"}, {true, false}),
        callStmt("LinkedList::pop_front", {"l"}, {true}, "r1"),
        assertStmt(pEq(pVar("r1"), pSome(pInt(7)))),
        callStmt("LinkedList::pop_front", {"l"}, {true}, "r2"),
        assertStmt(pEq(pVar("r2"), pNone())),
        assertStmt(pEq(pVar("l"), pSeqEmpty())),
    };
    Clients.push_back(std::move(F));
  }

  // fn client_emptiness(): is_empty reads through the borrow without
  // disturbing the model (the (^self)@ == self@ half of its contract).
  {
    SafeFn F;
    F.Name = "client_emptiness";
    F.Body = {
        callStmt("LinkedList::new", {}, {}, "l"),
        callStmt("LinkedList::is_empty", {"l"}, {true}, "e1"),
        assertStmt(pEq(pVar("e1"), pBool(true))),
        letStmt("v", pInt(3)),
        callStmt("LinkedList::push_front", {"l", "v"}, {true, false}),
        callStmt("LinkedList::is_empty", {"l"}, {true}, "e2"),
        assertStmt(pEq(pVar("e2"), pBool(false))),
        // The model survived both is_empty calls.
        assertStmt(pEq(pVar("l"), pSeqCons(pInt(3), pSeqEmpty()))),
    };
    Clients.push_back(std::move(F));
  }

  return Clients;
}

SafeFn gilr::rustlib::makeBadClient() {
  // Pushing onto a list of *unknown* length cannot discharge the
  // self@.len() < usize::MAX precondition: verification must fail.
  SafeFn F;
  F.Name = "client_overflow_guard";
  F.Params = {"l"};
  F.Body = {
      letStmt("v", pInt(1)),
      callStmt("LinkedList::push_front", {"l", "v"}, {true, false}),
  };
  return F;
}

SafeFn gilr::rustlib::makeChainClient(unsigned Pushes) {
  SafeFn F;
  F.Name = "client_chain_" + std::to_string(Pushes);
  F.Body.push_back(callStmt("LinkedList::new", {}, {}, "l"));
  for (unsigned I = 0; I != Pushes; ++I) {
    std::string V = "v" + std::to_string(I);
    F.Body.push_back(letStmt(V, pInt(static_cast<__int128>(I))));
    F.Body.push_back(
        callStmt("LinkedList::push_front", {"l", V}, {true, false}));
  }
  for (unsigned I = Pushes; I != 0; --I) {
    std::string R = "r" + std::to_string(I);
    F.Body.push_back(callStmt("LinkedList::pop_front", {"l"}, {true}, R));
    F.Body.push_back(assertStmt(
        pEq(pVar(R), pSome(pInt(static_cast<__int128>(I - 1))))));
  }
  return F;
}
