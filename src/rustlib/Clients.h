//===- rustlib/Clients.h - Safe client programs for the hybrid demo --------===//
///
/// \file
/// Safe Rust client code using the LinkedList API, verified by the
/// Creusot-side verifier against the axiomatised Pearlite contracts — the
/// other half of the hybrid approach (§2.1). These clients never see the
/// list's real representation, only the sequence model (Fig. 1, left).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RUSTLIB_CLIENTS_H
#define GILR_RUSTLIB_CLIENTS_H

#include "creusot/SafeVerifier.h"

namespace gilr {
namespace rustlib {

/// The demo clients:
///  * client_push_pop — push two, pop returns the last pushed;
///  * client_fifo_order — LIFO order of three pushes;
///  * client_drain — pops until the model is empty;
///  * client_overflow_guard — a push that cannot discharge the length
///    precondition (expected to FAIL; exercised negatively in tests).
std::vector<creusot::SafeFn> makeClients();

/// A client whose verification must fail (missing precondition).
creusot::SafeFn makeBadClient();

/// A parametric chain of pushes/pops for the H1 scaling benchmark.
creusot::SafeFn makeChainClient(unsigned Pushes);

} // namespace rustlib
} // namespace gilr

#endif // GILR_RUSTLIB_CLIENTS_H
