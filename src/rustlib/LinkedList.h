//===- rustlib/LinkedList.h - The LinkedList case study (§2, §6) ----------===//
///
/// \file
/// The paper's evaluation target: the LinkedList<T> module of the Rust
/// standard library, written in RMIR (our stand-in for rustc MIR; see
/// DESIGN.md, Substitutions), together with
///
///  * the dllSeg ownership predicate of §3.3 and the Ownable impl of
///    LinkedList (Fig. 2),
///  * the two manually-declared, automatically-proven lemmas front_mut
///    needs (§4.3/§6): an existential-freezing lemma and a borrow
///    extraction lemma,
///  * #[show_safety] specs (E1) and Pearlite-encoded functional specs (E2).
///
/// Functions: new, push_front, pop_front, front_mut, push_front_node,
/// pop_front_node (the §6 set), plus is_empty and len_mut for coverage.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RUSTLIB_LINKEDLIST_H
#define GILR_RUSTLIB_LINKEDLIST_H

#include "engine/Verifier.h"
#include "hybrid/Driver.h"

#include <memory>

namespace gilr {
namespace rustlib {

/// Which specification family to register (the two experiments of §6).
enum class SpecMode {
  TypeSafety, ///< #[show_safety] expansions (E1).
  Functional, ///< Pearlite contracts encoded via §5.4 (E2).
};

/// A fully assembled verification universe for the LinkedList module.
struct LinkedListLib {
  rmir::Program Prog;
  gilsonite::PredTable Preds;
  gilsonite::SpecTable Specs;
  engine::LemmaTable Lemmas;
  Solver Solv;
  engine::Automation Auto;
  std::unique_ptr<gilsonite::OwnableRegistry> Ownables;
  creusot::PearliteSpecTable Contracts;

  // Interned type handles.
  rmir::TypeRef T = nullptr;          ///< The element type parameter.
  rmir::TypeRef NodeTy = nullptr;     ///< Node<T>.
  rmir::TypeRef NodePtr = nullptr;    ///< *mut Node<T>.
  rmir::TypeRef OptNodePtr = nullptr; ///< Option<*mut Node<T>>.
  rmir::TypeRef LLTy = nullptr;       ///< LinkedList<T>.
  rmir::TypeRef RefLL = nullptr;      ///< &mut LinkedList<T>.
  rmir::TypeRef RefT = nullptr;       ///< &mut T.
  rmir::TypeRef OptT = nullptr;       ///< Option<T>.
  rmir::TypeRef OptRefT = nullptr;    ///< Option<&mut T>.
  rmir::TypeRef Usize = nullptr;

  engine::VerifEnv env() {
    return engine::VerifEnv{Prog, Preds, Specs, *Ownables, Lemmas, Solv,
                            Auto, analysis::AnalysisConfig{}};
  }
};

/// Builds the library with the requested spec family registered. Predicate
/// modes are checked and the front_mut lemmas are verified during build
/// (their proofs are automatic, §6); failures abort.
std::unique_ptr<LinkedListLib> buildLinkedListLib(SpecMode Mode);

/// The E1 function set: type safety (§6 reports 0.16 s total).
std::vector<std::string> typeSafetyFunctions();

/// The E2 function set: functional correctness (§6 reports 0.18 s total).
std::vector<std::string> functionalFunctions();

/// All verified functions (the two sets plus the coverage extras).
std::vector<std::string> allFunctions();

/// Registers deliberately *buggy* variants of push_front_node (with
/// #[show_safety] specs) whose verification must fail — the negative half
/// of the evaluation:
///   push_front_node_noprev — forgets (*old).prev = Some(node): the
///     back-edge invariant of dllSeg breaks;
///   push_front_node_cycle  — links the new node to itself (the Fig. 7
///     cycle: a client could then double-free);
///   push_front_node_nolen  — forgets the length update: len = |repr|
///     breaks.
/// Returns their names.
std::vector<std::string> registerBuggyVariants(LinkedListLib &L);

} // namespace rustlib
} // namespace gilr

#endif // GILR_RUSTLIB_LINKEDLIST_H
