//===- rustlib/Vec.cpp ------------------------------------------------------------===//

#include "rustlib/Vec.h"

#include "heap/Projection.h"
#include "rmir/Builder.h"
#include "support/Diagnostics.h"

#include "sym/ExprBuilder.h"

using namespace gilr;
using namespace gilr::rustlib;
using namespace gilr::rmir;
using namespace gilr::gilsonite;

std::vector<std::string> gilr::rustlib::vecFunctions() {
  return {"Vec::push_raw", "Vec::pop_raw", "Vec::get_raw", "Vec::set_raw"};
}

/// Builds the pointer expression buf.offset(count).
static Expr bufAt(rmir::TypeRef T, const Expr &Count) {
  return heap::appendProjElem(mkVar("buf", Sort::Tuple),
                              heap::ProjElem::offset(T, Count));
}

/// fn push_raw(buf: *mut T, len: usize, cap: usize, x: T) -> usize —
/// the Fig. 5 write: *buf.add(len) = x; len + 1.
static Function buildPushRaw(VecLib &L) {
  FunctionBuilder B("Vec::push_raw", L.Prog.Types);
  B.addTypeParam("T");
  LocalId Buf = B.addParam("buf", L.PtrT);
  LocalId Len = B.addParam("len", L.Usize);
  B.addParam("cap", L.Usize);
  LocalId X = B.addParam("x", L.T);
  B.setReturnType(L.Usize);
  LocalId Tmp = B.addLocal("tmp", L.PtrT);

  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(Tmp), Rvalue::ptrOffset(Operand::copy(Place(Buf)),
                                         Operand::copy(Place(Len))));
  B.assign(Place(Tmp).deref(), Rvalue::use(Operand::move(Place(X))));
  B.assign(Place(0),
           Rvalue::binary(BinOp::Add, Operand::copy(Place(Len)),
                          Operand::constant(mkInt(1), L.Usize)));
  B.ret();
  return B.finish();
}

/// fn pop_raw(buf: *mut T, len: usize) -> T — move the last element out,
/// deinitialising its slot (the dual of the Fig. 5 write).
static Function buildPopRaw(VecLib &L) {
  FunctionBuilder B("Vec::pop_raw", L.Prog.Types);
  B.addTypeParam("T");
  LocalId Buf = B.addParam("buf", L.PtrT);
  LocalId Len = B.addParam("len", L.Usize);
  B.setReturnType(L.T);
  LocalId Tmp = B.addLocal("tmp", L.PtrT);
  LocalId Last = B.addLocal("last", L.Usize);

  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(Last),
           Rvalue::binary(BinOp::Sub, Operand::copy(Place(Len)),
                          Operand::constant(mkInt(1), L.Usize)));
  B.assign(Place(Tmp), Rvalue::ptrOffset(Operand::copy(Place(Buf)),
                                         Operand::copy(Place(Last))));
  B.assign(Place(0), Rvalue::use(Operand::move(Place(Tmp).deref())));
  B.ret();
  return B.finish();
}

/// fn get_raw(buf: *mut T, len: usize, i: usize) -> T (T: Copy).
static Function buildGetRaw(VecLib &L) {
  FunctionBuilder B("Vec::get_raw", L.Prog.Types);
  B.addTypeParam("T");
  LocalId Buf = B.addParam("buf", L.PtrT);
  B.addParam("len", L.Usize);
  LocalId I = B.addParam("i", L.Usize);
  B.setReturnType(L.T);
  LocalId Tmp = B.addLocal("tmp", L.PtrT);

  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(Tmp), Rvalue::ptrOffset(Operand::copy(Place(Buf)),
                                         Operand::copy(Place(I))));
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(Tmp).deref())));
  B.ret();
  return B.finish();
}

/// fn set_raw(buf: *mut T, len: usize, i: usize, x: T).
static Function buildSetRaw(VecLib &L) {
  FunctionBuilder B("Vec::set_raw", L.Prog.Types);
  B.addTypeParam("T");
  LocalId Buf = B.addParam("buf", L.PtrT);
  B.addParam("len", L.Usize);
  LocalId I = B.addParam("i", L.Usize);
  LocalId X = B.addParam("x", L.T);
  B.setReturnType(L.Prog.Types.unitTy());
  LocalId Tmp = B.addLocal("tmp", L.PtrT);

  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(Tmp), Rvalue::ptrOffset(Operand::copy(Place(Buf)),
                                         Operand::copy(Place(I))));
  B.assign(Place(Tmp).deref(), Rvalue::use(Operand::move(Place(X))));
  B.ret();
  return B.finish();
}

std::unique_ptr<VecLib> gilr::rustlib::buildVecLib() {
  auto L = std::make_unique<VecLib>();
  L->Ownables = std::make_unique<OwnableRegistry>(L->Prog.Types, L->Preds);
  TyCtx &Ty = L->Prog.Types;
  L->T = Ty.param("T");
  L->PtrT = Ty.rawPtr(L->T);
  L->Usize = Ty.usize();

  auto addFn = [&](Function F) {
    std::string Name = F.Name;
    L->Prog.Funcs.emplace(std::move(Name), std::move(F));
  };
  addFn(buildPushRaw(*L));
  addFn(buildPopRaw(*L));
  addFn(buildGetRaw(*L));
  addFn(buildSetRaw(*L));

  Expr Buf = mkVar("buf", Sort::Tuple);
  Expr Len = mkVar("len", Sort::Int);
  Expr Cap = mkVar("cap", Sort::Int);
  Expr I = mkVar("i", Sort::Int);
  Expr X = mkVar("x", Sort::Any);
  Expr S = mkVar("s$", Sort::Seq);
  Expr UsizeMax = mkInt(rmir::intMaxValue(rmir::IntKind::USize));

  // push_raw spec:
  //   { buf |->_[T; len] s * buf+len |->_[T; cap-len] uninit
  //     * 0 <= len < cap <= usize::MAX }
  //   push_raw(buf, len, cap, x)
  //   { ret = len + 1 * buf |->_[T; len+1] (s ++ [x])
  //     * buf+(len+1) |->_[T; cap-(len+1)] uninit }
  {
    Spec Sp;
    Sp.Func = "Vec::push_raw";
    Sp.Doc = "Fig. 5: laid-out write with spare capacity";
    Sp.SpecVars = {Binder{"s$", Sort::Seq}};
    Sp.Pre = star(
        {pure(mkLe(mkInt(0), Len)), pure(mkLt(Len, Cap)),
         pure(mkLe(Cap, UsizeMax)),
         arrayPT(Buf, L->T, Len, S),
         arrayUninit(bufAt(L->T, Len), L->T, mkSub(Cap, Len))});
    Expr Len1 = mkAdd(Len, mkInt(1));
    Sp.Post = star(
        {pure(mkEq(mkVar(retVarName(), Sort::Int), Len1)),
         arrayPT(Buf, L->T, Len1, mkSeqConcat(S, mkSeqUnit(X))),
         arrayUninit(bufAt(L->T, Len1), L->T, mkSub(Cap, Len1))});
    L->Specs.add(std::move(Sp));
  }

  // pop_raw spec: the last slot is moved out of and becomes uninitialised.
  {
    Spec Sp;
    Sp.Func = "Vec::pop_raw";
    Sp.Doc = "move-out of a laid-out slot (deinitialisation, §3.2)";
    Sp.SpecVars = {Binder{"s$", Sort::Seq}};
    Sp.Pre = star({pure(mkLt(mkInt(0), Len)), pure(mkLe(Len, UsizeMax)),
                   arrayPT(Buf, L->T, Len, S)});
    Expr Len1 = mkSub(Len, mkInt(1));
    Sp.Post = star(
        {pure(mkEq(mkVar(retVarName(), Sort::Any), mkSeqNth(S, Len1))),
         arrayPT(Buf, L->T, Len1, mkSeqSub(S, mkInt(0), Len1)),
         arrayUninit(bufAt(L->T, Len1), L->T, mkInt(1))});
    L->Specs.add(std::move(Sp));
  }

  // get_raw spec: reading element i leaves the array intact.
  {
    Spec Sp;
    Sp.Func = "Vec::get_raw";
    Sp.Doc = "laid-out split + read + reassembly";
    Sp.SpecVars = {Binder{"s$", Sort::Seq}};
    Sp.Pre = star({pure(mkLe(mkInt(0), I)), pure(mkLt(I, Len)),
                   pure(mkLe(Len, UsizeMax)),
                   arrayPT(Buf, L->T, Len, S)});
    Sp.Post = star({pure(mkEq(mkVar(retVarName(), Sort::Any),
                              mkSeqNth(S, I))),
                    arrayPT(Buf, L->T, Len, S)});
    L->Specs.add(std::move(Sp));
  }

  // set_raw spec: in-bounds overwrite.
  {
    Spec Sp;
    Sp.Func = "Vec::set_raw";
    Sp.Doc = "laid-out in-bounds overwrite";
    Sp.SpecVars = {Binder{"s$", Sort::Seq}};
    Sp.Pre = star({pure(mkLe(mkInt(0), I)), pure(mkLt(I, Len)),
                   pure(mkLe(Len, UsizeMax)),
                   arrayPT(Buf, L->T, Len, S)});
    Expr I1 = mkAdd(I, mkInt(1));
    Sp.Post = star({arrayPT(Buf, L->T, Len,
                            mkSeqConcat({mkSeqSub(S, mkInt(0), I),
                                         mkSeqUnit(X),
                                         mkSeqSub(S, I1, mkSub(Len, I1))}))});
    L->Specs.add(std::move(Sp));
  }

  return L;
}
