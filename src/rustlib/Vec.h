//===- rustlib/Vec.h - The Vec push case study (Fig. 5) --------------------===//
///
/// \file
/// The second case study: the raw-buffer push path at the core of the Rust
/// vector type, exercising *laid-out nodes* end-to-end (Fig. 5 of the
/// paper: isolate the region at offset len, overwrite it, reassemble).
/// Functions operate on a raw buffer with explicit length/capacity and are
/// specified directly in Gilsonite with array points-to assertions.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RUSTLIB_VEC_H
#define GILR_RUSTLIB_VEC_H

#include "engine/Verifier.h"

#include <memory>

namespace gilr {
namespace rustlib {

/// The Vec verification universe.
struct VecLib {
  rmir::Program Prog;
  gilsonite::PredTable Preds;
  gilsonite::SpecTable Specs;
  engine::LemmaTable Lemmas;
  Solver Solv;
  engine::Automation Auto;
  std::unique_ptr<gilsonite::OwnableRegistry> Ownables;

  rmir::TypeRef T = nullptr;    ///< Element type parameter.
  rmir::TypeRef PtrT = nullptr; ///< *mut T.
  rmir::TypeRef Usize = nullptr;

  engine::VerifEnv env() {
    return engine::VerifEnv{Prog, Preds, Specs, *Ownables, Lemmas, Solv,
                            Auto, analysis::AnalysisConfig{}};
  }
};

/// Builds the library with its Gilsonite specs:
///   vec_push_raw(buf, len, cap, x) -> usize   (the Fig. 5 write)
///   vec_get_raw(buf, len, i) -> T             (split + read + reassemble)
///   vec_set_raw(buf, len, i, x)               (in-bounds overwrite)
std::unique_ptr<VecLib> buildVecLib();

/// The verified function list.
std::vector<std::string> vecFunctions();

} // namespace rustlib
} // namespace gilr

#endif // GILR_RUSTLIB_VEC_H
