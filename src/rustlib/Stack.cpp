//===- rustlib/Stack.cpp ----------------------------------------------------------===//

#include "rustlib/Stack.h"

#include "gilsonite/ModeCheck.h"
#include "heap/Projection.h"
#include "rmir/Builder.h"
#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "sym/ExprBuilder.h"

using namespace gilr;
using namespace gilr::rustlib;
using namespace gilr::rmir;
using namespace gilr::gilsonite;

std::vector<std::string> gilr::rustlib::stackFunctions() {
  return {"Stack::new", "Stack::push", "Stack::pop", "Stack::peek_mut",
          "Stack::is_empty"};
}

//===----------------------------------------------------------------------===//
// Types and predicates
//===----------------------------------------------------------------------===//

static void declareTypes(StackLib &L) {
  TyCtx &Ty = L.Prog.Types;
  L.T = Ty.param("T");
  L.Usize = Ty.usize();
  TypeRef NodeFwd = Ty.declareStructForward("StackNode<T>");
  L.NodePtr = Ty.rawPtr(NodeFwd);
  L.OptNodePtr = Ty.optionOf(L.NodePtr);
  Ty.defineStructFields(NodeFwd, {FieldDef{"elem", L.T},
                                  FieldDef{"next", L.OptNodePtr}});
  L.NodeTy = NodeFwd;
  L.StackTy = Ty.declareStruct("Stack<T>", {FieldDef{"head", L.OptNodePtr},
                                            FieldDef{"len", L.Usize}});
  L.RefStack = Ty.mutRef(L.StackTy);
  L.RefT = Ty.mutRef(L.T);
  L.OptT = Ty.optionOf(L.T);
  L.OptRefT = Ty.optionOf(L.RefT);
}

static void declarePredicates(StackLib &L) {
  OwnableRegistry &Own = *L.Ownables;
  std::string OwnT = Own.ownPred(L.T);

  // sllSeg(h, r, 'k): the singly-linked list segment from h to None.
  {
    PredDecl D;
    D.Name = "sllSeg";
    D.Params = {PredParam{"h", Sort::Opt, true},
                PredParam{"r", Sort::Seq, false},
                PredParam{"'k", Sort::Lft, true}};
    Expr H = mkVar("h", Sort::Opt);
    Expr R = mkVar("r", Sort::Seq);
    Expr K = mkVar("'k", Sort::Lft);
    AssertionP Empty =
        star({pure(mkEq(H, mkNone())), pure(mkEq(R, mkSeqNil()))});
    Expr HP = mkVar("h'?", Sort::Any);
    Expr V = mkVar("v?", Sort::Any);
    Expr Z = mkVar("z?", Sort::Opt);
    Expr RV = mkVar("rv?", Sort::Any);
    Expr RT = mkVar("r'?", Sort::Seq);
    AssertionP Cons = exists(
        {Binder{"h'?", Sort::Any}, Binder{"v?", Sort::Any},
         Binder{"z?", Sort::Opt}, Binder{"rv?", Sort::Any},
         Binder{"r'?", Sort::Seq}},
        star({pure(mkEq(H, mkSome(HP))),
              pointsTo(HP, L.NodeTy, mkTuple({V, Z})),
              predCall(OwnT, {V, RV, K}),
              predCall("sllSeg", {Z, RT, K}),
              pure(mkEq(R, mkSeqCons(RV, RT)))}));
    D.Clauses = {Empty, Cons};
    L.Preds.declare(std::move(D));
  }

  // impl Ownable for Stack<T>:
  //   own(self, repr, 'k) := sllSeg(self.head, repr, 'k)
  //                          * self.len = |repr|.
  {
    Expr Self = mkVar("self", Sort::Tuple);
    Expr Repr = mkVar("repr", Sort::Seq);
    Expr K = mkVar("'k", Sort::Lft);
    Own.registerUserImpl(
        L.StackTy,
        {star({predCall("sllSeg", {mkTupleGet(Self, 0), Repr, K}),
               pure(mkEq(mkTupleGet(Self, 1), mkSeqLen(Repr)))})});
  }

  Own.ownPred(L.RefStack);
  Own.ownPred(L.RefT);
  Own.ownPred(L.OptT);
  Own.ownPred(L.OptRefT);
  Own.ownPred(L.Usize);
  Own.ownPred(L.Prog.Types.boolTy());

  // Frozen variant for peek_mut's extraction (mirrors frozen$LL).
  {
    PredDecl D;
    D.Name = "frozen$Stack";
    D.Params = {PredParam{"p", Sort::Any, true},
                PredParam{"x", Sort::Any, true},
                PredParam{"v", Sort::Tuple, false}};
    D.Guardable = true;
    Expr P = mkVar("p", Sort::Any);
    Expr X = mkVar("x", Sort::Any);
    Expr V = mkVar("v", Sort::Tuple);
    Expr A = mkVar("a?", Sort::Any);
    D.Clauses = {exists(
        {Binder{"a?", Sort::Any}},
        star({pointsTo(P, L.StackTy, V),
              predCall(OwnableRegistry::ownPredName(L.StackTy),
                       {V, A, mkVar(kappaBinderName(), Sort::Lft)}),
              prophCtrl(X, A)}))};
    L.Preds.declare(std::move(D));
  }

  std::vector<std::string> Errors = checkAllModes(L.Preds);
  if (!Errors.empty())
    fatalError("Stack predicate mode errors:\n" + join(Errors, "\n"));
}

static void registerLemmas(StackLib &L) {
  engine::VerifEnv Env = L.env();

  engine::FreezeLemma Freeze;
  Freeze.Name = "stack_freeze";
  Freeze.FromPred = OwnableRegistry::mutRefInnerName(L.StackTy);
  Freeze.ToPred = "frozen$Stack";
  Outcome<Unit> FR = L.Lemmas.registerFreeze(Freeze, Env);
  if (!FR.ok())
    fatalError("stack freeze lemma proof failed: " +
               (FR.failed() ? FR.error() : "vanished"));

  engine::ExtractLemma Extract;
  Extract.Name = "stack_extract_top";
  Extract.Params = {"r", "p", "x", "v"};
  Extract.GivenParams = 1;
  Extract.MutRefParams = {"r"};
  Extract.FromPred = "frozen$Stack";
  Extract.FromArgs = {mkVar("p", Sort::Any), mkVar("x", Sort::Any),
                      mkVar("v", Sort::Tuple)};
  Expr V = mkVar("v", Sort::Tuple);
  Expr ElemPtr = heap::appendProjElem(mkUnwrap(mkTupleGet(V, 0)),
                                      heap::ProjElem::field(L.NodeTy, 0));
  Extract.Persistent = mkIsSome(mkTupleGet(V, 0));
  Extract.Requires = mkEq(mkTupleGet(mkVar("r", Sort::Tuple), 0), ElemPtr);
  Extract.ToPred = OwnableRegistry::mutRefInnerName(L.T);
  Extract.ToArgs = {ElemPtr, mkTupleGet(mkVar("r", Sort::Tuple), 1)};
  Extract.NewProphecyHole = "r";
  Outcome<Unit> ER = L.Lemmas.registerExtract(Extract, Env);
  if (!ER.ok())
    fatalError("stack extraction lemma proof failed: " +
               (ER.failed() ? ER.error() : "vanished"));
}

//===----------------------------------------------------------------------===//
// RMIR bodies
//===----------------------------------------------------------------------===//

/// fn new() -> Stack<T>.
static Function buildNew(StackLib &L) {
  FunctionBuilder B("Stack::new", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  B.setReturnType(L.StackTy);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0),
           Rvalue::aggregate(L.StackTy, 0,
                             {Operand::constant(mkNone(), L.OptNodePtr),
                              Operand::constant(mkInt(0), L.Usize)}));
  B.ret();
  return B.finish();
}

/// fn push(&mut self, x: T).
static Function buildPush(StackLib &L) {
  FunctionBuilder B("Stack::push", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefStack);
  LocalId X = B.addParam("x", L.T);
  B.setReturnType(L.Prog.Types.unitTy());
  LocalId Node = B.addLocal("node", L.NodePtr);
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId Len0 = B.addLocal("len0", L.Usize);
  LocalId Len1 = B.addLocal("len1", L.Usize);

  Place SelfHead = Place(Self).deref().field(0);
  Place SelfLen = Place(Self).deref().field(1);

  BlockId E = B.newBlock();
  B.atBlock(E);
  B.mutrefAutoResolve(Operand::copy(Place(Self)));
  B.assign(Place(Head0), Rvalue::use(Operand::copy(SelfHead)));
  B.alloc(Place(Node), L.NodeTy);
  B.assign(Place(Node).deref(),
           Rvalue::aggregate(L.NodeTy, 0, {Operand::move(Place(X)),
                                           Operand::copy(Place(Head0))}));
  B.assign(SelfHead,
           Rvalue::aggregate(L.OptNodePtr, 1, {Operand::copy(Place(Node))}));
  B.assign(Place(Len0), Rvalue::use(Operand::copy(SelfLen)));
  B.assign(Place(Len1),
           Rvalue::binary(BinOp::Add, Operand::copy(Place(Len0)),
                          Operand::constant(mkInt(1), L.Usize)));
  B.assign(SelfLen, Rvalue::use(Operand::copy(Place(Len1))));
  B.ret();
  return B.finish();
}

/// fn pop(&mut self) -> Option<T>.
static Function buildPop(StackLib &L) {
  FunctionBuilder B("Stack::pop", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefStack);
  B.setReturnType(L.OptT);
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId Node = B.addLocal("node", L.NodePtr);
  LocalId Elem = B.addLocal("elem", L.T);
  LocalId Next = B.addLocal("next", L.OptNodePtr);
  LocalId D0 = B.addLocal("d0", L.Usize);
  LocalId Len0 = B.addLocal("len0", L.Usize);
  LocalId Len1 = B.addLocal("len1", L.Usize);

  Place SelfHead = Place(Self).deref().field(0);
  Place SelfLen = Place(Self).deref().field(1);

  BlockId Entry = B.newBlock();
  BlockId IsNone = B.newBlock();
  BlockId IsSome = B.newBlock();

  B.atBlock(Entry);
  B.mutrefAutoResolve(Operand::copy(Place(Self)));
  B.assign(Place(Head0), Rvalue::use(Operand::copy(SelfHead)));
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, IsNone}}, IsSome);

  B.atBlock(IsNone);
  B.assign(Place(0), Rvalue::aggregate(L.OptT, 0, {}));
  B.ret();

  B.atBlock(IsSome);
  B.assign(Place(Node),
           Rvalue::use(Operand::copy(Place(Head0).downcast(1).field(0))));
  B.assign(Place(Elem),
           Rvalue::use(Operand::move(Place(Node).deref().field(0))));
  B.assign(Place(Next),
           Rvalue::use(Operand::copy(Place(Node).deref().field(1))));
  B.assign(SelfHead, Rvalue::use(Operand::copy(Place(Next))));
  B.free(Operand::copy(Place(Node)), L.NodeTy);
  B.assign(Place(Len0), Rvalue::use(Operand::copy(SelfLen)));
  B.assign(Place(Len1),
           Rvalue::binary(BinOp::Sub, Operand::copy(Place(Len0)),
                          Operand::constant(mkInt(1), L.Usize)));
  B.assign(SelfLen, Rvalue::use(Operand::copy(Place(Len1))));
  B.assign(Place(0),
           Rvalue::aggregate(L.OptT, 1, {Operand::move(Place(Elem))}));
  B.ret();
  return B.finish();
}

/// fn peek_mut(&mut self) -> Option<&mut T> — the extraction case.
static Function buildPeekMut(StackLib &L) {
  FunctionBuilder B("Stack::peek_mut", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefStack);
  B.setReturnType(L.OptRefT);
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId Node = B.addLocal("node", L.NodePtr);
  LocalId R = B.addLocal("r", L.RefT);
  LocalId D0 = B.addLocal("d0", L.Usize);

  BlockId Entry = B.newBlock();
  BlockId IsNone = B.newBlock();
  BlockId IsSome = B.newBlock();

  B.atBlock(Entry);
  B.assign(Place(Head0),
           Rvalue::use(Operand::copy(Place(Self).deref().field(0))));
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, IsNone}}, IsSome);

  B.atBlock(IsNone);
  B.assign(Place(0), Rvalue::aggregate(L.OptRefT, 0, {}));
  B.ret();

  B.atBlock(IsSome);
  B.assign(Place(Node),
           Rvalue::use(Operand::copy(Place(Head0).downcast(1).field(0))));
  B.assign(Place(R), Rvalue::refOf(Place(Node).deref().field(0)));
  B.applyLemma("stack_freeze", {});
  B.applyLemma("stack_extract_top", {Operand::copy(Place(R))});
  B.assign(Place(0),
           Rvalue::aggregate(L.OptRefT, 1, {Operand::copy(Place(R))}));
  B.ret();
  return B.finish();
}

/// fn is_empty(&mut self) -> bool.
static Function buildIsEmpty(StackLib &L) {
  FunctionBuilder B("Stack::is_empty", L.Prog.Types);
  B.addTypeParam("T");
  B.addLifetime("'a");
  LocalId Self = B.addParam("self", L.RefStack);
  B.setReturnType(L.Prog.Types.boolTy());
  LocalId Head0 = B.addLocal("head0", L.OptNodePtr);
  LocalId D0 = B.addLocal("d0", L.Usize);

  BlockId Entry = B.newBlock();
  BlockId IsNone = B.newBlock();
  BlockId IsSome = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(Head0),
           Rvalue::use(Operand::copy(Place(Self).deref().field(0))));
  B.assign(Place(D0), Rvalue::discriminant(Place(Head0)));
  B.switchInt(Operand::copy(Place(D0)), {{0, IsNone}}, IsSome);
  B.atBlock(IsNone);
  B.assign(Place(0),
           Rvalue::use(Operand::constant(mkTrue(), L.Prog.Types.boolTy())));
  B.ret();
  B.atBlock(IsSome);
  B.assign(Place(0),
           Rvalue::use(Operand::constant(mkFalse(), L.Prog.Types.boolTy())));
  B.ret();
  return B.finish();
}

//===----------------------------------------------------------------------===//
// Contracts and assembly
//===----------------------------------------------------------------------===//

static creusot::PearliteSpecTable makeStackContracts() {
  using namespace gilr::creusot;
  PearliteSpecTable T;
  __int128 UsizeMax = rmir::intMaxValue(rmir::IntKind::USize);
  {
    PearliteSpec S;
    S.Func = "Stack::new";
    S.HasResult = true;
    S.Post = pEq(pModel(pResult()), pSeqEmpty());
    S.Doc = "#[ensures(result@ == Seq::EMPTY)]";
    T.add(std::move(S));
  }
  {
    PearliteSpec S;
    S.Func = "Stack::push";
    S.Params = {{"self", true}, {"x", false}};
    S.Pre = pLt(pSeqLen(pModel(pVar("self"))), pInt(UsizeMax));
    S.Post = pEq(pModel(pFinal(pVar("self"))),
                 pSeqCons(pVar("x"), pModel(pVar("self"))));
    S.Doc = "#[ensures((^self)@ == Seq::cons(x@, self@))]";
    T.add(std::move(S));
  }
  {
    PearliteSpec S;
    S.Func = "Stack::pop";
    S.Params = {{"self", true}};
    S.HasResult = true;
    S.Post = pMatchOpt(
        pResult(),
        pAnd(pEq(pModel(pVar("self")), pSeqEmpty()),
             pEq(pModel(pFinal(pVar("self"))), pSeqEmpty())),
        "x",
        pEq(pModel(pVar("self")),
            pSeqCons(pVar("x"), pModel(pFinal(pVar("self"))))));
    S.Doc = "#[ensures(match result { ... })], as for LinkedList::pop_front";
    T.add(std::move(S));
  }
  return T;
}

std::unique_ptr<StackLib> gilr::rustlib::buildStackLib(StackSpecMode Mode) {
  auto L = std::make_unique<StackLib>();
  L->Ownables = std::make_unique<OwnableRegistry>(L->Prog.Types, L->Preds);

  declareTypes(*L);
  declarePredicates(*L);

  auto addFn = [&](Function F) {
    std::string Name = F.Name;
    L->Prog.Funcs.emplace(std::move(Name), std::move(F));
  };
  addFn(buildNew(*L));
  addFn(buildPush(*L));
  addFn(buildPop(*L));
  addFn(buildPeekMut(*L));
  addFn(buildIsEmpty(*L));

  L->Contracts = makeStackContracts();

  if (Mode == StackSpecMode::TypeSafety) {
    for (const std::string &Name : stackFunctions())
      L->Specs.add(L->Ownables->makeShowSafetySpec(*L->Prog.lookup(Name)));
    L->Auto.PanicsAllowed = true;
  } else {
    engine::VerifEnv Env = L->env();
    hybrid::HybridDriver Driver(Env, L->Contracts);
    for (const std::string &Name :
         {std::string("Stack::new"), std::string("Stack::push"),
          std::string("Stack::pop")}) {
      Outcome<Unit> R = Driver.encodeAndRegister(Name);
      if (!R.ok())
        fatalError("encoding Stack contract of " + Name + ": " + R.error());
    }
    for (const std::string &Name :
         {std::string("Stack::peek_mut"), std::string("Stack::is_empty")})
      L->Specs.add(L->Ownables->makeShowSafetySpec(*L->Prog.lookup(Name)));
    L->Auto.PanicsAllowed = false;
  }

  registerLemmas(*L);
  return L;
}
