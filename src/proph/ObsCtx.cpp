//===- proph/ObsCtx.cpp ---------------------------------------------------------===//

#include "proph/ObsCtx.h"

#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::proph;

Outcome<Unit> ObsCtx::produce(const Expr &Psi, Solver &S,
                              const PathCondition &PC) {
  std::vector<Expr> All = PC.facts();
  for (const Expr &F : Obs.facts())
    All.push_back(F);
  All.push_back(Psi);
  if (S.checkSat(All) == SatResult::Unsat)
    return Outcome<Unit>::vanish(); // Inconsistent observation: assume False.
  Obs.add(Psi);
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> ObsCtx::consume(const Expr &Psi, Solver &S,
                              const PathCondition &PC) {
  std::vector<Expr> Ctx = PC.facts();
  for (const Expr &F : Obs.facts())
    Ctx.push_back(F);
  if (!S.entails(Ctx, Psi))
    return Outcome<Unit>::failure("observation not entailed: " +
                                  exprToString(Psi));
  return Outcome<Unit>::success(Unit());
}

std::string ObsCtx::dump() const {
  std::string Out;
  for (const Expr &F : Obs.facts())
    Out += "<" + exprToString(F) + ">\n";
  return Out;
}
