//===- proph/ObsCtx.h - The observation context φ (§5.2, Fig. 10) ---------===//
///
/// \file
/// Observations ⟨ψ⟩ are RustHornBelt's "second layer of truth" recording
/// facts about prophecy variables without letting knowledge of the future
/// leak into the separation logic. The key idea of the paper (§5.2) is that
/// observations are *a secondary path condition*: producing ⟨ψ⟩ conjoins ψ
/// after a satisfiability check (Obs-Merge + Proph-Sat), and consuming ⟨ψ⟩
/// checks entailment from the path condition plus the current observation
/// (Proph-True: the ordinary path condition may flow into the prophetic
/// world, never the other way).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_PROPH_OBSCTX_H
#define GILR_PROPH_OBSCTX_H

#include "solver/PathCondition.h"
#include "support/Outcome.h"
#include "sym/Expr.h"

namespace gilr {
namespace proph {

/// The observation context.
class ObsCtx {
public:
  /// Observation-Produce: requires π /\ φ /\ ψ satisfiable; conjoins ψ.
  /// An unsatisfiable combination vanishes the branch.
  Outcome<Unit> produce(const Expr &Psi, Solver &S, const PathCondition &PC);

  /// Observation-Consume: (π /\ φ) => ψ must be valid. Observations are
  /// duplicable knowledge: consumption does not modify φ.
  Outcome<Unit> consume(const Expr &Psi, Solver &S, const PathCondition &PC);

  /// The recorded observation facts.
  const std::vector<Expr> &facts() const { return Obs.facts(); }

  std::string dump() const;

private:
  PathCondition Obs;
};

} // namespace proph
} // namespace gilr

#endif // GILR_PROPH_OBSCTX_H
