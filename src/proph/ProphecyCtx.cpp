//===- proph/ProphecyCtx.cpp ------------------------------------------------------===//

#include "proph/ProphecyCtx.h"

#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::proph;

Outcome<Unit> ProphecyCtx::produceVO(const std::string &X, const Expr &A,
                                     Solver &S, PathCondition &PC) {
  auto It = Map.find(X);
  if (It == Map.end()) {
    // VObs-Produce-Without-Controller.
    Map.emplace(X, Entry{A, /*VO=*/true, /*PC=*/false});
    return Outcome<Unit>::success(Unit());
  }
  if (It->second.VO)
    return Outcome<Unit>::vanish(); // Duplicate observer.
  // VObs-Produce-With-Controller: Mut-Agree equates the values.
  It->second.VO = true;
  if (!PC.add(mkEq(A, It->second.Value)))
    return Outcome<Unit>::vanish();
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> ProphecyCtx::producePC(const std::string &X, const Expr &A,
                                     Solver &S, PathCondition &PC) {
  auto It = Map.find(X);
  if (It == Map.end()) {
    Map.emplace(X, Entry{A, /*VO=*/false, /*PC=*/true});
    return Outcome<Unit>::success(Unit());
  }
  if (It->second.PC)
    return Outcome<Unit>::vanish(); // Duplicate controller.
  It->second.PC = true;
  if (!PC.add(mkEq(A, It->second.Value)))
    return Outcome<Unit>::vanish();
  return Outcome<Unit>::success(Unit());
}

Outcome<Expr> ProphecyCtx::consumeVO(const std::string &X) {
  auto It = Map.find(X);
  if (It == Map.end() || !It->second.VO)
    return Outcome<Expr>::failure("value observer for " + X + " not owned");
  Expr V = It->second.Value;
  It->second.VO = false;
  if (!It->second.PC)
    Map.erase(It);
  return Outcome<Expr>::success(V);
}

Outcome<Expr> ProphecyCtx::consumePC(const std::string &X) {
  auto It = Map.find(X);
  if (It == Map.end() || !It->second.PC)
    return Outcome<Expr>::failure("prophecy controller for " + X +
                                  " not owned");
  Expr V = It->second.Value;
  It->second.PC = false;
  if (!It->second.VO)
    Map.erase(It);
  return Outcome<Expr>::success(V);
}

Outcome<Unit> ProphecyCtx::update(const std::string &X, const Expr &NewValue) {
  auto It = Map.find(X);
  if (It == Map.end() || !It->second.VO || !It->second.PC)
    return Outcome<Unit>::failure(
        "Mut-Update requires both the observer and controller of " + X);
  It->second.Value = NewValue;
  return Outcome<Unit>::success(Unit());
}

std::optional<Expr> ProphecyCtx::currentValue(const std::string &X) const {
  auto It = Map.find(X);
  if (It == Map.end())
    return std::nullopt;
  return It->second.Value;
}

bool ProphecyCtx::hasVO(const std::string &X) const {
  auto It = Map.find(X);
  return It != Map.end() && It->second.VO;
}

bool ProphecyCtx::hasPC(const std::string &X) const {
  auto It = Map.find(X);
  return It != Map.end() && It->second.PC;
}

std::string ProphecyCtx::dump() const {
  std::string Out;
  for (const auto &[X, E] : Map) {
    Out += X + " -> (" + exprToString(E.Value) + ", VO=" +
           (E.VO ? "1" : "0") + ", PC=" + (E.PC ? "1" : "0") + ")\n";
  }
  return Out;
}
