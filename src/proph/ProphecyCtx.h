//===- proph/ProphecyCtx.h - Value observers / prophecy controllers (§5.3) -===//
///
/// \file
/// The prophecy context χ : PcyVar -> (value, hasVO, hasPC) implements
/// RustHornBelt's paired resources VO_x(a) (value observer) and PC_x(a)
/// (prophecy controller) as a custom resource algebra (Fig. 11):
///
/// * producing the missing half against the present half automates
///   Mut-Agree (the values are equated in the path condition);
/// * producing an already-present half is a duplicate resource (vanish);
/// * Mut-Update rewrites the tracked value when both halves are present.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_PROPH_PROPHECYCTX_H
#define GILR_PROPH_PROPHECYCTX_H

#include "solver/PathCondition.h"
#include "support/Outcome.h"
#include "sym/Expr.h"

#include <map>
#include <string>

namespace gilr {
namespace proph {

/// The prophecy context χ.
class ProphecyCtx {
public:
  /// Produces VO_x(a) (Fig. 11, both rules).
  Outcome<Unit> produceVO(const std::string &X, const Expr &A, Solver &S,
                          PathCondition &PC);
  /// Produces PC_x(a).
  Outcome<Unit> producePC(const std::string &X, const Expr &A, Solver &S,
                          PathCondition &PC);

  /// Consumes VO_x; returns the tracked current value.
  Outcome<Expr> consumeVO(const std::string &X);
  /// Consumes PC_x; returns the tracked current value.
  Outcome<Expr> consumePC(const std::string &X);

  /// Mut-Update: requires both halves present; replaces the tracked value.
  Outcome<Unit> update(const std::string &X, const Expr &NewValue);

  /// The tracked current value of prophecy x, if known here.
  std::optional<Expr> currentValue(const std::string &X) const;

  bool hasVO(const std::string &X) const;
  bool hasPC(const std::string &X) const;

  std::string dump() const;

private:
  struct Entry {
    Expr Value;
    bool VO = false;
    bool PC = false;
  };
  std::map<std::string, Entry> Map;
};

} // namespace proph
} // namespace gilr

#endif // GILR_PROPH_PROPHECYCTX_H
