//===- gilsonite/Parser.cpp -------------------------------------------------------===//

#include "gilsonite/Parser.h"

#include "support/StringUtils.h"
#include "sym/ExprBuilder.h"

#include <cctype>

using namespace gilr;
using namespace gilr::gilsonite;

namespace {

/// A parsed S-expression: an atom or a list.
struct SExpr {
  bool IsAtom = false;
  std::string Atom;
  std::vector<SExpr> List;
};

class Tokenizer {
public:
  explicit Tokenizer(const std::string &Text) : Text(Text) {}

  Outcome<SExpr> parse() {
    skipWs();
    Outcome<SExpr> S = parseOne();
    if (!S.ok())
      return S;
    skipWs();
    if (Pos != Text.size())
      return Outcome<SExpr>::failure("trailing input at offset " +
                                     std::to_string(Pos));
    return S;
  }

private:
  void skipWs() {
    while (Pos < Text.size() &&
           (std::isspace(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == ';')) {
      if (Text[Pos] == ';') { // Comment to end of line.
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        ++Pos;
      }
    }
  }

  Outcome<SExpr> parseOne() {
    skipWs();
    if (Pos >= Text.size())
      return Outcome<SExpr>::failure("unexpected end of input");
    if (Text[Pos] == '(') {
      ++Pos;
      SExpr S;
      while (true) {
        skipWs();
        if (Pos >= Text.size())
          return Outcome<SExpr>::failure("unterminated list");
        if (Text[Pos] == ')') {
          ++Pos;
          return Outcome<SExpr>::success(std::move(S));
        }
        Outcome<SExpr> Kid = parseOne();
        if (!Kid.ok())
          return Kid;
        S.List.push_back(std::move(Kid.value()));
      }
    }
    if (Text[Pos] == ')')
      return Outcome<SExpr>::failure("unexpected ')'");
    // Atom: everything until whitespace or parenthesis.
    std::size_t Start = Pos;
    while (Pos < Text.size() && !std::isspace(static_cast<unsigned char>(Text[Pos])) &&
           Text[Pos] != '(' && Text[Pos] != ')')
      ++Pos;
    SExpr S;
    S.IsAtom = true;
    S.Atom = Text.substr(Start, Pos - Start);
    return Outcome<SExpr>::success(std::move(S));
  }

  const std::string &Text;
  std::size_t Pos = 0;
};

Outcome<Expr> toExpr(const SExpr &S);

Outcome<std::vector<Expr>> toExprs(const std::vector<SExpr> &List,
                                   std::size_t From) {
  std::vector<Expr> Out;
  for (std::size_t I = From; I < List.size(); ++I) {
    Outcome<Expr> E = toExpr(List[I]);
    if (!E.ok())
      return E.forward<std::vector<Expr>>();
    Out.push_back(E.value());
  }
  return Outcome<std::vector<Expr>>::success(std::move(Out));
}

Outcome<Expr> toExpr(const SExpr &S) {
  if (S.IsAtom) {
    const std::string &A = S.Atom;
    if (A == "true")
      return Outcome<Expr>::success(mkTrue());
    if (A == "false")
      return Outcome<Expr>::success(mkFalse());
    if (A == "none")
      return Outcome<Expr>::success(mkNone());
    if (A == "nil")
      return Outcome<Expr>::success(mkSeqNil());
    if (A == "unit")
      return Outcome<Expr>::success(mkUnit());
    if (!A.empty() &&
        (std::isdigit(static_cast<unsigned char>(A[0])) ||
         (A[0] == '-' && A.size() > 1))) {
      __int128 V = 0;
      bool Neg = A[0] == '-';
      for (std::size_t I = Neg ? 1 : 0; I < A.size(); ++I) {
        if (!std::isdigit(static_cast<unsigned char>(A[I])))
          return Outcome<Expr>::failure("bad integer literal: " + A);
        V = V * 10 + (A[I] - '0');
      }
      return Outcome<Expr>::success(mkInt(Neg ? -V : V));
    }
    // Names starting with ' are lifetimes; others untyped variables.
    Sort VS = !A.empty() && A[0] == '\'' ? Sort::Lft : Sort::Any;
    return Outcome<Expr>::success(mkVar(A, VS));
  }
  if (S.List.empty() || !S.List[0].IsAtom)
    return Outcome<Expr>::failure("expected operator at list head");
  const std::string &Op = S.List[0].Atom;
  Outcome<std::vector<Expr>> ArgsO = toExprs(S.List, 1);
  if (!ArgsO.ok())
    return ArgsO.forward<Expr>();
  std::vector<Expr> &Args = ArgsO.value();
  auto need = [&](std::size_t N) { return Args.size() == N; };

  if (Op == "=" && need(2))
    return Outcome<Expr>::success(mkEq(Args[0], Args[1]));
  if (Op == "!=" && need(2))
    return Outcome<Expr>::success(mkNe(Args[0], Args[1]));
  if (Op == "<" && need(2))
    return Outcome<Expr>::success(mkLt(Args[0], Args[1]));
  if (Op == "<=" && need(2))
    return Outcome<Expr>::success(mkLe(Args[0], Args[1]));
  if (Op == "+")
    return Outcome<Expr>::success(mkAdd(std::move(Args)));
  if (Op == "-" && need(2))
    return Outcome<Expr>::success(mkSub(Args[0], Args[1]));
  if (Op == "*" && need(2))
    return Outcome<Expr>::success(mkMul(Args[0], Args[1]));
  if (Op == "not" && need(1))
    return Outcome<Expr>::success(mkNot(Args[0]));
  if (Op == "and")
    return Outcome<Expr>::success(mkAnd(std::move(Args)));
  if (Op == "or")
    return Outcome<Expr>::success(mkOr(std::move(Args)));
  if (Op == "=>" && need(2))
    return Outcome<Expr>::success(mkImplies(Args[0], Args[1]));
  if (Op == "some" && need(1))
    return Outcome<Expr>::success(mkSome(Args[0]));
  if (Op == "unwrap" && need(1))
    return Outcome<Expr>::success(mkUnwrap(Args[0]));
  if (Op == "is-some" && need(1))
    return Outcome<Expr>::success(mkIsSome(Args[0]));
  if (Op == "len" && need(1))
    return Outcome<Expr>::success(mkSeqLen(Args[0]));
  if (Op == "nth" && need(2))
    return Outcome<Expr>::success(mkSeqNth(Args[0], Args[1]));
  if (Op == "sub" && need(3))
    return Outcome<Expr>::success(mkSeqSub(Args[0], Args[1], Args[2]));
  if (Op == "seq")
    return Outcome<Expr>::success(mkSeqLit(Args));
  if (Op == "++")
    return Outcome<Expr>::success(mkSeqConcat(std::move(Args)));
  if (Op == "cons" && need(2))
    return Outcome<Expr>::success(mkSeqCons(Args[0], Args[1]));
  if (Op == "tuple")
    return Outcome<Expr>::success(mkTuple(std::move(Args)));
  if (startsWith(Op, "get-") && need(1)) {
    // Only an all-digit suffix is a tuple projection; anything else (e.g.
    // "get-x", or an index too large for unsigned) falls through to an
    // uninterpreted application below instead of aborting in std::stoul.
    const std::string Suffix = Op.substr(4);
    bool IsIndex = !Suffix.empty() && Suffix.size() <= 9;
    for (char C : Suffix)
      IsIndex = IsIndex && std::isdigit(static_cast<unsigned char>(C));
    if (IsIndex) {
      unsigned Idx = 0;
      for (char C : Suffix)
        Idx = Idx * 10 + static_cast<unsigned>(C - '0');
      return Outcome<Expr>::success(mkTupleGet(Args[0], Idx));
    }
  }
  if (Op == "ite" && need(3))
    return Outcome<Expr>::success(mkIte(Args[0], Args[1], Args[2]));
  // Unknown operators become uninterpreted applications.
  return Outcome<Expr>::success(mkApp(Op, std::move(Args)));
}

Outcome<AssertionP> toAssertion(const SExpr &S, const rmir::TyCtx &Types) {
  if (S.IsAtom) {
    if (S.Atom == "emp")
      return Outcome<AssertionP>::success(emp());
    return Outcome<AssertionP>::failure("unexpected atom assertion: " +
                                        S.Atom);
  }
  if (S.List.empty() || !S.List[0].IsAtom)
    return Outcome<AssertionP>::failure("expected assertion head");
  const std::string &Op = S.List[0].Atom;

  auto typeArg = [&](const SExpr &T) -> rmir::TypeRef {
    return T.IsAtom ? Types.byName(T.Atom) : nullptr;
  };

  if (Op == "star") {
    std::vector<AssertionP> Parts;
    for (std::size_t I = 1; I < S.List.size(); ++I) {
      Outcome<AssertionP> P = toAssertion(S.List[I], Types);
      if (!P.ok())
        return P;
      Parts.push_back(P.value());
    }
    return Outcome<AssertionP>::success(star(std::move(Parts)));
  }
  if (Op == "exists" && S.List.size() == 3 && !S.List[1].IsAtom) {
    std::vector<Binder> Bs;
    for (const SExpr &B : S.List[1].List) {
      if (!B.IsAtom)
        return Outcome<AssertionP>::failure("bad exists binder");
      Bs.push_back(Binder{B.Atom, Sort::Any});
    }
    Outcome<AssertionP> Body = toAssertion(S.List[2], Types);
    if (!Body.ok())
      return Body;
    return Outcome<AssertionP>::success(exists(std::move(Bs), Body.value()));
  }
  if (Op == "pure" && S.List.size() == 2) {
    Outcome<Expr> E = toExpr(S.List[1]);
    if (!E.ok())
      return E.forward<AssertionP>();
    return Outcome<AssertionP>::success(pure(E.value()));
  }
  if (Op == "pt" && S.List.size() == 4) {
    Outcome<Expr> P = toExpr(S.List[1]);
    if (!P.ok())
      return P.forward<AssertionP>();
    rmir::TypeRef Ty = typeArg(S.List[2]);
    if (!Ty)
      return Outcome<AssertionP>::failure("unknown type in pt");
    Outcome<Expr> V = toExpr(S.List[3]);
    if (!V.ok())
      return V.forward<AssertionP>();
    return Outcome<AssertionP>::success(pointsTo(P.value(), Ty, V.value()));
  }
  if (Op == "pred" && S.List.size() >= 2 && S.List[1].IsAtom) {
    Outcome<std::vector<Expr>> Args = toExprs(S.List, 2);
    if (!Args.ok())
      return Args.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        predCall(S.List[1].Atom, std::move(Args.value())));
  }
  if (Op == "guarded" && S.List.size() >= 3 && S.List[2].IsAtom) {
    Outcome<Expr> K = toExpr(S.List[1]);
    if (!K.ok())
      return K.forward<AssertionP>();
    Outcome<std::vector<Expr>> Args = toExprs(S.List, 3);
    if (!Args.ok())
      return Args.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        guardedCall(K.value(), S.List[2].Atom, std::move(Args.value())));
  }
  if (Op == "alive" && S.List.size() == 3) {
    Outcome<Expr> K = toExpr(S.List[1]);
    Outcome<Expr> Q = toExpr(S.List[2]);
    if (!K.ok())
      return K.forward<AssertionP>();
    if (!Q.ok())
      return Q.forward<AssertionP>();
    return Outcome<AssertionP>::success(lftAlive(K.value(), Q.value()));
  }
  if (Op == "dead" && S.List.size() == 2) {
    Outcome<Expr> K = toExpr(S.List[1]);
    if (!K.ok())
      return K.forward<AssertionP>();
    return Outcome<AssertionP>::success(lftDead(K.value()));
  }
  if (Op == "obs" && S.List.size() == 2) {
    Outcome<Expr> E = toExpr(S.List[1]);
    if (!E.ok())
      return E.forward<AssertionP>();
    return Outcome<AssertionP>::success(observation(E.value()));
  }
  if ((Op == "vo" || Op == "pc") && S.List.size() == 3) {
    Outcome<Expr> X = toExpr(S.List[1]);
    Outcome<Expr> V = toExpr(S.List[2]);
    if (!X.ok())
      return X.forward<AssertionP>();
    if (!V.ok())
      return V.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        Op == "vo" ? valueObs(X.value(), V.value())
                   : prophCtrl(X.value(), V.value()));
  }
  if (Op == "uninit" && S.List.size() == 3) {
    Outcome<Expr> P = toExpr(S.List[1]);
    if (!P.ok())
      return P.forward<AssertionP>();
    rmir::TypeRef Ty = typeArg(S.List[2]);
    if (!Ty)
      return Outcome<AssertionP>::failure("unknown type in uninit");
    return Outcome<AssertionP>::success(uninitPT(P.value(), Ty));
  }
  if (Op == "array" && S.List.size() == 5) {
    Outcome<Expr> P = toExpr(S.List[1]);
    if (!P.ok())
      return P.forward<AssertionP>();
    rmir::TypeRef Ty = typeArg(S.List[2]);
    if (!Ty)
      return Outcome<AssertionP>::failure("unknown type in array");
    Outcome<Expr> N = toExpr(S.List[3]);
    Outcome<Expr> Sq = toExpr(S.List[4]);
    if (!N.ok())
      return N.forward<AssertionP>();
    if (!Sq.ok())
      return Sq.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        arrayPT(P.value(), Ty, N.value(), Sq.value()));
  }
  return Outcome<AssertionP>::failure("unknown assertion form: " + Op);
}

} // namespace

Outcome<AssertionP> gilr::gilsonite::parseAssertion(const std::string &Text,
                                                    const rmir::TyCtx &Types) {
  Tokenizer T(Text);
  Outcome<SExpr> S = T.parse();
  if (!S.ok())
    return S.forward<AssertionP>();
  return toAssertion(S.value(), Types);
}

Outcome<Expr> gilr::gilsonite::parseExpr(const std::string &Text) {
  Tokenizer T(Text);
  Outcome<SExpr> S = T.parse();
  if (!S.ok())
    return S.forward<Expr>();
  return toExpr(S.value());
}

Outcome<Spec> gilr::gilsonite::parseSpec(const std::string &Text,
                                         const rmir::TyCtx &Types) {
  Tokenizer T(Text);
  Outcome<SExpr> SO = T.parse();
  if (!SO.ok())
    return SO.forward<Spec>();
  const SExpr &S = SO.value();
  if (S.IsAtom || S.List.size() != 5 || !S.List[0].IsAtom ||
      S.List[0].Atom != "spec" || !S.List[1].IsAtom)
    return Outcome<Spec>::failure(
        "expected (spec name (vars ...) (pre A) (post A))");
  Spec Out;
  Out.Func = S.List[1].Atom;
  Out.Doc = "parsed Gilsonite spec";

  const SExpr &Vars = S.List[2];
  if (Vars.IsAtom || Vars.List.empty() || !Vars.List[0].IsAtom ||
      Vars.List[0].Atom != "vars")
    return Outcome<Spec>::failure("expected a (vars ...) clause");
  for (std::size_t I = 1; I < Vars.List.size(); ++I) {
    if (!Vars.List[I].IsAtom)
      return Outcome<Spec>::failure("spec variables must be atoms");
    const std::string &Name = Vars.List[I].Atom;
    Sort SortOf = !Name.empty() && Name[0] == '\'' ? Sort::Lft : Sort::Any;
    Out.SpecVars.push_back(Binder{Name, SortOf});
  }

  auto clause = [&](const SExpr &C,
                    const char *Tag) -> Outcome<AssertionP> {
    if (C.IsAtom || C.List.size() != 2 || !C.List[0].IsAtom ||
        C.List[0].Atom != Tag)
      return Outcome<AssertionP>::failure(std::string("expected a (") + Tag +
                                          " ...) clause");
    return toAssertion(C.List[1], Types);
  };
  Outcome<AssertionP> Pre = clause(S.List[3], "pre");
  if (!Pre.ok())
    return Pre.forward<Spec>();
  Outcome<AssertionP> Post = clause(S.List[4], "post");
  if (!Post.ok())
    return Post.forward<Spec>();
  Out.Pre = Pre.value();
  Out.Post = Post.value();
  return Outcome<Spec>::success(std::move(Out));
}
