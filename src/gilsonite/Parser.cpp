//===- gilsonite/Parser.cpp -------------------------------------------------------===//

#include "gilsonite/Parser.h"

#include "support/StringUtils.h"
#include "sym/ExprBuilder.h"

#include <cctype>

using namespace gilr;
using namespace gilr::gilsonite;

namespace {

/// A parsed S-expression: an atom or a list. \c Pos is the byte offset of
/// the first character (the opening parenthesis for lists, the first atom
/// character — or the opening quote — for atoms) so conversion errors can
/// point back into the source. \c IsQuoted marks |...| atoms, which are
/// always names: they are exempt from literal/operator interpretation.
struct SExpr {
  bool IsAtom = false;
  bool IsQuoted = false;
  std::size_t Pos = 0;
  std::string Atom;
  std::vector<SExpr> List;
};

/// Records the innermost failure position. Failures propagate outward
/// without overwriting, so the first recorded diagnostic wins.
void noteDiag(ParseDiag *Diag, std::size_t Pos, const std::string &Msg) {
  if (Diag && Diag->Message.empty()) {
    Diag->Offset = Pos;
    Diag->Message = Msg;
  }
}

template <typename T>
Outcome<T> failAt(ParseDiag *Diag, std::size_t Pos, const std::string &Msg) {
  noteDiag(Diag, Pos, Msg);
  return Outcome<T>::failure(Msg);
}

class Tokenizer {
public:
  Tokenizer(const std::string &Text, ParseDiag *Diag)
      : Text(Text), Diag(Diag) {}

  Outcome<SExpr> parse() {
    skipWs();
    Outcome<SExpr> S = parseOne();
    if (!S.ok())
      return S;
    skipWs();
    if (Pos != Text.size())
      return failAt<SExpr>(Diag, Pos,
                           "trailing input at offset " + std::to_string(Pos));
    return S;
  }

private:
  void skipWs() {
    while (Pos < Text.size() &&
           (std::isspace(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == ';')) {
      if (Text[Pos] == ';') { // Comment to end of line.
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        ++Pos;
      }
    }
  }

  Outcome<SExpr> parseOne() {
    skipWs();
    if (Pos >= Text.size())
      return failAt<SExpr>(Diag, Pos, "unexpected end of input");
    std::size_t Start = Pos;
    if (Text[Pos] == '(') {
      ++Pos;
      SExpr S;
      S.Pos = Start;
      while (true) {
        skipWs();
        if (Pos >= Text.size())
          return failAt<SExpr>(Diag, Start, "unterminated list");
        if (Text[Pos] == ')') {
          ++Pos;
          return Outcome<SExpr>::success(std::move(S));
        }
        Outcome<SExpr> Kid = parseOne();
        if (!Kid.ok())
          return Kid;
        S.List.push_back(std::move(Kid.value()));
      }
    }
    if (Text[Pos] == ')')
      return failAt<SExpr>(Diag, Pos, "unexpected ')'");
    if (Text[Pos] == '|') {
      // Quoted atom: |...| with backslash escaping the next character.
      ++Pos;
      SExpr S;
      S.IsAtom = true;
      S.IsQuoted = true;
      S.Pos = Start;
      while (true) {
        if (Pos >= Text.size())
          return failAt<SExpr>(Diag, Start, "unterminated quoted atom");
        char C = Text[Pos++];
        if (C == '|')
          return Outcome<SExpr>::success(std::move(S));
        if (C == '\\') {
          if (Pos >= Text.size())
            return failAt<SExpr>(Diag, Start, "unterminated quoted atom");
          C = Text[Pos++];
        }
        S.Atom += C;
      }
    }
    // Atom: everything until whitespace, parenthesis, quote or comment.
    while (Pos < Text.size() &&
           !std::isspace(static_cast<unsigned char>(Text[Pos])) &&
           Text[Pos] != '(' && Text[Pos] != ')' && Text[Pos] != '|' &&
           Text[Pos] != ';')
      ++Pos;
    SExpr S;
    S.IsAtom = true;
    S.Pos = Start;
    S.Atom = Text.substr(Start, Pos - Start);
    return Outcome<SExpr>::success(std::move(S));
  }

  const std::string &Text;
  ParseDiag *Diag;
  std::size_t Pos = 0;
};

/// Parses a (possibly signed) decimal integer atom.
bool parseInt128(const std::string &A, __int128 &Out) {
  if (A.empty())
    return false;
  bool Neg = A[0] == '-';
  if (Neg && A.size() == 1)
    return false;
  __int128 V = 0;
  for (std::size_t I = Neg ? 1 : 0; I < A.size(); ++I) {
    if (!std::isdigit(static_cast<unsigned char>(A[I])))
      return false;
    V = V * 10 + (A[I] - '0');
  }
  Out = Neg ? -V : V;
  return true;
}

/// The bare-variable sort prediction shared by the parser and printer:
/// 'names are lifetimes, everything else is Any.
Sort predictSort(const std::string &Name) {
  return !Name.empty() && Name[0] == '\'' ? Sort::Lft : Sort::Any;
}

Outcome<Expr> toExpr(const SExpr &S, ParseDiag *Diag);

Outcome<std::vector<Expr>> toExprs(const std::vector<SExpr> &List,
                                   std::size_t From, ParseDiag *Diag) {
  std::vector<Expr> Out;
  for (std::size_t I = From; I < List.size(); ++I) {
    Outcome<Expr> E = toExpr(List[I], Diag);
    if (!E.ok())
      return E.forward<std::vector<Expr>>();
    Out.push_back(E.value());
  }
  return Outcome<std::vector<Expr>>::success(std::move(Out));
}

Outcome<Expr> toExpr(const SExpr &S, ParseDiag *Diag) {
  if (S.IsAtom) {
    const std::string &A = S.Atom;
    // Quoted atoms are names verbatim — never literals.
    if (!S.IsQuoted) {
      if (A == "true")
        return Outcome<Expr>::success(mkTrue());
      if (A == "false")
        return Outcome<Expr>::success(mkFalse());
      if (A == "none")
        return Outcome<Expr>::success(mkNone());
      if (A == "nil")
        return Outcome<Expr>::success(mkSeqNil());
      if (A == "unit")
        return Outcome<Expr>::success(mkUnit());
      if (!A.empty() &&
          (std::isdigit(static_cast<unsigned char>(A[0])) ||
           (A[0] == '-' && A.size() > 1))) {
        __int128 V = 0;
        if (!parseInt128(A, V))
          return failAt<Expr>(Diag, S.Pos, "bad integer literal: " + A);
        return Outcome<Expr>::success(mkInt(V));
      }
    }
    return Outcome<Expr>::success(mkVar(A, predictSort(A)));
  }
  if (S.List.empty() || !S.List[0].IsAtom)
    return failAt<Expr>(Diag, S.Pos, "expected operator at list head");
  const std::string &Op = S.List[0].Atom;

  // Escape forms whose operands are not themselves expressions.
  if (!S.List[0].IsQuoted) {
    if (Op == "var") {
      if (S.List.size() != 3 || !S.List[1].IsAtom || !S.List[2].IsAtom)
        return failAt<Expr>(Diag, S.Pos, "expected (var NAME SORT)");
      Sort VS;
      if (!parseSortName(S.List[2].Atom, VS))
        return failAt<Expr>(Diag, S.List[2].Pos,
                            "unknown sort: " + S.List[2].Atom);
      return Outcome<Expr>::success(mkVar(S.List[1].Atom, VS));
    }
    if (Op == "app") {
      if (S.List.size() < 2 || !S.List[1].IsAtom)
        return failAt<Expr>(Diag, S.Pos, "expected (app NAME ARGS...)");
      Outcome<std::vector<Expr>> Args = toExprs(S.List, 2, Diag);
      if (!Args.ok())
        return Args.forward<Expr>();
      return Outcome<Expr>::success(
          mkApp(S.List[1].Atom, std::move(Args.value())));
    }
    if (Op == "real") {
      __int128 Num = 0, Den = 0;
      if (S.List.size() != 3 || !S.List[1].IsAtom || !S.List[2].IsAtom ||
          S.List[1].IsQuoted || S.List[2].IsQuoted ||
          !parseInt128(S.List[1].Atom, Num) ||
          !parseInt128(S.List[2].Atom, Den) || Den == 0)
        return failAt<Expr>(Diag, S.Pos, "expected (real NUM DEN)");
      return Outcome<Expr>::success(mkReal(Rational(Num, Den)));
    }
    if (Op == "loc") {
      __int128 Id = 0;
      if (S.List.size() != 2 || !S.List[1].IsAtom || S.List[1].IsQuoted ||
          !parseInt128(S.List[1].Atom, Id) || Id < 0)
        return failAt<Expr>(Diag, S.Pos, "expected (loc ID)");
      return Outcome<Expr>::success(mkLoc(static_cast<uint64_t>(Id)));
    }
  }

  Outcome<std::vector<Expr>> ArgsO = toExprs(S.List, 1, Diag);
  if (!ArgsO.ok())
    return ArgsO.forward<Expr>();
  std::vector<Expr> &Args = ArgsO.value();
  auto need = [&](std::size_t N) { return Args.size() == N; };

  // A quoted head is an uninterpreted application, no operator matching.
  if (!S.List[0].IsQuoted) {
    if (Op == "=" && need(2))
      return Outcome<Expr>::success(mkEq(Args[0], Args[1]));
    if (Op == "!=" && need(2))
      return Outcome<Expr>::success(mkNe(Args[0], Args[1]));
    if (Op == "<" && need(2))
      return Outcome<Expr>::success(mkLt(Args[0], Args[1]));
    if (Op == "<=" && need(2))
      return Outcome<Expr>::success(mkLe(Args[0], Args[1]));
    if (Op == "+")
      return Outcome<Expr>::success(mkAdd(std::move(Args)));
    if (Op == "-" && need(2))
      return Outcome<Expr>::success(mkSub(Args[0], Args[1]));
    if (Op == "*" && need(2))
      return Outcome<Expr>::success(mkMul(Args[0], Args[1]));
    if (Op == "not" && need(1))
      return Outcome<Expr>::success(mkNot(Args[0]));
    if (Op == "neg" && need(1))
      return Outcome<Expr>::success(mkNeg(Args[0]));
    if (Op == "and")
      return Outcome<Expr>::success(mkAnd(std::move(Args)));
    if (Op == "or")
      return Outcome<Expr>::success(mkOr(std::move(Args)));
    if (Op == "=>" && need(2))
      return Outcome<Expr>::success(mkImplies(Args[0], Args[1]));
    if (Op == "some" && need(1))
      return Outcome<Expr>::success(mkSome(Args[0]));
    if (Op == "unwrap" && need(1))
      return Outcome<Expr>::success(mkUnwrap(Args[0]));
    if (Op == "is-some" && need(1))
      return Outcome<Expr>::success(mkIsSome(Args[0]));
    if (Op == "len" && need(1))
      return Outcome<Expr>::success(mkSeqLen(Args[0]));
    if (Op == "nth" && need(2))
      return Outcome<Expr>::success(mkSeqNth(Args[0], Args[1]));
    if (Op == "sub" && need(3))
      return Outcome<Expr>::success(mkSeqSub(Args[0], Args[1], Args[2]));
    if (Op == "seq")
      return Outcome<Expr>::success(mkSeqLit(Args));
    if (Op == "++")
      return Outcome<Expr>::success(mkSeqConcat(std::move(Args)));
    if (Op == "cons" && need(2))
      return Outcome<Expr>::success(mkSeqCons(Args[0], Args[1]));
    if (Op == "tuple")
      return Outcome<Expr>::success(mkTuple(std::move(Args)));
    if (Op == "lft-incl" && need(2))
      return Outcome<Expr>::success(mkLftIncl(Args[0], Args[1]));
    if (startsWith(Op, "get-") && need(1)) {
      // Only an all-digit suffix is a tuple projection; anything else (e.g.
      // "get-x", or an index too large for unsigned) falls through to an
      // uninterpreted application below instead of aborting in std::stoul.
      const std::string Suffix = Op.substr(4);
      bool IsIndex = !Suffix.empty() && Suffix.size() <= 9;
      for (char C : Suffix)
        IsIndex = IsIndex && std::isdigit(static_cast<unsigned char>(C));
      if (IsIndex) {
        unsigned Idx = 0;
        for (char C : Suffix)
          Idx = Idx * 10 + static_cast<unsigned>(C - '0');
        return Outcome<Expr>::success(mkTupleGet(Args[0], Idx));
      }
    }
    if (Op == "ite" && need(3))
      return Outcome<Expr>::success(mkIte(Args[0], Args[1], Args[2]));
  }
  // Unknown operators become uninterpreted applications.
  return Outcome<Expr>::success(mkApp(Op, std::move(Args)));
}

/// Parses one exists/vars binder: a bare atom (predicted sort) or an
/// explicitly sorted (NAME SORT) pair. \p Predicted computes the sort of a
/// bare atom, so exists (historically Any) and spec vars (Lft for 'names)
/// keep their established defaults.
Outcome<Binder> toBinder(const SExpr &B, Sort (*Predicted)(const std::string &),
                         ParseDiag *Diag) {
  if (B.IsAtom)
    return Outcome<Binder>::success(Binder{B.Atom, Predicted(B.Atom)});
  if (B.List.size() == 2 && B.List[0].IsAtom && B.List[1].IsAtom &&
      !B.List[1].IsQuoted) {
    Sort BS;
    if (!parseSortName(B.List[1].Atom, BS))
      return failAt<Binder>(Diag, B.List[1].Pos,
                            "unknown sort: " + B.List[1].Atom);
    return Outcome<Binder>::success(Binder{B.List[0].Atom, BS});
  }
  return failAt<Binder>(Diag, B.Pos, "bad binder: expected NAME or (NAME Sort)");
}

Sort anySort(const std::string &) { return Sort::Any; }

Outcome<AssertionP> toAssertion(const SExpr &S, const rmir::TyCtx &Types,
                                ParseDiag *Diag) {
  if (S.IsAtom) {
    if (!S.IsQuoted && S.Atom == "emp")
      return Outcome<AssertionP>::success(emp());
    return failAt<AssertionP>(Diag, S.Pos,
                              "unexpected atom assertion: " + S.Atom);
  }
  if (S.List.empty() || !S.List[0].IsAtom || S.List[0].IsQuoted)
    return failAt<AssertionP>(Diag, S.Pos, "expected assertion head");
  const std::string &Op = S.List[0].Atom;

  auto typeArg = [&](const SExpr &T) -> rmir::TypeRef {
    return T.IsAtom ? Types.byName(T.Atom) : nullptr;
  };

  if (Op == "star") {
    std::vector<AssertionP> Parts;
    for (std::size_t I = 1; I < S.List.size(); ++I) {
      Outcome<AssertionP> P = toAssertion(S.List[I], Types, Diag);
      if (!P.ok())
        return P;
      Parts.push_back(P.value());
    }
    return Outcome<AssertionP>::success(star(std::move(Parts)));
  }
  if (Op == "exists" && S.List.size() == 3 && !S.List[1].IsAtom) {
    std::vector<Binder> Bs;
    for (const SExpr &B : S.List[1].List) {
      Outcome<Binder> BO = toBinder(B, anySort, Diag);
      if (!BO.ok())
        return BO.forward<AssertionP>();
      Bs.push_back(BO.value());
    }
    Outcome<AssertionP> Body = toAssertion(S.List[2], Types, Diag);
    if (!Body.ok())
      return Body;
    return Outcome<AssertionP>::success(exists(std::move(Bs), Body.value()));
  }
  if (Op == "pure" && S.List.size() == 2) {
    Outcome<Expr> E = toExpr(S.List[1], Diag);
    if (!E.ok())
      return E.forward<AssertionP>();
    return Outcome<AssertionP>::success(pure(E.value()));
  }
  if (Op == "pt" && S.List.size() == 4) {
    Outcome<Expr> P = toExpr(S.List[1], Diag);
    if (!P.ok())
      return P.forward<AssertionP>();
    rmir::TypeRef Ty = typeArg(S.List[2]);
    if (!Ty)
      return failAt<AssertionP>(Diag, S.List[2].Pos, "unknown type in pt");
    Outcome<Expr> V = toExpr(S.List[3], Diag);
    if (!V.ok())
      return V.forward<AssertionP>();
    return Outcome<AssertionP>::success(pointsTo(P.value(), Ty, V.value()));
  }
  if (Op == "pred" && S.List.size() >= 2 && S.List[1].IsAtom) {
    Outcome<std::vector<Expr>> Args = toExprs(S.List, 2, Diag);
    if (!Args.ok())
      return Args.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        predCall(S.List[1].Atom, std::move(Args.value())));
  }
  if (Op == "guarded" && S.List.size() >= 3 && S.List[2].IsAtom) {
    Outcome<Expr> K = toExpr(S.List[1], Diag);
    if (!K.ok())
      return K.forward<AssertionP>();
    Outcome<std::vector<Expr>> Args = toExprs(S.List, 3, Diag);
    if (!Args.ok())
      return Args.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        guardedCall(K.value(), S.List[2].Atom, std::move(Args.value())));
  }
  if (Op == "alive" && S.List.size() == 3) {
    Outcome<Expr> K = toExpr(S.List[1], Diag);
    Outcome<Expr> Q = toExpr(S.List[2], Diag);
    if (!K.ok())
      return K.forward<AssertionP>();
    if (!Q.ok())
      return Q.forward<AssertionP>();
    return Outcome<AssertionP>::success(lftAlive(K.value(), Q.value()));
  }
  if (Op == "dead" && S.List.size() == 2) {
    Outcome<Expr> K = toExpr(S.List[1], Diag);
    if (!K.ok())
      return K.forward<AssertionP>();
    return Outcome<AssertionP>::success(lftDead(K.value()));
  }
  if (Op == "obs" && S.List.size() == 2) {
    Outcome<Expr> E = toExpr(S.List[1], Diag);
    if (!E.ok())
      return E.forward<AssertionP>();
    return Outcome<AssertionP>::success(observation(E.value()));
  }
  if ((Op == "vo" || Op == "pc") && S.List.size() == 3) {
    Outcome<Expr> X = toExpr(S.List[1], Diag);
    Outcome<Expr> V = toExpr(S.List[2], Diag);
    if (!X.ok())
      return X.forward<AssertionP>();
    if (!V.ok())
      return V.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        Op == "vo" ? valueObs(X.value(), V.value())
                   : prophCtrl(X.value(), V.value()));
  }
  if (Op == "uninit" && S.List.size() == 3) {
    Outcome<Expr> P = toExpr(S.List[1], Diag);
    if (!P.ok())
      return P.forward<AssertionP>();
    rmir::TypeRef Ty = typeArg(S.List[2]);
    if (!Ty)
      return failAt<AssertionP>(Diag, S.List[2].Pos, "unknown type in uninit");
    return Outcome<AssertionP>::success(uninitPT(P.value(), Ty));
  }
  if (Op == "maybe" && S.List.size() == 4) {
    Outcome<Expr> P = toExpr(S.List[1], Diag);
    if (!P.ok())
      return P.forward<AssertionP>();
    rmir::TypeRef Ty = typeArg(S.List[2]);
    if (!Ty)
      return failAt<AssertionP>(Diag, S.List[2].Pos, "unknown type in maybe");
    Outcome<Expr> V = toExpr(S.List[3], Diag);
    if (!V.ok())
      return V.forward<AssertionP>();
    return Outcome<AssertionP>::success(maybeUninit(P.value(), Ty, V.value()));
  }
  if (Op == "array" && S.List.size() == 5) {
    Outcome<Expr> P = toExpr(S.List[1], Diag);
    if (!P.ok())
      return P.forward<AssertionP>();
    rmir::TypeRef Ty = typeArg(S.List[2]);
    if (!Ty)
      return failAt<AssertionP>(Diag, S.List[2].Pos, "unknown type in array");
    Outcome<Expr> N = toExpr(S.List[3], Diag);
    Outcome<Expr> Sq = toExpr(S.List[4], Diag);
    if (!N.ok())
      return N.forward<AssertionP>();
    if (!Sq.ok())
      return Sq.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        arrayPT(P.value(), Ty, N.value(), Sq.value()));
  }
  if (Op == "uninit-array" && S.List.size() == 4) {
    Outcome<Expr> P = toExpr(S.List[1], Diag);
    if (!P.ok())
      return P.forward<AssertionP>();
    rmir::TypeRef Ty = typeArg(S.List[2]);
    if (!Ty)
      return failAt<AssertionP>(Diag, S.List[2].Pos,
                                "unknown type in uninit-array");
    Outcome<Expr> N = toExpr(S.List[3], Diag);
    if (!N.ok())
      return N.forward<AssertionP>();
    return Outcome<AssertionP>::success(
        arrayUninit(P.value(), Ty, N.value()));
  }
  return failAt<AssertionP>(Diag, S.Pos, "unknown assertion form: " + Op);
}

} // namespace

Outcome<AssertionP> gilr::gilsonite::parseAssertion(const std::string &Text,
                                                    const rmir::TyCtx &Types,
                                                    ParseDiag *Diag) {
  Tokenizer T(Text, Diag);
  Outcome<SExpr> S = T.parse();
  if (!S.ok())
    return S.forward<AssertionP>();
  return toAssertion(S.value(), Types, Diag);
}

Outcome<Expr> gilr::gilsonite::parseExpr(const std::string &Text,
                                         ParseDiag *Diag) {
  Tokenizer T(Text, Diag);
  Outcome<SExpr> S = T.parse();
  if (!S.ok())
    return S.forward<Expr>();
  return toExpr(S.value(), Diag);
}

Outcome<Spec> gilr::gilsonite::parseSpec(const std::string &Text,
                                         const rmir::TyCtx &Types,
                                         ParseDiag *Diag) {
  Tokenizer T(Text, Diag);
  Outcome<SExpr> SO = T.parse();
  if (!SO.ok())
    return SO.forward<Spec>();
  const SExpr &S = SO.value();
  if (S.IsAtom || S.List.size() != 5 || !S.List[0].IsAtom ||
      S.List[0].Atom != "spec" || !S.List[1].IsAtom)
    return failAt<Spec>(Diag, S.Pos,
                        "expected (spec name (vars ...) (pre A) (post A))");
  Spec Out;
  Out.Func = S.List[1].Atom;
  Out.Doc = "parsed Gilsonite spec";

  const SExpr &Vars = S.List[2];
  if (Vars.IsAtom || Vars.List.empty() || !Vars.List[0].IsAtom ||
      Vars.List[0].Atom != "vars")
    return failAt<Spec>(Diag, Vars.Pos, "expected a (vars ...) clause");
  for (std::size_t I = 1; I < Vars.List.size(); ++I) {
    Outcome<Binder> BO = toBinder(Vars.List[I], predictSort, Diag);
    if (!BO.ok())
      return BO.forward<Spec>();
    Out.SpecVars.push_back(BO.value());
  }

  auto clause = [&](const SExpr &C,
                    const char *Tag) -> Outcome<AssertionP> {
    if (C.IsAtom || C.List.size() != 2 || !C.List[0].IsAtom ||
        C.List[0].Atom != Tag)
      return failAt<AssertionP>(Diag, C.Pos,
                                std::string("expected a (") + Tag +
                                    " ...) clause");
    return toAssertion(C.List[1], Types, Diag);
  };
  Outcome<AssertionP> Pre = clause(S.List[3], "pre");
  if (!Pre.ok())
    return Pre.forward<Spec>();
  Outcome<AssertionP> Post = clause(S.List[4], "post");
  if (!Post.ok())
    return Post.forward<Spec>();
  Out.Pre = Pre.value();
  Out.Post = Post.value();
  return Outcome<Spec>::success(std::move(Out));
}

bool gilr::gilsonite::parseSortName(const std::string &Name, Sort &Out) {
  static const std::pair<const char *, Sort> Sorts[] = {
      {"Unit", Sort::Unit}, {"Bool", Sort::Bool},   {"Int", Sort::Int},
      {"Real", Sort::Real}, {"Loc", Sort::Loc},     {"Lft", Sort::Lft},
      {"Seq", Sort::Seq},   {"Opt", Sort::Opt},     {"Tuple", Sort::Tuple},
      {"Any", Sort::Any},
  };
  for (const auto &[N, S] : Sorts)
    if (Name == N) {
      Out = S;
      return true;
    }
  return false;
}

bool gilr::gilsonite::isPlainAtom(const std::string &Atom) {
  if (Atom.empty())
    return false;
  for (char C : Atom)
    if (std::isspace(static_cast<unsigned char>(C)) || C == '(' || C == ')' ||
        C == '|' || C == ';' || C == '\\')
      return false;
  // Atoms that the reader would interpret as something other than a name.
  if (Atom == "true" || Atom == "false" || Atom == "none" || Atom == "nil" ||
      Atom == "unit" || Atom == "emp")
    return false;
  // The reader treats any -X (X non-empty) as an integer literal attempt.
  if (std::isdigit(static_cast<unsigned char>(Atom[0])) ||
      (Atom[0] == '-' && Atom.size() > 1))
    return false;
  return true;
}

std::string gilr::gilsonite::quoteAtom(const std::string &Name) {
  if (isPlainAtom(Name))
    return Name;
  std::string Out = "|";
  for (char C : Name) {
    if (C == '|' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += "|";
  return Out;
}
