//===- gilsonite/Parser.h - Textual Gilsonite ------------------------------===//
///
/// \file
/// A small S-expression front-end for Gilsonite assertions and expressions,
/// used by the textual RMIR frontend (src/frontend/), tests, examples and
/// documentation. The surface syntax the paper shows (the gilsonite! macro)
/// is Rust-proc-macro flavoured; this parser accepts an equivalent prefix
/// notation:
///
///   (star (pure (= x 1))
///         (pt p LinkedList<i32> v)
///         (exists ((v Int) r) (pred own$i32 v r 'a))
///         (guarded 'a mutref_inner$i32 p x)
///         (alive 'a q) (dead 'b)
///         (obs (= (fut x) r)) (vo x cur) (pc x a))
///
/// Expressions: integers, true/false, none, nil, unit, names, and the
/// operators = != < <= + - * not and or => ite some unwrap is-some len nth
/// sub seq ++ cons tuple get-N neg lft-incl, plus the escape forms
/// (real NUM DEN), (loc ID), (var NAME SORT) for an explicitly sorted
/// variable, and (app NAME ARGS...) for an uninterpreted application whose
/// name would otherwise read as a reserved operator or a literal.
///
/// Atoms may be quoted as |...| (backslash escapes \| and \\) so names
/// containing whitespace, parentheses or the quote character itself — e.g.
/// the derived predicate "own$&mut LinkedList<T>" or the type atom
/// "*mut Node<T>" — can appear anywhere a name or type is expected.
///
/// Every entry point has an overload taking a \c ParseDiag out-parameter
/// that receives the byte offset of the failure, so callers (the frontend,
/// analysis::parseSpecChecked) can render file:line:col caret diagnostics
/// instead of a bare message.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_GILSONITE_PARSER_H
#define GILR_GILSONITE_PARSER_H

#include "gilsonite/Assertion.h"
#include "gilsonite/Spec.h"
#include "support/Outcome.h"

namespace gilr {
namespace gilsonite {

/// Position-tracked parse failure: the byte offset into the parsed text
/// where the error was detected, plus the message (the same message the
/// Outcome carries).
struct ParseDiag {
  std::size_t Offset = 0;
  std::string Message;
};

/// Parses a Gilsonite assertion; type names are resolved against \p Types.
/// On failure, \p Diag (when non-null) receives the error offset.
Outcome<AssertionP> parseAssertion(const std::string &Text,
                                   const rmir::TyCtx &Types,
                                   ParseDiag *Diag = nullptr);

/// Parses a bare expression.
Outcome<Expr> parseExpr(const std::string &Text, ParseDiag *Diag = nullptr);

/// Parses a whole specification:
///   (spec <function-name> (vars x y ...) (pre ASSERTION) (post ASSERTION))
/// The vars clause lists the universally quantified spec variables; each
/// may be a bare atom (Any-sorted, Lft for 'names) or a (name Sort) pair.
Outcome<Spec> parseSpec(const std::string &Text, const rmir::TyCtx &Types,
                        ParseDiag *Diag = nullptr);

/// Parses a sort name as rendered by \c sortName ("Int", "Seq", ...).
/// Returns false if \p Name is not a sort.
bool parseSortName(const std::string &Name, Sort &Out);

/// True if \p Atom can be printed bare (unquoted) and re-read as the same
/// variable/name atom: non-empty, no whitespace/parens/quote/comment
/// characters, and not confusable with an integer or reserved literal.
bool isPlainAtom(const std::string &Atom);

/// Quotes \p Name as a |...| atom when \c isPlainAtom rejects it; returns
/// it unchanged otherwise. The printer-side dual of the tokenizer's quoted
/// atoms.
std::string quoteAtom(const std::string &Name);

} // namespace gilsonite
} // namespace gilr

#endif // GILR_GILSONITE_PARSER_H
