//===- gilsonite/Parser.h - Textual Gilsonite ------------------------------===//
///
/// \file
/// A small S-expression front-end for Gilsonite assertions and expressions,
/// used by tests, examples and documentation. The surface syntax the paper
/// shows (the gilsonite! macro) is Rust-proc-macro flavoured; this parser
/// accepts an equivalent prefix notation:
///
///   (star (pure (= x 1))
///         (pt p LinkedList<i32> v)
///         (exists (v r) (pred own$i32 v r 'a))
///         (guarded 'a mutref_inner$i32 p x)
///         (alive 'a q) (dead 'b)
///         (obs (= (fut x) r)) (vo x cur) (pc x a))
///
/// Expressions: integers, true/false, none, (), names, and the operators
/// = != < <= + - * not and or some unwrap is-some len nth sub seq tuple
/// get-N cons.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_GILSONITE_PARSER_H
#define GILR_GILSONITE_PARSER_H

#include "gilsonite/Assertion.h"
#include "gilsonite/Spec.h"
#include "support/Outcome.h"

namespace gilr {
namespace gilsonite {

/// Parses a Gilsonite assertion; type names are resolved against \p Types.
Outcome<AssertionP> parseAssertion(const std::string &Text,
                                   const rmir::TyCtx &Types);

/// Parses a bare expression.
Outcome<Expr> parseExpr(const std::string &Text);

/// Parses a whole specification:
///   (spec <function-name> (vars x y ...) (pre ASSERTION) (post ASSERTION))
/// The vars clause lists the universally quantified spec variables.
Outcome<Spec> parseSpec(const std::string &Text, const rmir::TyCtx &Types);

} // namespace gilsonite
} // namespace gilr

#endif // GILR_GILSONITE_PARSER_H
