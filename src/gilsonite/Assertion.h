//===- gilsonite/Assertion.h - The Gilsonite assertion language ------------===//
///
/// \file
/// Gilsonite is the separation-logic assertion language of Gillian-Rust
/// (§2.1, Fig. 1 right). An assertion is a star-conjunction of:
///
///   * pure facts (booleans over symbolic values),
///   * core predicates — the building blocks implemented by the custom
///     state components: typed points-to and its variants (§3.3), lifetime
///     tokens (§4.1), guarded/full-borrow predicates (§4.2), observations
///     and value observers / prophecy controllers (§5),
///   * user predicate calls (possibly recursive, e.g. dllSeg; possibly
///     abstract, e.g. the ownership predicate of a type parameter §4.2),
///
/// under existential binders. Disjunction appears only as the multiple
/// clauses of a predicate definition (standard in semi-automated SL tools).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_GILSONITE_ASSERTION_H
#define GILR_GILSONITE_ASSERTION_H

#include "rmir/Type.h"
#include "sym/Expr.h"
#include "sym/Subst.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace gilr {
namespace gilsonite {

class Assertion;
using AssertionP = std::shared_ptr<const Assertion>;

/// Assertion node kinds.
enum class AsrtKind : uint8_t {
  Star,        ///< P1 * ... * Pn (empty list is emp).
  Exists,      ///< exists x1 ... xn. P.
  Pure,        ///< Boolean formula.
  PointsTo,    ///< Ptr |->_Ty Val.
  UninitPT,    ///< Ptr |->_Ty uninit.
  MaybeUninit, ///< Ptr |->_Ty maybe(ValOpt): Some(v) init / None uninit.
  ArrayPT,     ///< Ptr |->_[Ty; Count] Seq (laid-out range).
  ArrayUninit, ///< Ptr |->_[Ty; Count] uninit (laid-out uninitialised range).
  PredCall,    ///< Name(Args) user / ownership predicate.
  GuardedCall, ///< &Kappa Name(Args): a full borrow (§4.2).
  LftAlive,    ///< [Kappa]_Frac.
  LftDead,     ///< [†Kappa].
  Observation, ///< <Psi> prophetic observation.
  ValueObs,    ///< VO_{PcyVar}(Val).
  ProphCtrl,   ///< PC_{PcyVar}(Val).
};

/// One bound variable of an Exists.
struct Binder {
  std::string Name;
  Sort S = Sort::Any;
};

/// An assertion node. Build through the factory functions below.
class Assertion {
public:
  AsrtKind Kind;

  std::vector<AssertionP> Parts; ///< Star.
  std::vector<Binder> Binders;   ///< Exists.
  AssertionP Body;               ///< Exists.
  Expr Formula;                  ///< Pure / Observation.
  Expr Ptr;                      ///< PointsTo variants.
  rmir::TypeRef Ty = nullptr;    ///< PointsTo variants.
  Expr Val;                      ///< PointsTo / MaybeUninit / VO / PC value.
  Expr Count;                    ///< ArrayPT element count.
  Expr Seq;                      ///< ArrayPT contents.
  std::string Name;              ///< PredCall / GuardedCall.
  std::vector<Expr> Args;        ///< PredCall / GuardedCall.
  Expr Kappa;                    ///< GuardedCall / LftAlive / LftDead.
  Expr Frac;                     ///< LftAlive fraction.
  Expr PcyVar;                   ///< ValueObs / ProphCtrl prophecy variable.

  explicit Assertion(AsrtKind K) : Kind(K) {}

  /// Renders the assertion for diagnostics and documentation.
  std::string str() const;
};

AssertionP star(std::vector<AssertionP> Parts);
AssertionP emp();
AssertionP exists(std::vector<Binder> Binders, AssertionP Body);
AssertionP pure(Expr Formula);
AssertionP pointsTo(Expr Ptr, rmir::TypeRef Ty, Expr Val);
AssertionP uninitPT(Expr Ptr, rmir::TypeRef Ty);
AssertionP maybeUninit(Expr Ptr, rmir::TypeRef Ty, Expr ValOpt);
AssertionP arrayPT(Expr Ptr, rmir::TypeRef ElemTy, Expr Count, Expr Seq);
AssertionP arrayUninit(Expr Ptr, rmir::TypeRef ElemTy, Expr Count);
AssertionP predCall(std::string Name, std::vector<Expr> Args);
AssertionP guardedCall(Expr Kappa, std::string Name, std::vector<Expr> Args);
AssertionP lftAlive(Expr Kappa, Expr Frac);
AssertionP lftDead(Expr Kappa);
AssertionP observation(Expr Psi);
AssertionP valueObs(Expr PcyVar, Expr Val);
AssertionP prophCtrl(Expr PcyVar, Expr Val);

/// Collects the free variables of \p A (variables not bound by an Exists).
void collectFreeVars(const AssertionP &A, std::set<std::string> &Out);

/// Applies \p S to every expression of \p A, respecting Exists binders
/// (bound names are never substituted).
AssertionP substAssertion(const AssertionP &A, const Subst &S);

} // namespace gilsonite
} // namespace gilr

#endif // GILR_GILSONITE_ASSERTION_H
