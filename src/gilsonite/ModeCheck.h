//===- gilsonite/ModeCheck.h - In/Out dataflow analysis (§7.2) -------------===//
///
/// \file
/// Gillian requires every predicate parameter to be declared In or Out such
/// that out-parameters can be uniquely learned from the in-parameters
/// (§7.2). This module implements the dataflow analysis: starting from the
/// in-parameters (and 'kappa for guarded predicates), a fixpoint computes
/// which variables become known through pure equalities (with constructor
/// decomposition), points-to values, value observers, and the out-parameters
/// of nested predicate calls. A clause is well-moded when every existential
/// binder and every out-parameter is known at the fixpoint.
///
/// The paper notes (§7.2) that this analysis is what enforces
/// RustHornBelt's ty_own_proph side condition in practice: a representation
/// depending on a prophecy can only be learned through the mutable-reference
/// ownership predicate, which provides the associated value observer.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_GILSONITE_MODECHECK_H
#define GILR_GILSONITE_MODECHECK_H

#include "gilsonite/PredDecl.h"

#include <string>
#include <vector>

namespace gilr {
namespace gilsonite {

/// Checks every clause of \p Decl against the mode discipline. Returns a
/// list of human-readable diagnostics; empty means well-moded.
std::vector<std::string> checkPredModes(const PredDecl &Decl,
                                        const PredTable &Table);

/// Checks all predicates in \p Table.
std::vector<std::string> checkAllModes(const PredTable &Table);

} // namespace gilsonite
} // namespace gilr

#endif // GILR_GILSONITE_MODECHECK_H
