//===- gilsonite/Spec.cpp --------------------------------------------------------===//

#include "gilsonite/Spec.h"

#include "support/Deps.h"
#include "support/Diagnostics.h"

using namespace gilr;
using namespace gilr::gilsonite;

void SpecTable::add(Spec S) {
  auto [It, Inserted] = Map.emplace(S.Func, std::move(S));
  if (!Inserted)
    fatalError("spec for '" + It->first + "' declared twice");
}

const Spec *SpecTable::lookup(const std::string &Func) const {
  // Incremental-verification dependency: the proof consulted this spec.
  deps::note(deps::Kind::Spec, Func);
  auto It = Map.find(Func);
  return It == Map.end() ? nullptr : &It->second;
}

Spec *SpecTable::lookupMutable(const std::string &Func) {
  auto It = Map.find(Func);
  return It == Map.end() ? nullptr : &It->second;
}
