//===- gilsonite/Ownable.cpp -----------------------------------------------------===//

#include "gilsonite/Ownable.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"

#include <cassert>

using namespace gilr;
using namespace gilr::gilsonite;
using rmir::TypeKind;
using rmir::TypeRef;

/// The canonical parameter list of an ownership predicate.
static std::vector<PredParam> ownParams() {
  return {PredParam{"self", Sort::Any, /*In=*/true},
          PredParam{"repr", Sort::Any, /*In=*/false},
          PredParam{"'k", Sort::Lft, /*In=*/true}};
}

std::string OwnableRegistry::ownPred(TypeRef Ty) {
  std::string Name = ownPredName(Ty);
  if (Preds.contains(Name))
    return Name;
  switch (Ty->Kind) {
  case TypeKind::Bool:
  case TypeKind::Int:
  case TypeKind::Unit:
  case TypeKind::RawPtr:
    deriveScalar(Ty);
    return Name;
  case TypeKind::Param:
    deriveParam(Ty);
    return Name;
  case TypeKind::Enum:
    if (Ty->isOption()) {
      deriveOption(Ty);
      return Name;
    }
    break;
  case TypeKind::Ref:
    deriveMutRef(Ty);
    return Name;
  default:
    break;
  }
  fatalError("no Ownable implementation registered for type " + Ty->str());
}

AssertionP OwnableRegistry::own(TypeRef Ty, Expr Self, Expr Repr,
                                Expr Kappa) {
  std::string Name = ownPred(Ty);
  return predCall(Name, {std::move(Self), std::move(Repr), std::move(Kappa)});
}

void OwnableRegistry::registerUserImpl(TypeRef Ty,
                                       std::vector<AssertionP> Clauses) {
  PredDecl D;
  D.Name = ownPredName(Ty);
  D.Params = ownParams();
  D.Clauses = std::move(Clauses);
  Preds.declare(std::move(D));
}

void OwnableRegistry::deriveScalar(TypeRef Ty) {
  // own$T(self, repr, 'k) := repr = self.
  PredDecl D;
  D.Name = ownPredName(Ty);
  D.Params = ownParams();
  D.Clauses = {pure(mkEq(mkVar("repr", Sort::Any), mkVar("self", Sort::Any)))};
  Preds.declareIfAbsent(std::move(D));
}

void OwnableRegistry::deriveParam(TypeRef Ty) {
  // Abstract: cannot be unfolded, so proofs hold for every instantiation.
  PredDecl D;
  D.Name = ownPredName(Ty);
  D.Params = ownParams();
  D.Abstract = true;
  Preds.declareIfAbsent(std::move(D));
}

void OwnableRegistry::deriveOption(TypeRef Ty) {
  TypeRef Payload = Ty->optionPayload();
  std::string PayloadOwn = ownPred(Payload);

  Expr Self = mkVar("self", Sort::Opt);
  Expr Repr = mkVar("repr", Sort::Opt);
  Expr K = mkVar("'k", Sort::Lft);

  // Clause None: self = None * repr = None.
  AssertionP NoneClause =
      star({pure(mkEq(Self, mkNone())), pure(mkEq(Repr, mkNone()))});

  // Clause Some: exists v rv. self = Some(v) * own$U(v, rv, 'k)
  //              * repr = Some(rv).
  Expr V = mkVar("v?", Sort::Any);
  Expr RV = mkVar("rv?", Sort::Any);
  AssertionP SomeClause =
      exists({Binder{"v?", Sort::Any}, Binder{"rv?", Sort::Any}},
             star({pure(mkEq(Self, mkSome(V))),
                   predCall(PayloadOwn, {V, RV, K}),
                   pure(mkEq(Repr, mkSome(RV)))}));

  PredDecl D;
  D.Name = ownPredName(Ty);
  D.Params = ownParams();
  D.Clauses = {NoneClause, SomeClause};
  Preds.declareIfAbsent(std::move(D));
}

void OwnableRegistry::deriveMutRef(TypeRef Ty) {
  TypeRef Pointee = Ty->Pointee;
  std::string PointeeOwn = ownPred(Pointee);

  // Inner guarded predicate (the full borrow's content):
  //   mutref_inner$U(p, x) @ 'kappa :=
  //     exists v a. p |->_U v * own$U(v, a, 'kappa) * PC_x(a).
  {
    PredDecl Inner;
    Inner.Name = mutRefInnerName(Pointee);
    Inner.Params = {PredParam{"p", Sort::Any, true},
                    PredParam{"x", Sort::Any, true}};
    Inner.Guardable = true;
    Expr P = mkVar("p", Sort::Any);
    Expr X = mkVar("x", Sort::Any);
    Expr V = mkVar("v?", Sort::Any);
    Expr A = mkVar("a?", Sort::Any);
    Inner.Clauses = {exists(
        {Binder{"v?", Sort::Any}, Binder{"a?", Sort::Any}},
        star({pointsTo(P, Pointee, V),
              predCall(PointeeOwn, {V, A, mkVar(kappaBinderName(), Sort::Lft)}),
              prophCtrl(X, A)}))};
    Preds.declareIfAbsent(std::move(Inner));
  }

  // own$&mut U(self, repr, 'k) :=
  //   exists p x cur. self = (p, x) * repr = (cur, x)
  //     * VO_x(cur) * &'k mutref_inner$U(p, x).
  Expr Self = mkVar("self", Sort::Any);
  Expr Repr = mkVar("repr", Sort::Any);
  Expr K = mkVar("'k", Sort::Lft);
  Expr P = mkVar("p?", Sort::Any);
  Expr X = mkVar("x?", Sort::Any);
  Expr Cur = mkVar("cur?", Sort::Any);

  AssertionP Clause = exists(
      {Binder{"p?", Sort::Any}, Binder{"x?", Sort::Any},
       Binder{"cur?", Sort::Any}},
      star({pure(mkEq(Self, mkTuple({P, X}))),
            valueObs(X, Cur),
            guardedCall(K, mutRefInnerName(Pointee), {P, X}),
            pure(mkEq(Repr, mkTuple({Cur, X})))}));

  PredDecl D;
  D.Name = ownPredName(Ty);
  D.Params = ownParams();
  D.Clauses = {Clause};
  Preds.declareIfAbsent(std::move(D));
}

Spec OwnableRegistry::makeShowSafetySpec(const rmir::Function &F) {
  Expr K = mkVar(ambientLifetimeName(), Sort::Lft);
  Expr Q = mkVar(ambientFractionName(), Sort::Real);

  Spec S;
  S.Func = F.Name;
  S.Doc = "#[show_safety]";
  S.SpecVars.push_back(Binder{ambientLifetimeName(), Sort::Lft});
  S.SpecVars.push_back(Binder{ambientFractionName(), Sort::Real});

  std::vector<AssertionP> Pre = {lftAlive(K, Q)};
  for (unsigned I = 0; I != F.NumParams; ++I) {
    const rmir::Local &Param = F.Locals[1 + I];
    std::string ReprName = "m$" + Param.Name;
    S.SpecVars.push_back(Binder{ReprName, Sort::Any});
    Pre.push_back(own(Param.Ty, mkVar(Param.Name, Sort::Any),
                      mkVar(ReprName, Sort::Any), K));
  }
  S.Pre = star(std::move(Pre));

  // Post: the result is owned (for some representation) and the token is
  // returned.
  AssertionP OwnRet =
      F.returnType()->Kind == TypeKind::Unit
          ? emp()
          : exists({Binder{"m$ret", Sort::Any}},
                   own(F.returnType(), mkVar(retVarName(), Sort::Any),
                       mkVar("m$ret", Sort::Any), K));
  S.Post = star({lftAlive(K, Q), OwnRet});
  return S;
}
