//===- gilsonite/Ownable.h - The Ownable trait registry (§2.2, §5.1) -------===//
///
/// \file
/// The C++ counterpart of the Gilsonite `Ownable` trait: every type T that
/// participates in specifications has an *ownership predicate* own$T(self,
/// repr, κ) connecting a Rust value to its pure representation (Fig. 1).
/// User types (LinkedList, Node) register hand-written predicates; this
/// registry derives the built-in implementations on demand:
///
///  * machine integers / bool / unit / raw pointers: repr = self (pure);
///  * type parameters: an abstract predicate (§4.2) — provable for all
///    instantiations;
///  * Option<U>: None / Some clauses threading U's ownership;
///  * &mut U: RustHornBelt's prophetic ownership predicate (§5.1) — a value
///    observer for the current representation plus a full borrow (guarded
///    predicate) holding the pointee's ownership and the prophecy
///    controller.
///
/// It also implements the #[show_safety] expansion (§2.2): the RustBelt
/// type-safety spec requiring all parameters owned on entry and the result
/// owned on exit, under an ambient lifetime token.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_GILSONITE_OWNABLE_H
#define GILR_GILSONITE_OWNABLE_H

#include "gilsonite/PredDecl.h"
#include "gilsonite/Spec.h"
#include "rmir/Program.h"

namespace gilr {
namespace gilsonite {

/// Registry of Ownable implementations; derives built-ins on demand.
class OwnableRegistry {
public:
  OwnableRegistry(rmir::TyCtx &Types, PredTable &Preds)
      : Types(Types), Preds(Preds) {}

  /// The canonical ownership predicate name of \p Ty.
  static std::string ownPredName(rmir::TypeRef Ty) {
    return "own$" + Ty->str();
  }

  /// The guarded inner predicate of &mut \p Pointee.
  static std::string mutRefInnerName(rmir::TypeRef Pointee) {
    return "mutref_inner$" + Pointee->str();
  }

  /// Ensures own$Ty is declared (deriving it when built-in) and returns its
  /// name. User types must have registered their predicate beforehand.
  std::string ownPred(rmir::TypeRef Ty);

  /// Builds an own$Ty(self, repr, kappa) predicate call.
  AssertionP own(rmir::TypeRef Ty, Expr Self, Expr Repr, Expr Kappa);

  /// Declares a user ownership predicate with the canonical parameters
  /// (self In, repr Out, kappa In) and the given clauses.
  void registerUserImpl(rmir::TypeRef Ty, std::vector<AssertionP> Clauses);

  /// Expands #[show_safety] for \p F into a type-safety spec (Fig. 3 left):
  ///   { [κ]_q * own(arg_i, m_i) } f(args) { [κ]_q * own(ret, m_ret) }.
  Spec makeShowSafetySpec(const rmir::Function &F);

  rmir::TyCtx &types() { return Types; }
  PredTable &preds() { return Preds; }

private:
  void deriveScalar(rmir::TypeRef Ty);
  void deriveParam(rmir::TypeRef Ty);
  void deriveOption(rmir::TypeRef Ty);
  void deriveMutRef(rmir::TypeRef Ty);

  rmir::TyCtx &Types;
  PredTable &Preds;
};

} // namespace gilsonite
} // namespace gilr

#endif // GILR_GILSONITE_OWNABLE_H
