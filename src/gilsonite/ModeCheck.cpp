//===- gilsonite/ModeCheck.cpp ----------------------------------------------------===//

#include "gilsonite/ModeCheck.h"

#include "support/StringUtils.h"

#include <set>

using namespace gilr;
using namespace gilr::gilsonite;

namespace {

/// Flattened view of a clause: binders plus atomic parts.
struct FlatClause {
  std::set<std::string> Binders;
  std::vector<AssertionP> Atoms;
};

void flatten(const AssertionP &A, FlatClause &Out) {
  switch (A->Kind) {
  case AsrtKind::Star:
    for (const AssertionP &P : A->Parts)
      flatten(P, Out);
    return;
  case AsrtKind::Exists:
    for (const Binder &B : A->Binders)
      Out.Binders.insert(B.Name);
    flatten(A->Body, Out);
    return;
  default:
    Out.Atoms.push_back(A);
    return;
  }
}

bool allKnown(const Expr &E, const std::set<std::string> &Known) {
  if (!E)
    return true;
  std::set<std::string> Vars;
  collectVars(E, Vars);
  for (const std::string &V : Vars)
    if (!Known.count(V))
      return false;
  return true;
}

/// If \p Pattern can be *learned* against a known value (it is a
/// constructor tree over variables), adds its unknown variables to \p Out
/// and returns true.
bool learnablePattern(const Expr &Pattern, const std::set<std::string> &Known,
                      std::set<std::string> &Out) {
  if (!Pattern)
    return true;
  switch (Pattern->Kind) {
  case ExprKind::Var:
    if (!Known.count(Pattern->Name))
      Out.insert(Pattern->Name);
    return true;
  case ExprKind::TupleLit:
  case ExprKind::Some:
  case ExprKind::SeqUnit:
  case ExprKind::SeqConcat: {
    for (const Expr &Kid : Pattern->Kids)
      if (!learnablePattern(Kid, Known, Out))
        return false;
    return true;
  }
  default:
    // Any other shape is only usable as a check, requiring all variables
    // known.
    return allKnown(Pattern, Known);
  }
}

} // namespace

std::vector<std::string>
gilr::gilsonite::checkPredModes(const PredDecl &Decl, const PredTable &Table) {
  std::vector<std::string> Errors;
  if (Decl.Abstract)
    return Errors;

  for (std::size_t CI = 0, CE = Decl.Clauses.size(); CI != CE; ++CI) {
    FlatClause Flat;
    flatten(Decl.Clauses[CI], Flat);

    std::set<std::string> Known;
    for (const PredParam &P : Decl.Params)
      if (P.In)
        Known.insert(P.Name);
    if (Decl.Guardable)
      Known.insert(kappaBinderName());

    // Fixpoint: repeatedly try to learn from atoms.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const AssertionP &A : Flat.Atoms) {
        std::set<std::string> Learned;
        switch (A->Kind) {
        case AsrtKind::Pure: {
          if (A->Formula->Kind != ExprKind::Eq)
            break;
          const Expr &L = A->Formula->Kids[0];
          const Expr &R = A->Formula->Kids[1];
          if (allKnown(L, Known))
            learnablePattern(R, Known, Learned);
          else if (allKnown(R, Known))
            learnablePattern(L, Known, Learned);
          break;
        }
        case AsrtKind::PointsTo:
          if (allKnown(A->Ptr, Known))
            learnablePattern(A->Val, Known, Learned);
          break;
        case AsrtKind::MaybeUninit:
          if (allKnown(A->Ptr, Known))
            learnablePattern(A->Val, Known, Learned);
          break;
        case AsrtKind::ArrayPT:
          if (allKnown(A->Ptr, Known) && allKnown(A->Count, Known))
            learnablePattern(A->Seq, Known, Learned);
          break;
        case AsrtKind::ValueObs:
        case AsrtKind::ProphCtrl:
          if (allKnown(A->PcyVar, Known))
            learnablePattern(A->Val, Known, Learned);
          break;
        case AsrtKind::PredCall:
        case AsrtKind::GuardedCall: {
          const PredDecl *Callee = Table.lookup(A->Name);
          if (!Callee || Callee->Params.size() != A->Args.size())
            break;
          bool InsKnown = true;
          for (std::size_t I = 0, E = A->Args.size(); I != E; ++I)
            if (Callee->Params[I].In && !allKnown(A->Args[I], Known))
              InsKnown = false;
          if (A->Kind == AsrtKind::GuardedCall &&
              !allKnown(A->Kappa, Known))
            InsKnown = false;
          if (!InsKnown)
            break;
          for (std::size_t I = 0, E = A->Args.size(); I != E; ++I)
            if (!Callee->Params[I].In)
              learnablePattern(A->Args[I], Known, Learned);
          break;
        }
        default:
          break;
        }
        for (const std::string &V : Learned)
          if (Known.insert(V).second)
            Changed = true;
      }
    }

    // Every binder and out-parameter must be known.
    for (const std::string &B : Flat.Binders)
      if (!Known.count(B))
        Errors.push_back(Decl.Name + " clause " + std::to_string(CI) +
                         ": existential '" + B +
                         "' cannot be learned from the in-parameters");
    for (const PredParam &P : Decl.Params)
      if (!P.In && !Known.count(P.Name))
        Errors.push_back(Decl.Name + " clause " + std::to_string(CI) +
                         ": out-parameter '" + P.Name +
                         "' cannot be learned from the in-parameters");
  }
  return Errors;
}

std::vector<std::string>
gilr::gilsonite::checkAllModes(const PredTable &Table) {
  std::vector<std::string> Errors;
  for (const auto &[Name, Decl] : Table.all()) {
    std::vector<std::string> Es = checkPredModes(Decl, Table);
    Errors.insert(Errors.end(), Es.begin(), Es.end());
  }
  return Errors;
}
