//===- gilsonite/PredDecl.h - Predicate declarations and the table ---------===//
///
/// \file
/// User and derived predicate declarations: named, with moded parameters
/// (In / Out, §7.2 of the paper) and a list of definition clauses
/// (disjuncts). Abstract predicates (no clauses) model the ownership
/// predicates of type parameters — they can be produced and consumed but
/// never unfolded, so a proof carried out against them holds for every
/// instantiation (§4.2 "Compiling away higher-orderness").
///
/// Guarded predicate declarations additionally bind the implicit lifetime
/// variable \c 'kappa in their body: gunfold substitutes the guard lifetime
/// for it (the [κ/α] substitution in Unfold-Guarded).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_GILSONITE_PREDDECL_H
#define GILR_GILSONITE_PREDDECL_H

#include "gilsonite/Assertion.h"
#include "sym/VarGen.h"

#include <map>

namespace gilr {
namespace gilsonite {

/// Name of the implicit lifetime binder available in guarded predicate
/// bodies.
inline const char *kappaBinderName() { return "'kappa"; }

/// A moded predicate parameter.
struct PredParam {
  std::string Name;
  Sort S = Sort::Any;
  bool In = true;
};

/// A predicate declaration.
struct PredDecl {
  std::string Name;
  std::vector<PredParam> Params;
  std::vector<AssertionP> Clauses;
  bool Abstract = false;
  /// Guarded predicates may mention 'kappa in their clauses.
  bool Guardable = false;

  std::vector<bool> inParamFlags() const {
    std::vector<bool> Flags;
    Flags.reserve(Params.size());
    for (const PredParam &P : Params)
      Flags.push_back(P.In);
    return Flags;
  }
};

/// The table of declared predicates.
class PredTable {
public:
  /// Declares \p Decl; re-declaration under the same name is an error.
  void declare(PredDecl Decl);

  /// Declares if not present (used by on-demand derived predicates).
  void declareIfAbsent(PredDecl Decl);

  const PredDecl *lookup(const std::string &Name) const;
  bool contains(const std::string &Name) const { return Map.count(Name); }

  const std::map<std::string, PredDecl> &all() const { return Map; }

private:
  std::map<std::string, PredDecl> Map;
};

/// Instantiates clause \p ClauseIdx of \p Decl with arguments \p Args and
/// (for guarded predicates) the guard lifetime \p Kappa, renaming all
/// existential binders to fresh names from \p VG so instantiations never
/// capture.
AssertionP instantiateClause(const PredDecl &Decl, std::size_t ClauseIdx,
                             const std::vector<Expr> &Args, const Expr &Kappa,
                             VarGen &VG);

} // namespace gilsonite
} // namespace gilr

#endif // GILR_GILSONITE_PREDDECL_H
