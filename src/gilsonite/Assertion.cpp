//===- gilsonite/Assertion.cpp ---------------------------------------------------===//

#include "gilsonite/Assertion.h"

#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "sym/Printer.h"

#include <cassert>
#include <set>

using namespace gilr;
using namespace gilr::gilsonite;

static std::shared_ptr<Assertion> make(AsrtKind K) {
  return std::make_shared<Assertion>(K);
}

AssertionP gilr::gilsonite::star(std::vector<AssertionP> Parts) {
  // Flatten nested stars for readability.
  std::vector<AssertionP> Flat;
  for (AssertionP &P : Parts) {
    assert(P && "null assertion in star");
    if (P->Kind == AsrtKind::Star) {
      for (const AssertionP &Kid : P->Parts)
        Flat.push_back(Kid);
      continue;
    }
    Flat.push_back(std::move(P));
  }
  if (Flat.size() == 1)
    return Flat[0];
  auto A = make(AsrtKind::Star);
  A->Parts = std::move(Flat);
  return A;
}

AssertionP gilr::gilsonite::emp() { return star({}); }

AssertionP gilr::gilsonite::exists(std::vector<Binder> Binders,
                                   AssertionP Body) {
  if (Binders.empty())
    return Body;
  auto A = make(AsrtKind::Exists);
  A->Binders = std::move(Binders);
  A->Body = std::move(Body);
  return A;
}

AssertionP gilr::gilsonite::pure(Expr Formula) {
  auto A = make(AsrtKind::Pure);
  A->Formula = std::move(Formula);
  return A;
}

AssertionP gilr::gilsonite::pointsTo(Expr Ptr, rmir::TypeRef Ty, Expr Val) {
  auto A = make(AsrtKind::PointsTo);
  A->Ptr = std::move(Ptr);
  A->Ty = Ty;
  A->Val = std::move(Val);
  return A;
}

AssertionP gilr::gilsonite::uninitPT(Expr Ptr, rmir::TypeRef Ty) {
  auto A = make(AsrtKind::UninitPT);
  A->Ptr = std::move(Ptr);
  A->Ty = Ty;
  return A;
}

AssertionP gilr::gilsonite::maybeUninit(Expr Ptr, rmir::TypeRef Ty,
                                        Expr ValOpt) {
  auto A = make(AsrtKind::MaybeUninit);
  A->Ptr = std::move(Ptr);
  A->Ty = Ty;
  A->Val = std::move(ValOpt);
  return A;
}

AssertionP gilr::gilsonite::arrayPT(Expr Ptr, rmir::TypeRef ElemTy, Expr Count,
                                    Expr Seq) {
  auto A = make(AsrtKind::ArrayPT);
  A->Ptr = std::move(Ptr);
  A->Ty = ElemTy;
  A->Count = std::move(Count);
  A->Seq = std::move(Seq);
  return A;
}

AssertionP gilr::gilsonite::arrayUninit(Expr Ptr, rmir::TypeRef ElemTy,
                                        Expr Count) {
  auto A = make(AsrtKind::ArrayUninit);
  A->Ptr = std::move(Ptr);
  A->Ty = ElemTy;
  A->Count = std::move(Count);
  return A;
}

AssertionP gilr::gilsonite::predCall(std::string Name,
                                     std::vector<Expr> Args) {
  auto A = make(AsrtKind::PredCall);
  A->Name = std::move(Name);
  A->Args = std::move(Args);
  return A;
}

AssertionP gilr::gilsonite::guardedCall(Expr Kappa, std::string Name,
                                        std::vector<Expr> Args) {
  auto A = make(AsrtKind::GuardedCall);
  A->Kappa = std::move(Kappa);
  A->Name = std::move(Name);
  A->Args = std::move(Args);
  return A;
}

AssertionP gilr::gilsonite::lftAlive(Expr Kappa, Expr Frac) {
  auto A = make(AsrtKind::LftAlive);
  A->Kappa = std::move(Kappa);
  A->Frac = std::move(Frac);
  return A;
}

AssertionP gilr::gilsonite::lftDead(Expr Kappa) {
  auto A = make(AsrtKind::LftDead);
  A->Kappa = std::move(Kappa);
  return A;
}

AssertionP gilr::gilsonite::observation(Expr Psi) {
  auto A = make(AsrtKind::Observation);
  A->Formula = std::move(Psi);
  return A;
}

AssertionP gilr::gilsonite::valueObs(Expr PcyVar, Expr Val) {
  auto A = make(AsrtKind::ValueObs);
  A->PcyVar = std::move(PcyVar);
  A->Val = std::move(Val);
  return A;
}

AssertionP gilr::gilsonite::prophCtrl(Expr PcyVar, Expr Val) {
  auto A = make(AsrtKind::ProphCtrl);
  A->PcyVar = std::move(PcyVar);
  A->Val = std::move(Val);
  return A;
}

std::string Assertion::str() const {
  switch (Kind) {
  case AsrtKind::Star: {
    if (Parts.empty())
      return "emp";
    std::vector<std::string> Ss;
    for (const AssertionP &P : Parts)
      Ss.push_back(P->str());
    return "(" + join(Ss, " * ") + ")";
  }
  case AsrtKind::Exists: {
    std::vector<std::string> Names;
    for (const Binder &B : Binders)
      Names.push_back(B.Name);
    return "(exists " + join(Names, " ") + ". " + Body->str() + ")";
  }
  case AsrtKind::Pure:
    return exprToString(Formula);
  case AsrtKind::PointsTo:
    return exprToString(Ptr) + " |->_" + Ty->str() + " " + exprToString(Val);
  case AsrtKind::UninitPT:
    return exprToString(Ptr) + " |->_" + Ty->str() + " uninit";
  case AsrtKind::MaybeUninit:
    return exprToString(Ptr) + " |->_" + Ty->str() + " maybe " +
           exprToString(Val);
  case AsrtKind::ArrayPT:
    return exprToString(Ptr) + " |->_[" + Ty->str() + "; " +
           exprToString(Count) + "] " + exprToString(Seq);
  case AsrtKind::ArrayUninit:
    return exprToString(Ptr) + " |->_[" + Ty->str() + "; " +
           exprToString(Count) + "] uninit";
  case AsrtKind::PredCall:
  case AsrtKind::GuardedCall: {
    std::vector<std::string> Ss;
    for (const Expr &E : Args)
      Ss.push_back(exprToString(E));
    std::string Head =
        Kind == AsrtKind::GuardedCall ? "&" + exprToString(Kappa) + " " : "";
    return Head + Name + "(" + join(Ss, ", ") + ")";
  }
  case AsrtKind::LftAlive:
    return "[" + exprToString(Kappa) + "]_" + exprToString(Frac);
  case AsrtKind::LftDead:
    return "[dead " + exprToString(Kappa) + "]";
  case AsrtKind::Observation:
    return "<" + exprToString(Formula) + ">";
  case AsrtKind::ValueObs:
    return "VO_" + exprToString(PcyVar) + "(" + exprToString(Val) + ")";
  case AsrtKind::ProphCtrl:
    return "PC_" + exprToString(PcyVar) + "(" + exprToString(Val) + ")";
  }
  GILR_UNREACHABLE("unknown assertion kind");
}

static void collectFreeVarsImpl(const AssertionP &A,
                                std::set<std::string> &Bound,
                                std::set<std::string> &Out) {
  auto addExpr = [&](const Expr &E) {
    if (!E)
      return;
    std::set<std::string> Vars;
    collectVars(E, Vars);
    for (const std::string &V : Vars)
      if (!Bound.count(V))
        Out.insert(V);
  };
  switch (A->Kind) {
  case AsrtKind::Star:
    for (const AssertionP &P : A->Parts)
      collectFreeVarsImpl(P, Bound, Out);
    return;
  case AsrtKind::Exists: {
    std::vector<std::string> Added;
    for (const Binder &B : A->Binders)
      if (Bound.insert(B.Name).second)
        Added.push_back(B.Name);
    collectFreeVarsImpl(A->Body, Bound, Out);
    for (const std::string &N : Added)
      Bound.erase(N);
    return;
  }
  default:
    addExpr(A->Formula);
    addExpr(A->Ptr);
    addExpr(A->Val);
    addExpr(A->Count);
    addExpr(A->Seq);
    addExpr(A->Kappa);
    addExpr(A->Frac);
    addExpr(A->PcyVar);
    for (const Expr &E : A->Args)
      addExpr(E);
    return;
  }
}

void gilr::gilsonite::collectFreeVars(const AssertionP &A,
                                      std::set<std::string> &Out) {
  std::set<std::string> Bound;
  collectFreeVarsImpl(A, Bound, Out);
}

AssertionP gilr::gilsonite::substAssertion(const AssertionP &A,
                                           const Subst &S) {
  switch (A->Kind) {
  case AsrtKind::Star: {
    std::vector<AssertionP> Parts;
    Parts.reserve(A->Parts.size());
    for (const AssertionP &P : A->Parts)
      Parts.push_back(substAssertion(P, S));
    return star(std::move(Parts));
  }
  case AsrtKind::Exists: {
    // Shadowed names must not be substituted.
    Subst Inner;
    std::set<std::string> Shadowed;
    for (const Binder &B : A->Binders)
      Shadowed.insert(B.Name);
    for (const auto &[Name, Value] : S.entries())
      if (!Shadowed.count(Name))
        Inner.bind(Name, Value);
    return exists(A->Binders, substAssertion(A->Body, Inner));
  }
  default: {
    auto New = std::make_shared<Assertion>(A->Kind);
    *New = *A;
    auto app = [&](Expr &E) {
      if (E)
        E = S.apply(E);
    };
    app(New->Formula);
    app(New->Ptr);
    app(New->Val);
    app(New->Count);
    app(New->Seq);
    app(New->Kappa);
    app(New->Frac);
    app(New->PcyVar);
    for (Expr &E : New->Args)
      E = S.apply(E);
    return New;
  }
  }
}
