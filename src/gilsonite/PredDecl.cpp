//===- gilsonite/PredDecl.cpp ----------------------------------------------------===//

#include "gilsonite/PredDecl.h"

#include "support/Deps.h"
#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"

#include <cassert>

using namespace gilr;
using namespace gilr::gilsonite;

void PredTable::declare(PredDecl Decl) {
  auto [It, Inserted] = Map.emplace(Decl.Name, std::move(Decl));
  if (!Inserted)
    fatalError("predicate '" + It->first + "' declared twice");
}

void PredTable::declareIfAbsent(PredDecl Decl) {
  Map.emplace(Decl.Name, std::move(Decl));
}

const PredDecl *PredTable::lookup(const std::string &Name) const {
  // Incremental-verification dependency: the proof consulted (or probed
  // for) this predicate.
  deps::note(deps::Kind::Pred, Name);
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : &It->second;
}

/// Renames every Exists binder in \p A to a fresh name.
static AssertionP freshenBinders(const AssertionP &A, VarGen &VG) {
  switch (A->Kind) {
  case AsrtKind::Star: {
    std::vector<AssertionP> Parts;
    for (const AssertionP &P : A->Parts)
      Parts.push_back(freshenBinders(P, VG));
    return star(std::move(Parts));
  }
  case AsrtKind::Exists: {
    Subst Renaming;
    std::vector<Binder> NewBinders;
    for (const Binder &B : A->Binders) {
      Expr Fresh = VG.fresh(B.Name, B.S);
      Renaming.bind(B.Name, Fresh);
      NewBinders.push_back(Binder{Fresh->Name, B.S});
    }
    AssertionP Body = substAssertion(A->Body, Renaming);
    return exists(std::move(NewBinders), freshenBinders(Body, VG));
  }
  default:
    return A;
  }
}

AssertionP gilr::gilsonite::instantiateClause(const PredDecl &Decl,
                                              std::size_t ClauseIdx,
                                              const std::vector<Expr> &Args,
                                              const Expr &Kappa, VarGen &VG) {
  assert(ClauseIdx < Decl.Clauses.size() && "clause index out of range");
  assert(Args.size() == Decl.Params.size() && "predicate arity mismatch");
  Subst S;
  for (std::size_t I = 0, E = Args.size(); I != E; ++I)
    S.bind(Decl.Params[I].Name, Args[I]);
  if (Kappa)
    S.bind(kappaBinderName(), Kappa);
  AssertionP Inst = substAssertion(Decl.Clauses[ClauseIdx], S);
  return freshenBinders(Inst, VG);
}
