//===- gilsonite/Spec.h - Function specifications ---------------------------===//
///
/// \file
/// Gilsonite function specifications: universally quantified spec variables
/// (the <forall: ...> of #[unsafe_spec], §2.2/§5.4), a precondition over the
/// function parameters, and a postcondition that may additionally mention
/// the distinguished variable \c ret. The ambient lifetime of the borrow
/// parameters is the distinguished variable \c 'a with fraction \c 'q, both
/// added automatically by show_safety / the Pearlite encoder, mirroring the
/// lifetime token the Gillian-Rust compiler inserts (Fig. 3).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_GILSONITE_SPEC_H
#define GILR_GILSONITE_SPEC_H

#include "gilsonite/Assertion.h"

#include <map>

namespace gilr {
namespace gilsonite {

/// Distinguished variable names used by specs.
inline const char *retVarName() { return "ret"; }
inline const char *ambientLifetimeName() { return "'a"; }
inline const char *ambientFractionName() { return "'q"; }

/// A function specification.
struct Spec {
  std::string Func;
  /// Universally quantified spec variables (bound in pre, usable in post).
  std::vector<Binder> SpecVars;
  AssertionP Pre;
  AssertionP Post;
  /// Trusted specs are assumed, not verified (e.g. the conclusion lemma of
  /// a borrow extraction, §4.3, or axiomatised std specs on the Creusot
  /// side).
  bool Trusted = false;
  /// Human-readable provenance (e.g. "#[show_safety]" or "Pearlite
  /// encoding").
  std::string Doc;
};

/// Spec storage, one spec per function name.
class SpecTable {
public:
  void add(Spec S);
  const Spec *lookup(const std::string &Func) const;
  /// Mutable access for edit simulation (tests, benchmarks). Does not note
  /// a proof dependency.
  Spec *lookupMutable(const std::string &Func);
  const std::map<std::string, Spec> &all() const { return Map; }

private:
  std::map<std::string, Spec> Map;
};

} // namespace gilsonite
} // namespace gilr

#endif // GILR_GILSONITE_SPEC_H
