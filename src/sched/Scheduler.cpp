//===- sched/Scheduler.cpp --------------------------------------------------------===//
//
// Also defines the SchedulerConfig-taking overloads declared on
// hybrid::HybridDriver and engine::Verifier: the scheduler is the layer
// between the drivers and the engine, so those entry points live here
// rather than in the lower-level libraries.
//
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include "sched/WorkerPool.h"
#include "support/Budget.h"
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::sched;

Scheduler::Scheduler(const SchedulerConfig &C) : Config(C) {
  if (Config.CacheCapacity > 0)
    Cache = std::make_unique<QueryCache>(Config.CacheCapacity);
}

Scheduler::~Scheduler() = default;

CacheStatsSnapshot Scheduler::cacheStats() const {
  return Cache ? Cache->stats() : CacheStatsSnapshot{};
}

namespace {

/// Arms the job budget, runs \p Body, and reports whether the budget fired.
template <typename BodyFn>
bool withJobBudget(const SchedulerConfig &C, BodyFn &&Body) {
  budget::JobScope Scope(C.JobTimeoutMs * 1000000ull, C.JobBranchCap);
  Body();
  return budget::wasExceeded();
}

void markBudgetExhausted(std::vector<std::string> &Errors, bool &Ok,
                         bool &TimedOut, const std::string &Name) {
  Ok = false;
  TimedOut = true;
  Errors.push_back("job budget exhausted in " + Name + " (" +
                   budget::describe() + "): result is Unknown");
}

} // namespace

void Scheduler::runJobs(
    const JobGraph &G,
    const std::function<void(const ProofJob &)> &RunOne) {
  // The cache is installed process-wide for the duration of the run; the
  // pool's synchronisation publishes it to the workers.
  ScopedQueryCache Install(Cache.get());

  if (trace::enabled())
    metrics::Registry::get().add("sched.jobs", G.Jobs.size());

  if (Config.Threads <= 1 || G.Jobs.size() <= 1) {
    for (const ProofJob &J : G.Jobs)
      RunOne(J);
    return;
  }

  unsigned Threads = Config.Threads;
  if (static_cast<std::size_t>(Threads) > G.Jobs.size())
    Threads = static_cast<unsigned>(G.Jobs.size());
  WorkerPool Pool(Threads);
  for (const ProofJob &J : G.Jobs)
    Pool.submit([&RunOne, &J] { RunOne(J); });
  Pool.wait();
  if (trace::enabled())
    metrics::Registry::get().add("sched.steals", Pool.steals());
}

hybrid::HybridReport
Scheduler::runHybrid(engine::VerifEnv &Env,
                     const creusot::PearliteSpecTable &Contracts,
                     const std::vector<std::string> &UnsafeFuncs,
                     const std::vector<creusot::SafeFn> &Clients) {
  hybrid::HybridReport Report;
  Report.UnsafeSide.resize(UnsafeFuncs.size());
  Report.SafeSide.resize(Clients.size());

  JobGraph G = JobGraph::build(UnsafeFuncs, Clients);
  runJobs(G, [&](const ProofJob &J) {
    // The per-job root span: everything the worker does for this obligation
    // nests under it, so GILR_TRACE output stays attributable per job.
    GILR_TRACE_SCOPE_D("sched", "job", J.Name);
    if (J.K == ProofJob::UnsafeFn) {
      engine::VerifyReport R;
      bool Exhausted = withJobBudget(Config, [&] {
        engine::Verifier V(Env);
        R = V.verifyFunction(J.Name);
      });
      if (Exhausted)
        markBudgetExhausted(R.Errors, R.Ok, R.TimedOut, J.Name);
      Report.UnsafeSide[J.Slot] = std::move(R);
    } else {
      creusot::SafeReport R;
      bool Exhausted = withJobBudget(Config, [&] {
        creusot::SafeVerifier SV(Contracts, Env.Solv);
        R = SV.verify(*J.Client);
      });
      if (Exhausted)
        markBudgetExhausted(R.Errors, R.Ok, R.TimedOut, J.Name);
      Report.SafeSide[J.Slot] = std::move(R);
    }
  });
  return Report;
}

std::vector<engine::VerifyReport>
Scheduler::verifyAll(engine::VerifEnv &Env,
                     const std::vector<std::string> &Names) {
  std::vector<engine::VerifyReport> Reports(Names.size());
  JobGraph G = JobGraph::build(Names, {});
  runJobs(G, [&](const ProofJob &J) {
    GILR_TRACE_SCOPE_D("sched", "job", J.Name);
    engine::VerifyReport R;
    bool Exhausted = withJobBudget(Config, [&] {
      engine::Verifier V(Env);
      R = V.verifyFunction(J.Name);
    });
    if (Exhausted)
      markBudgetExhausted(R.Errors, R.Ok, R.TimedOut, J.Name);
    Reports[J.Slot] = std::move(R);
  });
  return Reports;
}

//===----------------------------------------------------------------------===//
// SchedulerConfig entry points of the lower layers
//===----------------------------------------------------------------------===//

hybrid::HybridReport
hybrid::HybridDriver::run(const std::vector<std::string> &UnsafeFuncs,
                          const std::vector<creusot::SafeFn> &Clients,
                          const sched::SchedulerConfig &Config) {
  Scheduler S(Config);
  return S.runHybrid(Env, Contracts, UnsafeFuncs, Clients);
}

std::vector<engine::VerifyReport>
engine::Verifier::verifyAll(const std::vector<std::string> &Names,
                            const sched::SchedulerConfig &Config) {
  Scheduler S(Config);
  return S.verifyAll(Env, Names);
}
