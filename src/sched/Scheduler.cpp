//===- sched/Scheduler.cpp --------------------------------------------------------===//
//
// Also defines the SchedulerConfig-taking overloads declared on
// hybrid::HybridDriver and engine::Verifier: the scheduler is the layer
// between the drivers and the engine, so those entry points live here
// rather than in the lower-level libraries.
//
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include "analysis/Interproc.h"
#include "analysis/Summary.h"
#include "incr/Session.h"
#include "sched/WorkerPool.h"
#include "solver/Flight.h"
#include "support/Budget.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <optional>

using namespace gilr;
using namespace gilr::sched;

Scheduler::Scheduler(const SchedulerConfig &C) : Config(C) {
  if (Config.CacheCapacity > 0)
    Cache = std::make_unique<QueryCache>(Config.CacheCapacity,
                                         Config.StableCacheKeys);
}

Scheduler::~Scheduler() = default;

CacheStatsSnapshot Scheduler::cacheStats() const {
  return Cache ? Cache->stats() : CacheStatsSnapshot{};
}

void Scheduler::preloadCache(const std::vector<SavedQueryVerdict> &Entries) {
  if (Cache)
    Cache->preload(Entries);
}

std::vector<SavedQueryVerdict> Scheduler::exportCacheEntries() const {
  return Cache ? Cache->exportEntries() : std::vector<SavedQueryVerdict>{};
}

namespace {

/// Arms the job budget, runs \p Body, and reports whether the budget fired.
template <typename BodyFn>
bool withJobBudget(const SchedulerConfig &C, BodyFn &&Body) {
  budget::JobScope Scope(C.JobTimeoutMs * 1000000ull, C.JobBranchCap);
  Body();
  return budget::wasExceeded();
}

void markBudgetExhausted(std::vector<std::string> &Errors, bool &Ok,
                         bool &TimedOut, const std::string &Name) {
  Ok = false;
  TimedOut = true;
  Errors.push_back("job budget exhausted in " + Name + " (" +
                   budget::describe() + "): result is Unknown");
}

/// Snapshots the dependency set and uninstalls the recorder *before* the
/// session records the result: the session's own fingerprint lookups go
/// through the same instrumented tables and must not mutate the set while
/// it is being read.
std::set<incr::DepKey> finishRecording(std::optional<incr::DepRecorder> &Rec) {
  std::set<incr::DepKey> Deps;
  if (Rec) {
    Deps = Rec->taken();
    Rec.reset();
  }
  return Deps;
}

/// A summary's store dependency set is its own reachable closure: every
/// function it saw (body and spec — purity and unsafe-escape read both) and
/// every predicate. Unknown callees are in DepFns too, so a summary
/// invalidates when one gains a body.
std::set<incr::DepKey> fnSummaryDeps(const analysis::FnSummary &S) {
  std::set<incr::DepKey> Deps;
  for (const std::string &D : S.DepFns) {
    Deps.insert({deps::Kind::Function, D});
    Deps.insert({deps::Kind::Spec, D});
  }
  for (const std::string &D : S.DepPreds)
    Deps.insert({deps::Kind::Pred, D});
  return Deps;
}

std::set<incr::DepKey> predSummaryDeps(const analysis::PredSummary &S) {
  std::set<incr::DepKey> Deps;
  for (const std::string &D : S.DepPreds)
    Deps.insert({deps::Kind::Pred, D});
  return Deps;
}

/// Publishes the interproc telemetry section at the end of a scheduled run.
/// Counts come from the session when there is one (replay vs. fresh split);
/// a plain run computed the whole table fresh.
void recordInterprocReport(const analysis::SummaryTable &T,
                           const incr::Session *Incr, uint64_t Triaged,
                           double Seconds) {
  metrics::InterprocReport R;
  R.Valid = true;
  R.FnSummaries = T.Fns.size();
  R.PredSummaries = T.Preds.size();
  if (Incr) {
    R.SummariesComputed = Incr->stats().SummariesComputed;
    R.SummariesReused = Incr->stats().SummariesReused;
  } else {
    R.SummariesComputed = T.Fns.size() + T.Preds.size();
  }
  R.TriagedStatic = Triaged;
  R.Seconds = Seconds;
  metrics::Registry::get().setInterprocReport(std::move(R));
}

} // namespace

void Scheduler::runJobs(
    const JobGraph &G,
    const std::function<void(const ProofJob &)> &RunOne) {
  // The cache is installed process-wide for the duration of the run; the
  // pool's synchronisation publishes it to the workers.
  ScopedQueryCache Install(Cache.get());

  if (trace::enabled())
    metrics::Registry::get().add("sched.jobs", G.Jobs.size());

  if (Config.Threads <= 1 || G.Jobs.size() <= 1) {
    for (const ProofJob &J : G.Jobs)
      RunOne(J);
    recordCacheReport();
    return;
  }

  unsigned Threads = Config.Threads;
  if (static_cast<std::size_t>(Threads) > G.Jobs.size())
    Threads = static_cast<unsigned>(G.Jobs.size());
  WorkerPool Pool(Threads);
  for (const ProofJob &J : G.Jobs)
    Pool.submit([&RunOne, &J] { RunOne(J); });
  Pool.wait();
  if (trace::enabled())
    metrics::Registry::get().add("sched.steals", Pool.steals());
  recordCacheReport();
}

void Scheduler::recordCacheReport() const {
  if (!Cache)
    return;
  CacheStatsSnapshot Snap = Cache->stats();
  metrics::QueryCacheReport R;
  R.Valid = true;
  R.Hits = Snap.Hits;
  R.Misses = Snap.Misses;
  R.Insertions = Snap.Insertions;
  R.Evictions = Snap.Evictions;
  R.Shards.reserve(Snap.Shards.size());
  for (const ShardStatsSnapshot &S : Snap.Shards)
    R.Shards.push_back({S.Hits, S.Misses});
  metrics::Registry::get().setQueryCacheReport(std::move(R));
}

analysis::SummaryTable Scheduler::summaryPhase(engine::VerifEnv &Env,
                                               incr::Session *Incr) {
  GILR_TRACE_SCOPE("sched", "summary-phase");
  if (!Incr)
    return analysis::computeSummaries(Env.Prog, Env.Preds, Env.Specs);

  analysis::SummaryTable T;
  analysis::CallGraph G =
      analysis::CallGraph::build(Env.Prog, Env.Preds, Env.Specs);
  T.PredSccs = analysis::condenseSccs(G.PredRefs);
  T.FnSccs = analysis::condenseSccs(G.FnCalls);

  // Bottom-up, SCC-grouped: every member of an SCC must replay or the whole
  // SCC recomputes — summaries inside one SCC are a joint fixpoint, so a
  // partial replay could mix facts from different program versions. (The
  // grouping costs nothing in practice: each member's dependency closure
  // contains the whole SCC, so the members invalidate together anyway.)
  for (const analysis::Scc &S : T.PredSccs) {
    std::map<std::string, analysis::PredSummary> Hits;
    bool AllHit = true;
    for (const std::string &Name : S.Members) {
      analysis::PredSummary PS;
      if (Incr->lookupSummaryPred(Name, PS))
        Hits.emplace(Name, std::move(PS));
      else {
        AllHit = false;
        break;
      }
    }
    if (AllHit) {
      for (auto &[Name, PS] : Hits)
        T.Preds[Name] = std::move(PS);
      continue;
    }
    analysis::summarizePredScc(Env.Preds, G, S, T);
    for (const std::string &Name : S.Members)
      if (const analysis::PredSummary *PS = T.pred(Name))
        Incr->recordSummaryPred(Name, predSummaryDeps(*PS), *PS);
  }

  for (const analysis::Scc &S : T.FnSccs) {
    std::map<std::string, analysis::FnSummary> Hits;
    bool AllHit = true;
    for (const std::string &Name : S.Members) {
      analysis::FnSummary FS;
      if (Incr->lookupSummaryFn(Name, FS))
        Hits.emplace(Name, std::move(FS));
      else {
        AllHit = false;
        break;
      }
    }
    if (AllHit) {
      for (auto &[Name, FS] : Hits)
        T.Fns[Name] = std::move(FS);
      continue;
    }
    analysis::summarizeFnScc(Env.Prog, Env.Specs, G, S, T);
    for (const std::string &Name : S.Members)
      if (const analysis::FnSummary *FS = T.fn(Name))
        Incr->recordSummaryFn(Name, fnSummaryDeps(*FS), *FS);
  }
  return T;
}

analysis::AnalysisResult Scheduler::lintPhase(
    engine::VerifEnv &Env, const std::vector<std::string> &Names,
    incr::Session *Incr, const analysis::SummaryTable *Summaries,
    std::vector<std::pair<std::string, analysis::EntityVerdict>> &Verdicts) {
  Verdicts.assign(Names.size(),
                  std::pair<std::string, analysis::EntityVerdict>());
  analysis::AnalysisInput In = engine::lintInput(Env);
  In.Summaries = Summaries;
  auto Start = std::chrono::steady_clock::now();
  // Lint jobs ride the same pool as proof jobs. No job budget: lint
  // verdicts must stay deterministic at any worker count (the budget's
  // wall-clock component is the one nondeterminism source runJobs has).
  JobGraph G = JobGraph::build(Names, {});
  runJobs(G, [&](const ProofJob &J) {
    GILR_TRACE_SCOPE_D("sched", "lint-job", J.Name);
    analysis::EntityVerdict V;
    if (Incr && Incr->lookupLint(J.Name, V)) {
      flight::noteCachedObligation(J.Name, 'L', !V.Blocked);
      Verdicts[J.Slot] = {J.Name, std::move(V)};
      return;
    }
    std::optional<incr::DepRecorder> Rec;
    if (Incr)
      Rec.emplace();
    V = analysis::lintEntity(In, J.Name);
    std::set<incr::DepKey> Deps = finishRecording(Rec);
    if (Incr)
      Incr->recordLint(J.Name, Deps, V);
    Verdicts[J.Slot] = {J.Name, std::move(V)};
  });
  // Program-level lints are whole-table cross-references; they are cheap
  // and depend on everything, so they run serially and are never cached.
  std::vector<analysis::Diagnostic> ProgDiags = analysis::lintProgramLevel(In);
  auto End = std::chrono::steady_clock::now();
  return analysis::finalizeAnalysis(
      In.Cfg, Verdicts, std::move(ProgDiags),
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count());
}

hybrid::HybridReport
Scheduler::runHybrid(engine::VerifEnv &Env,
                     const creusot::PearliteSpecTable &Contracts,
                     const std::vector<std::string> &UnsafeFuncs,
                     const std::vector<creusot::SafeFn> &Clients,
                     incr::Session *Incr) {
  hybrid::HybridReport Report;
  Report.UnsafeSide.resize(UnsafeFuncs.size());
  Report.SafeSide.resize(Clients.size());

  std::vector<std::pair<std::string, analysis::EntityVerdict>> Verdicts;
  std::optional<analysis::SummaryTable> Summaries;
  double SummarySeconds = 0.0;
  std::atomic<uint64_t> Triaged{0};
  if (Env.Lint.Enabled) {
    auto S0 = std::chrono::steady_clock::now();
    Summaries.emplace(summaryPhase(Env, Incr));
    SummarySeconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                         std::chrono::steady_clock::now() - S0)
                         .count();
    Report.Analysis = lintPhase(Env, UnsafeFuncs, Incr, &*Summaries, Verdicts);
  }

  JobGraph G = JobGraph::build(UnsafeFuncs, Clients);
  runJobs(G, [&](const ProofJob &J) {
    // The per-job root span: everything the worker does for this obligation
    // nests under it, so GILR_TRACE output stays attributable per job.
    GILR_TRACE_SCOPE_D("sched", "job", J.Name);
    if (J.K == ProofJob::UnsafeFn) {
      const analysis::EntityVerdict *V =
          Verdicts.empty() ? nullptr : &Verdicts[J.Slot].second;
      if (V && V->Blocked) {
        Report.UnsafeSide[J.Slot] = engine::lintBlockedReport(J.Name, *V);
        return;
      }
      // Triage tier: an obligation whose summary proves it trivially safe
      // never reaches the executor (or the proof store — the static verdict
      // is cheaper to recompute than to validate). The predicate is a pure
      // function of the program, so the verdict is byte-stable at any
      // worker count.
      if (Summaries) {
        const rmir::Function *F = Env.Prog.lookup(J.Name);
        const gilsonite::Spec *Sp = Env.Specs.lookup(J.Name);
        if (F && Sp && analysis::triviallyStatic(*F, *Sp, *Summaries)) {
          engine::VerifyReport TR = engine::staticTriageReport(J.Name, *F);
          if (V)
            TR.Diags = V->Diags;
          ++Triaged;
          if (Incr)
            Incr->noteTriagedStatic();
          Report.UnsafeSide[J.Slot] = std::move(TR);
          return;
        }
      }
      engine::VerifyReport R;
      if (Incr && Incr->lookupUnsafe(J.Name, R)) {
        flight::noteCachedObligation(J.Name, 'U', R.Ok);
        if (V)
          R.Diags = V->Diags;
        Report.UnsafeSide[J.Slot] = std::move(R);
        return;
      }
      std::optional<incr::DepRecorder> Rec;
      if (Incr)
        Rec.emplace();
      bool Exhausted = withJobBudget(Config, [&] {
        engine::Verifier V2(Env);
        R = V2.verifyFunction(J.Name);
      });
      if (Exhausted)
        markBudgetExhausted(R.Errors, R.Ok, R.TimedOut, J.Name);
      std::set<incr::DepKey> Deps = finishRecording(Rec);
      if (Incr)
        Incr->recordUnsafe(J.Name, Deps, R);
      if (V)
        R.Diags = V->Diags;
      Report.UnsafeSide[J.Slot] = std::move(R);
    } else {
      creusot::SafeReport R;
      if (Incr && Incr->lookupSafe(*J.Client, R)) {
        flight::noteCachedObligation(J.Name, 'S', R.Ok);
        Report.SafeSide[J.Slot] = std::move(R);
        return;
      }
      std::optional<incr::DepRecorder> Rec;
      if (Incr)
        Rec.emplace();
      bool Exhausted = withJobBudget(Config, [&] {
        creusot::SafeVerifier SV(Contracts, Env.Solv);
        R = SV.verify(*J.Client);
      });
      if (Exhausted)
        markBudgetExhausted(R.Errors, R.Ok, R.TimedOut, J.Name);
      std::set<incr::DepKey> Deps = finishRecording(Rec);
      if (Incr)
        Incr->recordSafe(*J.Client, Deps, R);
      Report.SafeSide[J.Slot] = std::move(R);
    }
  });
  if (Summaries)
    recordInterprocReport(*Summaries, Incr, Triaged.load(), SummarySeconds);
  return Report;
}

std::vector<engine::VerifyReport>
Scheduler::verifyAll(engine::VerifEnv &Env,
                     const std::vector<std::string> &Names,
                     incr::Session *Incr,
                     analysis::AnalysisResult *AnalysisOut) {
  std::vector<engine::VerifyReport> Reports(Names.size());

  std::vector<std::pair<std::string, analysis::EntityVerdict>> Verdicts;
  std::optional<analysis::SummaryTable> Summaries;
  double SummarySeconds = 0.0;
  std::atomic<uint64_t> Triaged{0};
  analysis::AnalysisResult AR;
  if (Env.Lint.Enabled) {
    auto S0 = std::chrono::steady_clock::now();
    Summaries.emplace(summaryPhase(Env, Incr));
    SummarySeconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                         std::chrono::steady_clock::now() - S0)
                         .count();
    AR = lintPhase(Env, Names, Incr, &*Summaries, Verdicts);
  }
  if (AnalysisOut)
    *AnalysisOut = std::move(AR);

  JobGraph G = JobGraph::build(Names, {});
  runJobs(G, [&](const ProofJob &J) {
    GILR_TRACE_SCOPE_D("sched", "job", J.Name);
    const analysis::EntityVerdict *V =
        Verdicts.empty() ? nullptr : &Verdicts[J.Slot].second;
    if (V && V->Blocked) {
      Reports[J.Slot] = engine::lintBlockedReport(J.Name, *V);
      return;
    }
    // Triage tier (see runHybrid): summary-proved obligations skip the
    // executor and report a deterministic static verdict.
    if (Summaries) {
      const rmir::Function *F = Env.Prog.lookup(J.Name);
      const gilsonite::Spec *Sp = Env.Specs.lookup(J.Name);
      if (F && Sp && analysis::triviallyStatic(*F, *Sp, *Summaries)) {
        engine::VerifyReport TR = engine::staticTriageReport(J.Name, *F);
        if (V)
          TR.Diags = V->Diags;
        ++Triaged;
        if (Incr)
          Incr->noteTriagedStatic();
        Reports[J.Slot] = std::move(TR);
        return;
      }
    }
    engine::VerifyReport R;
    if (Incr && Incr->lookupUnsafe(J.Name, R)) {
      flight::noteCachedObligation(J.Name, 'U', R.Ok);
      if (V)
        R.Diags = V->Diags;
      Reports[J.Slot] = std::move(R);
      return;
    }
    std::optional<incr::DepRecorder> Rec;
    if (Incr)
      Rec.emplace();
    bool Exhausted = withJobBudget(Config, [&] {
      engine::Verifier V2(Env);
      R = V2.verifyFunction(J.Name);
    });
    if (Exhausted)
      markBudgetExhausted(R.Errors, R.Ok, R.TimedOut, J.Name);
    std::set<incr::DepKey> Deps = finishRecording(Rec);
    if (Incr)
      Incr->recordUnsafe(J.Name, Deps, R);
    if (V)
      R.Diags = V->Diags;
    Reports[J.Slot] = std::move(R);
  });
  if (Summaries)
    recordInterprocReport(*Summaries, Incr, Triaged.load(), SummarySeconds);
  return Reports;
}

//===----------------------------------------------------------------------===//
// SchedulerConfig entry points of the lower layers
//===----------------------------------------------------------------------===//

hybrid::HybridReport
hybrid::HybridDriver::run(const std::vector<std::string> &UnsafeFuncs,
                          const std::vector<creusot::SafeFn> &Clients,
                          const sched::SchedulerConfig &Config) {
  Scheduler S(Config);
  return S.runHybrid(Env, Contracts, UnsafeFuncs, Clients);
}

std::vector<engine::VerifyReport>
engine::Verifier::verifyAll(const std::vector<std::string> &Names,
                            const sched::SchedulerConfig &Config) {
  Scheduler S(Config);
  return S.verifyAll(Env, Names, nullptr, &LastAnalysis);
}

//===----------------------------------------------------------------------===//
// Incremental entry points (incr::IncrConfig overloads)
//===----------------------------------------------------------------------===//

namespace {

/// Publishes the session's counters as the registry's `incremental`
/// telemetry section (support/Metrics.h), mirroring how the cache snapshot
/// and the analysis summary reach the support layer.
void recordIncrReport(const gilr::incr::IncrRunStats &St) {
  gilr::metrics::IncrReport R;
  R.Valid = true;
  R.Cached = St.cached();
  R.Verified = St.verified();
  R.Invalidated = St.Invalidated;
  R.Salvaged = St.Salvaged;
  R.Implied = St.Implied;
  R.SalvageQueries = St.SalvageQueries;
  R.Compactions = St.Compactions;
  R.CachedLint = St.CachedLint;
  R.AnalyzedLint = St.AnalyzedLint;
  R.StoreLoaded = St.StoreLoaded;
  gilr::metrics::Registry::get().setIncrReport(std::move(R));
}

} // namespace

hybrid::HybridReport
hybrid::HybridDriver::run(const std::vector<std::string> &UnsafeFuncs,
                          const std::vector<creusot::SafeFn> &Clients,
                          const sched::SchedulerConfig &Config,
                          const incr::IncrConfig &Inc,
                          incr::IncrRunStats *StatsOut) {
  if (!Inc.Enabled) {
    if (StatsOut)
      *StatsOut = incr::IncrRunStats();
    return run(UnsafeFuncs, Clients, Config);
  }
  sched::SchedulerConfig C = Config;
  // Persisted / preloaded cache entries are only meaningful under the
  // process-stable key scheme.
  C.StableCacheKeys = true;
  Scheduler S(C);
  incr::Session Sess(Inc, Env, &Contracts);
  if (Inc.LoadSolverCache)
    S.preloadCache(Sess.solverEntriesToLoad());
  hybrid::HybridReport Report =
      S.runHybrid(Env, Contracts, UnsafeFuncs, Clients, &Sess);
  if (Inc.SaveSolverCache)
    Sess.saveSolverEntries(S.exportCacheEntries());
  Sess.flush();
  recordIncrReport(Sess.stats());
  if (StatsOut)
    *StatsOut = Sess.stats();
  return Report;
}

std::vector<engine::VerifyReport>
engine::Verifier::verifyAll(const std::vector<std::string> &Names,
                            const sched::SchedulerConfig &Config,
                            const incr::IncrConfig &Inc,
                            incr::IncrRunStats *StatsOut) {
  if (!Inc.Enabled) {
    if (StatsOut)
      *StatsOut = incr::IncrRunStats();
    return verifyAll(Names, Config);
  }
  sched::SchedulerConfig C = Config;
  C.StableCacheKeys = true;
  Scheduler S(C);
  incr::Session Sess(Inc, Env, /*Contracts=*/nullptr);
  if (Inc.LoadSolverCache)
    S.preloadCache(Sess.solverEntriesToLoad());
  std::vector<engine::VerifyReport> Reports =
      S.verifyAll(Env, Names, &Sess, &LastAnalysis);
  if (Inc.SaveSolverCache)
    Sess.saveSolverEntries(S.exportCacheEntries());
  Sess.flush();
  recordIncrReport(Sess.stats());
  if (StatsOut)
    *StatsOut = Sess.stats();
  return Reports;
}
