//===- sched/QueryCache.h - Sharded, thread-safe entailment memo -----------===//
///
/// \file
/// The scheduler's query cache: a sharded, LRU-bounded memo from normalized
/// (ctx, goal) query fingerprints to definite solver verdicts. PR 1's
/// telemetry measured a substantial syntactic repeat rate across entailment
/// queries (SolverStats::EntailRepeats); this cache converts that headroom
/// into real speedup by answering repeats without re-running the DPLL
/// search. It implements the \c QueryMemo interface consulted by
/// \c Solver::checkSat (and therefore \c Solver::entails).
///
/// Soundness: only definite \c Sat / \c Unsat verdicts are stored —
/// \c Unknown (budget/depth exhaustion) is never memoised — and the key
/// includes the solver's branch budget, so a cached answer is exactly the
/// answer the full search would produce for that query. A 64-bit check hash
/// independent of the primary fingerprint guards against collisions
/// (effective 128-bit key).
///
/// Concurrency: the table is split into \c NumShards shards selected by
/// fingerprint bits, each with its own mutex, LRU list and capacity, so
/// workers hitting different shards never contend.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SCHED_QUERYCACHE_H
#define GILR_SCHED_QUERYCACHE_H

#include "solver/Solver.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace gilr {
namespace sched {

/// Snapshot of cache activity (values, not atomics).
struct CacheStatsSnapshot {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

class QueryCache final : public QueryMemo {
public:
  /// Number of independently locked shards (a power of two).
  static constexpr std::size_t NumShards = 16;

  /// \p Capacity bounds the total number of entries across all shards
  /// (each shard holds Capacity/NumShards, at least 1).
  explicit QueryCache(std::size_t Capacity);
  ~QueryCache() override;

  QueryCache(const QueryCache &) = delete;
  QueryCache &operator=(const QueryCache &) = delete;

  // QueryMemo interface (thread-safe).
  bool lookup(uint64_t Fp, uint64_t Fp2, QueryVerdict &Out) override;
  void insert(uint64_t Fp, uint64_t Fp2, const QueryVerdict &V) override;

  /// Drops every entry (stats are kept).
  void clear();

  /// Current number of resident entries (sums the shards; racy but exact
  /// when quiescent).
  std::size_t size() const;

  std::size_t capacity() const { return TotalCapacity; }

  CacheStatsSnapshot stats() const;

  /// Shard an entry with fingerprint \p Fp lands in (exposed for the
  /// cross-shard isolation test).
  static std::size_t shardOf(uint64_t Fp);

private:
  struct Entry {
    uint64_t Fp;
    uint64_t Fp2;
    QueryVerdict V;
  };
  struct Shard {
    mutable std::mutex Mu;
    /// Front = most recently used.
    std::list<Entry> LRU;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> Map;
    std::size_t Capacity = 0;
  };

  std::unique_ptr<Shard[]> Shards;
  std::size_t TotalCapacity;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Insertions{0};
  std::atomic<uint64_t> Evictions{0};
};

/// RAII: installs \p C as the process-wide query memo for the current
/// scope, restoring the previous memo on destruction.
class ScopedQueryCache {
public:
  explicit ScopedQueryCache(QueryCache *C) : Prev(setQueryMemo(C)) {}
  ~ScopedQueryCache() { setQueryMemo(Prev); }
  ScopedQueryCache(const ScopedQueryCache &) = delete;
  ScopedQueryCache &operator=(const ScopedQueryCache &) = delete;

private:
  QueryMemo *Prev;
};

} // namespace sched
} // namespace gilr

#endif // GILR_SCHED_QUERYCACHE_H
