//===- sched/QueryCache.h - Sharded, thread-safe entailment memo -----------===//
///
/// \file
/// The scheduler's query cache: a sharded, LRU-bounded memo from normalized
/// (ctx, goal) query fingerprints to definite solver verdicts. PR 1's
/// telemetry measured a substantial syntactic repeat rate across entailment
/// queries (SolverStats::EntailRepeats); this cache converts that headroom
/// into real speedup by answering repeats without re-running the DPLL
/// search. It implements the \c QueryMemo interface consulted by
/// \c Solver::checkSat (and therefore \c Solver::entails).
///
/// Soundness: only definite \c Sat / \c Unsat verdicts are stored —
/// \c Unknown (budget/depth exhaustion) is never memoised — and the key
/// includes the solver's branch budget, so a cached answer is exactly the
/// answer the full search would produce for that query. A 64-bit check hash
/// independent of the primary fingerprint guards against collisions
/// (effective 128-bit key).
///
/// Concurrency: the table is split into \c NumShards shards selected by
/// fingerprint bits, each with its own mutex, LRU list and capacity, so
/// workers hitting different shards never contend.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SCHED_QUERYCACHE_H
#define GILR_SCHED_QUERYCACHE_H

#include "solver/Solver.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace gilr {
namespace sched {

/// Hit/miss counts of one shard.
struct ShardStatsSnapshot {
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// Snapshot of cache activity (values, not atomics).
struct CacheStatsSnapshot {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
  /// Per-shard hit/miss breakdown (empty if the snapshot predates a cache,
  /// e.g. caching disabled). Surfaced in the telemetry JSON so shard
  /// balance is observable.
  std::vector<ShardStatsSnapshot> Shards;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

class QueryCache final : public QueryMemo {
public:
  /// Number of independently locked shards (a power of two).
  static constexpr std::size_t NumShards = 16;

  /// \p Capacity bounds the total number of entries across all shards
  /// (each shard holds Capacity/NumShards, at least 1). \p StableKeys makes
  /// the solver key entries with the process-stable fingerprint
  /// (stableQueryFingerprint) instead of the intern-id one — required when
  /// the cache contents are persisted or preloaded across processes (the
  /// incremental runs of src/incr/).
  explicit QueryCache(std::size_t Capacity, bool StableKeys = false);
  ~QueryCache() override;

  QueryCache(const QueryCache &) = delete;
  QueryCache &operator=(const QueryCache &) = delete;

  // QueryMemo interface (thread-safe).
  bool lookup(uint64_t Fp, uint64_t Fp2, QueryVerdict &Out) override;
  void insert(uint64_t Fp, uint64_t Fp2, const QueryVerdict &V) override;
  bool wantsStableKeys() const override { return StableKeys; }

  /// Snapshot of every resident entry (for persisting the cache). Entries
  /// are only meaningful across processes when the cache runs in
  /// stable-keys mode.
  std::vector<SavedQueryVerdict> exportEntries() const;

  /// Inserts \p Entries (e.g. loaded from the proof store) without touching
  /// the hit/miss statistics. Entries beyond a shard's capacity are dropped
  /// (counted as evictions).
  void preload(const std::vector<SavedQueryVerdict> &Entries);

  /// Drops every entry (stats are kept).
  void clear();

  /// Current number of resident entries (sums the shards; racy but exact
  /// when quiescent).
  std::size_t size() const;

  std::size_t capacity() const { return TotalCapacity; }

  CacheStatsSnapshot stats() const;

  /// Shard an entry with fingerprint \p Fp lands in (exposed for the
  /// cross-shard isolation test).
  static std::size_t shardOf(uint64_t Fp);

private:
  struct Entry {
    uint64_t Fp;
    uint64_t Fp2;
    QueryVerdict V;
  };
  struct Shard {
    mutable std::mutex Mu;
    /// Front = most recently used.
    std::list<Entry> LRU;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> Map;
    std::size_t Capacity = 0;
    /// Per-shard activity, maintained under Mu (the shard lock is already
    /// taken on every path that bumps these).
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };

  std::unique_ptr<Shard[]> Shards;
  std::size_t TotalCapacity;
  bool StableKeys = false;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Insertions{0};
  std::atomic<uint64_t> Evictions{0};
};

/// RAII: installs \p C as the process-wide query memo for the current
/// scope, restoring the previous memo on destruction.
class ScopedQueryCache {
public:
  explicit ScopedQueryCache(QueryCache *C) : Prev(setQueryMemo(C)) {}
  ~ScopedQueryCache() { setQueryMemo(Prev); }
  ScopedQueryCache(const ScopedQueryCache &) = delete;
  ScopedQueryCache &operator=(const ScopedQueryCache &) = delete;

private:
  QueryMemo *Prev;
};

} // namespace sched
} // namespace gilr

#endif // GILR_SCHED_QUERYCACHE_H
