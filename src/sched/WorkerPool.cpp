//===- sched/WorkerPool.cpp -------------------------------------------------------===//

#include "sched/WorkerPool.h"

using namespace gilr;
using namespace gilr::sched;

WorkerPool::WorkerPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Queues.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  this->Threads.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    this->Threads.emplace_back([this, I] { workerMain(I); });
}

WorkerPool::~WorkerPool() {
  wait();
  Stopping.store(true);
  {
    // Pair the notify with the lock so a worker between its predicate check
    // and its wait cannot miss the stop signal.
    std::lock_guard<std::mutex> Lock(WakeMu);
  }
  Wake.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::submit(Task T) {
  unsigned Idx = NextQueue.fetch_add(1, std::memory_order_relaxed) %
                 Queues.size();
  Pending.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(Queues[Idx]->Mu);
    Queues[Idx]->Q.push_back(std::move(T));
  }
  Queued.fetch_add(1, std::memory_order_release);
  {
    // Serialise with a worker sitting between its predicate check and its
    // sleep: acquiring the wake mutex here means the notify below cannot
    // land in that window and get lost.
    std::lock_guard<std::mutex> Lock(WakeMu);
  }
  Wake.notify_one();
}

bool WorkerPool::tryTake(unsigned Self, Task &Out) {
  // Own deque first, newest task (LIFO keeps the worker on related work).
  {
    WorkerQueue &Q = *Queues[Self];
    std::lock_guard<std::mutex> Lock(Q.Mu);
    if (!Q.Q.empty()) {
      Out = std::move(Q.Q.back());
      Q.Q.pop_back();
      Queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal the oldest task from the first non-empty victim.
  for (std::size_t I = 1; I != Queues.size(); ++I) {
    WorkerQueue &Q = *Queues[(Self + I) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Q.Mu);
    if (!Q.Q.empty()) {
      Out = std::move(Q.Q.front());
      Q.Q.pop_front();
      Queued.fetch_sub(1, std::memory_order_relaxed);
      Steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkerPool::workerMain(unsigned Id) {
  for (;;) {
    Task T;
    if (tryTake(Id, T)) {
      T();
      if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(WakeMu);
        Idle.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> Lock(WakeMu);
    if (Stopping.load())
      return;
    if (Queued.load(std::memory_order_acquire) != 0)
      continue; // A task arrived between tryTake and the lock.
    Wake.wait(Lock, [this] {
      return Stopping.load() || Queued.load(std::memory_order_acquire) != 0;
    });
    if (Stopping.load() && Queued.load(std::memory_order_acquire) == 0)
      return;
  }
}

void WorkerPool::wait() {
  std::unique_lock<std::mutex> Lock(WakeMu);
  Idle.wait(Lock, [this] {
    return Pending.load(std::memory_order_acquire) == 0;
  });
}
