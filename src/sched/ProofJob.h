//===- sched/ProofJob.h - Proof obligations as schedulable jobs ------------===//
///
/// \file
/// The job model of the proof scheduler. The hybrid workflow (§2.1, Fig. 1)
/// decomposes a library into per-(function, spec) obligations that are
/// verified compositionally and independently: every unsafe Gillian-Rust
/// function and every safe Creusot client becomes one \c ProofJob, and a
/// \c JobGraph materialises the full set for one run. Jobs carry the index
/// of their report slot, so results are collected in deterministic input
/// order regardless of which worker finishes first.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SCHED_PROOFJOB_H
#define GILR_SCHED_PROOFJOB_H

#include "creusot/SafeVerifier.h"
#include "engine/Verifier.h"

#include <string>
#include <vector>

namespace gilr {
namespace sched {

/// How a finished job is classified.
enum class JobStatus : uint8_t {
  Proved,  ///< All obligations discharged.
  Failed,  ///< A definite proof failure.
  Unknown, ///< Budget exhausted: neither proved nor refuted.
};

/// One independent proof obligation.
struct ProofJob {
  enum Kind : uint8_t {
    UnsafeFn,   ///< Gillian-Rust side: one (function, spec) pair.
    SafeClient, ///< Creusot side: one safe client function.
  } K = UnsafeFn;

  std::string Name;
  /// Report slot on the job's side (UnsafeSide / SafeSide index).
  std::size_t Slot = 0;
  /// SafeClient only: the client body (owned by the caller of the run).
  const creusot::SafeFn *Client = nullptr;
};

/// The materialised job set of one run. Obligations are independent (no
/// edges yet — compositional verification gives an embarrassingly parallel
/// graph); the struct still owns the input-order bookkeeping that keeps
/// reports deterministic.
struct JobGraph {
  std::vector<ProofJob> Jobs;
  std::size_t UnsafeCount = 0;
  std::size_t SafeCount = 0;

  /// One job per unsafe function and one per safe client, in input order.
  static JobGraph build(const std::vector<std::string> &UnsafeFuncs,
                        const std::vector<creusot::SafeFn> &Clients) {
    JobGraph G;
    G.UnsafeCount = UnsafeFuncs.size();
    G.SafeCount = Clients.size();
    G.Jobs.reserve(UnsafeFuncs.size() + Clients.size());
    for (std::size_t I = 0; I != UnsafeFuncs.size(); ++I)
      G.Jobs.push_back(ProofJob{ProofJob::UnsafeFn, UnsafeFuncs[I], I,
                                nullptr});
    for (std::size_t I = 0; I != Clients.size(); ++I)
      G.Jobs.push_back(ProofJob{ProofJob::SafeClient, Clients[I].Name, I,
                                &Clients[I]});
    return G;
  }
};

} // namespace sched
} // namespace gilr

#endif // GILR_SCHED_PROOFJOB_H
