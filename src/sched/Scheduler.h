//===- sched/Scheduler.h - Parallel proof scheduling -----------------------===//
///
/// \file
/// The proof scheduler: runs the independent obligations of a verification
/// run (ProofJob.h) on a work-stealing pool (WorkerPool.h) with a shared,
/// sharded entailment memo (QueryCache.h) and a per-job budget
/// (support/Budget.h) that degrades stuck obligations to a reported
/// \c Unknown instead of stalling the pool.
///
/// Drivers reach it through \c HybridDriver::run and
/// \c engine::Verifier::verifyAll overloads taking a \c SchedulerConfig;
/// \c Threads == 1 keeps the serial semantics (jobs run inline, in input
/// order, on the calling thread) while still exercising the cache and
/// budget paths. Reports are always emitted in deterministic input order;
/// with budgets disabled, the parallel report (timing aside) is
/// byte-identical to the serial one.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SCHED_SCHEDULER_H
#define GILR_SCHED_SCHEDULER_H

#include "hybrid/Driver.h"
#include "sched/ProofJob.h"
#include "sched/QueryCache.h"

#include <memory>

namespace gilr {
namespace incr {
class Session;
} // namespace incr

namespace sched {

/// Knobs of one scheduled run.
struct SchedulerConfig {
  /// Worker threads; 1 = serial on the calling thread (the default).
  unsigned Threads = 1;
  /// Total entries of the sharded entailment cache; 0 disables caching.
  std::size_t CacheCapacity = 1u << 16;
  /// Per-job wall-clock budget in milliseconds; 0 = unlimited. Budgeted
  /// jobs that run out degrade to JobStatus::Unknown. Note that budgets
  /// trade determinism for liveness: a near-deadline job may flip between
  /// Unknown and Proved across runs.
  uint64_t JobTimeoutMs = 0;
  /// Per-job cap on DPLL branches; 0 = unlimited.
  uint64_t JobBranchCap = 0;
  /// Key the entailment cache with the process-stable structural
  /// fingerprint instead of the intern-id one. Required (and turned on
  /// automatically) for incremental runs that persist or preload cache
  /// entries across processes; slightly slower to hash.
  bool StableCacheKeys = false;
};

/// Orchestrates one or more verification runs under a single cache. The
/// cache persists across run* calls on the same scheduler, so a bench can
/// measure warm-cache behaviour; HybridDriver / Verifier construct a fresh
/// scheduler per call.
class Scheduler {
public:
  explicit Scheduler(const SchedulerConfig &C);
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Verifies both hybrid sides: every unsafe function and every safe
  /// client is an independent job. Reports come back in input order. With
  /// \p Incr, jobs whose stored verdict is still valid short-circuit to the
  /// cached report (marked Cached), and freshly proved jobs are recorded
  /// with the dependencies their proof consulted.
  ///
  /// When Env.Lint.Enabled, a lint phase runs first (its jobs on the same
  /// pool): entities the pre-pass rejects are reported failed without a
  /// proof job, and every report carries its entity's diagnostics. The
  /// aggregated analysis verdict lands in HybridReport::Analysis.
  hybrid::HybridReport runHybrid(engine::VerifEnv &Env,
                                 const creusot::PearliteSpecTable &Contracts,
                                 const std::vector<std::string> &UnsafeFuncs,
                                 const std::vector<creusot::SafeFn> &Clients,
                                 incr::Session *Incr = nullptr);

  /// Unsafe side only (the engine::Verifier::verifyAll path). \p AnalysisOut,
  /// if given, receives the aggregated pre-verification analysis result.
  std::vector<engine::VerifyReport>
  verifyAll(engine::VerifEnv &Env, const std::vector<std::string> &Names,
            incr::Session *Incr = nullptr,
            analysis::AnalysisResult *AnalysisOut = nullptr);

  const SchedulerConfig &config() const { return Config; }

  /// The entailment cache (nullptr when CacheCapacity == 0). The mutable
  /// form exists so a caller can install the cache as the query memo
  /// (ScopedQueryCache) around pre-run solver work — lemma registration,
  /// contract encoding — which runs before runHybrid installs it itself.
  const QueryCache *cache() const { return Cache.get(); }
  QueryCache *cache() { return Cache.get(); }

  /// Cache activity so far (zeros when caching is disabled).
  CacheStatsSnapshot cacheStats() const;

  /// Preloads the entailment cache with persisted entries (no-op when
  /// caching is disabled). Only sound in stable-keys mode.
  void preloadCache(const std::vector<SavedQueryVerdict> &Entries);

  /// Every resident cache entry, for persisting (empty when disabled).
  std::vector<SavedQueryVerdict> exportCacheEntries() const;

private:
  /// Runs every job of \p G, writing results through \p RunOne (which
  /// receives the job and must store into its slot). Parallel iff
  /// Threads > 1.
  void runJobs(const JobGraph &G,
               const std::function<void(const ProofJob &)> &RunOne);

  /// Publishes the end-of-run cache snapshot to the metrics registry so the
  /// telemetry JSON can report hit rates (no-op when caching is disabled).
  void recordCacheReport() const;

  /// The interprocedural summary phase (analysis/Summary.h): serial,
  /// bottom-up over the SCC condensation. With \p Incr, an SCC whose every
  /// member's stored summary still validates replays from the store;
  /// otherwise the whole SCC is recomputed and recorded with its reachable
  /// closure as the dependency set — so an edit invalidates exactly the
  /// reverse-reachable summaries. The resulting table is a pure function of
  /// the program, whatever mix of replay and recompute built it.
  analysis::SummaryTable summaryPhase(engine::VerifEnv &Env,
                                      incr::Session *Incr);

  /// The pre-verification lint phase: one lint job per entity on the pool
  /// (cached verdicts replayed through \p Incr), then the program-level
  /// lints, finalized into the returned result. \p Verdicts receives the
  /// per-entity verdicts in input order (the proof phase consults them to
  /// skip blocked entities and attach diagnostics). \p Summaries (from
  /// summaryPhase) powers the interprocedural lints; may be null.
  analysis::AnalysisResult
  lintPhase(engine::VerifEnv &Env, const std::vector<std::string> &Names,
            incr::Session *Incr, const analysis::SummaryTable *Summaries,
            std::vector<std::pair<std::string, analysis::EntityVerdict>>
                &Verdicts);

  SchedulerConfig Config;
  std::unique_ptr<QueryCache> Cache;
};

} // namespace sched
} // namespace gilr

#endif // GILR_SCHED_SCHEDULER_H
