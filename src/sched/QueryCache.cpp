//===- sched/QueryCache.cpp -------------------------------------------------------===//

#include "sched/QueryCache.h"

#include "support/Trace.h"

using namespace gilr;
using namespace gilr::sched;

QueryCache::QueryCache(std::size_t Capacity, bool StableKeys)
    : Shards(new Shard[NumShards]), TotalCapacity(Capacity),
      StableKeys(StableKeys) {
  std::size_t PerShard = Capacity / NumShards;
  if (PerShard == 0 && Capacity > 0)
    PerShard = 1;
  for (std::size_t I = 0; I != NumShards; ++I)
    Shards[I].Capacity = PerShard;
}

QueryCache::~QueryCache() = default;

std::size_t QueryCache::shardOf(uint64_t Fp) {
  // The low bits feed the shard's hash map; pick high bits for the shard so
  // the two partitions stay independent.
  return (Fp >> 59) & (NumShards - 1);
}

bool QueryCache::lookup(uint64_t Fp, uint64_t Fp2, QueryVerdict &Out) {
  Shard &S = Shards[shardOf(Fp)];
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Fp);
    if (It != S.Map.end() && It->second->Fp2 == Fp2) {
      // Touch: move to the front of the LRU list.
      S.LRU.splice(S.LRU.begin(), S.LRU, It->second);
      Out = It->second->V;
      ++S.Hits;
      Hits.fetch_add(1, std::memory_order_relaxed);
      if (trace::enabled())
        metrics::Registry::get().add("cache.hit");
      return true;
    }
    ++S.Misses;
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  if (trace::enabled())
    metrics::Registry::get().add("cache.miss");
  return false;
}

void QueryCache::insert(uint64_t Fp, uint64_t Fp2, const QueryVerdict &V) {
  // Unknown must never be memoised: it depends on transient budgets, and
  // replaying it could mask a definite answer a fresh search would find.
  if (V.R == SatResult::Unknown)
    return;
  Shard &S = Shards[shardOf(Fp)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Capacity == 0)
    return;
  auto It = S.Map.find(Fp);
  if (It != S.Map.end()) {
    // Racing insert of the same query from two workers refreshes recency
    // (identical queries produce identical verdicts). A primary-fingerprint
    // collision (different check hash) hands the slot to the newcomer so it
    // does not miss forever.
    It->second->Fp2 = Fp2;
    It->second->V = V;
    S.LRU.splice(S.LRU.begin(), S.LRU, It->second);
    return;
  }
  if (S.LRU.size() >= S.Capacity) {
    S.Map.erase(S.LRU.back().Fp);
    S.LRU.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
  S.LRU.push_front(Entry{Fp, Fp2, V});
  S.Map[Fp] = S.LRU.begin();
  Insertions.fetch_add(1, std::memory_order_relaxed);
}

void QueryCache::clear() {
  for (std::size_t I = 0; I != NumShards; ++I) {
    Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.LRU.clear();
    S.Map.clear();
  }
}

std::size_t QueryCache::size() const {
  std::size_t N = 0;
  for (std::size_t I = 0; I != NumShards; ++I) {
    Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.LRU.size();
  }
  return N;
}

CacheStatsSnapshot QueryCache::stats() const {
  CacheStatsSnapshot Snap;
  Snap.Hits = Hits.load(std::memory_order_relaxed);
  Snap.Misses = Misses.load(std::memory_order_relaxed);
  Snap.Insertions = Insertions.load(std::memory_order_relaxed);
  Snap.Evictions = Evictions.load(std::memory_order_relaxed);
  Snap.Shards.resize(NumShards);
  for (std::size_t I = 0; I != NumShards; ++I) {
    Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    Snap.Shards[I].Hits = S.Hits;
    Snap.Shards[I].Misses = S.Misses;
  }
  return Snap;
}

std::vector<SavedQueryVerdict> QueryCache::exportEntries() const {
  std::vector<SavedQueryVerdict> Out;
  for (std::size_t I = 0; I != NumShards; ++I) {
    Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const Entry &E : S.LRU)
      Out.push_back(SavedQueryVerdict{E.Fp, E.Fp2, E.V});
  }
  return Out;
}

void QueryCache::preload(const std::vector<SavedQueryVerdict> &Entries) {
  for (const SavedQueryVerdict &E : Entries) {
    if (E.V.R == SatResult::Unknown)
      continue; // Never admitted; a corrupt store must not smuggle one in.
    Shard &S = Shards[shardOf(E.Fp)];
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.Capacity == 0)
      continue;
    auto It = S.Map.find(E.Fp);
    if (It != S.Map.end()) {
      It->second->Fp2 = E.Fp2;
      It->second->V = E.V;
      continue;
    }
    if (S.LRU.size() >= S.Capacity) {
      S.Map.erase(S.LRU.back().Fp);
      S.LRU.pop_back();
      Evictions.fetch_add(1, std::memory_order_relaxed);
    }
    S.LRU.push_front(Entry{E.Fp, E.Fp2, E.V});
    S.Map[E.Fp] = S.LRU.begin();
  }
}
