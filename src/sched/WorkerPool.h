//===- sched/WorkerPool.h - Work-stealing thread pool ----------------------===//
///
/// \file
/// The scheduler's execution substrate: a fixed set of worker threads, each
/// owning a deque of tasks. Submission round-robins across the deques; a
/// worker pops from the back of its own deque (LIFO, cache-warm) and, when
/// empty, steals from the front of a victim's deque (FIFO, the oldest —
/// largest-remaining — work). Proof jobs are independent (compositional
/// per-(function, spec) obligations), so there is no inter-task ordering to
/// maintain; \c wait() provides the only barrier.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_SCHED_WORKERPOOL_H
#define GILR_SCHED_WORKERPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gilr {
namespace sched {

class WorkerPool {
public:
  using Task = std::function<void()>;

  /// Spawns \p Threads workers (at least 1).
  explicit WorkerPool(unsigned Threads);

  /// Waits for all tasks, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Enqueues \p T. Safe from any thread, including workers.
  void submit(Task T);

  /// Blocks until every submitted task has finished executing.
  void wait();

  unsigned threads() const { return static_cast<unsigned>(Threads.size()); }

  /// Number of tasks a worker took from another worker's deque.
  uint64_t steals() const { return Steals.load(std::memory_order_relaxed); }

private:
  struct WorkerQueue {
    std::mutex Mu;
    std::deque<Task> Q;
  };

  void workerMain(unsigned Id);
  bool tryTake(unsigned Self, Task &Out);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;

  std::mutex WakeMu;
  std::condition_variable Wake; ///< Workers sleep here when idle.
  std::condition_variable Idle; ///< wait() sleeps here.

  std::atomic<std::size_t> Queued{0};  ///< Submitted, not yet taken.
  std::atomic<std::size_t> Pending{0}; ///< Submitted, not yet finished.
  std::atomic<bool> Stopping{false};
  std::atomic<unsigned> NextQueue{0};
  std::atomic<uint64_t> Steals{0};
};

} // namespace sched
} // namespace gilr

#endif // GILR_SCHED_WORKERPOOL_H
