//===- rmir/Layout.cpp -------------------------------------------------------===//

#include "rmir/Layout.h"

#include "support/Diagnostics.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace gilr;
using namespace gilr::rmir;

const char *gilr::rmir::layoutStrategyName(LayoutStrategy S) {
  switch (S) {
  case LayoutStrategy::DeclOrder:
    return "decl-order";
  case LayoutStrategy::LargestFirst:
    return "largest-first";
  case LayoutStrategy::SmallestFirst:
    return "smallest-first";
  }
  GILR_UNREACHABLE("unknown layout strategy");
}

static uint64_t alignUp(uint64_t Offset, uint64_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "non power-of-two align");
  return (Offset + Align - 1) & ~(Align - 1);
}

const ConcreteLayout &LayoutEngine::of(TypeRef T) {
  auto It = Cache.find(T);
  if (It != Cache.end())
    return It->second;
  assert(T->isConcrete() && "layout query on a generic type");
  ConcreteLayout L = compute(T);
  return Cache.emplace(T, std::move(L)).first->second;
}

ConcreteLayout LayoutEngine::compute(TypeRef T) {
  ConcreteLayout L;
  switch (T->Kind) {
  case TypeKind::Bool:
    L.Size = 1;
    L.Align = 1;
    return L;
  case TypeKind::Unit:
    L.Size = 0;
    L.Align = 1;
    return L;
  case TypeKind::Int:
    L.Size = intByteWidth(T->IntK);
    L.Align = L.Size;
    return L;
  case TypeKind::RawPtr:
  case TypeKind::Ref:
    L.Size = 8;
    L.Align = 8;
    return L;
  case TypeKind::Array: {
    const ConcreteLayout &Elem = of(T->Pointee);
    L.Align = Elem.Align;
    L.Size = Elem.Size * T->ArrayLen;
    return L;
  }
  case TypeKind::Struct:
    return computeStruct(T);
  case TypeKind::Enum:
    return computeEnum(T);
  case TypeKind::Param:
    break;
  }
  GILR_UNREACHABLE("layout of non-concrete type");
}

/// Lays out \p Fields (given as (declIndex, size, align)) according to the
/// strategy, writing byte offsets into \p Offsets (decl-indexed) and
/// returning the end offset before final padding.
static uint64_t placeFields(LayoutStrategy Strategy,
                            const std::vector<std::pair<uint64_t, uint64_t>>
                                &SizeAlign,
                            uint64_t StartOffset,
                            std::vector<uint64_t> &Offsets) {
  std::size_t N = SizeAlign.size();
  std::vector<unsigned> Order(N);
  std::iota(Order.begin(), Order.end(), 0u);
  switch (Strategy) {
  case LayoutStrategy::DeclOrder:
    break;
  case LayoutStrategy::LargestFirst:
    std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
      return SizeAlign[A].first > SizeAlign[B].first;
    });
    break;
  case LayoutStrategy::SmallestFirst:
    std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
      return SizeAlign[A].first < SizeAlign[B].first;
    });
    break;
  }
  Offsets.assign(N, 0);
  uint64_t Offset = StartOffset;
  for (unsigned Idx : Order) {
    Offset = alignUp(Offset, SizeAlign[Idx].second);
    Offsets[Idx] = Offset;
    Offset += SizeAlign[Idx].first;
  }
  return Offset;
}

ConcreteLayout LayoutEngine::computeStruct(TypeRef T) {
  ConcreteLayout L;
  std::vector<std::pair<uint64_t, uint64_t>> SizeAlign;
  for (const FieldDef &F : T->Fields) {
    const ConcreteLayout &FL = of(F.Ty);
    SizeAlign.push_back({FL.Size, FL.Align});
    L.Align = std::max(L.Align, FL.Align);
  }
  uint64_t End = placeFields(Strategy, SizeAlign, 0, L.FieldOffsets);
  L.Size = alignUp(End, L.Align);
  return L;
}

ConcreteLayout LayoutEngine::computeEnum(TypeRef T) {
  ConcreteLayout L;

  // Niche optimisation: Option-like enums over pointer payloads use the
  // null bit-pattern as the None discriminant (§3, "niche optimization").
  if (EnableNicheOpt && T->isOption()) {
    TypeRef Payload = T->optionPayload();
    if (Payload->isPointerLike()) {
      const ConcreteLayout &PL = of(Payload);
      L.Size = PL.Size;
      L.Align = PL.Align;
      L.IsNiche = true;
      L.VariantFieldOffsets = {{}, {0}};
      return L;
    }
  }

  // Tagged layout: a 1-byte discriminant (all case-study enums have < 256
  // variants) followed by the variant payload.
  assert(T->Variants.size() < 256 && "too many variants for 1-byte tag");
  L.DiscrSize = 1;
  L.Align = 1;
  uint64_t MaxEnd = 1;
  for (const VariantDef &V : T->Variants) {
    std::vector<std::pair<uint64_t, uint64_t>> SizeAlign;
    for (const FieldDef &F : V.Fields) {
      const ConcreteLayout &FL = of(F.Ty);
      SizeAlign.push_back({FL.Size, FL.Align});
      L.Align = std::max(L.Align, FL.Align);
    }
    std::vector<uint64_t> Offsets;
    uint64_t End = placeFields(Strategy, SizeAlign, L.DiscrSize, Offsets);
    L.VariantFieldOffsets.push_back(std::move(Offsets));
    MaxEnd = std::max(MaxEnd, End);
  }
  L.DiscrOffset = 0;
  L.Size = alignUp(MaxEnd, L.Align);
  return L;
}
