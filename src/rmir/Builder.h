//===- rmir/Builder.h - Fluent construction of RMIR functions -------------===//
///
/// \file
/// A small builder API for authoring RMIR functions in C++, used by the
/// case-study libraries (rustlib/) in lieu of a rustc front-end. The builder
/// checks structural invariants eagerly (local indices, block targets) so
/// malformed IR fails at construction time rather than mid-proof.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RMIR_BUILDER_H
#define GILR_RMIR_BUILDER_H

#include "rmir/Program.h"

namespace gilr {
namespace rmir {

/// Builds one function. Typical usage:
/// \code
///   FunctionBuilder B("len", Types);
///   LocalId SelfL = B.addParam("self", RefTy);
///   B.setReturnType(UsizeTy);
///   BlockId Entry = B.newBlock();
///   B.atBlock(Entry);
///   B.assign(Place(0), Rvalue::use(Operand::copy(
///       Place(SelfL).deref().field(2))));
///   B.ret();
///   Function F = B.finish();
/// \endcode
class FunctionBuilder {
public:
  FunctionBuilder(std::string Name, TyCtx &Types);

  /// Declares a generic type parameter (e.g. "T").
  void addTypeParam(const std::string &Name);
  /// Declares a lifetime parameter (e.g. "'a").
  void addLifetime(const std::string &Name);
  /// Suppresses a pre-verification lint (a "GILR-Exxx"/"GILR-Wxxx" code, or
  /// "all") for this function — the #[allow(...)] of the analysis pass.
  void suppressLint(const std::string &Code);

  /// Adds a parameter local; must be called before any plain local.
  LocalId addParam(const std::string &Name, TypeRef Ty);
  /// Adds a non-parameter local.
  LocalId addLocal(const std::string &Name, TypeRef Ty);
  void setReturnType(TypeRef Ty);

  /// Creates a new (empty) block and returns its id.
  BlockId newBlock();
  /// Directs subsequent statement emission at \p B.
  void atBlock(BlockId B);
  BlockId currentBlock() const { return Current; }

  // Statement emission.
  void assign(Place P, Rvalue R);
  void alloc(Place Dest, TypeRef Ty);
  void free(Operand Ptr, TypeRef Ty);
  void ghost(Ghost G);
  void unfold(const std::string &Pred, std::vector<Operand> Args);
  void fold(const std::string &Pred, std::vector<Operand> Args);
  void gunfold(const std::string &Pred, std::vector<Operand> Args);
  void gfold(const std::string &Pred, std::vector<Operand> Args);
  void applyLemma(const std::string &Lemma, std::vector<Operand> Args);
  void mutrefAutoResolve(Operand Ref);
  void prophecyAutoUpdate(Operand Ref);

  // Terminators.
  void gotoBlock(BlockId B);
  void switchInt(Operand D, std::vector<std::pair<__int128, BlockId>> Arms,
                 BlockId Otherwise);
  /// Convenience for option-like enums: branch on None (0) / Some (1).
  void switchOption(Operand D, BlockId NoneBB, BlockId SomeBB);
  void call(const std::string &Callee, std::vector<Operand> Args, Place Dest,
            BlockId Target, std::vector<TypeRef> TypeArgs = {});
  void ret();
  void unreachable();

  /// Finalises and returns the function (validates all blocks terminated).
  Function finish();

  TyCtx &types() { return Types; }

private:
  BasicBlock &cur();

  Function F;
  TyCtx &Types;
  BlockId Current = 0;
  bool SawNonParamLocal = false;
  std::vector<bool> Terminated;
};

} // namespace rmir
} // namespace gilr

#endif // GILR_RMIR_BUILDER_H
