//===- rmir/Program.cpp ------------------------------------------------------===//

#include "rmir/Program.h"

#include "support/Diagnostics.h"

#include <cassert>

using namespace gilr;
using namespace gilr::rmir;

TypeRef gilr::rmir::placeType(const Function &F, const Place &P) {
  TypeRef Ty = F.Locals.at(P.Local).Ty;
  unsigned Variant = 0;
  [[maybe_unused]] bool Downcasted = false;
  for (const PlaceElem &E : P.Elems) {
    switch (E.Kind) {
    case PlaceElem::Deref:
      assert(Ty->isPointerLike() && "deref of non-pointer place");
      Ty = Ty->Pointee;
      Downcasted = false;
      break;
    case PlaceElem::Downcast:
      assert(Ty->Kind == TypeKind::Enum && "downcast of non-enum place");
      Variant = E.Index;
      Downcasted = true;
      break;
    case PlaceElem::Field:
      if (Ty->Kind == TypeKind::Struct) {
        assert(!Downcasted && "downcast of a struct");
        Ty = Ty->Fields.at(E.Index).Ty;
      } else {
        assert(Ty->Kind == TypeKind::Enum && Downcasted &&
               "field of non-downcast enum place");
        Ty = Ty->Variants.at(Variant).Fields.at(E.Index).Ty;
        Downcasted = false;
      }
      break;
    }
  }
  return Ty;
}

TypeRef gilr::rmir::operandType(const Function &F, const Operand &Op) {
  switch (Op.Kind) {
  case Operand::Copy:
  case Operand::Move:
    return placeType(F, Op.P);
  case Operand::Const:
    assert(Op.ConstTy && "untyped constant operand");
    return Op.ConstTy;
  }
  GILR_UNREACHABLE("unknown operand kind");
}
