//===- rmir/Layout.h - Compiler-chosen memory layouts ----------------------===//
///
/// \file
/// Concrete layout computation for RMIR types under several layout
/// strategies the Rust compiler is permitted to choose between (§3.1, Fig. 4
/// of the paper): declaration order, largest-field-first, smallest-field-
/// first, each with or without niche optimisation of option-like enums over
/// pointers. The verifier never commits to one of these; they exist to
/// *interpret* layout-independent addresses (heap/Projection.h) in tests and
/// benchmarks, and to drive the fixed-layout byte-model baseline
/// (heap/ByteHeap.h) that plays the role of the Kani-style comparator.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RMIR_LAYOUT_H
#define GILR_RMIR_LAYOUT_H

#include "rmir/Type.h"

#include <map>
#include <vector>

namespace gilr {
namespace rmir {

/// Field-ordering strategies a conforming compiler may choose.
enum class LayoutStrategy {
  DeclOrder,     ///< Fields in declaration order (repr(C)-like).
  LargestFirst,  ///< Largest fields first (rustc's default heuristic).
  SmallestFirst, ///< Smallest fields first.
};

const char *layoutStrategyName(LayoutStrategy S);

/// The concrete layout of a single type under a fixed strategy.
struct ConcreteLayout {
  uint64_t Size = 0;
  uint64_t Align = 1;
  /// Byte offset of each field, indexed by *declaration* index (structs).
  std::vector<uint64_t> FieldOffsets;
  /// Byte offsets of each variant's fields (enums), declaration-indexed.
  std::vector<std::vector<uint64_t>> VariantFieldOffsets;
  /// Offset of the discriminant tag; meaningless when IsNiche.
  uint64_t DiscrOffset = 0;
  uint64_t DiscrSize = 0;
  /// Option-like enum represented by a null niche of its pointer payload.
  bool IsNiche = false;
};

/// Computes and caches layouts for concrete types.
class LayoutEngine {
public:
  LayoutEngine(const TyCtx &Types, LayoutStrategy Strategy,
               bool EnableNicheOpt = true)
      : Types(Types), Strategy(Strategy), EnableNicheOpt(EnableNicheOpt) {}

  /// Layout of \p T, which must be concrete.
  const ConcreteLayout &of(TypeRef T);

  uint64_t sizeOf(TypeRef T) { return of(T).Size; }
  uint64_t alignOf(TypeRef T) { return of(T).Align; }
  uint64_t fieldOffset(TypeRef T, unsigned Field) {
    return of(T).FieldOffsets.at(Field);
  }
  uint64_t variantFieldOffset(TypeRef T, unsigned Variant, unsigned Field) {
    return of(T).VariantFieldOffsets.at(Variant).at(Field);
  }

  LayoutStrategy strategy() const { return Strategy; }
  bool nicheEnabled() const { return EnableNicheOpt; }

private:
  ConcreteLayout compute(TypeRef T);
  ConcreteLayout computeStruct(TypeRef T);
  ConcreteLayout computeEnum(TypeRef T);

  const TyCtx &Types;
  LayoutStrategy Strategy;
  bool EnableNicheOpt;
  std::map<TypeRef, ConcreteLayout> Cache;
};

} // namespace rmir
} // namespace gilr

#endif // GILR_RMIR_LAYOUT_H
