//===- rmir/Program.h - RMIR programs: CFG, statements, terminators -------===//
///
/// \file
/// The mid-level IR the verifier executes symbolically. RMIR mirrors rustc's
/// MIR: functions are CFGs of basic blocks; statements assign rvalues to
/// places; places project from locals through Deref/Field/Downcast elements;
/// terminators branch, call or return. On top of the executable core, RMIR
/// carries *ghost statements* (fold/unfold, guarded fold/unfold, lemma
/// application, prophecy resolution) — the semi-automated proof interface of
/// Gilsonite (§2.2, §4.2, §5.3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RMIR_PROGRAM_H
#define GILR_RMIR_PROGRAM_H

#include "rmir/Type.h"
#include "sym/Expr.h"

#include <map>
#include <string>
#include <vector>

namespace gilr {
namespace rmir {

using BlockId = unsigned;
using LocalId = unsigned;

/// One projection step of a place.
struct PlaceElem {
  enum ElemKind : uint8_t {
    Deref,    ///< *p (through a reference or raw pointer).
    Field,    ///< .field_i of a struct (or of a downcast variant).
    Downcast, ///< Enum viewed as its Index-th variant.
  };
  ElemKind Kind;
  unsigned Index = 0;

  static PlaceElem deref() { return {Deref, 0}; }
  static PlaceElem field(unsigned I) { return {Field, I}; }
  static PlaceElem downcast(unsigned V) { return {Downcast, V}; }
};

/// A place: a local plus a projection path.
struct Place {
  LocalId Local = 0;
  std::vector<PlaceElem> Elems;

  Place() = default;
  explicit Place(LocalId L) : Local(L) {}
  Place(LocalId L, std::vector<PlaceElem> Es)
      : Local(L), Elems(std::move(Es)) {}

  Place deref() const {
    Place P = *this;
    P.Elems.push_back(PlaceElem::deref());
    return P;
  }
  Place field(unsigned I) const {
    Place P = *this;
    P.Elems.push_back(PlaceElem::field(I));
    return P;
  }
  Place downcast(unsigned V) const {
    Place P = *this;
    P.Elems.push_back(PlaceElem::downcast(V));
    return P;
  }
};

/// An operand of an rvalue.
struct Operand {
  enum OpKind : uint8_t { Copy, Move, Const } Kind = Const;
  Place P;
  Expr ConstVal;
  TypeRef ConstTy = nullptr;

  static Operand copy(Place Pl) { return {Copy, std::move(Pl), nullptr, nullptr}; }
  static Operand move(Place Pl) { return {Move, std::move(Pl), nullptr, nullptr}; }
  static Operand constant(Expr V, TypeRef Ty) {
    return {Const, Place(), std::move(V), Ty};
  }
};

/// Binary operators. Arithmetic is *checked*: the executor emits an
/// in-range proof obligation for the result type (Rust overflow semantics).
enum class BinOp : uint8_t { Add, Sub, Mul, Eq, Ne, Lt, Le, Gt, Ge };
enum class UnOp : uint8_t { Not, Neg };

/// Right-hand sides of assignments.
struct Rvalue {
  enum RvKind : uint8_t {
    Use,          ///< Copy/move/const operand.
    BinaryOp,     ///< Op(A, B).
    UnaryOp,      ///< Op(A).
    Aggregate,    ///< Struct or enum-variant construction.
    Discriminant, ///< Discriminant of an enum place.
    RefOf,        ///< &mut place (borrow creation; attaches a prophecy).
    AddrOf,       ///< &raw mut place (raw pointer, no prophecy).
    PtrOffset,    ///< A.offset(B): pointer arithmetic in units of pointee.
  } Kind = Use;

  BinOp BOp = BinOp::Add;
  UnOp UOp = UnOp::Not;
  std::vector<Operand> Ops;
  Place P;               ///< Discriminant / RefOf / AddrOf target place.
  TypeRef AggTy = nullptr;
  unsigned Variant = 0;  ///< Aggregate variant index (enums).

  static Rvalue use(Operand O) {
    Rvalue R;
    R.Kind = Use;
    R.Ops = {std::move(O)};
    return R;
  }
  static Rvalue binary(BinOp Op, Operand A, Operand B) {
    Rvalue R;
    R.Kind = BinaryOp;
    R.BOp = Op;
    R.Ops = {std::move(A), std::move(B)};
    return R;
  }
  static Rvalue unary(UnOp Op, Operand A) {
    Rvalue R;
    R.Kind = UnaryOp;
    R.UOp = Op;
    R.Ops = {std::move(A)};
    return R;
  }
  static Rvalue aggregate(TypeRef Ty, unsigned Variant,
                          std::vector<Operand> Fields) {
    Rvalue R;
    R.Kind = Aggregate;
    R.AggTy = Ty;
    R.Variant = Variant;
    R.Ops = std::move(Fields);
    return R;
  }
  static Rvalue discriminant(Place Pl) {
    Rvalue R;
    R.Kind = Discriminant;
    R.P = std::move(Pl);
    return R;
  }
  static Rvalue refOf(Place Pl) {
    Rvalue R;
    R.Kind = RefOf;
    R.P = std::move(Pl);
    return R;
  }
  static Rvalue addrOf(Place Pl) {
    Rvalue R;
    R.Kind = AddrOf;
    R.P = std::move(Pl);
    return R;
  }
  static Rvalue ptrOffset(Operand Ptr, Operand Count) {
    Rvalue R;
    R.Kind = PtrOffset;
    R.Ops = {std::move(Ptr), std::move(Count)};
    return R;
  }
};

/// Ghost (proof-only) statement kinds — the Gilsonite tactic surface.
enum class GhostKind : uint8_t {
  Unfold,             ///< unfold pred(args).
  Fold,               ///< fold pred(args).
  GUnfold,            ///< guarded unfold: open a borrow (§4.2).
  GFold,              ///< guarded fold: close a borrow.
  ApplyLemma,         ///< apply a declared (extraction) lemma (§4.3).
  MutRefAutoResolve,  ///< mutref_auto_resolve!(p) (§2.2, MutRef-Resolve).
  ProphecyAutoUpdate, ///< p.prophecy_auto_update() (Mut-Auto-Update, §5.3).
  AssertPure,         ///< Ghost assertion of a pure fact.
};

/// A ghost statement. Kind must be initialized even in the default-constructed
/// Ghost embedded in every non-ghost Statement: structural fingerprints
/// (incr/Fingerprint.cpp) hash every field unconditionally.
struct Ghost {
  GhostKind Kind = GhostKind::Unfold;
  std::string Name;          ///< Predicate / lemma name.
  std::vector<Operand> Args; ///< Program-value arguments.
  Expr PureArg;              ///< AssertPure payload.
};

/// A statement.
struct Statement {
  enum StKind : uint8_t {
    Assign,
    Alloc,     ///< dest = allocate(AllocTy) — the Rust allocator API.
    Free,      ///< deallocate(ptr, AllocTy).
    GhostStmt, ///< Proof-only command.
    Nop,
  } Kind = Nop;

  Place Dest;
  Rvalue RV;
  TypeRef AllocTy = nullptr;
  Operand FreeArg;
  Ghost G;

  static Statement assign(Place P, Rvalue R) {
    Statement S;
    S.Kind = Assign;
    S.Dest = std::move(P);
    S.RV = std::move(R);
    return S;
  }
  static Statement alloc(Place Dest, TypeRef Ty) {
    Statement S;
    S.Kind = Alloc;
    S.Dest = std::move(Dest);
    S.AllocTy = Ty;
    return S;
  }
  static Statement free(Operand Ptr, TypeRef Ty) {
    Statement S;
    S.Kind = Free;
    S.FreeArg = std::move(Ptr);
    S.AllocTy = Ty;
    return S;
  }
  static Statement ghost(Ghost G) {
    Statement S;
    S.Kind = GhostStmt;
    S.G = std::move(G);
    return S;
  }
};

/// A block terminator.
struct Terminator {
  enum TermKind : uint8_t {
    Goto,
    SwitchInt, ///< Multi-way branch on an integer/discriminant operand.
    Call,
    Return,
    Unreachable,
  } Kind = Return;

  BlockId Target = 0;                             // Goto / Call.
  Operand Discr;                                  // SwitchInt.
  std::vector<std::pair<__int128, BlockId>> Arms; // SwitchInt.
  BlockId Otherwise = 0;                          // SwitchInt.
  std::string Callee;                             // Call.
  std::vector<Operand> Args;                      // Call.
  Place Dest;                                     // Call.
  std::vector<TypeRef> TypeArgs;                  // Call instantiation.

  static Terminator gotoBlock(BlockId B) {
    Terminator T;
    T.Kind = Goto;
    T.Target = B;
    return T;
  }
  static Terminator switchInt(Operand D,
                              std::vector<std::pair<__int128, BlockId>> Arms,
                              BlockId Otherwise) {
    Terminator T;
    T.Kind = SwitchInt;
    T.Discr = std::move(D);
    T.Arms = std::move(Arms);
    T.Otherwise = Otherwise;
    return T;
  }
  static Terminator call(std::string Callee, std::vector<Operand> Args,
                         Place Dest, BlockId Target,
                         std::vector<TypeRef> TypeArgs = {}) {
    Terminator T;
    T.Kind = Call;
    T.Callee = std::move(Callee);
    T.Args = std::move(Args);
    T.Dest = std::move(Dest);
    T.Target = Target;
    T.TypeArgs = std::move(TypeArgs);
    return T;
  }
  static Terminator ret() { return Terminator(); }
  static Terminator unreachable() {
    Terminator T;
    T.Kind = Unreachable;
    return T;
  }
};

/// A basic block.
struct BasicBlock {
  std::vector<Statement> Stmts;
  Terminator Term;
};

/// A declared local variable.
struct Local {
  std::string Name;
  TypeRef Ty;
};

/// An RMIR function. Local 0 is the return slot; locals 1..NumParams are the
/// parameters.
struct Function {
  std::string Name;
  unsigned NumParams = 0;
  std::vector<Local> Locals;
  std::vector<BasicBlock> Blocks;
  std::vector<std::string> TypeParams;
  std::vector<std::string> Lifetimes; ///< Lifetime parameters, usually one.
  /// Per-function lint suppressions: diagnostic codes (e.g. "GILR-W002")
  /// the pre-verification analysis must not report against this function;
  /// "all" mutes every lint. The static-analysis analogue of #[allow(...)].
  /// Part of the function's structural fingerprint (incr/Fingerprint.cpp):
  /// toggling a suppression invalidates the cached lint verdict.
  std::vector<std::string> LintSuppress;

  TypeRef returnType() const { return Locals.at(0).Ty; }
  TypeRef paramType(unsigned I) const { return Locals.at(1 + I).Ty; }
};

/// A compilation unit: a type context plus named functions.
struct Program {
  TyCtx Types;
  std::map<std::string, Function> Funcs;

  const Function *lookup(const std::string &Name) const {
    auto It = Funcs.find(Name);
    return It == Funcs.end() ? nullptr : &It->second;
  }
};

/// The type of the value stored at \p P within \p F (walking the projection
/// elements through struct fields, derefs and downcasts).
TypeRef placeType(const Function &F, const Place &P);

/// The type of \p Op within \p F.
TypeRef operandType(const Function &F, const Operand &Op);

} // namespace rmir
} // namespace gilr

#endif // GILR_RMIR_PROGRAM_H
