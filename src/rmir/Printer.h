//===- rmir/Printer.h - Human-readable RMIR dumps --------------------------===//
///
/// \file
/// Pretty-printing of RMIR functions in a MIR-like syntax, for examples and
/// debugging of the case-study libraries.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RMIR_PRINTER_H
#define GILR_RMIR_PRINTER_H

#include "rmir/Program.h"

#include <string>

namespace gilr {
namespace rmir {

std::string placeToString(const Function &F, const Place &P);
std::string operandToString(const Function &F, const Operand &Op);
std::string rvalueToString(const Function &F, const Rvalue &R);
std::string statementToString(const Function &F, const Statement &S);
std::string terminatorToString(const Function &F, const Terminator &T);
std::string functionToString(const Function &F);

} // namespace rmir
} // namespace gilr

#endif // GILR_RMIR_PRINTER_H
