//===- rmir/Type.cpp --------------------------------------------------------===//

#include "rmir/Type.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"

#include <cassert>

using namespace gilr;
using namespace gilr::rmir;

unsigned gilr::rmir::intByteWidth(IntKind K) {
  switch (K) {
  case IntKind::I8:
  case IntKind::U8:
    return 1;
  case IntKind::I16:
  case IntKind::U16:
    return 2;
  case IntKind::I32:
  case IntKind::U32:
    return 4;
  case IntKind::I64:
  case IntKind::U64:
  case IntKind::ISize:
  case IntKind::USize:
    return 8;
  case IntKind::I128:
  case IntKind::U128:
    return 16;
  }
  GILR_UNREACHABLE("unknown int kind");
}

bool gilr::rmir::intIsSigned(IntKind K) {
  switch (K) {
  case IntKind::I8:
  case IntKind::I16:
  case IntKind::I32:
  case IntKind::I64:
  case IntKind::I128:
  case IntKind::ISize:
    return true;
  default:
    return false;
  }
}

/// 2^127 - 1, computed without overflow.
static __int128 int128Max() {
  return ((static_cast<__int128>(1) << 126) - 1) * 2 + 1;
}

__int128 gilr::rmir::intMinValue(IntKind K) {
  if (!intIsSigned(K))
    return 0;
  unsigned Bits = intByteWidth(K) * 8;
  if (Bits == 128)
    return -int128Max() - 1;
  return -(static_cast<__int128>(1) << (Bits - 1));
}

__int128 gilr::rmir::intMaxValue(IntKind K) {
  unsigned Bits = intByteWidth(K) * 8;
  if (intIsSigned(K)) {
    if (Bits == 128)
      return int128Max();
    return (static_cast<__int128>(1) << (Bits - 1)) - 1;
  }
  if (Bits == 128)
    // Model limitation: u128 values are represented in a signed 128-bit
    // literal, so its modelled range is [0, 2^127 - 1]. All case studies
    // use at most 64-bit integers.
    return int128Max();
  return (static_cast<__int128>(1) << Bits) - 1;
}

const char *gilr::rmir::intKindName(IntKind K) {
  switch (K) {
  case IntKind::I8:
    return "i8";
  case IntKind::I16:
    return "i16";
  case IntKind::I32:
    return "i32";
  case IntKind::I64:
    return "i64";
  case IntKind::I128:
    return "i128";
  case IntKind::ISize:
    return "isize";
  case IntKind::U8:
    return "u8";
  case IntKind::U16:
    return "u16";
  case IntKind::U32:
    return "u32";
  case IntKind::U64:
    return "u64";
  case IntKind::U128:
    return "u128";
  case IntKind::USize:
    return "usize";
  }
  GILR_UNREACHABLE("unknown int kind");
}

//===----------------------------------------------------------------------===//
// Type
//===----------------------------------------------------------------------===//

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int:
    return intKindName(IntK);
  case TypeKind::Unit:
    return "()";
  case TypeKind::Struct:
  case TypeKind::Enum:
  case TypeKind::Param:
    return Name;
  case TypeKind::RawPtr:
    return "*mut " + Pointee->str();
  case TypeKind::Ref:
    return "&mut " + Pointee->str();
  case TypeKind::Array:
    return "[" + Pointee->str() + "; " + std::to_string(ArrayLen) + "]";
  }
  GILR_UNREACHABLE("unknown type kind");
}

TypeRef Type::optionPayload() const {
  assert(isOption() && "optionPayload on non-option type");
  assert(Variants.size() == 2 && Variants[1].Fields.size() == 1 &&
         "malformed option-like enum");
  return Variants[1].Fields[0].Ty;
}

bool Type::isConcrete() const {
  switch (Kind) {
  case TypeKind::Param:
    return false;
  case TypeKind::RawPtr:
  case TypeKind::Ref:
  case TypeKind::Array:
    return Pointee->isConcrete();
  case TypeKind::Struct:
    for (const FieldDef &F : Fields)
      if (!F.Ty->isConcrete())
        return false;
    return true;
  case TypeKind::Enum:
    for (const VariantDef &V : Variants)
      for (const FieldDef &F : V.Fields)
        if (!F.Ty->isConcrete())
          return false;
    return true;
  default:
    return true;
  }
}

//===----------------------------------------------------------------------===//
// TyCtx
//===----------------------------------------------------------------------===//

TyCtx::TyCtx() {
  Type *B = create();
  B->Kind = TypeKind::Bool;
  BoolTy = B;
  Type *U = create();
  U->Kind = TypeKind::Unit;
  UnitTy = U;
  for (int K = 0; K <= static_cast<int>(IntKind::USize); ++K) {
    Type *T = create();
    T->Kind = TypeKind::Int;
    T->IntK = static_cast<IntKind>(K);
    IntTys.push_back(T);
  }
}

Type *TyCtx::create() {
  Arena.push_back(std::make_unique<Type>());
  return Arena.back().get();
}

TypeRef TyCtx::rawPtr(TypeRef Pointee) {
  auto It = RawPtrs.find(Pointee);
  if (It != RawPtrs.end())
    return It->second;
  Type *T = create();
  T->Kind = TypeKind::RawPtr;
  T->Pointee = Pointee;
  RawPtrs.emplace(Pointee, T);
  return T;
}

TypeRef TyCtx::mutRef(TypeRef Pointee) {
  auto It = MutRefs.find(Pointee);
  if (It != MutRefs.end())
    return It->second;
  Type *T = create();
  T->Kind = TypeKind::Ref;
  T->Pointee = Pointee;
  MutRefs.emplace(Pointee, T);
  return T;
}

TypeRef TyCtx::array(TypeRef Elem, uint64_t Len) {
  auto Key = std::make_pair(Elem, Len);
  auto It = Arrays.find(Key);
  if (It != Arrays.end())
    return It->second;
  Type *T = create();
  T->Kind = TypeKind::Array;
  T->Pointee = Elem;
  T->ArrayLen = Len;
  Arrays.emplace(Key, T);
  return T;
}

TypeRef TyCtx::param(const std::string &Name) {
  auto It = Nominals.find(Name);
  if (It != Nominals.end()) {
    assert(It->second->Kind == TypeKind::Param && "name clash with param");
    return It->second;
  }
  Type *T = create();
  T->Kind = TypeKind::Param;
  T->Name = Name;
  Nominals.emplace(Name, T);
  return T;
}

TypeRef TyCtx::declareStruct(const std::string &Name,
                             std::vector<FieldDef> Fields) {
  auto It = Nominals.find(Name);
  if (It != Nominals.end()) {
    assert(It->second->Kind == TypeKind::Struct &&
           It->second->Fields.size() == Fields.size() &&
           "conflicting struct redeclaration");
    return It->second;
  }
  Type *T = create();
  T->Kind = TypeKind::Struct;
  T->Name = Name;
  T->Fields = std::move(Fields);
  Nominals.emplace(Name, T);
  return T;
}

TypeRef TyCtx::declareStructForward(const std::string &Name) {
  auto It = Nominals.find(Name);
  if (It != Nominals.end()) {
    assert(It->second->Kind == TypeKind::Struct && "forward decl mismatch");
    return It->second;
  }
  Type *T = create();
  T->Kind = TypeKind::Struct;
  T->Name = Name;
  Nominals.emplace(Name, T);
  return T;
}

void TyCtx::defineStructFields(TypeRef Struct, std::vector<FieldDef> Fields) {
  assert(Struct->Kind == TypeKind::Struct && "defining fields of non-struct");
  assert(Struct->Fields.empty() && "struct fields already defined");
  // The arena owns the type; casting away const here is the completion of
  // the two-phase declaration.
  const_cast<Type *>(Struct)->Fields = std::move(Fields);
}

TypeRef TyCtx::declareEnum(const std::string &Name,
                           std::vector<VariantDef> Variants) {
  auto It = Nominals.find(Name);
  if (It != Nominals.end()) {
    assert(It->second->Kind == TypeKind::Enum &&
           "conflicting enum redeclaration");
    return It->second;
  }
  Type *T = create();
  T->Kind = TypeKind::Enum;
  T->Name = Name;
  T->Variants = std::move(Variants);
  Nominals.emplace(Name, T);
  return T;
}

TypeRef TyCtx::optionOf(TypeRef Payload) {
  auto It = Options.find(Payload);
  if (It != Options.end())
    return It->second;
  Type *T = create();
  T->Kind = TypeKind::Enum;
  T->Name = "Option<" + Payload->str() + ">";
  T->Variants = {VariantDef{"None", {}},
                 VariantDef{"Some", {FieldDef{"0", Payload}}}};
  T->IsOptionLike = true;
  Options.emplace(Payload, T);
  Nominals.emplace(T->Name, T);
  return T;
}

TypeRef TyCtx::lookup(const std::string &Name) const {
  auto It = Nominals.find(Name);
  return It == Nominals.end() ? nullptr : It->second;
}

std::vector<TypeRef> TyCtx::allNominals() const {
  std::vector<TypeRef> Out;
  for (const auto &[Name, T] : Nominals)
    Out.push_back(T);
  return Out;
}

TypeRef TyCtx::byName(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(ByNameMu);
  auto It = AllByName.find(Name);
  if (It != AllByName.end())
    return It->second;
  // Refresh the cache from the arena (new derived types may have appeared).
  for (const auto &T : Arena)
    AllByName.emplace(T->str(), T.get());
  It = AllByName.find(Name);
  return It == AllByName.end() ? nullptr : It->second;
}

Expr TyCtx::sizeOfExpr(TypeRef T) const {
  switch (T->Kind) {
  case TypeKind::Bool:
    return mkInt(1);
  case TypeKind::Unit:
    return mkInt(0);
  case TypeKind::Int:
    return mkInt(intByteWidth(T->IntK));
  case TypeKind::RawPtr:
  case TypeKind::Ref:
    return mkInt(8);
  case TypeKind::Array:
    return mkMul(mkIntU64(T->ArrayLen), sizeOfExpr(T->Pointee));
  default:
    // Layout-dependent (structs, enums) or unknown (params): opaque but
    // fixed per type, as size_of::<T>() is in Rust.
    return mkApp("sizeof$" + T->str(), {}, Sort::Int);
  }
}
